(* The benchmark harness.

   Running this executable regenerates every table and figure of the
   paper's evaluation (the same rows `bin/repro all` prints), then runs
   one Bechamel micro-benchmark per table/figure, timing the simulation
   that regenerates it (at reduced horizons, so the measurement loop
   stays tractable).

   The Bechamel pass also emits a machine-readable JSON file — the
   repository's perf-regression trajectory.  Each record carries the
   OLS ns/run estimate plus, where the workload exposes its machine,
   one instrumented run's simulated clock and event count, from which
   the throughput figures simulated-cycles/sec and events/sec are
   derived.  Perf PRs commit the refreshed file (BENCH_<pr>.json) and
   CI runs the smoke mode so a hot-path regression fails the build.

   Usage:
     dune exec bench/main.exe               reproduction rows + bechamel
     dune exec bench/main.exe -- rows       reproduction rows only
     dune exec bench/main.exe -- bench [f]  bechamel + JSON (default BENCH_pr7.json)
     dune exec bench/main.exe -- ab [NAME[,NAME...]] [f]
                                            paired A/B of the frames vs cps
                                            thread engines: interleaved
                                            repetitions in one process,
                                            median-of-8 comparison, and a
                                            whole-run digest cross-check
                                            (default specs fig2 + table1)
     dune exec bench/main.exe -- quick      reduced-horizon rows + bechamel
     dune exec bench/main.exe -- smoke [f]  fast bechamel pass for CI
                                            (default BENCH_smoke.json)
     dune exec bench/main.exe -- one NAME[,NAME...] [f]
                                            bechamel for selected specs, at the
                                            full-bench horizons (iterating on
                                            a few rows without the whole
                                            sweep); with [f], record them as
                                            JSON
     dune exec bench/main.exe -- sweep [f]  wall-clock of the full fig2 and
                                            table1 sweeps at -j 1 vs -j N
                                            (N from CM_JOBS, default 4);
                                            JSON with a speedup field per
                                            experiment (default BENCH_pr4.json)
     dune exec bench/main.exe -- shards [NAME[,NAME...]] [f]
                                            paired A/B of sequential vs
                                            CM_SHARDS-way (default 2) sharded
                                            runs: interleaved repetitions,
                                            median-of-8 comparison, a run
                                            digest cross-check (mismatch
                                            fails), and per-shard fired
                                            counts (default specs fig2 +
                                            dht_zipf + social_graph, JSON
                                            BENCH_pr9.json)
     dune exec bench/main.exe -- sites [f]  paired A/B of the fused per-object
                                            method-site tables vs the generic
                                            scope/call composition (both on
                                            the frames engine): interleaved
                                            reps, median-of-8 minor words per
                                            op over the simulation only, a
                                            digest cross-check, and a >=10x
                                            words/op gate on the migrate-mode
                                            dht_zipf row (default
                                            BENCH_pr10.json)
     dune exec bench/main.exe -- big [f]    the million-object scale probes:
                                            10^6 registrations into the flat
                                            vs boxed object store, full-size
                                            dht_zipf and social_graph runs,
                                            and a paired A/B of flat vs boxed
                                            DHT buckets (interleaved reps,
                                            digest cross-check; fails if the
                                            flat store's minor words/op are
                                            not >= 10x below the boxed rep's)
                                            (default BENCH_pr8.json)
*)

open Cm_experiments

let counting_cfg ~horizon requesters =
  {
    Counting_run.default with
    Counting_run.requesters;
    horizon;
    warmup = 10_000;
  }

let btree_cfg ~horizon think =
  { Btree_run.default with Btree_run.think; horizon; warmup = 10_000 }

let fanout10_cfg ~horizon = { Btree_run.fanout10 with Btree_run.horizon = horizon; warmup = 10_000 }

let bench_scheme_counting scheme ~horizon requesters () =
  ignore (Counting_run.run scheme (counting_cfg ~horizon requesters))

let bench_scheme_btree scheme ~horizon think () =
  ignore (Btree_run.run scheme (btree_cfg ~horizon think))

let bench_fig1 () =
  (* One large cell of the message-model sweep per mechanism. *)
  ignore (Fig1.run_messaging ~access:Cm_runtime.Runtime.Migrate ~n:16 ~m:32);
  ignore (Fig1.run_messaging ~access:Cm_runtime.Runtime.Rpc ~n:16 ~m:32);
  ignore (Fig1.run_shmem ~n:16 ~m:32)

let bench_table5 () = ignore (Table5.measure_one_migration ())

(* One measured workload: the Bechamel thunk plus, where the experiment
   exposes its machine, an instrumented single run for the simulated
   clock / event-count the JSON throughput figures derive from. *)
type spec = {
  name : string;
  thunk : unit -> unit;
  probe : (unit -> Cm_machine.Machine.t * Cm_workload.Metrics.t) option;
}

let counting_spec name scheme ~horizon requesters =
  {
    name;
    thunk = bench_scheme_counting scheme ~horizon requesters;
    probe = Some (fun () -> Counting_run.run_with_machine scheme (counting_cfg ~horizon requesters));
  }

let btree_spec name scheme ~horizon think =
  {
    name;
    thunk = bench_scheme_btree scheme ~horizon think;
    probe = Some (fun () -> Btree_run.run_with_machine scheme (btree_cfg ~horizon think));
  }

(* Horizons.  The full bench mode runs the two headline rows (fig2,
   table1) long enough that the event loop — the thing the perf work
   targets — dominates per-run machine construction; the remaining rows
   get a moderate horizon, and the quick/smoke modes a short one so CI
   stays fast.  Comparisons across revisions are only meaningful at
   matching horizons (the JSON carries ns/run, not a normalized cost). *)
let specs ~full =
  let long = if full then 6_000_000 else 60_000 in
  let mid = if full then 300_000 else 60_000 in
  [
    { name = "fig1:message-model"; thunk = bench_fig1; probe = None };
    counting_spec "fig2:counting-throughput"
      (Scheme.Cp { hw = false; repl = false })
      ~horizon:long 32;
    counting_spec "fig3:counting-bandwidth" Scheme.Sm ~horizon:mid 32;
    btree_spec "table1:btree-throughput"
      (Scheme.Cp { hw = false; repl = false })
      ~horizon:long 0;
    btree_spec "table2:btree-bandwidth" Scheme.Sm ~horizon:mid 0;
    btree_spec "table3:btree-think" (Scheme.Cp { hw = false; repl = true }) ~horizon:mid 10_000;
    btree_spec "table4:btree-think-bw" Scheme.Sm ~horizon:mid 10_000;
    { name = "table5:migration-cost"; thunk = bench_table5; probe = None };
    {
      name = "fanout10:small-nodes";
      thunk =
        (fun () ->
          ignore
            (Btree_run.run (Scheme.Cp { hw = false; repl = true }) (fanout10_cfg ~horizon:mid)));
      probe =
        Some
          (fun () ->
            Btree_run.run_with_machine
              (Scheme.Cp { hw = false; repl = true })
              (fanout10_cfg ~horizon:mid));
    };
    (* The scale experiments: quick-sized in smoke (CI asserts their
       minor-words ceilings), full 10^6-object / 1024-proc sweeps
       points in the full bench. *)
    {
      name = "dht_zipf:hot-keys";
      thunk =
        (fun () ->
          ignore (Dht_zipf.measure ~quick:(not full) (Cm_apps.Dht.Messaging Cm_core.Prelude.Rpc) 1.3));
      probe =
        Some
          (fun () ->
            Dht_zipf.measure_with_machine ~quick:(not full)
              (Cm_apps.Dht.Messaging Cm_core.Prelude.Rpc) 1.3);
    };
    {
      name = "social_graph:walks";
      thunk =
        (fun () ->
          ignore (Social_bench.measure ~quick:(not full) Social_bench.Walk Cm_core.Prelude.Migrate));
      probe =
        Some
          (fun () ->
            Social_bench.measure_with_machine ~quick:(not full) Social_bench.Walk
              Cm_core.Prelude.Migrate);
    };
  ]

(* --- JSON emission (hand-rolled: the container has no JSON library
   and the schema is flat).  A record is a list of pre-rendered
   (key, value) fields; both the bechamel pass and the sweep mode feed
   this one writer. *)

let json_str name v = Printf.sprintf "%S: %S" name v

let json_float name v = Printf.sprintf "%S: %.6e" name v

let json_int name v = Printf.sprintf "%S: %d" name v

let json_int_array name vs =
  Printf.sprintf "%S: [%s]" name (String.concat ", " (List.map string_of_int (Array.to_list vs)))

let write_json ~mode path records =
  let oc = open_out path in
  let record fields = "    {" ^ String.concat ", " fields ^ "}" in
  Printf.fprintf oc "{\n  \"schema\": \"cm-bench/1\",\n  \"mode\": %S,\n  \"tests\": [\n%s\n  ]\n}\n"
    mode
    (String.concat ",\n" (List.map record records));
  close_out oc;
  Printf.printf "wrote %s (%d tests)\n%!" path (List.length records)

(* --- bechamel pass ------------------------------------------------ *)

type result = {
  r_name : string;
  ns_per_run : float option;
  sim_cycles : int option;
  events_fired : int option;
  sim_ops : int option;  (* completed requests inside the probe run's window *)
  minor_words_per_run : float;
  major_words_per_run : float;
  shards : int;  (* shard count the runs executed under — provenance *)
  shard_fired : int array;  (* per-shard fired events, from the probe run; [||] without a probe *)
}

(* GC cost of one run, measured directly (not via Bechamel's allocation
   instances, whose per-sample clamping rounds small figures away): one
   warm run, then allocation deltas averaged over a few more.  Minor
   words come from [Gc.minor_words] — it reads the allocation pointer,
   where [quick_stat]'s minor figure only advances at minor collections,
   so a small workload (table5's single migration) used to report 0.0.
   Promoted words are subtracted from the major figure so it counts only
   direct major-heap allocation. *)
let alloc_reps = 4

let alloc_of_run thunk =
  thunk ();
  let minor0 = Gc.minor_words () in
  let before = Gc.quick_stat () in
  for _ = 1 to alloc_reps do
    thunk ()
  done;
  let minor1 = Gc.minor_words () in
  let after = Gc.quick_stat () in
  let per v = v /. float_of_int alloc_reps in
  ( per (minor1 -. minor0),
    per
      (after.Gc.major_words -. before.Gc.major_words
      -. (after.Gc.promoted_words -. before.Gc.promoted_words)) )

let measure ~quota ~limit spec =
  let open Bechamel in
  let shard_counts = ref [||] in
  let test = Test.make ~name:spec.name (Staged.stage spec.thunk) in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit ~quota:(Time.second quota) () in
  let results = Benchmark.all cfg instances test in
  let estimate = ref None in
  Hashtbl.iter (* lint: allow hashtbl-order *)
    (fun _name measurements ->
      let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
      let stats = Analyze.one ols Toolkit.Instance.monotonic_clock measurements in
      match Analyze.OLS.estimates stats with
      | Some [ est ] -> estimate := Some est
      | Some _ | None -> ())
    results;
  let sim_cycles, events_fired, sim_ops =
    match spec.probe with
    | None -> (None, None, None)
    | Some probe ->
      let machine, metrics = probe () in
      shard_counts := Cm_machine.Machine.shard_fired machine;
      ( Some (Cm_machine.Machine.now machine),
        Some (Cm_machine.Machine.events_fired machine),
        Some metrics.Cm_workload.Metrics.ops )
  in
  let minor_words_per_run, major_words_per_run = alloc_of_run spec.thunk in
  (match !estimate with
  | Some est ->
    let throughput =
      match sim_cycles with
      | Some cycles when est > 0. ->
        Printf.sprintf "  %10.2e simcyc/s" (float_of_int cycles /. (est *. 1e-9))
      | _ -> ""
    in
    Printf.printf "%-28s %12.0f ns/run%s  %10.2e minor-w/run\n%!" spec.name est throughput
      minor_words_per_run
  | None -> Printf.printf "%-28s (no estimate)\n%!" spec.name);
  {
    r_name = spec.name;
    ns_per_run = !estimate;
    sim_cycles;
    events_fired;
    sim_ops;
    minor_words_per_run;
    major_words_per_run;
    shards = Cm_machine.Machine.default_shards ();
    shard_fired = !shard_counts;
  }

let result_fields r =
  let opt f = function None -> [] | Some v -> [ f v ] in
  let derived =
    match (r.ns_per_run, r.sim_cycles, r.events_fired) with
    | Some ns, Some cycles, Some events when ns > 0. ->
      [
        json_float "sim_cycles_per_sec" (float_of_int cycles /. (ns *. 1e-9));
        json_float "events_per_sec" (float_of_int events /. (ns *. 1e-9));
      ]
    | _ -> []
  in
  let words_per_op =
    (* Whole-run minor words over completed requests — construction
       included, so an upper bound on the steady-state figure ([sites]
       mode isolates the simulation-only number). *)
    match r.sim_ops with
    | Some ops when ops > 0 ->
      [ json_float "minor_words_per_op" (r.minor_words_per_run /. float_of_int ops) ]
    | Some _ | None -> []
  in
  [ json_str "name" r.r_name; json_int "shards" r.shards ]
  @ opt (json_float "ns_per_run") r.ns_per_run
  @ opt (json_int "sim_cycles") r.sim_cycles
  @ opt (json_int "events_fired") r.events_fired
  @ opt (json_int "sim_ops") r.sim_ops
  @ (if r.shard_fired = [||] then [] else [ json_int_array "shard_fired" r.shard_fired ])
  @ [
      json_float "minor_words_per_run" r.minor_words_per_run;
      json_float "major_words_per_run" r.major_words_per_run;
    ]
  @ words_per_op @ derived

let run_bechamel ?only ~mode ~quota ~limit ~full ~json () =
  print_endline "\n=== Bechamel micro-benchmarks (wall-clock of the regenerating sims) ===";
  let selected =
    match only with
    | None -> specs ~full
    | Some names ->
      List.map
        (fun name ->
          match List.find_opt (fun s -> s.name = name) (specs ~full) with
          | Some s -> s
          | None ->
            List.iter (fun s -> prerr_endline s.name) (specs ~full);
            failwith ("no such spec: " ^ name))
        names
  in
  let results = List.map (measure ~quota ~limit) selected in
  match json with
  | Some path -> write_json ~mode path (List.map result_fields results)
  | None -> ()

(* --- ab mode: paired frames-vs-cps engine comparison -------------- *)

let median a =
  let s = Array.copy a in
  Array.sort compare s;
  s.(Array.length s / 2)

(* One timed run under [engine]: wall-clock ns and minor words. *)
let ab_sample engine thunk =
  Cm_machine.Machine.set_default_engine engine;
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  thunk ();
  let t1 = Unix.gettimeofday () in
  ((t1 -. t0) *. 1e9, Gc.minor_words () -. m0)

(* Paired A/B of the two thread engines in one process: repetitions
   interleave frames/cps runs (so drift — frequency scaling, page cache,
   GC heap shape — hits both variants alike) and the medians are
   compared.  Where the spec exposes its machine, the two engines' run
   digests are also compared — the whole-experiment complement of the
   qcheck oracle in test/. *)
let run_ab ~names ~json () =
  print_endline "\n=== Paired A/B: frames vs cps engine (interleaved, median of 8) ===";
  let reps = 8 in
  let selected =
    List.map
      (fun name ->
        match List.find_opt (fun s -> s.name = name) (specs ~full:true) with
        | Some s -> s
        | None ->
          List.iter (fun s -> prerr_endline s.name) (specs ~full:true);
          failwith ("no such spec: " ^ name))
      names
  in
  let records =
    List.map
      (fun spec ->
        (* Warm both variants before sampling. *)
        ignore (ab_sample Cm_machine.Machine.Frames spec.thunk);
        ignore (ab_sample Cm_machine.Machine.Cps spec.thunk);
        let f_ns = Array.make reps 0. and f_mw = Array.make reps 0. in
        let c_ns = Array.make reps 0. and c_mw = Array.make reps 0. in
        for r = 0 to reps - 1 do
          let ns, mw = ab_sample Cm_machine.Machine.Frames spec.thunk in
          f_ns.(r) <- ns;
          f_mw.(r) <- mw;
          let ns, mw = ab_sample Cm_machine.Machine.Cps spec.thunk in
          c_ns.(r) <- ns;
          c_mw.(r) <- mw
        done;
        let digests_equal =
          match spec.probe with
          | None -> None
          | Some probe ->
            Cm_machine.Machine.set_default_engine Cm_machine.Machine.Frames;
            let df = Cm_machine.Machine.digest (fst (probe ())) in
            Cm_machine.Machine.set_default_engine Cm_machine.Machine.Cps;
            let dc = Cm_machine.Machine.digest (fst (probe ())) in
            Some (df = dc)
        in
        Cm_machine.Machine.set_default_engine Cm_machine.Machine.Frames;
        let f_ns_med = median f_ns and c_ns_med = median c_ns in
        let f_mw_med = median f_mw and c_mw_med = median c_mw in
        let speedup = c_ns_med /. f_ns_med in
        let minor_ratio = if c_mw_med > 0. then f_mw_med /. c_mw_med else 1. in
        Printf.printf
          "%-28s frames %10.0f ns %9.2e mw | cps %10.0f ns %9.2e mw | %5.2fx, minor x%.3f%s\n%!"
          spec.name f_ns_med f_mw_med c_ns_med c_mw_med speedup minor_ratio
          (match digests_equal with
          | Some true -> "  digests equal"
          | Some false -> "  DIGEST MISMATCH"
          | None -> "");
        (match digests_equal with
        | Some false -> failwith ("ab: engine digests differ for " ^ spec.name)
        | Some true | None -> ());
        [
          json_str "name" spec.name;
          json_int "reps" reps;
          json_float "frames_ns_median" f_ns_med;
          json_float "cps_ns_median" c_ns_med;
          json_float "frames_minor_words_median" f_mw_med;
          json_float "cps_minor_words_median" c_mw_med;
          json_float "speedup" speedup;
          json_float "minor_words_ratio" minor_ratio;
        ]
        @
        match digests_equal with
        | Some b -> [ json_str "digests_equal" (string_of_bool b) ]
        | None -> [])
      selected
  in
  match json with Some path -> write_json ~mode:"ab" path records | None -> ()

(* --- shards mode: paired sequential vs sharded-PDES comparison ----- *)

(* One timed run at shard count [k]: wall-clock ns and minor words. *)
let shards_sample k thunk =
  Cm_machine.Machine.set_default_shards k;
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  thunk ();
  let t1 = Unix.gettimeofday () in
  ((t1 -. t0) *. 1e9, Gc.minor_words () -. m0)

(* Paired A/B of the sequential (shards=1) and windowed K-shard runs in
   one process, same discipline as {!run_ab}: interleaved repetitions,
   median-of-8 comparison, and — where the spec exposes its machine — a
   digest cross-check plus the sharded run's per-shard fired counts.
   Equal digests are this mode's acceptance gate: the K-shard run must
   be bit-identical to the sequential one (see DESIGN.md §17), so a
   mismatch fails the whole pass.  Wall-clock is reported honestly; on
   a single hardware core the windowed run adds barrier/merge work for
   no concurrency, so speedups below 1.0x are the expected reading
   there (the DESIGN.md §12 precedent). *)
let run_shards ~k ~names ~json () =
  Printf.printf "\n=== Paired A/B: sequential vs %d-shard windowed runs (interleaved, median of 8) ===\n%!"
    k;
  let reps = 8 in
  let selected =
    List.map
      (fun name ->
        match List.find_opt (fun s -> s.name = name) (specs ~full:false) with
        | Some s -> s
        | None ->
          List.iter (fun s -> prerr_endline s.name) (specs ~full:false);
          failwith ("no such spec: " ^ name))
      names
  in
  let records =
    List.map
      (fun spec ->
        (* Warm both variants before sampling. *)
        ignore (shards_sample 1 spec.thunk);
        ignore (shards_sample k spec.thunk);
        let s1_ns = Array.make reps 0. and sk_ns = Array.make reps 0. in
        for r = 0 to reps - 1 do
          let ns, _ = shards_sample 1 spec.thunk in
          s1_ns.(r) <- ns;
          let ns, _ = shards_sample k spec.thunk in
          sk_ns.(r) <- ns
        done;
        let digests_equal, shard_fired =
          match spec.probe with
          | None -> (None, [||])
          | Some probe ->
            Cm_machine.Machine.set_default_shards 1;
            let d1 = Cm_machine.Machine.digest (fst (probe ())) in
            Cm_machine.Machine.set_default_shards k;
            let mk = fst (probe ()) in
            let dk = Cm_machine.Machine.digest mk in
            (Some (d1 = dk), Cm_machine.Machine.shard_fired mk)
        in
        Cm_machine.Machine.set_default_shards 1;
        let s1_med = median s1_ns and sk_med = median sk_ns in
        let speedup = s1_med /. sk_med in
        Printf.printf "%-28s seq %10.0f ns | %d shards %10.0f ns | %5.2fx%s\n%!" spec.name s1_med
          k sk_med speedup
          (match digests_equal with
          | Some true -> "  digests equal"
          | Some false -> "  DIGEST MISMATCH"
          | None -> "");
        (match digests_equal with
        | Some false -> failwith ("shards: sequential vs sharded digests differ for " ^ spec.name)
        | Some true | None -> ());
        [
          json_str "name" spec.name;
          json_int "reps" reps;
          json_int "shards" k;
          json_float "seq_ns_median" s1_med;
          json_float "sharded_ns_median" sk_med;
          json_float "speedup" speedup;
        ]
        @ (if shard_fired = [||] then [] else [ json_int_array "shard_fired" shard_fired ])
        @
        match digests_equal with
        | Some b -> [ json_str "digests_equal" (string_of_bool b) ]
        | None -> [])
      selected
  in
  match json with Some path -> write_json ~mode:"shards" path records | None -> ()

(* --- sites mode: paired fused vs generic method-site comparison ---- *)

(* Paired A/B of the per-object method-site tables (PR 10) against the
   generic [scope]/[call] composition they fuse, same discipline as
   {!run_ab}: interleaved repetitions, median-of-8, and a digest
   cross-check — the fused path must schedule bit-identical events.
   Both arms run the frames engine; the knob is the application-level
   [~fused] flag, so the comparison isolates the method-site tables
   from the PR 7 engine split.  Minor words are sampled around the
   simulation only (construction and preload excluded) and divided by
   completed requests: steady-state allocation per operation.  The
   migrate-mode dht_zipf row is the acceptance gate — fused must sit at
   least 10x below generic.  (RPC-mode rows keep a per-call floor
   either way: the server-side body closure crosses the wire.) *)
let run_sites ~json () =
  print_endline
    "\n=== Paired A/B: fused method-site tables vs generic scope/call (interleaved, median of 8) ===";
  let reps = 8 in
  let sites_specs =
    [
      ( "dht_zipf:hot-keys-mig",
        (fun ~fused ->
          Dht_zipf.measure_sim_words ~quick:true ~fused
            (Cm_apps.Dht.Messaging Cm_core.Prelude.Migrate)
            1.3),
        true );
      ( "social_graph:walks-mig",
        (fun ~fused ->
          Social_bench.measure_sim_words ~quick:true ~fused Social_bench.Walk
            Cm_core.Prelude.Migrate),
        false );
    ]
  in
  let records =
    List.map
      (fun (name, run, gate) ->
        (* Warm both arms before sampling. *)
        ignore (run ~fused:true);
        ignore (run ~fused:false);
        let f_ns = Array.make reps 0. and f_wpo = Array.make reps 0. in
        let g_ns = Array.make reps 0. and g_wpo = Array.make reps 0. in
        let ops = ref 0 in
        let digests_equal = ref true in
        let sample ~fused ns wpo r =
          let t0 = Unix.gettimeofday () in
          let machine, metrics, words = run ~fused in
          let t1 = Unix.gettimeofday () in
          ns.(r) <- (t1 -. t0) *. 1e9;
          wpo.(r) <- words /. float_of_int (max 1 metrics.Cm_workload.Metrics.ops);
          ops := metrics.Cm_workload.Metrics.ops;
          Cm_machine.Machine.digest machine
        in
        for r = 0 to reps - 1 do
          let df = sample ~fused:true f_ns f_wpo r in
          let dg = sample ~fused:false g_ns g_wpo r in
          if df <> dg then digests_equal := false
        done;
        let f_ns_med = median f_ns and g_ns_med = median g_ns in
        let f_wpo_med = median f_wpo and g_wpo_med = median g_wpo in
        let speedup = g_ns_med /. f_ns_med in
        let ratio = g_wpo_med /. Float.max f_wpo_med 0.01 in
        Printf.printf
          "%-28s fused %7.2f minor-w/op %10.0f ns | generic %7.2f minor-w/op %10.0f ns | \
           %5.2fx, words x%.0f%s\n\
           %!"
          name f_wpo_med f_ns_med g_wpo_med g_ns_med speedup ratio
          (if !digests_equal then "  digests equal" else "  DIGEST MISMATCH");
        if not !digests_equal then
          failwith ("sites: fused vs generic digests differ for " ^ name);
        if gate && f_wpo_med *. 10. > g_wpo_med then
          failwith
            (Printf.sprintf
               "sites: fused minor words/op (%.2f) is not >=10x below generic (%.2f) for %s"
               f_wpo_med g_wpo_med name);
        [
          json_str "name" name;
          json_int "reps" reps;
          json_int "ops" !ops;
          json_float "fused_minor_words_per_op_median" f_wpo_med;
          json_float "generic_minor_words_per_op_median" g_wpo_med;
          json_float "generic_over_fused_words_ratio" ratio;
          json_float "fused_ns_median" f_ns_med;
          json_float "generic_ns_median" g_ns_med;
          json_float "speedup" speedup;
          json_str "digests_equal" (string_of_bool !digests_equal);
        ])
      sites_specs
  in
  match json with Some path -> write_json ~mode:"sites" path records | None -> ()

(* --- sweep mode: full-sweep wall clock at -j 1 vs -j N ------------ *)

(* Run [f] with stdout sent to /dev/null: the sweep mode times whole
   experiments, whose printed tables are already covered by the
   reproduction modes and would drown the timing lines here.  Both the
   -j 1 and -j N runs print (into the void) identically, so discarding
   the bytes does not skew the comparison. *)
let with_discarded_stdout f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o600 in
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

let timed_run ?pool entry =
  let t0 = Unix.gettimeofday () in
  with_discarded_stdout (fun () -> Registry.run ?pool entry);
  (Unix.gettimeofday () -. t0) *. 1e3

let run_sweep ~jobs ~json () =
  let cores = Domain.recommended_domain_count () in
  Printf.printf "\n=== Sweep wall-clock: -j 1 vs -j %d (full fig2 + table1) ===\n%!" jobs;
  if jobs > cores then
    Printf.printf
      "note: %d core(s) available for %d domains — the -j %d run time-shares one CPU,\n\
       so speedups below 1.0x measure domain overhead, not the parallel harness.\n%!"
      cores jobs jobs;
  let entries =
    List.map
      (fun id ->
        match Registry.find id with
        | Some e -> e
        | None -> failwith ("no such experiment: " ^ id))
      [ "fig2"; "table1" ]
  in
  let records =
    List.map
      (fun entry ->
        let j1_ms = timed_run entry in
        let pool = Cm_engine.Pool.create ~domains:jobs in
        let jn_ms =
          Fun.protect
            ~finally:(fun () -> Cm_engine.Pool.shutdown pool)
            (fun () -> timed_run ~pool entry)
        in
        let speedup = j1_ms /. jn_ms in
        Printf.printf "%-10s  -j 1 %8.0f ms   -j %d %8.0f ms   speedup %.2fx\n%!"
          entry.Registry.id j1_ms jobs jn_ms speedup;
        [
          json_str "name" entry.Registry.id;
          json_int "jobs" jobs;
          json_int "cores" cores;
          json_float "j1_ms" j1_ms;
          json_float "jn_ms" jn_ms;
          json_float "speedup" speedup;
        ])
      entries
  in
  write_json ~mode:"sweep" json records

(* --- big mode: million-object scale probes ------------------------ *)

(* Wall-clock seconds and minor words of one call. *)
let timed_alloc f =
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  f ();
  let t1 = Unix.gettimeofday () in
  (t1 -. t0, Gc.minor_words () -. m0)

(* 10^6 registrations into the flat object store vs the pre-flat boxed
   reference ([Store_ref.Objspace_boxed], the old representation kept
   under test/) on a 1024-processor machine: objects-per-second and
   minor words per object for each side. *)
let big_register () =
  let objects = 1_000_000 in
  let n_procs = 1_024 in
  let machine () =
    Cm_machine.Machine.create ~seed:42 ~n_procs ~costs:Cm_machine.Costs.software ()
  in
  let flat_s, flat_mw =
    let s = Cm_runtime.Objspace.create (machine ()) in
    timed_alloc (fun () ->
        for i = 0 to objects - 1 do
          ignore (Cm_runtime.Objspace.register s ~home:(i land (n_procs - 1)) i)
        done)
  in
  let boxed_s, boxed_mw =
    let s = Store_ref.Objspace_boxed.create (machine ()) in
    timed_alloc (fun () ->
        for i = 0 to objects - 1 do
          ignore (Store_ref.Objspace_boxed.register s ~home:(i land (n_procs - 1)) i)
        done)
  in
  let per_sec secs = float_of_int objects /. secs in
  let per_obj mw = mw /. float_of_int objects in
  Printf.printf
    "%-28s flat %10.2e obj/s %6.2f minor-w/obj | boxed %10.2e obj/s %6.2f minor-w/obj\n%!"
    "store:register-1M" (per_sec flat_s) (per_obj flat_mw) (per_sec boxed_s) (per_obj boxed_mw);
  [
    json_str "name" "store:register-1M";
    json_int "objects" objects;
    json_int "n_procs" n_procs;
    json_float "flat_objects_per_sec" (per_sec flat_s);
    json_float "boxed_objects_per_sec" (per_sec boxed_s);
    json_float "flat_minor_words_per_object" (per_obj flat_mw);
    json_float "boxed_minor_words_per_object" (per_obj boxed_mw);
  ]

(* One full-size scale experiment, timed: the 10^6-object dht_zipf /
   social_graph sweep points, with whole-run wall clock and GC words
   (construction + preload + simulation — the number that must stay
   tractable for million-object workloads to be usable). *)
let big_scale name objects thunk =
  let metrics = ref None in
  let before = Gc.quick_stat () in
  let secs, mw = timed_alloc (fun () -> metrics := Some (thunk ())) in
  let after = Gc.quick_stat () in
  let m = Option.get !metrics in
  let major =
    after.Gc.major_words -. before.Gc.major_words
    -. (after.Gc.promoted_words -. before.Gc.promoted_words)
  in
  Printf.printf "%-28s %8.2f s  %8d sim ops  %8.3f ops/1000cyc  %9.2e minor-w  %.2e obj/s\n%!"
    name secs m.Cm_workload.Metrics.ops m.Cm_workload.Metrics.throughput mw
    (float_of_int objects /. secs);
  [
    json_str "name" name;
    json_int "objects" objects;
    json_float "wall_seconds" secs;
    json_float "objects_per_sec" (float_of_int objects /. secs);
    json_int "sim_ops" m.Cm_workload.Metrics.ops;
    json_float "sim_throughput" m.Cm_workload.Metrics.throughput;
    json_float "minor_words" mw;
    json_float "major_words" major;
  ]

(* The paired simulated A/B: the same uniform-key update stream through
   the flat int-pair buckets ([Cm_apps.Dht]) and the pre-PR-8 assoc-list
   buckets ([Store_ref.Dht_boxed]), interleaved repetitions.  Both sides
   charge identical costs over identical request streams, so the two
   machines' digests must match — the proof that the boxed reference is
   cost-identical and the A/B pair compares representations, not
   workloads.  The whole-op allocation figures recorded here include the
   per-op thread-graph construction (scope/call/bind closures) that both
   sides share, so the ratio is informative, not the acceptance floor —
   that is [big_ab_repr]'s job, which isolates the representation. *)
let big_ab_sim () =
  let node_procs = 16 and requesters = 8 in
  let keys = 20_000 and buckets = 1_024 and horizon = 120_000 in
  let reps = 5 in
  let nodes = Array.init node_procs (fun i -> i) in
  let spec =
    {
      Cm_workload.Driver.requesters;
      first_proc = node_procs;
      think = 0;
      warmup = horizon / 5;
      horizon;
    }
  in
  let machine () =
    Cm_machine.Machine.create ~seed:42 ~n_procs:(node_procs + requesters)
      ~costs:Cm_machine.Costs.software ()
  in
  (* Build table + preload (unmeasured), then drive the update stream
     measuring minor words across the simulation only. *)
  let run_flat () =
    let m = machine () in
    let env = Cm_apps.Sysenv.make m in
    let table =
      Cm_apps.Dht.create env ~buckets ~bucket_capacity:64
        ~mode:(Cm_apps.Dht.Messaging Cm_core.Prelude.Rpc) ~node_procs:nodes ()
    in
    for k = 0 to keys - 1 do
      Cm_apps.Dht.preload table ~key:k ~value:k
    done;
    let request _i =
      let open Cm_machine.Thread.Infix in
      let* r = Cm_machine.Thread.rng in
      let key = Cm_engine.Rng.int r keys in
      Cm_apps.Dht.put table ~key ~value:key
    in
    let m0 = Gc.minor_words () in
    let metrics = Cm_workload.Driver.run m spec request in
    (metrics, Gc.minor_words () -. m0, Cm_machine.Machine.digest m)
  in
  let run_boxed () =
    let m = machine () in
    let env = Cm_apps.Sysenv.make m in
    let table =
      Store_ref.Dht_boxed.create env.Cm_apps.Sysenv.prelude ~buckets ~bucket_capacity:64
        ~access:Cm_core.Prelude.Rpc ~node_procs:nodes ()
    in
    for k = 0 to keys - 1 do
      Store_ref.Dht_boxed.preload table ~key:k ~value:k
    done;
    let request _i =
      let open Cm_machine.Thread.Infix in
      let* r = Cm_machine.Thread.rng in
      let key = Cm_engine.Rng.int r keys in
      Store_ref.Dht_boxed.put table ~key ~value:key
    in
    let m0 = Gc.minor_words () in
    let metrics = Cm_workload.Driver.run m spec request in
    (metrics, Gc.minor_words () -. m0, Cm_machine.Machine.digest m)
  in
  let flat_mw = Array.make reps 0. and boxed_mw = Array.make reps 0. in
  let ops = ref 0 in
  let digests_equal = ref true in
  for r = 0 to reps - 1 do
    let fm, fw, fd = run_flat () in
    let bm, bw, bd = run_boxed () in
    if fd <> bd || fm.Cm_workload.Metrics.ops <> bm.Cm_workload.Metrics.ops then
      digests_equal := false;
    ops := fm.Cm_workload.Metrics.ops;
    flat_mw.(r) <- fw /. float_of_int (max 1 fm.Cm_workload.Metrics.ops);
    boxed_mw.(r) <- bw /. float_of_int (max 1 bm.Cm_workload.Metrics.ops)
  done;
  let flat_med = median flat_mw and boxed_med = median boxed_mw in
  let ratio = boxed_med /. Float.max flat_med 0.01 in
  Printf.printf
    "%-28s flat %7.2f minor-w/op | boxed %7.2f minor-w/op | boxed/flat x%.2f%s\n%!"
    "ab:dht-sim-digest" flat_med boxed_med ratio
    (if !digests_equal then "  digests equal" else "  DIGEST MISMATCH");
  if not !digests_equal then
    failwith "big: flat vs boxed DHT digests differ — the A/B pair is not cost-identical";
  [
    json_str "name" "ab:dht-sim-digest";
    json_int "reps" reps;
    json_int "ops" !ops;
    json_float "flat_minor_words_per_op_median" flat_med;
    json_float "boxed_minor_words_per_op_median" boxed_med;
    json_float "boxed_over_flat_ratio" ratio;
    json_str "digests_equal" (string_of_bool !digests_equal);
  ]

(* The representation probe at the full dht_zipf geometry (10^6 keys in
   65 536 buckets on a 1024-processor machine): the same precomputed
   uniform update stream applied directly to both bucket
   representations' steady state — a warm prefix first, then the
   measured ops on a warm table (the boxed list's move-to-front order
   has settled).  Flat buckets overwrite two words in place (zero minor
   words); the boxed list rebuilds O(position) cells per update.  The
   cross-check samples final values from both tables — identical streams
   must leave identical contents.  This is the acceptance floor: the
   flat store's per-op steady-state minor allocation must sit at least
   10x below the boxed representation's. *)
let big_ab_repr () =
  let keys = 1_000_000 and buckets = 65_536 and node_procs = 960 and requesters = 64 in
  let warm_ops = 200_000 and measured_ops = 800_000 in
  let stream =
    let r = Cm_engine.Rng.create ~seed:7 in
    Array.init (warm_ops + measured_ops) (fun _ -> Cm_engine.Rng.int r keys)
  in
  let drive preload_op =
    for j = 0 to warm_ops - 1 do
      let key = stream.(j) in
      preload_op ~key ~value:(key lxor j)
    done;
    timed_alloc (fun () ->
        for j = warm_ops to warm_ops + measured_ops - 1 do
          let key = stream.(j) in
          preload_op ~key ~value:(key lxor j)
        done)
  in
  let machine () =
    Cm_machine.Machine.create ~seed:42 ~n_procs:(node_procs + requesters)
      ~costs:Cm_machine.Costs.software ()
  in
  let nodes = Array.init node_procs (fun i -> i) in
  let flat_env = Cm_apps.Sysenv.make (machine ()) in
  let flat =
    Cm_apps.Dht.create flat_env ~buckets ~bucket_capacity:64
      ~mode:(Cm_apps.Dht.Messaging Cm_core.Prelude.Rpc) ~node_procs:nodes ()
  in
  for k = 0 to keys - 1 do
    Cm_apps.Dht.preload flat ~key:k ~value:k
  done;
  let flat_s, flat_mw = drive (fun ~key ~value -> Cm_apps.Dht.preload flat ~key ~value) in
  let boxed_env = Cm_apps.Sysenv.make (machine ()) in
  let boxed =
    Store_ref.Dht_boxed.create boxed_env.Cm_apps.Sysenv.prelude ~buckets ~bucket_capacity:64
      ~access:Cm_core.Prelude.Rpc ~node_procs:nodes ()
  in
  for k = 0 to keys - 1 do
    Store_ref.Dht_boxed.preload boxed ~key:k ~value:k
  done;
  let boxed_s, boxed_mw =
    drive (fun ~key ~value -> Store_ref.Dht_boxed.preload boxed ~key ~value)
  in
  (* Identical streams must leave identical tables. *)
  for s = 0 to 4_095 do
    let key = s * 244 in
    if Cm_apps.Dht.peek flat key <> Store_ref.Dht_boxed.peek boxed key then
      failwith (Printf.sprintf "big: flat vs boxed disagree on key %d after update stream" key)
  done;
  let per_op mw = mw /. float_of_int measured_ops in
  let ops_per_sec secs = float_of_int measured_ops /. secs in
  let flat_po = per_op flat_mw and boxed_po = per_op boxed_mw in
  let ratio = boxed_po /. Float.max flat_po 0.01 in
  Printf.printf
    "%-28s flat %7.2f minor-w/op %9.2e op/s | boxed %7.2f minor-w/op %9.2e op/s | x%.0f\n%!"
    "ab:dht-bucket-update" flat_po (ops_per_sec flat_s) boxed_po (ops_per_sec boxed_s) ratio;
  if flat_po *. 10. > boxed_po then
    failwith
      (Printf.sprintf
         "big: flat store's steady-state minor words/op (%.2f) is not >=10x below boxed \
          (%.2f)"
         flat_po boxed_po);
  [
    json_str "name" "ab:dht-bucket-update";
    json_int "keys" keys;
    json_int "buckets" buckets;
    json_int "measured_ops" measured_ops;
    json_float "flat_minor_words_per_op" flat_po;
    json_float "boxed_minor_words_per_op" boxed_po;
    json_float "flat_ops_per_sec" (ops_per_sec flat_s);
    json_float "boxed_ops_per_sec" (ops_per_sec boxed_s);
    json_float "boxed_over_flat_ratio" ratio;
  ]

let run_big ~json () =
  print_endline "\n=== big: million-object scale probes (flat vs boxed object space) ===";
  let r_register = big_register () in
  let r_dht =
    big_scale "dht_zipf:full-rpc-s1.3" 1_000_000 (fun () ->
        Dht_zipf.measure ~quick:false (Cm_apps.Dht.Messaging Cm_core.Prelude.Rpc) 1.3)
  in
  let r_social =
    big_scale "social_graph:full-walk-mig" 1_000_000 (fun () ->
        Social_bench.measure ~quick:false Social_bench.Walk Cm_core.Prelude.Migrate)
  in
  let r_sim = big_ab_sim () in
  let r_repr = big_ab_repr () in
  write_json ~mode:"big" json [ r_register; r_dht; r_social; r_sim; r_repr ]

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let json_arg default = if Array.length Sys.argv > 2 then Sys.argv.(2) else default in
  let quick = mode = "quick" in
  if
    mode <> "bench" && mode <> "smoke" && mode <> "one" && mode <> "sweep" && mode <> "ab"
    && mode <> "big" && mode <> "shards" && mode <> "sites"
  then begin
    print_endline "Reproduction of every table and figure (see EXPERIMENTS.md for discussion):";
    Registry.run_all ~quick ()
  end;
  match mode with
  | "rows" -> ()
  | "bench" ->
    run_bechamel ~mode ~quota:3.0 ~limit:500 ~full:true
      ~json:(Some (json_arg "BENCH_pr7.json"))
      ()
  | "ab" ->
    let names =
      String.split_on_char ','
        (json_arg "fig2:counting-throughput,table1:btree-throughput")
    in
    let json = if Array.length Sys.argv > 3 then Some Sys.argv.(3) else None in
    run_ab ~names ~json ()
  | "shards" ->
    let names =
      String.split_on_char ','
        (json_arg "fig2:counting-throughput,dht_zipf:hot-keys,social_graph:walks")
    in
    let json = Some (if Array.length Sys.argv > 3 then Sys.argv.(3) else "BENCH_pr9.json") in
    let k =
      match Option.bind (Sys.getenv_opt "CM_SHARDS") int_of_string_opt with
      | Some n when n >= 2 -> n
      | Some _ | None -> 2
    in
    run_shards ~k ~names ~json ()
  | "sites" -> run_sites ~json:(Some (json_arg "BENCH_pr10.json")) ()
  | "smoke" ->
    (* Fast pass for CI: enough to catch gross hot-path regressions and
       prove the measurement/JSON plumbing works. *)
    run_bechamel ~mode ~quota:0.05 ~limit:20 ~full:false
      ~json:(Some (json_arg "BENCH_smoke.json"))
      ()
  | "one" ->
    (* NAME[,NAME...] [JSON]: full-horizon bechamel for selected specs,
       optionally recording them (how BENCH_pr3.json's headline pair is
       produced without the whole sweep). *)
    let names = String.split_on_char ',' (json_arg "table1:btree-throughput") in
    let json = if Array.length Sys.argv > 3 then Some Sys.argv.(3) else None in
    run_bechamel ~only:names ~mode ~quota:3.0 ~limit:500 ~full:true ~json ()
  | "big" -> run_big ~json:(json_arg "BENCH_pr8.json") ()
  | "sweep" ->
    let jobs =
      match Option.bind (Sys.getenv_opt "CM_JOBS") int_of_string_opt with
      | Some n when n >= 1 -> n
      | Some _ | None -> 4
    in
    run_sweep ~jobs ~json:(json_arg "BENCH_pr4.json") ()
  | _ -> run_bechamel ~mode ~quota:0.5 ~limit:200 ~full:false ~json:None ()
