(* The benchmark harness.

   Running this executable regenerates every table and figure of the
   paper's evaluation (the same rows `bin/repro all` prints), then runs
   one Bechamel micro-benchmark per table/figure, timing the simulation
   that regenerates it (at reduced horizons, so the measurement loop
   stays tractable).

   The Bechamel pass also emits a machine-readable JSON file — the
   repository's perf-regression trajectory.  Each record carries the
   OLS ns/run estimate plus, where the workload exposes its machine,
   one instrumented run's simulated clock and event count, from which
   the throughput figures simulated-cycles/sec and events/sec are
   derived.  Perf PRs commit the refreshed file (BENCH_<pr>.json) and
   CI runs the smoke mode so a hot-path regression fails the build.

   Usage:
     dune exec bench/main.exe               reproduction rows + bechamel
     dune exec bench/main.exe -- rows       reproduction rows only
     dune exec bench/main.exe -- bench [f]  bechamel + JSON (default BENCH_pr2.json)
     dune exec bench/main.exe -- quick      reduced-horizon rows + bechamel
     dune exec bench/main.exe -- smoke [f]  fast bechamel pass for CI
                                            (default BENCH_smoke.json)
     dune exec bench/main.exe -- one NAME[,NAME...] [f]
                                            bechamel for selected specs, at the
                                            full-bench horizons (iterating on
                                            a few rows without the whole
                                            sweep); with [f], record them as
                                            JSON
*)

open Cm_experiments

let counting_cfg ~horizon requesters =
  {
    Counting_run.default with
    Counting_run.requesters;
    horizon;
    warmup = 10_000;
  }

let btree_cfg ~horizon think =
  { Btree_run.default with Btree_run.think; horizon; warmup = 10_000 }

let fanout10_cfg ~horizon = { Btree_run.fanout10 with Btree_run.horizon = horizon; warmup = 10_000 }

let bench_scheme_counting scheme ~horizon requesters () =
  ignore (Counting_run.run scheme (counting_cfg ~horizon requesters))

let bench_scheme_btree scheme ~horizon think () =
  ignore (Btree_run.run scheme (btree_cfg ~horizon think))

let bench_fig1 () =
  (* One large cell of the message-model sweep per mechanism. *)
  ignore (Fig1.run_messaging ~access:Cm_runtime.Runtime.Migrate ~n:16 ~m:32);
  ignore (Fig1.run_messaging ~access:Cm_runtime.Runtime.Rpc ~n:16 ~m:32);
  ignore (Fig1.run_shmem ~n:16 ~m:32)

let bench_table5 () = ignore (Table5.measure_one_migration ())

(* One measured workload: the Bechamel thunk plus, where the experiment
   exposes its machine, an instrumented single run for the simulated
   clock / event-count the JSON throughput figures derive from. *)
type spec = {
  name : string;
  thunk : unit -> unit;
  probe : (unit -> Cm_machine.Machine.t) option;
}

let counting_spec name scheme ~horizon requesters =
  {
    name;
    thunk = bench_scheme_counting scheme ~horizon requesters;
    probe =
      Some
        (fun () ->
          fst (Counting_run.run_with_machine scheme (counting_cfg ~horizon requesters)));
  }

let btree_spec name scheme ~horizon think =
  {
    name;
    thunk = bench_scheme_btree scheme ~horizon think;
    probe = Some (fun () -> fst (Btree_run.run_with_machine scheme (btree_cfg ~horizon think)));
  }

(* Horizons.  The full bench mode runs the two headline rows (fig2,
   table1) long enough that the event loop — the thing the perf work
   targets — dominates per-run machine construction; the remaining rows
   get a moderate horizon, and the quick/smoke modes a short one so CI
   stays fast.  Comparisons across revisions are only meaningful at
   matching horizons (the JSON carries ns/run, not a normalized cost). *)
let specs ~full =
  let long = if full then 6_000_000 else 60_000 in
  let mid = if full then 300_000 else 60_000 in
  [
    { name = "fig1:message-model"; thunk = bench_fig1; probe = None };
    counting_spec "fig2:counting-throughput"
      (Scheme.Cp { hw = false; repl = false })
      ~horizon:long 32;
    counting_spec "fig3:counting-bandwidth" Scheme.Sm ~horizon:mid 32;
    btree_spec "table1:btree-throughput"
      (Scheme.Cp { hw = false; repl = false })
      ~horizon:long 0;
    btree_spec "table2:btree-bandwidth" Scheme.Sm ~horizon:mid 0;
    btree_spec "table3:btree-think" (Scheme.Cp { hw = false; repl = true }) ~horizon:mid 10_000;
    btree_spec "table4:btree-think-bw" Scheme.Sm ~horizon:mid 10_000;
    { name = "table5:migration-cost"; thunk = bench_table5; probe = None };
    {
      name = "fanout10:small-nodes";
      thunk =
        (fun () ->
          ignore
            (Btree_run.run (Scheme.Cp { hw = false; repl = true }) (fanout10_cfg ~horizon:mid)));
      probe =
        Some
          (fun () ->
            fst
              (Btree_run.run_with_machine
                 (Scheme.Cp { hw = false; repl = true })
                 (fanout10_cfg ~horizon:mid)));
    };
  ]

type result = {
  r_name : string;
  ns_per_run : float option;
  sim_cycles : int option;
  events_fired : int option;
}

let measure ~quota ~limit spec =
  let open Bechamel in
  let test = Test.make ~name:spec.name (Staged.stage spec.thunk) in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit ~quota:(Time.second quota) () in
  let results = Benchmark.all cfg instances test in
  let estimate = ref None in
  Hashtbl.iter (* lint: allow hashtbl-order *)
    (fun _name measurements ->
      let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
      let stats = Analyze.one ols Toolkit.Instance.monotonic_clock measurements in
      match Analyze.OLS.estimates stats with
      | Some [ est ] -> estimate := Some est
      | Some _ | None -> ())
    results;
  let sim_cycles, events_fired =
    match spec.probe with
    | None -> (None, None)
    | Some probe ->
      let machine = probe () in
      ( Some (Cm_machine.Machine.now machine),
        Some (Cm_engine.Sim.events_fired machine.Cm_machine.Machine.sim) )
  in
  (match !estimate with
  | Some est ->
    let throughput =
      match sim_cycles with
      | Some cycles when est > 0. ->
        Printf.sprintf "  %10.2e simcyc/s" (float_of_int cycles /. (est *. 1e-9))
      | _ -> ""
    in
    Printf.printf "%-28s %12.0f ns/run%s\n%!" spec.name est throughput
  | None -> Printf.printf "%-28s (no estimate)\n%!" spec.name);
  { r_name = spec.name; ns_per_run = !estimate; sim_cycles; events_fired }

(* Hand-rolled JSON writer — the container has no JSON library and the
   schema is flat. *)
let write_json ~mode path results =
  let oc = open_out path in
  let field_opt name pp = function None -> [] | Some v -> [ Printf.sprintf "%S: %s" name (pp v) ] in
  let float_pp v = Printf.sprintf "%.6e" v in
  let int_pp = string_of_int in
  let record r =
    let derived =
      match (r.ns_per_run, r.sim_cycles, r.events_fired) with
      | Some ns, Some cycles, Some events when ns > 0. ->
        [
          Printf.sprintf "%S: %s" "sim_cycles_per_sec" (float_pp (float_of_int cycles /. (ns *. 1e-9)));
          Printf.sprintf "%S: %s" "events_per_sec" (float_pp (float_of_int events /. (ns *. 1e-9)));
        ]
      | _ -> []
    in
    let fields =
      [ Printf.sprintf "%S: %S" "name" r.r_name ]
      @ field_opt "ns_per_run" float_pp r.ns_per_run
      @ field_opt "sim_cycles" int_pp r.sim_cycles
      @ field_opt "events_fired" int_pp r.events_fired
      @ derived
    in
    "    {" ^ String.concat ", " fields ^ "}"
  in
  Printf.fprintf oc "{\n  \"schema\": \"cm-bench/1\",\n  \"mode\": %S,\n  \"tests\": [\n%s\n  ]\n}\n"
    mode
    (String.concat ",\n" (List.map record results));
  close_out oc;
  Printf.printf "wrote %s (%d tests)\n%!" path (List.length results)

let run_bechamel ?only ~mode ~quota ~limit ~full ~json () =
  print_endline "\n=== Bechamel micro-benchmarks (wall-clock of the regenerating sims) ===";
  let selected =
    match only with
    | None -> specs ~full
    | Some names ->
      List.map
        (fun name ->
          match List.find_opt (fun s -> s.name = name) (specs ~full) with
          | Some s -> s
          | None ->
            List.iter (fun s -> prerr_endline s.name) (specs ~full);
            failwith ("no such spec: " ^ name))
        names
  in
  let results = List.map (measure ~quota ~limit) selected in
  match json with Some path -> write_json ~mode path results | None -> ()

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let json_arg default = if Array.length Sys.argv > 2 then Sys.argv.(2) else default in
  let quick = mode = "quick" in
  if mode <> "bench" && mode <> "smoke" && mode <> "one" then begin
    print_endline "Reproduction of every table and figure (see EXPERIMENTS.md for discussion):";
    Registry.run_all ~quick ()
  end;
  match mode with
  | "rows" -> ()
  | "bench" ->
    run_bechamel ~mode ~quota:3.0 ~limit:500 ~full:true
      ~json:(Some (json_arg "BENCH_pr2.json"))
      ()
  | "smoke" ->
    (* Fast pass for CI: enough to catch gross hot-path regressions and
       prove the measurement/JSON plumbing works. *)
    run_bechamel ~mode ~quota:0.05 ~limit:20 ~full:false
      ~json:(Some (json_arg "BENCH_smoke.json"))
      ()
  | "one" ->
    (* NAME[,NAME...] [JSON]: full-horizon bechamel for selected specs,
       optionally recording them (how BENCH_pr3.json's headline pair is
       produced without the whole sweep). *)
    let names = String.split_on_char ',' (json_arg "table1:btree-throughput") in
    let json = if Array.length Sys.argv > 3 then Some Sys.argv.(3) else None in
    run_bechamel ~only:names ~mode ~quota:3.0 ~limit:500 ~full:true ~json ()
  | _ -> run_bechamel ~mode ~quota:0.5 ~limit:200 ~full:false ~json:None ()
