(* Tests for the unified message transport.

   The central property is digest-equivalence: a Transport round trip
   must charge exactly the cycles, schedule exactly the events, and
   touch exactly the statistics of the hand-rolled
   send-pipeline/Network/spawn/recv-pipeline code it replaced.  The old
   code is kept here, verbatim, as the oracle (tests are outside the
   raw-send lint's scope, so the raw Network calls below are legal).

   The second half covers fault injection: seed-determinism, drop /
   duplicate semantics, delivery accounting, and the
   [check_all_delivered] sanitizer. *)

open Cm_engine
open Cm_machine
open Thread.Infix

let costs = Costs.software

let machine () = Machine.create ~seed:11 ~n_procs:8 ~costs ()

(* ------------------------------------------------------------------ *)
(* Oracle: the hand-rolled pipelines the transport replaced            *)
(* ------------------------------------------------------------------ *)

(* Verbatim shape of the pre-transport Runtime.rpc_call (without the
   runtime's own counters). *)
let oracle_rpc m ~dst ~args_words ~result_words body =
  let c = m.Machine.costs and net = m.Machine.net in
  let rpc_k = Network.kind net "rpc" and reply_k = Network.kind net "rpc_reply" in
  let* caller = Thread.proc in
  let caller_id = Processor.id caller in
  let* () = Thread.compute (Costs.send_pipeline c ~words:args_words) in
  let* r =
    Thread.await (fun ~resume ->
        let (_ : int) =
          Network.send_k net ~src:caller_id ~dst ~words:args_words ~kind:rpc_k (fun () ->
              Machine.spawn m ~on:dst
                (let* () =
                   Thread.compute (Costs.recv_pipeline c ~words:args_words ~new_thread:true)
                 in
                 let* r = body in
                 let* here = Thread.proc in
                 let* () = Thread.compute (Costs.send_pipeline c ~words:result_words) in
                 fun _ctx k ->
                   let (_ : int) =
                     Network.send_k net ~src:(Processor.id here) ~dst:caller_id
                       ~words:result_words ~kind:reply_k (fun () -> resume r)
                   in
                   k ()))
        in
        ())
  in
  let* () = Thread.compute (Costs.recv_pipeline c ~words:result_words ~new_thread:false) in
  Thread.return r

(* Verbatim shape of the pre-transport Runtime.migrate_call. *)
let oracle_hop m ~dst ~words =
  let c = m.Machine.costs in
  let* () = Thread.compute (Costs.send_pipeline c ~words) in
  Thread.travel_k ~net:m.Machine.net ~dst:(Machine.proc m dst) ~words
    ~kind:(Network.kind m.Machine.net "migrate")
    ~recv_work:(Costs.recv_pipeline c ~words ~new_thread:true)

(* Verbatim shape of the pre-transport one-way push (Replicate.push_to /
   Btree_msg.register_remote). *)
let oracle_post m ~dst ~words ~work : unit Thread.t =
  let c = m.Machine.costs in
  let* () = Thread.compute (Costs.send_pipeline c ~words) in
  fun _ctx k ->
    let (_ : int) =
      Network.send_k m.Machine.net ~src:0 ~dst ~words
        ~kind:(Network.kind m.Machine.net "oneway")
        (fun () ->
          Machine.spawn m ~on:dst
            (let* () = Thread.compute (Costs.recv_pipeline c ~words ~new_thread:true) in
             Thread.compute work))
    in
    k ()

(* ------------------------------------------------------------------ *)
(* Digest-equivalence property                                        *)
(* ------------------------------------------------------------------ *)

type op =
  | Rpc of int * int * int * int  (* dst, args_words, result_words, work *)
  | Hop of int * int * int  (* dst, words, work *)
  | Post of int * int * int  (* dst, words, work *)

let run_oracle ops =
  let m = machine () in
  Machine.spawn m ~on:0
    (Thread.iter_list
       (function
         | Rpc (dst, args_words, result_words, work) ->
           Thread.ignore_m
             (oracle_rpc m ~dst ~args_words ~result_words
                (let* () = Thread.compute work in
                 Thread.return work))
         | Hop (dst, words, work) ->
           (* hop out, work, hop back home so the next op matches *)
           let* () = oracle_hop m ~dst ~words in
           let* () = Thread.compute work in
           oracle_hop m ~dst:0 ~words
         | Post (dst, words, work) -> oracle_post m ~dst ~words ~work)
       ops);
  Machine.run m;
  Machine.digest m

let run_transport ops =
  let m = machine () in
  let tp = Machine.transport m in
  let rpc_k = Transport.kind tp "rpc" in
  Transport.Endpoint.register_all tp ~kind:rpc_k (fun server -> server);
  let reply_k = Transport.kind tp "rpc_reply" in
  let migrate_k = Transport.kind tp "migrate" in
  let oneway_k = Transport.kind tp "oneway" in
  Transport.Endpoint.register_all tp ~kind:oneway_k (fun work -> Thread.compute work);
  Machine.spawn m ~on:0
    (Thread.iter_list
       (function
         | Rpc (dst, args_words, result_words, work) ->
           Thread.ignore_m
             (Transport.call tp ~req:rpc_k ~reply:reply_k ~dst ~args_words ~result_words
                (let* () = Thread.compute work in
                 Thread.return work))
         | Hop (dst, words, work) ->
           let* () =
             Transport.migrate tp migrate_k ~dst:(Machine.proc m dst) ~words ~fresh:true
           in
           let* () = Thread.compute work in
           Transport.migrate tp migrate_k ~dst:(Machine.proc m 0) ~words ~fresh:true
         | Post (dst, words, work) -> Transport.post tp oneway_k ~dst ~words work)
       ops);
  Machine.run m;
  let digest = Machine.digest m in
  Alcotest.(check int) "transport run fully drained" 0 (Transport.inflight_total tp);
  Transport.check_all_delivered tp;
  digest

let op_gen =
  QCheck.Gen.(
    let dst = int_range 1 7 in
    oneof
      [
        map (fun (d, a, r, w) -> Rpc (d, a, r, w))
          (quad dst (int_range 0 64) (int_range 1 32) (int_range 0 400));
        map (fun (d, words, w) -> Hop (d, words, w))
          (triple dst (int_range 0 64) (int_range 0 400));
        map (fun (d, words, w) -> Post (d, words, w))
          (triple dst (int_range 0 64) (int_range 0 400));
      ])

let op_print = function
  | Rpc (d, a, r, w) -> Printf.sprintf "Rpc(dst=%d,args=%d,result=%d,work=%d)" d a r w
  | Hop (d, words, w) -> Printf.sprintf "Hop(dst=%d,words=%d,work=%d)" d words w
  | Post (d, words, w) -> Printf.sprintf "Post(dst=%d,words=%d,work=%d)" d words w

let prop_digest_equivalence =
  QCheck.Test.make
    ~name:"transport round trips charge cycles identical to the hand-rolled pipeline"
    ~count:40
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map op_print ops))
       QCheck.Gen.(list_size (int_range 1 6) op_gen))
    (fun ops -> String.equal (run_oracle ops) (run_transport ops))

(* ------------------------------------------------------------------ *)
(* Fault injection                                                    *)
(* ------------------------------------------------------------------ *)

let flaky_spec =
  { Transport.drop = 0.3; duplicate = 0.2; delay = 0.15; delay_cycles = 200 }

(* Post [n] messages round-robin under the given fault config; returns
   the machine digest and the accounting for the kind. *)
let run_flaky ~seed ~spec ~n () =
  let m = machine () in
  let tp = Machine.transport m in
  let k = Transport.kind tp "flaky" in
  let handled = ref 0 in
  Transport.Endpoint.register_all tp ~kind:k (fun () ->
      incr handled;
      Thread.compute 50);
  Transport.configure_faults tp ~seed [ ("flaky", spec) ];
  Machine.spawn m ~on:0
    (Thread.repeat n (fun i ->
         let* () = Transport.post tp k ~dst:(1 + (i mod 7)) ~words:16 () in
         Thread.sleep 100));
  Machine.run m;
  ( Machine.digest m,
    Transport.posted tp "flaky",
    Transport.delivered tp "flaky",
    Transport.dropped tp "flaky",
    !handled,
    tp )

let test_fault_determinism () =
  let d1, p1, del1, drop1, h1, _ = run_flaky ~seed:7 ~spec:flaky_spec ~n:60 () in
  let d2, p2, del2, drop2, h2, _ = run_flaky ~seed:7 ~spec:flaky_spec ~n:60 () in
  Alcotest.(check string) "same seed, same digest" d1 d2;
  Alcotest.(check int) "same posted" p1 p2;
  Alcotest.(check int) "same delivered" del1 del2;
  Alcotest.(check int) "same drops" drop1 drop2;
  Alcotest.(check int) "same handler runs" h1 h2;
  Alcotest.(check int) "all 60 posted" 60 p1;
  Alcotest.(check bool) "some drops happened" true (drop1 > 0);
  Alcotest.(check bool) "some deliveries happened" true (del1 > 0)

let test_faults_off_is_baseline () =
  (* No fault config: the digest matches a run with the no-op config —
     arming the machinery with zero probabilities draws no randomness
     and schedules nothing extra. *)
  let d_off, _, _, _, _, _ = run_flaky ~seed:1 ~spec:Transport.no_fault ~n:20 () in
  let run_clean () =
    let m = machine () in
    let tp = Machine.transport m in
    let k = Transport.kind tp "flaky" in
    Transport.Endpoint.register_all tp ~kind:k (fun () -> Thread.compute 50);
    Machine.spawn m ~on:0
      (Thread.repeat 20 (fun i ->
           let* () = Transport.post tp k ~dst:(1 + (i mod 7)) ~words:16 () in
           Thread.sleep 100));
    Machine.run m;
    Machine.digest m
  in
  Alcotest.(check string) "zero-probability faults change nothing" (run_clean ()) d_off

let test_drop_all () =
  let _, posted, delivered, dropped, handled, tp =
    run_flaky ~seed:3
      ~spec:{ Transport.no_fault with drop = 1.0 }
      ~n:10 ()
  in
  Alcotest.(check int) "all posted" 10 posted;
  Alcotest.(check int) "all dropped" 10 dropped;
  Alcotest.(check int) "none delivered" 0 delivered;
  Alcotest.(check int) "handler never ran" 0 handled;
  (* Dropped messages are accounted for: the sanitizer stays silent. *)
  Transport.check_all_delivered tp;
  Alcotest.(check int) "nothing in flight" 0 (Transport.inflight_total tp)

let test_duplicate_all () =
  let _, posted, delivered, _, handled, tp =
    run_flaky ~seed:5
      ~spec:{ Transport.no_fault with duplicate = 1.0 }
      ~n:10 ()
  in
  Alcotest.(check int) "all posted" 10 posted;
  Alcotest.(check int) "each delivered twice" 20 delivered;
  Alcotest.(check int) "handler ran twice per post" 20 handled;
  Transport.check_all_delivered tp;
  Alcotest.(check int) "nothing in flight" 0 (Transport.inflight_total tp)

let test_delay_all () =
  let _, posted, delivered, _, handled, tp =
    run_flaky ~seed:9
      ~spec:{ Transport.no_fault with delay = 1.0; delay_cycles = 500 }
      ~n:10 ()
  in
  Alcotest.(check int) "all posted" 10 posted;
  Alcotest.(check int) "all delivered despite the delay leg" 10 delivered;
  Alcotest.(check int) "handler ran for each" 10 handled;
  Transport.check_all_delivered tp;
  Alcotest.(check int) "nothing in flight" 0 (Transport.inflight_total tp)

let test_cancel_pending_delays () =
  (* Deliveries stuck in the fault-delay stage are cancellable timers:
     revoking them counts the messages as dropped, so the in-flight
     account closes without them ever arriving. *)
  let m = machine () in
  let tp = Machine.transport m in
  let k = Transport.kind tp "flaky" in
  let handled = ref 0 in
  Transport.Endpoint.register_all tp ~kind:k (fun () ->
      incr handled;
      Thread.return ());
  Transport.configure_faults tp ~seed:13
    [ ("flaky", { Transport.no_fault with delay = 1.0; delay_cycles = 1_000_000 }) ];
  Machine.spawn m ~on:0 (Thread.repeat 5 (fun i -> Transport.post tp k ~dst:(1 + i) ~words:8 ()));
  (* Far enough for every wire hop to land (arming the delay timers),
     far before any timer expires. *)
  Machine.run ~until:5_000 m;
  Alcotest.(check int) "all posted" 5 (Transport.posted tp "flaky");
  Alcotest.(check int) "all stuck in the delay stage" 5 (Transport.inflight tp "flaky");
  Alcotest.(check int) "five timers revoked" 5 (Transport.cancel_pending_delays tp);
  Alcotest.(check int) "revoked deliveries count as dropped" 5 (Transport.dropped tp "flaky");
  Transport.check_all_delivered tp;
  Alcotest.(check int) "nothing in flight" 0 (Transport.inflight_total tp);
  (* Draining the simulator delivers nothing: the events are gone. *)
  Machine.run m;
  Alcotest.(check int) "no handler ever ran" 0 !handled;
  Alcotest.(check int) "second sweep finds nothing" 0 (Transport.cancel_pending_delays tp)

let test_sanitizer_catches_lost_message () =
  (* Stop the run before the message can arrive: it is posted, not
     dropped, and never delivered — exactly what the sanitizer exists to
     catch (a transport bug would look the same after a drained run). *)
  let m = machine () in
  let tp = Machine.transport m in
  let k = Transport.kind tp "flaky" in
  Transport.signal tp k ~src:0 ~dst:5 ~words:16 (fun () -> ());
  Machine.run ~until:1 m;
  Alcotest.(check int) "message still in flight" 1 (Transport.inflight tp "flaky");
  match Transport.check_all_delivered tp with
  | () -> Alcotest.fail "lost message not reported"
  | exception Check.Violation _ -> ()

let test_endpoint_counters () =
  let m = machine () in
  let tp = Machine.transport m in
  let k = Transport.kind tp "counted" in
  Transport.Endpoint.register_all tp ~kind:k (fun () -> Thread.return ());
  Machine.spawn m ~on:0
    (let* () = Transport.post tp k ~dst:3 ~words:4 () in
     let* () = Transport.post tp k ~dst:3 ~words:4 () in
     Transport.post tp k ~dst:6 ~words:4 ());
  Machine.run m;
  Alcotest.(check int) "proc 3 delivered" 2 (Transport.Endpoint.delivered ~kind:k ~proc:3);
  Alcotest.(check int) "proc 6 delivered" 1 (Transport.Endpoint.delivered ~kind:k ~proc:6);
  Alcotest.(check int) "proc 1 delivered" 0 (Transport.Endpoint.delivered ~kind:k ~proc:1);
  Alcotest.(check int) "kind delivered" 3 (Transport.delivered tp "counted")

let test_unregistered_endpoint_raises () =
  let m = machine () in
  let tp = Machine.transport m in
  let k = Transport.kind tp "nobody_home" in
  Transport.Endpoint.register tp ~proc:1 ~kind:k (fun () -> Thread.return ());
  Machine.spawn m ~on:0 (Transport.post tp k ~dst:2 ~words:4 ());
  match Machine.run m with
  | () -> Alcotest.fail "delivery to an unregistered endpoint did not raise"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "cm_transport"
    [
      ( "oracle",
        List.map QCheck_alcotest.to_alcotest [ prop_digest_equivalence ] );
      ( "faults",
        [
          Alcotest.test_case "same seed, same faults" `Quick test_fault_determinism;
          Alcotest.test_case "zero-probability config is free" `Quick
            test_faults_off_is_baseline;
          Alcotest.test_case "drop everything" `Quick test_drop_all;
          Alcotest.test_case "duplicate everything" `Quick test_duplicate_all;
          Alcotest.test_case "delay everything" `Quick test_delay_all;
          Alcotest.test_case "cancel pending delays" `Quick test_cancel_pending_delays;
          Alcotest.test_case "sanitizer catches a lost message" `Quick
            test_sanitizer_catches_lost_message;
        ] );
      ( "endpoints",
        [
          Alcotest.test_case "per-endpoint delivery counters" `Quick test_endpoint_counters;
          Alcotest.test_case "unregistered endpoint raises" `Quick
            test_unregistered_endpoint_raises;
        ] );
    ]
