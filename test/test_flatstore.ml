(* The flat object space against its boxed reference (kept verbatim in
   store_ref/): qcheck equivalence over random op sequences, a machine-
   digest oracle through objmig-style runs, the growth-aliasing
   regression the old representation was one refactor away from, and
   replica bitsets at 1024 processors. *)

open Cm_engine
open Cm_machine
open Cm_runtime
open Thread.Infix

let costs = Costs.software

let machine ?(n_procs = 8) () = Machine.create ~seed:11 ~n_procs ~costs ()

(* ------------------------------------------------------------------ *)
(* qcheck: flat store vs boxed reference                              *)
(* ------------------------------------------------------------------ *)

type op = Register of int * int | Move of int * int | Home of int | State of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (* home/index ranges deliberately overshoot: [-1] and [>= n]
           must raise identically on both stores. *)
        (4, map2 (fun h v -> Register (h, v)) (int_range (-1) 8) (int_range 0 1000));
        (3, map2 (fun i t -> Move (i, t)) (int_range (-1) 48) (int_range (-1) 8));
        (2, map (fun i -> Home i) (int_range (-1) 48));
        (2, map (fun i -> State i) (int_range (-1) 48));
      ])

let op_print = function
  | Register (h, v) -> Printf.sprintf "Register(home=%d,v=%d)" h v
  | Move (i, t) -> Printf.sprintf "Move(%d,to=%d)" i t
  | Home i -> Printf.sprintf "Home %d" i
  | State i -> Printf.sprintf "State %d" i

let outcome f = try Ok (f ()) with Invalid_argument e -> Error e

let check_same what a b =
  if a <> b then
    QCheck.Test.fail_reportf "flat/boxed diverge on %s: %s vs %s" what
      (match a with Ok v -> Printf.sprintf "Ok %d" v | Error e -> "Error " ^ e)
      (match b with Ok v -> Printf.sprintf "Ok %d" v | Error e -> "Error " ^ e)

let prop_store_equivalence =
  QCheck.Test.make ~name:"flat store = boxed store on random op sequences" ~count:300
    QCheck.(make ~print:(fun l -> String.concat "; " (List.map op_print l)) Gen.(list_size (int_range 0 120) op_gen))
    (fun ops ->
      let m = machine () in
      let flat = Objspace.create m in
      let boxed = Store_ref.Objspace_boxed.create m in
      List.iter
        (fun op ->
          match op with
          | Register (home, v) ->
            check_same "register"
              (outcome (fun () -> (Objspace.register flat ~home v :> int)))
              (outcome (fun () -> Store_ref.Objspace_boxed.register boxed ~home v))
          | Move (i, to_) ->
            check_same "move"
              (outcome (fun () ->
                   Objspace.move flat (Objspace.id_of_int i) ~to_;
                   0))
              (outcome (fun () ->
                   Store_ref.Objspace_boxed.move boxed i ~to_;
                   0))
          | Home i ->
            check_same "home"
              (outcome (fun () -> Objspace.home flat (Objspace.id_of_int i)))
              (outcome (fun () -> Store_ref.Objspace_boxed.home boxed i))
          | State i ->
            check_same "state"
              (outcome (fun () -> Objspace.state flat (Objspace.id_of_int i)))
              (outcome (fun () -> Store_ref.Objspace_boxed.state boxed i)))
        ops;
      (* Final sweep: counts, every home/state, and iteration order. *)
      if Objspace.count flat <> Store_ref.Objspace_boxed.count boxed then
        QCheck.Test.fail_reportf "count diverges: %d vs %d" (Objspace.count flat)
          (Store_ref.Objspace_boxed.count boxed);
      let fs = ref [] and bs = ref [] in
      Objspace.iter (fun i h s -> fs := ((i :> int), h, s) :: !fs) flat;
      Store_ref.Objspace_boxed.iter (fun i h s -> bs := (i, h, s) :: !bs) boxed;
      !fs = !bs)

(* ------------------------------------------------------------------ *)
(* qcheck: digest oracle through an objmig-style run                  *)
(* ------------------------------------------------------------------ *)

(* Random call/pull/migrate traffic over objects in the flat store,
   driven by the real [Objmig]; a boxed mirror tracks where each object
   should be.  The run must (a) leave the flat store's homes exactly
   where the mirror says, and (b) produce a bit-identical machine
   digest when replayed — representation changes must be invisible to
   simulated time. *)

type mig_op = Call of int | Pull of int | Migrate of int * int

let mig_gen n_objs n_procs =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun j -> Call j) (int_range 0 (n_objs - 1)));
        (2, map (fun j -> Pull j) (int_range 0 (n_objs - 1)));
        ( 2,
          map2 (fun j t -> Migrate (j, t)) (int_range 0 (n_objs - 1)) (int_range 0 (n_procs - 1))
        );
      ])

let mig_print = function
  | Call j -> Printf.sprintf "Call %d" j
  | Pull j -> Printf.sprintf "Pull %d" j
  | Migrate (j, t) -> Printf.sprintf "Migrate(%d,to=%d)" j t

let n_objs = 6

let n_procs = 8

let objmig_run ops =
  let m = Machine.create ~seed:11 ~n_procs ~costs () in
  let rt = Runtime.create m in
  let space = Objspace.create m in
  let om = Objmig.create rt space ~words_of:(fun (_ : int ref) -> 16) in
  let ids = Array.init n_objs (fun j -> Objspace.register space ~home:(j mod n_procs) (ref j)) in
  Machine.spawn m ~on:0
    (Thread.iter_list
       (fun op ->
         match op with
         | Call j ->
           Thread.ignore_m
             (Objmig.call om ids.(j) ~args_words:8 ~result_words:2 (fun c ->
                  incr c;
                  let* () = Thread.compute 30 in
                  Thread.return !c))
         | Pull j ->
           Thread.ignore_m
             (Objmig.call_pull om ids.(j) ~result_words:2 (fun c ->
                  incr c;
                  let* () = Thread.compute 30 in
                  Thread.return !c))
         | Migrate (j, to_) -> Objmig.migrate_object om ids.(j) ~to_)
       ops);
  Machine.run m;
  let homes = Array.map (fun i -> Objspace.home space i) ids in
  let values = Array.map (fun i -> !(Objspace.state space i)) ids in
  (Machine.digest m, homes, values)

let prop_objmig_digest_oracle =
  QCheck.Test.make ~name:"objmig run over flat store: homes match boxed mirror, digest stable"
    ~count:60
    QCheck.(
      make
        ~print:(fun l -> String.concat "; " (List.map mig_print l))
        Gen.(list_size (int_range 1 40) (mig_gen n_objs n_procs)))
    (fun ops ->
      let digest1, homes, values = objmig_run ops in
      let digest2, homes2, values2 = objmig_run ops in
      if digest1 <> digest2 then QCheck.Test.fail_report "same run, different machine digest";
      if homes <> homes2 || values <> values2 then
        QCheck.Test.fail_report "same run, different final object state";
      (* Boxed mirror of where each object must end up: the driving
         thread runs on proc 0, so a pull lands the object there; a
         migrate lands it at its target. *)
      let mirror = Machine.create ~seed:11 ~n_procs ~costs () in
      let boxed = Store_ref.Objspace_boxed.create mirror in
      let bids =
        Array.init n_objs (fun j ->
            Store_ref.Objspace_boxed.register boxed ~home:(j mod n_procs) j)
      in
      List.iter
        (function
          | Call _ -> ()
          | Pull j -> Store_ref.Objspace_boxed.move boxed bids.(j) ~to_:0
          | Migrate (j, to_) -> Store_ref.Objspace_boxed.move boxed bids.(j) ~to_)
        ops;
      let expect = Array.map (fun i -> Store_ref.Objspace_boxed.home boxed i) bids in
      if homes <> expect then
        QCheck.Test.fail_reportf "final homes diverge from boxed mirror: [%s] vs [%s]"
          (String.concat ";" (Array.to_list (Array.map string_of_int homes)))
          (String.concat ";" (Array.to_list (Array.map string_of_int expect)));
      (* Each op increments the object it touches exactly once. *)
      let touches = Array.make n_objs 0 in
      List.iter
        (function
          | Call j | Pull j -> touches.(j) <- touches.(j) + 1
          | Migrate _ -> ())
        ops;
      values = Array.mapi (fun j t -> j + t) touches)

(* ------------------------------------------------------------------ *)
(* Growth-aliasing regression                                         *)
(* ------------------------------------------------------------------ *)

(* The boxed store's growth path filled spare slots with one shared
   mutable record; had any spare slot ever been exposed, moving one
   object would have moved them all.  The flat store has no records to
   share — this registers well past several growth boundaries (default
   cap 16 doubles at 16, 32, 64), then mutates every home and checks
   each object kept its own. *)
let test_growth_aliasing () =
  let m = machine () in
  let s = Objspace.create m in
  let n = 100 in
  let ids = Array.init n (fun i -> Objspace.register s ~home:(i mod 8) i) in
  Array.iteri (fun i id -> Objspace.move s id ~to_:((i + 3) mod 8)) ids;
  Array.iteri
    (fun i id ->
      Alcotest.(check int) (Printf.sprintf "home of %d independent" i) ((i + 3) mod 8)
        (Objspace.home s id);
      Alcotest.(check int) (Printf.sprintf "state of %d intact" i) i (Objspace.state s id))
    ids;
  (* Interleave registration with mutation across a boundary: the 17th
     register triggers growth while object 0 holds a moved home. *)
  let s2 = Objspace.create m in
  let a = Objspace.register s2 ~home:1 "a" in
  Objspace.move s2 a ~to_:7;
  let rest = Array.init 20 (fun i -> Objspace.register s2 ~home:(i mod 8) "x") in
  Alcotest.(check int) "moved home survives growth" 7 (Objspace.home s2 a);
  Array.iteri
    (fun i id -> Alcotest.(check int) "late homes intact" (i mod 8) (Objspace.home s2 id))
    rest

(* ------------------------------------------------------------------ *)
(* Replicate: presence bitset at 1024 processors                      *)
(* ------------------------------------------------------------------ *)

(* Reader pids straddle byte and word boundaries of the bitset. *)
let reader_pids = [ 0; 7; 8; 63; 64; 65; 511; 513; 1023 ]

let test_replicate_bitset_1024 () =
  let m = machine ~n_procs:1024 () in
  let rt = Runtime.create m in
  let home = 512 in
  let r = Replicate.create rt ~home ~words_of:(fun _ -> 4) 100 in
  let got = Hashtbl.create 16 in
  List.iter
    (fun pid ->
      Machine.spawn m ~on:pid
        (let* v = Replicate.read r in
         Hashtbl.replace got pid v;
         Thread.return ()))
    reader_pids;
  (* A read at the home must not install a replica. *)
  Machine.spawn m ~on:home (Thread.ignore_m (Replicate.read r));
  Machine.run m;
  Alcotest.(check int) "one replica per remote reader" (List.length reader_pids)
    (Replicate.replicas r);
  List.iter
    (fun pid -> Alcotest.(check int) (Printf.sprintf "pid %d fetched" pid) 100 (Hashtbl.find got pid))
    reader_pids;
  (* Update fans out to exactly the bitset's holders; each sees the new
     value from its local slot (no new fetches). *)
  Machine.spawn m ~on:home (Replicate.update r ~access:Runtime.Rpc 200);
  Machine.run m;
  Alcotest.(check int) "replica count unchanged by update" (List.length reader_pids)
    (Replicate.replicas r);
  let fetches_before = Stats.get m.Machine.stats "repl.fetches" in
  List.iter
    (fun pid ->
      Machine.spawn m ~on:pid
        (let* v = Replicate.read r in
         Hashtbl.replace got pid v;
         Thread.return ()))
    reader_pids;
  Machine.run m;
  List.iter
    (fun pid ->
      Alcotest.(check int) (Printf.sprintf "pid %d sees update" pid) 200 (Hashtbl.find got pid))
    reader_pids;
  Alcotest.(check int) "re-reads hit local replicas" fetches_before
    (Stats.get m.Machine.stats "repl.fetches");
  Alcotest.(check int) "version bumped" 1 (Replicate.version r)

let test_replicate_repeated_install_counts_once () =
  let m = machine ~n_procs:64 () in
  let rt = Runtime.create m in
  let r = Replicate.create rt ~home:0 ~words_of:(fun _ -> 4) 1 in
  Machine.spawn m ~on:63
    (let* _ = Replicate.read r in
     let* _ = Replicate.read r in
     Thread.ignore_m (Replicate.read r));
  Machine.run m;
  Alcotest.(check int) "replicas" 1 (Replicate.replicas r)

let () =
  Alcotest.run "flatstore"
    [
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest [ prop_store_equivalence; prop_objmig_digest_oracle ]
      );
      ("aliasing", [ Alcotest.test_case "growth boundary" `Quick test_growth_aliasing ]);
      ( "replicate",
        [
          Alcotest.test_case "bitset at 1024 procs" `Quick test_replicate_bitset_1024;
          Alcotest.test_case "repeat install counts once" `Quick
            test_replicate_repeated_install_counts_once;
        ] );
    ]
