(* The classic "hashtable behind a getter": Fixture_store.table escapes
   its owning unit through this module.  Both bindings must be reported
   as escaping-getter, each with a call-chain witness ending at the
   root. *)

(* V5: direct re-export — witness [raw_table; table]. *)
let raw_table () = Fixture_store.table

(* V6: transitive reach — witness [lookup; raw_table; table]. *)
let lookup pid = Hashtbl.find_opt (raw_table ()) pid
