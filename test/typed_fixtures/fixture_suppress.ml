(* Suppression-machinery fixtures: one vetted root per escape hatch,
   plus the misuses the audit must turn into bad-suppress findings. *)

(* on-line comment suppression *)
let on_line = ref 0 (* lint: allow domain-safety — test fixture: on-line suppression *)

(* line-above comment suppression *)
(* lint: allow domain-safety — test fixture: line-above suppression *)
let line_above : (int, int) Hashtbl.t = Hashtbl.create 4

(* attribute vetting *)
let attr_vetted = ref 0 [@@cm.shard_safe "test fixture: attribute vetting"]

(* B1: suppression naming a rule the analyzer does not know — must be
   reported as bad-suppress/unknown-rule, not silently ignored. *)
(* lint: allow no-such-rule — typo'd rule name *)
let unrelated = 1

(* B2: a justified rule suppressed with no justification — the comment
   does not suppress and is itself a bad-suppress finding, so the ref
   below must ALSO still be reported as escaping. *)
(* lint: allow domain-safety *)
let no_why = ref 0

let read_all () = !on_line + Hashtbl.length line_above + !attr_vetted + unrelated + !no_why
