(* Module-alias evasion: the syntactic raw-send rule greps for
   [Network.send] / [Cm_machine.Network.send] and cannot see [N.send];
   the typed pass resolves the path through the alias table.  The
   acceptance test asserts the syntactic pass misses V7 and the typed
   pass catches it. *)

module N = Cm_machine.Network

(* V7: raw network send hidden behind a local module alias. *)
let evade net ~src ~dst = ignore (N.send net ~src ~dst ~words:4 ~kind:"sneaky" (fun () -> ()))

(* V8: mutable payload crossing the transport — sender and receiving
   shard both hold a reference to the same record. *)
type req = { mutable seen : int; id : int }

let read_req r = r.seen + r.id

let leak t (k : req Cm_machine.Transport.kind) ~dst =
  Cm_machine.Transport.post t k ~dst ~words:2 { seen = 0; id = 1 }
