(* Hot-path allocation fixtures.  test_analysis.ml runs the hot-alloc
   pass with a custom hot-set naming the four spin_* functions; the
   cold_* twin must stay unflagged even though it allocates
   identically. *)

(* closure allocated per call *)
let spin_closure n =
  let f x = x + n in
  f n

(* tuple allocated per call *)
let spin_pair a b = (a, b)

(* tuple of boxed floats *)
let spin_floats x = (x, x +. 1.0)

(* partial application: 2 of 3 arguments builds a closure per call *)
let spin_partial () = List.fold_left ( + ) 0

(* identical allocation outside the hot set: must NOT be flagged *)
let cold_pair a b = (a, b)

(* reading an existing closure out of state is a *full* application of a
   1-or-2-ary callee, even though the result type ends in an arrow: the
   pass must use the callee's runtime arity, not its type arity *)
type spin_slot = { mutable fn : int -> int }

let spin_slot = { fn = (fun x -> x) }
let spin_take () = spin_slot.fn
let spin_drive n = spin_take () n

let spin_cell : (int -> int) array = [| (fun x -> x + 1) |]
let spin_fn_read i = spin_cell.(i)
