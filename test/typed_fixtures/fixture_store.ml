(* Seeded domain-safety violations and safe negatives for
   test/test_analysis.ml.  Each V<n> below must be reported by the
   typed domain-safety pass; each S<n> must be classified but NOT
   reported.  Nothing here is meant to run — the module exists so dune
   produces a .cmt for the analyzer to chew on. *)

(* V1: unguarded toplevel ref — escaping. *)
let hits = ref 0

let bump () = incr hits

(* V2: toplevel hashtable — escaping, and additionally re-exported
   across the module boundary by Fixture_getter (V5/V6). *)
let table : (int, string) Hashtbl.t = Hashtbl.create 16

(* Owner API over V2: reaching the table through its owning module's
   own functions is encapsulation, not escape — must NOT be reported. *)
let find_name pid = Hashtbl.find_opt table pid

(* V3: module-init-time table captured in a closure.  The binding is a
   function, but the [let] allocates the table once at module load —
   the pass walks through [let] without entering the [fun] body. *)
let memo_lookup =
  let cache : (int, int) Hashtbl.t = Hashtbl.create 8 in
  fun k -> Hashtbl.find_opt cache k

(* V4: toplevel mutable array literal — escaping. *)
let weights = [| 0.0; 1.0; 2.0 |]

(* S1: atomic — safe (the global-state rule, not domain-safety, owns
   the "should this exist at all" question). *)
let seq = Atomic.make 0

(* S2: domain-local storage — safe by construction.  The Buffer.create
   inside the initializer closure is per-domain, not module-init-time. *)
let scratch_key = Domain.DLS.new_key (fun () -> Buffer.create 64)

(* S3: a lock is *for* sharing — safe. *)
let lock = Mutex.create ()

(* S4: record guarded by its own mutex — safe by convention. *)
type guarded = { m : Mutex.t; mutable value : int }

let shared_counter = { m = Mutex.create (); value = 0 }

let guarded_value g =
  Mutex.lock g.m;
  let v = g.value in
  Mutex.unlock g.m;
  v
