(* lint: allow-file domain-safety — test fixture: whole-file suppression *)

(* Both roots below are covered by the file-wide allow above: the
   domain-safety pass must report nothing in this file. *)

let file_wide_a = ref 0

let file_wide_b : (int, int) Hashtbl.t = Hashtbl.create 4

let read_both () = !file_wide_a + Hashtbl.length file_wide_b
