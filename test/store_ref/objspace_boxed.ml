(* The pre-PR-8 boxed [Objspace] — one mutable record per object —
   kept verbatim as the reference implementation for the flat store's
   qcheck equivalence oracle and the bench A/B allocation probe.  Note
   the growth path's latent aliasing hazard this code always had:
   [Array.make cap { home; state }] fills every spare slot with ONE
   shared mutable record (masked only because [register] overwrites a
   slot before it is ever exposed).  The flat store eliminates the
   hazard by construction; this copy preserves it faithfully. *)

open Cm_machine

type id = int

type 'state entry = { mutable home : int; state : 'state }

type 'state t = {
  machine : Machine.t;
  mutable entries : 'state entry array;
  mutable size : int;
}

let create machine = { machine; entries = [||]; size = 0 }

let register t ~home state =
  if home < 0 || home >= Machine.n_procs t.machine then
    invalid_arg "Objspace.register: bad home processor";
  if t.size = Array.length t.entries then begin
    let cap = max 16 (2 * Array.length t.entries) in
    let entries = Array.make cap { home; state } in
    Array.blit t.entries 0 entries 0 t.size;
    t.entries <- entries
  end;
  let id = t.size in
  t.entries.(id) <- { home; state };
  t.size <- t.size + 1;
  id

let entry t i =
  if i < 0 || i >= t.size then invalid_arg (Printf.sprintf "Objspace: unknown object %d" i);
  t.entries.(i)

let home t i = (entry t i).home

let state t i = (entry t i).state

let count t = t.size

let iter f t =
  for i = 0 to t.size - 1 do
    let e = t.entries.(i) in
    f i e.home e.state
  done

let move t i ~to_ =
  if to_ < 0 || to_ >= Machine.n_procs t.machine then invalid_arg "Objspace.move: bad home";
  (entry t i).home <- to_

let id_of_int n = n
