(* The pre-PR-8 assoc-list DHT bucket representation (messaging mode
   only), kept as the boxed side of the bench A/B allocation probe.
   Costs are computed exactly as the flat [Cm_apps.Dht] computes them —
   [bucket_work] over the entry count, charged before any mutation — so
   a paired run produces the same machine digest while allocating the
   way the old representation allocated: a list cell and pair per
   insert, and an O(n) list rebuild per update ([remove_assoc] +
   re-cons), where the flat buckets write two words in place. *)

open Cm_machine
open Cm_runtime
open Cm_core
open Thread.Infix

let bucket_work n = 40 + (6 * n)

type bucket = { mutable entries : (int * int) list }

type t = {
  prelude : Prelude.t;
  rt : Runtime.t;
  access : Prelude.access;
  buckets : int;
  capacity : int;
  objs : bucket Prelude.obj array;
}

let create prelude ?(buckets = 64) ?(bucket_capacity = 64) ~access ~node_procs () =
  if buckets <= 0 then invalid_arg "Dht_boxed.create: buckets must be positive";
  if Array.length node_procs = 0 then invalid_arg "Dht_boxed.create: no node processors";
  let home i = node_procs.(i mod Array.length node_procs) in
  {
    prelude;
    rt = Prelude.runtime prelude;
    access;
    buckets;
    capacity = bucket_capacity;
    objs =
      Array.init buckets (fun i -> Prelude.make_obj prelude ~home:(home i) { entries = [] });
  }

let bucket_of_key t key = abs (key * 2654435761) mod t.buckets

let method_get key (b : bucket) =
  let* () = Thread.compute (bucket_work (List.length b.entries)) in
  Thread.return (List.assoc_opt key b.entries)

let method_put t key value (b : bucket) =
  let* () = Thread.compute (bucket_work (List.length b.entries)) in
  if List.mem_assoc key b.entries then begin
    b.entries <- (key, value) :: List.remove_assoc key b.entries;
    Thread.return ()
  end
  else if List.length b.entries >= t.capacity then failwith "Dht_boxed.put: bucket full"
  else begin
    b.entries <- (key, value) :: b.entries;
    Thread.return ()
  end

let call t i body =
  Runtime.scope t.rt ~result_words:2
    (Runtime.call t.rt ~access:t.access
       ~home:(Prelude.obj_home t.prelude t.objs.(i))
       ~args_words:8 ~result_words:2
       (body (Prelude.obj_state t.prelude t.objs.(i))))

let get t key = call t (bucket_of_key t key) (method_get key)

let put t ~key ~value = call t (bucket_of_key t key) (method_put t key value)

(* Direct (not simulated) insert, mirroring [Dht.preload]. *)
let preload t ~key ~value =
  let b = Prelude.obj_state t.prelude t.objs.(bucket_of_key t key) in
  if List.mem_assoc key b.entries then
    b.entries <- (key, value) :: List.remove_assoc key b.entries
  else if List.length b.entries >= t.capacity then failwith "Dht_boxed.preload: bucket full"
  else b.entries <- (key, value) :: b.entries

(* Direct (not simulated) lookup, mirroring [Dht.peek]. *)
let peek t key =
  List.assoc_opt key (Prelude.obj_state t.prelude t.objs.(bucket_of_key t key)).entries

let size t =
  Array.fold_left
    (fun acc o -> acc + List.length (Prelude.obj_state t.prelude o).entries)
    0 t.objs
