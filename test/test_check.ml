(* Tests for the Check sanitizers: each checker must actually fire on a
   violation, stay silent on legal executions, and the end-to-end
   same-seed determinism property must hold under full checking. *)

open Cm_engine
open Cm_machine
open Cm_memory
open Thread.Infix

(* Run [f] with all sanitizers enabled and checker state reset, restoring
   the global toggle afterwards even when the test fails. *)
let with_check f () =
  Check.set_enabled true;
  Check.reset ();
  Fun.protect
    ~finally:(fun () ->
      Check.set_enabled false;
      Check.reset ())
    f

let expect_violation what f =
  match f () with
  | _ -> Alcotest.failf "%s: no Check.Violation raised" what
  | exception Check.Violation _ -> ()

let machine () = Machine.create ~n_procs:4 ~costs:Costs.software ()

(* ------------------------------------------------------------------ *)
(* Continuation linearity                                             *)
(* ------------------------------------------------------------------ *)

let test_double_resume () =
  let m = machine () in
  let saved = ref None in
  Machine.spawn m ~on:0 (Thread.await (fun ~resume -> saved := Some resume));
  Machine.run m;
  let resume = match !saved with Some r -> r | None -> Alcotest.fail "await never blocked" in
  resume ();
  expect_violation "second resume" (fun () -> resume ())

let test_single_resume_ok () =
  let m = machine () in
  let saved = ref None in
  let finished = ref false in
  Machine.spawn m ~on:0
    (let* () = Thread.await (fun ~resume -> saved := Some resume) in
     finished := true;
     Thread.return ());
  Machine.run m;
  (match !saved with Some r -> r () | None -> Alcotest.fail "await never blocked");
  Machine.run m;
  Alcotest.(check bool) "thread finished" true !finished;
  Alcotest.(check int) "no outstanding continuations" 0 (Check.Linear.outstanding ())

let test_dropped_continuation () =
  let m = machine () in
  Machine.spawn m ~on:0 (Thread.await (fun ~resume:_ -> ()));
  Machine.run m;
  Alcotest.(check bool) "dropped continuation is outstanding" true
    (Check.Linear.outstanding () > 0);
  Alcotest.(check bool) "await resume is reported" true
    (List.exists
       (fun what ->
         (* substring test: label is "tid N: Thread.await resume" *)
         String.length what >= 19
         && String.sub what (String.length what - 19) 19 = "Thread.await resume")
       (Check.Linear.outstanding_whats ()))

(* ------------------------------------------------------------------ *)
(* Event scheduling                                                   *)
(* ------------------------------------------------------------------ *)

let test_schedule_in_past () =
  let sim = Sim.create () in
  Sim.after sim 100 (fun () ->
      match Sim.at sim 50 (fun () -> ()) with
      | () -> Alcotest.fail "scheduling in the past was accepted"
      | exception Invalid_argument _ -> ());
  Sim.run sim

(* ------------------------------------------------------------------ *)
(* Lock discipline                                                    *)
(* ------------------------------------------------------------------ *)

let test_release_by_non_holder () =
  let m = machine () in
  let mem = Shmem.create m in
  let lock = Lock.create mem ~home:0 in
  Machine.spawn m ~on:0 (Lock.acquire lock);
  Machine.spawn m ~on:1
    (let* () = Thread.sleep 5_000 in
     (* well after the acquire completed *)
     Lock.release lock);
  expect_violation "release by non-holder" (fun () -> Machine.run m)

let test_release_unheld () =
  let m = machine () in
  let mem = Shmem.create m in
  let lock = Lock.create mem ~home:0 in
  Machine.spawn m ~on:0 (Lock.release lock);
  expect_violation "release of unheld lock" (fun () -> Machine.run m)

let test_lock_roundtrip_ok () =
  let m = machine () in
  let mem = Shmem.create m in
  let lock = Lock.create mem ~home:0 in
  let inside = ref 0 in
  for i = 0 to 2 do
    Machine.spawn m ~on:i
      (Lock.with_lock lock (fun () ->
           incr inside;
           Thread.compute 50))
  done;
  Machine.run m;
  Alcotest.(check int) "all three critical sections ran" 3 !inside;
  Alcotest.(check bool) "lock free at the end" true (Lock.holder_free lock)

let test_release_read_without_acquire () =
  let m = machine () in
  let mem = Shmem.create m in
  let rw = Rwlock.create mem ~home:0 in
  Machine.spawn m ~on:0 (Rwlock.release_read rw);
  expect_violation "release_read with zero readers" (fun () -> Machine.run m)

let test_release_write_without_acquire () =
  let m = machine () in
  let mem = Shmem.create m in
  let rw = Rwlock.create mem ~home:0 in
  Machine.spawn m ~on:0 (Rwlock.release_write rw);
  expect_violation "release_write with no writer" (fun () -> Machine.run m)

let test_rwlock_roundtrip_ok () =
  let m = machine () in
  let mem = Shmem.create m in
  let rw = Rwlock.create mem ~home:0 in
  let reads = ref 0 in
  Machine.spawn m ~on:0 (Rwlock.with_write rw (fun () -> Thread.compute 100));
  for i = 1 to 3 do
    Machine.spawn m ~on:i
      (Rwlock.with_read rw (fun () ->
           incr reads;
           Thread.compute 20))
  done;
  Machine.run m;
  Alcotest.(check int) "readers ran" 3 !reads;
  Alcotest.(check bool) "rwlock free" true (Rwlock.free rw)

(* ------------------------------------------------------------------ *)
(* MSI directory invariants                                           *)
(* ------------------------------------------------------------------ *)

let test_directory_clean_run () =
  let m = machine () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:0 ~words:8 in
  for i = 0 to 3 do
    Machine.spawn m ~on:i
      (Thread.repeat 20 (fun j ->
           let* () = Shmem.write mem (a + ((i + j) mod 8)) ((i * 100) + j) in
           let* _ = Shmem.read mem (a + (j mod 8)) in
           Thread.return ()))
  done;
  Machine.run m;
  (* Per-transaction checks ran throughout; the full sweep must agree. *)
  Shmem.validate mem

let test_two_owner_detected () =
  let m = machine () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:0 ~words:1 in
  Machine.spawn m ~on:1 (Shmem.write mem a 7);
  Machine.run m;
  Shmem.validate mem;
  (* Plant a second Modified copy behind the directory's back. *)
  Shmem.For_testing.force_second_owner mem a ~pid:2;
  expect_violation "two-owner directory state" (fun () -> Shmem.validate mem)

(* ------------------------------------------------------------------ *)
(* End-to-end determinism (qcheck)                                    *)
(* ------------------------------------------------------------------ *)

let counting_digest ~seed =
  Check.set_enabled true;
  let config =
    { Cm_experiments.Counting_run.default with
      Cm_experiments.Counting_run.seed;
      requesters = 4;
      horizon = 30_000;
      warmup = 3_000 }
  in
  let machine, _metrics =
    Cm_experiments.Counting_run.run_with_machine Cm_experiments.Scheme.Sm config
  in
  Machine.digest machine

let prop_same_seed_same_digest =
  QCheck.Test.make ~name:"same-seed counting-network runs digest identically" ~count:4
    QCheck.(int_range 1 10_000)
    (fun seed ->
      Fun.protect
        ~finally:(fun () ->
          Check.set_enabled false;
          Check.reset ())
        (fun () -> String.equal (counting_digest ~seed) (counting_digest ~seed)))

let qsuite props = List.map QCheck_alcotest.to_alcotest props

let () =
  Alcotest.run "cm_check"
    [
      ( "linearity",
        [
          Alcotest.test_case "double resume fires" `Quick (with_check test_double_resume);
          Alcotest.test_case "single resume is silent" `Quick (with_check test_single_resume_ok);
          Alcotest.test_case "dropped continuation is visible" `Quick
            (with_check test_dropped_continuation);
        ] );
      ( "events",
        [ Alcotest.test_case "past scheduling rejected" `Quick (with_check test_schedule_in_past) ]
      );
      ( "locks",
        [
          Alcotest.test_case "release by non-holder fires" `Quick
            (with_check test_release_by_non_holder);
          Alcotest.test_case "release of unheld lock fires" `Quick (with_check test_release_unheld);
          Alcotest.test_case "legal lock use is silent" `Quick (with_check test_lock_roundtrip_ok);
          Alcotest.test_case "release_read underflow fires" `Quick
            (with_check test_release_read_without_acquire);
          Alcotest.test_case "release_write without writer fires" `Quick
            (with_check test_release_write_without_acquire);
          Alcotest.test_case "legal rwlock use is silent" `Quick
            (with_check test_rwlock_roundtrip_ok);
        ] );
      ( "msi",
        [
          Alcotest.test_case "contended run validates" `Quick (with_check test_directory_clean_run);
          Alcotest.test_case "forced two-owner state fires" `Quick
            (with_check test_two_owner_detected);
        ] );
      ("determinism", qsuite [ prop_same_seed_same_digest ]);
    ]
