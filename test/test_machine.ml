(* Tests for the simulated multiprocessor: Costs, Topology, Network,
   Processor, Thread, Machine. *)

open Cm_engine
open Cm_machine

(* ------------------------------------------------------------------ *)
(* Costs                                                              *)
(* ------------------------------------------------------------------ *)

(* The calibration payload of the paper's Table 5: 32 bytes = 8 words. *)
let table5_words = 8

let test_costs_table5_rows () =
  let c = Costs.software in
  Alcotest.(check int) "copy packet 76" 76 (Costs.copy_packet c ~words:table5_words);
  Alcotest.(check int) "unmarshal 51" 51 (Costs.unmarshal c ~words:table5_words);
  Alcotest.(check int) "marshal 22" 22 (Costs.marshal c ~words:table5_words);
  Alcotest.(check int) "thread creation 66" 66 c.Costs.thread_creation;
  Alcotest.(check int) "scheduler 36" 36 c.Costs.scheduler;
  Alcotest.(check int) "forwarding check 23" 23 c.Costs.forwarding_check;
  Alcotest.(check int) "transit 17 at 2 hops" 17 (Costs.transit c ~hops:2 ~words:table5_words)

let test_costs_pipelines () =
  let c = Costs.software in
  Alcotest.(check int) "send pipeline = linkage+alloc+marshal+send"
    (44 + 35 + 22 + 23)
    (Costs.send_pipeline c ~words:table5_words);
  let recv = Costs.recv_pipeline c ~words:table5_words ~new_thread:true in
  (* copy + creation + linkage + unmarshal + goid + alloc; the
     forwarding check is charged per annotated call by the runtime *)
  Alcotest.(check int) "recv pipeline (new thread)" (76 + 66 + 66 + 51 + 36 + 16) recv;
  let reply = Costs.recv_pipeline c ~words:table5_words ~new_thread:false in
  Alcotest.(check bool) "reply cheaper than fresh thread" true (reply < recv)

let test_costs_hw_cheaper () =
  let sw = Costs.software and hw = Costs.hardware in
  let words = table5_words in
  Alcotest.(check int) "hw copy 12" 12 (Costs.copy_packet hw ~words);
  Alcotest.(check int) "hw marshal halved" 11 (Costs.marshal hw ~words);
  Alcotest.(check int) "hw unmarshal halved" 26 (Costs.unmarshal hw ~words);
  Alcotest.(check int) "no goid cost" 0 hw.Costs.goid_translation;
  Alcotest.(check int) "no packet alloc" 0 (hw.Costs.alloc_packet_send + hw.Costs.alloc_packet_recv);
  Alcotest.(check bool) "hw recv cheaper" true
    (Costs.recv_pipeline hw ~words ~new_thread:true < Costs.recv_pipeline sw ~words ~new_thread:true)

let test_costs_hw_saves_about_20_percent () =
  (* Paper §4.3: NI registers remove ~20% of one migration's overhead. *)
  let words = table5_words in
  let overhead c =
    Costs.send_pipeline c ~words
    + Costs.recv_pipeline c ~words ~new_thread:true
    + c.Costs.scheduler
  in
  let sw = overhead Costs.software in
  let ni = overhead (Costs.with_ni_registers Costs.software) in
  let saving = float_of_int (sw - ni) /. float_of_int sw in
  Alcotest.(check bool)
    (Printf.sprintf "NI saving %.2f within 15%%..35%%" saving)
    true
    (saving > 0.15 && saving < 0.35)

let test_costs_breakdown_sums () =
  let c = Costs.software in
  let rows = Costs.breakdown c ~words:8 ~hops:2 ~user_code:150 in
  let total = List.assoc "Total time" rows in
  let user = List.assoc "User code" rows in
  let transit = List.assoc "Network transit" rows in
  let overhead = List.assoc "Message overhead total" rows in
  Alcotest.(check int) "total = user+transit+overhead" total (user + transit + overhead);
  let recv = List.assoc "Receiver total" rows in
  let send = List.assoc "Sender total" rows in
  Alcotest.(check int) "overhead = recv+send" overhead (recv + send);
  Alcotest.(check int) "sender rows sum" send (44 + 35 + 23 + 22)

(* ------------------------------------------------------------------ *)
(* Topology                                                           *)
(* ------------------------------------------------------------------ *)

let test_topology_mesh_hops () =
  let t = Topology.mesh 16 in
  (* 4x4 grid, row-major. *)
  Alcotest.(check int) "self" 0 (Topology.hops t ~src:5 ~dst:5);
  Alcotest.(check int) "adjacent" 1 (Topology.hops t ~src:0 ~dst:1);
  Alcotest.(check int) "row end" 3 (Topology.hops t ~src:0 ~dst:3);
  Alcotest.(check int) "diagonal corner" 6 (Topology.hops t ~src:0 ~dst:15);
  Alcotest.(check int) "symmetric" (Topology.hops t ~src:2 ~dst:9) (Topology.hops t ~src:9 ~dst:2)

let test_topology_torus_wraps () =
  let t = Topology.torus 16 in
  Alcotest.(check int) "wrap row" 1 (Topology.hops t ~src:0 ~dst:3);
  Alcotest.(check int) "wrap corner" 2 (Topology.hops t ~src:0 ~dst:15)

let test_topology_crossbar () =
  let t = Topology.crossbar 10 in
  Alcotest.(check int) "any pair 1 hop" 1 (Topology.hops t ~src:0 ~dst:9);
  Alcotest.(check int) "self 0" 0 (Topology.hops t ~src:4 ~dst:4)

let test_topology_bounds () =
  let t = Topology.mesh 4 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Topology.hops: processor 4 out of range [0,4)")
    (fun () -> ignore (Topology.hops t ~src:0 ~dst:4))

let test_topology_nonsquare () =
  (* 24 processors: 5x5 grid with the last row short. *)
  let t = Topology.mesh 24 in
  Alcotest.(check int) "size kept" 24 (Topology.size t);
  Alcotest.(check bool) "mean hops positive" true (Topology.mean_hops t > 0.)

let prop_topology_triangle =
  QCheck.Test.make ~name:"mesh hops satisfy triangle inequality" ~count:200
    QCheck.(triple (int_range 0 24) (int_range 0 24) (int_range 0 24))
    (fun (a, b, c) ->
      let t = Topology.mesh 25 in
      Topology.hops t ~src:a ~dst:c <= Topology.hops t ~src:a ~dst:b + Topology.hops t ~src:b ~dst:c)

(* ------------------------------------------------------------------ *)
(* Network                                                            *)
(* ------------------------------------------------------------------ *)

let make_net ?(n = 16) () =
  let sim = Sim.create () in
  let stats = Stats.create () in
  let costs = Costs.software in
  let topo = Topology.mesh n in
  (sim, stats, Network.create ~sim ~topo ~costs ~stats ())

let test_network_delivers () =
  let sim, _, net = make_net () in
  let arrived = ref (-1) in
  ignore (Network.send net ~src:0 ~dst:3 ~words:8 ~kind:"test" (fun () -> arrived := Sim.now sim));
  Sim.run sim;
  (* 3 hops on the 4x4 mesh; transit = 5 + 3 + (8+2). *)
  Alcotest.(check int) "arrival time" 18 !arrived

let test_network_accounts_words () =
  let sim, stats, net = make_net () in
  ignore (Network.send net ~src:0 ~dst:1 ~words:8 ~kind:"a" ignore);
  ignore (Network.send net ~src:1 ~dst:2 ~words:4 ~kind:"b" ignore);
  Sim.run sim;
  Alcotest.(check int) "total words includes headers" (8 + 2 + 4 + 2) (Network.total_words net);
  Alcotest.(check int) "messages" 2 (Network.total_messages net);
  Alcotest.(check int) "kind a words" 10 (Network.words_of_kind net "a");
  Alcotest.(check int) "kind b messages" 1 (Network.messages_of_kind net "b");
  Alcotest.(check int) "stats mirror" (Network.total_words net) (Stats.get stats "net.words")

let test_network_self_send () =
  let sim, _, net = make_net () in
  let arrived = ref false in
  ignore (Network.send net ~src:2 ~dst:2 ~words:0 ~kind:"loop" (fun () -> arrived := true));
  Sim.run sim;
  Alcotest.(check bool) "loopback delivered" true !arrived

let test_network_bandwidth_metric () =
  let sim, _, net = make_net () in
  ignore (Network.send net ~src:0 ~dst:1 ~words:18 ~kind:"x" ignore);
  Sim.run sim;
  let now = Sim.now sim in
  Alcotest.(check (float 1e-9)) "words*10/now"
    (10. *. 20. /. float_of_int now)
    (Network.bandwidth_per_10_cycles net ~now)


let test_topology_route_matches_hops () =
  let t = Topology.mesh 16 in
  for src = 0 to 15 do
    for dst = 0 to 15 do
      let route = Topology.route t ~src ~dst in
      Alcotest.(check int)
        (Printf.sprintf "route length %d->%d" src dst)
        (Topology.hops t ~src ~dst)
        (List.length route);
      (* The route must be connected: each link starts where the
         previous one ended, from src to dst. *)
      let rec connected cur = function
        | [] -> cur = dst
        | (a, b) :: rest -> a = cur && connected b rest
      in
      Alcotest.(check bool) "route connected" true (connected src route)
    done
  done

let test_topology_route_torus_wraps () =
  let t = Topology.torus 16 in
  (* 0 -> 3 wraps left in one hop on a 4-wide torus. *)
  Alcotest.(check (list (pair int int))) "wrap route" [ (0, 3) ] (Topology.route t ~src:0 ~dst:3)

let test_network_contention_serializes_shared_link () =
  let sim = Sim.create () in
  let stats = Stats.create () in
  let net =
    Network.create ~contention:true ~sim ~topo:(Topology.mesh 4) ~costs:Costs.software ~stats ()
  in
  (* Two large messages over the same 0->1 link: the second queues. *)
  let t1 = ref 0 and t2 = ref 0 in
  ignore (Network.send net ~src:0 ~dst:1 ~words:40 ~kind:"a" (fun () -> t1 := Sim.now sim));
  ignore (Network.send net ~src:0 ~dst:1 ~words:40 ~kind:"b" (fun () -> t2 := Sim.now sim));
  Sim.run sim;
  Alcotest.(check bool)
    (Printf.sprintf "second delayed by occupancy (%d then %d)" !t1 !t2)
    true
    (!t2 >= !t1 + 42);
  Alcotest.(check bool) "queueing recorded" true (Stats.get stats "net.contended_cycles" > 0)

let test_network_contention_disjoint_paths_parallel () =
  let sim = Sim.create () in
  let stats = Stats.create () in
  let net =
    Network.create ~contention:true ~sim ~topo:(Topology.mesh 4) ~costs:Costs.software ~stats ()
  in
  (* 0->1 and 2->3 share no link: both arrive at the uncontended time. *)
  let t1 = ref 0 and t2 = ref 0 in
  ignore (Network.send net ~src:0 ~dst:1 ~words:40 ~kind:"a" (fun () -> t1 := Sim.now sim));
  ignore (Network.send net ~src:2 ~dst:3 ~words:40 ~kind:"b" (fun () -> t2 := Sim.now sim));
  Sim.run sim;
  Alcotest.(check int) "same arrival" !t1 !t2

let test_network_contention_back_to_back_exact () =
  let sim = Sim.create () in
  let stats = Stats.create () in
  let net =
    Network.create ~contention:true ~sim ~topo:(Topology.mesh 4) ~costs:Costs.software ~stats ()
  in
  (* Two messages share the single 0->1 link.  Store-and-forward with
     link_bandwidth 1 word/cycle: each occupies the link for
     wire_words = 40 + 2 header = 42 cycles.  First: starts after
     net_base = 5, frees the link at 47, arrives at 47 + net_per_hop =
     48.  The second queues behind it — link start at 47, free at 89,
     arrival 90 — exactly one occupancy after the first. *)
  let t1 = ref 0 and t2 = ref 0 in
  let l1 = Network.send net ~src:0 ~dst:1 ~words:40 ~kind:"a" (fun () -> t1 := Sim.now sim) in
  let l2 = Network.send net ~src:0 ~dst:1 ~words:40 ~kind:"b" (fun () -> t2 := Sim.now sim) in
  Alcotest.(check int) "first latency" 48 l1;
  Alcotest.(check int) "second latency queues one occupancy" 90 l2;
  Sim.run sim;
  Alcotest.(check int) "first arrival" 48 !t1;
  Alcotest.(check int) "second arrival back-to-back" (48 + 42) !t2;
  (* The counter accumulates each contended message's full assigned
     latency: 48 + 90. *)
  Alcotest.(check int) "contended cycles hand-computed" 138
    (Stats.get stats "net.contended_cycles")

let test_network_contention_multihop_exact () =
  let sim = Sim.create () in
  let stats = Stats.create () in
  let net =
    Network.create ~contention:true ~sim ~topo:(Topology.mesh 16) ~costs:Costs.software ~stats ()
  in
  (* On the 4x4 mesh, 0->2 is two links, (0,1) then (1,2); wire = 10 + 2 = 12 words.
     First message: (0,1) busy [5,17), (1,2) busy [18,30), arrival
     30 + 1 = 31 = net_base + 2*occupancy + 2*net_per_hop.  Second:
     queues on (0,1) [17,29); reaches (1,2) at 30 just as the first
     frees it, busy [30,42), arrival 43. *)
  let l1 = Network.send net ~src:0 ~dst:2 ~words:10 ~kind:"a" ignore in
  let l2 = Network.send net ~src:0 ~dst:2 ~words:10 ~kind:"b" ignore in
  Alcotest.(check int) "first store-and-forward latency" 31 l1;
  Alcotest.(check int) "second pipelines behind first" 43 l2;
  Sim.run sim;
  Alcotest.(check int) "contended cycles hand-computed" (31 + 43)
    (Stats.get stats "net.contended_cycles")

let test_network_contention_off_is_default () =
  let m = Machine.create ~seed:1 ~n_procs:4 ~costs:Costs.software () in
  let t1 = ref 0 and t2 = ref 0 in
  ignore
    (Network.send m.Machine.net ~src:0 ~dst:1 ~words:40 ~kind:"a" (fun () ->
         t1 := Sim.now m.Machine.sim));
  ignore
    (Network.send m.Machine.net ~src:0 ~dst:1 ~words:40 ~kind:"b" (fun () ->
         t2 := Sim.now m.Machine.sim));
  Machine.run m;
  Alcotest.(check int) "no serialization by default" !t1 !t2

(* ------------------------------------------------------------------ *)
(* Processor                                                          *)
(* ------------------------------------------------------------------ *)

let make_proc ?(scheduler_cost = 36) () =
  let sim = Sim.create () in
  let stats = Stats.create () in
  (sim, stats, Processor.create ~sim ~stats ~scheduler_cost ~id:0)

let test_processor_runs_task () =
  let sim, _, p = make_proc () in
  let done_at = ref (-1) in
  Processor.enqueue p (fun () ->
      Processor.hold p 100 (fun () ->
          done_at := Sim.now sim;
          Processor.release p));
  Sim.run sim;
  (* 36 scheduler + 100 work *)
  Alcotest.(check int) "completion time" 136 !done_at;
  Alcotest.(check int) "busy cycles" 136 (Processor.busy_cycles p)

let test_processor_fcfs () =
  let sim, _, p = make_proc ~scheduler_cost:0 () in
  let order = ref [] in
  let task name dur () =
    Processor.hold p dur (fun () ->
        order := (name, Sim.now sim) :: !order;
        Processor.release p)
  in
  Processor.enqueue p (task "a" 10);
  Processor.enqueue p (task "b" 5);
  Processor.enqueue p (task "c" 1);
  Sim.run sim;
  Alcotest.(check (list (pair string int)))
    "serialized in arrival order"
    [ ("a", 10); ("b", 15); ("c", 16) ]
    (List.rev !order)

let test_processor_contention_queueing () =
  (* Two tasks of 50 cycles each: the second waits for the first — the
     root-bottleneck effect. *)
  let sim, _, p = make_proc ~scheduler_cost:0 () in
  let finish = ref [] in
  for _ = 1 to 2 do
    Processor.enqueue p (fun () ->
        Processor.hold p 50 (fun () ->
            finish := Sim.now sim :: !finish;
            Processor.release p))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "second delayed" [ 50; 100 ] (List.rev !finish)

let test_processor_idle_between_bursts () =
  let sim, _, p = make_proc ~scheduler_cost:0 () in
  Processor.enqueue p (fun () -> Processor.hold p 10 (fun () -> Processor.release p));
  Sim.run sim;
  Alcotest.(check bool) "idle after release" false (Processor.is_busy p);
  (* A task arriving later is dispatched immediately. *)
  Sim.at sim 100 (fun () ->
      Processor.enqueue p (fun () -> Processor.hold p 5 (fun () -> Processor.release p)));
  Sim.run sim;
  Alcotest.(check int) "total busy" 15 (Processor.busy_cycles p);
  Alcotest.(check int) "ends at 105" 105 (Sim.now sim)

let test_processor_utilization () =
  let sim, _, p = make_proc ~scheduler_cost:0 () in
  Processor.enqueue p (fun () -> Processor.hold p 50 (fun () -> Processor.release p));
  Sim.run sim;
  Sim.at sim 100 ignore;
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "50%" 0.5 (Processor.utilization p ~now:(Sim.now sim))

let test_processor_park_pool_growth_and_reuse () =
  let sim, _, p = make_proc ~scheduler_cost:0 () in
  Alcotest.(check int) "initial park capacity" 8 (Processor.park_capacity p);
  let fired = ref [] in
  (* 20 delayed enqueues with distinct deadlines: more than the initial 8
     slots, so the pool must grow mid-flight without disturbing wake
     order. *)
  for i = 0 to 19 do
    Processor.enqueue_after p ~delay:(10 * (i + 1)) (fun () ->
        fired := i :: !fired;
        Processor.release p)
  done;
  Alcotest.(check int) "all parked" 20 (Processor.parked p);
  Alcotest.(check bool) "pool grew" true (Processor.park_capacity p >= 20);
  let grown = Processor.park_capacity p in
  Sim.run sim;
  Alcotest.(check int) "pool drained" 0 (Processor.parked p);
  Alcotest.(check (list int)) "woken in deadline order" (List.init 20 Fun.id) (List.rev !fired);
  (* A second wave exactly filling the grown pool recycles the freed
     slots: no further growth. *)
  for _ = 1 to grown do
    Processor.enqueue_after p ~delay:5 (fun () -> Processor.release p)
  done;
  Alcotest.(check int) "second wave parked" grown (Processor.parked p);
  Alcotest.(check int) "slots reused, capacity unchanged" grown (Processor.park_capacity p);
  Sim.run sim;
  Alcotest.(check int) "drained again" 0 (Processor.parked p)

let test_processor_ring_growth_preserves_fcfs () =
  let sim, _, p = make_proc ~scheduler_cost:0 () in
  Alcotest.(check int) "initial ring capacity" 8 (Processor.ring_capacity p);
  let order = ref [] in
  (* The first task is dispatched but stays in the ring until its
     dispatch event fires, so 20 enqueues force the ring past its
     initial 8 slots while entries are live. *)
  for i = 0 to 19 do
    Processor.enqueue p (fun () ->
        Processor.hold p 10 (fun () ->
            order := i :: !order;
            Processor.release p))
  done;
  Alcotest.(check bool) "ring grew" true (Processor.ring_capacity p >= 20);
  let grown = Processor.ring_capacity p in
  Sim.run sim;
  Alcotest.(check (list int)) "fcfs preserved across growth" (List.init 20 Fun.id)
    (List.rev !order);
  (* Emptied slots are reused: a burst that fits the grown ring does not
     grow it again. *)
  for _ = 1 to grown do
    Processor.enqueue p (fun () -> Processor.release p)
  done;
  Alcotest.(check int) "ring capacity unchanged on reuse" grown (Processor.ring_capacity p);
  Sim.run sim;
  Alcotest.(check int) "queue empty" 0 (Processor.queue_length p)

(* ------------------------------------------------------------------ *)
(* Thread                                                             *)
(* ------------------------------------------------------------------ *)

open Thread.Infix

let machine ?(n = 4) () = Machine.create ~seed:1 ~n_procs:n ~costs:Costs.software ()

let test_thread_compute_sequences () =
  let m = machine () in
  let finished = ref (-1) in
  Machine.spawn m ~on:0
    (let* () = Thread.compute 10 in
     let* () = Thread.compute 20 in
     let+ _tid = Thread.tid in
     finished := Machine.now m);
  Machine.run m;
  (* scheduler 36 + 30 work *)
  Alcotest.(check int) "sequential compute" 66 !finished

let test_thread_yield_interleaves () =
  let m = Machine.create ~seed:1 ~n_procs:1 ~costs:{ Costs.software with Costs.scheduler = 0 } () in
  let log = ref [] in
  let worker name =
    let* () = Thread.compute 5 in
    log := name :: !log;
    let* () = Thread.yield in
    let* () = Thread.compute 5 in
    log := name :: !log;
    Thread.return ()
  in
  Machine.spawn m ~on:0 (worker "a");
  Machine.spawn m ~on:0 (worker "b");
  Machine.run m;
  Alcotest.(check (list string)) "yield alternates" [ "a"; "b"; "a"; "b" ] (List.rev !log)

let test_thread_sleep_releases_cpu () =
  let m = Machine.create ~seed:1 ~n_procs:1 ~costs:{ Costs.software with Costs.scheduler = 0 } () in
  let log = ref [] in
  Machine.spawn m ~on:0
    (let* () = Thread.sleep 100 in
     log := ("sleeper", Machine.now m) :: !log;
     Thread.return ());
  Machine.spawn m ~on:0
    (let* () = Thread.compute 10 in
     log := ("worker", Machine.now m) :: !log;
     Thread.return ());
  Machine.run m;
  Alcotest.(check (list (pair string int)))
    "worker ran during sleep"
    [ ("worker", 10); ("sleeper", 100) ]
    (List.rev !log)

let test_thread_await_resume () =
  let m = machine () in
  let resumer = ref None in
  let got = ref 0 in
  Machine.spawn m ~on:0
    (let* v = Thread.await (fun ~resume -> resumer := Some resume) in
     got := v;
     Thread.return ());
  (* Fire the resumption from a detached event later. *)
  Machine.run m;
  (match !resumer with
  | Some resume ->
    Sim.at m.Machine.sim 500 (fun () -> resume 42);
    Machine.run m
  | None -> Alcotest.fail "thread never blocked");
  Alcotest.(check int) "resumed with value" 42 !got

let test_thread_sleep_pool_reuse_after_exit () =
  (* Two generations of sleeping threads on one processor: the first
     wave's 50 concurrent sleepers grow the park pool; after they exit,
     the second wave must fit in the recycled slots. *)
  let m = Machine.create ~seed:1 ~n_procs:1 ~costs:Costs.software () in
  let p = Machine.proc m 0 in
  let exited = ref 0 in
  let wave () =
    (* Each spawn dispatch costs ~36 cycles, so all 50 threads reach
       their 10k-cycle sleep long before the first one wakes: the whole
       wave is parked at once. *)
    for _ = 1 to 50 do
      Machine.spawn m ~on:0 ~on_exit:(fun () -> incr exited) (Thread.sleep 10_000)
    done;
    Machine.run m
  in
  wave ();
  Alcotest.(check int) "first wave exited" 50 !exited;
  Alcotest.(check int) "nothing left parked" 0 (Processor.parked p);
  let grown = Processor.park_capacity p in
  Alcotest.(check bool) "pool grew to hold concurrent sleepers" true (grown >= 50);
  wave ();
  Alcotest.(check int) "second wave exited" 100 !exited;
  Alcotest.(check int) "slots reused after exit, capacity unchanged" grown
    (Processor.park_capacity p)

let test_thread_frame_double_resume_checked () =
  (* The machine runs the frames engine, but with the sanitizer armed
     the suspension paths fall back to CPS with Check.linear tokens — a
     double resume must still be caught at the faulting call. *)
  Check.set_enabled true;
  Check.reset ();
  Fun.protect
    ~finally:(fun () ->
      Check.set_enabled false;
      Check.reset ())
    (fun () ->
      let m = Machine.create ~seed:1 ~n_procs:1 ~costs:Costs.software () in
      Alcotest.(check bool) "frames-engine machine" true (m.Machine.engine = Machine.Frames);
      let saved = ref None in
      let got = ref 0 in
      Machine.spawn m ~on:0
        (let* v = Thread.await (fun ~resume -> saved := Some resume) in
         got := v;
         Thread.return ());
      Machine.run m;
      match !saved with
      | None -> Alcotest.fail "thread never blocked"
      | Some resume ->
        Sim.after m.Machine.sim 10 (fun () -> resume 7);
        Machine.run m;
        Alcotest.(check int) "first resume delivered" 7 !got;
        (match resume 8 with
        | () -> Alcotest.fail "second resume not caught"
        | exception Check.Violation _ -> ()))

let test_thread_travel_moves () =
  let m = machine () in
  let where = ref (-1) in
  Machine.spawn m ~on:0
    (let* p = Thread.proc in
     Alcotest.(check int) "starts on 0" 0 (Processor.id p);
     let* () =
       Thread.travel ~net:m.Machine.net ~dst:(Machine.proc m 3) ~words:8 ~kind:"migrate"
         ~recv_work:50
     in
     let+ p' = Thread.proc in
     where := Processor.id p');
  Machine.run m;
  Alcotest.(check int) "ends on 3" 3 !where;
  Alcotest.(check int) "one message" 1 (Network.messages_of_kind m.Machine.net "migrate")

let test_thread_travel_charges_receiver () =
  let m = machine () in
  let arrived_at = ref (-1) in
  Machine.spawn m ~on:0
    (let* () =
       Thread.travel ~net:m.Machine.net ~dst:(Machine.proc m 1) ~words:8 ~kind:"m" ~recv_work:100
     in
     arrived_at := Machine.now m;
     Thread.return ());
  Machine.run m;
  (* dispatch 36 + transit (5+1+10=16) + dispatch 36 + recv 100 = 188 *)
  Alcotest.(check int) "arrival after receive pipeline" 188 !arrived_at

let test_thread_travel_keeps_source_free () =
  let m = Machine.create ~seed:1 ~n_procs:2 ~costs:{ Costs.software with Costs.scheduler = 0 } () in
  let log = ref [] in
  Machine.spawn m ~on:0
    (let* () =
       Thread.travel ~net:m.Machine.net ~dst:(Machine.proc m 1) ~words:4 ~kind:"m" ~recv_work:1000
     in
     log := ("traveller", Machine.now m) :: !log;
     Thread.return ());
  Machine.spawn m ~on:0
    (let* () = Thread.compute 10 in
     log := ("local", Machine.now m) :: !log;
     Thread.return ());
  Machine.run m;
  (match List.rev !log with
  | [ ("local", t_local); ("traveller", t_travel) ] ->
    Alcotest.(check bool) "local ran immediately" true (t_local <= 20);
    Alcotest.(check bool) "traveller later" true (t_travel > t_local)
  | other ->
    Alcotest.failf "unexpected log: %s"
      (String.concat "," (List.map (fun (s, t) -> Printf.sprintf "%s@%d" s t) other)))

let test_thread_combinators () =
  let m = machine () in
  let sum = ref 0 in
  Machine.spawn m ~on:0
    (let* () = Thread.repeat 5 (fun i ->
         let+ () = Thread.compute 1 in
         sum := !sum + i)
     in
     let* () = Thread.iter_list (fun x ->
         let+ () = Thread.compute 1 in
         sum := !sum + x)
       [ 100; 200 ]
     in
     let counter = ref 0 in
     Thread.while_
       (fun () -> !counter < 3)
       (let+ () = Thread.compute 1 in
        incr counter;
        sum := !sum + 1000))
  ;
  Machine.run m;
  Alcotest.(check int) "all combinators ran" (0 + 1 + 2 + 3 + 4 + 300 + 3000) !sum

let test_thread_tids_unique () =
  let m = machine () in
  let tids = ref [] in
  for i = 0 to 3 do
    Machine.spawn m ~on:i
      (let+ tid = Thread.tid in
       tids := tid :: !tids)
  done;
  Machine.run m;
  let sorted = List.sort compare !tids in
  Alcotest.(check (list int)) "tids 0..3" [ 0; 1; 2; 3 ] sorted


let test_thread_stall_blocks_others () =
  (* stall keeps the CPU: a second task must not run until resume. *)
  let m = Machine.create ~seed:1 ~n_procs:1 ~costs:{ Costs.software with Costs.scheduler = 0 } () in
  let order = ref [] in
  let resume_cell = ref None in
  Machine.spawn m ~on:0
    (let* v = Thread.stall (fun ~resume -> resume_cell := Some resume) in
     order := ("stalled-done", v) :: !order;
     Thread.return ());
  Machine.spawn m ~on:0
    (let* () = Thread.compute 1 in
     order := ("other", 0) :: !order;
     Thread.return ());
  (* Resume the stalled thread 500 cycles in. *)
  Sim.at m.Machine.sim 500 (fun () -> match !resume_cell with Some r -> r 9 | None -> ());
  Machine.run m;
  Alcotest.(check (list (pair string int)))
    "stalled thread finished first, holding the CPU"
    [ ("stalled-done", 9); ("other", 0) ]
    (List.rev !order);
  (* The stall's 500 cycles count as busy. *)
  Alcotest.(check bool) "stall charged" true (Processor.busy_cycles (Machine.proc m 0) >= 500)

let test_processor_charge_negative_rejected () =
  let sim = Sim.create () in
  let p = Processor.create ~sim ~stats:(Stats.create ()) ~scheduler_cost:0 ~id:0 in
  Processor.enqueue p (fun () ->
      Alcotest.check_raises "negative charge"
        (Invalid_argument "Processor.charge: negative duration") (fun () ->
          Processor.charge p (-1));
      Processor.release p);
  Sim.run sim

let test_costs_breakdown_hardware () =
  let rows = Costs.breakdown Costs.hardware ~words:8 ~hops:2 ~user_code:150 in
  let total = List.assoc "Total time" rows in
  let sw_total = List.assoc "Total time" (Costs.breakdown Costs.software ~words:8 ~hops:2 ~user_code:150) in
  Alcotest.(check bool) "hardware migration cheaper end to end" true (total < sw_total);
  Alcotest.(check int) "goid row zero" 0 (List.assoc "Object ID translation" rows);
  Alcotest.(check int) "alloc rows zero" 0
    (List.assoc "Allocate packet (recv)" rows + List.assoc "Allocate packet (send)" rows)

let test_machine_spawn_on_exit () =
  let m = machine () in
  let exits = ref 0 in
  Machine.spawn m ~on:0 ~on_exit:(fun () -> incr exits) (Thread.compute 5);
  Machine.spawn m ~on:1 ~on_exit:(fun () -> incr exits) (Thread.compute 5);
  Machine.run m;
  Alcotest.(check int) "both exited" 2 !exits

let test_machine_determinism () =
  let run () =
    let m = machine ~n:8 () in
    let trace = ref [] in
    for i = 0 to 7 do
      Machine.spawn m ~on:i
        (let* r = Thread.rng in
         let d = 1 + Cm_engine.Rng.int r 100 in
         let* () = Thread.compute d in
         trace := (i, Machine.now m) :: !trace;
         Thread.return ())
    done;
    Machine.run m;
    !trace
  in
  Alcotest.(check (list (pair int int))) "identical reruns" (run ()) (run ())

let test_machine_proc_bounds () =
  let m = machine () in
  Alcotest.check_raises "out of range" (Invalid_argument "Machine.proc: 4 out of range [0,4)")
    (fun () -> ignore (Machine.proc m 4))

(* ------------------------------------------------------------------ *)
(* Engine oracle: frames vs CPS                                       *)
(* ------------------------------------------------------------------ *)

(* The frame engine must be observationally identical to the CPS
   reference it defunctionalizes: random mixes of every suspension
   shape — compute, yield, sleep, await on an external event, travel —
   across several threads and processors, run once per engine, must
   produce equal machine digests (final clock, events fired, every
   statistic). *)

type oracle_op = O_compute of int | O_yield | O_sleep of int | O_travel of int | O_await of int

let oracle_op_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> O_compute n) (int_range 1 50);
        return O_yield;
        map (fun n -> O_sleep n) (int_range 1 100);
        map (fun d -> O_travel d) (int_range 0 3);
        map (fun d -> O_await d) (int_range 1 80);
      ])

let oracle_op_print = function
  | O_compute n -> Printf.sprintf "compute %d" n
  | O_yield -> "yield"
  | O_sleep n -> Printf.sprintf "sleep %d" n
  | O_travel d -> Printf.sprintf "travel %d" d
  | O_await d -> Printf.sprintf "await %d" d

let oracle_script_gen =
  QCheck.Gen.(list_size (int_range 1 5) (pair (int_range 0 3) (list_size (int_range 0 8) oracle_op_gen)))

let oracle_script_print script =
  String.concat "; "
    (List.map
       (fun (on, ops) ->
         Printf.sprintf "on %d: [%s]" on (String.concat ", " (List.map oracle_op_print ops)))
       script)

let oracle_digest engine script =
  let m = Machine.create ~seed:11 ~engine ~n_procs:4 ~costs:Costs.software () in
  let rec body ops =
    match ops with
    | [] -> Thread.return ()
    | op :: rest ->
      let* () =
        match op with
        | O_compute n -> Thread.compute n
        | O_yield -> Thread.yield
        | O_sleep n -> Thread.sleep n
        | O_travel d ->
          Thread.travel ~net:m.Machine.net ~dst:(Machine.proc m d) ~words:8 ~kind:"migrate"
            ~recv_work:20
        | O_await d ->
          Thread.await (fun ~resume -> Sim.after m.Machine.sim d (fun () -> resume ()))
      in
      body rest
  in
  List.iter (fun (on, ops) -> Machine.spawn m ~on (body ops)) script;
  Machine.run m;
  Machine.digest m

let prop_engine_oracle =
  QCheck.Test.make ~name:"frames and cps engines produce equal digests" ~count:150
    (QCheck.make ~print:oracle_script_print oracle_script_gen)
    (fun script -> oracle_digest Machine.Frames script = oracle_digest Machine.Cps script)

(* ------------------------------------------------------------------ *)

let qsuite props = List.map QCheck_alcotest.to_alcotest props

let () =
  Alcotest.run "cm_machine"
    [
      ( "costs",
        [
          Alcotest.test_case "table5 rows" `Quick test_costs_table5_rows;
          Alcotest.test_case "pipelines" `Quick test_costs_pipelines;
          Alcotest.test_case "hardware cheaper" `Quick test_costs_hw_cheaper;
          Alcotest.test_case "NI saves ~20%" `Quick test_costs_hw_saves_about_20_percent;
          Alcotest.test_case "breakdown sums" `Quick test_costs_breakdown_sums;
        ] );
      ( "topology",
        [
          Alcotest.test_case "mesh hops" `Quick test_topology_mesh_hops;
          Alcotest.test_case "torus wraps" `Quick test_topology_torus_wraps;
          Alcotest.test_case "crossbar" `Quick test_topology_crossbar;
          Alcotest.test_case "bounds" `Quick test_topology_bounds;
          Alcotest.test_case "non-square" `Quick test_topology_nonsquare;
        ]
        @ qsuite [ prop_topology_triangle ] );
      ( "network",
        [
          Alcotest.test_case "delivers" `Quick test_network_delivers;
          Alcotest.test_case "accounts words" `Quick test_network_accounts_words;
          Alcotest.test_case "self send" `Quick test_network_self_send;
          Alcotest.test_case "bandwidth metric" `Quick test_network_bandwidth_metric;
          Alcotest.test_case "route matches hops" `Quick test_topology_route_matches_hops;
          Alcotest.test_case "route torus wraps" `Quick test_topology_route_torus_wraps;
          Alcotest.test_case "contention serializes" `Quick
            test_network_contention_serializes_shared_link;
          Alcotest.test_case "contention disjoint parallel" `Quick
            test_network_contention_disjoint_paths_parallel;
          Alcotest.test_case "contention back-to-back exact" `Quick
            test_network_contention_back_to_back_exact;
          Alcotest.test_case "contention multihop exact" `Quick
            test_network_contention_multihop_exact;
          Alcotest.test_case "contention off by default" `Quick
            test_network_contention_off_is_default;
        ] );
      ( "processor",
        [
          Alcotest.test_case "runs task" `Quick test_processor_runs_task;
          Alcotest.test_case "fcfs" `Quick test_processor_fcfs;
          Alcotest.test_case "contention queueing" `Quick test_processor_contention_queueing;
          Alcotest.test_case "idle between bursts" `Quick test_processor_idle_between_bursts;
          Alcotest.test_case "utilization" `Quick test_processor_utilization;
          Alcotest.test_case "park pool growth and reuse" `Quick
            test_processor_park_pool_growth_and_reuse;
          Alcotest.test_case "ring growth preserves fcfs" `Quick
            test_processor_ring_growth_preserves_fcfs;
        ] );
      ( "thread",
        [
          Alcotest.test_case "compute sequences" `Quick test_thread_compute_sequences;
          Alcotest.test_case "yield interleaves" `Quick test_thread_yield_interleaves;
          Alcotest.test_case "sleep releases cpu" `Quick test_thread_sleep_releases_cpu;
          Alcotest.test_case "await resume" `Quick test_thread_await_resume;
          Alcotest.test_case "sleep pool reuse after exit" `Quick
            test_thread_sleep_pool_reuse_after_exit;
          Alcotest.test_case "frame double resume checked" `Quick
            test_thread_frame_double_resume_checked;
          Alcotest.test_case "travel moves" `Quick test_thread_travel_moves;
          Alcotest.test_case "travel charges receiver" `Quick test_thread_travel_charges_receiver;
          Alcotest.test_case "travel keeps source free" `Quick test_thread_travel_keeps_source_free;
          Alcotest.test_case "combinators" `Quick test_thread_combinators;
          Alcotest.test_case "tids unique" `Quick test_thread_tids_unique;
          Alcotest.test_case "stall blocks others" `Quick test_thread_stall_blocks_others;
          Alcotest.test_case "charge negative rejected" `Quick
            test_processor_charge_negative_rejected;
          Alcotest.test_case "hardware breakdown" `Quick test_costs_breakdown_hardware;
        ] );
      ( "machine",
        [
          Alcotest.test_case "spawn on_exit" `Quick test_machine_spawn_on_exit;
          Alcotest.test_case "determinism" `Quick test_machine_determinism;
          Alcotest.test_case "proc bounds" `Quick test_machine_proc_bounds;
        ]
        @ qsuite [ prop_engine_oracle ] );
    ]
