(* Scratch bisection driver: which (scheme, requesters, think) counting
   cells diverge between shard counts, and at which statistic. *)

open Cm_machine
open Cm_experiments

let digest_at ~shards ~scheme ~requesters ~think ~horizon =
  Machine.set_default_shards shards;
  let machine, _ =
    Counting_run.run_with_machine scheme
      { Counting_run.default with Counting_run.requesters; think; horizon }
  in
  Machine.set_default_shards 1;
  machine

(* "trace K R THINK" : run one cell with network tracing on, for
   diffing the message streams of two shard counts. *)
let () =
  if Array.length Sys.argv = 4 then begin
    let shards = int_of_string Sys.argv.(1) in
    let requesters = int_of_string Sys.argv.(2) in
    let think = int_of_string Sys.argv.(3) in
    Cm_engine.Trace.set_level Cm_engine.Trace.Events;
    let m =
      digest_at ~shards
        ~scheme:(Scheme.Rpc { hw = false; repl = false })
        ~requesters ~think ~horizon:150_000
    in
    Printf.eprintf "digest %s fired %d\n" (Machine.digest m) (Machine.events_fired m);
    exit 0
  end

let () =
  let schemes =
    [
      ("cp", Scheme.Cp { hw = false; repl = false });
      ("cp+hw", Scheme.Cp { hw = true; repl = false });
      ("rpc", Scheme.Rpc { hw = false; repl = false });
      ("rpc+hw", Scheme.Rpc { hw = true; repl = false });
    ]
  in
  List.iter
    (fun (name, scheme) ->
      List.iter
        (fun requesters ->
          List.iter
            (fun think ->
              let m1 = digest_at ~shards:1 ~scheme ~requesters ~think ~horizon:150_000 in
              let m2 = digest_at ~shards:2 ~scheme ~requesters ~think ~horizon:150_000 in
              let d1 = Machine.digest m1 and d2 = Machine.digest m2 in
              if String.equal d1 d2 then
                Printf.printf "ok      %-7s r=%-3d think=%-6d\n%!" name requesters think
              else begin
                Printf.printf "DIVERGE %-7s r=%-3d think=%-6d clock %d/%d fired %d/%d\n%!" name
                  requesters think (Machine.now m1) (Machine.now m2) (Machine.events_fired m1)
                  (Machine.events_fired m2);
                (* Dump differing statistics. *)
                let s1 = Cm_engine.Stats.counters m1.Machine.stats in
                let s2 = Cm_engine.Stats.counters m2.Machine.stats in
                List.iter
                  (fun (k1, v1) ->
                    match List.assoc_opt k1 s2 with
                    | Some v2 when v2 = v1 -> ()
                    | Some v2 -> Printf.printf "    %s: %d vs %d\n" k1 v1 v2
                    | None -> Printf.printf "    %s: %d vs MISSING\n" k1 v1)
                  s1
              end)
            [ 0; 10_000 ])
        [ 8; 32; 64 ])
    schemes
