(* The domain pool and the parallel sweep harness built on it.

   The deterministic-output contract is the whole point: for any job
   list, any domain count, and any completion order, [Pool.run_all]
   returns results in submission order and the experiment layer prints
   bytes identical to a sequential run.  The qcheck property at the
   bottom checks that end-to-end (captured stdout + sanitizer digests of
   real experiments at -j 2/4 vs. -j 1). *)

open Cm_engine
open Cm_experiments

(* --- pool mechanics ----------------------------------------------- *)

let with_pool ~domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* Jobs finishing in scrambled order must not scramble results: each job
   spins for a different amount of work (later submissions cheaper, so
   they tend to finish first) and run_all must still return submission
   order. *)
let test_result_order () =
  with_pool ~domains:3 (fun pool ->
      let n = 24 in
      let spin i =
        let rounds = (n - i) * 2_000 in
        let acc = ref 0 in
        for k = 1 to rounds do
          acc := (!acc * 7) + k
        done;
        ignore !acc;
        i
      in
      let results = Pool.run_all pool (List.init n (fun i -> fun () -> spin i)) in
      Alcotest.(check (list int)) "submission order" (List.init n Fun.id) results)

let test_oversubscription () =
  (* Far more jobs than domains: everything still completes, in order. *)
  with_pool ~domains:2 (fun pool ->
      let n = 200 in
      let results = Pool.run_all pool (List.init n (fun i -> fun () -> i * i)) in
      Alcotest.(check (list int)) "all jobs ran" (List.init n (fun i -> i * i)) results)

let test_raising_job () =
  with_pool ~domains:2 (fun pool ->
      let boom = Pool.submit pool (fun () -> failwith "boom") in
      let ok = Pool.submit pool (fun () -> 41 + 1) in
      Alcotest.check_raises "exception propagates to await" (Failure "boom") (fun () ->
          ignore (Pool.await boom : int));
      (* The worker that ran the raising job must survive for later jobs. *)
      Alcotest.(check int) "pool survives a raising job" 42 (Pool.await ok);
      let again = Pool.submit pool (fun () -> "still alive") in
      Alcotest.(check string) "submit after failure" "still alive" (Pool.await again))

let test_shutdown () =
  let pool = Pool.create ~domains:2 in
  let tasks = List.init 8 (fun i -> Pool.submit pool (fun () -> i)) in
  Pool.shutdown pool;
  (* Shutdown drains the queue: every task submitted before it completes. *)
  List.iteri
    (fun i task -> Alcotest.(check int) "drained before join" i (Pool.await task))
    tasks;
  (* Idempotent, and submissions are refused afterwards. *)
  Pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown" (Invalid_argument "Pool.submit: pool is shut down")
    (fun () -> ignore (Pool.submit pool (fun () -> ())))

let test_create_validates () =
  Alcotest.check_raises "zero domains" (Invalid_argument "Pool.create: need at least one domain")
    (fun () -> ignore (Pool.create ~domains:0))

(* --- end-to-end determinism of the parallel sweep harness ---------- *)

(* Capture everything [f] prints to stdout (the experiments print
   through the C stdout fd, so shadowing the OCaml channel is not
   enough — redirect the fd itself, as bin/repro's selfcheck does). *)
let with_captured_stdout f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let tmp = Filename.temp_file "cm_test_pool" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let result = try Ok (f ()) with e -> Error e in
  flush stdout;
  Unix.dup2 saved Unix.stdout;
  Unix.close saved;
  let ic = open_in_bin tmp in
  let printed = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  match result with Ok () -> printed | Error e -> raise e

(* The cheap experiments (quick mode keeps each under a second); the
   pool must reproduce serial plans (fig1, table5) untouched and sweep
   plans (the rest) byte-for-byte. *)
let cheap_experiments = [ "fig1"; "table3"; "table4"; "fanout10"; "table5" ]

let entry_of id =
  match Registry.find id with
  | Some e -> e
  | None -> Alcotest.failf "unknown experiment %s" id

(* One sanitized run of a set of experiments: returns (stdout bytes,
   machine digests from the Check trail). *)
let sanitized_runs ?pool ids =
  Check.set_enabled true;
  Check.reset ();
  Check.Trail.set_recording true;
  let printed =
    with_captured_stdout (fun () ->
        List.iter (fun id -> Registry.run ~quick:true ?pool (entry_of id)) ids)
  in
  let trail = Check.Trail.trail () in
  Check.Trail.set_recording false;
  Check.set_enabled false;
  Check.reset ();
  (printed, trail)

let prop_parallel_matches_sequential =
  QCheck.Test.make ~name:"experiments at -j 2/4 are byte-identical to -j 1" ~count:3
    QCheck.(pair (list_of_size Gen.(1 -- 3) (int_range 0 4)) (int_range 0 1))
    (fun (picks, j_pick) ->
      let ids = List.map (fun i -> List.nth cheap_experiments i) picks in
      let domains = if j_pick = 0 then 2 else 4 in
      let base_out, base_trail = sanitized_runs ids in
      let par_out, par_trail =
        with_pool ~domains (fun pool -> sanitized_runs ~pool ids)
      in
      if not (String.equal base_out par_out) then
        QCheck.Test.fail_reportf "stdout differs at -j %d for %s" domains
          (String.concat "," ids);
      if base_trail <> par_trail then
        QCheck.Test.fail_reportf "machine digests differ at -j %d for %s (%d vs %d runs)"
          domains (String.concat "," ids) (List.length base_trail) (List.length par_trail);
      true)

let () =
  Alcotest.run "pool"
    [
      ( "mechanics",
        [
          Alcotest.test_case "results in submission order" `Quick test_result_order;
          Alcotest.test_case "oversubscription" `Quick test_oversubscription;
          Alcotest.test_case "raising job propagates, pool survives" `Quick test_raising_job;
          Alcotest.test_case "shutdown drains, then refuses" `Quick test_shutdown;
          Alcotest.test_case "create validates domain count" `Quick test_create_validates;
        ] );
      ( "determinism",
        List.map QCheck_alcotest.to_alcotest [ prop_parallel_matches_sequential ] );
    ]
