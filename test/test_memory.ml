(* Tests for the cache-coherent shared-memory subsystem: Cache, Shmem
   (MSI directory protocol), Lock. *)

open Cm_engine
open Cm_machine
open Cm_memory
open Thread.Infix

let costs = Costs.software

let machine ?(n = 8) () = Machine.create ~seed:7 ~n_procs:n ~costs ()

let small_config = { Shmem.default_config with Shmem.cache_slots = 8 }

(* ------------------------------------------------------------------ *)
(* Cache                                                              *)
(* ------------------------------------------------------------------ *)

let mk_cache ?(slots = 4) () = Cache.create ~n_slots:slots ~line_words:4 ~stats:(Stats.create ())

let test_cache_insert_lookup () =
  let c = mk_cache () in
  Alcotest.(check bool) "initially absent" true (Cache.lookup c ~line:3 = None);
  let ev = Cache.insert c ~line:3 ~state:Cache.Shared ~data:[| 1; 2; 3; 4 |] in
  Alcotest.(check bool) "no eviction when empty" true (ev = None);
  (match Cache.lookup c ~line:3 with
  | Some (Cache.Shared, data) -> Alcotest.(check (array int)) "data" [| 1; 2; 3; 4 |] data
  | _ -> Alcotest.fail "expected shared hit");
  Alcotest.(check int) "resident" 1 (Cache.resident_lines c)

let test_cache_private_copy () =
  let c = mk_cache () in
  let original = [| 9; 9; 9; 9 |] in
  ignore (Cache.insert c ~line:0 ~state:Cache.Modified ~data:original);
  original.(0) <- 0;
  (match Cache.lookup c ~line:0 with
  | Some (_, data) -> Alcotest.(check int) "copy not aliased" 9 data.(0)
  | None -> Alcotest.fail "line missing")

let test_cache_conflict_eviction () =
  let c = mk_cache ~slots:4 () in
  ignore (Cache.insert c ~line:1 ~state:Cache.Modified ~data:[| 7; 0; 0; 0 |]);
  (* Line 5 maps to the same slot (5 mod 4 = 1). *)
  match Cache.insert c ~line:5 ~state:Cache.Shared ~data:[| 1; 1; 1; 1 |] with
  | Some ev ->
    Alcotest.(check int) "victim line" 1 ev.Cache.line;
    Alcotest.(check bool) "was modified" true ev.Cache.was_modified;
    Alcotest.(check int) "victim data" 7 ev.Cache.data.(0);
    Alcotest.(check bool) "old line gone" true (Cache.lookup c ~line:1 = None)
  | None -> Alcotest.fail "expected eviction"

let test_cache_reinsert_updates () =
  let c = mk_cache () in
  ignore (Cache.insert c ~line:2 ~state:Cache.Shared ~data:[| 1; 0; 0; 0 |]);
  let ev = Cache.insert c ~line:2 ~state:Cache.Modified ~data:[| 2; 0; 0; 0 |] in
  Alcotest.(check bool) "no self-eviction" true (ev = None);
  (match Cache.lookup c ~line:2 with
  | Some (Cache.Modified, data) -> Alcotest.(check int) "updated" 2 data.(0)
  | _ -> Alcotest.fail "expected modified")

let test_cache_invalidate () =
  let c = mk_cache () in
  ignore (Cache.insert c ~line:1 ~state:Cache.Shared ~data:[| 1; 2; 3; 4 |]);
  Alcotest.(check bool) "clean inval returns none" true (Cache.invalidate c ~line:1 = None);
  ignore (Cache.insert c ~line:1 ~state:Cache.Modified ~data:[| 5; 6; 7; 8 |]);
  (match Cache.invalidate c ~line:1 with
  | Some dirty -> Alcotest.(check int) "dirty data returned" 5 dirty.(0)
  | None -> Alcotest.fail "expected dirty data");
  Alcotest.(check bool) "absent invalidate is noop" true (Cache.invalidate c ~line:1 = None)

let test_cache_set_state () =
  let c = mk_cache () in
  ignore (Cache.insert c ~line:0 ~state:Cache.Shared ~data:[| 0; 0; 0; 0 |]);
  Cache.set_state c ~line:0 Cache.Modified;
  Alcotest.(check bool) "upgraded" true (Cache.state c ~line:0 = Some Cache.Modified);
  Alcotest.check_raises "non-resident" (Invalid_argument "Cache.set_state: line not resident")
    (fun () -> Cache.set_state c ~line:9 Cache.Shared)

(* ------------------------------------------------------------------ *)
(* Shmem basics                                                       *)
(* ------------------------------------------------------------------ *)

let run_thread ?(on = 0) m body =
  let finished = ref false in
  Machine.spawn m ~on ~on_exit:(fun () -> finished := true) body;
  Machine.run m;
  Alcotest.(check bool) "thread finished" true !finished

let test_shmem_alloc_homes () =
  let m = machine () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:3 ~words:10 in
  let b = Shmem.alloc mem ~home:5 ~words:1 in
  Alcotest.(check int) "a home" 3 (Shmem.home_of mem a);
  Alcotest.(check int) "a end home" 3 (Shmem.home_of mem (a + 9));
  Alcotest.(check int) "b home" 5 (Shmem.home_of mem b);
  Alcotest.(check bool) "line aligned" true (b mod 4 = 0);
  Alcotest.(check bool) "no overlap" true (b >= a + 10)

let test_shmem_unallocated () =
  let m = machine () in
  let mem = Shmem.create m in
  Alcotest.check_raises "unallocated" (Invalid_argument "Shmem: unallocated line 250") (fun () ->
      ignore (Shmem.home_of mem 1000))

let test_shmem_read_after_write_local () =
  let m = machine () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:1 ~words:4 in
  let got = ref (-1) in
  run_thread m
    (let* () = Shmem.write mem a 123 in
     let* v = Shmem.read mem a in
     got := v;
     Thread.return ());
  Alcotest.(check int) "read back" 123 !got

let test_shmem_zero_initialized () =
  let m = machine () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:0 ~words:8 in
  let got = ref (-1) in
  run_thread m
    (let* v = Shmem.read mem (a + 5) in
     got := v;
     Thread.return ());
  Alcotest.(check int) "zero" 0 !got

let test_shmem_cross_processor_visibility () =
  let m = machine () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:0 ~words:1 in
  let got = ref (-1) in
  Machine.spawn m ~on:1 (Shmem.write mem a 77);
  (* Reader starts much later, after the write has surely completed. *)
  Machine.spawn m ~on:2
    (let* () = Thread.sleep 100000 in
     let* v = Shmem.read mem a in
     got := v;
     Thread.return ());
  Machine.run m;
  Alcotest.(check int) "sees remote write" 77 !got

let test_shmem_peek_poke () =
  let m = machine () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:2 ~words:4 in
  Shmem.poke mem (a + 1) 55;
  Alcotest.(check int) "peek sees poke" 55 (Shmem.peek mem (a + 1));
  let got = ref 0 in
  run_thread m
    (let* v = Shmem.read mem (a + 1) in
     got := v;
     Thread.return ());
  Alcotest.(check int) "simulated read sees poke" 55 !got

let test_shmem_peek_sees_dirty_copy () =
  let m = machine () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:0 ~words:1 in
  run_thread ~on:3 m (Shmem.write mem a 42);
  (* The line is still Modified in processor 3's cache; peek must find it. *)
  Alcotest.(check int) "dirty value visible" 42 (Shmem.peek mem a)

let test_shmem_read_block () =
  let m = machine () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:0 ~words:10 in
  for i = 0 to 9 do
    Shmem.poke mem (a + i) (i * i)
  done;
  let got = ref [||] in
  run_thread m
    (let* block = Shmem.read_block mem a 10 in
     got := block;
     Thread.return ());
  Alcotest.(check (array int)) "block contents" (Array.init 10 (fun i -> i * i)) !got

(* ------------------------------------------------------------------ *)
(* Shmem protocol behaviour                                           *)
(* ------------------------------------------------------------------ *)

let test_shmem_hit_no_traffic () =
  let m = machine () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:5 ~words:1 in
  let after_first = ref 0 and after_second = ref 0 in
  run_thread m
    (let* _ = Shmem.read mem a in
     after_first := Network.total_messages m.Machine.net;
     let* _ = Shmem.read mem a in
     after_second := Network.total_messages m.Machine.net;
     Thread.return ());
  Alcotest.(check bool) "miss produced traffic" true (!after_first > 0);
  Alcotest.(check int) "hit produced none" !after_first !after_second;
  Alcotest.(check int) "one hit one miss" 1 (Stats.get m.Machine.stats "cache.hits");
  Alcotest.(check int) "one miss" 1 (Stats.get m.Machine.stats "cache.misses")

let test_shmem_read_miss_messages () =
  let m = machine () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:5 ~words:1 in
  run_thread m (Thread.ignore_m (Shmem.read mem a));
  Alcotest.(check int) "request sent" 1 (Network.messages_of_kind m.Machine.net "coh_req");
  Alcotest.(check int) "data reply sent" 1 (Network.messages_of_kind m.Machine.net "coh_data");
  (* Reply carries the line: 1 ctrl + 4 data + 2 header. *)
  Alcotest.(check int) "data words" 7 (Network.words_of_kind m.Machine.net "coh_data")

let test_shmem_write_invalidates_readers () =
  let m = machine () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:0 ~words:1 in
  (* Three readers cache the line; then a writer invalidates all of them. *)
  for p = 1 to 3 do
    Machine.spawn m ~on:p (Thread.ignore_m (Shmem.read mem a))
  done;
  Machine.run m;
  Machine.spawn m ~on:4 (Shmem.write mem a 1);
  Machine.run m;
  Alcotest.(check int) "three invalidations" 3 (Stats.get m.Machine.stats "coh.invalidations");
  for p = 1 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "proc %d no longer caches the line" p)
      true
      (Cache.state (Shmem.cache_of mem p) ~line:(a / 4) = None)
  done;
  Alcotest.(check bool) "writer owns it" true
    (Cache.state (Shmem.cache_of mem 4) ~line:(a / 4) = Some Cache.Modified)

let test_shmem_write_shared_pingpong () =
  (* Alternating writers force ownership transfers (migratory data). *)
  let m = machine () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:0 ~words:1 in
  run_thread ~on:1 m (Shmem.write mem a 1);
  let msgs_before = Network.total_messages m.Machine.net in
  Machine.spawn m ~on:2 (Shmem.write mem a 2);
  Machine.run m;
  let msgs_after = Network.total_messages m.Machine.net in
  (* req + fetch + wb + data = 4 messages for the ownership transfer *)
  Alcotest.(check int) "ownership transfer messages" 4 (msgs_after - msgs_before);
  Alcotest.(check int) "value current" 2 (Shmem.peek mem a)

let test_shmem_upgrade_cheaper_than_miss () =
  let m = machine () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:7 ~words:1 in
  run_thread ~on:1 m
    (let* _ = Shmem.read mem a in
     (* Upgrade: the data is already cached Shared. *)
     Shmem.write mem a 9);
  Alcotest.(check int) "upgrade counted" 1 (Stats.get m.Machine.stats "coh.upgrades");
  Alcotest.(check int) "no full write miss" 0 (Stats.get m.Machine.stats "coh.write_miss")

let test_shmem_eviction_writeback_preserves_values () =
  let m = machine () in
  let mem = Shmem.create ~config:small_config m in
  (* 8 cache slots; write 32 distinct lines so every one is evicted. *)
  let addrs = Array.init 32 (fun i -> (Shmem.alloc mem ~home:(i mod 8) ~words:4, i * 3)) in
  let sum = ref 0 in
  run_thread m
    (let* () =
       Thread.iter_list (fun (a, v) -> Shmem.write mem a v) (Array.to_list addrs)
     in
     let* () =
       Thread.iter_list
         (fun (a, _) ->
           let* v = Shmem.read mem a in
           sum := !sum + v;
           Thread.return ())
         (Array.to_list addrs)
     in
     Thread.return ());
  let expect = Array.fold_left (fun acc (_, v) -> acc + v) 0 addrs in
  Alcotest.(check int) "all values survived eviction" expect !sum;
  Alcotest.(check bool) "write-backs happened" true (Stats.get m.Machine.stats "coh.evict_wb" > 0)

let test_shmem_stall_holds_cpu () =
  (* While a thread stalls on a remote miss, another thread on the same
     processor must NOT run (no hardware multithreading). *)
  let m = machine () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:7 ~words:1 in
  let order = ref [] in
  Machine.spawn m ~on:0
    (let* _ = Shmem.read mem a in
     order := "misser" :: !order;
     Thread.return ());
  Machine.spawn m ~on:0
    (let* () = Thread.compute 1 in
     order := "other" :: !order;
     Thread.return ());
  Machine.run m;
  Alcotest.(check (list string)) "miss completes before other runs" [ "misser"; "other" ]
    (List.rev !order)

let test_shmem_remote_access_uses_no_remote_cpu () =
  let m = machine () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:6 ~words:1 in
  run_thread ~on:0 m (Thread.ignore_m (Shmem.read mem a));
  Alcotest.(check int) "home CPU untouched" 0 (Processor.busy_cycles (Machine.proc m 6))

let test_shmem_rmw_returns_old () =
  let m = machine () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:0 ~words:1 in
  Shmem.poke mem a 10;
  let old = ref (-1) and now = ref (-1) in
  run_thread m
    (let* o = Shmem.rmw mem a (fun v -> v + 5) in
     old := o;
     let* v = Shmem.read mem a in
     now := v;
     Thread.return ());
  Alcotest.(check int) "old value" 10 !old;
  Alcotest.(check int) "new value" 15 !now

let test_shmem_rmw_atomic_counter () =
  let m = machine ~n:16 () in
  let mem = Shmem.create m in
  let a = Shmem.alloc mem ~home:0 ~words:1 in
  let per_thread = 25 in
  for p = 0 to 15 do
    Machine.spawn m ~on:p
      (Thread.repeat per_thread (fun _ -> Thread.ignore_m (Shmem.rmw mem a (fun v -> v + 1))))
  done;
  Machine.run m;
  Alcotest.(check int) "no lost updates" (16 * per_thread) (Shmem.peek mem a)

(* Coherence invariant: for every allocated line, at most one Modified
   copy exists, and a Modified copy excludes any Shared copy. *)
let check_single_writer m mem addrs =
  List.iter
    (fun a ->
      let line = a / 4 in
      let modified = ref 0 and shared = ref 0 in
      for p = 0 to Machine.n_procs m - 1 do
        match Cache.state (Shmem.cache_of mem p) ~line with
        | Some Cache.Modified -> incr modified
        | Some Cache.Shared -> incr shared
        | None -> ()
      done;
      if !modified > 1 then Alcotest.failf "line %d has %d writers" line !modified;
      if !modified = 1 && !shared > 0 then
        Alcotest.failf "line %d has a writer and %d readers" line !shared)
    addrs

let prop_shmem_single_writer =
  QCheck.Test.make ~name:"single-writer invariant under random ops" ~count:30
    QCheck.(pair small_int (list_of_size Gen.(5 -- 60) (triple (int_range 0 7) (int_range 0 5) bool)))
    (fun (seed, ops) ->
      let m = Machine.create ~seed:(seed + 1) ~n_procs:8 ~costs () in
      let mem = Shmem.create ~config:small_config m in
      let addrs = List.init 6 (fun i -> Shmem.alloc mem ~home:(i mod 8) ~words:2) in
      let addr_arr = Array.of_list addrs in
      List.iteri
        (fun i (p, slot, is_write) ->
          Machine.spawn m ~on:p
            (let* () = Thread.sleep (i * 13) in
             if is_write then Shmem.write mem addr_arr.(slot) i
             else Thread.ignore_m (Shmem.read mem addr_arr.(slot))))
        ops;
      Machine.run m;
      check_single_writer m mem addrs;
      true)

let prop_shmem_sequential_semantics =
  (* A single thread doing random reads/writes over a few addresses must
     behave exactly like an array. *)
  QCheck.Test.make ~name:"single-thread memory = array semantics" ~count:30
    QCheck.(list_of_size Gen.(1 -- 80) (triple (int_range 0 9) (int_range 0 99) bool))
    (fun ops ->
      let m = machine () in
      let mem = Shmem.create ~config:small_config m in
      let base = Shmem.alloc mem ~home:0 ~words:10 in
      let model = Array.make 10 0 in
      let ok = ref true in
      run_thread m
        (Thread.iter_list
           (fun (slot, v, is_write) ->
             if is_write then begin
               model.(slot) <- v;
               Shmem.write mem (base + slot) v
             end
             else
               let* got = Shmem.read mem (base + slot) in
               if got <> model.(slot) then ok := false;
               Thread.return ())
           ops);
      !ok)

(* ------------------------------------------------------------------ *)
(* Lock                                                               *)
(* ------------------------------------------------------------------ *)

let test_lock_uncontended () =
  let m = machine () in
  let mem = Shmem.create m in
  let lock = Lock.create mem ~home:0 in
  let entered = ref false in
  run_thread m
    (Lock.with_lock lock (fun () ->
         entered := true;
         Thread.return ()));
  Alcotest.(check bool) "critical section ran" true !entered;
  Alcotest.(check bool) "released" true (Lock.holder_free lock)

let test_lock_mutual_exclusion () =
  let m = machine ~n:8 () in
  let mem = Shmem.create m in
  let lock = Lock.create mem ~home:0 in
  let counter = Shmem.alloc mem ~home:0 ~words:1 in
  let in_cs = ref 0 and max_in_cs = ref 0 in
  let per_thread = 10 in
  for p = 0 to 7 do
    Machine.spawn m ~on:p
      (Thread.repeat per_thread (fun _ ->
           Lock.with_lock lock (fun () ->
               incr in_cs;
               if !in_cs > !max_in_cs then max_in_cs := !in_cs;
               (* Non-atomic read-modify-write: only safe under the lock. *)
               let* v = Shmem.read mem counter in
               let* () = Thread.compute 20 in
               let* () = Shmem.write mem counter (v + 1) in
               decr in_cs;
               Thread.return ())))
  done;
  Machine.run m;
  Alcotest.(check int) "never two holders" 1 !max_in_cs;
  Alcotest.(check int) "no lost updates" (8 * per_thread) (Shmem.peek mem counter)

let test_lock_contention_generates_traffic () =
  let m = machine ~n:4 () in
  let mem = Shmem.create m in
  let lock = Lock.create mem ~home:0 in
  for p = 0 to 3 do
    Machine.spawn m ~on:p
      (Thread.repeat 5 (fun _ ->
           Lock.with_lock lock (fun () -> Thread.compute 200)))
  done;
  Machine.run m;
  Alcotest.(check bool) "coherence messages flowed" true
    (Network.messages_of_kind m.Machine.net "coh_req" > 20)


(* ------------------------------------------------------------------ *)
(* Rwlock                                                             *)
(* ------------------------------------------------------------------ *)

let test_rwlock_readers_share () =
  let m = machine ~n:8 () in
  let mem = Shmem.create m in
  let lock = Rwlock.create mem ~home:0 in
  let inside = ref 0 and max_inside = ref 0 in
  for p = 0 to 5 do
    Machine.spawn m ~on:p
      (Rwlock.with_read lock (fun () ->
           incr inside;
           if !inside > !max_inside then max_inside := !inside;
           let* () = Thread.compute 500 in
           decr inside;
           Thread.return ()))
  done;
  Machine.run m;
  Alcotest.(check bool) "readers overlapped" true (!max_inside >= 2);
  Alcotest.(check bool) "lock drained" true (Rwlock.free lock)

let test_rwlock_writer_excludes () =
  let m = machine ~n:8 () in
  let mem = Shmem.create m in
  let lock = Rwlock.create mem ~home:0 in
  let value = Shmem.alloc mem ~home:0 ~words:1 in
  let writers = 4 and per_writer = 6 in
  let torn_reads = ref 0 in
  for w = 0 to writers - 1 do
    Machine.spawn m ~on:w
      (Thread.repeat per_writer (fun _ ->
           Rwlock.with_write lock (fun () ->
               (* Non-atomic increment: correct only under exclusion. *)
               let* v = Shmem.read mem value in
               let* () = Thread.compute 30 in
               Shmem.write mem value (v + 1))))
  done;
  (* Concurrent readers verify they never observe a half-open writer
     section (the value is always consistent under the read lock). *)
  for r = 0 to 2 do
    Machine.spawn m ~on:(writers + r)
      (Thread.repeat 10 (fun _ ->
           Rwlock.with_read lock (fun () ->
               let* v1 = Shmem.read mem value in
               let* () = Thread.compute 20 in
               let* v2 = Shmem.read mem value in
               if v1 <> v2 then incr torn_reads;
               Thread.return ())))
  done;
  Machine.run m;
  Alcotest.(check int) "no lost updates" (writers * per_writer) (Shmem.peek mem value);
  Alcotest.(check int) "no torn reads" 0 !torn_reads

let test_rwlock_write_waits_for_readers () =
  let m = machine ~n:4 () in
  let mem = Shmem.create m in
  let lock = Rwlock.create mem ~home:0 in
  let order = ref [] in
  Machine.spawn m ~on:0
    (Rwlock.with_read lock (fun () ->
         let* () = Thread.compute 2000 in
         order := "reader done" :: !order;
         Thread.return ()));
  Machine.spawn m ~on:1
    (let* () = Thread.sleep 100 in
     Rwlock.with_write lock (fun () ->
         order := "writer in" :: !order;
         Thread.return ()));
  Machine.run m;
  Alcotest.(check (list string)) "writer after reader" [ "reader done"; "writer in" ]
    (List.rev !order)

let prop_rwlock_counter_correct =
  QCheck.Test.make ~name:"rwlock protects a non-atomic counter" ~count:15
    QCheck.(pair (int_range 1 6) (int_range 1 8))
    (fun (writers, per_writer) ->
      let m = machine ~n:8 () in
      let mem = Shmem.create m in
      let lock = Rwlock.create mem ~home:0 in
      let value = Shmem.alloc mem ~home:1 ~words:1 in
      for w = 0 to writers - 1 do
        Machine.spawn m ~on:(w mod 8)
          (Thread.repeat per_writer (fun _ ->
               Rwlock.with_write lock (fun () ->
                   let* v = Shmem.read mem value in
                   let* () = Thread.compute 10 in
                   Shmem.write mem value (v + 1))))
      done;
      Machine.run m;
      Shmem.peek mem value = writers * per_writer)

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Sharers                                                            *)
(* ------------------------------------------------------------------ *)

module ISet = Set.Make (Int)

(* The bitset sharer-set must be observationally equivalent to
   [Set.Make(Int)] over the same universe, across both representations:
   universes of 1–128 processors straddle the 62-member immediate-int
   limit, so the copy-on-write [Bytes] fallback and the boundary sizes
   (61, 62, 63) are all exercised.  Persistence matters too — the
   directory keeps old versions live — so the model replays every
   intermediate set, not just the final one. *)
let prop_sharers_equal_int_set =
  QCheck.Test.make ~name:"sharer bitset = Set.Make(Int)" ~count:300
    QCheck.(
      pair (int_range 1 128) (list (pair bool (int_range 0 1_000_000))))
    (fun (n, ops) ->
      let agree set model =
        Sharers.cardinal set = ISet.cardinal model
        && Sharers.is_empty set = ISet.is_empty model
        && Sharers.to_list set = ISet.elements model
        && (let seen = ref [] in
            Sharers.iter (fun p -> seen := p :: !seen) set;
            List.rev !seen = ISet.elements model)
        && List.for_all
             (fun p -> Sharers.mem p set = ISet.mem p model)
             (List.init n (fun i -> i))
      in
      (* Apply the op stream, keeping every intermediate (set, model)
         pair: checking them all at the end exercises persistence. *)
      let history = ref [ (Sharers.empty ~n, ISet.empty) ] in
      List.iter
        (fun (add, p) ->
          let p = p mod n in
          let set, model = List.hd !history in
          let next =
            if add then (Sharers.add p set, ISet.add p model)
            else (Sharers.remove p set, ISet.remove p model)
          in
          history := next :: !history)
        ops;
      List.for_all (fun (set, model) -> agree set model) !history)

let test_sharers_singleton_and_bounds () =
  List.iter
    (fun n ->
      let s = Sharers.singleton ~n (n - 1) in
      Alcotest.(check (list int)) "singleton members" [ n - 1 ] (Sharers.to_list s);
      Alcotest.(check bool) "member present" true (Sharers.mem (n - 1) s);
      if n > 1 then Alcotest.(check bool) "other absent" false (Sharers.mem 0 s);
      (* Beyond either representation's capacity: must raise, for every
         universe size tested. *)
      let out_of_range =
        match Sharers.add 1000 s with
        | _ -> false
        | exception Invalid_argument _ -> true
      in
      Alcotest.(check bool) "add out of range raises" true out_of_range)
    [ 1; 2; 61; 62; 63; 64; 127; 128 ]

let qsuite props = List.map QCheck_alcotest.to_alcotest props

let () =
  Alcotest.run "cm_memory"
    [
      ( "cache",
        [
          Alcotest.test_case "insert lookup" `Quick test_cache_insert_lookup;
          Alcotest.test_case "private copy" `Quick test_cache_private_copy;
          Alcotest.test_case "conflict eviction" `Quick test_cache_conflict_eviction;
          Alcotest.test_case "reinsert updates" `Quick test_cache_reinsert_updates;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
          Alcotest.test_case "set state" `Quick test_cache_set_state;
        ] );
      ( "shmem",
        [
          Alcotest.test_case "alloc homes" `Quick test_shmem_alloc_homes;
          Alcotest.test_case "unallocated" `Quick test_shmem_unallocated;
          Alcotest.test_case "read after write" `Quick test_shmem_read_after_write_local;
          Alcotest.test_case "zero initialized" `Quick test_shmem_zero_initialized;
          Alcotest.test_case "cross-processor visibility" `Quick test_shmem_cross_processor_visibility;
          Alcotest.test_case "peek poke" `Quick test_shmem_peek_poke;
          Alcotest.test_case "peek sees dirty" `Quick test_shmem_peek_sees_dirty_copy;
          Alcotest.test_case "read block" `Quick test_shmem_read_block;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "hit no traffic" `Quick test_shmem_hit_no_traffic;
          Alcotest.test_case "read miss messages" `Quick test_shmem_read_miss_messages;
          Alcotest.test_case "write invalidates readers" `Quick test_shmem_write_invalidates_readers;
          Alcotest.test_case "write-shared pingpong" `Quick test_shmem_write_shared_pingpong;
          Alcotest.test_case "upgrade cheaper" `Quick test_shmem_upgrade_cheaper_than_miss;
          Alcotest.test_case "eviction writeback" `Quick test_shmem_eviction_writeback_preserves_values;
          Alcotest.test_case "stall holds cpu" `Quick test_shmem_stall_holds_cpu;
          Alcotest.test_case "no remote cpu use" `Quick test_shmem_remote_access_uses_no_remote_cpu;
          Alcotest.test_case "rmw returns old" `Quick test_shmem_rmw_returns_old;
          Alcotest.test_case "rmw atomic counter" `Quick test_shmem_rmw_atomic_counter;
        ]
        @ qsuite [ prop_shmem_single_writer; prop_shmem_sequential_semantics ] );
      ( "sharers",
        [ Alcotest.test_case "singleton and bounds" `Quick test_sharers_singleton_and_bounds ]
        @ qsuite [ prop_sharers_equal_int_set ] );
      ( "lock",
        [
          Alcotest.test_case "uncontended" `Quick test_lock_uncontended;
          Alcotest.test_case "mutual exclusion" `Quick test_lock_mutual_exclusion;
          Alcotest.test_case "contention traffic" `Quick test_lock_contention_generates_traffic;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "readers share" `Quick test_rwlock_readers_share;
          Alcotest.test_case "writer excludes" `Quick test_rwlock_writer_excludes;
          Alcotest.test_case "write waits" `Quick test_rwlock_write_waits_for_readers;
        ]
        @ qsuite [ prop_rwlock_counter_correct ] );
    ]

