(* Deliberately hazardous code: every rule of bin/lint.ml must fire on
   this file.  Never built — it exists only as a negative test for the
   lint (see the rule in test/dune). *)

let _bad_random () = Random.int 10

let _bad_time () = Sys.time ()

let _bad_unix () = Unix.gettimeofday ()

let _bad_table : (int, int) Hashtbl.t = Hashtbl.create ~random:true 16

let _bad_order t = Hashtbl.iter (fun _ v -> print_int v) t

let _bad_fold t = Hashtbl.fold (fun _ v acc -> v + acc) t 0

let _bad_compare cont = cont = fun () -> ()

let _bad_print () = Printf.printf "library code should not print\n"

let _bad_poly_sort xs = List.sort compare xs

let _bad_poly_qualified xs = List.sort Stdlib.compare xs

(* Applied compare is specialized by the compiler and must NOT fire. *)
let _ok_applied_compare a b = compare a b

let _bad_raw_send net deliver = Network.send net ~src:0 ~dst:1 ~words:8 ~kind:"x" deliver

let _bad_raw_send_k net k deliver = Network.send_k net ~src:0 ~dst:1 ~words:8 ~kind:k deliver

(* The fully-qualified path must not slip past the rule. *)
let _bad_raw_send_qualified net d = Cm_machine.Network.send net ~src:0 ~dst:1 ~words:8 ~kind:"x" d

let _allowed () = Hashtbl.iter ignore (Hashtbl.create 1) (* lint: allow hashtbl-order *)

let _allowed_poly xs = List.sort compare xs (* lint: allow poly-compare *)

let _allowed_raw_send net d = Network.send net ~src:0 ~dst:1 ~words:8 ~kind:"x" d (* lint: allow raw-send *)

(* Toplevel mutable state: every constructor form of global-state fires,
   including behind a type constraint and inside a nested module. *)
let _bad_global_counter = ref 0

let _bad_global_table : (int, string) Hashtbl.t = Hashtbl.create 16

let _bad_global_flag = Atomic.make false

module Bad_nested = struct
  let _bad_nested_state = ref []
end

(* Function-local state is per-call and must NOT fire. *)
let _ok_local_state () = ref 0

let _allowed_global = Atomic.make 0 (* lint: allow global-state *)
