(* Tests for the discrete-event simulation core: Heap, Rng, Stats, Sim. *)

open Cm_engine

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

let int_heap () = Heap.create ~cmp:compare

let test_heap_empty () =
  let h = int_heap () in
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h)

let test_heap_order () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 5; 7; 8; 9 ] (Heap.to_sorted_list h);
  Alcotest.(check bool) "empty after drain" true (Heap.is_empty h)

let test_heap_duplicates () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 4; 4; 4; 1; 1 ];
  Alcotest.(check (list int)) "dups kept" [ 1; 1; 4; 4; 4 ] (Heap.to_sorted_list h)

let test_heap_pop_exn () =
  let h = int_heap () in
  Alcotest.check_raises "empty pop_exn" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_clear () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h);
  Heap.push h 7;
  Alcotest.(check (option int)) "usable after clear" (Some 7) (Heap.pop h)

let test_heap_interleaved () =
  let h = int_heap () in
  Heap.push h 10;
  Heap.push h 5;
  Alcotest.(check (option int)) "pop 5" (Some 5) (Heap.pop h);
  Heap.push h 1;
  Heap.push h 20;
  Alcotest.(check (option int)) "pop 1" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop 10" (Some 10) (Heap.pop h);
  Alcotest.(check (option int)) "pop 20" (Some 20) (Heap.pop h)

let test_heap_iter_counts () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  let sum = ref 0 in
  Heap.iter (fun x -> sum := !sum + x) h;
  Alcotest.(check int) "iter visits all" 6 !sum

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drain = List.sort" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      Heap.to_sorted_list h = List.sort compare xs)

let prop_heap_min =
  QCheck.Test.make ~name:"heap peek is minimum" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      Heap.peek h = Some (List.fold_left min (List.hd xs) xs))

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let equal = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 a = Rng.int64 b then incr equal
  done;
  Alcotest.(check bool) "streams differ" true (!equal < 5)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_bound_one () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 10 do
    Alcotest.(check int) "bound 1 gives 0" 0 (Rng.int r 1)
  done

let test_rng_int_invalid () =
  let r = Rng.create ~seed:3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0. && v < 2.5)
  done

let test_rng_split_independent () =
  let parent = Rng.create ~seed:11 in
  let child = Rng.split parent in
  (* The child stream must not coincide with the parent's continued
     stream. *)
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 parent = Rng.int64 child then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 5)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:13 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_pick () =
  let r = Rng.create ~seed:17 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Rng.pick r a in
    Alcotest.(check bool) "picked member" true (Array.exists (( = ) v) a)
  done

let prop_rng_int_uniformish =
  QCheck.Test.make ~name:"rng int covers range" ~count:20
    QCheck.(int_range 2 20)
    (fun bound ->
      let r = Rng.create ~seed:(bound * 31) in
      let seen = Array.make bound false in
      for _ = 1 to bound * 200 do
        seen.(Rng.int r bound) <- true
      done;
      Array.for_all (fun b -> b) seen)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_counters () =
  let s = Stats.create () in
  Alcotest.(check int) "default 0" 0 (Stats.get s "x");
  Stats.incr s "x";
  Stats.incr s "x";
  Stats.add s "x" 5;
  Alcotest.(check int) "accumulated" 7 (Stats.get s "x");
  Stats.add s "y" (-3);
  Alcotest.(check int) "negative ok" (-3) (Stats.get s "y")

let test_stats_listing () =
  let s = Stats.create () in
  Stats.add s "b" 2;
  Stats.add s "a" 1;
  Alcotest.(check (list (pair string int))) "sorted" [ ("a", 1); ("b", 2) ] (Stats.counters s)

let test_stats_distribution () =
  let s = Stats.create () in
  List.iter (Stats.observe s "d") [ 1.0; 5.0; 3.0 ];
  let sum = Stats.summary s "d" in
  Alcotest.(check int) "count" 3 sum.Stats.count;
  Alcotest.(check (float 1e-9)) "sum" 9.0 sum.Stats.sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 sum.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 sum.Stats.max;
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean s "d")

let test_stats_mean_empty () =
  let s = Stats.create () in
  Alcotest.(check bool) "nan mean" true (Float.is_nan (Stats.mean s "none"))

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a "c" 1;
  Stats.add b "c" 2;
  Stats.add b "only_b" 4;
  Stats.observe a "d" 1.0;
  Stats.observe b "d" 9.0;
  Stats.merge_into ~dst:a b;
  Alcotest.(check int) "merged counter" 3 (Stats.get a "c");
  Alcotest.(check int) "new counter" 4 (Stats.get a "only_b");
  let s = Stats.summary a "d" in
  Alcotest.(check int) "merged dist count" 2 s.Stats.count;
  Alcotest.(check (float 1e-9)) "merged max" 9.0 s.Stats.max

(* ------------------------------------------------------------------ *)
(* Sim                                                                *)
(* ------------------------------------------------------------------ *)

let test_sim_order () =
  let sim = Sim.create () in
  let log = ref [] in
  let mark tag () = log := tag :: !log in
  Sim.at sim 30 (mark "c");
  Sim.at sim 10 (mark "a");
  Sim.at sim 20 (mark "b");
  Sim.run sim;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Sim.now sim)

let test_sim_fifo_same_time () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.at sim 10 (fun () -> log := i :: !log)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_sim_after_relative () =
  let sim = Sim.create () in
  let fired_at = ref (-1) in
  Sim.after sim 5 (fun () ->
      Sim.after sim 7 (fun () -> fired_at := Sim.now sim));
  Sim.run sim;
  Alcotest.(check int) "nested relative" 12 !fired_at

let test_sim_past_rejected () =
  let sim = Sim.create () in
  Sim.after sim 10 (fun () ->
      Alcotest.check_raises "past" (Invalid_argument "Sim.at: time 3 is before now (10)")
        (fun () -> Sim.at sim 3 ignore));
  Sim.run sim

let test_sim_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Sim.at sim (i * 10) (fun () -> incr count)
  done;
  Sim.run ~until:55 sim;
  Alcotest.(check int) "events before horizon" 5 !count;
  Alcotest.(check int) "clock stops at horizon" 55 (Sim.now sim);
  Alcotest.(check int) "rest still pending" 5 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check int) "resume finishes" 10 !count

let test_sim_stop () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.at sim 1 (fun () -> incr count);
  Sim.at sim 2 (fun () -> raise Sim.Stop);
  Sim.at sim 3 (fun () -> incr count);
  Sim.run sim;
  Alcotest.(check int) "stopped early" 1 !count

let test_sim_step () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.at sim 1 (fun () -> incr count);
  Sim.at sim 2 (fun () -> incr count);
  Alcotest.(check bool) "step fires" true (Sim.step sim);
  Alcotest.(check int) "one fired" 1 !count;
  Alcotest.(check bool) "step fires" true (Sim.step sim);
  Alcotest.(check bool) "exhausted" false (Sim.step sim);
  Alcotest.(check int) "events_fired" 2 (Sim.events_fired sim)

let prop_sim_fires_in_order =
  QCheck.Test.make ~name:"sim fires in nondecreasing time order" ~count:100
    QCheck.(list_of_size Gen.(1 -- 100) (int_range 0 1000))
    (fun times ->
      let sim = Sim.create () in
      let fired = ref [] in
      List.iter (fun t -> Sim.at sim t (fun () -> fired := Sim.now sim :: !fired)) times;
      Sim.run sim;
      let fired = List.rev !fired in
      fired = List.sort compare times)


(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let test_trace_levels () =
  Trace.set_level Trace.Quiet;
  Alcotest.(check bool) "quiet disables events" false (Trace.enabled Trace.Events);
  Alcotest.(check bool) "quiet disables debug" false (Trace.enabled Trace.Debug);
  Trace.set_level Trace.Events;
  Alcotest.(check bool) "events enabled" true (Trace.enabled Trace.Events);
  Alcotest.(check bool) "debug still off" false (Trace.enabled Trace.Debug);
  Trace.set_level Trace.Debug;
  Alcotest.(check bool) "debug enables events too" true (Trace.enabled Trace.Events);
  Alcotest.(check bool) "level readable" true (Trace.level () = Trace.Debug);
  Trace.set_level Trace.Quiet

let test_trace_emit_lazy () =
  Trace.set_level Trace.Quiet;
  let evaluated = ref false in
  Trace.emit Trace.Events (fun () ->
      evaluated := true;
      "should not run");
  Alcotest.(check bool) "closure not evaluated when off" false !evaluated

let test_trace_eventf_lazy () =
  Trace.set_level Trace.Quiet;
  let formatted = ref false in
  (* %t only invokes its printer during formatting, so it observes whether
     the disabled path really skips the formatting work. *)
  Trace.eventf "%t" (fun _ppf -> formatted := true);
  Alcotest.(check bool) "no formatting when off" false !formatted

(* ------------------------------------------------------------------ *)
(* Heap / Sim edges                                                   *)
(* ------------------------------------------------------------------ *)

let test_heap_large_grow () =
  let h = Heap.create ~cmp:compare in
  for i = 1000 downto 1 do
    Heap.push h i
  done;
  Alcotest.(check int) "all present" 1000 (Heap.length h);
  Alcotest.(check (option int)) "min" (Some 1) (Heap.peek h);
  let drained = Heap.to_sorted_list h in
  Alcotest.(check int) "drained all" 1000 (List.length drained);
  Alcotest.(check (option int)) "sorted ends" (Some 1000)
    (List.nth_opt drained 999)

let test_sim_schedule_inside_handler () =
  let sim = Sim.create () in
  let fired = ref [] in
  Sim.at sim 10 (fun () ->
      fired := 10 :: !fired;
      (* Scheduling for the current instant is allowed and fires after
         the running handler. *)
      Sim.after sim 0 (fun () -> fired := 100 :: !fired);
      Sim.after sim 5 (fun () -> fired := 15 :: !fired));
  Sim.run sim;
  Alcotest.(check (list int)) "nested events fire in order" [ 10; 100; 15 ] (List.rev !fired)

let prop_stats_merge_commutes_on_counters =
  QCheck.Test.make ~name:"stats merge accumulates counters" ~count:50
    QCheck.(pair (list (pair (string_of_size (Gen.return 3)) small_int))
              (list (pair (string_of_size (Gen.return 3)) small_int)))
    (fun (a_ops, b_ops) ->
      let a = Stats.create () and b = Stats.create () in
      List.iter (fun (k, v) -> Stats.add a k v) a_ops;
      List.iter (fun (k, v) -> Stats.add b k v) b_ops;
      Stats.merge_into ~dst:a b;
      List.for_all
        (fun (k, _) ->
          let expect =
            List.fold_left (fun acc (k2, v) -> if k2 = k then acc + v else acc) 0 (a_ops @ b_ops)
          in
          Stats.get a k = expect)
        (a_ops @ b_ops))

(* Observational equivalence of the interned-handle API and the
   string-keyed API: the same interleaving of operations, one registry
   driven through handles wherever possible and one through strings
   only, must yield identical listings — including which names exist at
   all (handles bind lazily, so interning alone must not register). *)
let prop_stats_handles_equal_strings =
  QCheck.Test.make ~name:"interned handles = string API" ~count:200
    QCheck.(list (triple (int_range 0 3) (int_range 0 5) small_int))
    (fun ops ->
      let names = [| "alpha"; "beta"; "gamma"; "delta" |] in
      let s = Stats.create () and h = Stats.create () in
      (* Interned before any write: must not create the counters. *)
      let hc = Array.map (fun n -> Stats.counter h n) names in
      let hd = Array.map (fun n -> Stats.dist h n) names in
      let pre_ok = Stats.counters h = [] && Stats.distributions h = [] in
      List.iter
        (fun (k, op, n) ->
          let name = names.(k) in
          match op with
          | 0 ->
            Stats.incr s name;
            Stats.Counter.incr hc.(k)
          | 1 ->
            Stats.add s name n;
            Stats.Counter.add hc.(k) n
          | 2 ->
            (* The two APIs may be mixed on one name. *)
            Stats.incr s name;
            Stats.incr h name
          | 3 ->
            (* A handle interned mid-stream binds to the existing cell. *)
            Stats.add s name n;
            Stats.Counter.add (Stats.counter h name) n
          | 4 ->
            Stats.observe s name (float_of_int n);
            Stats.Dist.observe hd.(k) (float_of_int n)
          | _ ->
            Stats.observe s name (float_of_int n);
            Stats.observe h name (float_of_int n))
        ops;
      pre_ok
      && Stats.counters s = Stats.counters h
      && Stats.distributions s = Stats.distributions h
      && Array.for_all
           (fun c -> Stats.Counter.get c = Stats.get h (Stats.Counter.name c))
           hc)

(* ------------------------------------------------------------------ *)

let qsuite props = List.map QCheck_alcotest.to_alcotest props

let () =
  Alcotest.run "cm_engine"
    [
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          Alcotest.test_case "pop_exn" `Quick test_heap_pop_exn;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "iter" `Quick test_heap_iter_counts;
        ]
        @ qsuite [ prop_heap_sorts; prop_heap_min ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int bound one" `Quick test_rng_int_bound_one;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "pick member" `Quick test_rng_pick;
        ]
        @ qsuite [ prop_rng_int_uniformish ] );
      ( "stats",
        [
          Alcotest.test_case "counters" `Quick test_stats_counters;
          Alcotest.test_case "listing" `Quick test_stats_listing;
          Alcotest.test_case "distribution" `Quick test_stats_distribution;
          Alcotest.test_case "mean empty" `Quick test_stats_mean_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
        ] );
      ( "trace",
        [
          Alcotest.test_case "levels" `Quick test_trace_levels;
          Alcotest.test_case "lazy emit" `Quick test_trace_emit_lazy;
          Alcotest.test_case "lazy eventf" `Quick test_trace_eventf_lazy;
        ] );
      ( "edges",
        [
          Alcotest.test_case "heap large grow" `Quick test_heap_large_grow;
          Alcotest.test_case "sim nested scheduling" `Quick test_sim_schedule_inside_handler;
        ]
        @ qsuite [ prop_stats_merge_commutes_on_counters; prop_stats_handles_equal_strings ] );
      ( "sim",
        [
          Alcotest.test_case "order" `Quick test_sim_order;
          Alcotest.test_case "fifo ties" `Quick test_sim_fifo_same_time;
          Alcotest.test_case "after relative" `Quick test_sim_after_relative;
          Alcotest.test_case "past rejected" `Quick test_sim_past_rejected;
          Alcotest.test_case "until horizon" `Quick test_sim_until;
          Alcotest.test_case "stop" `Quick test_sim_stop;
          Alcotest.test_case "step" `Quick test_sim_step;
        ]
        @ qsuite [ prop_sim_fires_in_order ] );
    ]
