(* Tests for the discrete-event simulation core: Heap, Rng, Stats, Sim. *)

open Cm_engine

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

let int_heap () = Heap.create ~cmp:compare

let test_heap_empty () =
  let h = int_heap () in
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h)

let test_heap_order () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 5; 7; 8; 9 ] (Heap.to_sorted_list h);
  Alcotest.(check bool) "empty after drain" true (Heap.is_empty h)

let test_heap_duplicates () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 4; 4; 4; 1; 1 ];
  Alcotest.(check (list int)) "dups kept" [ 1; 1; 4; 4; 4 ] (Heap.to_sorted_list h)

let test_heap_pop_exn () =
  let h = int_heap () in
  Alcotest.check_raises "empty pop_exn" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_clear () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h);
  Heap.push h 7;
  Alcotest.(check (option int)) "usable after clear" (Some 7) (Heap.pop h)

let test_heap_interleaved () =
  let h = int_heap () in
  Heap.push h 10;
  Heap.push h 5;
  Alcotest.(check (option int)) "pop 5" (Some 5) (Heap.pop h);
  Heap.push h 1;
  Heap.push h 20;
  Alcotest.(check (option int)) "pop 1" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop 10" (Some 10) (Heap.pop h);
  Alcotest.(check (option int)) "pop 20" (Some 20) (Heap.pop h)

let test_heap_iter_counts () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  let sum = ref 0 in
  Heap.iter (fun x -> sum := !sum + x) h;
  Alcotest.(check int) "iter visits all" 6 !sum

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drain = List.sort" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      Heap.to_sorted_list h = List.sort compare xs)

let prop_heap_min =
  QCheck.Test.make ~name:"heap peek is minimum" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      Heap.peek h = Some (List.fold_left min (List.hd xs) xs))

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let equal = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 a = Rng.int64 b then incr equal
  done;
  Alcotest.(check bool) "streams differ" true (!equal < 5)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_bound_one () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 10 do
    Alcotest.(check int) "bound 1 gives 0" 0 (Rng.int r 1)
  done

let test_rng_int_invalid () =
  let r = Rng.create ~seed:3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0. && v < 2.5)
  done

let test_rng_split_independent () =
  let parent = Rng.create ~seed:11 in
  let child = Rng.split parent in
  (* The child stream must not coincide with the parent's continued
     stream. *)
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 parent = Rng.int64 child then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 5)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:13 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_pick () =
  let r = Rng.create ~seed:17 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Rng.pick r a in
    Alcotest.(check bool) "picked member" true (Array.exists (( = ) v) a)
  done

let prop_rng_int_uniformish =
  QCheck.Test.make ~name:"rng int covers range" ~count:20
    QCheck.(int_range 2 20)
    (fun bound ->
      let r = Rng.create ~seed:(bound * 31) in
      let seen = Array.make bound false in
      for _ = 1 to bound * 200 do
        seen.(Rng.int r bound) <- true
      done;
      Array.for_all (fun b -> b) seen)

(* Boxed-Int64 SplitMix64, verbatim from the pre-limb Rng: the
   allocation-free limb implementation must reproduce this stream bit
   for bit — every digest in the repo depends on it. *)
module Rng_ref = struct
  type t = { mutable state : int64 }

  let golden_gamma = 0x9E3779B97F4A7C15L

  let create ~seed = { state = Int64.of_int seed }

  let mix z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int64 t =
    t.state <- Int64.add t.state golden_gamma;
    mix t.state

  let int t bound =
    let raw = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    raw mod bound

  let float t bound =
    let raw = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
    bound *. (raw /. 9007199254740992.0)
end

let test_rng_matches_int64_reference () =
  List.iter
    (fun seed ->
      let limb = Rng.create ~seed and boxed = Rng_ref.create ~seed in
      for _ = 1 to 1_000 do
        Alcotest.(check int64) "raw output" (Rng_ref.int64 boxed) (Rng.int64 limb)
      done)
    [ 0; 1; 42; 12345; -7; max_int; min_int ];
  let limb = Rng.create ~seed:99 and boxed = Rng_ref.create ~seed:99 in
  for i = 1 to 1_000 do
    (* Interleave derived draws so slicing (top 62, top 53) is held to
       the reference too, not just the raw word. *)
    Alcotest.(check int) "int draw" (Rng_ref.int boxed (i + 1)) (Rng.int limb (i + 1));
    Alcotest.(check (float 0.)) "float draw" (Rng_ref.float boxed 1.0) (Rng.float limb 1.0)
  done

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_counters () =
  let s = Stats.create () in
  Alcotest.(check int) "default 0" 0 (Stats.get s "x");
  Stats.incr s "x";
  Stats.incr s "x";
  Stats.add s "x" 5;
  Alcotest.(check int) "accumulated" 7 (Stats.get s "x");
  Stats.add s "y" (-3);
  Alcotest.(check int) "negative ok" (-3) (Stats.get s "y")

let test_stats_listing () =
  let s = Stats.create () in
  Stats.add s "b" 2;
  Stats.add s "a" 1;
  Alcotest.(check (list (pair string int))) "sorted" [ ("a", 1); ("b", 2) ] (Stats.counters s)

let test_stats_distribution () =
  let s = Stats.create () in
  List.iter (Stats.observe s "d") [ 1.0; 5.0; 3.0 ];
  let sum = Stats.summary s "d" in
  Alcotest.(check int) "count" 3 sum.Stats.count;
  Alcotest.(check (float 1e-9)) "sum" 9.0 sum.Stats.sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 sum.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 sum.Stats.max;
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean s "d")

let test_stats_mean_empty () =
  let s = Stats.create () in
  Alcotest.(check bool) "nan mean" true (Float.is_nan (Stats.mean s "none"))

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a "c" 1;
  Stats.add b "c" 2;
  Stats.add b "only_b" 4;
  Stats.observe a "d" 1.0;
  Stats.observe b "d" 9.0;
  Stats.merge_into ~dst:a b;
  Alcotest.(check int) "merged counter" 3 (Stats.get a "c");
  Alcotest.(check int) "new counter" 4 (Stats.get a "only_b");
  let s = Stats.summary a "d" in
  Alcotest.(check int) "merged dist count" 2 s.Stats.count;
  Alcotest.(check (float 1e-9)) "merged max" 9.0 s.Stats.max

(* ------------------------------------------------------------------ *)
(* Sim                                                                *)
(* ------------------------------------------------------------------ *)

let test_sim_order () =
  let sim = Sim.create () in
  let log = ref [] in
  let mark tag () = log := tag :: !log in
  Sim.at sim 30 (mark "c");
  Sim.at sim 10 (mark "a");
  Sim.at sim 20 (mark "b");
  Sim.run sim;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Sim.now sim)

let test_sim_fifo_same_time () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.at sim 10 (fun () -> log := i :: !log)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_sim_after_relative () =
  let sim = Sim.create () in
  let fired_at = ref (-1) in
  Sim.after sim 5 (fun () ->
      Sim.after sim 7 (fun () -> fired_at := Sim.now sim));
  Sim.run sim;
  Alcotest.(check int) "nested relative" 12 !fired_at

let test_sim_past_rejected () =
  let sim = Sim.create () in
  Sim.after sim 10 (fun () ->
      Alcotest.check_raises "past" (Invalid_argument "Sim.at: time 3 is before now (10)")
        (fun () -> Sim.at sim 3 ignore));
  Sim.run sim

let test_sim_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Sim.at sim (i * 10) (fun () -> incr count)
  done;
  Sim.run ~until:55 sim;
  Alcotest.(check int) "events before horizon" 5 !count;
  Alcotest.(check int) "clock stops at horizon" 55 (Sim.now sim);
  Alcotest.(check int) "rest still pending" 5 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check int) "resume finishes" 10 !count

let test_sim_stop () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.at sim 1 (fun () -> incr count);
  Sim.at sim 2 (fun () -> raise Sim.Stop);
  Sim.at sim 3 (fun () -> incr count);
  Sim.run sim;
  Alcotest.(check int) "stopped early" 1 !count

let test_sim_timer_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let tok = Sim.timer sim ~delay:30 (fun () -> fired := true) in
  Sim.at sim 20 ignore;
  Alcotest.(check int) "pending counts timer" 2 (Sim.pending sim);
  Alcotest.(check bool) "cancel pending" true (Sim.cancel sim tok);
  Alcotest.(check bool) "cancel is one-shot" false (Sim.cancel sim tok);
  Alcotest.(check int) "pending drops" 1 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check bool) "cancelled timer did not fire" false !fired;
  Alcotest.(check int) "cancelled not counted" 1 (Sim.events_fired sim);
  Alcotest.(check int) "clock not advanced by cancelled event" 20 (Sim.now sim)

let test_sim_timer_fires () =
  let sim = Sim.create () in
  let fired_at = ref (-1) in
  let tok = Sim.timer sim ~delay:7 (fun () -> fired_at := Sim.now sim) in
  Sim.run sim;
  Alcotest.(check int) "timer fired on time" 7 !fired_at;
  Alcotest.(check bool) "cancel after fire is false" false (Sim.cancel sim tok)

let test_sim_cancel_stale_token () =
  let sim = Sim.create () in
  let tok1 = Sim.timer sim ~delay:1 ignore in
  Sim.run sim;
  Alcotest.(check bool) "fired token dead" false (Sim.cancel sim tok1);
  (* The fired event's pool slot is recycled for the next timer; the
     stale token's generation no longer matches, so it must not cancel
     the new occupant. *)
  let fired = ref false in
  let _tok2 = Sim.timer sim ~delay:1 (fun () -> fired := true) in
  Alcotest.(check bool) "stale token still dead" false (Sim.cancel sim tok1);
  Sim.run sim;
  Alcotest.(check bool) "new timer unaffected by stale cancel" true !fired

let test_sim_post_handler () =
  let sim = Sim.create () in
  let log = ref [] in
  let hid = Sim.handler sim (fun arg -> log := (Sim.now sim, arg) :: !log) in
  Sim.post sim ~time:5 hid 42;
  Sim.post_after sim ~delay:2 hid 7;
  Sim.after sim 3 (fun () -> log := (Sim.now sim, -1) :: !log);
  Sim.run sim;
  Alcotest.(check (list (pair int int)))
    "posts interleave with closure events"
    [ (2, 7); (3, -1); (5, 42) ]
    (List.rev !log)

let test_sim_post_unregistered () =
  let sim = Sim.create () in
  let other = Sim.create () in
  let hid = Sim.handler other (fun _ -> ()) in
  Alcotest.check_raises "foreign handler"
    (Invalid_argument "Sim.post: handler not registered here") (fun () ->
      Sim.post sim ~time:1 hid 0)

let test_sim_until_rejects_past () =
  let sim = Sim.create () in
  Sim.at sim 100 ignore;
  Sim.run ~until:55 sim;
  Alcotest.(check int) "clock exactly at horizon" 55 (Sim.now sim);
  Alcotest.(check int) "pending intact" 1 (Sim.pending sim);
  (* After a horizon stop the clock has really moved: pre-horizon times
     are the past now. *)
  Alcotest.check_raises "pre-horizon schedule rejected"
    (Invalid_argument "Sim.at: time 54 is before now (55)") (fun () -> Sim.at sim 54 ignore);
  (* Scheduling exactly at the horizon is allowed. *)
  Sim.at sim 55 ignore;
  Sim.run sim;
  Alcotest.(check int) "resumes to completion" 100 (Sim.now sim)

let test_sim_far_future () =
  (* A 4-bucket wheel: the far event lives in the overflow rung through
     many full rotations before migrating into a bucket. *)
  let sim = Sim.create ~wheel_bits:2 () in
  let log = ref [] in
  List.iter (fun t -> Sim.at sim t (fun () -> log := t :: !log)) [ 100_000; 3; 40 ];
  Sim.run sim;
  Alcotest.(check (list int)) "overflow drains in order" [ 3; 40; 100_000 ] (List.rev !log);
  Alcotest.(check int) "clock at far event" 100_000 (Sim.now sim)

let test_sim_wheel_bits_validated () =
  let reject bits =
    Alcotest.check_raises
      (Printf.sprintf "wheel_bits %d" bits)
      (Invalid_argument "Sim.create: wheel_bits out of range [1,22]")
      (fun () -> ignore (Sim.create ~wheel_bits:bits ()))
  in
  reject 0;
  reject 23;
  ignore (Sim.create ~wheel_bits:1 ());
  ignore (Sim.create ~wheel_bits:22 ())

let test_sim_step () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.at sim 1 (fun () -> incr count);
  Sim.at sim 2 (fun () -> incr count);
  Alcotest.(check bool) "step fires" true (Sim.step sim);
  Alcotest.(check int) "one fired" 1 !count;
  Alcotest.(check bool) "step fires" true (Sim.step sim);
  Alcotest.(check bool) "exhausted" false (Sim.step sim);
  Alcotest.(check int) "events_fired" 2 (Sim.events_fired sim)

let prop_sim_fires_in_order =
  QCheck.Test.make ~name:"sim fires in nondecreasing time order" ~count:100
    QCheck.(list_of_size Gen.(1 -- 100) (int_range 0 1000))
    (fun times ->
      let sim = Sim.create () in
      let fired = ref [] in
      List.iter (fun t -> Sim.at sim t (fun () -> fired := Sim.now sim :: !fired)) times;
      Sim.run sim;
      let fired = List.rev !fired in
      fired = List.sort compare times)

(* --- calendar queue vs. binary-heap oracle -------------------------- *)

(* Reference scheduler with the same (time, seq) contract, built on the
   generic Heap — the structure the old Sim used.  The property below
   drives identical schedules through both and demands identical firing
   orders, which is exactly the digest-preservation argument for the
   calendar queue (DESIGN.md §13). *)
module Oracle = struct
  type t = {
    h : (int * int * int) Heap.t;  (* time, seq, id *)
    mutable clock : int;
    mutable seq : int;
  }

  let create () = { h = Heap.create ~cmp:compare; clock = 0; seq = 0 }

  let at o time id =
    Heap.push o.h (time, o.seq, id);
    o.seq <- o.seq + 1

  let run o fire =
    let rec go () =
      match Heap.pop o.h with
      | None -> ()
      | Some (time, _, id) ->
        o.clock <- time;
        fire id;
        go ()
    in
    go ()
end

(* A script is a list of top-level events (absolute time, child delays);
   each event, when it fires, schedules its children relative to its own
   fire time.  Ids are assigned positionally so both sides agree on them
   without reference to execution order. *)
let assign_ids script =
  let n_top = List.length script in
  let next = ref n_top in
  let items =
    List.map
      (fun (time, kids) ->
        ( time,
          List.map
            (fun d ->
              let id = !next in
              incr next;
              (id, d))
            kids ))
      script
  in
  let kids_of = Array.make (max 1 !next) [] in
  List.iteri (fun i (_, kids) -> kids_of.(i) <- kids) items;
  (items, kids_of)

(* Run a script through the real simulator.  Events alternate between
   the closure API ([at]/[after]) and the pooled-handler API
   ([post]/[post_after]) by id parity, so the property also checks that
   the two kinds interleave in one (time, seq) order.  A small wheel
   forces overflow spills and many rotations. *)
let run_real ~wheel_bits script =
  let items, kids_of = assign_ids script in
  let sim = Sim.create ~wheel_bits () in
  let log = ref [] in
  let hid_cell = ref None in
  let rec fire id =
    log := (Sim.now sim, id) :: !log;
    List.iter
      (fun (cid, d) ->
        if cid mod 2 = 0 then Sim.after sim d (fun () -> fire cid)
        else
          match !hid_cell with
          | Some h -> Sim.post_after sim ~delay:d h cid
          | None -> assert false)
      kids_of.(id)
  in
  hid_cell := Some (Sim.handler sim fire);
  List.iteri
    (fun i (time, _) ->
      if i mod 2 = 0 then Sim.at sim time (fun () -> fire i)
      else
        match !hid_cell with
        | Some h -> Sim.post sim ~time h i
        | None -> assert false)
    items;
  Sim.run sim;
  List.rev !log

let run_oracle script =
  let items, kids_of = assign_ids script in
  let o = Oracle.create () in
  let log = ref [] in
  let fire id =
    log := (o.Oracle.clock, id) :: !log;
    List.iter (fun (cid, d) -> Oracle.at o (o.Oracle.clock + d) cid) kids_of.(id)
  in
  List.iteri (fun i (time, _) -> Oracle.at o time i) items;
  Oracle.run o fire;
  List.rev !log

let script_gen =
  (* Times within a few wheel revolutions of a 4..16-bucket wheel; child
     delays reaching far past the window so events spill to the overflow
     rung and migrate back as the wheel rotates. *)
  QCheck.(
    list_of_size
      Gen.(1 -- 30)
      (pair (int_range 0 50) (small_list (int_range 0 300))))

let prop_sim_matches_heap_oracle =
  QCheck.Test.make ~name:"calendar queue = binary-heap oracle" ~count:300 script_gen
    (fun script ->
      let expect = run_oracle script in
      run_real ~wheel_bits:2 script = expect && run_real ~wheel_bits:4 script = expect)

let prop_sim_cancel_subset =
  QCheck.Test.make ~name:"cancel removes exactly the cancelled timers" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (pair (int_range 0 200) bool))
    (fun spec ->
      let sim = Sim.create ~wheel_bits:3 () in
      let fired = ref [] in
      let toks =
        List.mapi (fun i (d, _) -> Sim.timer sim ~delay:d (fun () -> fired := i :: !fired)) spec
      in
      (* Cancelling a pending timer reports true exactly once. *)
      let cancelled_ok =
        List.for_all2 (fun tok (_, c) -> (not c) || Sim.cancel sim tok) toks spec
      in
      let expect =
        spec
        |> List.mapi (fun i (d, c) -> (d, i, c))
        |> List.filter (fun (_, _, c) -> not c)
        |> List.map (fun (d, i, _) -> (d, i))
        |> List.sort compare
        |> List.map snd
      in
      Sim.run sim;
      (* Every token is dead after the run, cancelled or fired. *)
      let all_dead = List.for_all (fun tok -> not (Sim.cancel sim tok)) toks in
      cancelled_ok && all_dead && List.rev !fired = expect)


(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let test_trace_levels () =
  Trace.set_level Trace.Quiet;
  Alcotest.(check bool) "quiet disables events" false (Trace.enabled Trace.Events);
  Alcotest.(check bool) "quiet disables debug" false (Trace.enabled Trace.Debug);
  Trace.set_level Trace.Events;
  Alcotest.(check bool) "events enabled" true (Trace.enabled Trace.Events);
  Alcotest.(check bool) "debug still off" false (Trace.enabled Trace.Debug);
  Trace.set_level Trace.Debug;
  Alcotest.(check bool) "debug enables events too" true (Trace.enabled Trace.Events);
  Alcotest.(check bool) "level readable" true (Trace.level () = Trace.Debug);
  Trace.set_level Trace.Quiet

let test_trace_emit_lazy () =
  Trace.set_level Trace.Quiet;
  let evaluated = ref false in
  Trace.emit Trace.Events (fun () ->
      evaluated := true;
      "should not run");
  Alcotest.(check bool) "closure not evaluated when off" false !evaluated

let test_trace_eventf_lazy () =
  Trace.set_level Trace.Quiet;
  let formatted = ref false in
  (* %t only invokes its printer during formatting, so it observes whether
     the disabled path really skips the formatting work. *)
  Trace.eventf "%t" (fun _ppf -> formatted := true);
  Alcotest.(check bool) "no formatting when off" false !formatted

(* ------------------------------------------------------------------ *)
(* Heap / Sim edges                                                   *)
(* ------------------------------------------------------------------ *)

let test_heap_large_grow () =
  let h = Heap.create ~cmp:compare in
  for i = 1000 downto 1 do
    Heap.push h i
  done;
  Alcotest.(check int) "all present" 1000 (Heap.length h);
  Alcotest.(check (option int)) "min" (Some 1) (Heap.peek h);
  let drained = Heap.to_sorted_list h in
  Alcotest.(check int) "drained all" 1000 (List.length drained);
  Alcotest.(check (option int)) "sorted ends" (Some 1000)
    (List.nth_opt drained 999)

let test_sim_schedule_inside_handler () =
  let sim = Sim.create () in
  let fired = ref [] in
  Sim.at sim 10 (fun () ->
      fired := 10 :: !fired;
      (* Scheduling for the current instant is allowed and fires after
         the running handler. *)
      Sim.after sim 0 (fun () -> fired := 100 :: !fired);
      Sim.after sim 5 (fun () -> fired := 15 :: !fired));
  Sim.run sim;
  Alcotest.(check (list int)) "nested events fire in order" [ 10; 100; 15 ] (List.rev !fired)

let prop_stats_merge_commutes_on_counters =
  QCheck.Test.make ~name:"stats merge accumulates counters" ~count:50
    QCheck.(pair (list (pair (string_of_size (Gen.return 3)) small_int))
              (list (pair (string_of_size (Gen.return 3)) small_int)))
    (fun (a_ops, b_ops) ->
      let a = Stats.create () and b = Stats.create () in
      List.iter (fun (k, v) -> Stats.add a k v) a_ops;
      List.iter (fun (k, v) -> Stats.add b k v) b_ops;
      Stats.merge_into ~dst:a b;
      List.for_all
        (fun (k, _) ->
          let expect =
            List.fold_left (fun acc (k2, v) -> if k2 = k then acc + v else acc) 0 (a_ops @ b_ops)
          in
          Stats.get a k = expect)
        (a_ops @ b_ops))

(* Observational equivalence of the interned-handle API and the
   string-keyed API: the same interleaving of operations, one registry
   driven through handles wherever possible and one through strings
   only, must yield identical listings — including which names exist at
   all (handles bind lazily, so interning alone must not register). *)
let prop_stats_handles_equal_strings =
  QCheck.Test.make ~name:"interned handles = string API" ~count:200
    QCheck.(list (triple (int_range 0 3) (int_range 0 5) small_int))
    (fun ops ->
      let names = [| "alpha"; "beta"; "gamma"; "delta" |] in
      let s = Stats.create () and h = Stats.create () in
      (* Interned before any write: must not create the counters. *)
      let hc = Array.map (fun n -> Stats.counter h n) names in
      let hd = Array.map (fun n -> Stats.dist h n) names in
      let pre_ok = Stats.counters h = [] && Stats.distributions h = [] in
      List.iter
        (fun (k, op, n) ->
          let name = names.(k) in
          match op with
          | 0 ->
            Stats.incr s name;
            Stats.Counter.incr hc.(k)
          | 1 ->
            Stats.add s name n;
            Stats.Counter.add hc.(k) n
          | 2 ->
            (* The two APIs may be mixed on one name. *)
            Stats.incr s name;
            Stats.incr h name
          | 3 ->
            (* A handle interned mid-stream binds to the existing cell. *)
            Stats.add s name n;
            Stats.Counter.add (Stats.counter h name) n
          | 4 ->
            Stats.observe s name (float_of_int n);
            Stats.Dist.observe hd.(k) (float_of_int n)
          | _ ->
            Stats.observe s name (float_of_int n);
            Stats.observe h name (float_of_int n))
        ops;
      pre_ok
      && Stats.counters s = Stats.counters h
      && Stats.distributions s = Stats.distributions h
      && Array.for_all
           (fun c -> Stats.Counter.get c = Stats.get h (Stats.Counter.name c))
           hc)

(* ------------------------------------------------------------------ *)

let qsuite props = List.map QCheck_alcotest.to_alcotest props

let () =
  Alcotest.run "cm_engine"
    [
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          Alcotest.test_case "pop_exn" `Quick test_heap_pop_exn;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "iter" `Quick test_heap_iter_counts;
        ]
        @ qsuite [ prop_heap_sorts; prop_heap_min ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int bound one" `Quick test_rng_int_bound_one;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "pick member" `Quick test_rng_pick;
          Alcotest.test_case "limbs match Int64 reference" `Quick
            test_rng_matches_int64_reference;
        ]
        @ qsuite [ prop_rng_int_uniformish ] );
      ( "stats",
        [
          Alcotest.test_case "counters" `Quick test_stats_counters;
          Alcotest.test_case "listing" `Quick test_stats_listing;
          Alcotest.test_case "distribution" `Quick test_stats_distribution;
          Alcotest.test_case "mean empty" `Quick test_stats_mean_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
        ] );
      ( "trace",
        [
          Alcotest.test_case "levels" `Quick test_trace_levels;
          Alcotest.test_case "lazy emit" `Quick test_trace_emit_lazy;
          Alcotest.test_case "lazy eventf" `Quick test_trace_eventf_lazy;
        ] );
      ( "edges",
        [
          Alcotest.test_case "heap large grow" `Quick test_heap_large_grow;
          Alcotest.test_case "sim nested scheduling" `Quick test_sim_schedule_inside_handler;
        ]
        @ qsuite [ prop_stats_merge_commutes_on_counters; prop_stats_handles_equal_strings ] );
      ( "sim",
        [
          Alcotest.test_case "order" `Quick test_sim_order;
          Alcotest.test_case "fifo ties" `Quick test_sim_fifo_same_time;
          Alcotest.test_case "after relative" `Quick test_sim_after_relative;
          Alcotest.test_case "past rejected" `Quick test_sim_past_rejected;
          Alcotest.test_case "until horizon" `Quick test_sim_until;
          Alcotest.test_case "until rejects past" `Quick test_sim_until_rejects_past;
          Alcotest.test_case "stop" `Quick test_sim_stop;
          Alcotest.test_case "step" `Quick test_sim_step;
          Alcotest.test_case "timer cancel" `Quick test_sim_timer_cancel;
          Alcotest.test_case "timer fires" `Quick test_sim_timer_fires;
          Alcotest.test_case "stale token" `Quick test_sim_cancel_stale_token;
          Alcotest.test_case "post handler" `Quick test_sim_post_handler;
          Alcotest.test_case "post unregistered" `Quick test_sim_post_unregistered;
          Alcotest.test_case "far future" `Quick test_sim_far_future;
          Alcotest.test_case "wheel bits validated" `Quick test_sim_wheel_bits_validated;
        ]
        @ qsuite
            [ prop_sim_fires_in_order; prop_sim_matches_heap_oracle; prop_sim_cancel_subset ] );
    ]
