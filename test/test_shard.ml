(* Tests for the conservative sharded-PDES coordinator: the lookahead
   bound, the mailbox/barrier machinery, the causality sanitizer, and
   the digest-equivalence oracle (a sharded run must be bit-identical
   to the sequential one at any shard count — DESIGN.md §17). *)

open Cm_engine
open Cm_machine

(* ------------------------------------------------------------------ *)
(* Topology.min_positive_latency                                      *)
(* ------------------------------------------------------------------ *)

(* The declared lookahead must be exactly the minimum latency the
   network can ever assign: probe every (src, dst) pair — loopback
   included, always-migrate policies do send to themselves — with an
   empty payload and compare the minimum of the assigned latencies. *)
let test_lookahead_is_network_minimum () =
  List.iter
    (fun (tname, topo) ->
      List.iter
        (fun (cname, costs) ->
          let sim = Sim.create () in
          let stats = Stats.create () in
          let net = Network.create ~sim ~topo ~costs ~stats () in
          let bound = Topology.min_positive_latency topo costs in
          let minimum = ref max_int in
          for src = 0 to Topology.size topo - 1 do
            for dst = 0 to Topology.size topo - 1 do
              let l = Network.send net ~src ~dst ~words:0 ~kind:"probe" ignore in
              if l < !minimum then minimum := l
            done
          done;
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s bound positive" tname cname)
            true (bound > 0);
          Alcotest.(check int)
            (Printf.sprintf "%s/%s bound = network minimum" tname cname)
            !minimum bound)
        [ ("software", Costs.software); ("hardware", Costs.hardware) ])
    [
      ("mesh", Topology.mesh 16);
      ("torus", Topology.torus 16);
      ("crossbar", Topology.crossbar 10);
      ("mesh-nonsquare", Topology.mesh 24);
    ]

let test_lookahead_rejects_non_positive () =
  (* A cost table whose cheapest message is free admits no conservative
     window: the bound must refuse, and so must a sharded machine. *)
  let free = { Costs.software with Costs.net_base = 0; net_per_word = 0; header_words = 0 } in
  Alcotest.check_raises "zero-latency table refused"
    (Invalid_argument
       "Topology.min_positive_latency: mesh of 4 has minimum link latency 0 <= 0 — no \
        conservative lookahead exists; run with --shards 1")
    (fun () -> ignore (Topology.min_positive_latency (Topology.mesh 4) free));
  match Machine.create ~seed:1 ~shards:2 ~n_procs:4 ~costs:free () with
  | _ -> Alcotest.fail "sharded machine accepted a zero-latency cost table"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Mailbox merge and window boundaries                                *)
(* ------------------------------------------------------------------ *)

(* A bare two-shard coordinator over four processors (2 per shard),
   with a kick-off event on shard 0 that queues sends by hand. *)
let make_shard ?(k = 2) ?(lookahead = 10) ~n_procs () =
  let reg = Sim.registry () in
  let sims = Array.init k (fun _ -> Sim.create ~registry:reg ()) in
  let shard_of = Array.init n_procs (fun p -> p * k / n_procs) in
  (sims, Shard.create ~sims ~lookahead ~shard_of)

let test_merge_fires_in_global_key_order () =
  let sims, sh = make_shard ~n_procs:4 () in
  let order = ref [] in
  let record tag () = order := tag :: !order in
  (* The kick event (seq 0) draws four seqs and pushes the entries
     shuffled, across both destination shards: same-time entries must
     be ordered by seq, and the tournament must interleave the two
     shards' queues into one global (time, seq) order. *)
  Sim.at sims.(0) 0 (fun () ->
      let s0 = Sim.take_send_seq sims.(0) in
      let s1 = Sim.take_send_seq sims.(0) in
      let s2 = Sim.take_send_seq sims.(0) in
      let s3 = Sim.take_send_seq sims.(0) in
      Shard.push sh ~time:12 ~send:0 ~seq:s3 ~src:0 ~dst:0 ~hid:(-1) ~arg:0 (record "d");
      Shard.push sh ~time:11 ~send:0 ~seq:s1 ~src:0 ~dst:2 ~hid:(-1) ~arg:0 (record "b");
      Shard.push sh ~time:12 ~send:0 ~seq:s2 ~src:0 ~dst:3 ~hid:(-1) ~arg:0 (record "c");
      Shard.push sh ~time:11 ~send:0 ~seq:s0 ~src:0 ~dst:1 ~hid:(-1) ~arg:0 (record "a"));
  Shard.run sh;
  Alcotest.(check (list string))
    "merged arrivals fire in (time, seq) order across shards"
    [ "a"; "b"; "c"; "d" ]
    (List.rev !order);
  Alcotest.(check int) "all five events counted" 5 (Shard.fired sh);
  Alcotest.(check int) "final clock is the last arrival" 12 (Shard.clock sh)

let test_horizon_boundary_arrival_fires () =
  let sims, sh = make_shard ~n_procs:4 () in
  let fired = ref [] in
  Sim.at sims.(0) 0 (fun () ->
      let s0 = Sim.take_send_seq sims.(0) in
      let s1 = Sim.take_send_seq sims.(0) in
      Shard.push sh ~time:50 ~send:0 ~seq:s0 ~src:0 ~dst:2 ~hid:(-1) ~arg:0 (fun () ->
          fired := 50 :: !fired);
      Shard.push sh ~time:51 ~send:0 ~seq:s1 ~src:0 ~dst:2 ~hid:(-1) ~arg:0 (fun () ->
          fired := 51 :: !fired));
  (* As [Sim.run ~until]: an arrival exactly at the horizon fires even
     though the window containing it is clamped to [horizon + 1]; the
     one just past it stays queued and the clock parks at the horizon. *)
  Shard.run ~until:50 sh;
  Alcotest.(check (list int)) "boundary arrival fired, later one queued" [ 50 ] (List.rev !fired);
  Alcotest.(check int) "clock parked at horizon" 50 (Shard.clock sh);
  Shard.run sh;
  Alcotest.(check (list int)) "resumed run fires the rest" [ 50; 51 ] (List.rev !fired);
  Alcotest.(check int) "clock at last event" 51 (Shard.clock sh)

let test_causality_sanitizer_fires () =
  Check.set_enabled true;
  Check.reset ();
  Fun.protect
    ~finally:(fun () ->
      Check.set_enabled false;
      Check.reset ())
    (fun () ->
      let sims, sh = make_shard ~lookahead:10 ~n_procs:4 () in
      (* An arrival at cycle 3 lands inside the first completed window
         [0, 10) — only possible if some latency undercuts the declared
         lookahead, which the sanitizer must catch at the merge. *)
      Sim.at sims.(0) 0 (fun () ->
          let s = Sim.take_send_seq sims.(0) in
          Shard.For_testing.push_raw sh ~time:3 ~send:0 ~seq:s ~src:0 ~dst:2 ~hid:(-1) ~arg:0
            ignore);
      match Shard.run sh with
      | () -> Alcotest.fail "causality violation not caught"
      | exception Check.Violation msg ->
        Alcotest.(check bool)
          (Printf.sprintf "diagnostic names the window (%s)" msg)
          true
          (String.length msg > 0))

(* ------------------------------------------------------------------ *)
(* Digest equivalence: sharded vs sequential                          *)
(* ------------------------------------------------------------------ *)

(* Random thread scripts over a machine — compute, yield, sleep, and
   cross-processor travel (the network path through the mailboxes) —
   must produce the same digest (final clock, events fired, every
   statistic) at shard counts 1, 2, 3, and 4.  This is the PR's core
   invariant: the windowed tournament replays the sequential event
   order exactly (see Shard). *)

type shard_op = S_compute of int | S_yield | S_sleep of int | S_travel of int

let shard_op_print = function
  | S_compute n -> Printf.sprintf "compute %d" n
  | S_yield -> "yield"
  | S_sleep n -> Printf.sprintf "sleep %d" n
  | S_travel d -> Printf.sprintf "travel %d" d

let shard_case_print (seed, n_procs, k, script) =
  Printf.sprintf "seed %d, %d procs, %d shards: %s" seed n_procs k
    (String.concat "; "
       (List.map
          (fun (on, ops) ->
            Printf.sprintf "on %d: [%s]" on
              (String.concat ", " (List.map shard_op_print ops)))
          script))

let shard_case_gen =
  QCheck.Gen.(
    let* n_procs = oneofl [ 4; 9; 16 ] in
    let* k = int_range 2 4 in
    let* seed = int_range 0 1_000 in
    let op =
      oneof
        [
          map (fun n -> S_compute n) (int_range 1 50);
          return S_yield;
          map (fun n -> S_sleep n) (int_range 1 100);
          map (fun d -> S_travel d) (int_range 0 (n_procs - 1));
        ]
    in
    let+ script =
      list_size (int_range 1 5)
        (pair (int_range 0 (n_procs - 1)) (list_size (int_range 0 8) op))
    in
    (seed, n_procs, k, script))

let shard_digest ~shards ~seed ~n_procs script =
  let m = Machine.create ~seed ~shards ~n_procs ~costs:Costs.software () in
  let open Thread.Infix in
  let rec body ops =
    match ops with
    | [] -> Thread.return ()
    | op :: rest ->
      let* () =
        match op with
        | S_compute n -> Thread.compute n
        | S_yield -> Thread.yield
        | S_sleep n -> Thread.sleep n
        | S_travel d ->
          Thread.travel ~net:m.Machine.net ~dst:(Machine.proc m d) ~words:8 ~kind:"migrate"
            ~recv_work:20
      in
      body rest
  in
  List.iter (fun (on, ops) -> Machine.spawn m ~on (body ops)) script;
  Machine.run m;
  Machine.digest m

let prop_shard_digest_oracle =
  QCheck.Test.make ~name:"sharded digests equal sequential at any shard count" ~count:80
    (QCheck.make ~print:shard_case_print shard_case_gen)
    (fun (seed, n_procs, k, script) ->
      shard_digest ~shards:1 ~seed ~n_procs script = shard_digest ~shards:k ~seed ~n_procs script)

(* The whole-experiment complement of the random oracle: the counting
   network's historically hardest cell — 64 requesters running
   identical synchronized request loops, the workload that defeated
   every locally-computable ordering-key scheme (DESIGN.md §17) —
   through the full driver (warmup snapshot via the agenda included),
   at shard counts 2 and 4 against sequential. *)
let test_counting_cell_digest_equal () =
  let digest_at shards =
    Machine.set_default_shards shards;
    Fun.protect
      ~finally:(fun () -> Machine.set_default_shards 1)
      (fun () ->
        let machine, _ =
          Cm_experiments.Counting_run.run_with_machine
            (Cm_experiments.Scheme.Rpc { hw = false; repl = false })
            {
              Cm_experiments.Counting_run.default with
              Cm_experiments.Counting_run.requesters = 64;
              think = 0;
              horizon = 60_000;
            }
        in
        Machine.digest machine)
  in
  let sequential = digest_at 1 in
  Alcotest.(check string) "2 shards" sequential (digest_at 2);
  Alcotest.(check string) "4 shards" sequential (digest_at 4)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cm_shard"
    [
      ( "lookahead",
        [
          Alcotest.test_case "bound equals network minimum" `Quick
            test_lookahead_is_network_minimum;
          Alcotest.test_case "non-positive bound refused" `Quick
            test_lookahead_rejects_non_positive;
        ] );
      ( "windows",
        [
          Alcotest.test_case "merge fires in global key order" `Quick
            test_merge_fires_in_global_key_order;
          Alcotest.test_case "horizon boundary arrival" `Quick
            test_horizon_boundary_arrival_fires;
          Alcotest.test_case "causality sanitizer" `Quick test_causality_sanitizer_fires;
        ] );
      ( "digest-oracle",
        Alcotest.test_case "counting cell at 2 and 4 shards" `Quick
          test_counting_cell_digest_equal
        :: List.map QCheck_alcotest.to_alcotest [ prop_shard_digest_oracle ] );
    ]
