(* Tests for the Prelude-like runtime: Objspace, Runtime (RPC and
   computation migration), Replicate, and the Prelude facade — including
   the paper's Figure 1 message-count model, which the simulator must
   reproduce exactly. *)

open Cm_engine
open Cm_machine
open Cm_runtime
open Cm_core
open Thread.Infix

let costs = Costs.software

let machine ?(n = 8) () = Machine.create ~seed:3 ~n_procs:n ~costs ()

let run_thread ?(on = 0) m body =
  let finished = ref false in
  Machine.spawn m ~on ~on_exit:(fun () -> finished := true) body;
  Machine.run m;
  Alcotest.(check bool) "thread finished" true !finished

(* ------------------------------------------------------------------ *)
(* Objspace                                                           *)
(* ------------------------------------------------------------------ *)

let test_objspace_register () =
  let m = machine () in
  let space = Objspace.create m in
  let a = Objspace.register space ~home:2 "alpha" in
  let b = Objspace.register space ~home:5 "beta" in
  Alcotest.(check int) "a home" 2 (Objspace.home space a);
  Alcotest.(check int) "b home" 5 (Objspace.home space b);
  Alcotest.(check string) "a state" "alpha" (Objspace.state space a);
  Alcotest.(check string) "b state" "beta" (Objspace.state space b);
  Alcotest.(check int) "count" 2 (Objspace.count space)

let test_objspace_bad_home () =
  let m = machine () in
  let space = Objspace.create m in
  Alcotest.check_raises "bad home" (Invalid_argument "Objspace.register: bad home processor")
    (fun () -> ignore (Objspace.register space ~home:99 ()))

let test_objspace_unknown () =
  let m = machine () in
  let space = Objspace.create m in
  ignore (Objspace.register space ~home:0 ());
  Alcotest.check_raises "unknown id" (Invalid_argument "Objspace: unknown object 7") (fun () ->
      ignore (Objspace.home space (Objspace.id_of_int 7)))

let test_objspace_iter () =
  let m = machine () in
  let space = Objspace.create m in
  for i = 0 to 4 do
    ignore (Objspace.register space ~home:i (i * 10))
  done;
  let sum = ref 0 in
  Objspace.iter (fun _ home state -> sum := !sum + home + state) space;
  Alcotest.(check int) "visited all" (10 + 100) !sum


let test_objspace_growth () =
  let m = machine () in
  let space = Objspace.create m in
  let ids = List.init 100 (fun i -> Objspace.register space ~home:(i mod 8) (i * 2)) in
  Alcotest.(check int) "count" 100 (Objspace.count space);
  List.iteri
    (fun i id ->
      Alcotest.(check int) "home survives growth" (i mod 8) (Objspace.home space id);
      Alcotest.(check int) "state survives growth" (i * 2) (Objspace.state space id))
    ids

let test_prelude_proc_at_base () =
  let m = machine () in
  let p = Prelude.create m in
  let obj = Prelude.make_obj p ~home:5 () in
  let ended_on = ref (-1) in
  run_thread ~on:0 m
    (let* () =
       Prelude.proc p ~at_base:true
         (Prelude.invoke p ~access:Prelude.Migrate obj (fun () -> Thread.return ()))
     in
     let* pr = Thread.proc in
     ended_on := Processor.id pr;
     Thread.return ());
  Alcotest.(check int) "base scope stays remote" 5 !ended_on

let test_prelude_defaults () =
  Alcotest.(check int) "args default 8 words (32 bytes)" 8 Prelude.default_args_words;
  Alcotest.(check int) "result default 2 words" 2 Prelude.default_result_words

let test_prelude_obj_home () =
  let m = machine () in
  let p = Prelude.create m in
  let o = Prelude.make_obj p ~home:6 "payload" in
  Alcotest.(check int) "home" 6 (Prelude.obj_home p o);
  Alcotest.(check string) "state" "payload" (Prelude.obj_state p o)

(* ------------------------------------------------------------------ *)
(* Runtime.call                                                       *)
(* ------------------------------------------------------------------ *)

let test_call_local_no_messages () =
  let m = machine () in
  let rt = Runtime.create m in
  let ran = ref false in
  run_thread ~on:3 m
    (Runtime.call rt ~access:Runtime.Rpc ~home:3 ~args_words:8 ~result_words:2
       (Thread.return (ran := true)));
  Alcotest.(check bool) "body ran" true !ran;
  Alcotest.(check int) "no messages" 0 (Network.total_messages m.Machine.net);
  Alcotest.(check int) "local call counted" 1 (Runtime.local_calls rt)

let test_call_rpc_two_messages () =
  let m = machine () in
  let rt = Runtime.create m in
  let body_ran_on = ref (-1) and ended_on = ref (-1) in
  run_thread ~on:0 m
    (let* r =
       Runtime.call rt ~access:Runtime.Rpc ~home:5 ~args_words:8 ~result_words:2
         (let* p = Thread.proc in
          body_ran_on := Processor.id p;
          Thread.return 99)
     in
     Alcotest.(check int) "result returned" 99 r;
     let* p = Thread.proc in
     ended_on := Processor.id p;
     Thread.return ());
  Alcotest.(check int) "body at home" 5 !body_ran_on;
  Alcotest.(check int) "caller stays put" 0 !ended_on;
  Alcotest.(check int) "request message" 1 (Network.messages_of_kind m.Machine.net "rpc");
  Alcotest.(check int) "reply message" 1 (Network.messages_of_kind m.Machine.net "rpc_reply");
  Alcotest.(check int) "total 2" 2 (Network.total_messages m.Machine.net);
  Alcotest.(check int) "rpc counted" 1 (Runtime.rpc_calls rt)

let test_call_rpc_uses_server_cpu () =
  let m = machine () in
  let rt = Runtime.create m in
  run_thread ~on:0 m
    (Thread.ignore_m
       (Runtime.call rt ~access:Runtime.Rpc ~home:5 ~args_words:8 ~result_words:2
          (Thread.compute 150)));
  (* Server CPU: dispatch + receive pipeline + user code + reply send. *)
  let expect =
    costs.Costs.scheduler
    + Costs.recv_pipeline costs ~words:8 ~new_thread:true
    + 150
    + Costs.send_pipeline costs ~words:2
  in
  Alcotest.(check int) "server cycles" expect (Processor.busy_cycles (Machine.proc m 5))

let test_call_migrate_one_message_and_moves () =
  let m = machine () in
  let rt = Runtime.create m in
  let ended_on = ref (-1) in
  run_thread ~on:0 m
    (let* () =
       Runtime.call rt ~access:Runtime.Migrate ~home:5 ~args_words:8 ~result_words:2
         (Thread.return ())
     in
     let* p = Thread.proc in
     ended_on := Processor.id p;
     Thread.return ());
  Alcotest.(check int) "thread moved to home" 5 !ended_on;
  Alcotest.(check int) "single message" 1 (Network.total_messages m.Machine.net);
  Alcotest.(check int) "migration counted" 1 (Runtime.migrations rt)

let test_call_migrate_subsequent_local () =
  let m = machine () in
  let rt = Runtime.create m in
  run_thread ~on:0 m
    (Thread.repeat 5 (fun _ ->
         Thread.ignore_m
           (Runtime.call rt ~access:Runtime.Migrate ~home:5 ~args_words:8 ~result_words:2
              (Thread.return ()))));
  (* First access migrates; the other four are local. *)
  Alcotest.(check int) "one migration" 1 (Runtime.migrations rt);
  Alcotest.(check int) "four local" 4 (Runtime.local_calls rt);
  Alcotest.(check int) "one message" 1 (Network.total_messages m.Machine.net)

(* ------------------------------------------------------------------ *)
(* Runtime.site — fused call sites                                    *)
(* ------------------------------------------------------------------ *)

(* Run five invocations of [make rt] from processor 0 and collect every
   observable: final clock, traffic, call counters, where the thread
   ended.  A fused site must be indistinguishable from the Runtime.call
   it precomputes. *)
let measure_invocations make =
  let m = machine () in
  let rt = Runtime.create m in
  let inv = make rt in
  let ended = ref (-1) in
  run_thread ~on:0 m
    (let* () = Thread.repeat 5 (fun _ -> Thread.ignore_m inv) in
     let* p = Thread.proc in
     ended := Processor.id p;
     Thread.return ());
  ( Machine.now m,
    Network.total_messages m.Machine.net,
    Runtime.migrations rt,
    Runtime.local_calls rt,
    Runtime.rpc_calls rt,
    !ended )

let obs = Alcotest.(pair (pair (pair int int) (pair int int)) (pair int int))

let as_obs (a, b, c, d, e, f) = (((a, b), (c, d)), (e, f))

let test_site_call_matches_call_migrate () =
  let via_call rt =
    Runtime.call rt ~access:Runtime.Migrate ~home:5 ~args_words:8 ~result_words:2
      (Thread.compute 40)
  in
  let via_site rt =
    Runtime.site_call
      (Runtime.site rt ~access:Runtime.Migrate ~home:5 ~args_words:8 ~result_words:2
         (Thread.compute 40))
  in
  let reference = measure_invocations via_call in
  let fused = measure_invocations via_site in
  Alcotest.check obs "site cycle- and counter-identical to call" (as_obs reference) (as_obs fused);
  let _, messages, migrations, locals, _, ended = fused in
  Alcotest.(check int) "one migration" 1 migrations;
  Alcotest.(check int) "four local" 4 locals;
  Alcotest.(check int) "one message" 1 messages;
  Alcotest.(check int) "ended at home" 5 ended

let test_site_call_matches_call_rpc () =
  let via_call rt =
    Runtime.call rt ~access:Runtime.Rpc ~home:5 ~args_words:8 ~result_words:2 (Thread.compute 40)
  in
  let via_site rt =
    Runtime.site_call
      (Runtime.site rt ~access:Runtime.Rpc ~home:5 ~args_words:8 ~result_words:2
         (Thread.compute 40))
  in
  let reference = measure_invocations via_call in
  let fused = measure_invocations via_site in
  Alcotest.check obs "site cycle- and counter-identical to call" (as_obs reference) (as_obs fused);
  let _, messages, _, _, rpcs, ended = fused in
  Alcotest.(check int) "five rpcs" 5 rpcs;
  Alcotest.(check int) "request+reply per rpc" 10 messages;
  Alcotest.(check int) "caller stays put" 0 ended

let test_site_call_checked_falls_back () =
  (* With the sanitizer armed the frame fast path is off; site_call must
     route through the CPS reference path with identical observables. *)
  let via_site rt =
    Runtime.site_call
      (Runtime.site rt ~access:Runtime.Migrate ~home:5 ~args_words:8 ~result_words:2
         (Thread.compute 40))
  in
  let plain = measure_invocations via_site in
  Check.set_enabled true;
  Check.reset ();
  let checked =
    Fun.protect
      ~finally:(fun () ->
        Check.set_enabled false;
        Check.reset ())
      (fun () -> measure_invocations via_site)
  in
  Alcotest.check obs "checked run identical" (as_obs plain) (as_obs checked)

(* ------------------------------------------------------------------ *)
(* Runtime.msite — per-object method sites                            *)
(* ------------------------------------------------------------------ *)

(* One method in both engines' vocabularies: charge 40 cycles at the
   object's home, return state + a + b.  The msite contract requires the
   two bodies to charge identical costs in identical order. *)
let ms_frame_body space =
  let done_ c =
    let v : int = Obj.obj (Objspace.state space (Objspace.id_of_int (Runtime.msite_obj c))) in
    Runtime.msite_finish c (v + Runtime.msite_arg_a c + Runtime.msite_arg_b c)
  in
  fun c -> Thread.Frame.hold_then c 40 done_

let ms_cps_body space ~obj ~a ~b =
  let* () = Thread.compute 40 in
  Thread.return ((Obj.obj (Objspace.state space (Objspace.id_of_int obj)) : int) + a + b)

(* Run a scripted thread against one 7-valued object homed at 5 and
   collect [measure_invocations]' observables plus every result.  The
   script gets the space, a fused-or-generic invoker (scoped and
   unscoped), and the object id. *)
let measure_msite ~access ~fused ?(arm_faults = false) script =
  let m = machine () in
  let rt = Runtime.create m in
  let space = Objspace.create m in
  let obj = Objspace.register space ~home:5 (Obj.repr 7) in
  if arm_faults then
    Transport.configure_faults (Machine.transport m) ~seed:1
      [ ("migrate", Transport.no_fault) ];
  let ms =
    Runtime.msite rt ~access ~space ~args_words:8 ~result_words:2
      ~frame_body:(ms_frame_body space) ~cps_body:(ms_cps_body space)
  in
  let scoped ~a ~b =
    if fused then Runtime.msite_scoped ms ~obj:(obj :> int) ~a ~b
    else
      Runtime.scope rt ~result_words:2
        (Runtime.call rt ~access
           ~home:(Objspace.home space obj)
           ~args_words:8 ~result_words:2
           (ms_cps_body space ~obj:(obj :> int) ~a ~b))
  in
  let unscoped ~a ~b =
    if fused then Runtime.msite_call ms ~obj:(obj :> int) ~a ~b
    else
      Runtime.call rt ~access
        ~home:(Objspace.home space obj)
        ~args_words:8 ~result_words:2
        (ms_cps_body space ~obj:(obj :> int) ~a ~b)
  in
  let results = ref [] in
  let ended = ref (-1) in
  run_thread ~on:0 m
    (let* () = script space obj ~scoped ~unscoped results in
     let* p = Thread.proc in
     ended := Processor.id p;
     Thread.return ());
  ( ( Machine.now m,
      Network.total_messages m.Machine.net,
      Runtime.migrations rt,
      Runtime.local_calls rt,
      Runtime.rpc_calls rt,
      !ended ),
    List.rev !results )

(* Five scoped invocations, varying operands. *)
let msite_repeat_script _space _obj ~scoped ~unscoped:_ results =
  Thread.repeat 5 (fun i ->
      let* r = scoped ~a:i ~b:(2 * i) in
      results := r :: !results;
      Thread.return ())

let check_msite_pair name ~access ?arm_faults script =
  let reference = measure_msite ~access ~fused:false ?arm_faults script in
  let fused = measure_msite ~access ~fused:true ?arm_faults script in
  Alcotest.check obs (name ^ ": observables identical") (as_obs (fst reference))
    (as_obs (fst fused));
  Alcotest.(check (list int)) (name ^ ": results identical") (snd reference) (snd fused);
  fused

let test_msite_matches_scope_call_migrate () =
  let (_, messages, migrations, _, _, ended), results =
    check_msite_pair "migrate" ~access:Runtime.Migrate msite_repeat_script
  in
  (* Each scoped call migrates there and sends the result back. *)
  Alcotest.(check int) "five migrations" 5 migrations;
  Alcotest.(check int) "two messages per call" 10 messages;
  Alcotest.(check int) "caller back home" 0 ended;
  Alcotest.(check (list int)) "method results" [ 7; 10; 13; 16; 19 ] results

let test_msite_matches_scope_call_rpc () =
  let (_, messages, _, _, rpcs, ended), _ =
    check_msite_pair "rpc" ~access:Runtime.Rpc msite_repeat_script
  in
  Alcotest.(check int) "five rpcs" 5 rpcs;
  Alcotest.(check int) "request+reply per rpc" 10 messages;
  Alcotest.(check int) "caller stays put" 0 ended

(* The home table is consulted per invocation: a concurrent
   [Objspace.move] redirects the very next call, fused and generic
   alike. *)
let msite_move_script space obj ~scoped ~unscoped:_ results =
  let* r1 = scoped ~a:1 ~b:0 in
  results := r1 :: !results;
  Objspace.move space obj ~to_:2;
  let* r2 = scoped ~a:2 ~b:0 in
  results := r2 :: !results;
  Thread.return ()

let test_msite_rebinds_on_move () =
  let (_, messages, migrations, _, _, _), results =
    check_msite_pair "move" ~access:Runtime.Migrate msite_move_script
  in
  Alcotest.(check int) "both calls migrated" 2 migrations;
  Alcotest.(check int) "two messages per call" 4 messages;
  Alcotest.(check (list int)) "same state at new home" [ 8; 9 ] results

(* Unscoped migrate calls leave the thread at the home: the first
   migrates, the rest are local — and a move re-opens the distance. *)
let msite_sticky_script space obj ~scoped:_ ~unscoped results =
  let* r1 = unscoped ~a:1 ~b:0 in
  let* r2 = unscoped ~a:2 ~b:0 in
  Objspace.move space obj ~to_:2;
  let* r3 = unscoped ~a:3 ~b:0 in
  results := [ r3; r2; r1 ] @ !results;
  Thread.return ()

let test_msite_unscoped_sticky () =
  let (_, _, migrations, locals, _, ended), _ =
    check_msite_pair "sticky" ~access:Runtime.Migrate msite_sticky_script
  in
  Alcotest.(check int) "migrated to 5 then to 2" 2 migrations;
  Alcotest.(check int) "second call local" 1 locals;
  Alcotest.(check int) "thread follows the object" 2 ended

let test_msite_checked_falls_back () =
  (* With the sanitizer armed the frame fast path is off; the msite must
     route through the generic CPS composition with identical
     observables. *)
  let plain = measure_msite ~access:Runtime.Migrate ~fused:true msite_repeat_script in
  Check.set_enabled true;
  Check.reset ();
  let checked =
    Fun.protect
      ~finally:(fun () ->
        Check.set_enabled false;
        Check.reset ())
      (fun () -> measure_msite ~access:Runtime.Migrate ~fused:true msite_repeat_script)
  in
  Alcotest.check obs "checked run identical" (as_obs (fst plain)) (as_obs (fst checked));
  Alcotest.(check (list int)) "checked results identical" (snd plain) (snd checked)

let test_msite_faults_fall_back () =
  (* Arming fault injection (even all-zero probabilities) disables the
     frame engine; the msite's CPS fall-back must preserve every
     observable. *)
  let plain = measure_msite ~access:Runtime.Migrate ~fused:true msite_repeat_script in
  let armed =
    measure_msite ~access:Runtime.Migrate ~fused:true ~arm_faults:true msite_repeat_script
  in
  Alcotest.check obs "armed run identical" (as_obs (fst plain)) (as_obs (fst armed));
  Alcotest.(check (list int)) "armed results identical" (snd plain) (snd armed)

(* The whole-machine oracle: random interleavings of scoped calls,
   unscoped calls, and object moves from two requesters over a shared
   4-object space — fused method sites must leave a machine digest
   bit-identical to the generic scope/call composition. *)
let prop_msite_digest_oracle =
  QCheck.Test.make ~name:"msite digest-identical to scope(call)" ~count:40
    QCheck.(pair bool (list_of_size Gen.(1 -- 20) (pair (int_range 0 3) (int_range 0 9))))
    (fun (migrate, ops) ->
      let access = if migrate then Runtime.Migrate else Runtime.Rpc in
      let run fused =
        let m = machine () in
        let rt = Runtime.create m in
        let space = Objspace.create m in
        let objs = Array.init 4 (fun i -> Objspace.register space ~home:(2 * i) (Obj.repr (i * 10))) in
        let ms =
          Runtime.msite rt ~access ~space ~args_words:8 ~result_words:2
            ~frame_body:(ms_frame_body space) ~cps_body:(ms_cps_body space)
        in
        let op (i, x) =
          let obj = objs.(i) in
          if x >= 8 then begin
            (* Re-home between calls: both runs must re-resolve. *)
            Objspace.move space obj ~to_:((i + x) mod 8);
            Thread.return ()
          end
          else if x land 1 = 0 then
            Thread.ignore_m
              (if fused then Runtime.msite_scoped ms ~obj:(obj :> int) ~a:x ~b:i
               else
                 (* Eta-delayed so the home is read when the op runs —
                    the moment msite_enter reads it — not when the op
                    list is built. *)
                 fun c k ->
                   Runtime.scope rt ~result_words:2
                     (Runtime.call rt ~access
                        ~home:(Objspace.home space obj)
                        ~args_words:8 ~result_words:2
                        (ms_cps_body space ~obj:(obj :> int) ~a:x ~b:i))
                     c k)
          else
            Thread.ignore_m
              (if fused then Runtime.msite_call ms ~obj:(obj :> int) ~a:x ~b:i
               else
                 fun c k ->
                   Runtime.call rt ~access
                     ~home:(Objspace.home space obj)
                     ~args_words:8 ~result_words:2
                     (ms_cps_body space ~obj:(obj :> int) ~a:x ~b:i)
                     c k)
        in
        let evens = List.filteri (fun j _ -> j mod 2 = 0) ops in
        let odds = List.filteri (fun j _ -> j mod 2 = 1) ops in
        Machine.spawn m ~on:0 (Thread.iter_list op evens);
        Machine.spawn m ~on:1 (Thread.iter_list op odds);
        Machine.run m;
        Machine.digest m
      in
      String.equal (run false) (run true))

let test_scope_returns_home () =
  let m = machine () in
  let rt = Runtime.create m in
  let ended_on = ref (-1) in
  run_thread ~on:0 m
    (let* r =
       Runtime.scope rt ~result_words:2
         (let* () =
            Runtime.call rt ~access:Runtime.Migrate ~home:4 ~args_words:8 ~result_words:2
              (Thread.return ())
          in
          Thread.return 7)
     in
     Alcotest.(check int) "scope result" 7 r;
     let* p = Thread.proc in
     ended_on := Processor.id p;
     Thread.return ());
  Alcotest.(check int) "back at origin" 0 !ended_on;
  Alcotest.(check int) "migrate + return" 2 (Network.total_messages m.Machine.net);
  Alcotest.(check int) "return message kind" 1
    (Network.messages_of_kind m.Machine.net "migrate_return")

let test_scope_at_base_short_circuits () =
  let m = machine () in
  let rt = Runtime.create m in
  let ended_on = ref (-1) in
  run_thread ~on:0 m
    (let* () =
       Runtime.scope rt ~at_base:true ~result_words:2
         (Runtime.call rt ~access:Runtime.Migrate ~home:4 ~args_words:8 ~result_words:2
            (Thread.return ()))
     in
     let* p = Thread.proc in
     ended_on := Processor.id p;
     Thread.return ());
  Alcotest.(check int) "stays at destination" 4 !ended_on;
  Alcotest.(check int) "no return message" 1 (Network.total_messages m.Machine.net)

let test_scope_local_body_free () =
  let m = machine () in
  let rt = Runtime.create m in
  run_thread ~on:2 m (Thread.ignore_m (Runtime.scope rt ~result_words:2 (Thread.return 1)));
  Alcotest.(check int) "no messages for local scope" 0 (Network.total_messages m.Machine.net)

let test_rpc_handler_migrates_reply_short_circuit () =
  (* An RPC whose handler migrates: the reply must flow directly from the
     final processor to the caller (one rpc, one migrate, one reply). *)
  let m = machine () in
  let rt = Runtime.create m in
  let got = ref (-1) in
  run_thread ~on:0 m
    (let* r =
       Runtime.call rt ~access:Runtime.Rpc ~home:3 ~args_words:8 ~result_words:2
         (let* () =
            Runtime.call rt ~access:Runtime.Migrate ~home:6 ~args_words:8 ~result_words:2
              (Thread.return ())
          in
          let* p = Thread.proc in
          Thread.return (Processor.id p))
     in
     got := r;
     Thread.return ());
  Alcotest.(check int) "handler finished on 6" 6 !got;
  Alcotest.(check int) "one rpc request" 1 (Network.messages_of_kind m.Machine.net "rpc");
  Alcotest.(check int) "one migration" 1 (Network.messages_of_kind m.Machine.net "migrate");
  Alcotest.(check int) "one direct reply" 1 (Network.messages_of_kind m.Machine.net "rpc_reply");
  Alcotest.(check int) "nothing else" 3 (Network.total_messages m.Machine.net)

let test_migration_cheaper_than_rpc_roundtrip () =
  (* End-to-end latency of one remote access + one piece of user code:
     migration saves the reply leg. *)
  let one access =
    let m = machine () in
    let rt = Runtime.create m in
    let finished = ref 0 in
    run_thread ~on:0 m
      (let* () =
         Thread.ignore_m
           (Runtime.call rt ~access ~home:5 ~args_words:8 ~result_words:2 (Thread.compute 150))
       in
       finished := Machine.now m;
       Thread.return ());
    !finished
  in
  let rpc = one Runtime.Rpc and mig = one Runtime.Migrate in
  Alcotest.(check bool) (Printf.sprintf "migrate (%d) < rpc (%d)" mig rpc) true (mig < rpc)

(* ------------------------------------------------------------------ *)
(* Figure 1: message-count model                                      *)
(*                                                                    *)
(* One thread on P0 makes n consecutive accesses to each of m data     *)
(* items on processors 1..m.  The paper's model:                      *)
(*   RPC: 2nm messages    CP: m + 1    data migration: 2m             *)
(* ------------------------------------------------------------------ *)

let fig1_runtime_messages ~access ~n ~m =
  let mach = Machine.create ~seed:1 ~n_procs:(m + 1) ~costs () in
  let rt = Runtime.create mach in
  run_thread ~on:0 mach
    (Runtime.scope rt ~result_words:2
       (Thread.iter_list
          (fun item ->
            Thread.repeat n (fun _ ->
                Thread.ignore_m
                  (Runtime.call rt ~access ~home:item ~args_words:8 ~result_words:2
                     (Thread.compute 10))))
          (List.init m (fun i -> i + 1))));
  Network.total_messages mach.Machine.net

let fig1_shmem_messages ~n ~m =
  let mach = Machine.create ~seed:1 ~n_procs:(m + 1) ~costs () in
  let mem = Cm_memory.Shmem.create mach in
  let addrs = List.init m (fun i -> Cm_memory.Shmem.alloc mem ~home:(i + 1) ~words:1) in
  run_thread ~on:0 mach
    (Thread.iter_list
       (fun a ->
         Thread.repeat n (fun _ ->
             let* _ = Cm_memory.Shmem.read mem a in
             Thread.compute 10))
       addrs);
  Network.total_messages mach.Machine.net

let test_fig1_rpc_2nm () =
  List.iter
    (fun (n, m) ->
      Alcotest.(check int)
        (Printf.sprintf "RPC n=%d m=%d" n m)
        (2 * n * m)
        (fig1_runtime_messages ~access:Runtime.Rpc ~n ~m))
    [ (1, 1); (3, 4); (5, 7) ]

let test_fig1_cp_m_plus_1 () =
  List.iter
    (fun (n, m) ->
      Alcotest.(check int)
        (Printf.sprintf "CP n=%d m=%d" n m)
        (m + 1)
        (fig1_runtime_messages ~access:Runtime.Migrate ~n ~m))
    [ (1, 1); (3, 4); (5, 7) ]

let test_fig1_data_migration_2m () =
  List.iter
    (fun (n, m) ->
      Alcotest.(check int)
        (Printf.sprintf "DM n=%d m=%d" n m)
        (2 * m)
        (fig1_shmem_messages ~n ~m))
    [ (1, 1); (3, 4); (5, 7) ]


(* Closed-form message model for an arbitrary mixed sequence of calls
   within one scope: a local call is free; a remote RPC costs 2 messages
   and leaves the thread in place; a remote migration costs 1 message
   and moves the thread; a scope ending away from its origin costs one
   return message.  The simulator must match this exactly for any
   sequence. *)
let mixed_sequence_model ~origin calls =
  let messages = ref 0 in
  let loc = ref origin in
  List.iter
    (fun (home, access) ->
      if home <> !loc then
        match access with
        | Runtime.Rpc -> messages := !messages + 2
        | Runtime.Migrate ->
          incr messages;
          loc := home)
    calls;
  if !loc <> origin then incr messages;
  !messages

let prop_mixed_sequence_messages =
  QCheck.Test.make ~name:"message count of any mixed call sequence matches the model" ~count:100
    QCheck.(list_of_size Gen.(1 -- 25) (pair (int_range 0 7) bool))
    (fun spec ->
      let calls =
        List.map (fun (home, rpc) -> (home, if rpc then Runtime.Rpc else Runtime.Migrate)) spec
      in
      let m = machine () in
      let rt = Runtime.create m in
      Machine.spawn m ~on:0
        (Runtime.scope rt ~result_words:2
           (Thread.iter_list
              (fun (home, access) ->
                Thread.ignore_m
                  (Runtime.call rt ~access ~home ~args_words:8 ~result_words:2
                     (Thread.compute 5)))
              calls));
      Machine.run m;
      Network.total_messages m.Machine.net = mixed_sequence_model ~origin:0 calls)

let prop_scope_always_returns_to_origin =
  QCheck.Test.make ~name:"a scoped activation always ends at its origin" ~count:60
    QCheck.(pair (int_range 0 7) (list_of_size Gen.(1 -- 15) (pair (int_range 0 7) bool)))
    (fun (origin, spec) ->
      let m = machine () in
      let rt = Runtime.create m in
      let ended = ref (-1) in
      Machine.spawn m ~on:origin
        (let open Thread.Infix in
         let* () =
           Runtime.scope rt ~result_words:2
             (Thread.iter_list
                (fun (home, rpc) ->
                  Thread.ignore_m
                    (Runtime.call rt
                       ~access:(if rpc then Runtime.Rpc else Runtime.Migrate)
                       ~home ~args_words:8 ~result_words:2 (Thread.compute 3)))
                spec)
         in
         let* p = Thread.proc in
         ended := Processor.id p;
         Thread.return ());
      Machine.run m;
      !ended = origin)

let prop_rpc_never_moves_thread =
  QCheck.Test.make ~name:"rpc never changes the caller's processor" ~count:40
    QCheck.(list_of_size Gen.(1 -- 10) (int_range 0 7))
    (fun homes ->
      let m = machine () in
      let rt = Runtime.create m in
      let stayed = ref true in
      Machine.spawn m ~on:2
        (let open Thread.Infix in
         Thread.iter_list
           (fun home ->
             let* () =
               Thread.ignore_m
                 (Runtime.call rt ~access:Runtime.Rpc ~home ~args_words:8 ~result_words:2
                    (Thread.compute 3))
             in
             let* p = Thread.proc in
             if Processor.id p <> 2 then stayed := false;
             Thread.return ())
           homes);
      Machine.run m;
      !stayed)

let prop_fig1_cp_never_more_messages =
  QCheck.Test.make ~name:"CP messages <= RPC messages for any n,m" ~count:20
    QCheck.(pair (int_range 1 4) (int_range 1 6))
    (fun (n, m) ->
      fig1_runtime_messages ~access:Runtime.Migrate ~n ~m
      <= fig1_runtime_messages ~access:Runtime.Rpc ~n ~m)



let test_thread_migration_moves_permanently () =
  let m = machine () in
  let rt = Runtime.create m in
  let ended_on = ref (-1) in
  run_thread ~on:0 m
    (let* () = Runtime.migrate_thread rt ~dst:6 ~stack_words:128 in
     let* p = Thread.proc in
     ended_on := Processor.id p;
     Thread.return ());
  Alcotest.(check int) "thread relocated" 6 !ended_on;
  Alcotest.(check int) "counted" 1 (Runtime.thread_migrations rt);
  (* One big message: 128 payload + 2 header words. *)
  Alcotest.(check int) "stack words on the wire" 130 (Network.total_words m.Machine.net)

let test_thread_migration_local_noop () =
  let m = machine () in
  let rt = Runtime.create m in
  run_thread ~on:2 m (Runtime.migrate_thread rt ~dst:2 ~stack_words:64);
  Alcotest.(check int) "no message" 0 (Network.total_messages m.Machine.net)

let test_thread_migration_heavier_than_activation () =
  let words_of mech =
    let m = machine () in
    let rt = Runtime.create m in
    run_thread ~on:0 m
      (match mech with
      | `Thread -> Runtime.migrate_thread rt ~dst:5 ~stack_words:256
      | `Activation ->
        Thread.ignore_m
          (Runtime.call rt ~access:Runtime.Migrate ~home:5 ~args_words:8 ~result_words:2
             (Thread.return ())));
    Network.total_words m.Machine.net
  in
  Alcotest.(check bool) "whole thread much heavier" true
    (words_of `Thread > 10 * words_of `Activation)


let test_fetch_residual_round_trip () =
  let m = machine () in
  let rt = Runtime.create m in
  run_thread ~on:0 m
    (let* () =
       Runtime.call rt ~access:Runtime.Migrate ~home:4 ~args_words:4 ~result_words:2
         (Thread.return ())
     in
     Runtime.fetch_residual rt ~origin:0 ~words:16);
  Alcotest.(check int) "one fetch" 1 (Runtime.residual_fetches rt);
  (* migrate + fetch request + fetch reply *)
  Alcotest.(check int) "three messages" 3 (Network.total_messages m.Machine.net);
  (* The reply carries the 16-word residual. *)
  Alcotest.(check bool) "residual words on the wire" true
    (Network.words_of_kind m.Machine.net "rpc_reply" >= 16)

let test_fetch_residual_local_noop () =
  let m = machine () in
  let rt = Runtime.create m in
  run_thread ~on:3 m (Runtime.fetch_residual rt ~origin:3 ~words:16);
  Alcotest.(check int) "no messages" 0 (Network.total_messages m.Machine.net)

let test_partial_carry_saves_words_when_unused () =
  let words carried =
    let m = machine () in
    let rt = Runtime.create m in
    run_thread ~on:0 m
      (Runtime.scope rt ~result_words:2
         (Thread.repeat 4 (fun i ->
              Thread.ignore_m
                (Runtime.call rt ~access:Runtime.Migrate ~home:(i + 1) ~args_words:carried
                   ~result_words:2 (Thread.return ())))));
    Network.total_words m.Machine.net
  in
  Alcotest.(check bool) "carrying less is cheaper" true (words 6 < words 24)


(* ------------------------------------------------------------------ *)
(* Object migration (Emerald-style)                                   *)
(* ------------------------------------------------------------------ *)

let mk_objmig ?(n = 8) () =
  let m = machine ~n () in
  let rt = Runtime.create m in
  let space = Objspace.create m in
  let om = Objmig.create rt space ~words_of:(fun (_ : int ref) -> 20) in
  (m, rt, space, om)

let test_objmig_remote_call () =
  let m, _, space, om = mk_objmig () in
  let cell = ref 5 in
  let i = Objspace.register space ~home:4 cell in
  let got = ref 0 in
  run_thread ~on:0 m
    (let* v =
       Objmig.call om i ~args_words:4 ~result_words:2 (fun c ->
           incr c;
           Thread.return !c)
     in
     got := v;
     Thread.return ());
  Alcotest.(check int) "method ran at home" 6 !got;
  Alcotest.(check int) "two messages" 2 (Network.total_messages m.Machine.net);
  Alcotest.(check int) "no forwards" 0 (Objmig.forwards om)

let test_objmig_forwarding_then_learned () =
  let m, _, space, om = mk_objmig () in
  let i = Objspace.register space ~home:2 (ref 0) in
  (* The caller on processor 0 primes its hint... *)
  run_thread ~on:0 m
    (Thread.ignore_m (Objmig.call om i ~args_words:4 ~result_words:2 (fun _ -> Thread.return 0)));
  (* ...then a different thread (on processor 3) moves the object, so
     processor 0's hint goes stale. *)
  run_thread ~on:3 m (Objmig.migrate_object om i ~to_:6);
  let before = Network.total_messages m.Machine.net in
  run_thread ~on:0 m
    (let* _ = Objmig.call om i ~args_words:4 ~result_words:2 (fun _ -> Thread.return 0) in
     Thread.return ());
  let after_first = Network.total_messages m.Machine.net in
  Alcotest.(check int) "forwarded call: call+forward+reply" 3 (after_first - before);
  (* The reply taught processor 0 the new home: next call is direct. *)
  run_thread ~on:0 m
    (let* _ = Objmig.call om i ~args_words:4 ~result_words:2 (fun _ -> Thread.return 0) in
     Thread.return ());
  Alcotest.(check int) "direct call: 2 messages" 2
    (Network.total_messages m.Machine.net - after_first);
  Alcotest.(check int) "one forward" 1 (Objmig.forwards om);
  Alcotest.(check int) "object moved once" 1 (Objmig.object_moves om);
  Alcotest.(check int) "home updated" 6 (Objspace.home space i)

let test_objmig_pull_then_local () =
  let m, _, space, om = mk_objmig () in
  let i = Objspace.register space ~home:5 (ref 0) in
  run_thread ~on:1 m
    (let* () =
       Thread.repeat 4 (fun _ ->
           Thread.ignore_m (Objmig.call_pull om i ~result_words:2 (fun c ->
               incr c;
               Thread.return !c)))
     in
     Thread.return ());
  Alcotest.(check int) "one move only" 1 (Objmig.object_moves om);
  Alcotest.(check int) "object now local to caller" 1 (Objspace.home space i);
  (* Pull = request + transfer; everything after is local. *)
  Alcotest.(check int) "two messages total" 2 (Network.total_messages m.Machine.net)

let test_objmig_writeshared_pingpong_vs_cp () =
  (* The paper's S2.2 claim: for write-shared data, moving the object is
     much worse than moving the computation. *)
  let rounds = 10 in
  let pingpong_words =
    let m, _, space, om = mk_objmig () in
    let i = Objspace.register space ~home:0 (ref 0) in
    let turn = ref 0 in
    for th = 0 to 1 do
      Machine.spawn m ~on:(th + 1)
        (Thread.repeat rounds (fun _ ->
             (* Alternate strictly so the object really ping-pongs. *)
             let* () = Thread.while_ (fun () -> !turn mod 2 <> th) (Thread.sleep 50) in
             let* () =
               Thread.ignore_m
                 (Objmig.call_pull om i ~result_words:2 (fun c ->
                      incr c;
                      Thread.return ()))
             in
             incr turn;
             Thread.return ()))
    done;
    Machine.run m;
    Network.total_words m.Machine.net
  in
  let cp_words =
    let m = machine () in
    let rt = Runtime.create m in
    let cell = ref 0 in
    let turn = ref 0 in
    for th = 0 to 1 do
      Machine.spawn m ~on:(th + 1)
        (Thread.repeat rounds (fun _ ->
             let* () = Thread.while_ (fun () -> !turn mod 2 <> th) (Thread.sleep 50) in
             let* () =
               Runtime.scope rt ~result_words:2
                 (Runtime.call rt ~access:Runtime.Migrate ~home:0 ~args_words:8 ~result_words:2
                    (Thread.return (incr cell)))
             in
             incr turn;
             Thread.return ()))
    done;
    Machine.run m;
    Network.total_words m.Machine.net
  in
  Alcotest.(check bool)
    (Printf.sprintf "object ping-pong (%d words) much heavier than CP (%d words)" pingpong_words
       cp_words)
    true
    (pingpong_words > cp_words)


let prop_objmig_random_moves_and_calls =
  (* Random interleavings of moves and calls from one driver thread:
     every call must observe the object's full history (the state is a
     counter), wherever the object currently lives, and the final home
     must match the last move. *)
  QCheck.Test.make ~name:"mobile object correct under random move/call sequences" ~count:40
    QCheck.(list_of_size Gen.(1 -- 30) (pair (int_range 0 7) bool))
    (fun ops ->
      let m = machine () in
      let rt = Runtime.create m in
      let space = Objspace.create m in
      let om = Objmig.create rt space ~words_of:(fun _ -> 16) in
      let i = Objspace.register space ~home:3 (ref 0) in
      let calls = List.length (List.filter (fun (_, is_call) -> is_call) ops) in
      let seen = ref [] in
      Machine.spawn m ~on:0
        (Thread.iter_list
           (fun (target, is_call) ->
             if is_call then
               let open Thread.Infix in
               let* v =
                 Objmig.call om i ~args_words:4 ~result_words:2 (fun c ->
                     incr c;
                     Thread.return !c)
               in
               seen := v :: !seen;
               Thread.return ()
             else Objmig.migrate_object om i ~to_:target)
           ops);
      Machine.run m;
      let expected_home =
        List.fold_left (fun h (tgt, is_call) -> if is_call then h else tgt) 3 ops
      in
      List.rev !seen = List.init calls (fun k -> k + 1)
      && Objspace.home space i = expected_home)

(* ------------------------------------------------------------------ *)
(* Adaptive mechanism selection                                       *)
(* ------------------------------------------------------------------ *)

(* A chain workload: each activation hops across [m] objects (one call
   each).  Every site is followed by more calls, so the policy should
   settle on migration. *)
let run_adaptive_chain ~rounds ~m =
  let mach = Machine.create ~seed:2 ~n_procs:(m + 1) ~costs:costs () in
  let rt = Runtime.create mach in
  let ad = Adaptive.create rt ~explore:4 () in
  let sites = Array.init m (fun i -> Adaptive.site ad ~name:(Printf.sprintf "hop%d" i)) in
  run_thread ~on:0 mach
    (Thread.repeat rounds (fun _ ->
         Adaptive.scope ad
           (Thread.iter_list
              (fun i ->
                Thread.ignore_m
                  (Adaptive.call ad ~site:sites.(i) ~home:(i + 1) ~args_words:8 ~result_words:2
                     (Thread.compute 20)))
              (List.init m (fun i -> i)))));
  (ad, sites, Network.total_messages mach.Machine.net)

let test_adaptive_learns_to_migrate () =
  let ad, sites, _ = run_adaptive_chain ~rounds:30 ~m:6 in
  (* All sites except the last are followed by further calls. *)
  for i = 0 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "site %d estimate >= 1" i)
      true
      (Adaptive.site_estimate ad sites.(i) >= 1.)
  done;
  Alcotest.(check bool) "last site estimate < 1" true (Adaptive.site_estimate ad sites.(5) < 1.);
  Alcotest.(check bool) "mostly migrations" true
    (Adaptive.chosen_migrations ad > 3 * Adaptive.chosen_rpcs ad)

let test_adaptive_isolated_uses_rpc () =
  (* One isolated access per activation: RPC is the right choice. *)
  let mach = Machine.create ~seed:2 ~n_procs:4 ~costs:costs () in
  let rt = Runtime.create mach in
  let ad = Adaptive.create rt ~explore:4 () in
  let s = Adaptive.site ad ~name:"isolated" in
  run_thread ~on:0 mach
    (Thread.repeat 30 (fun _ ->
         Adaptive.scope ad
           (Thread.ignore_m
              (Adaptive.call ad ~site:s ~home:2 ~args_words:8 ~result_words:2
                 (Thread.compute 20)))));
  Alcotest.(check bool) "estimate ~0" true (Adaptive.site_estimate ad s < 0.5);
  Alcotest.(check bool) "rpc dominates after exploration" true
    (Adaptive.chosen_rpcs ad > Adaptive.chosen_migrations ad)

let test_adaptive_message_count_near_static_best () =
  let m = 6 and rounds = 40 in
  let _, _, adaptive_msgs = run_adaptive_chain ~rounds ~m in
  let static access =
    let mach = Machine.create ~seed:2 ~n_procs:(m + 1) ~costs:costs () in
    let rt = Runtime.create mach in
    run_thread ~on:0 mach
      (Thread.repeat rounds (fun _ ->
           Runtime.scope rt ~result_words:2
             (Thread.iter_list
                (fun i ->
                  Thread.ignore_m
                    (Runtime.call rt ~access ~home:(i + 1) ~args_words:8 ~result_words:2
                       (Thread.compute 20)))
                (List.init m (fun i -> i)))));
    Network.total_messages mach.Machine.net
  in
  let best = static Runtime.Migrate and worst = static Runtime.Rpc in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive (%d) within 30%% of best static (%d), far from worst (%d)"
       adaptive_msgs best worst)
    true
    (float_of_int adaptive_msgs < 1.3 *. float_of_int best);
  Alcotest.(check bool) "clearly better than static rpc" true
    (float_of_int adaptive_msgs < 0.8 *. float_of_int worst)

let test_adaptive_outside_scope_rejected () =
  let mach = Machine.create ~seed:2 ~n_procs:4 ~costs:costs () in
  let rt = Runtime.create mach in
  let ad = Adaptive.create rt () in
  let s = Adaptive.site ad ~name:"x" in
  let raised = ref false in
  Machine.spawn mach ~on:0
    (fun ctx k ->
      try Adaptive.call ad ~site:s ~home:1 ~args_words:8 ~result_words:2 (Thread.return ()) ctx k
      with Invalid_argument _ ->
        raised := true;
        k ());
  Machine.run mach;
  Alcotest.(check bool) "rejected outside scope" true !raised

let test_adaptive_sites_independent () =
  (* One chained site and one isolated site in the same program must
     learn different mechanisms. *)
  let mach = Machine.create ~seed:2 ~n_procs:6 ~costs:costs () in
  let rt = Runtime.create mach in
  let ad = Adaptive.create rt ~explore:4 () in
  let chained = Adaptive.site ad ~name:"chained" in
  let lonely = Adaptive.site ad ~name:"lonely" in
  run_thread ~on:0 mach
    (Thread.repeat 30 (fun round ->
         Adaptive.scope ad
           (if round mod 2 = 0 then
              (* chained: three hops *)
              Thread.iter_list
                (fun h ->
                  Thread.ignore_m
                    (Adaptive.call ad ~site:chained ~home:h ~args_words:8 ~result_words:2
                       (Thread.compute 10)))
                [ 1; 2; 3 ]
            else
              Thread.ignore_m
                (Adaptive.call ad ~site:lonely ~home:4 ~args_words:8 ~result_words:2
                   (Thread.compute 10)))));
  Alcotest.(check bool) "chained migrates" true (Adaptive.site_estimate ad chained >= 1.);
  Alcotest.(check bool) "lonely stays rpc" true (Adaptive.site_estimate ad lonely < 1.)

(* ------------------------------------------------------------------ *)
(* Replicate                                                          *)
(* ------------------------------------------------------------------ *)

let words_of_int _ = 6

let test_replicate_read_at_home_free () =
  let m = machine () in
  let rt = Runtime.create m in
  let r = Replicate.create rt ~home:2 ~words_of:words_of_int 10 in
  let got = ref 0 in
  run_thread ~on:2 m
    (let* v = Replicate.read r in
     got := v;
     Thread.return ());
  Alcotest.(check int) "value" 10 !got;
  Alcotest.(check int) "no traffic" 0 (Network.total_messages m.Machine.net)

let test_replicate_fetch_once_then_local () =
  let m = machine () in
  let rt = Runtime.create m in
  let r = Replicate.create rt ~home:2 ~words_of:words_of_int 10 in
  run_thread ~on:0 m
    (Thread.repeat 5 (fun _ -> Thread.ignore_m (Replicate.read r)));
  (* One fetch RPC (2 messages); four local reads. *)
  Alcotest.(check int) "two messages" 2 (Network.total_messages m.Machine.net);
  Alcotest.(check int) "one replica" 1 (Replicate.replicas r);
  Alcotest.(check int) "local reads" 4 (Stats.get m.Machine.stats "repl.local_reads")

let test_replicate_update_pushes () =
  let m = machine () in
  let rt = Runtime.create m in
  let r = Replicate.create rt ~home:2 ~words_of:words_of_int 10 in
  (* Two readers install replicas. *)
  Machine.spawn m ~on:0 (Thread.ignore_m (Replicate.read r));
  Machine.spawn m ~on:1 (Thread.ignore_m (Replicate.read r));
  Machine.run m;
  let before = Network.messages_of_kind m.Machine.net "repl_update" in
  (* Update at the home; both replicas must receive the new value. *)
  Machine.spawn m ~on:2 (Replicate.update r ~access:Runtime.Rpc 20);
  Machine.run m;
  Alcotest.(check int) "two pushes" 2 (Network.messages_of_kind m.Machine.net "repl_update" - before);
  Alcotest.(check int) "version bumped" 1 (Replicate.version r);
  Alcotest.(check int) "master updated" 20 (Replicate.peek r);
  (* Readers now see the new value with no further traffic. *)
  let total = Network.total_messages m.Machine.net in
  let got = ref 0 in
  run_thread ~on:0 m
    (let* v = Replicate.read r in
     got := v;
     Thread.return ());
  Alcotest.(check int) "fresh value" 20 !got;
  Alcotest.(check int) "no new traffic" total (Network.total_messages m.Machine.net)

let test_replicate_update_from_remote_migrate () =
  let m = machine () in
  let rt = Runtime.create m in
  let r = Replicate.create rt ~home:2 ~words_of:words_of_int 1 in
  let ended_on = ref (-1) in
  run_thread ~on:0 m
    (let* () = Replicate.update r ~access:Runtime.Migrate 5 in
     let* p = Thread.proc in
     ended_on := Processor.id p;
     Thread.return ());
  Alcotest.(check int) "thread stays at home after migrate-update" 2 !ended_on;
  Alcotest.(check int) "new master" 5 (Replicate.peek r)

(* ------------------------------------------------------------------ *)
(* Prelude facade                                                     *)
(* ------------------------------------------------------------------ *)

let test_prelude_invoke_mutates_at_home () =
  let m = machine () in
  let p = Prelude.create m in
  let counter = Prelude.make_obj p ~home:4 (ref 0) in
  run_thread ~on:0 m
    (Thread.repeat 3 (fun _ ->
         Prelude.invoke p ~access:Prelude.Rpc counter (fun cell ->
             incr cell;
             Thread.return ())));
  Alcotest.(check int) "state mutated" 3 !(Prelude.obj_state p counter)

let test_prelude_annotation_preserves_semantics () =
  (* The same program must compute the same answer under both
     annotations — only performance may differ (paper S3.1). *)
  let result access =
    let m = machine () in
    let p = Prelude.create m in
    let cells = List.init 4 (fun i -> Prelude.make_obj p ~home:(i + 1) (ref ((i + 1) * 7))) in
    let acc = ref 0 in
    run_thread ~on:0 m
      (Prelude.proc p
         (Thread.iter_list
            (fun cell ->
              let* v = Prelude.invoke p ~access cell (fun r -> Thread.return !r) in
              acc := !acc + v;
              Thread.return ())
            cells));
    !acc
  in
  Alcotest.(check int) "same result" (result Prelude.Rpc) (result Prelude.Migrate)

let test_prelude_migrate_fewer_words () =
  let traffic access =
    let m = machine () in
    let p = Prelude.create m in
    let cells = List.init 6 (fun i -> Prelude.make_obj p ~home:(i + 1) i) in
    run_thread ~on:0 m
      (Prelude.proc p
         (Thread.iter_list
            (fun cell ->
              Thread.ignore_m (Prelude.invoke p ~access cell (fun _ -> Thread.return ())))
            cells));
    Network.total_words m.Machine.net
  in
  Alcotest.(check bool) "migrate uses less bandwidth" true
    (traffic Prelude.Migrate < traffic Prelude.Rpc)

let test_prelude_bad_home () =
  let m = machine () in
  let p = Prelude.create m in
  Alcotest.check_raises "bad home" (Invalid_argument "Prelude.make_obj: bad home processor")
    (fun () -> ignore (Prelude.make_obj p ~home:123 ()))

(* ------------------------------------------------------------------ *)

let qsuite props = List.map QCheck_alcotest.to_alcotest props

let () =
  Alcotest.run "cm_runtime"
    [
      ( "objspace",
        [
          Alcotest.test_case "register" `Quick test_objspace_register;
          Alcotest.test_case "bad home" `Quick test_objspace_bad_home;
          Alcotest.test_case "unknown" `Quick test_objspace_unknown;
          Alcotest.test_case "iter" `Quick test_objspace_iter;
          Alcotest.test_case "growth" `Quick test_objspace_growth;
        ] );
      ( "call",
        [
          Alcotest.test_case "local no messages" `Quick test_call_local_no_messages;
          Alcotest.test_case "rpc two messages" `Quick test_call_rpc_two_messages;
          Alcotest.test_case "rpc uses server cpu" `Quick test_call_rpc_uses_server_cpu;
          Alcotest.test_case "migrate one message" `Quick test_call_migrate_one_message_and_moves;
          Alcotest.test_case "migrate then local" `Quick test_call_migrate_subsequent_local;
          Alcotest.test_case "site matches call (migrate)" `Quick
            test_site_call_matches_call_migrate;
          Alcotest.test_case "site matches call (rpc)" `Quick test_site_call_matches_call_rpc;
          Alcotest.test_case "site checked fallback" `Quick test_site_call_checked_falls_back;
          Alcotest.test_case "msite matches scope(call) (migrate)" `Quick
            test_msite_matches_scope_call_migrate;
          Alcotest.test_case "msite matches scope(call) (rpc)" `Quick
            test_msite_matches_scope_call_rpc;
          Alcotest.test_case "msite rebinds on move" `Quick test_msite_rebinds_on_move;
          Alcotest.test_case "msite unscoped sticky" `Quick test_msite_unscoped_sticky;
          Alcotest.test_case "msite checked fallback" `Quick test_msite_checked_falls_back;
          Alcotest.test_case "msite faults fallback" `Quick test_msite_faults_fall_back;
          Alcotest.test_case "scope returns home" `Quick test_scope_returns_home;
          Alcotest.test_case "scope at base" `Quick test_scope_at_base_short_circuits;
          Alcotest.test_case "scope local free" `Quick test_scope_local_body_free;
          Alcotest.test_case "rpc handler migrates" `Quick test_rpc_handler_migrates_reply_short_circuit;
          Alcotest.test_case "migration cheaper" `Quick test_migration_cheaper_than_rpc_roundtrip;
          Alcotest.test_case "thread migration moves" `Quick test_thread_migration_moves_permanently;
          Alcotest.test_case "thread migration local noop" `Quick test_thread_migration_local_noop;
          Alcotest.test_case "thread migration heavier" `Quick
            test_thread_migration_heavier_than_activation;
          Alcotest.test_case "residual fetch" `Quick test_fetch_residual_round_trip;
          Alcotest.test_case "residual local noop" `Quick test_fetch_residual_local_noop;
          Alcotest.test_case "partial carry cheaper" `Quick
            test_partial_carry_saves_words_when_unused;
        ] );
      ( "fig1-model",
        [
          Alcotest.test_case "rpc 2nm" `Quick test_fig1_rpc_2nm;
          Alcotest.test_case "cp m+1" `Quick test_fig1_cp_m_plus_1;
          Alcotest.test_case "data migration 2m" `Quick test_fig1_data_migration_2m;
        ]
        @ qsuite
            [
              prop_fig1_cp_never_more_messages;
              prop_mixed_sequence_messages;
              prop_scope_always_returns_to_origin;
              prop_rpc_never_moves_thread;
              prop_msite_digest_oracle;
            ] );
      ( "objmig",
        [
          Alcotest.test_case "remote call" `Quick test_objmig_remote_call;
          Alcotest.test_case "forwarding then learned" `Quick test_objmig_forwarding_then_learned;
          Alcotest.test_case "pull then local" `Quick test_objmig_pull_then_local;
          Alcotest.test_case "write-shared pingpong" `Quick
            test_objmig_writeshared_pingpong_vs_cp;
        ]
        @ qsuite [ prop_objmig_random_moves_and_calls ] );
      ( "adaptive",
        [
          Alcotest.test_case "learns to migrate" `Quick test_adaptive_learns_to_migrate;
          Alcotest.test_case "isolated uses rpc" `Quick test_adaptive_isolated_uses_rpc;
          Alcotest.test_case "near static best" `Quick test_adaptive_message_count_near_static_best;
          Alcotest.test_case "outside scope rejected" `Quick test_adaptive_outside_scope_rejected;
          Alcotest.test_case "sites independent" `Quick test_adaptive_sites_independent;
        ] );
      ( "replicate",
        [
          Alcotest.test_case "read at home free" `Quick test_replicate_read_at_home_free;
          Alcotest.test_case "fetch once then local" `Quick test_replicate_fetch_once_then_local;
          Alcotest.test_case "update pushes" `Quick test_replicate_update_pushes;
          Alcotest.test_case "update via migrate" `Quick test_replicate_update_from_remote_migrate;
        ] );
      ( "prelude",
        [
          Alcotest.test_case "invoke mutates at home" `Quick test_prelude_invoke_mutates_at_home;
          Alcotest.test_case "annotation preserves semantics" `Quick
            test_prelude_annotation_preserves_semantics;
          Alcotest.test_case "migrate fewer words" `Quick test_prelude_migrate_fewer_words;
          Alcotest.test_case "bad home" `Quick test_prelude_bad_home;
          Alcotest.test_case "proc at base" `Quick test_prelude_proc_at_base;
          Alcotest.test_case "defaults" `Quick test_prelude_defaults;
          Alcotest.test_case "obj home" `Quick test_prelude_obj_home;
        ] );
    ]
