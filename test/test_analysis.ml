(* Typed-analyzer tests (lib/analysis), driven over the compiled
   negative fixtures in test/typed_fixtures: seeded shard-escape
   violations, call-chain witnesses, module-alias evasion, the
   suppression machinery (on-line / line-above / attribute /
   allow-file / misuse audit), the hot-alloc pass under a custom
   hot-set, stable output order, lint.json shape, and baseline
   absorption. *)

open Cm_analysis

let fixture_dir = "test/typed_fixtures"

(* dune runs tests in _build/default/test; the fixture library's .cmt
   files and copied sources live one level up.  Settle on the build
   root so the compiler-reported paths ("test/typed_fixtures/...")
   resolve directly. *)
let () =
  let rec go n =
    if Sys.file_exists (Filename.concat fixture_dir "fixture_store.ml") then ()
    else if n = 0 then failwith "cannot locate test/typed_fixtures from the test cwd"
    else begin
      Sys.chdir "..";
      go (n - 1)
    end
  in
  go 4

(* The fixture modules are not in the real hot set; the pass is
   exercised with a hot-set naming the spin_* functions (and
   deliberately not cold_pair). *)
let hot_spec =
  [
    {
      Hot_alloc.s_unit = "Lint_fixtures.Fixture_hot";
      s_names =
        [ "spin_closure"; "spin_pair"; "spin_floats"; "spin_partial"; "spin_take";
          "spin_drive"; "spin_fn_read" ];
    };
  ]

let config = { (Driver.default_config [ fixture_dir ]) with Driver.hot = hot_spec }
let outcome = lazy (Driver.run config)
let syntactic_only = lazy (Driver.run { config with Driver.typed = false })
let findings () = (Lazy.force outcome).Driver.findings

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let find_all ?file ?rule ?detail ?msg ?context fs =
  List.filter
    (fun (f : Finding.t) ->
      (match file with Some b -> Filename.basename f.Finding.file = b | None -> true)
      && (match rule with Some r -> f.Finding.rule = r | None -> true)
      && (match detail with Some d -> f.Finding.detail = d | None -> true)
      && (match msg with Some m -> contains f.Finding.msg m | None -> true)
      && match context with Some c -> contains f.Finding.context c | None -> true)
    fs

let check_found name ?file ?rule ?detail ?msg ?context fs =
  Alcotest.(check bool) name true (find_all ?file ?rule ?detail ?msg ?context fs <> [])

let check_absent name ?file ?rule ?detail ?msg ?context fs =
  Alcotest.(check bool) name false (find_all ?file ?rule ?detail ?msg ?context fs <> [])

(* ------------------------------------------------------------------ *)
(* Seeded module-init-time roots                                      *)
(* ------------------------------------------------------------------ *)

let test_seeded_roots () =
  let fs = findings () in
  List.iter
    (fun (ctx, what) ->
      check_found
        (Printf.sprintf "%s reported escaping" ctx)
        ~file:"fixture_store.ml" ~rule:"domain-safety" ~detail:"escaping" ~context:ctx
        ~msg:what fs)
    [
      ("Fixture_store.hits", "module-init-time ref");
      ("Fixture_store.table", "module-init-time Hashtbl.create");
      ("Fixture_store.memo_lookup", "module-init-time Hashtbl.create");
      ("Fixture_store.weights", "module-init-time array literal");
    ];
  (* safe negatives: atomic / DLS / mutex / guarded record *)
  List.iter
    (fun ctx ->
      check_absent
        (Printf.sprintf "%s not reported" ctx)
        ~rule:"domain-safety" ~context:ctx fs)
    [
      "Fixture_store.seq"; "Fixture_store.scratch_key"; "Fixture_store.lock";
      "Fixture_store.shared_counter";
    ]

let test_ownership_classes () =
  let classified = (Lazy.force outcome).Driver.classified in
  List.iter
    (fun (canon, cls) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s classified %s" canon cls)
        true
        (List.mem ("Lint_fixtures.Fixture_store." ^ canon, cls) classified))
    [
      ("hits", "escaping"); ("seq", "atomic"); ("scratch_key", "dls"); ("lock", "sync");
      ("shared_counter", "mutex-guarded");
    ]

(* ------------------------------------------------------------------ *)
(* Cross-module escape with call-chain witnesses                      *)
(* ------------------------------------------------------------------ *)

let test_getter_witness () =
  let fs = findings () in
  (match
     find_all ~file:"fixture_getter.ml" ~rule:"domain-safety" ~detail:"escaping-getter"
       ~context:"Fixture_getter.lookup" fs
   with
  | [ f ] ->
    Alcotest.(check (list string))
      "lookup witness chain"
      [
        "Lint_fixtures.Fixture_getter.lookup"; "Lint_fixtures.Fixture_getter.raw_table";
        "Lint_fixtures.Fixture_store.table";
      ]
      f.Finding.witness
  | fs' -> Alcotest.failf "expected exactly one lookup escaping-getter, got %d" (List.length fs'));
  check_found "raw_table escaping-getter" ~file:"fixture_getter.ml" ~rule:"domain-safety"
    ~detail:"escaping-getter" ~context:"Fixture_getter.raw_table" fs;
  (* the owner's own API over its state is encapsulation, not escape *)
  check_absent "owner API not an escape" ~rule:"domain-safety" ~context:"Fixture_store.find_name"
    fs;
  check_absent "owner mutator not an escape" ~rule:"domain-safety" ~context:"Fixture_store.bump"
    fs

let test_payload () =
  let fs = findings () in
  match
    find_all ~file:"fixture_evade.ml" ~rule:"domain-safety" ~detail:"escaping-payload" fs
  with
  | [ f ] ->
    Alcotest.(check bool) "names the mutable field" true (contains f.Finding.msg "mutable field req.seen");
    Alcotest.(check bool)
      "witness names the send head" true
      (List.mem "Cm_machine.Transport.post" f.Finding.witness)
  | fs' -> Alcotest.failf "expected exactly one escaping-payload, got %d" (List.length fs')

(* ------------------------------------------------------------------ *)
(* Module-alias evasion: typed catches what syntactic cannot          *)
(* ------------------------------------------------------------------ *)

let test_alias_evasion () =
  check_found "typed pass sees through the alias" ~file:"fixture_evade.ml" ~rule:"raw-send"
    ~msg:"Cm_machine.Network.send" (findings ());
  let syn = Lazy.force syntactic_only in
  Alcotest.(check int)
    "syntactic pass scanned the fixtures" 6 syn.Driver.files_scanned;
  check_absent "syntactic pass is blind to N.send" ~rule:"raw-send" syn.Driver.findings

(* ------------------------------------------------------------------ *)
(* Suppression machinery                                              *)
(* ------------------------------------------------------------------ *)

let test_suppressions () =
  let fs = findings () in
  check_absent "on-line comment suppresses" ~rule:"domain-safety" ~context:"on_line" fs;
  check_absent "line-above comment suppresses" ~rule:"domain-safety" ~context:"line_above" fs;
  check_absent "[@cm.shard_safe] vets" ~rule:"domain-safety" ~context:"attr_vetted" fs;
  check_absent "allow-file suppresses the whole file" ~file:"fixture_allowfile.ml"
    ~rule:"domain-safety" fs;
  (* allow-file names only domain-safety: other rules still fire there *)
  check_found "allow-file is per-rule" ~file:"fixture_allowfile.ml" ~rule:"global-state" fs

let test_suppression_audit () =
  let fs = findings () in
  check_found "unknown rule is a finding, not a no-op" ~file:"fixture_suppress.ml"
    ~rule:"bad-suppress" ~detail:"unknown-rule" ~msg:"no-such-rule" fs;
  check_found "justified rule without justification is a finding" ~file:"fixture_suppress.ml"
    ~rule:"bad-suppress" ~detail:"missing-justification" fs;
  check_found "an unjustified allow does not suppress" ~file:"fixture_suppress.ml"
    ~rule:"domain-safety" ~detail:"escaping" ~context:"no_why" fs

(* ------------------------------------------------------------------ *)
(* Hot-path allocation pass                                           *)
(* ------------------------------------------------------------------ *)

let test_hot_alloc () =
  let fs = findings () in
  check_found "closure in hot path" ~file:"fixture_hot.ml" ~rule:"hot-alloc" ~detail:"closure"
    ~context:"spin_closure" fs;
  check_found "tuple in hot path" ~file:"fixture_hot.ml" ~rule:"hot-alloc" ~detail:"tuple"
    ~context:"spin_pair" fs;
  check_found "boxed float in hot path" ~file:"fixture_hot.ml" ~rule:"hot-alloc"
    ~detail:"boxed-float" ~context:"spin_floats" fs;
  check_found "partial application in hot path" ~file:"fixture_hot.ml" ~rule:"hot-alloc"
    ~detail:"partial-apply" ~context:"spin_partial" fs;
  check_absent "identical allocation outside the hot set" ~rule:"hot-alloc" ~context:"cold_pair"
    fs;
  (* runtime-arity, not type-arity: reading a stored closure out (and
     fully applying what a 1-ary callee returns) is not a partial
     application even though the callee's result type ends in arrows *)
  check_absent "closure read from a record slot" ~rule:"hot-alloc" ~detail:"partial-apply"
    ~context:"spin_take" fs;
  check_absent "full application through a 1-ary reader" ~rule:"hot-alloc"
    ~detail:"partial-apply" ~context:"spin_drive" fs;
  check_absent "closure indexed out of an array" ~rule:"hot-alloc" ~detail:"partial-apply"
    ~context:"spin_fn_read" fs

(* ------------------------------------------------------------------ *)
(* Output order, JSON, baseline                                       *)
(* ------------------------------------------------------------------ *)

let test_sorted () =
  let fs = findings () in
  Alcotest.(check bool) "some findings" true (fs <> []);
  let rec ordered = function
    | a :: (b :: _ as rest) -> Finding.compare a b < 0 && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly sorted by (file, line, rule, msg)" true (ordered fs)

let test_json () =
  let js = Finding.list_to_json (findings ()) in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Printf.sprintf "json contains %s" frag) true (contains js frag))
    [
      "\"rule\":\"domain-safety\"";
      "\"class\":\"escaping-getter\"";
      "\"class\":\"escaping-payload\"";
      "\"witness\":[\"Lint_fixtures.Fixture_getter.lookup\",\"Lint_fixtures.Fixture_getter.raw_table\",\"Lint_fixtures.Fixture_store.table\"]";
      "\"rule\":\"hot-alloc\"";
    ]

let baseline_entries fs =
  Baseline.render fs |> String.split_on_char '\n' |> List.filter_map Baseline.parse_line

let test_baseline () =
  let fs = findings () in
  let entries = baseline_entries fs in
  (* a full baseline absorbs everything and nothing is stale *)
  let v = Baseline.check ~baseline:entries fs in
  Alcotest.(check int) "full baseline: no fresh findings" 0 (List.length v.Baseline.fresh);
  Alcotest.(check int) "full baseline: nothing stale" 0 (List.length v.Baseline.stale);
  (* an empty baseline leaves every finding fresh *)
  let v0 = Baseline.check ~baseline:[] fs in
  Alcotest.(check int) "empty baseline: all fresh" (List.length fs) (List.length v0.Baseline.fresh);
  (* dropping one key re-exposes exactly its findings *)
  (match entries with
  | (k0, n0) :: rest ->
    let v1 = Baseline.check ~baseline:rest fs in
    Alcotest.(check int) "dropped key count is fresh" n0 (List.length v1.Baseline.fresh);
    List.iter
      (fun (f : Finding.t) ->
        Alcotest.(check string) "fresh findings carry the dropped key" k0 (Finding.baseline_key f))
      v1.Baseline.fresh
  | [] -> Alcotest.fail "baseline render produced no entries");
  (* a key with no current findings is reported stale *)
  let bogus = ("hot-alloc|nowhere.ml|X.gone|closure", 2) in
  let v2 = Baseline.check ~baseline:(bogus :: entries) fs in
  Alcotest.(check bool)
    "bogus key reported stale" true
    (List.mem ("hot-alloc|nowhere.ml|X.gone|closure", 2, 0) v2.Baseline.stale);
  (* multiplicities survive the render/parse roundtrip *)
  Alcotest.(check bool)
    "render emits xN multiplicities" true
    (List.exists (fun (_, n) -> n > 1) entries)

let () =
  Alcotest.run "analysis"
    [
      ( "domain-safety",
        [
          Alcotest.test_case "seeded roots" `Quick test_seeded_roots;
          Alcotest.test_case "ownership classes" `Quick test_ownership_classes;
          Alcotest.test_case "getter witness chains" `Quick test_getter_witness;
          Alcotest.test_case "mutable payload" `Quick test_payload;
        ] );
      ( "typed-vs-syntactic",
        [ Alcotest.test_case "module-alias evasion" `Quick test_alias_evasion ] );
      ( "suppressions",
        [
          Alcotest.test_case "escape hatches" `Quick test_suppressions;
          Alcotest.test_case "misuse audit" `Quick test_suppression_audit;
        ] );
      ("hot-alloc", [ Alcotest.test_case "custom hot-set" `Quick test_hot_alloc ]);
      ( "output",
        [
          Alcotest.test_case "stable sort" `Quick test_sorted;
          Alcotest.test_case "lint.json shape" `Quick test_json;
          Alcotest.test_case "baseline absorption" `Quick test_baseline;
        ] );
    ]
