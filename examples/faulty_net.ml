(* Fault injection on the message transport.

   Every remote message in the simulator flows through
   Cm_machine.Transport (typed per-processor endpoints).  Besides the
   uniform send/receive pipelines, the transport can inject faults —
   drop, duplicate, or delay messages with per-kind probabilities —
   drawn from its own seeded generator, so a faulty run is exactly as
   reproducible as a clean one.

   This program posts a stream of "ping" messages across an 8-processor
   machine three times: clean, and twice under the same fault seed
   (same seed => identical fault decisions).  It then shows the
   delivery sanitizer catching a genuinely lost message: every
   non-dropped post must be delivered by the end of the run, and
   [Transport.check_all_delivered] raises when one is still in flight.

   Run with:  dune exec examples/faulty_net.exe
*)

open Cm_engine
open Cm_machine
open Thread.Infix

let n_msgs = 200

let flaky =
  { Transport.drop = 0.15; duplicate = 0.05; delay = 0.2; delay_cycles = 400 }

let run ~fault_seed () =
  let machine = Machine.create ~seed:42 ~n_procs:8 ~costs:Costs.software () in
  let tp = Machine.transport machine in
  let ping = Transport.kind tp "ping" in
  let handled = ref 0 in
  Transport.Endpoint.register_all tp ~kind:ping (fun () ->
      incr handled;
      Thread.compute 20);
  (match fault_seed with
  | Some seed -> Transport.configure_faults tp ~seed [ ("ping", flaky) ]
  | None -> ());
  Machine.spawn machine ~on:0
    (Thread.repeat n_msgs (fun i ->
         let* () = Transport.post tp ping ~dst:(1 + (i mod 7)) ~words:8 () in
         Thread.sleep 50));
  Machine.run machine;
  (* The delivery sanitizer: posted = delivered + dropped (duplicates
     accounted), or this raises Check.Violation.  Passing here even
     under faults is the point — drops are *recorded* losses. *)
  Transport.check_all_delivered tp;
  Printf.printf "  posted=%-4d delivered=%-4d dropped=%-3d handler ran %d times\n"
    (Transport.posted tp "ping") (Transport.delivered tp "ping") (Transport.dropped tp "ping")
    !handled;
  Printf.printf "  per endpoint:";
  for p = 0 to 7 do
    Printf.printf " %d" (Transport.Endpoint.delivered ~kind:ping ~proc:p)
  done;
  print_newline ()

(* A message that never arrives: post it, then stop the clock before
   its wire latency elapses.  The sanitizer names the lost kind. *)
let lost_message () =
  let machine = Machine.create ~seed:42 ~n_procs:8 ~costs:Costs.software () in
  let tp = Machine.transport machine in
  let ping = Transport.kind tp "ping" in
  Transport.Endpoint.register_all tp ~kind:ping (fun () -> Thread.return ());
  Transport.signal tp ping ~src:0 ~dst:5 ~words:16 (fun () -> ());
  Machine.run ~until:1 machine;
  match Transport.check_all_delivered tp with
  | () -> print_endline "  (unexpectedly clean)"
  | exception Check.Violation msg -> Printf.printf "  sanitizer fired: %s\n" msg

let () =
  Printf.printf "Posting %d messages, no faults:\n" n_msgs;
  run ~fault_seed:None ();
  Printf.printf "\nSame workload, faults armed (drop %.0f%%, duplicate %.0f%%, delay %.0f%%):\n"
    (100. *. flaky.drop) (100. *. flaky.duplicate) (100. *. flaky.delay);
  run ~fault_seed:(Some 7) ();
  Printf.printf "\nSame fault seed again - identical decisions:\n";
  run ~fault_seed:(Some 7) ();
  Printf.printf "\nStopping the clock with a message in flight:\n";
  lost_message ()
