(* Quickstart: the computation-migration annotation in five minutes.

   We build a small simulated machine, put a counter object on a remote
   processor, and have one thread increment it a few times — first with
   the RPC annotation, then with the Migrate annotation.  The program
   logic is identical; only the annotation changes.  Watch the message
   counts: RPC pays two messages per access, migration pays one for the
   first access and nothing afterwards (the thread now lives next to
   the data).

   Run with:  dune exec examples/quickstart.exe
*)

open Cm_machine
open Cm_runtime
open Cm_core
open Thread.Infix

let accesses = 5

let demo access =
  (* An 8-processor machine with the paper's software cost model. *)
  let machine = Machine.create ~n_procs:8 ~costs:Costs.software () in
  let prelude = Prelude.create machine in
  (* A counter object living on processor 5. *)
  let counter = Prelude.make_obj prelude ~home:5 (ref 0) in
  let finished_at = ref 0 in
  (* One thread on processor 0 increments it [accesses] times.  The
     [Prelude.proc] scope makes the activation migratable: if it ends up
     remote, its result is sent back to processor 0 in one message. *)
  Machine.spawn machine ~on:0
    (let* () =
       Prelude.proc prelude
         (Thread.repeat accesses (fun _ ->
              Prelude.invoke prelude ~access counter (fun cell ->
                  let* () = Thread.compute 50 in
                  incr cell;
                  Thread.return ())))
     in
     finished_at := Machine.now machine;
     Thread.return ());
  Machine.run machine;
  Printf.printf "%-8s  counter=%d  messages=%-3d words=%-4d finished at cycle %d\n"
    (Runtime.access_name access)
    !(Prelude.obj_state prelude counter)
    (Network.total_messages machine.Machine.net)
    (Network.total_words machine.Machine.net)
    !finished_at

let () =
  Printf.printf "Incrementing a remote counter %d times under each annotation:\n\n" accesses;
  demo Prelude.Rpc;
  demo Prelude.Migrate;
  print_newline ();
  Printf.printf "RPC sends 2 messages per access (%d total); migration sends one message\n"
    (2 * accesses);
  Printf.printf "to reach the counter and one to carry the result home - every access\n";
  Printf.printf "after the first is local.  Same program, one annotation changed.\n"
