(* Command-line driver: regenerate any table or figure of the paper.

   Usage:
     repro all [--quick] [-j N]    every experiment in paper order
     repro fig2 [--quick] [-j N]   one experiment
     repro list                    show available experiments
     repro custom ...              a custom single run (scheme/app/params)
     repro selfcheck [--full] [-j N]
                                   prove same-seed determinism under sanitizers

   [-j N] (or the CM_JOBS environment variable) runs the sweep points of
   each experiment on a pool of N domains; the printed output is
   byte-identical to [-j 1] — sweep points are pure jobs and all
   printing happens on the main domain in sweep order. *)

open Cmdliner
open Cm_engine
open Cm_experiments

let quick_arg =
  let doc = "Run with reduced horizons and fewer sweep points (for smoke tests)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let jobs_arg =
  let doc =
    "Run sweep points on $(docv) domains (default: the $(b,CM_JOBS) environment variable, \
     or 1).  Output is byte-identical to -j 1."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let effective_jobs = function
  | Some n -> max 1 n
  | None -> (
    match Sys.getenv_opt "CM_JOBS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | Some _ | None -> 1)
    | None -> 1)

let shards_arg =
  let doc =
    "Partition every machine's processors across $(docv) conservative PDES shards (default: \
     the $(b,CM_SHARDS) environment variable, or 1).  Digests and printed output are \
     identical at any shard count; experiments whose subsystems serialize on machine-global \
     state (shared memory, adaptive estimators, object migration, contention, faults) pin \
     themselves to one shard."
  in
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"K" ~doc)

let effective_shards = function
  | Some n -> max 1 n
  | None -> (
    match Sys.getenv_opt "CM_SHARDS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | Some _ | None -> 1)
    | None -> 1)

let apply_shards shards = Cm_machine.Machine.set_default_shards (effective_shards shards)

(* Run [f] with a pool of [jobs] domains (none when sequential), always
   shut down afterwards. *)
let with_pool jobs f =
  if jobs <= 1 then f None
  else begin
    let pool = Pool.create ~domains:jobs in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f (Some pool))
  end

let experiment_cmd entry =
  let doc = entry.Registry.title in
  Cmd.v
    (Cmd.info entry.Registry.id ~doc)
    Term.(
      const (fun quick jobs shards ->
          apply_shards shards;
          with_pool (effective_jobs jobs) (fun pool -> Registry.run ~quick ?pool entry))
      $ quick_arg $ jobs_arg $ shards_arg)

let all_cmd =
  let doc = "Run every table and figure in paper order." in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      const (fun quick jobs shards ->
          apply_shards shards;
          with_pool (effective_jobs jobs) (fun pool -> Registry.run_all ~quick ?pool ()))
      $ quick_arg $ jobs_arg $ shards_arg)

let list_cmd =
  let doc = "List available experiments." in
  let list () =
    List.iter (fun e -> Printf.printf "%-10s %s\n" e.Registry.id e.Registry.title) Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list $ const ())

(* A single custom run, for exploration. *)
let custom_cmd =
  let scheme_arg =
    let doc = "Scheme: sm, rpc, cp, optionally +hw and/or +repl (e.g. cp+repl+hw)." in
    Arg.(value & opt string "cp" & info [ "scheme" ] ~doc)
  in
  let app_arg =
    let doc = "Application: counting or btree." in
    Arg.(value & opt string "btree" & info [ "app" ] ~doc)
  in
  let think_arg =
    let doc = "Think time in cycles between requests." in
    Arg.(value & opt int 0 & info [ "think" ] ~doc)
  in
  let requesters_arg =
    let doc = "Number of requester threads." in
    Arg.(value & opt int 16 & info [ "requesters" ] ~doc)
  in
  let horizon_arg =
    let doc = "Simulated cycles to run." in
    Arg.(value & opt int 400_000 & info [ "horizon" ] ~doc)
  in
  let fanout_arg =
    let doc = "B-tree fanout." in
    Arg.(value & opt int 100 & info [ "fanout" ] ~doc)
  in
  let detail_arg =
    let doc = "Print a post-run machine report (utilizations, traffic by kind)." in
    Arg.(value & flag & info [ "detail" ] ~doc)
  in
  let run scheme app think requesters horizon fanout detail shards =
    apply_shards shards;
    match Scheme.of_string scheme with
    | Error e -> `Error (false, e)
    | Ok s ->
      let machine, metrics =
        match app with
        | "counting" ->
          Counting_run.run_with_machine s
            { Counting_run.default with Counting_run.think; requesters; horizon }
        | "btree" ->
          Btree_run.run_with_machine s
            { Btree_run.default with Btree_run.think; requesters; horizon; fanout }
        | other -> failwith (Printf.sprintf "unknown app %S (counting|btree)" other)
      in
      Printf.printf "%s on %s: %s (mean op latency %.0f cycles)\n" (Scheme.name s) app
        (Format.asprintf "%a" Cm_workload.Metrics.pp metrics)
        metrics.Cm_workload.Metrics.mean_latency;
      if detail then Cm_workload.Detail.print machine;
      `Ok ()
  in
  let doc = "One custom run with explicit parameters." in
  Cmd.v (Cmd.info "custom" ~doc)
    Term.(
      ret
        (const run $ scheme_arg $ app_arg $ think_arg $ requesters_arg $ horizon_arg
       $ fanout_arg $ detail_arg $ shards_arg))

(* --- selfcheck: same-seed determinism proof ----------------------- *)

(* Run [f] with stdout redirected to a temp file; return [f]'s outcome
   and everything it printed.  The reports the experiments print are part
   of the observable output being checked. *)
let with_captured_stdout f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let tmp = Filename.temp_file "cm_selfcheck" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let result = try Ok (f ()) with e -> Error e in
  flush stdout;
  Unix.dup2 saved Unix.stdout;
  Unix.close saved;
  let ic = open_in_bin tmp in
  let printed = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  (result, printed)

(* One sanitized run of an experiment: every machine the experiment
   drives appends a digest of (final clock, events fired, statistics) to
   the Check trail, and the printed report is hashed as well. *)
let sanitized_run ?pool entry ~quick =
  Check.set_enabled true;
  Check.reset ();
  Check.Trail.set_recording true;
  let result, printed = with_captured_stdout (fun () -> Registry.run ~quick ?pool entry) in
  Check.Trail.set_recording false;
  (result, Check.Trail.trail (), Digest.to_hex (Digest.string printed))

let rec first_diff i a b =
  match (a, b) with
  | [], [] -> None
  | x :: a', y :: b' -> if String.equal x y then first_diff (i + 1) a' b' else Some i
  | _, [] | [], _ -> Some i

let selfcheck full jobs shards =
  apply_shards shards;
  let quick = not full in
  let failures = ref 0 in
  with_pool (effective_jobs jobs) (fun pool ->
      List.iter
        (fun entry ->
          let id = entry.Registry.id in
          match (sanitized_run ?pool entry ~quick, sanitized_run ?pool entry ~quick) with
          | (Ok (), trail1, out1), (Ok (), trail2, out2) ->
            if trail1 = trail2 && String.equal out1 out2 then
              (* The machine digest is printed so that a semantics-preserving
                 change (e.g. a perf PR) can diff this output against the
                 previous revision's and prove bit-identical behavior, not
                 just within-revision reproducibility. *)
              Printf.printf
                "selfcheck %-10s ok: %d machine run(s) identical, machines %s report %s\n" id
                (List.length trail1)
                (String.sub (Digest.to_hex (Digest.string (String.concat "," trail1))) 0 12)
                (String.sub out1 0 (min 12 (String.length out1)))
            else begin
              incr failures;
              Printf.printf "selfcheck %-10s MISMATCH between same-seed runs\n" id;
              (match first_diff 0 trail1 trail2 with
              | Some i ->
                Printf.printf
                  "  machine-run digests diverge at run %d (%d vs %d runs recorded)\n" i
                  (List.length trail1) (List.length trail2)
              | None -> ());
              if not (String.equal out1 out2) then
                Printf.printf "  printed reports differ (%s vs %s)\n" out1 out2
            end
          | ((Error e, _, _), _ | _, (Error e, _, _)) ->
            incr failures;
            Printf.printf "selfcheck %-10s FAILED under sanitizers: %s\n" id
              (Printexc.to_string e))
        Registry.all);
  Check.set_enabled false;
  Check.reset ();
  if !failures > 0 then begin
    Printf.printf "selfcheck: %d experiment(s) not reproducible\n" !failures;
    exit 1
  end
  else
    Printf.printf "selfcheck: all %d experiments deterministic under sanitizers\n"
      (List.length Registry.all)

let selfcheck_cmd =
  let full_arg =
    let doc = "Run the experiments at full size (the default uses --quick sizes)." in
    Arg.(value & flag & info [ "full" ] ~doc)
  in
  let doc =
    "Run every registered experiment twice with the same seed, all sanitizers enabled, and \
     fail unless the two runs are bit-identical (machine digests and printed reports)."
  in
  Cmd.v (Cmd.info "selfcheck" ~doc) Term.(const selfcheck $ full_arg $ jobs_arg $ shards_arg)

let () =
  let doc = "Reproduce the evaluation of Hsieh/Wang/Weihl, PPoPP 1993" in
  let info = Cmd.info "repro" ~version:"1.0" ~doc in
  let default = Term.(ret (const (fun _ -> `Help (`Pager, None)) $ const ())) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          ([ all_cmd; list_cmd; custom_cmd; selfcheck_cmd ]
          @ List.map experiment_cmd Registry.all)))
