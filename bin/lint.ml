(* cm-lint: determinism / correctness / shard-safety lint for the
   simulation libraries — thin driver over lib/analysis (Cm_analysis).

   Two layers of rules:

   - *Syntactic* (parsetree, no build artifacts needed): determinism,
     hashtbl-order, closure-compare (name heuristic), printf,
     poly-compare, raw-send, global-state.  A fast tripwire: it matches
     identifiers as written, so a module alias can hide a call from it.

   - *Typed* (over the .cmt files dune produces, resolved paths, module
     aliases expanded): the identifier rules re-run alias-proof
     (determinism, hashtbl-order, printf, raw-send, poly-compare,
     closure-compare — the typed variant asks the type checker whether
     an operand's type contains a function), plus two whole-library
     passes:
       domain-safety   classifies every module-init-time mutable
                       location by ownership (escaping / atomic / dls /
                       sync / mutex-guarded), walks the cross-module
                       reference graph for state escaping its unit, and
                       flags unsynchronized mutable payloads crossing
                       shard boundaries through Transport.
       hot-alloc       flags closure / tuple / record / variant /
                       boxed-float / partial-application allocation
                       inside the declared hot-path set (Sim event
                       cycle, Transport pipelines, Thread combinators,
                       Processor dispatch).

   The typed passes make the old header's caveat ("parses but does not
   type — it is a tripwire, not a proof") obsolete for everything above:
   findings come with resolved paths and, for the interprocedural rules,
   call-chain witnesses.

   Suppression: "(* lint: allow <rule> [why] *)" on the line or the line
   above, "(* lint: allow-file <rule> [why] *)" anywhere in the file, or
   [@cm.shard_safe "why"] on a binding (domain-safety only).
   domain-safety and hot-alloc demand the written justification; a
   suppression naming an unknown rule is itself a finding
   (bad-suppress).

   Findings print as "file:line: rule: msg", sorted by (file, line,
   rule); --json writes the machine-readable form (rule, path, ownership
   class, call-chain witness); --baseline FILE tolerates the checked-in
   debt and fails only on findings beyond it.  Exit status: 0 clean,
   1 findings, 2 usage/IO error. *)

let usage () =
  prerr_endline
    "usage: lint.exe [--json FILE] [--baseline FILE] [--write-baseline FILE]\n\
    \                [--syntactic-only] [--typed-only] [--require-cmt]\n\
    \                [--source-root DIR] [root...]   (default root: lib)";
  exit 2

let () =
  let json_out = ref None
  and baseline_in = ref None
  and baseline_out = ref None
  and syntactic = ref true
  and typed = ref true
  and require_cmt = ref false
  and source_root = ref "."
  and roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: f :: rest -> json_out := Some f; parse rest
    | "--baseline" :: f :: rest -> baseline_in := Some f; parse rest
    | "--write-baseline" :: f :: rest -> baseline_out := Some f; parse rest
    | "--syntactic-only" :: rest -> typed := false; parse rest
    | "--typed-only" :: rest -> syntactic := false; parse rest
    | "--require-cmt" :: rest -> require_cmt := true; parse rest
    | "--source-root" :: d :: rest -> source_root := d; parse rest
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" -> usage ()
    | root :: rest -> roots := root :: !roots; parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roots = match List.rev !roots with [] -> [ "lib" ] | r -> r in
  let config =
    {
      Cm_analysis.Driver.roots;
      source_root = !source_root;
      syntactic = !syntactic;
      typed = !typed;
      hot = Cm_analysis.Hot_alloc.default;
    }
  in
  let outcome = Cm_analysis.Driver.run config in
  List.iter (fun e -> Printf.eprintf "%s\n" e) outcome.errors;
  if !typed && !require_cmt && outcome.units_analyzed = 0 then begin
    Printf.eprintf
      "cm-lint: --require-cmt: no .cmt files under %s (build first: dune build)\n"
      (String.concat " " roots);
    exit 2
  end;
  (match !json_out with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc (Cm_analysis.Finding.list_to_json outcome.findings);
    close_out oc
  | None -> ());
  (match !baseline_out with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc (Cm_analysis.Baseline.render outcome.findings);
    close_out oc;
    Printf.printf "cm-lint: baseline of %d finding(s) written to %s\n"
      (List.length outcome.findings) path
  | None -> ());
  let to_report =
    match !baseline_in with
    | None -> outcome.findings
    | Some path ->
      let verdict = Cm_analysis.Baseline.check ~baseline:(Cm_analysis.Baseline.load path) outcome.findings in
      List.iter
        (fun (key, allowed, have) ->
          Printf.eprintf
            "cm-lint: stale baseline entry (%d allowed, %d present): %s\n" allowed have key)
        verdict.stale;
      verdict.fresh
  in
  List.iter (fun f -> print_endline (Cm_analysis.Finding.to_string f)) to_report;
  if to_report <> [] || outcome.errors <> [] then begin
    Printf.eprintf "cm-lint: %d finding(s)%s in %d file(s), %d typed unit(s)\n"
      (List.length to_report)
      (if !baseline_in <> None then " beyond baseline" else "")
      outcome.files_scanned outcome.units_analyzed;
    exit 1
  end
  else if !baseline_out = None then
    Printf.printf "cm-lint: clean — %d file(s), %d typed unit(s)%s\n" outcome.files_scanned
      outcome.units_analyzed
      (match !baseline_in with
      | Some _ -> Printf.sprintf " (baseline absorbed %d)" (List.length outcome.findings)
      | None -> "")
