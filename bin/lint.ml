(* cm-lint: a determinism / correctness lint for the simulation libraries.

   Parses every .ml file under the given roots (default: lib) with
   compiler-libs and flags hazards that would silently break the
   repository's bit-for-bit reproducibility claim or crash at runtime:

     determinism      Random.*, Sys.time, Unix.*, Hashtbl.randomize, or
                      Hashtbl.create ~random:... — nondeterministic inputs
                      that must stay behind Cm_engine.Rng.
     hashtbl-order    Hashtbl.iter / Hashtbl.fold — iteration order is
                      unspecified and can leak into event scheduling or
                      printed reports.  Allowed when the result is
                      order-insensitive (sorted afterwards, commutative
                      accumulation) — annotate the site.
     closure-compare  Structural =, <> or compare where an operand is a
                      function literal or a conventionally-named
                      continuation (k, cont, resume, action, ...).
                      Continuations are first-class values here and
                      structural comparison on closures raises at runtime.
     printf           Printf.printf / Format.printf / print_* in library
                      code: report output belongs to the experiments'
                      report layer, diagnostics to Cm_engine.Trace.
     poly-compare     Stdlib.compare / Pervasives.compare passed around
                      as a bare comparison-function value (List.sort
                      compare, Heap.create ~cmp:compare, ...) in the
                      hot-path libraries lib/engine, lib/machine,
                      lib/memory: the polymorphic runtime comparator
                      defeats specialization on every element — use
                      Int.compare / String.compare or a monomorphic
                      comparator.  Direct applications (compare a b) are
                      specialized by the compiler and not flagged.
     raw-send         Network.send / Network.send_k outside lib/machine:
                      all remote traffic must flow through
                      Cm_machine.Transport (typed endpoints, unified
                      send/receive pipelines, fault injection, delivery
                      accounting) — hand-rolled pipelines drift and
                      re-intern kind labels on hot paths.
     global-state     toplevel `ref`, `Hashtbl.create` or `Atomic.make` in
                      a library module: shared mutable state is visible to
                      every domain at once, so it either races under the
                      parallel sweep harness or (when guarded) couples
                      runs that must be independent.  State belongs in
                      the machine/runtime instance, in Domain.DLS, or —
                      for genuinely cross-domain toggles — in an Atomic
                      with a vetting comment.  Only module-toplevel
                      bindings are flagged; function-local state is fine.

   Suppression: a finding is allowed when its line (or the line above)
   carries "(* lint: allow <rule> *)", or the file carries
   "(* lint: allow-file <rule> *)" anywhere (for presentation-layer
   modules whose whole purpose is printing).

   Findings print as "file:line: rule: message"; exit status is non-zero
   when any unsuppressed finding remains.  The lint is purely syntactic —
   it parses but does not type — so module aliases can hide a call from
   it; it is a tripwire, not a proof. *)

type finding = { file : string; line : int; rule : string; msg : string }

let findings : finding list ref = ref []

let report ~file ~line ~rule msg = findings := { file; line; rule; msg } :: !findings

(* ------------------------------------------------------------------ *)
(* Source-comment suppressions                                        *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  m = 0 || go 0

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> Array.of_list (List.rev acc)
      in
      go [])

let suppressed lines ~line ~rule =
  let tag = "lint: allow " ^ rule in
  let file_tag = "lint: allow-file " ^ rule in
  let at i = i >= 1 && i <= Array.length lines && contains lines.(i - 1) tag in
  at line || at (line - 1) || Array.exists (fun l -> contains l file_tag) lines

(* ------------------------------------------------------------------ *)
(* The rules                                                          *)
(* ------------------------------------------------------------------ *)

let strip_stdlib = function ("Stdlib" | "Pervasives") :: rest -> rest | path -> path

let ident_path e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } ->
    (try Some (strip_stdlib (Longident.flatten txt)) with Misc.Fatal_error -> None)
  | _ -> None

let forbidden_ident = function
  | "Random" :: _ -> Some "use of Random.* (route randomness through Cm_engine.Rng)"
  | [ "Sys"; "time" ] -> Some "Sys.time is wall-clock dependent (use the Sim clock)"
  | "Unix" :: _ -> Some "use of Unix.* (real-world I/O and time break determinism)"
  | [ "Hashtbl"; "randomize" ] -> Some "Hashtbl.randomize makes iteration order per-process"
  | _ -> None

let order_sensitive_ident = function
  | [ "Hashtbl"; ("iter" | "fold") ] -> true
  | _ -> false

let printing_ident = function
  | [ "Printf"; "printf" ]
  | [ "Format"; "printf" ]
  | [ ("print_string" | "print_endline" | "print_newline" | "print_int" | "print_char"
      | "print_float") ] ->
    true
  | _ -> false

(* Identifiers that conventionally hold continuations/closures in this
   codebase; structural comparison on them raises at runtime.  "k" is
   deliberately absent — it names both continuations (CPS internals) and
   integer keys (B-tree, DHT), and the latter dominate comparisons. *)
let closure_names = [ "cont"; "continuation"; "resume"; "action"; "thunk"; "callback" ]

let rec last = function [] -> "" | [ x ] -> x | _ :: tl -> last tl

let closure_suspect (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_ident { txt = Lident n; _ } -> List.mem n closure_names
  | Pexp_field (_, { txt; _ }) ->
    (try List.mem (last (Longident.flatten txt)) closure_names
     with Misc.Fatal_error -> false)
  | _ -> false

let polymorphic_compare = function [ ("=" | "<>" | "compare") ] -> true | _ -> false

let raw_send_ident = function
  | [ "Network"; ("send" | "send_k") ] | [ "Cm_machine"; "Network"; ("send" | "send_k") ] -> true
  | _ -> false

(* The transport itself (and the machine layer it lives in) is the one
   legitimate client of the raw network send. *)
let raw_send_applies file = not (contains file "lib/machine")

(* poly-compare is scoped to the simulation hot-path libraries (plus the
   negative fixture, which must exercise every rule). *)
let poly_compare_scope = [ "lib/engine"; "lib/machine"; "lib/memory"; "fixtures" ]

let poly_compare_applies file = List.exists (contains file) poly_compare_scope

(* Offsets of expressions in function (head) position of an application;
   the iterator visits the application before its head, so heads are
   recorded before the ident check below sees them. *)
let applied_heads : (int, unit) Hashtbl.t = Hashtbl.create 256

let hashtbl_create_random args =
  List.exists
    (fun (label, (arg : Parsetree.expression)) ->
      match (label, arg.pexp_desc) with
      | ( (Asttypes.Labelled "random" | Asttypes.Optional "random"),
          Pexp_construct ({ txt = Lident "false"; _ }, None ) ) ->
        false
      | (Asttypes.Labelled "random" | Asttypes.Optional "random"), _ -> true
      | _ -> false)
    args

(* --- global-state: toplevel mutable state in library modules.  A
   separate walk from the expression iterator: only bindings at module
   toplevel (including nested/included module structures) are flagged —
   a `ref` inside a function body or a functor (fresh per application)
   is per-call state and fine. *)

let rec peel_constraint (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e', _) | Pexp_coerce (e', _, _) -> peel_constraint e'
  | _ -> e

let global_state_ctor e =
  match (peel_constraint e).Parsetree.pexp_desc with
  | Pexp_apply (fn, _) -> (
    match ident_path fn with
    | Some [ "ref" ] -> Some "ref"
    | Some [ "Hashtbl"; "create" ] -> Some "Hashtbl.create"
    | Some [ "Atomic"; "make" ] -> Some "Atomic.make"
    | _ -> None)
  | _ -> None

let rec check_structure ~file (items : Parsetree.structure) =
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            match global_state_ctor vb.pvb_expr with
            | Some ctor ->
              let line = vb.pvb_expr.pexp_loc.Location.loc_start.Lexing.pos_lnum in
              report ~file ~line ~rule:"global-state"
                (Printf.sprintf
                   "toplevel %s is mutable state shared across domains and runs; move it \
                    into the machine/runtime instance or Domain.DLS, or vet it as an \
                    Atomic with an allow comment"
                   ctor)
            | None -> ())
          bindings
      | Pstr_module { pmb_expr; _ } -> check_module_expr ~file pmb_expr
      | Pstr_recmodule mbs ->
        List.iter
          (fun (mb : Parsetree.module_binding) -> check_module_expr ~file mb.pmb_expr)
          mbs
      | Pstr_include { pincl_mod; _ } -> check_module_expr ~file pincl_mod
      | _ -> ())
    items

and check_module_expr ~file (m : Parsetree.module_expr) =
  match m.pmod_desc with
  | Pmod_structure items -> check_structure ~file items
  | Pmod_constraint (m', _) -> check_module_expr ~file m'
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* The walk                                                           *)
(* ------------------------------------------------------------------ *)

let check_expr ~file (e : Parsetree.expression) =
  let line = e.pexp_loc.Location.loc_start.Lexing.pos_lnum in
  (match ident_path e with
  | Some path -> (
    (match forbidden_ident path with
    | Some msg -> report ~file ~line ~rule:"determinism" msg
    | None -> ());
    if order_sensitive_ident path then
      report ~file ~line ~rule:"hashtbl-order"
        (Printf.sprintf
           "%s iterates in unspecified order; sort the result or justify with an allow \
            comment"
           (String.concat "." path));
    if raw_send_ident path && raw_send_applies file then
      report ~file ~line ~rule:"raw-send"
        (Printf.sprintf
           "%s outside lib/machine; send through Cm_machine.Transport (typed endpoints) \
            instead"
           (String.concat "." path));
    if printing_ident path then
      report ~file ~line ~rule:"printf"
        (Printf.sprintf "%s prints from library code; route through Cm_engine.Trace or the \
                         report layer"
           (String.concat "." path));
    if
      path = [ "compare" ]
      && poly_compare_applies file
      && not (Hashtbl.mem applied_heads e.pexp_loc.Location.loc_start.Lexing.pos_cnum)
    then
      report ~file ~line ~rule:"poly-compare"
        "polymorphic compare used as a comparison-function value; use Int.compare / \
         String.compare or a monomorphic comparator")
  | None -> ());
  match e.pexp_desc with
  | Pexp_apply (fn, args) -> (
    Hashtbl.replace applied_heads fn.Parsetree.pexp_loc.Location.loc_start.Lexing.pos_cnum ();
    (match ident_path fn with
    | Some [ "Hashtbl"; "create" ] when hashtbl_create_random args ->
      report ~file ~line ~rule:"determinism"
        "Hashtbl.create ~random makes iteration order per-process"
    | Some op when polymorphic_compare op ->
      if List.exists (fun (_, a) -> closure_suspect a) args then
        report ~file ~line ~rule:"closure-compare"
          (Printf.sprintf
             "structural %s on a value that looks like a closure (continuations raise \
              under polymorphic comparison)"
             (String.concat "." op))
    | _ -> ()))
  | _ -> ()

let lint_file file =
  Hashtbl.reset applied_heads;
  let ast =
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let lexbuf = Lexing.from_channel ic in
        Location.init lexbuf file;
        Parse.implementation lexbuf)
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          check_expr ~file e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.structure iter ast;
  check_structure ~file ast

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if String.length entry > 0 && (entry.[0] = '_' || entry.[0] = '.') then acc
           else collect_ml acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let roots =
    match Array.to_list Sys.argv with _ :: (_ :: _ as roots) -> roots | _ -> [ "lib" ]
  in
  let files =
    try List.fold_left collect_ml [] roots |> List.sort String.compare
    with Sys_error msg ->
      Printf.eprintf "cm-lint: %s\n" msg;
      exit 2
  in
  let parse_failures = ref 0 in
  List.iter
    (fun file ->
      try lint_file file
      with exn ->
        incr parse_failures;
        Printf.eprintf "%s: parse-error: %s\n" file (Printexc.to_string exn))
    files;
  let surviving =
    List.filter
      (fun f ->
        let lines = read_lines f.file in
        not (suppressed lines ~line:f.line ~rule:f.rule))
      !findings
    |> List.sort (fun a b ->
           match String.compare a.file b.file with 0 -> compare a.line b.line | c -> c)
  in
  List.iter
    (fun f -> Printf.printf "%s:%d: %s: %s\n" f.file f.line f.rule f.msg)
    surviving;
  if surviving <> [] || !parse_failures > 0 then begin
    Printf.eprintf "cm-lint: %d finding(s) in %d file(s) scanned\n" (List.length surviving)
      (List.length files);
    exit 1
  end
  else Printf.printf "cm-lint: %d files clean\n" (List.length files)
