(** Spin locks in coherent shared memory.

    A test-and-test&set lock with bounded exponential backoff: acquisition
    first spins on a (locally cached) read of the lock word, attempting
    the atomic test&set only when the word is observed free.  This is the
    synchronization the shared-memory versions of the applications use for
    multi-line critical sections (a whole B-tree node); its coherence
    traffic under contention is part of the shared-memory bandwidth the
    paper measures.

    The backoff delay is randomized from the acquiring thread's own
    stream, so runs remain deterministic. *)

open Cm_machine

type t

val create : ?base_backoff:int -> ?max_backoff:int -> Shmem.t -> home:int -> t
(** [create mem ~home] allocates a lock word on [home]'s memory.
    [base_backoff] (default 64) and [max_backoff] (default 4096) bound
    the randomized exponential backoff between spin probes; high-traffic
    locks want large values (fewer probes, at some handoff latency). *)

val addr : t -> Shmem.addr
(** The lock word's address (e.g. for co-locating diagnostics). *)

val acquire : t -> unit Thread.t
(** [acquire l] blocks (spinning with backoff) until the lock is taken. *)

val release : t -> unit Thread.t
(** [release l] frees the lock.  Must be called by the holder. *)

val with_lock : t -> (unit -> 'a Thread.t) -> 'a Thread.t
(** [with_lock l body] acquires, runs [body ()], releases, and returns
    the body's result. *)

val holder_free : t -> bool
(** [holder_free l] is true when the lock word currently reads 0 (test
    helper; not simulated). *)
