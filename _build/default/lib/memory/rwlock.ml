open Cm_engine
open Cm_machine
open Thread.Infix

type t = { mem : Shmem.t; word : Shmem.addr; base_backoff : int; max_backoff : int }

let create ?(base_backoff = 64) ?(max_backoff = 2048) mem ~home =
  { mem; word = Shmem.alloc mem ~home ~words:1; base_backoff; max_backoff }

let writer = -1

let backoff_then l backoff k =
  let* r = Thread.rng in
  let jitter = Rng.int r (max 1 backoff) in
  let* () = Thread.sleep (backoff + jitter) in
  k (min (backoff * 2) l.max_backoff)

let acquire_read l =
  let rec attempt backoff =
    (* Conditional increment: fails (leaves the word alone) while a
       writer holds the lock. *)
    let* old = Shmem.rmw l.mem l.word (fun v -> if v >= 0 then v + 1 else v) in
    if old >= 0 then Thread.return () else backoff_then l backoff attempt
  in
  attempt l.base_backoff

let release_read l = Thread.ignore_m (Shmem.rmw l.mem l.word (fun v -> v - 1))

let acquire_write l =
  let rec attempt backoff =
    let* old = Shmem.rmw l.mem l.word (fun v -> if v = 0 then writer else v) in
    if old = 0 then Thread.return () else backoff_then l backoff attempt
  in
  attempt l.base_backoff

let release_write l = Shmem.write l.mem l.word 0

let with_read l body =
  let* () = acquire_read l in
  let* result = body () in
  let* () = release_read l in
  Thread.return result

let with_write l body =
  let* () = acquire_write l in
  let* result = body () in
  let* () = release_write l in
  Thread.return result

let free l = Shmem.peek l.mem l.word = 0
