lib/memory/rwlock.ml: Cm_engine Cm_machine Rng Shmem Thread
