lib/memory/shmem.mli: Cache Cm_machine Machine Thread
