lib/memory/lock.mli: Cm_machine Shmem Thread
