lib/memory/rwlock.mli: Cm_machine Shmem Thread
