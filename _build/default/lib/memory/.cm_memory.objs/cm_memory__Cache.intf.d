lib/memory/cache.mli: Cm_engine
