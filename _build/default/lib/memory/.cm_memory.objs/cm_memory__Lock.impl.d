lib/memory/lock.ml: Cm_engine Cm_machine Rng Shmem Thread
