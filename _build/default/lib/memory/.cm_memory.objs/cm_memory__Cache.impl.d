lib/memory/cache.ml: Array Cm_engine Stats
