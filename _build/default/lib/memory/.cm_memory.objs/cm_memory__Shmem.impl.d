lib/memory/shmem.ml: Array Cache Cm_engine Cm_machine Hashtbl Int Machine Network Printf Processor Set Sim Stats Thread
