(** Reader-writer spin locks in coherent shared memory.

    A single lock word holds the reader count, or -1 while a writer is
    inside.  Every acquisition and release is an atomic read-modify-write
    — an exclusive ownership transfer of the lock's cache line — so even
    read-sharing costs one line transfer per reader, which is precisely
    the "data contention" a B-tree root suffers under shared memory:
    readers do not exclude one another, but their lock-word updates
    serialize on the line.

    Writers wait for a zero count; they can be starved by a dense reader
    stream (no writer priority — the simplification is noted in
    DESIGN.md). *)

open Cm_machine

type t

val create : ?base_backoff:int -> ?max_backoff:int -> Shmem.t -> home:int -> t
(** [create mem ~home] allocates the lock word on [home]. *)

val acquire_read : t -> unit Thread.t
(** Enter as a reader (concurrent readers allowed). *)

val release_read : t -> unit Thread.t
(** Leave the reader section. *)

val acquire_write : t -> unit Thread.t
(** Enter exclusively, waiting for readers and writers to drain. *)

val release_write : t -> unit Thread.t
(** Leave the writer section. *)

val with_read : t -> (unit -> 'a Thread.t) -> 'a Thread.t
(** [with_read l body] brackets [body ()] with reader entry/exit. *)

val with_write : t -> (unit -> 'a Thread.t) -> 'a Thread.t
(** [with_write l body] brackets [body ()] with writer entry/exit. *)

val free : t -> bool
(** Whether the lock word currently reads zero (test helper). *)
