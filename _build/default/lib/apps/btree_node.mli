(** Pure B-link-tree node arithmetic, shared by every execution mode.

    Conventions (Lehman-Yao style, as in Wang's distributed B-tree):
    {ul
    {- keys in a node are sorted and distinct; [nkeys] of them are live;}
    {- an {e internal} node with [nkeys] keys has exactly [nkeys]
       children: child [i] covers the key interval
       [(keys.(i-1), keys.(i)]] (with [keys.(-1) = -inf]);}
    {- every node has a [high] key — the largest key it can route or
       store ([max_int] for the rightmost node of a level) — and a right
       sibling link, enabling descents to recover from concurrent
       splits by "moving right";}
    {- a node that fills past [fanout] splits in half, the left half
       keeping the low keys.}}

    Also provides the bulk loader used to preconstruct the paper's
    10 000-key trees with a fixed fill factor, which reproduces the
    paper's tree shapes (e.g. a 3-child root for fanout 100). *)

val find_child_index : keys:int array -> nkeys:int -> key:int -> int
(** [find_child_index ~keys ~nkeys ~key] is the smallest [i] with
    [key <= keys.(i)].  Requires [key <= keys.(nkeys-1)]; raises
    [Invalid_argument] otherwise (callers must move right first). *)

val probes : nkeys:int -> int
(** Number of binary-search probes for a node of [nkeys] keys — used to
    charge search CPU time. *)

val member : keys:int array -> nkeys:int -> key:int -> bool
(** Sorted-array membership. *)

val insertion_point : keys:int array -> nkeys:int -> key:int -> int
(** Index at which [key] should be inserted to keep [keys] sorted
    (first index with [keys.(i) >= key], or [nkeys]). *)

val insert_at : keys:int array -> nkeys:int -> pos:int -> int -> unit
(** Shift [keys.(pos..nkeys-1)] right one slot and store the value at
    [pos].  The array must have room. *)

val split_point : nkeys:int -> int
(** How many entries the left half keeps when a node splits:
    [(nkeys + 1) / 2]. *)

(** {1 Bulk loading} *)

type plan =
  | Leaf of { keys : int array; high : int }
  | Node of { keys : int array; high : int; children : plan array }
      (** [keys.(i)] is child [i]'s high key; the rightmost child of the
          rightmost spine has [high = max_int]. *)

val build_plan : keys:int list -> fanout:int -> fill:float -> plan
(** [build_plan ~keys ~fanout ~fill] is a balanced B-link tree holding
    exactly the distinct keys of [keys], with nodes filled to about
    [fill * fanout] (clamped to [2 .. fanout]).  Raises
    [Invalid_argument] when [keys] is empty or [fanout < 4]. *)

val plan_height : plan -> int
(** Height: a lone leaf is 1. *)

val plan_nodes_at_level : plan -> int -> plan list
(** Nodes of the plan at [level] in left-to-right order (leaves are
    level 0). *)

val plan_keys : plan -> int list
(** All keys, ascending (concatenation of the leaves). *)

val plan_root_children : plan -> int
(** Child count of the root (0 for a lone leaf). *)
