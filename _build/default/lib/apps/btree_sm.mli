(** The distributed B-link tree over cache-coherent shared memory — the
    data-migration baseline of the paper's Section 4.2.

    Nodes live in shared memory as word blocks; requester threads stay on
    their own processors and pull node contents line by line through the
    coherence protocol.  Read-shared upper levels therefore replicate
    automatically in hardware caches — the effect the paper identifies as
    shared memory's decisive advantage — while insert traffic invalidates
    copies and write-shared lines ping-pong.

    Concurrency control: descents are lock-free seqlock reads (a version
    word per node, odd while a writer is in progress), recovering from
    concurrent splits by Lehman-Yao right-link chasing; writers take a
    per-node spin lock, bump the version around their writes, and
    propagate splits upward one lock at a time.  Within-node key search
    is a linear scan of the sorted key area, reflecting the
    whole-node-sized data movement the paper's bandwidth numbers show. *)

open Cm_machine

type read_mode =
  | Locked
      (** descents take each node's lock (default — Wang-style; the root
          lock line becomes the data-contention hot spot the paper
          describes) *)
  | Seqlock  (** ablation: lock-free version-validated reads *)

type t

val create :
  Sysenv.t ->
  ?read_mode:read_mode ->
  fanout:int ->
  plan:Btree_node.plan ->
  node_procs:int array ->
  placement_seed:int ->
  unit ->
  t
(** Materialize a bulk-load [plan] into shared memory, node homes drawn
    uniformly from [node_procs]. *)

val lookup : t -> int -> bool Thread.t
(** Membership, lock-free. *)

val insert : t -> int -> bool Thread.t
(** Insert; [false] if already present. *)

val height : t -> int
val root_children : t -> int
val root_home : t -> int
val splits : t -> int

val all_keys : t -> int list
(** Keys in ascending order via the leaf chain (not simulated). *)

val check_invariants : t -> (unit, string) result
(** Structural invariants at quiescence (see {!Btree_msg.check_invariants}). *)
