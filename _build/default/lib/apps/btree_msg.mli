(** The distributed B-link tree under the message-passing runtime
    (RPC or computation migration).

    Every node is an object in the global name space; node methods
    (search step, leaf insert, separator insert) execute at the node's
    home processor, serialized by that processor's run queue — which is
    what makes node operations atomic, and what creates the paper's root
    bottleneck: under computation migration "an activation moves for
    every request to the processor containing the root".

    Concurrency control is Lehman-Yao moving-right over right-sibling
    links (Wang's simplified algorithm; no delete): a descent or a
    separator insertion that finds its key above a node's high key chases
    the right link.  Splits propagate upward along the descent path;
    a root split is serialized through the tree anchor object.

    With [replicate_root] the root's content is replicated per processor
    ({!Cm_runtime.Replicate}); descents read the local snapshot and jump
    straight to a level-2 node, removing the root processor from the
    lookup path (the paper's "w/repl." rows). *)

open Cm_machine
open Cm_core

type t

val create :
  Sysenv.t ->
  access:Prelude.access ->
  fanout:int ->
  replicate_root:bool ->
  plan:Btree_node.plan ->
  node_procs:int array ->
  placement_seed:int ->
  t
(** Materialize a bulk-load [plan]; nodes are placed uniformly at random
    over [node_procs] (new nodes created by splits too). *)

val lookup : t -> int -> bool Thread.t
(** [lookup t key] — membership.  Runs inside a requester thread; the
    result is delivered back at the requester's processor. *)

val insert : t -> int -> bool Thread.t
(** [insert t key] adds [key]; [false] if it was already present. *)

val height : t -> int
(** Current tree height (a lone leaf is 1). *)

val root_children : t -> int
(** Child count of the current root (0 when the root is a leaf). *)

val root_home : t -> int
(** The current root node's home processor. *)

val splits : t -> int
(** Number of node splits performed so far. *)

val all_keys : t -> int list
(** Keys in ascending order, by walking the leaf level (not
    simulated). *)

val check_invariants : t -> (unit, string) result
(** Structural invariants at quiescence: sorted keys, child coverage
    matching separators, consistent high keys and right links, leaf
    chain agreeing with the tree walk. *)

val dump : t -> string
(** Indented rendering of the tree structure (not simulated; for
    debugging and tests). *)
