(** The counting-network application (paper §4.1).

    An 8-wide bitonic counting network laid out one balancer per
    processor (24 processors for width 8), with an output counter on each
    exit wire co-located with the balancer feeding it.  A request enters
    on an input wire, toggles one balancer per layer, and fetch-and-adds
    the counter at its exit wire; the value returned is
    [count * width + wire] — a shared-counting value.

    Three execution modes:
    {ul
    {- [Messaging Rpc] — every balancer visit is an RPC to the balancer's
       processor (two messages per hop; the requester blocks).}
    {- [Messaging Migrate] — the request's activation migrates from
       balancer to balancer (one message per hop) and sends one result
       message back from the exit (the paper's computation-migration
       traversal).}
    {- [Shared_memory] — the requester stays home and toggles balancers
       through the coherence protocol, taking each balancer's spin lock;
       balancers are write-shared, so lines ping-pong between caches.}} *)

open Cm_machine

type sm_sync =
  | Atomic_toggle
      (** ablation: one atomic fetch-and-toggle per balancer visit *)
  | Lock_per_balancer
      (** test-and-test&set spin lock around the toggle (default; what
          the paper's throughput and bandwidth jointly imply) *)

type mode = Messaging of Cm_core.Prelude.access | Shared_memory

val mode_name : mode -> string
(** ["rpc"], ["migrate"] or ["shared_memory"]. *)

type t

val create :
  Sysenv.t ->
  ?width:int ->
  ?sm_sync:sm_sync ->
  ?lock_backoff:int * int ->
  ?balancer_procs:int array ->
  mode ->
  t
(** [create env mode] builds the network on [env].  [width] defaults
    to 8.  [balancer_procs] maps balancer index to processor; it
    defaults to one balancer per processor starting at processor 0
    (requester threads should then live on higher-numbered
    processors). *)

val width : t -> int
val n_balancers : t -> int
val mode : t -> mode

val traverse : t -> input_wire:int -> int Thread.t
(** [traverse t ~input_wire] pushes one token through the network from
    [input_wire] and returns the counter value it obtained.  Runs inside
    a requester thread; under [Messaging Migrate] the activation returns
    to the requester's processor when done. *)

val output_counts : t -> int array
(** Tokens seen per exit wire so far (not simulated; for checking). *)

val tokens_delivered : t -> int
(** Total tokens that have exited. *)

val satisfies_step_property : t -> bool
(** Whether the current quiescent output counts satisfy the step
    property. *)

val values_issued : t -> int list
(** Every shared-counter value handed out, in completion order (for
    checking that counting delivered a gap-free, duplicate-free
    range). *)
