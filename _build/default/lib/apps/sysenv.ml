open Cm_machine

type t = {
  machine : Machine.t;
  prelude : Cm_core.Prelude.t;
  mem : Cm_memory.Shmem.t;
}

let make ?shmem_config machine =
  {
    machine;
    prelude = Cm_core.Prelude.create machine;
    mem = Cm_memory.Shmem.create ?config:shmem_config machine;
  }

let runtime t = Cm_core.Prelude.runtime t.prelude
