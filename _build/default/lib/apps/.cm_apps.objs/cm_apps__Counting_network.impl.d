lib/apps/counting_network.ml: Array Balancer_net Cm_core Cm_machine Cm_memory List Lock Machine Prelude Shmem Sysenv Thread
