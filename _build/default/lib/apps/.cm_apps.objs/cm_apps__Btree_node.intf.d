lib/apps/btree_node.mli:
