lib/apps/dht.mli: Cm_core Cm_machine Sysenv Thread
