lib/apps/btree_sm.ml: Array Btree_node Cm_engine Cm_machine Cm_memory Hashtbl List Lock Machine Printf Rng Rwlock Shmem Stats Sysenv Thread
