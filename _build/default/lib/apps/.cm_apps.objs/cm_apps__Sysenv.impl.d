lib/apps/sysenv.ml: Cm_core Cm_machine Cm_memory Machine
