lib/apps/btree_msg.mli: Btree_node Cm_core Cm_machine Prelude Sysenv Thread
