lib/apps/btree.mli: Btree_sm Cm_core Cm_machine Sysenv Thread
