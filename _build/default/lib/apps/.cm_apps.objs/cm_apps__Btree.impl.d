lib/apps/btree.ml: Btree_msg Btree_node Btree_sm Cm_core Prelude
