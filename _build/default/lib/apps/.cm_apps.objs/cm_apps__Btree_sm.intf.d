lib/apps/btree_sm.mli: Btree_node Cm_machine Sysenv Thread
