lib/apps/balancer_net.ml: Array List
