lib/apps/sysenv.mli: Cm_core Cm_machine Cm_memory Cm_runtime Machine
