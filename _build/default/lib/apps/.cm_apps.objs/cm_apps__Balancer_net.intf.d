lib/apps/balancer_net.mli:
