lib/apps/btree_node.ml: Array List
