lib/apps/dht.ml: Adaptive Array Cm_core Cm_machine Cm_memory Cm_runtime List Lock Prelude Runtime Shmem Sysenv Thread
