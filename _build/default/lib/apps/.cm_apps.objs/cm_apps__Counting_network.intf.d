lib/apps/counting_network.mli: Cm_core Cm_machine Sysenv Thread
