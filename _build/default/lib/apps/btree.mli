(** The distributed B-tree application (paper §4.2), over any of the
    three remote-access mechanisms.

    A single interface dispatching to {!Btree_msg} (RPC / computation
    migration, optionally with a software-replicated root) or
    {!Btree_sm} (cache-coherent shared memory).  The paper's standard
    instance: 10 000 keys bulk-loaded at fill ~0.7, fanout 100 (or 10
    for the contention-relief experiment), nodes placed uniformly at
    random across 48 processors, 16 requester threads elsewhere. *)

open Cm_machine

type mode = Messaging of Cm_core.Prelude.access | Shared_memory

val mode_name : mode -> string
(** ["rpc"], ["migrate"] or ["shared_memory"]. *)

type t

val create :
  Sysenv.t ->
  mode:mode ->
  fanout:int ->
  ?fill:float ->
  ?replicate_root:bool ->
  ?sm_read_mode:Btree_sm.read_mode ->
  ?placement_seed:int ->
  node_procs:int array ->
  keys:int list ->
  unit ->
  t
(** [create env ~mode ~fanout ~node_procs ~keys ()] bulk-loads [keys]
    (made distinct and sorted) with fill factor [fill] (default 0.7) and
    places nodes uniformly over [node_procs].  [replicate_root] (default
    false) enables WW90-style root replication; it only applies to
    messaging modes — shared memory already replicates in hardware. *)

val lookup : t -> int -> bool Thread.t
(** Membership test, run from a requester thread. *)

val insert : t -> int -> bool Thread.t
(** Insert a key; [false] when it was already present. *)

val mode : t -> mode
val height : t -> int
val root_children : t -> int
val root_home : t -> int
val splits : t -> int

val all_keys : t -> int list
(** All keys ascending (leaf chain; not simulated). *)

val check_invariants : t -> (unit, string) result
(** Structural soundness at quiescence. *)

val dump : t -> string
(** Indented rendering of the tree (debugging aid). *)
