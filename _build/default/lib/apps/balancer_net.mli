(** Pure construction of bitonic counting networks.

    A balancing network is a wiring of 2×2 balancers; a {e counting}
    network additionally satisfies the step property on its output wires:
    after any set of tokens has traversed the (quiescent) network, output
    wire [i] has seen [ceil ((k - i) / w)] of the [k] tokens.  Bitonic[w]
    (Aspnes, Herlihy, Shavit 1991) is built recursively from two
    Bitonic[w/2] networks feeding a Merger[w]; for [w = 8] it has 6
    layers of 4 balancers — the paper's "eight-by-eight counting network
    ... essentially a six-stage pipeline; each stage has four balancers".

    This module builds the wiring as a static description (used by every
    execution mode of {!Counting_network}) and provides a sequential
    reference simulator for validating the step property in tests. *)

type dest =
  | Exit of int  (** leave the network on output wire [i] *)
  | Balancer of int  (** proceed to balancer [i] *)

type t

val bitonic : int -> t
(** [bitonic w] is the Bitonic[w] counting network.  [w] must be a power
    of two, at least 2. *)

val width : t -> int
(** Number of input/output wires. *)

val n_balancers : t -> int
(** Total balancer count ([w/2 * depth]). *)

val depth : t -> int
(** Number of layers (6 for width 8). *)

val layer : t -> int -> int
(** [layer t b] is the layer index of balancer [b] (0-based from the
    inputs). *)

val input : t -> int -> dest
(** [input t w] is where a token entering on input wire [w] goes first. *)

val outputs : t -> int -> dest * dest
(** [outputs t b] is balancer [b]'s (top, bottom) destinations. *)

val feeder_of_exit : t -> int -> int
(** [feeder_of_exit t w] is the balancer whose output is exit wire [w]. *)

(** {1 Reference simulator} *)

type sim

val simulator : t -> sim
(** A fresh all-toggles-up sequential simulator of the network. *)

val route : sim -> int -> int
(** [route s wire] runs one token from input [wire] to its exit wire,
    flipping toggles on the way. *)

val step_property : counts:int array -> bool
(** [step_property ~counts] checks the step property: sum [k] of the
    per-output-wire token [counts] satisfies
    [counts.(i) = ceil ((k - i) / w)] for every wire. *)
