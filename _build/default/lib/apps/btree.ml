open Cm_core

type mode = Messaging of Prelude.access | Shared_memory

let mode_name = function
  | Messaging Prelude.Rpc -> "rpc"
  | Messaging Prelude.Migrate -> "migrate"
  | Shared_memory -> "shared_memory"

type repr = Msg of Btree_msg.t | Sm of Btree_sm.t

type t = { mode : mode; repr : repr }

let create env ~mode ~fanout ?(fill = 0.7) ?(replicate_root = false) ?sm_read_mode
    ?(placement_seed = 1789) ~node_procs ~keys () =
  let plan = Btree_node.build_plan ~keys ~fanout ~fill in
  let repr =
    match mode with
    | Messaging access ->
      Msg
        (Btree_msg.create env ~access ~fanout ~replicate_root ~plan ~node_procs ~placement_seed)
    | Shared_memory ->
      if replicate_root then
        invalid_arg "Btree.create: replicate_root applies to messaging modes only";
      Sm
        (Btree_sm.create env ?read_mode:sm_read_mode ~fanout ~plan ~node_procs ~placement_seed
           ())
  in
  { mode; repr }

let lookup t key = match t.repr with Msg b -> Btree_msg.lookup b key | Sm b -> Btree_sm.lookup b key

let insert t key = match t.repr with Msg b -> Btree_msg.insert b key | Sm b -> Btree_sm.insert b key

let mode t = t.mode

let height t = match t.repr with Msg b -> Btree_msg.height b | Sm b -> Btree_sm.height b

let root_children t =
  match t.repr with Msg b -> Btree_msg.root_children b | Sm b -> Btree_sm.root_children b

let splits t = match t.repr with Msg b -> Btree_msg.splits b | Sm b -> Btree_sm.splits b

let root_home t =
  match t.repr with Msg b -> Btree_msg.root_home b | Sm b -> Btree_sm.root_home b

let all_keys t = match t.repr with Msg b -> Btree_msg.all_keys b | Sm b -> Btree_sm.all_keys b

let check_invariants t =
  match t.repr with Msg b -> Btree_msg.check_invariants b | Sm b -> Btree_sm.check_invariants b

let dump t =
  match t.repr with
  | Msg b -> Btree_msg.dump b
  | Sm _ -> "(dump: not implemented for shared-memory trees)"
