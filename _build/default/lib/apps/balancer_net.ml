type dest = Exit of int | Balancer of int

(* Construction-time graph: ports linked by forwarding, resolved into the
   flat [dest] description once the recursion is done. *)
type target = Unset | Exit_at of int | Forward of port | Into of int

and port = { mutable target : target }

type t = {
  width : int;
  inputs : dest array;
  outs : (dest * dest) array;  (* per balancer: top, bottom *)
  layers : int array;  (* per balancer *)
  depth : int;
}

let new_port () = { target = Unset }

(* A balancer under construction: id plus its two output ports. *)
type building = { next_id : int ref; tops : port list ref; bots : port list ref }

let fresh_balancer b =
  let id = !(b.next_id) in
  incr b.next_id;
  let top = new_port () and bot = new_port () in
  b.tops := top :: !(b.tops);
  b.bots := bot :: !(b.bots);
  (id, top, bot)

let connect p q = p.target <- Forward q

(* Merger[w]: merges two step sequences (each of width w/2) into one.
   AHS: for w > 2, even-indexed wires of the first half and odd-indexed
   wires of the second half feed one Merger[w/2]; the remaining wires
   feed the other; a final rank of w/2 balancers pairs their outputs. *)
let rec merger b w : port array * port array =
  if w = 2 then begin
    let id, top, bot = fresh_balancer b in
    ([| { target = Into id }; { target = Into id } |], [| top; bot |])
  end
  else begin
    let k = w / 2 in
    let a_in, a_out = merger b k in
    let b_in, b_out = merger b k in
    let inputs = Array.init w (fun _ -> new_port ()) in
    for j = 0 to (k / 2) - 1 do
      connect inputs.(2 * j) a_in.(j);
      connect inputs.((2 * j) + 1) b_in.(j);
      connect inputs.(k + (2 * j)) b_in.((k / 2) + j);
      connect inputs.(k + (2 * j) + 1) a_in.((k / 2) + j)
    done;
    let outputs = Array.init w (fun _ -> new_port ()) in
    for i = 0 to k - 1 do
      let id, top, bot = fresh_balancer b in
      connect a_out.(i) { target = Into id };
      connect b_out.(i) { target = Into id };
      outputs.(2 * i) <- top;
      outputs.((2 * i) + 1) <- bot
    done;
    (inputs, outputs)
  end

let rec bitonic_build b w : port array * port array =
  if w = 1 then begin
    let p = new_port () in
    ([| p |], [| p |])
  end
  else begin
    let half = w / 2 in
    let top_in, top_out = bitonic_build b half in
    let bot_in, bot_out = bitonic_build b half in
    let m_in, m_out = merger b w in
    for i = 0 to half - 1 do
      connect top_out.(i) m_in.(i);
      connect bot_out.(i) m_in.(half + i)
    done;
    (Array.append top_in bot_in, m_out)
  end

let rec resolve p =
  match p.target with
  | Unset -> invalid_arg "Balancer_net: dangling port"
  | Exit_at i -> Exit i
  | Into id -> Balancer id
  | Forward q -> resolve q

let is_power_of_two w = w > 0 && w land (w - 1) = 0

let bitonic width =
  if width < 2 || not (is_power_of_two width) then
    invalid_arg "Balancer_net.bitonic: width must be a power of two >= 2";
  let b = { next_id = ref 0; tops = ref []; bots = ref [] } in
  let inputs, outputs = bitonic_build b width in
  Array.iteri (fun i p -> p.target <- Exit_at i) outputs;
  let n = !(b.next_id) in
  (* Lists were built in reverse creation order. *)
  let tops = Array.of_list (List.rev !(b.tops)) in
  let bots = Array.of_list (List.rev !(b.bots)) in
  let outs = Array.init n (fun i -> (resolve tops.(i), resolve bots.(i))) in
  let ins = Array.map resolve inputs in
  (* Layer = longest path from any input, computed by relaxation. *)
  let layers = Array.make n 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let bump = function
        | Balancer j ->
          if layers.(j) < layers.(i) + 1 then begin
            layers.(j) <- layers.(i) + 1;
            changed := true
          end
        | Exit _ -> ()
      in
      let top, bot = outs.(i) in
      bump top;
      bump bot
    done
  done;
  let depth = 1 + Array.fold_left max 0 layers in
  { width; inputs = ins; outs; layers; depth }

let width t = t.width

let n_balancers t = Array.length t.outs

let depth t = t.depth

let layer t b = t.layers.(b)

let input t w = t.inputs.(w)

let outputs t b = t.outs.(b)

let feeder_of_exit t w =
  let found = ref (-1) in
  Array.iteri
    (fun b (top, bot) ->
      if top = Exit w || bot = Exit w then found := b)
    t.outs;
  if !found < 0 then invalid_arg "Balancer_net.feeder_of_exit: no such exit";
  !found

type sim = { net : t; toggles : bool array }

let simulator net = { net; toggles = Array.make (n_balancers net) false }

let route s wire =
  let rec go = function
    | Exit w -> w
    | Balancer b ->
      let up = not s.toggles.(b) in
      s.toggles.(b) <- up;
      let top, bot = s.net.outs.(b) in
      go (if up then top else bot)
  in
  go s.net.inputs.(wire)

let step_property ~counts =
  let w = Array.length counts in
  let k = Array.fold_left ( + ) 0 counts in
  let ok = ref true in
  for i = 0 to w - 1 do
    if counts.(i) <> (k - i + w - 1) / w then ok := false
  done;
  !ok
