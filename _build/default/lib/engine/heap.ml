type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let initial_capacity = 16

let create ~cmp = { cmp; data = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h x =
  if Array.length h.data = 0 then h.data <- Array.make initial_capacity x
  else begin
    let data = Array.make (2 * Array.length h.data) x in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

(* Restore the heap property upward from index [i]. *)
let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

(* Restore the heap property downward from index [i]. *)
let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = if left < h.size && h.cmp h.data.(left) h.data.(i) < 0 then left else i in
  let smallest =
    if right < h.size && h.cmp h.data.(right) h.data.(smallest) < 0 then right else smallest
  in
  if smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(smallest);
    h.data.(smallest) <- tmp;
    sift_down h smallest
  end

let push h x =
  if h.size = Array.length h.data then grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let min = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some min
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h =
  h.data <- [||];
  h.size <- 0

let iter f h =
  for i = 0 to h.size - 1 do
    f h.data.(i)
  done

let to_sorted_list h =
  let rec drain acc = match pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  drain []
