(** Imperative binary min-heaps.

    The heap is polymorphic in its element type; the ordering is fixed at
    creation time by a [cmp] function ([cmp a b < 0] means [a] is extracted
    before [b]).  Used as the event queue of the simulator, where determinism
    requires a total order on elements. *)

type 'a t
(** A mutable min-heap of elements of type ['a]. *)

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp]. *)

val length : 'a t -> int
(** [length h] is the number of elements currently in [h]. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val push : 'a t -> 'a -> unit
(** [push h x] inserts [x] into [h].  O(log n) amortized. *)

val peek : 'a t -> 'a option
(** [peek h] is the minimum element of [h], without removing it. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element of [h].  O(log n). *)

val pop_exn : 'a t -> 'a
(** [pop_exn h] is like {!pop} but raises [Invalid_argument] on an empty
    heap. *)

val clear : 'a t -> unit
(** [clear h] removes every element from [h]. *)

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f h] applies [f] to every element of [h] in unspecified order. *)

val to_sorted_list : 'a t -> 'a list
(** [to_sorted_list h] drains [h], returning its elements in ascending
    order.  The heap is empty afterwards. *)
