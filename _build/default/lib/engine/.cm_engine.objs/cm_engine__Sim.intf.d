lib/engine/sim.mli:
