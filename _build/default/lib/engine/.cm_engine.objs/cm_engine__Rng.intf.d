lib/engine/rng.mli:
