lib/engine/trace.ml: Format Printf
