lib/engine/heap.mli:
