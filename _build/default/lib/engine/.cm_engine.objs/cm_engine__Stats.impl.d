lib/engine/stats.ml: Format Hashtbl List Stdlib String
