(** Discrete-event simulation core.

    A simulator owns a virtual clock (integer cycles) and a queue of pending
    events.  Events scheduled for the same cycle fire in scheduling order,
    making every run deterministic.  The clock only advances when the next
    event is strictly later than the current time — there is no real-time
    component. *)

type t
(** A simulator instance. *)

val create : unit -> t
(** [create ()] is a fresh simulator with the clock at cycle 0 and no
    pending events. *)

val now : t -> int
(** [now t] is the current cycle. *)

val at : t -> int -> (unit -> unit) -> unit
(** [at t time f] schedules [f] to run at absolute cycle [time].  Raises
    [Invalid_argument] if [time] is in the past. *)

val after : t -> int -> (unit -> unit) -> unit
(** [after t delay f] schedules [f] to run [delay >= 0] cycles from now. *)

val pending : t -> int
(** [pending t] is the number of events not yet fired. *)

exception Stop
(** Raised by an event handler to end the run immediately (the remaining
    events stay queued but are not fired). *)

val run : ?until:int -> t -> unit
(** [run ?until t] fires events in order until the queue is empty, a
    handler raises {!Stop}, or the next event is later than [until].  When
    stopping because of [until], the clock is left at [until]. *)

val step : t -> bool
(** [step t] fires exactly one event; [false] if the queue was empty. *)

val events_fired : t -> int
(** [events_fired t] is the total number of events executed so far. *)
