open Cm_engine

type t = {
  sim : Sim.t;
  topo : Topology.t;
  costs : Costs.t;
  stats : Stats.t;
  contention : bool;
  link_bandwidth : int;  (* words per cycle per link *)
  links : (int * int, int ref) Hashtbl.t;  (* directed link -> free-at time *)
  mutable words : int;
  mutable messages : int;
}

let create ?(contention = false) ?(link_bandwidth = 1) ~sim ~topo ~costs ~stats () =
  if link_bandwidth <= 0 then invalid_arg "Network.create: link bandwidth must be positive";
  {
    sim;
    topo;
    costs;
    stats;
    contention;
    link_bandwidth;
    links = Hashtbl.create 256;
    words = 0;
    messages = 0;
  }

let link_free_at t link =
  match Hashtbl.find_opt t.links link with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.links link r;
    r

(* Store-and-forward over the message's route: each link is occupied for
   the message's transmission time and messages sharing a link queue
   behind one another. *)
let contended_latency t ~src ~dst ~wire_words =
  let occupancy = (wire_words + t.link_bandwidth - 1) / t.link_bandwidth in
  let now = Sim.now t.sim in
  let cursor = ref (now + t.costs.Costs.net_base) in
  List.iter
    (fun link ->
      let free = link_free_at t link in
      let start = max !cursor !free in
      free := start + occupancy;
      cursor := start + occupancy + t.costs.Costs.net_per_hop)
    (Topology.route t.topo ~src ~dst);
  if !cursor - now > 0 then begin
    Stats.add t.stats "net.contended_cycles" (!cursor - now);
    !cursor - now
  end
  else 1

let send t ~src ~dst ~words ~kind deliver =
  if words < 0 then invalid_arg "Network.send: negative size";
  let hops = Topology.hops t.topo ~src ~dst in
  let wire_words = words + t.costs.Costs.header_words in
  let latency =
    if t.contention then contended_latency t ~src ~dst ~wire_words
    else Costs.transit t.costs ~hops ~words
  in
  t.words <- t.words + wire_words;
  
  t.messages <- t.messages + 1;
  Stats.add t.stats "net.words" wire_words;
  Stats.incr t.stats "net.messages";
  Stats.add t.stats ("net.words." ^ kind) wire_words;
  Stats.incr t.stats ("net.messages." ^ kind);
  if Trace.enabled Trace.Events then
    Trace.eventf ~time:(Sim.now t.sim) "net: %s %d->%d %dw (%d hops, %d cyc)" kind src dst
      wire_words hops latency;
  Sim.after t.sim latency deliver;
  latency

let total_words t = t.words

let total_messages t = t.messages

let words_of_kind t kind = Stats.get t.stats ("net.words." ^ kind)

let messages_of_kind t kind = Stats.get t.stats ("net.messages." ^ kind)

let bandwidth_per_10_cycles t ~now =
  if now = 0 then 0. else 10. *. float_of_int t.words /. float_of_int now
