(** Cycle-cost model of the simulated machine's message-passing runtime.

    Every constant is taken from (or calibrated against) Table 5 of the
    paper, which breaks down the 651 cycles of one single-activation
    migration in the counting network (32-byte payload).  Costs with a
    natural per-word component (packet copy, marshaling, unmarshaling) are
    split into [base + per_word * words] so that messages of other sizes
    scale sensibly.

    The "hardware support" variants reproduce the paper's two estimates:
    {ul
    {- [ni_registers] — a Henry-Joerg register-mapped network interface:
       packet copies drop to ~12 cycles, packet allocation disappears
       (messages are composed in registers), and marshaling/unmarshaling
       costs are halved;}
    {- [goid_hardware] — J-Machine-style hardware translation of global
       object identifiers: the translation cost disappears.}}
    The paper's "w/HW" experiment rows enable both. *)

type t = {
  (* Receiver-side pipeline, charged on the receiving CPU. *)
  copy_packet_base : int;
  copy_packet_per_word : int;
  thread_creation : int;
  linkage_recv : int;
  unmarshal_base : int;
  unmarshal_per_word : int;
  goid_translation : int;
  scheduler : int;  (** charged by the processor on every task dispatch *)
  forwarding_check : int;  (** locality check, charged on every annotated call *)
  alloc_packet_recv : int;
  (* Sender-side pipeline, charged on the sending CPU. *)
  linkage_send : int;
  alloc_packet_send : int;
  msg_send : int;
  marshal_base : int;
  marshal_per_word : int;
  (* Network parameters. *)
  header_words : int;  (** words of header added to every message *)
  net_base : int;  (** fixed wire latency *)
  net_per_hop : int;  (** additional latency per mesh hop *)
  net_per_word : int;  (** additional latency per word carried *)
  (* Reply handling: resuming a blocked thread does not create a thread. *)
  reply_recv_extra : int;  (** linkage to re-enter the blocked caller *)
}

val software : t
(** The paper's measured all-software Prelude runtime (Table 5). *)

val with_ni_registers : t -> t
(** Apply the register-mapped network-interface estimate to a model. *)

val with_goid_hardware : t -> t
(** Apply the hardware object-identifier-translation estimate. *)

val hardware : t
(** [software] with both hardware estimates applied — the paper's "w/HW". *)

(** {1 Derived quantities} *)

val copy_packet : t -> words:int -> int
(** Cost of copying an incoming packet of [words] payload words. *)

val marshal : t -> words:int -> int
(** Sender-side marshaling cost for [words] payload words. *)

val unmarshal : t -> words:int -> int
(** Receiver-side unmarshaling cost for [words] payload words. *)

val send_pipeline : t -> words:int -> int
(** Total sender-side CPU cycles to emit one message ([linkage + alloc +
    marshal + send]). *)

val recv_pipeline : t -> words:int -> new_thread:bool -> int
(** Total receiver-side CPU cycles to accept one message, excluding the
    scheduler dispatch (charged separately by the processor) and the
    forwarding check (charged by the runtime once per annotated call).
    [new_thread] distinguishes a fresh handler (RPC request, migration
    arrival — pays thread creation) from a reply that resumes a blocked
    thread. *)

val transit : t -> hops:int -> words:int -> int
(** Wire latency of a message over [hops] mesh hops carrying [words]
    payload words (header included in the size term). *)

val breakdown :
  t -> words:int -> hops:int -> user_code:int -> (string * int) list
(** [breakdown t ~words ~hops ~user_code] is the per-category cycle list
    for one activation migration, in the layout of the paper's Table 5
    (including the "User code", "Network transit", and aggregate rows).
    The categories sum to the end-to-end latency of one migration hop. *)
