lib/machine/machine.ml: Array Cm_engine Costs Network Printf Processor Rng Sim Stats Thread Topology
