lib/machine/machine.mli: Cm_engine Costs Network Processor Rng Sim Stats Thread Topology
