lib/machine/topology.mli:
