lib/machine/processor.mli: Cm_engine Sim Stats
