lib/machine/costs.mli:
