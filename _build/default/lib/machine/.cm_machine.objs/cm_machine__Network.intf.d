lib/machine/network.mli: Cm_engine Costs Sim Stats Topology
