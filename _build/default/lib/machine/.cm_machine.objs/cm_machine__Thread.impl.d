lib/machine/thread.ml: Cm_engine Network Processor Rng Sim
