lib/machine/thread.mli: Cm_engine Network Processor Rng
