lib/machine/processor.ml: Cm_engine Queue Sim Stats
