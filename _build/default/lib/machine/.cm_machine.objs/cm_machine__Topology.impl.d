lib/machine/topology.ml: List Printf
