lib/machine/costs.ml: Printf
