lib/machine/network.ml: Cm_engine Costs Hashtbl List Sim Stats Topology Trace
