type t = {
  copy_packet_base : int;
  copy_packet_per_word : int;
  thread_creation : int;
  linkage_recv : int;
  unmarshal_base : int;
  unmarshal_per_word : int;
  goid_translation : int;
  scheduler : int;
  forwarding_check : int;
  alloc_packet_recv : int;
  linkage_send : int;
  alloc_packet_send : int;
  msg_send : int;
  marshal_base : int;
  marshal_per_word : int;
  header_words : int;
  net_base : int;
  net_per_hop : int;
  net_per_word : int;
  reply_recv_extra : int;
}

(* Calibrated so that an 8-word (32-byte) payload reproduces the paper's
   Table 5 rows: copy 76 = 4 + 9*8, unmarshal 51 = 11 + 5*8,
   marshal 22 = 6 + 2*8, transit 17 = 5 + 2 hops + (8+2) words. *)
let software =
  {
    copy_packet_base = 4;
    copy_packet_per_word = 9;
    thread_creation = 66;
    linkage_recv = 66;
    unmarshal_base = 11;
    unmarshal_per_word = 5;
    goid_translation = 36;
    scheduler = 36;
    forwarding_check = 23;
    alloc_packet_recv = 16;
    linkage_send = 44;
    alloc_packet_send = 35;
    msg_send = 23;
    marshal_base = 6;
    marshal_per_word = 2;
    header_words = 2;
    net_base = 5;
    net_per_hop = 1;
    net_per_word = 1;
    reply_recv_extra = 44;
  }

(* Register-mapped network interface (Henry-Joerg): copies shrink to ~12
   cycles for a 32-byte packet, packets are composed in registers (no
   allocation), and marshaling costs are roughly halved. *)
let with_ni_registers c =
  {
    c with
    copy_packet_base = 4;
    copy_packet_per_word = 1;
    alloc_packet_recv = 0;
    alloc_packet_send = 0;
    marshal_base = 3;
    marshal_per_word = 1;
    unmarshal_base = 2;
    unmarshal_per_word = 3;
  }

let with_goid_hardware c = { c with goid_translation = 0 }

let hardware = with_goid_hardware (with_ni_registers software)

let copy_packet c ~words = c.copy_packet_base + (c.copy_packet_per_word * words)

let marshal c ~words = c.marshal_base + (c.marshal_per_word * words)

let unmarshal c ~words = c.unmarshal_base + (c.unmarshal_per_word * words)

let send_pipeline c ~words =
  c.linkage_send + c.alloc_packet_send + marshal c ~words + c.msg_send

(* The forwarding (locality) check is charged by the runtime once per
   annotated call — for a migrated activation that is the check its next
   access performs at the destination — so it is not part of the receive
   pipeline itself. *)
let recv_pipeline c ~words ~new_thread =
  let creation = if new_thread then c.thread_creation else c.reply_recv_extra in
  copy_packet c ~words + creation + c.linkage_recv
  + unmarshal c ~words
  + c.goid_translation + c.alloc_packet_recv

let transit c ~hops ~words = c.net_base + (c.net_per_hop * hops) + (c.net_per_word * (words + c.header_words))

let breakdown c ~words ~hops ~user_code =
  let copy = copy_packet c ~words in
  let unm = unmarshal c ~words in
  let mar = marshal c ~words in
  let receiver_total =
    copy + c.thread_creation + c.linkage_recv + unm + c.goid_translation + c.scheduler
    + c.forwarding_check + c.alloc_packet_recv
  in
  let sender_total = c.linkage_send + c.alloc_packet_send + c.msg_send + mar in
  let transit_cycles = transit c ~hops ~words in
  let total = user_code + transit_cycles + receiver_total + sender_total in
  [
    ("Total time", total);
    ("User code", user_code);
    ("Network transit", transit_cycles);
    ("Message overhead total", receiver_total + sender_total);
    ("Receiver total", receiver_total);
    (Printf.sprintf "Copy packet (%d bytes)" (words * 4), copy);
    ("Thread creation", c.thread_creation);
    ("Procedure linkage (recv)", c.linkage_recv);
    ("Unmarshaling", unm);
    ("Object ID translation", c.goid_translation);
    ("Scheduler", c.scheduler);
    ("Forwarding check", c.forwarding_check);
    ("Allocate packet (recv)", c.alloc_packet_recv);
    ("Sender total", sender_total);
    ("Procedure linkage (send)", c.linkage_send);
    ("Allocate packet (send)", c.alloc_packet_send);
    ("Message send", c.msg_send);
    ("Marshaling", mar);
  ]
