type t = {
  ops : int;
  measured_cycles : int;
  words : int;
  messages : int;
  throughput : float;
  bandwidth : float;
  cache_hit_rate : float;
  mean_latency : float;
  max_latency : int;
}

let compute ~ops ~measured_cycles ~words ~messages ~cache_hit_rate ?(mean_latency = nan)
    ?(max_latency = 0) () =
  let cycles = float_of_int (max 1 measured_cycles) in
  {
    ops;
    measured_cycles;
    words;
    messages;
    throughput = 1000. *. float_of_int ops /. cycles;
    bandwidth = 10. *. float_of_int words /. cycles;
    cache_hit_rate;
    mean_latency;
    max_latency;
  }

let pp ppf t =
  Format.fprintf ppf "%d ops in %d cycles: %.4f ops/1000cyc, %.2f words/10cyc (%d msgs)" t.ops
    t.measured_cycles t.throughput t.bandwidth t.messages
