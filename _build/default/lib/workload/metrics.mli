(** Results of one measured run, in the paper's units. *)

type t = {
  ops : int;  (** requests completed inside the measurement window *)
  measured_cycles : int;  (** window length *)
  words : int;  (** network words injected inside the window *)
  messages : int;  (** messages injected inside the window *)
  throughput : float;  (** operations per 1000 cycles (Figures 2, Tables 1/3) *)
  bandwidth : float;  (** words per 10 cycles (Figure 3, Tables 2/4) *)
  cache_hit_rate : float;  (** machine-wide, [nan] when no cache was used *)
  mean_latency : float;  (** mean per-operation latency in cycles ([nan] if untracked) *)
  max_latency : int;  (** worst per-operation latency observed (0 if untracked) *)
}

val compute :
  ops:int ->
  measured_cycles:int ->
  words:int ->
  messages:int ->
  cache_hit_rate:float ->
  ?mean_latency:float ->
  ?max_latency:int ->
  unit ->
  t
(** Derive the rates from raw counts. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering. *)
