lib/workload/detail.ml: Cm_engine Cm_machine Format List Machine Network Processor Stats String
