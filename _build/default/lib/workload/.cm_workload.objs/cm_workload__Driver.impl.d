lib/workload/driver.ml: Cm_engine Cm_machine Machine Metrics Network Sim Stats Thread
