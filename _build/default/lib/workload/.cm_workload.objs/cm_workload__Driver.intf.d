lib/workload/driver.mli: Cm_machine Machine Metrics Thread
