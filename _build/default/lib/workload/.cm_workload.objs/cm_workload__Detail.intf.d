lib/workload/detail.mli: Cm_machine Format Machine
