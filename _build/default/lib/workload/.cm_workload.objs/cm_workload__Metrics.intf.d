lib/workload/metrics.mli: Format
