lib/workload/metrics.ml: Format
