(** Closed-loop request drivers.

    Reproduces the paper's measurement setup: a fixed set of requester
    threads, each on its own processor, repeatedly issuing a request and
    then "thinking" for a fixed number of cycles (0 or 10 000 in the
    paper).  The run lasts a fixed horizon of cycles; operations and
    network traffic are counted inside a measurement window that starts
    after an optional warmup (letting caches and replicas fill). *)

open Cm_machine

type spec = {
  requesters : int;  (** number of requester threads *)
  first_proc : int;  (** requester [i] runs on processor [first_proc + i] *)
  think : int;  (** cycles between a completion and the next request *)
  warmup : int;  (** cycles before the measurement window opens *)
  horizon : int;  (** total simulated cycles *)
}

val run : Machine.t -> spec -> (int -> unit Thread.t) -> Metrics.t
(** [run machine spec request] drives [spec.requesters] threads, thread
    [i] repeatedly running [request i] until the horizon, and returns the
    window's metrics.  [request i] must be one complete operation
    (synchronous; its completion is the unit counted). *)
