lib/core/prelude.ml: Cm_machine Cm_runtime Machine Processor Runtime Thread
