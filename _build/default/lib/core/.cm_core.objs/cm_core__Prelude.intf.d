lib/core/prelude.mli: Cm_machine Cm_runtime Machine Runtime Thread
