(** Figure 2: counting-network throughput vs number of requesters, for
    the paper's five schemes at both think times. *)

val run : ?quick:bool -> unit -> unit
