(** B-tree experiment runs (paper §4.2).

    The paper's setup: a tree preloaded with 10 000 keys (nodes of at
    most [fanout] keys, placed uniformly at random over 48 processors)
    and 16 requester threads on separate processors issuing a mix of
    lookups and inserts with a fixed think time. *)

type config = {
  requesters : int;
  node_procs : int;
  n_keys : int;
  fanout : int;
  fill : float;
  lookup_fraction : float;  (** share of operations that are lookups *)
  key_space : int;  (** keys drawn uniformly from [\[0, key_space)] *)
  think : int;
  horizon : int;
  warmup : int;
  seed : int;
}

val default : config
(** The paper's fanout-100 setup: 10 000 keys, 48 node processors, 16
    requesters, 50% lookups, zero think time. *)

val fanout10 : config
(** The §4.2 contention-relief variant: nodes of at most 10 keys. *)

val run : Scheme.t -> config -> Cm_workload.Metrics.t
(** Build machine + tree for the scheme and drive the request mix. *)

val run_with_machine : Scheme.t -> config -> Cm_machine.Machine.t * Cm_workload.Metrics.t
(** Like {!run}, also returning the machine for post-run diagnostics
    ({!Cm_workload.Detail}). *)
