(* Table 1: B-tree throughput (operations / 1000 cycles), zero think
   time, all nine schemes. *)

let run ?(quick = false) () =
  Report.print_header "Table 1: B-tree throughput, 0-cycle think time";
  let ms = Btree_tables.measure ~quick ~think:0 Btree_tables.all_schemes in
  Report.print_table ~metric:"ops/1000cyc"
    (Btree_tables.rows ~paper:Btree_tables.paper_throughput_t1 ~metric:`Throughput ms);
  Report.print_note
    "Paper shape: SM first; CP beats RPC throughout; HW support and root replication";
  Report.print_note "each close part of the gap, and CP w/repl.&HW approaches SM."
