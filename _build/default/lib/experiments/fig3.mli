(** Figure 3: counting-network bandwidth (words/10 cycles) vs number of
    requesters, for RPC, shared memory and computation migration. *)

val run : ?quick:bool -> unit -> unit
