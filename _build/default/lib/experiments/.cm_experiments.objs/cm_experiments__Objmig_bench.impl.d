lib/experiments/objmig_bench.ml: Array Cm_machine Cm_runtime Costs List Machine Network Objmig Objspace Printf Report Runtime Thread
