lib/experiments/registry.ml: Ablations Dht_bench Fanout10 Fig1 Fig2 Fig3 List Objmig_bench Table1 Table2 Table3 Table4 Table5
