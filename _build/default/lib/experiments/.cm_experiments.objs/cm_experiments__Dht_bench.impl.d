lib/experiments/dht_bench.ml: Array Cm_apps Cm_core Cm_engine Cm_machine Cm_workload Costs Dht List Machine Printf Report Rng Sysenv Thread
