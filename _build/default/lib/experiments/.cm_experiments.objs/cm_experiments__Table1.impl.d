lib/experiments/table1.ml: Btree_tables Report
