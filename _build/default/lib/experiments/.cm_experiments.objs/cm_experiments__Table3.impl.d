lib/experiments/table3.ml: Btree_tables Report
