lib/experiments/table5.ml: Cm_machine Cm_runtime Costs List Machine Printf Report Runtime Thread
