lib/experiments/ablations.mli:
