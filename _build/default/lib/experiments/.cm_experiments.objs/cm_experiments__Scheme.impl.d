lib/experiments/scheme.ml: Cm_apps Cm_core Cm_machine Costs Printf String
