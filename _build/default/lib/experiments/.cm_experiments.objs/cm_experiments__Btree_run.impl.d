lib/experiments/btree_run.ml: Array Btree Cm_apps Cm_engine Cm_machine Cm_workload Hashtbl Machine Rng Scheme Sysenv Thread
