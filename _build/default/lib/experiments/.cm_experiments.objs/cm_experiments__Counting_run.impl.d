lib/experiments/counting_run.ml: Cm_apps Cm_machine Cm_workload Counting_network Machine Scheme Sysenv
