lib/experiments/counting_run.mli: Cm_machine Cm_workload Scheme
