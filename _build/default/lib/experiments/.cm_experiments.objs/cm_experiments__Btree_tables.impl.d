lib/experiments/btree_tables.ml: Btree_run Cm_workload List Report Scheme
