lib/experiments/table4.ml: Btree_tables Report
