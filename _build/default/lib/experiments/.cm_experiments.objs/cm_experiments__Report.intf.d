lib/experiments/report.mli:
