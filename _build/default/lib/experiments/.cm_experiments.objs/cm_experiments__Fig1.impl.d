lib/experiments/fig1.ml: Cm_machine Cm_memory Cm_runtime Costs List Machine Network Printf Report Runtime Thread
