lib/experiments/btree_run.mli: Cm_machine Cm_workload Scheme
