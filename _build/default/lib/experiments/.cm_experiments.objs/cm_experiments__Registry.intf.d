lib/experiments/registry.mli:
