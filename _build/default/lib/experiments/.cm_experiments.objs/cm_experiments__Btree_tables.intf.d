lib/experiments/btree_tables.mli: Btree_run Cm_workload Report Scheme
