lib/experiments/scheme.mli: Cm_apps Cm_machine
