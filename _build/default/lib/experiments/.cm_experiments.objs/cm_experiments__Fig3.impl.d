lib/experiments/fig3.ml: Cm_workload Counting_run List Printf Report Scheme
