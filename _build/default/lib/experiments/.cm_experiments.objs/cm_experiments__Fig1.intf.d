lib/experiments/fig1.mli: Cm_runtime
