lib/experiments/table2.ml: Btree_tables Report
