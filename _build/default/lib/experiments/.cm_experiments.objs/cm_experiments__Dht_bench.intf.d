lib/experiments/dht_bench.mli:
