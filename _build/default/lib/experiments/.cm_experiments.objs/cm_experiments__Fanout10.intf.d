lib/experiments/fanout10.mli:
