lib/experiments/objmig_bench.mli:
