lib/experiments/fig2.ml: Cm_workload Counting_run List Printf Report Scheme
