lib/experiments/fanout10.ml: Btree_run Btree_tables Cm_workload List Report Scheme
