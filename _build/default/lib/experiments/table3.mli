(** Table 3 of the paper's B-tree evaluation (see {!Btree_tables}). *)

val run : ?quick:bool -> unit -> unit
