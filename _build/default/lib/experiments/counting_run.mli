(** Counting-network experiment runs (paper §4.1).

    Layout as in the paper: the width-8 bitonic network's 24 balancers on
    processors 0-23 (one each), requester threads on their own
    processors above. *)

type config = {
  requesters : int;
  think : int;
  horizon : int;
  warmup : int;
  seed : int;
}

val default : config
(** 16 requesters, zero think time, 300k-cycle horizon, 20k warmup. *)

val run : Scheme.t -> config -> Cm_workload.Metrics.t
(** Build the machine and network for the scheme and drive it. *)

val run_with_machine : Scheme.t -> config -> Cm_machine.Machine.t * Cm_workload.Metrics.t
(** Like {!run}, also returning the machine for post-run diagnostics
    ({!Cm_workload.Detail}). *)
