(* Table 4: B-tree bandwidth with a 10000-cycle think time. *)

let run ?(quick = false) () =
  Report.print_header "Table 4: B-tree bandwidth, 10000-cycle think time";
  let ms = Btree_tables.measure ~quick ~think:10_000 Btree_tables.think_schemes in
  Report.print_table ~metric:"words/10cyc"
    (Btree_tables.rows ~paper:Btree_tables.paper_bandwidth_t4 ~metric:`Bandwidth ms);
  Report.print_note
    "Paper shape: shared memory still uses several times the bandwidth of computation";
  Report.print_note "migration because it must keep caches coherent."
