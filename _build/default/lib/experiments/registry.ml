type entry = { id : string; title : string; run : ?quick:bool -> unit -> unit }

let all =
  [
    { id = "fig1"; title = "Figure 1: message-count model"; run = Fig1.run };
    { id = "fig2"; title = "Figure 2: counting-network throughput"; run = Fig2.run };
    { id = "fig3"; title = "Figure 3: counting-network bandwidth"; run = Fig3.run };
    { id = "table1"; title = "Table 1: B-tree throughput (think 0)"; run = Table1.run };
    { id = "table2"; title = "Table 2: B-tree bandwidth (think 0)"; run = Table2.run };
    { id = "table3"; title = "Table 3: B-tree throughput (think 10000)"; run = Table3.run };
    { id = "table4"; title = "Table 4: B-tree bandwidth (think 10000)"; run = Table4.run };
    { id = "table5"; title = "Table 5: migration cost breakdown"; run = Table5.run };
    { id = "fanout10"; title = "S4.2: fanout-10 B-tree"; run = Fanout10.run };
    { id = "ablations"; title = "Ablations of the design choices"; run = Ablations.run };
    { id = "dht"; title = "Extension: hash table across mechanisms"; run = Dht_bench.run };
    {
      id = "objmig";
      title = "Extension: object migration vs computation migration";
      run = Objmig_bench.run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_all ?quick () = List.iter (fun e -> e.run ?quick ()) all
