(** Formatting of experiment output: measured values printed next to the
    paper's published values so shape agreement is visible at a glance. *)

type row = {
  label : string;
  paper : float option;  (** the published value, when the paper gives one *)
  measured : float;
}

val print_header : string -> unit
(** Banner with the experiment's title. *)

val print_table : metric:string -> row list -> unit
(** Aligned table: label, paper value (or [-]), measured value, and the
    measured/paper ratio when both exist. *)

val print_series :
  x_label:string -> metric:string -> xs:int list -> (string * float list) list -> unit
(** A figure as a text table: one column per x value, one line per
    curve. *)

val print_note : string -> unit
(** Free-form commentary line. *)
