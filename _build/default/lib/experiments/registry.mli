(** The experiment registry: every table and figure of the paper's
    evaluation, addressable by name for the CLI and the benchmark
    harness. *)

type entry = {
  id : string;  (** CLI name, e.g. ["fig2"], ["table1"] *)
  title : string;
  run : ?quick:bool -> unit -> unit;
}

val all : entry list
(** Every experiment, in paper order: fig1, fig2, fig3, table1-table5,
    fanout10, plus the design-choice ablations. *)

val find : string -> entry option
(** Look an experiment up by [id]. *)

val run_all : ?quick:bool -> unit -> unit
(** Run every experiment in order. *)
