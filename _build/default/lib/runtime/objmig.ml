open Cm_engine
open Cm_machine
open Thread.Infix

type 'state t = {
  rt : Runtime.t;
  space : 'state Objspace.t;
  words_of : 'state -> int;
  hints : (int * Objspace.id, int) Hashtbl.t;  (* (processor, object) -> believed home *)
}

let create rt space ~words_of = { rt; space; words_of; hints = Hashtbl.create 64 }

let machine t = Runtime.machine t.rt

let costs t = (machine t).Machine.costs

let net t = (machine t).Machine.net

let stats t = (machine t).Machine.stats

(* The caller's current belief about where the object lives.  First use
   consults the (free) name service — afterwards only forwarding keeps
   beliefs up to date, as in Emerald. *)
let hint t ~pid i =
  match Hashtbl.find_opt t.hints (pid, i) with
  | Some h -> h
  | None ->
    let h = Objspace.home t.space i in
    Hashtbl.replace t.hints (pid, i) h;
    h

let learn t ~pid i home = Hashtbl.replace t.hints (pid, i) home

let forwards t = Stats.get (stats t) "objmig.forwards"

let object_moves t = Stats.get (stats t) "objmig.moves"

(* Run [m] on the object as a handler occupying [on]'s CPU, then reply
   to [caller]; [resume] receives the result and the object's home at
   execution time (to repair the caller's hint). *)
let rec serve t i ~on ~caller ~args_words ~result_words m resume =
  let c = costs t in
  Machine.spawn (machine t) ~on
    (let* () = Thread.compute (Costs.recv_pipeline c ~words:args_words ~new_thread:true) in
     let here = Objspace.home t.space i in
     if here = on then
       let* r = m (Objspace.state t.space i) in
       let* () = Thread.compute (Costs.send_pipeline c ~words:result_words) in
       fun _ctx k ->
         let (_ : int) =
           Network.send (net t) ~src:on ~dst:caller ~words:result_words ~kind:"objmig_reply"
             (fun () -> resume (r, on))
         in
         k ()
     else begin
       (* Stale home: forward the request to where the object went. *)
       Stats.incr (stats t) "objmig.forwards";
       let* () = Thread.compute (Costs.send_pipeline c ~words:args_words) in
       fun _ctx k ->
         let (_ : int) =
           Network.send (net t) ~src:on ~dst:here ~words:args_words ~kind:"objmig_forward"
             (fun () ->
               serve t i ~on:here ~caller ~args_words ~result_words m resume)
         in
         k ()
     end)

let call t i ~args_words ~result_words m =
  let c = costs t in
  let* () = Thread.compute c.Costs.forwarding_check in
  let* p = Thread.proc in
  let pid = Processor.id p in
  let believed = hint t ~pid i in
  if believed = pid && Objspace.home t.space i = pid then m (Objspace.state t.space i)
  else begin
    let target = if believed = pid then Objspace.home t.space i else believed in
    let* () = Thread.compute (Costs.send_pipeline c ~words:args_words) in
    let* r, home =
      Thread.await (fun ~resume ->
          let (_ : int) =
            Network.send (net t) ~src:pid ~dst:target ~words:args_words ~kind:"objmig_call"
              (fun () -> serve t i ~on:target ~caller:pid ~args_words ~result_words m resume)
          in
          ())
    in
    learn t ~pid i home;
    let* () = Thread.compute (Costs.recv_pipeline c ~words:result_words ~new_thread:false) in
    Thread.return r
  end

let migrate_object t i ~to_ =
  let c = costs t in
  let* p = Thread.proc in
  let pid = Processor.id p in
  let home = Objspace.home t.space i in
  if home = to_ then Thread.return ()
  else begin
    Stats.incr (stats t) "objmig.moves";
    let words = t.words_of (Objspace.state t.space i) in
    (* The home packs and ships the object's state to [to_], which
       unpacks it; the requester resumes once the object has landed. *)
    let transfer resume =
      Machine.spawn (machine t) ~on:home
        (let* () = Thread.compute (Costs.send_pipeline c ~words) in
         Objspace.move t.space i ~to_;
         fun _ctx k ->
           let (_ : int) =
             Network.send (net t) ~src:home ~dst:to_ ~words ~kind:"objmig_transfer" (fun () ->
                 Machine.spawn (machine t) ~on:to_
                   (let* () = Thread.compute (Costs.recv_pipeline c ~words ~new_thread:true) in
                    fun _ctx2 k2 ->
                      resume ();
                      k2 ()))
           in
           k ())
    in
    (* A control message reaches the home first when the requester is
       elsewhere. *)
    let* () =
      if pid = home then Thread.return ()
      else Thread.compute (Costs.send_pipeline c ~words:2)
    in
    let* () =
      Thread.await (fun ~resume ->
          if pid = home then transfer resume
          else
            let (_ : int) =
              Network.send (net t) ~src:pid ~dst:home ~words:2 ~kind:"objmig_call" (fun () ->
                  transfer resume)
            in
            ())
    in
    learn t ~pid i to_;
    Thread.return ()
  end

let call_pull t i ~result_words m =
  let c = costs t in
  let* () = Thread.compute c.Costs.forwarding_check in
  let* p = Thread.proc in
  let pid = Processor.id p in
  ignore result_words;
  if Objspace.home t.space i = pid then m (Objspace.state t.space i)
  else
    let* () = migrate_object t i ~to_:pid in
    m (Objspace.state t.space i)
