(** Automatic mechanism selection — the paper's §6 future work
    ("we are developing compiler analysis techniques for automatically
    choosing among the remote access mechanisms"), realized as an online
    profile-guided policy.

    The decision follows the paper's own cost model (§2.5): migration
    beats RPC when the access is part of a {e chain} — when more annotated
    calls follow it inside the same procedure activation (either further
    hops or repeated accesses to the now-local data).  An isolated access
    (call, then straight back to the caller) costs two messages either
    way, and RPC avoids moving the activation.

    Each syntactic call site keeps an exponentially weighted estimate of
    how many annotated calls follow it within its activation, learned
    from completed activations.  A site migrates once its estimate
    reaches [threshold] (default 1.0); until [explore] samples have been
    seen it alternates both mechanisms to gather data.  All sampling is
    deterministic. *)

open Cm_machine

type t

val create : Runtime.t -> ?threshold:float -> ?explore:int -> unit -> t
(** [create rt ()] is an adaptive selector over [rt].  [threshold] is
    the follow-count above which a site migrates; [explore] (default 6)
    is the number of profiled activations per site before the policy
    locks in. *)

type site

val site : t -> name:string -> site
(** [site t ~name] declares one syntactic call site (one annotation in
    the source program). *)

val scope :
  t -> ?at_base:bool -> ?result_words:int -> 'r Thread.t -> 'r Thread.t
(** Like {!Runtime.scope}, and additionally the unit of profiling: when
    the activation completes, every call it made is credited with the
    number of calls that followed it. *)

val call :
  t ->
  site:site ->
  home:int ->
  args_words:int ->
  result_words:int ->
  'r Thread.t ->
  'r Thread.t
(** Like {!Runtime.call}, with the mechanism chosen per [site] from its
    profile.  Must run inside {!scope}. *)

(** {1 Introspection} *)

val chosen_migrations : t -> int
(** Remote calls the policy sent by migration. *)

val chosen_rpcs : t -> int
(** Remote calls the policy sent by RPC. *)

val site_estimate : t -> site -> float
(** Current follow-count estimate for the site ([nan] before any
    sample). *)

val site_samples : t -> site -> int
(** Completed activations that have profiled this site. *)

val site_name : site -> string
