(** Software replication — the paper's WW90-style "multi-version memory".

    A replicated object has a master copy at its home processor and
    per-processor read-only replicas installed on demand.  Readers use
    their local replica without any communication; a processor without a
    replica fetches one with an RPC to the home (paying the usual stub
    costs on both CPUs).  An update runs at the home, bumps the version,
    and eagerly pushes the new value to every processor currently holding
    a replica — each push is a message whose payload is the object's size
    and whose installation costs receive-pipeline cycles on the holder's
    CPU.  Readers may therefore observe a slightly stale version, which is
    exactly the semantics multi-version memory permits (and what makes it
    safe for B-link-tree roots: a stale root is corrected by right-link
    chasing).

    The paper uses this for the B-tree root in the "w/repl." rows of
    Tables 1-4. *)

open Cm_machine

type 'a t

val create : Runtime.t -> home:int -> words_of:('a -> int) -> 'a -> 'a t
(** [create rt ~home ~words_of v] is a replicated object with master copy
    [v] at [home]; [words_of] sizes a value in message words. *)

val home : 'a t -> int
(** Home processor of the master copy. *)

val read : 'a t -> 'a Thread.t
(** [read r] is the local replica's value, installing a replica first
    (one RPC to the home) if this processor has none.  A read on the home
    processor uses the master directly. *)

val update : 'a t -> access:Runtime.access -> 'a -> unit Thread.t
(** [update r ~access v] installs [v] as the new master version.  The
    update executes at the home (reached by [access] when the calling
    thread is remote) and pushes [v] to all current replica holders.
    Under [~access:Migrate] the calling thread stays at the home
    afterwards. *)

val version : 'a t -> int
(** Number of updates applied so far. *)

val replicas : 'a t -> int
(** Number of processors currently holding a replica (excluding the
    master). *)

val peek : 'a t -> 'a
(** Current master value (not simulated; for tests). *)
