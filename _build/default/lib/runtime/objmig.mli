(** Emerald-style object (data) migration over the messaging runtime.

    The paper wanted this comparison and could not run it ("we would
    like to compare our results to object migration, such as the
    mechanism in Emerald, but our group has not finished implementing
    object migration in Prelude yet", §4).  This module finishes it:

    {ul
    {- objects move between processors; the mover pays one message
       sized by the object's state;}
    {- callers address objects through per-processor {e location hints};
       a call that arrives at a stale home is {e forwarded} to the
       current home (an extra message plus forwarder CPU), and the
       reply teaches the caller the new location — Emerald's forwarding
       addresses;}
    {- {!call_pull} implements the move-on-access policy: the object is
       first migrated to the caller, then accessed locally — data
       migration in its purest software form.  Write-shared objects
       ping-pong, which is exactly the case the paper argues
       computation migration wins.}}

    Method bodies still run wherever the object currently lives, so the
    home-execution discipline of {!Objspace} is preserved. *)

open Cm_machine

type 'state t

val create :
  Runtime.t -> 'state Objspace.t -> words_of:('state -> int) -> 'state t
(** [create rt space ~words_of] manages the mobile objects of [space];
    [words_of] sizes an object's state for transfer messages. *)

val call :
  'state t ->
  Objspace.id ->
  args_words:int ->
  result_words:int ->
  ('state -> 'r Thread.t) ->
  'r Thread.t
(** [call t i m] invokes [m] on object [i] at its current home, routing
    through this processor's location hint with at most one forwarding
    hop (hints are corrected on return). *)

val migrate_object : 'state t -> Objspace.id -> to_:int -> unit Thread.t
(** [migrate_object t i ~to_] moves the object: one transfer message of
    [words_of state] words; afterwards the object's methods run on
    [to_], and calls routed through stale hints are forwarded. *)

val call_pull :
  'state t ->
  Objspace.id ->
  result_words:int ->
  ('state -> 'r Thread.t) ->
  'r Thread.t
(** [call_pull t i m] is the move-on-access policy: migrate the object
    to the calling processor (if remote), then run [m] locally. *)

val forwards : 'state t -> int
(** Number of calls that needed a forwarding hop. *)

val object_moves : 'state t -> int
(** Number of object migrations performed. *)
