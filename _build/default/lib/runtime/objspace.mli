(** The global object name space.

    Prelude is object-based: every data object has a global identifier and
    a home processor, and instance methods always execute at the object's
    home.  This module is the runtime's registry mapping identifiers to
    homes and payloads.  Translating a global identifier costs CPU cycles
    (the "Object ID translation" row of Table 5) unless the machine models
    J-Machine-style translation hardware; that cost is charged by the
    runtime's receive pipeline, not here. *)

open Cm_machine

type id = private int
(** A global object identifier. *)

type 'state t
(** A name space for objects whose local state has type ['state]. *)

val create : Machine.t -> 'state t
(** [create machine] is an empty name space for [machine]. *)

val register : 'state t -> home:int -> 'state -> id
(** [register t ~home state] allocates a fresh identifier for an object
    living on processor [home] with payload [state]. *)

val home : 'state t -> id -> int
(** [home t i] is the object's home processor. *)

val state : 'state t -> id -> 'state
(** [state t i] is the object's payload.  The payload must only be
    mutated by code executing on the home processor — the runtime's
    calling conventions guarantee this for well-formed programs, and
    {!Runtime.invoke} checks it in debug builds. *)

val move : 'state t -> id -> to_:int -> unit
(** [move t i ~to_] rehomes the object (bookkeeping only — the caller is
    responsible for charging the transfer; see {!Objmig}).  Methods
    invoked afterwards execute at the new home. *)

val count : 'state t -> int
(** Number of registered objects. *)

val iter : (id -> int -> 'state -> unit) -> 'state t -> unit
(** [iter f t] applies [f id home state] to every object. *)

val id_of_int : int -> id
(** [id_of_int n] casts a raw integer (e.g. carried in a simulated
    message) back to an identifier. *)
