open Cm_engine
open Cm_machine
open Thread.Infix

type t = { machine : Machine.t }

type access = Rpc | Migrate

let create machine = { machine }

let machine t = t.machine

let access_name = function Rpc -> "rpc" | Migrate -> "migrate"

let costs t = t.machine.Machine.costs

let stats t = t.machine.Machine.stats

let net t = t.machine.Machine.net

(* Raw CPS step: emit the reply message and unblock the caller, then
   continue (the server thread terminates right after). *)
let send_reply t ~src ~dst ~words resume r : unit Thread.t =
 fun _ctx k ->
  let (_ : int) = Network.send (net t) ~src ~dst ~words ~kind:"rpc_reply" (fun () -> resume r) in
  k ()

let rpc_call t ~dst ~args_words ~result_words body =
  let c = costs t in
  Stats.incr (stats t) "rt.rpc_calls";
  let* caller = Thread.proc in
  let caller_id = Processor.id caller in
  (* Client stub: marshal and send the request, then block. *)
  let* () = Thread.compute (Costs.send_pipeline c ~words:args_words) in
  let* r =
    Thread.await (fun ~resume ->
        let (_ : int) =
          Network.send (net t) ~src:caller_id ~dst ~words:args_words ~kind:"rpc" (fun () ->
            (* Server stub: a fresh handler thread pays the receive
               pipeline, runs the method, and replies from wherever the
               thread ends up (the body may itself migrate). *)
            Machine.spawn t.machine ~on:dst
              (let* () =
                 Thread.compute (Costs.recv_pipeline c ~words:args_words ~new_thread:true)
               in
               let* r = body in
               let* here = Thread.proc in
               let* () = Thread.compute (Costs.send_pipeline c ~words:result_words) in
               send_reply t ~src:(Processor.id here) ~dst:caller_id ~words:result_words resume r))
        in
        ())
  in
  (* Reply reception on the caller: no thread creation, just unblock. *)
  let* () = Thread.compute (Costs.recv_pipeline c ~words:result_words ~new_thread:false) in
  Thread.return r

let migrate_call t ~dst ~args_words body =
  let c = costs t in
  Stats.incr (stats t) "rt.migrations";
  (* Sender pipeline: marshal the live variables into the migration
     message... *)
  let* () = Thread.compute (Costs.send_pipeline c ~words:args_words) in
  (* ...ship the continuation, pay the receive pipeline on arrival... *)
  let* () =
    Thread.travel ~net:(net t)
      ~dst:(Machine.proc t.machine dst)
      ~words:args_words ~kind:"migrate"
      ~recv_work:(Costs.recv_pipeline c ~words:args_words ~new_thread:true)
  in
  (* ...and keep running there: the access below is local. *)
  body

let call t ~access ~home ~args_words ~result_words body =
  let c = costs t in
  (* The locality check happens on every annotated call, whatever the
     mechanism — it is not an extra cost of migration (paper S3.2). *)
  let* () = Thread.compute c.Costs.forwarding_check in
  let* p = Thread.proc in
  if Processor.id p = home then begin
    Stats.incr (stats t) "rt.local_calls";
    body
  end
  else
    match access with
    | Rpc -> rpc_call t ~dst:home ~args_words ~result_words body
    | Migrate -> migrate_call t ~dst:home ~args_words body

let scope t ?(at_base = false) ~result_words body =
  let c = costs t in
  let* origin = Thread.proc in
  let* r = body in
  let* here = Thread.proc in
  if at_base || Processor.id here = Processor.id origin then Thread.return r
  else begin
    (* The activation migrated away: send its result back to the caller
       frame waiting at the origin — a single message however many hops
       the activation made. *)
    Stats.incr (stats t) "rt.scope_returns";
    let* () = Thread.compute (Costs.send_pipeline c ~words:result_words) in
    let* () =
      Thread.travel ~net:(net t) ~dst:origin ~words:result_words ~kind:"migrate_return"
        ~recv_work:(Costs.recv_pipeline c ~words:result_words ~new_thread:false)
    in
    Thread.return r
  end

(* Partial-activation support (paper S6): an activation that migrated
   carrying only part of its live state pulls the rest from its origin
   with one round trip.  Serving the fetch costs the origin's CPU a
   handler dispatch plus the copy. *)
let fetch_residual t ~origin ~words =
  let c = costs t in
  Stats.incr (stats t) "rt.residual_fetches";
  let* p = Thread.proc in
  if Processor.id p = origin then Thread.return ()
  else
    Thread.ignore_m
      (rpc_call t ~dst:origin ~args_words:2 ~result_words:words
         (Thread.compute (Costs.copy_packet c ~words)))

let residual_fetches t = Stats.get (stats t) "rt.residual_fetches"

(* Whole-thread migration (paper S2.3): ship the thread's entire stack,
   permanently relocating it.  No scope bookkeeping applies — there is
   no caller frame left behind. *)
let migrate_thread t ~dst ~stack_words =
  let c = costs t in
  Stats.incr (stats t) "rt.thread_migrations";
  let* p = Thread.proc in
  if Processor.id p = dst then Thread.return ()
  else
    let* () = Thread.compute (Costs.send_pipeline c ~words:stack_words) in
    Thread.travel ~net:(net t)
      ~dst:(Machine.proc t.machine dst)
      ~words:stack_words ~kind:"thread_migrate"
      ~recv_work:(Costs.recv_pipeline c ~words:stack_words ~new_thread:true)

let thread_migrations t = Stats.get (stats t) "rt.thread_migrations"

let migrations t = Stats.get (stats t) "rt.migrations"

let rpc_calls t = Stats.get (stats t) "rt.rpc_calls"

let local_calls t = Stats.get (stats t) "rt.local_calls"
