lib/runtime/runtime.ml: Cm_engine Cm_machine Costs Machine Network Processor Stats Thread
