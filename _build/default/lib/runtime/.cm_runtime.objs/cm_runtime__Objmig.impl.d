lib/runtime/objmig.ml: Cm_engine Cm_machine Costs Hashtbl Machine Network Objspace Processor Runtime Stats Thread
