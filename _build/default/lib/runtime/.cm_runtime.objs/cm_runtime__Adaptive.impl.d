lib/runtime/adaptive.ml: Cm_machine Hashtbl List Processor Runtime Thread
