lib/runtime/runtime.mli: Cm_machine Machine Thread
