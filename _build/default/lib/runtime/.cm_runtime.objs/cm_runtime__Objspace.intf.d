lib/runtime/objspace.mli: Cm_machine Machine
