lib/runtime/replicate.mli: Cm_machine Runtime Thread
