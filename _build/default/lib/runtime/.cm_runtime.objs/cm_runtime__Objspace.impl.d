lib/runtime/objspace.ml: Array Cm_machine Machine Printf
