lib/runtime/replicate.ml: Array Cm_engine Cm_machine Costs Machine Network Processor Runtime Stats Thread
