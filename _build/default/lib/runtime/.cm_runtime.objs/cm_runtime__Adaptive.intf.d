lib/runtime/adaptive.mli: Cm_machine Runtime Thread
