lib/runtime/objmig.mli: Cm_machine Objspace Runtime Thread
