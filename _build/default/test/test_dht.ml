(* Tests for the distributed hash table, including the adaptive
   mechanism selection it showcases. *)

open Cm_machine
open Cm_apps
open Thread.Infix

let env ?(n = 12) () = Sysenv.make (Machine.create ~seed:23 ~n_procs:n ~costs:Costs.software ())

let node_procs = Array.init 6 (fun i -> i)

let all_modes =
  [
    ("rpc", Dht.Messaging Cm_core.Prelude.Rpc);
    ("migrate", Dht.Messaging Cm_core.Prelude.Migrate);
    ("adaptive", Dht.Adaptive);
    ("shared_memory", Dht.Shared_memory);
  ]

let run_thread ?(on = 8) e body =
  let finished = ref false in
  Machine.spawn e.Sysenv.machine ~on ~on_exit:(fun () -> finished := true) body;
  Machine.run e.Sysenv.machine;
  Alcotest.(check bool) "thread finished" true !finished

let test_put_get_roundtrip () =
  List.iter
    (fun (name, mode) ->
      let e = env () in
      let table = Dht.create e ~buckets:16 ~mode ~node_procs () in
      let results = ref [] in
      run_thread e
        (let* () = Dht.put table ~key:10 ~value:100 in
         let* () = Dht.put table ~key:20 ~value:200 in
         let* () = Dht.put table ~key:10 ~value:111 in
         let* a = Dht.get table 10 in
         let* b = Dht.get table 20 in
         let* c = Dht.get table 30 in
         results := [ a; b; c ];
         Thread.return ());
      Alcotest.(check (list (option int)))
        (name ^ ": get results")
        [ Some 111; Some 200; None ]
        !results;
      Alcotest.(check (list (pair int int)))
        (name ^ ": contents")
        [ (10, 111); (20, 200) ]
        (Dht.contents table))
    all_modes

let test_range_sum () =
  List.iter
    (fun (name, mode) ->
      let e = env () in
      let table = Dht.create e ~buckets:8 ~mode ~node_procs () in
      let keys = List.init 30 (fun i -> i * 7) in
      let total = ref (-1) in
      run_thread e
        (let* () =
           Thread.iter_list (fun k -> Dht.put table ~key:k ~value:k) keys
         in
         let* s = Dht.range_sum table ~first_bucket:0 ~n_buckets:8 in
         total := s;
         Thread.return ());
      Alcotest.(check int)
        (name ^ ": full range sums everything")
        (List.fold_left ( + ) 0 keys)
        !total)
    all_modes

let test_concurrent_puts () =
  List.iter
    (fun (name, mode) ->
      let e = env () in
      let table = Dht.create e ~buckets:32 ~bucket_capacity:128 ~mode ~node_procs () in
      let threads = 4 and per_thread = 25 in
      for th = 0 to threads - 1 do
        Machine.spawn e.Sysenv.machine ~on:(6 + th)
          (Thread.repeat per_thread (fun i ->
               let key = (th * 1000) + i in
               Dht.put table ~key ~value:(key * 2)))
      done;
      Machine.run e.Sysenv.machine;
      Alcotest.(check int) (name ^ ": all entries present") (threads * per_thread)
        (Dht.size table);
      List.iter
        (fun (k, v) -> Alcotest.(check int) (name ^ ": value") (2 * k) v)
        (Dht.contents table))
    all_modes

let test_bucket_full () =
  let e = env () in
  let table = Dht.create e ~buckets:1 ~bucket_capacity:3 ~mode:(Dht.Messaging Cm_core.Prelude.Rpc)
      ~node_procs () in
  let failed = ref false in
  Machine.spawn e.Sysenv.machine ~on:8
    (let* () = Dht.put table ~key:1 ~value:1 in
     let* () = Dht.put table ~key:2 ~value:2 in
     let* () = Dht.put table ~key:3 ~value:3 in
     Dht.put table ~key:4 ~value:4);
  (* The overflow raises inside a simulation event and surfaces from the
     run loop. *)
  (try Machine.run e.Sysenv.machine with Failure _ -> failed := true);
  Alcotest.(check bool) "overflow rejected" true !failed

let test_modes_agree () =
  let final (_, mode) =
    let e = env () in
    let table = Dht.create e ~buckets:16 ~mode ~node_procs () in
    run_thread e
      (Thread.repeat 60 (fun i ->
           let key = i * 13 mod 97 in
           Dht.put table ~key ~value:(i * i)));
    Dht.contents table
  in
  match List.map final all_modes with
  | first :: rest ->
    List.iter (fun c -> Alcotest.(check (list (pair int int))) "same contents" first c) rest
  | [] -> ()

let test_adaptive_learns_per_site () =
  let e = env ~n:16 () in
  let table = Dht.create e ~buckets:12 ~mode:Dht.Adaptive ~node_procs () in
  run_thread e
    (let* () =
       Thread.repeat 40 (fun i -> Dht.put table ~key:(i * 3) ~value:i)
     in
     let* () =
       Thread.repeat 40 (fun i -> Thread.ignore_m (Dht.get table (i * 3 mod 120)))
     in
     Thread.repeat 15 (fun _ ->
         Thread.ignore_m (Dht.range_sum table ~first_bucket:0 ~n_buckets:12)));
  List.iter
    (fun (name, estimate, samples) ->
      Alcotest.(check bool) (name ^ " sampled") true (samples > 5);
      match name with
      | "dht.get" | "dht.put" ->
        Alcotest.(check bool) (name ^ " learned isolation") true (estimate < 1.)
      | "dht.range_sum" ->
        Alcotest.(check bool) (name ^ " learned chaining") true (estimate >= 1.)
      | _ -> Alcotest.fail "unexpected site")
    (Dht.adaptive_report table)

let test_adaptive_traffic_between_static_extremes () =
  (* On a point-lookup workload the adaptive table should not send more
     traffic than always-migrate does. *)
  let words mode =
    let e = env () in
    let table = Dht.create e ~buckets:16 ~mode ~node_procs () in
    run_thread e
      (let* () = Thread.repeat 30 (fun i -> Dht.put table ~key:i ~value:i) in
       Thread.repeat 60 (fun i -> Thread.ignore_m (Dht.get table (i mod 30))));
    Network.total_words e.Sysenv.machine.Machine.net
  in
  let rpc = words (Dht.Messaging Cm_core.Prelude.Rpc) in
  let migrate = words (Dht.Messaging Cm_core.Prelude.Migrate) in
  let adaptive = words Dht.Adaptive in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive (%d) <= 1.1 * min(rpc=%d, migrate=%d)" adaptive rpc migrate)
    true
    (float_of_int adaptive <= 1.1 *. float_of_int (min rpc migrate))

let test_sm_gets_use_no_bucket_cpu_after_warm () =
  (* After the lock line and bucket are cached, repeated gets of the
     same key from one requester stop consuming bucket-home CPU. *)
  let e = env () in
  let table = Dht.create e ~buckets:4 ~mode:Dht.Shared_memory ~node_procs:[| 0; 1; 2; 3 |] () in
  run_thread e
    (let* () = Dht.put table ~key:5 ~value:50 in
     Thread.repeat 20 (fun _ -> Thread.ignore_m (Dht.get table 5)));
  for p = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "bucket proc %d unused" p)
      0
      (Processor.busy_cycles (Machine.proc e.Sysenv.machine p))
  done

let test_validation () =
  let e = env () in
  Alcotest.check_raises "no buckets" (Invalid_argument "Dht.create: buckets must be positive")
    (fun () ->
      ignore (Dht.create e ~buckets:0 ~mode:Dht.Shared_memory ~node_procs ()));
  let table = Dht.create e ~buckets:4 ~mode:Dht.Shared_memory ~node_procs () in
  Alcotest.check_raises "empty range" (Invalid_argument "Dht.range_sum: empty range") (fun () ->
      let _ : int Thread.t = Dht.range_sum table ~first_bucket:0 ~n_buckets:0 in
      ())

let prop_dht_matches_hashtbl =
  QCheck.Test.make ~name:"dht agrees with Hashtbl (all modes)" ~count:20
    QCheck.(
      pair (int_range 0 3) (list_of_size Gen.(5 -- 60) (triple (int_range 0 40) small_nat bool)))
    (fun (mode_idx, ops) ->
      let _, mode = List.nth all_modes mode_idx in
      let e = env () in
      let table = Dht.create e ~buckets:8 ~bucket_capacity:128 ~mode ~node_procs () in
      let model = Hashtbl.create 16 in
      let ok = ref true in
      run_thread e
        (Thread.iter_list
           (fun (key, value, is_put) ->
             if is_put then begin
               Hashtbl.replace model key value;
               Dht.put table ~key ~value
             end
             else
               let* got = Dht.get table key in
               if got <> Hashtbl.find_opt model key then ok := false;
               Thread.return ())
           ops);
      !ok
      && Dht.contents table
         = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []))

let () =
  Alcotest.run "cm_dht"
    [
      ( "dht",
        [
          Alcotest.test_case "put get roundtrip" `Quick test_put_get_roundtrip;
          Alcotest.test_case "range sum" `Quick test_range_sum;
          Alcotest.test_case "concurrent puts" `Quick test_concurrent_puts;
          Alcotest.test_case "bucket full" `Quick test_bucket_full;
          Alcotest.test_case "modes agree" `Quick test_modes_agree;
          Alcotest.test_case "validation" `Quick test_validation;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_dht_matches_hashtbl ] );
      ( "adaptive-dht",
        [
          Alcotest.test_case "learns per site" `Quick test_adaptive_learns_per_site;
          Alcotest.test_case "traffic near best" `Quick test_adaptive_traffic_between_static_extremes;
          Alcotest.test_case "sm warm gets free" `Quick test_sm_gets_use_no_bucket_cpu_after_warm;
        ] );
    ]
