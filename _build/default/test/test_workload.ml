(* Tests for the workload driver, metrics, schemes, and experiment
   harness — including shape assertions on small experiment instances
   (the orderings the paper's evaluation hinges on). *)

open Cm_machine
open Cm_workload
open Cm_experiments
open Thread.Infix

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_metrics_rates () =
  let m =
    Metrics.compute ~ops:50 ~measured_cycles:100_000 ~words:2_000 ~messages:10
      ~cache_hit_rate:0.5 ()
  in
  Alcotest.(check (float 1e-9)) "throughput" 0.5 m.Metrics.throughput;
  Alcotest.(check (float 1e-9)) "bandwidth" 0.2 m.Metrics.bandwidth;
  Alcotest.(check int) "messages" 10 m.Metrics.messages

let test_metrics_zero_window () =
  let m = Metrics.compute ~ops:0 ~measured_cycles:0 ~words:0 ~messages:0 ~cache_hit_rate:nan () in
  Alcotest.(check (float 1e-9)) "no division by zero" 0. m.Metrics.throughput

let test_metrics_pp () =
  let m =
    Metrics.compute ~ops:5 ~measured_cycles:1000 ~words:100 ~messages:7 ~cache_hit_rate:nan ()
  in
  let s = Format.asprintf "%a" Metrics.pp m in
  Alcotest.(check bool) "mentions ops" true (String.length s > 0)

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let test_driver_counts_ops () =
  let machine = Machine.create ~seed:1 ~n_procs:4 ~costs:Costs.software () in
  let m =
    Driver.run machine
      { Driver.requesters = 2; first_proc = 0; think = 0; warmup = 0; horizon = 10_000 }
      (fun _ -> Thread.compute 100)
  in
  (* Each op takes 100 cycles plus a dispatch; two requesters. *)
  Alcotest.(check bool) "roughly 2 * horizon/100 ops" true (m.Metrics.ops > 120 && m.Metrics.ops < 200)

let test_driver_think_time_slows () =
  let run think =
    let machine = Machine.create ~seed:1 ~n_procs:4 ~costs:Costs.software () in
    (Driver.run machine
       { Driver.requesters = 2; first_proc = 0; think; warmup = 0; horizon = 20_000 }
       (fun _ -> Thread.compute 100))
      .Metrics.ops
  in
  Alcotest.(check bool) "think time reduces throughput" true (run 1_000 < run 0 / 2)

let test_driver_warmup_excluded () =
  let machine = Machine.create ~seed:1 ~n_procs:2 ~costs:Costs.software () in
  let m =
    Driver.run machine
      { Driver.requesters = 1; first_proc = 0; think = 0; warmup = 5_000; horizon = 10_000 }
      (fun _ -> Thread.compute 100)
  in
  Alcotest.(check int) "window length" 5_000 m.Metrics.measured_cycles;
  Alcotest.(check bool) "about half the ops counted" true (m.Metrics.ops < 60)

let test_driver_validates () =
  let machine = Machine.create ~seed:1 ~n_procs:2 ~costs:Costs.software () in
  Alcotest.check_raises "warmup past horizon"
    (Invalid_argument "Driver.run: warmup past horizon") (fun () ->
      ignore
        (Driver.run machine
           { Driver.requesters = 1; first_proc = 0; think = 0; warmup = 10; horizon = 5 }
           (fun _ -> Thread.return ())));
  Alcotest.check_raises "no requesters" (Invalid_argument "Driver.run: no requesters")
    (fun () ->
      ignore
        (Driver.run machine
           { Driver.requesters = 0; first_proc = 0; think = 0; warmup = 0; horizon = 5 }
           (fun _ -> Thread.return ())))

let test_driver_latency_tracked () =
  let machine = Machine.create ~seed:1 ~n_procs:2 ~costs:Costs.software () in
  let m =
    Driver.run machine
      { Driver.requesters = 1; first_proc = 0; think = 0; warmup = 0; horizon = 10_000 }
      (fun _ -> Thread.compute 200)
  in
  (* Each op is 200 cycles of compute (plus an occasional dispatch). *)
  Alcotest.(check bool) "mean latency ~200"
    true
    (m.Metrics.mean_latency >= 200. && m.Metrics.mean_latency < 250.);
  Alcotest.(check bool) "max >= mean" true
    (float_of_int m.Metrics.max_latency >= m.Metrics.mean_latency)

let test_driver_deterministic () =
  let run () =
    let machine = Machine.create ~seed:9 ~n_procs:4 ~costs:Costs.software () in
    let m =
      Driver.run machine
        { Driver.requesters = 3; first_proc = 0; think = 50; warmup = 1_000; horizon = 30_000 }
        (fun _ ->
          let* r = Thread.rng in
          Thread.compute (50 + Cm_engine.Rng.int r 100))
    in
    (m.Metrics.ops, m.Metrics.words)
  in
  Alcotest.(check (pair int int)) "identical reruns" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Scheme                                                             *)
(* ------------------------------------------------------------------ *)

let test_scheme_names () =
  Alcotest.(check string) "sm" "SM" (Scheme.name Scheme.Sm);
  Alcotest.(check string) "cp full" "CP w/repl. & HW"
    (Scheme.name (Scheme.Cp { hw = true; repl = true }));
  Alcotest.(check string) "rpc hw" "RPC w/HW" (Scheme.name (Scheme.Rpc { hw = true; repl = false }))

let test_scheme_parse_roundtrip () =
  List.iter
    (fun s ->
      match Scheme.of_string s with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "should parse %s: %s" s e)
    [ "sm"; "rpc"; "cp"; "rpc+hw"; "cp+repl"; "cp+repl+hw"; "CP+HW+REPL" ];
  (match Scheme.of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense should not parse");
  match Scheme.of_string "cp+hw" with
  | Ok (Scheme.Cp { hw = true; repl = false }) -> ()
  | _ -> Alcotest.fail "cp+hw parsed wrong"

let test_scheme_costs () =
  Alcotest.(check bool) "sm uses software costs" true (Scheme.costs Scheme.Sm = Costs.software);
  Alcotest.(check bool) "hw scheme uses hardware costs" true
    (Scheme.costs (Scheme.Cp { hw = true; repl = false }) = Costs.hardware)

(* ------------------------------------------------------------------ *)
(* Experiment shape assertions (small instances)                      *)
(* ------------------------------------------------------------------ *)

let small = { Counting_run.default with Counting_run.requesters = 16; horizon = 80_000; warmup = 10_000 }

let counting scheme = Counting_run.run scheme small

let test_counting_shape_throughput () =
  let sm = counting Scheme.Sm in
  let cp = counting (Scheme.Cp { hw = false; repl = false }) in
  let cp_hw = counting (Scheme.Cp { hw = true; repl = false }) in
  let rpc = counting (Scheme.Rpc { hw = false; repl = false }) in
  Alcotest.(check bool) "cp beats rpc" true Metrics.(cp.throughput > rpc.throughput);
  Alcotest.(check bool) "hw helps cp" true Metrics.(cp_hw.throughput > cp.throughput);
  Alcotest.(check bool) "sm competitive" true Metrics.(sm.throughput > rpc.throughput)

let test_counting_shape_bandwidth () =
  let sm = counting Scheme.Sm in
  let cp = counting (Scheme.Cp { hw = false; repl = false }) in
  Alcotest.(check bool) "sm uses much more bandwidth" true
    Metrics.(sm.bandwidth > 3. *. cp.bandwidth)

let btree scheme =
  Btree_run.run scheme
    { Btree_run.default with Btree_run.n_keys = 3_000; horizon = 120_000; warmup = 20_000 }

let test_btree_shape () =
  let sm = btree Scheme.Sm in
  let cp = btree (Scheme.Cp { hw = false; repl = false }) in
  let cp_repl = btree (Scheme.Cp { hw = false; repl = true }) in
  let rpc = btree (Scheme.Rpc { hw = false; repl = false }) in
  Alcotest.(check bool) "cp beats rpc" true Metrics.(cp.throughput > rpc.throughput);
  Alcotest.(check bool) "replication helps cp" true Metrics.(cp_repl.throughput > cp.throughput);
  Alcotest.(check bool) "sm beats plain cp" true Metrics.(sm.throughput > cp.throughput);
  Alcotest.(check bool) "sm bandwidth dominates" true Metrics.(sm.bandwidth > 5. *. cp.bandwidth)

let test_fig1_functions_match_model () =
  Alcotest.(check int) "rpc" 24 (Fig1.run_messaging ~access:Cm_runtime.Runtime.Rpc ~n:3 ~m:4);
  Alcotest.(check int) "cp" 5 (Fig1.run_messaging ~access:Cm_runtime.Runtime.Migrate ~n:3 ~m:4);
  Alcotest.(check int) "dm" 8 (Fig1.run_shmem ~n:3 ~m:4)

let test_table5_measured_equals_model () =
  let model = Costs.breakdown Costs.software ~words:8 ~hops:2 ~user_code:150 in
  Alcotest.(check int) "end-to-end = model total" (List.assoc "Total time" model)
    (Table5.measure_one_migration ())

let test_detail_report () =
  let machine, _ =
    Counting_run.run_with_machine
      (Scheme.Cp { hw = false; repl = false })
      { Counting_run.default with Counting_run.requesters = 4; horizon = 50_000; warmup = 5_000 }
  in
  let d = Detail.collect machine in
  Alcotest.(check int) "clock" 50_000 d.Detail.now;
  (match d.Detail.utilizations with
  | (_, hottest) :: _ -> Alcotest.(check bool) "hottest busy" true (hottest > 0.)
  | [] -> Alcotest.fail "no processors");
  Alcotest.(check bool) "migrate traffic attributed" true
    (List.exists (fun (kind, _, _) -> kind = "migrate") d.Detail.traffic);
  Alcotest.(check bool) "words add up" true
    (List.fold_left (fun acc (_, _, w) -> acc + w) 0 d.Detail.traffic = d.Detail.total_words);
  (* Rendering succeeds and mentions the network line. *)
  let s = Format.asprintf "%a" Detail.pp d in
  Alcotest.(check bool) "renders" true (String.length s > 50)

let test_registry_complete () =
  let ids = List.map (fun e -> e.Registry.id) Registry.all in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " present") true (List.mem id ids);
      match Registry.find id with
      | Some e -> Alcotest.(check string) "find returns it" id e.Registry.id
      | None -> Alcotest.failf "find %s failed" id)
    [ "fig1"; "fig2"; "fig3"; "table1"; "table2"; "table3"; "table4"; "table5"; "fanout10" ];
  Alcotest.(check bool) "unknown id" true (Registry.find "table9" = None)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cm_workload"
    [
      ( "metrics",
        [
          Alcotest.test_case "rates" `Quick test_metrics_rates;
          Alcotest.test_case "zero window" `Quick test_metrics_zero_window;
          Alcotest.test_case "pp" `Quick test_metrics_pp;
        ] );
      ( "driver",
        [
          Alcotest.test_case "counts ops" `Quick test_driver_counts_ops;
          Alcotest.test_case "think time" `Quick test_driver_think_time_slows;
          Alcotest.test_case "warmup excluded" `Quick test_driver_warmup_excluded;
          Alcotest.test_case "validates" `Quick test_driver_validates;
          Alcotest.test_case "latency tracked" `Quick test_driver_latency_tracked;
          Alcotest.test_case "deterministic" `Quick test_driver_deterministic;
        ] );
      ( "scheme",
        [
          Alcotest.test_case "names" `Quick test_scheme_names;
          Alcotest.test_case "parse" `Quick test_scheme_parse_roundtrip;
          Alcotest.test_case "costs" `Quick test_scheme_costs;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "counting throughput" `Slow test_counting_shape_throughput;
          Alcotest.test_case "counting bandwidth" `Slow test_counting_shape_bandwidth;
          Alcotest.test_case "btree orderings" `Slow test_btree_shape;
          Alcotest.test_case "fig1 model" `Quick test_fig1_functions_match_model;
          Alcotest.test_case "table5 exact" `Quick test_table5_measured_equals_model;
          Alcotest.test_case "registry complete" `Quick test_registry_complete;
          Alcotest.test_case "detail report" `Quick test_detail_report;
        ] );
    ]
