(* Tests for the applications: the bitonic counting network and the
   distributed B-link tree, under all three remote-access mechanisms. *)

open Cm_machine
open Cm_apps
open Thread.Infix

let costs = Costs.software

let env ?(n = 32) ?(seed = 11) () = Sysenv.make (Machine.create ~seed ~n_procs:n ~costs ())

(* ------------------------------------------------------------------ *)
(* Balancer_net                                                       *)
(* ------------------------------------------------------------------ *)

let test_net_shape () =
  let net = Balancer_net.bitonic 8 in
  Alcotest.(check int) "width" 8 (Balancer_net.width net);
  Alcotest.(check int) "24 balancers" 24 (Balancer_net.n_balancers net);
  Alcotest.(check int) "6 stages" 6 (Balancer_net.depth net)

let test_net_shape_other_widths () =
  List.iter
    (fun (w, depth) ->
      let net = Balancer_net.bitonic w in
      Alcotest.(check int) (Printf.sprintf "width %d depth" w) depth (Balancer_net.depth net);
      Alcotest.(check int)
        (Printf.sprintf "width %d balancers" w)
        (w / 2 * depth)
        (Balancer_net.n_balancers net))
    [ (2, 1); (4, 3); (8, 6); (16, 10) ]

let test_net_bad_width () =
  List.iter
    (fun w ->
      Alcotest.check_raises
        (Printf.sprintf "width %d rejected" w)
        (Invalid_argument "Balancer_net.bitonic: width must be a power of two >= 2")
        (fun () -> ignore (Balancer_net.bitonic w)))
    [ 0; 1; 3; 6; 12 ]

let test_net_layers_within_depth () =
  let net = Balancer_net.bitonic 8 in
  for b = 0 to Balancer_net.n_balancers net - 1 do
    let l = Balancer_net.layer net b in
    Alcotest.(check bool) "layer in range" true (l >= 0 && l < Balancer_net.depth net)
  done;
  (* Four balancers per layer. *)
  let per_layer = Array.make (Balancer_net.depth net) 0 in
  for b = 0 to Balancer_net.n_balancers net - 1 do
    let l = Balancer_net.layer net b in
    per_layer.(l) <- per_layer.(l) + 1
  done;
  Array.iter (fun c -> Alcotest.(check int) "4 per layer" 4 c) per_layer

let test_net_every_exit_has_feeder () =
  let net = Balancer_net.bitonic 8 in
  for w = 0 to 7 do
    let b = Balancer_net.feeder_of_exit net w in
    let top, bot = Balancer_net.outputs net b in
    Alcotest.(check bool) "feeder feeds exit" true
      (top = Balancer_net.Exit w || bot = Balancer_net.Exit w)
  done

let prop_net_step_property =
  QCheck.Test.make ~name:"bitonic step property under arbitrary sequential input" ~count:60
    QCheck.(pair (int_range 1 3) (list_of_size Gen.(1 -- 300) (int_range 0 1000)))
    (fun (log_w, wires) ->
      let w = 2 lsl log_w in
      let net = Balancer_net.bitonic w in
      let sim = Balancer_net.simulator net in
      let counts = Array.make w 0 in
      List.iter
        (fun wire ->
          let out = Balancer_net.route sim (wire mod w) in
          counts.(out) <- counts.(out) + 1)
        wires;
      Balancer_net.step_property ~counts)

(* ------------------------------------------------------------------ *)
(* Counting network (simulated)                                       *)
(* ------------------------------------------------------------------ *)

let run_counting ~mode ~requesters ~per_thread ~think =
  (* 24 balancer processors + one per requester. *)
  let e = env ~n:(24 + requesters) () in
  let cn = Counting_network.create e mode in
  let remaining = ref requesters in
  for r = 0 to requesters - 1 do
    Machine.spawn e.Sysenv.machine ~on:(24 + r)
      ~on_exit:(fun () -> decr remaining)
      (Thread.repeat per_thread (fun _ ->
           let* _v = Counting_network.traverse cn ~input_wire:(r mod 8) in
           if think > 0 then Thread.sleep think else Thread.return ()))
  done;
  Machine.run e.Sysenv.machine;
  Alcotest.(check int) "all requesters finished" 0 !remaining;
  (e, cn)

let check_counting_correct mode () =
  let requesters = 6 and per_thread = 8 in
  let _e, cn = run_counting ~mode ~requesters ~per_thread ~think:0 in
  let total = requesters * per_thread in
  Alcotest.(check int) "tokens delivered" total (Counting_network.tokens_delivered cn);
  Alcotest.(check bool) "step property" true (Counting_network.satisfies_step_property cn);
  (* Shared counting: the values handed out are exactly 0 .. total-1. *)
  let values = List.sort compare (Counting_network.values_issued cn) in
  Alcotest.(check (list int)) "gap-free distinct range" (List.init total (fun i -> i)) values

let test_counting_migrate_correct = check_counting_correct (Counting_network.Messaging Cm_core.Prelude.Migrate)

let test_counting_rpc_correct = check_counting_correct (Counting_network.Messaging Cm_core.Prelude.Rpc)

let test_counting_sm_correct = check_counting_correct Counting_network.Shared_memory

let test_counting_with_think_time () =
  let _e, cn =
    run_counting
      ~mode:(Counting_network.Messaging Cm_core.Prelude.Migrate)
      ~requesters:4 ~per_thread:3 ~think:5000
  in
  Alcotest.(check bool) "step property" true (Counting_network.satisfies_step_property cn)

let test_counting_migrate_message_pattern () =
  (* One token, one requester: 6 balancer hops + 1 counter hop + 1
     return = 8 messages under computation migration. *)
  let e = env ~n:25 () in
  let cn = Counting_network.create e (Counting_network.Messaging Cm_core.Prelude.Migrate) in
  Machine.spawn e.Sysenv.machine ~on:24
    (Thread.ignore_m (Counting_network.traverse cn ~input_wire:0));
  Machine.run e.Sysenv.machine;
  let migrates = Network.messages_of_kind e.Sysenv.machine.Machine.net "migrate" in
  let returns = Network.messages_of_kind e.Sysenv.machine.Machine.net "migrate_return" in
  Alcotest.(check bool) "6-7 hops (first balancer may be local)" true (migrates >= 6 && migrates <= 7);
  Alcotest.(check int) "one return" 1 returns

let test_counting_rpc_twice_the_messages () =
  let msgs mode =
    let e = env ~n:26 () in
    let cn = Counting_network.create e mode in
    for r = 0 to 1 do
      Machine.spawn e.Sysenv.machine ~on:(24 + r)
        (Thread.repeat 4 (fun _ -> Thread.ignore_m (Counting_network.traverse cn ~input_wire:r)))
    done;
    Machine.run e.Sysenv.machine;
    Network.total_messages e.Sysenv.machine.Machine.net
  in
  let rpc = msgs (Counting_network.Messaging Cm_core.Prelude.Rpc) in
  let mig = msgs (Counting_network.Messaging Cm_core.Prelude.Migrate) in
  Alcotest.(check bool)
    (Printf.sprintf "rpc (%d) ~2x migrate (%d)" rpc mig)
    true
    (float_of_int rpc > 1.6 *. float_of_int mig)

let test_counting_sm_bandwidth_highest () =
  let words mode =
    let e = env ~n:28 () in
    let cn = Counting_network.create e mode in
    for r = 0 to 3 do
      Machine.spawn e.Sysenv.machine ~on:(24 + r)
        (Thread.repeat 6 (fun _ -> Thread.ignore_m (Counting_network.traverse cn ~input_wire:r)))
    done;
    Machine.run e.Sysenv.machine;
    Network.total_words e.Sysenv.machine.Machine.net
  in
  let sm = words Counting_network.Shared_memory in
  let mig = words (Counting_network.Messaging Cm_core.Prelude.Migrate) in
  Alcotest.(check bool) (Printf.sprintf "sm (%d) > migrate (%d)" sm mig) true (sm > mig)

let test_counting_bad_wire () =
  let e = env ~n:25 () in
  let cn = Counting_network.create e (Counting_network.Messaging Cm_core.Prelude.Migrate) in
  Alcotest.check_raises "bad wire" (Invalid_argument "Counting_network.traverse: bad input wire")
    (fun () ->
      let _ : int Thread.t = Counting_network.traverse cn ~input_wire:9 in
      ())

(* ------------------------------------------------------------------ *)
(* Btree_node (pure)                                                  *)
(* ------------------------------------------------------------------ *)

let test_node_find_child_index () =
  let keys = [| 10; 20; 30; 40; 0; 0 |] in
  Alcotest.(check int) "below first" 0 (Btree_node.find_child_index ~keys ~nkeys:4 ~key:5);
  Alcotest.(check int) "equal first" 0 (Btree_node.find_child_index ~keys ~nkeys:4 ~key:10);
  Alcotest.(check int) "middle" 2 (Btree_node.find_child_index ~keys ~nkeys:4 ~key:25);
  Alcotest.(check int) "equal last" 3 (Btree_node.find_child_index ~keys ~nkeys:4 ~key:40);
  Alcotest.check_raises "above high"
    (Invalid_argument "Btree_node.find_child_index: key above high key") (fun () ->
      ignore (Btree_node.find_child_index ~keys ~nkeys:4 ~key:41))

let test_node_member_insert () =
  let keys = Array.make 8 0 in
  keys.(0) <- 5;
  keys.(1) <- 9;
  Alcotest.(check bool) "member yes" true (Btree_node.member ~keys ~nkeys:2 ~key:9);
  Alcotest.(check bool) "member no" false (Btree_node.member ~keys ~nkeys:2 ~key:7);
  let pos = Btree_node.insertion_point ~keys ~nkeys:2 ~key:7 in
  Alcotest.(check int) "insertion point" 1 pos;
  Btree_node.insert_at ~keys ~nkeys:2 ~pos 7;
  Alcotest.(check (list int)) "inserted" [ 5; 7; 9 ] [ keys.(0); keys.(1); keys.(2) ]

let test_node_split_point () =
  Alcotest.(check int) "odd" 3 (Btree_node.split_point ~nkeys:5);
  Alcotest.(check int) "even" 3 (Btree_node.split_point ~nkeys:6)

let test_plan_shapes_match_paper () =
  let keys = List.init 10000 (fun i -> i * 3) in
  (* Fanout 100, fill 0.7: the paper's 3-child root. *)
  let plan = Btree_node.build_plan ~keys ~fanout:100 ~fill:0.7 in
  Alcotest.(check int) "height 3" 3 (Btree_node.plan_height plan);
  Alcotest.(check int) "root has 3 children" 3 (Btree_node.plan_root_children plan);
  (* Fanout 10: a deeper tree with a small root (paper: ~4 children). *)
  let plan10 = Btree_node.build_plan ~keys ~fanout:10 ~fill:0.75 in
  Alcotest.(check int) "fanout-10 root children" 3 (Btree_node.plan_root_children plan10);
  Alcotest.(check bool) "fanout-10 much deeper" true (Btree_node.plan_height plan10 >= 5)

let test_plan_preserves_keys () =
  let keys = [ 9; 1; 5; 3; 1; 7; 5 ] in
  let plan = Btree_node.build_plan ~keys ~fanout:4 ~fill:0.5 in
  Alcotest.(check (list int)) "sorted distinct" [ 1; 3; 5; 7; 9 ] (Btree_node.plan_keys plan)

let prop_plan_keys_roundtrip =
  QCheck.Test.make ~name:"bulk-load plan preserves key set" ~count:100
    QCheck.(pair (int_range 4 30) (list_of_size Gen.(1 -- 400) (int_range 0 100000)))
    (fun (fanout, keys) ->
      let plan = Btree_node.build_plan ~keys ~fanout ~fill:0.7 in
      Btree_node.plan_keys plan = List.sort_uniq compare keys)

(* ------------------------------------------------------------------ *)
(* B-tree (simulated)                                                 *)
(* ------------------------------------------------------------------ *)

let node_procs n = Array.init n (fun i -> i)

let mk_btree ?(n_procs = 16) ?(fanout = 8) ?(replicate_root = false) ~mode ~keys () =
  let e = env ~n:n_procs ~seed:5 () in
  let tree =
    Btree.create e ~mode ~fanout ~replicate_root ~node_procs:(node_procs (n_procs / 2)) ~keys ()
  in
  (e, tree)

let all_modes =
  [
    ("migrate", Btree.Messaging Cm_core.Prelude.Migrate, false);
    ("rpc", Btree.Messaging Cm_core.Prelude.Rpc, false);
    ("migrate+repl", Btree.Messaging Cm_core.Prelude.Migrate, true);
    ("rpc+repl", Btree.Messaging Cm_core.Prelude.Rpc, true);
    ("shared_memory", Btree.Shared_memory, false);
  ]

let test_btree_lookup_preloaded () =
  List.iter
    (fun (name, mode, replicate_root) ->
      let keys = List.init 200 (fun i -> i * 5) in
      let e, tree = mk_btree ~mode ~replicate_root ~keys () in
      let hits = ref 0 and misses = ref 0 in
      Machine.spawn e.Sysenv.machine ~on:14
        (Thread.iter_list
           (fun k ->
             let* present = Btree.lookup tree k in
             if present then incr hits else incr misses;
             Thread.return ())
           [ 0; 5; 995; 3; 500; 1000; 42 ]);
      Machine.run e.Sysenv.machine;
      Alcotest.(check int) (name ^ ": hits") 4 !hits;
      (* 0, 5, 995, 500 present; 3, 1000, 42 absent *)
      Alcotest.(check int) (name ^ ": misses") 3 !misses)
    all_modes

let test_btree_insert_then_lookup () =
  List.iter
    (fun (name, mode, replicate_root) ->
      let e, tree = mk_btree ~mode ~replicate_root ~keys:[ 1000 ] () in
      let inserted = ref 0 in
      Machine.spawn e.Sysenv.machine ~on:15
        (Thread.iter_list
           (fun k ->
             let* fresh = Btree.insert tree k in
             if fresh then incr inserted;
             Thread.return ())
           [ 5; 3; 9; 3; 7; 5; 100 ]);
      Machine.run e.Sysenv.machine;
      Alcotest.(check int) (name ^ ": distinct inserts") 5 !inserted;
      Alcotest.(check (list int)) (name ^ ": final keys") [ 3; 5; 7; 9; 100; 1000 ]
        (Btree.all_keys tree);
      (match Btree.check_invariants tree with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: invariants: %s" name e))
    all_modes

let test_btree_many_inserts_split_chain () =
  (* Enough sequential inserts through one thread to force splits at
     every level, including root splits. *)
  List.iter
    (fun (name, mode, replicate_root) ->
      let e, tree = mk_btree ~fanout:4 ~mode ~replicate_root ~keys:[ 0 ] () in
      let n = 120 in
      Machine.spawn e.Sysenv.machine ~on:15
        (Thread.repeat n (fun i -> Thread.ignore_m (Btree.insert tree ((i * 37) mod 1000))));
      Machine.run e.Sysenv.machine;
      let expect = List.sort_uniq compare (0 :: List.init n (fun i -> i * 37 mod 1000)) in
      Alcotest.(check (list int)) (name ^ ": keys") expect (Btree.all_keys tree);
      Alcotest.(check bool) (name ^ ": split happened") true (Btree.splits tree > 0);
      Alcotest.(check bool) (name ^ ": tree grew") true (Btree.height tree >= 3);
      (match Btree.check_invariants tree with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: invariants: %s" name e))
    all_modes

let test_btree_concurrent_inserts () =
  List.iter
    (fun (name, mode, replicate_root) ->
      let e, tree = mk_btree ~n_procs:24 ~fanout:4 ~mode ~replicate_root ~keys:[ 500000 ] () in
      let per_thread = 30 and threads = 8 in
      for th = 0 to threads - 1 do
        Machine.spawn e.Sysenv.machine ~on:(12 + th)
          (Thread.repeat per_thread (fun i ->
               Thread.ignore_m (Btree.insert tree ((th * 1009) + (i * 131)))))
      done;
      Machine.run e.Sysenv.machine;
      let expect =
        List.sort_uniq compare
          (500000
          :: List.concat_map
               (fun th -> List.init per_thread (fun i -> (th * 1009) + (i * 131)))
               (List.init threads (fun th -> th)))
      in
      Alcotest.(check (list int)) (name ^ ": all keys present") expect (Btree.all_keys tree);
      (match Btree.check_invariants tree with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: invariants: %s" name e))
    all_modes

let test_btree_concurrent_mixed_workload () =
  List.iter
    (fun (name, mode, replicate_root) ->
      let base_keys = List.init 100 (fun i -> i * 10) in
      let e, tree = mk_btree ~n_procs:24 ~fanout:6 ~mode ~replicate_root ~keys:base_keys () in
      let lookups_wrong = ref 0 in
      for th = 0 to 5 do
        Machine.spawn e.Sysenv.machine ~on:(12 + th)
          (Thread.repeat 20 (fun i ->
               if i mod 2 = 0 then Thread.ignore_m (Btree.insert tree ((th * 211) + i))
               else
                 (* Preloaded keys never disappear (no delete): a lookup
                    for one must always succeed. *)
                 let* present = Btree.lookup tree (((th * 7) + i) mod 100 * 10) in
                 if not present then incr lookups_wrong;
                 Thread.return ()))
      done;
      Machine.run e.Sysenv.machine;
      Alcotest.(check int) (name ^ ": no lost preloaded keys") 0 !lookups_wrong;
      match Btree.check_invariants tree with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: invariants: %s" name e)
    all_modes

let test_btree_migrate_root_bottleneck () =
  (* Without replication every operation visits the root's processor;
     with a replicated root, lookups skip it.  Node placement is
     seed-deterministic, so both runs lay the tree out identically:
     compare per-processor busy cycles directly. *)
  let busy replicate_root =
    let keys = List.init 500 (fun i -> i * 7) in
    let e, tree =
      mk_btree ~n_procs:16 ~fanout:16
        ~mode:(Btree.Messaging Cm_core.Prelude.Migrate)
        ~replicate_root ~keys ()
    in
    for th = 0 to 3 do
      Machine.spawn e.Sysenv.machine ~on:(10 + th)
        (* Uniformly spread lookups so every level-2 node gets work. *)
        (Thread.repeat 25 (fun i -> Thread.ignore_m (Btree.lookup tree (((th * 25) + i) * 139 mod 3500))))
    done;
    Machine.run e.Sysenv.machine;
    Array.init 8 (fun p -> Processor.busy_cycles (Machine.proc e.Sysenv.machine p))
  in
  let without = busy false and with_repl = busy true in
  (* The processor that was hottest without replication (the root's
     home) must cool down once the root is replicated. *)
  let hottest = ref 0 in
  Array.iteri (fun p c -> if c > without.(!hottest) then hottest := p) without;
  ignore (Array.iteri (fun _ _ -> ()) with_repl);
  Alcotest.(check bool)
    (Printf.sprintf "root proc cooler with replication (%d < %d)" with_repl.(!hottest)
       without.(!hottest))
    true
    (with_repl.(!hottest) < without.(!hottest))

let test_btree_modes_agree () =
  (* The same operation sequence must produce the same key set in every
     mode — the annotation changes performance, not semantics. *)
  let final (_, mode, replicate_root) =
    let e, tree = mk_btree ~fanout:6 ~mode ~replicate_root ~keys:[ 50; 60; 70 ] () in
    Machine.spawn e.Sysenv.machine ~on:14
      (Thread.repeat 40 (fun i -> Thread.ignore_m (Btree.insert tree (i * 17 mod 300))));
    Machine.run e.Sysenv.machine;
    Btree.all_keys tree
  in
  match List.map final all_modes with
  | first :: rest -> List.iter (fun keys -> Alcotest.(check (list int)) "same keys" first keys) rest
  | [] -> ()

let test_btree_sm_uses_no_node_cpu_for_lookups () =
  (* Shared-memory lookups never occupy node-home CPUs. *)
  let keys = List.init 300 (fun i -> i * 3) in
  let e, tree = mk_btree ~n_procs:16 ~fanout:16 ~mode:Btree.Shared_memory ~keys () in
  Machine.spawn e.Sysenv.machine ~on:15
    (Thread.repeat 20 (fun i -> Thread.ignore_m (Btree.lookup tree (i * 31))));
  Machine.run e.Sysenv.machine;
  for p = 0 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "node proc %d idle" p)
      0
      (Processor.busy_cycles (Machine.proc e.Sysenv.machine p))
  done

let prop_btree_matches_reference =
  (* Random operation interleavings across modes against a Set model. *)
  QCheck.Test.make ~name:"btree agrees with a reference set (all modes)" ~count:12
    QCheck.(
      pair (int_range 0 4)
        (list_of_size Gen.(10 -- 80) (pair (int_range 0 250) bool)))
    (fun (mode_idx, ops) ->
      let _, mode, replicate_root = List.nth all_modes mode_idx in
      let e, tree = mk_btree ~fanout:5 ~mode ~replicate_root ~keys:[ 1; 2; 3 ] () in
      let model = ref (List.fold_right (fun k s -> k :: s) [ 1; 2; 3 ] []) in
      let wrong = ref 0 in
      Machine.spawn e.Sysenv.machine ~on:15
        (Thread.iter_list
           (fun (key, is_insert) ->
             if is_insert then begin
               model := key :: !model;
               Thread.ignore_m (Btree.insert tree key)
             end
             else
               let* present = Btree.lookup tree key in
               let expected = List.mem key !model in
               if present <> expected then incr wrong;
               Thread.return ())
           ops);
      Machine.run e.Sysenv.machine;
      !wrong = 0
      && Btree.all_keys tree = List.sort_uniq compare !model
      && Btree.check_invariants tree = Ok ())


let prop_counting_concurrent_step_property =
  (* Concurrent traversals through the simulated machine (not just the
     reference simulator) must preserve the step property and gap-free
     counting for any requester/request mix, in every mode. *)
  QCheck.Test.make ~name:"simulated counting network counts (all modes)" ~count:10
    QCheck.(triple (int_range 0 2) (int_range 1 10) (int_range 1 6))
    (fun (mode_idx, requesters, per_thread) ->
      let mode =
        List.nth
          [
            Counting_network.Messaging Cm_core.Prelude.Migrate;
            Counting_network.Messaging Cm_core.Prelude.Rpc;
            Counting_network.Shared_memory;
          ]
          mode_idx
      in
      let e = env ~n:(24 + requesters) ~seed:(requesters + per_thread) () in
      let cn = Counting_network.create e mode in
      for r = 0 to requesters - 1 do
        Machine.spawn e.Sysenv.machine ~on:(24 + r)
          (Thread.repeat per_thread (fun _ ->
               Thread.ignore_m (Counting_network.traverse cn ~input_wire:(r mod 8))))
      done;
      Machine.run e.Sysenv.machine;
      let total = requesters * per_thread in
      Counting_network.tokens_delivered cn = total
      && Counting_network.satisfies_step_property cn
      && List.sort compare (Counting_network.values_issued cn) = List.init total (fun i -> i))

let prop_plan_heights =
  QCheck.Test.make ~name:"bulk-load height matches capacity bound" ~count:50
    QCheck.(pair (int_range 4 40) (int_range 1 2000))
    (fun (fanout, n) ->
      let keys = List.init n (fun i -> i) in
      let plan = Btree_node.build_plan ~keys ~fanout ~fill:0.7 in
      let h = Btree_node.plan_height plan in
      (* Every key must be reachable within the height bound for minimum
         half-full nodes, and the plan must never exceed fanout. *)
      let rec max_keys levels = if levels = 1 then fanout else fanout * max_keys (levels - 1) in
      h >= 1 && n <= max_keys h)

let test_btree_sm_seqlock_mode_correct () =
  (* The seqlock (lock-free readers) ablation must still be correct
     under concurrent inserts and lookups. *)
  let e = env ~n:24 ~seed:31 () in
  let tree =
    Btree.create e ~mode:Btree.Shared_memory ~fanout:5 ~sm_read_mode:Btree_sm.Seqlock
      ~node_procs:(node_procs 12)
      ~keys:[ 1000 ] ()
  in
  let wrong = ref 0 in
  for th = 0 to 5 do
    Machine.spawn e.Sysenv.machine ~on:(12 + th)
      (Thread.repeat 25 (fun i ->
           if i mod 2 = 0 then Thread.ignore_m (Btree.insert tree ((th * 307) + i))
           else
             let* present = Btree.lookup tree 1000 in
             if not present then incr wrong;
             Thread.return ()))
  done;
  Machine.run e.Sysenv.machine;
  Alcotest.(check int) "preloaded key always found" 0 !wrong;
  (match Btree.check_invariants tree with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e);
  let expect =
    List.sort_uniq compare
      (1000
      :: List.concat_map
           (fun th -> List.filteri (fun i _ -> i mod 2 = 0) (List.init 25 (fun i -> (th * 307) + i)))
           (List.init 6 (fun th -> th)))
  in
  Alcotest.(check (list int)) "keys all present" expect (Btree.all_keys tree)

let test_btree_torus_topology () =
  (* The apps must run unchanged on other interconnects. *)
  let machine = Machine.create ~seed:3 ~topology:`Torus ~n_procs:16 ~costs:Costs.software () in
  let e = Sysenv.make machine in
  let tree =
    Btree.create e
      ~mode:(Btree.Messaging Cm_core.Prelude.Migrate)
      ~fanout:8
      ~node_procs:(node_procs 8)
      ~keys:(List.init 100 (fun i -> i * 3))
      ()
  in
  let hits = ref 0 in
  Machine.spawn machine ~on:14
    (Thread.repeat 20 (fun i ->
         let* present = Btree.lookup tree (i * 15) in
         if present then incr hits;
         Thread.return ()));
  Machine.run machine;
  Alcotest.(check int) "every multiple of 15 < 300 found" 20 !hits

(* ------------------------------------------------------------------ *)

let qsuite props = List.map QCheck_alcotest.to_alcotest props

let () =
  Alcotest.run "cm_apps"
    [
      ( "balancer_net",
        [
          Alcotest.test_case "shape 8" `Quick test_net_shape;
          Alcotest.test_case "other widths" `Quick test_net_shape_other_widths;
          Alcotest.test_case "bad width" `Quick test_net_bad_width;
          Alcotest.test_case "layers" `Quick test_net_layers_within_depth;
          Alcotest.test_case "exit feeders" `Quick test_net_every_exit_has_feeder;
        ]
        @ qsuite [ prop_net_step_property ] );
      ( "counting_network",
        [
          Alcotest.test_case "migrate correct" `Quick test_counting_migrate_correct;
          Alcotest.test_case "rpc correct" `Quick test_counting_rpc_correct;
          Alcotest.test_case "shared memory correct" `Quick test_counting_sm_correct;
          Alcotest.test_case "think time" `Quick test_counting_with_think_time;
          Alcotest.test_case "migrate message pattern" `Quick test_counting_migrate_message_pattern;
          Alcotest.test_case "rpc ~2x messages" `Quick test_counting_rpc_twice_the_messages;
          Alcotest.test_case "sm bandwidth highest" `Quick test_counting_sm_bandwidth_highest;
          Alcotest.test_case "bad wire" `Quick test_counting_bad_wire;
        ] );
      ( "btree_node",
        [
          Alcotest.test_case "find child index" `Quick test_node_find_child_index;
          Alcotest.test_case "member insert" `Quick test_node_member_insert;
          Alcotest.test_case "split point" `Quick test_node_split_point;
          Alcotest.test_case "plan shapes (paper)" `Quick test_plan_shapes_match_paper;
          Alcotest.test_case "plan preserves keys" `Quick test_plan_preserves_keys;
        ]
        @ qsuite [ prop_plan_keys_roundtrip ] );
      ( "btree",
        [
          Alcotest.test_case "lookup preloaded" `Quick test_btree_lookup_preloaded;
          Alcotest.test_case "insert then lookup" `Quick test_btree_insert_then_lookup;
          Alcotest.test_case "split chain" `Quick test_btree_many_inserts_split_chain;
          Alcotest.test_case "concurrent inserts" `Quick test_btree_concurrent_inserts;
          Alcotest.test_case "concurrent mixed" `Quick test_btree_concurrent_mixed_workload;
          Alcotest.test_case "root bottleneck relief" `Quick test_btree_migrate_root_bottleneck;
          Alcotest.test_case "modes agree" `Quick test_btree_modes_agree;
          Alcotest.test_case "sm lookups use no node cpu" `Quick
            test_btree_sm_uses_no_node_cpu_for_lookups;
          Alcotest.test_case "seqlock mode correct" `Quick test_btree_sm_seqlock_mode_correct;
          Alcotest.test_case "torus topology" `Quick test_btree_torus_topology;
        ]
        @ qsuite
            [
              prop_btree_matches_reference;
              prop_counting_concurrent_step_property;
              prop_plan_heights;
            ] );
    ]
