test/test_dht.ml: Alcotest Array Cm_apps Cm_core Cm_machine Costs Dht Gen Hashtbl List Machine Network Printf Processor QCheck QCheck_alcotest Sysenv Thread
