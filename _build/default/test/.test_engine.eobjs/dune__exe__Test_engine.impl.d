test/test_engine.ml: Alcotest Array Cm_engine Float Gen Heap List QCheck QCheck_alcotest Rng Sim Stats Trace
