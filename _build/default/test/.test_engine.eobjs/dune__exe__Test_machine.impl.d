test/test_machine.ml: Alcotest Cm_engine Cm_machine Costs List Machine Network Printf Processor QCheck QCheck_alcotest Sim Stats String Thread Topology
