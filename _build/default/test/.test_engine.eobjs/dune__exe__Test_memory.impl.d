test/test_memory.ml: Alcotest Array Cache Cm_engine Cm_machine Cm_memory Costs Gen List Lock Machine Network Printf Processor QCheck QCheck_alcotest Rwlock Shmem Stats Thread
