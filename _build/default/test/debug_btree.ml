(* Standalone reproduction driver for B-tree invariant debugging. *)

open Cm_machine
open Cm_apps
open Thread.Infix

let () =
  let mode_name = try Sys.argv.(1) with _ -> "rpc" in
  let repl = try Sys.argv.(2) = "repl" with _ -> false in
  let mode =
    match mode_name with
    | "rpc" -> Btree.Messaging Cm_core.Prelude.Rpc
    | "migrate" -> Btree.Messaging Cm_core.Prelude.Migrate
    | "sm" -> Btree.Shared_memory
    | _ -> failwith "mode?"
  in
  let n_procs = 24 in
  let e = Sysenv.make (Machine.create ~seed:5 ~n_procs ~costs:Costs.software ()) in
  let tree =
    Btree.create e ~mode ~fanout:4 ~replicate_root:repl
      ~node_procs:(Array.init (n_procs / 2) (fun i -> i))
      ~keys:[ 500000 ] ()
  in
  let per_thread = 30 and threads = 8 in
  for th = 0 to threads - 1 do
    Machine.spawn e.Sysenv.machine ~on:(12 + th)
      (Thread.repeat per_thread (fun i ->
           let* _ = Btree.insert tree ((th * 1009) + (i * 131)) in
           Thread.return ()))
  done;
  Machine.run e.Sysenv.machine;
  let expect =
    List.sort_uniq compare
      (500000
      :: List.concat_map
           (fun th -> List.init per_thread (fun i -> (th * 1009) + (i * 131)))
           (List.init threads (fun th -> th)))
  in
  let got = Btree.all_keys tree in
  Printf.printf "keys ok: %b (expect %d got %d)\n" (expect = got) (List.length expect)
    (List.length got);
  (match Btree.check_invariants tree with
  | Ok () -> print_endline "invariants ok"
  | Error e -> Printf.printf "INVARIANT: %s\n" e);
  Printf.printf "height=%d splits=%d root_children=%d\n" (Btree.height tree) (Btree.splits tree)
    (Btree.root_children tree);
  if Array.length Sys.argv > 3 && Sys.argv.(3) = "dump" then print_string (Btree.dump tree);
  List.iter
    (fun (k, v) ->
      if String.length k > 5 && String.sub k 0 5 = "btree" then Printf.printf "%s=%d\n" k v)
    (Cm_engine.Stats.counters e.Sysenv.machine.Machine.stats)

