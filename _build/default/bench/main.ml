(* The benchmark harness.

   Running this executable regenerates every table and figure of the
   paper's evaluation (the same rows `bin/repro all` prints), then runs
   one Bechamel micro-benchmark per table/figure, timing the simulation
   that regenerates it (at reduced horizons, so the measurement loop
   stays tractable).

   Usage:
     dune exec bench/main.exe              reproduction rows + bechamel
     dune exec bench/main.exe -- rows      reproduction rows only
     dune exec bench/main.exe -- bench     bechamel timings only
     dune exec bench/main.exe -- quick     reduced-horizon rows + bechamel
*)

open Cm_experiments

let bench_scheme_counting scheme requesters () =
  ignore
    (Counting_run.run scheme
       {
         Counting_run.default with
         Counting_run.requesters;
         horizon = 60_000;
         warmup = 10_000;
       })

let bench_scheme_btree scheme think () =
  ignore
    (Btree_run.run scheme
       { Btree_run.default with Btree_run.think; horizon = 60_000; warmup = 10_000 })

let bench_fig1 () =
  (* One large cell of the message-model sweep per mechanism. *)
  ignore (Fig1.run_messaging ~access:Cm_runtime.Runtime.Migrate ~n:16 ~m:32);
  ignore (Fig1.run_messaging ~access:Cm_runtime.Runtime.Rpc ~n:16 ~m:32);
  ignore (Fig1.run_shmem ~n:16 ~m:32)

let bench_table5 () = ignore (Table5.measure_one_migration ())

let bechamel_tests =
  let open Bechamel in
  [
    Test.make ~name:"fig1:message-model" (Staged.stage bench_fig1);
    Test.make ~name:"fig2:counting-throughput"
      (Staged.stage (bench_scheme_counting (Scheme.Cp { hw = false; repl = false }) 32));
    Test.make ~name:"fig3:counting-bandwidth"
      (Staged.stage (bench_scheme_counting Scheme.Sm 32));
    Test.make ~name:"table1:btree-throughput"
      (Staged.stage (bench_scheme_btree (Scheme.Cp { hw = false; repl = false }) 0));
    Test.make ~name:"table2:btree-bandwidth" (Staged.stage (bench_scheme_btree Scheme.Sm 0));
    Test.make ~name:"table3:btree-think"
      (Staged.stage (bench_scheme_btree (Scheme.Cp { hw = false; repl = true }) 10_000));
    Test.make ~name:"table4:btree-think-bw" (Staged.stage (bench_scheme_btree Scheme.Sm 10_000));
    Test.make ~name:"table5:migration-cost" (Staged.stage bench_table5);
    Test.make ~name:"fanout10:small-nodes"
      (Staged.stage (fun () ->
           ignore
             (Btree_run.run
                (Scheme.Cp { hw = false; repl = true })
                { Btree_run.fanout10 with Btree_run.horizon = 60_000; warmup = 10_000 })));
  ]

let run_bechamel () =
  print_endline "\n=== Bechamel micro-benchmarks (wall-clock of the regenerating sims) ===";
  let open Bechamel in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name measurements ->
          let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
          let stats = Analyze.one ols Toolkit.Instance.monotonic_clock measurements in
          match Analyze.OLS.estimates stats with
          | Some [ est ] -> Printf.printf "%-28s %12.0f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "%-28s (no estimate)\n%!" name)
        results)
    bechamel_tests

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let quick = mode = "quick" in
  if mode <> "bench" then begin
    print_endline "Reproduction of every table and figure (see EXPERIMENTS.md for discussion):";
    Registry.run_all ~quick ()
  end;
  if mode <> "rows" then run_bechamel ()
