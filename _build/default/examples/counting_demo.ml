(* The counting-network application (paper §4.1), runnable: 24 balancers
   on 24 processors, a handful of requester threads drawing shared
   counter values through the network under each mechanism.  Verifies
   the step property and that the values handed out form a gap-free
   range, then compares throughput and traffic.

   Run with:  dune exec examples/counting_demo.exe
*)

open Cm_machine
open Cm_apps
open Thread.Infix

let requesters = 16

let per_thread = 12

let run mode =
  let machine = Machine.create ~n_procs:(24 + requesters) ~costs:Costs.software () in
  let env = Sysenv.make machine in
  let network = Counting_network.create env mode in
  let finished = ref 0 in
  for r = 0 to requesters - 1 do
    Machine.spawn machine ~on:(24 + r)
      (let* () =
         Thread.repeat per_thread (fun _ ->
             Thread.ignore_m (Counting_network.traverse network ~input_wire:(r mod 8)))
       in
       finished := max !finished (Machine.now machine);
       Thread.return ())
  done;
  Machine.run machine;
  let total = requesters * per_thread in
  let values = List.sort compare (Counting_network.values_issued network) in
  let gap_free = values = List.init total (fun i -> i) in
  Printf.printf "%-14s  %4d tokens in %6d cycles;  step property: %b;  values 0..%d: %b\n"
    (Counting_network.mode_name mode)
    (Counting_network.tokens_delivered network)
    !finished
    (Counting_network.satisfies_step_property network)
    (total - 1) gap_free;
  Printf.printf "%-14s  messages=%d words=%d\n\n" ""
    (Network.total_messages machine.Machine.net)
    (Network.total_words machine.Machine.net)

let () =
  Printf.printf
    "An 8-wide bitonic counting network (6 stages x 4 balancers on 24 processors).\n\
     %d threads each draw %d shared-counter values.  Whatever the mechanism, the\n\
     network must hand out exactly the values 0..%d with the step property on its\n\
     output wires.\n\n"
    requesters per_thread
    ((requesters * per_thread) - 1);
  run (Counting_network.Messaging Cm_core.Prelude.Rpc);
  run (Counting_network.Messaging Cm_core.Prelude.Migrate);
  run Counting_network.Shared_memory
