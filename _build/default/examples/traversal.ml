(* The paper's Figure 1 scenario, made concrete: a thread on processor 0
   traverses a linked structure whose records are scattered over the
   other processors, reading each record a few times before following
   the link.  We run it under all three mechanisms and report messages,
   words and completion time — the message counts land exactly on the
   paper's model (RPC 2nm, data migration 2m, computation migration
   m+1).

   Run with:  dune exec examples/traversal.exe
*)

open Cm_machine
open Cm_memory
open Cm_runtime
open Cm_core
open Thread.Infix

let m = 12 (* records, one per processor 1..m *)

let n = 3 (* accesses per record *)

(* A record: a value and the index of the next record (-1 at the end). *)
type record = { value : int; next : int }

let report name machine finished =
  Printf.printf "%-20s messages=%-4d words=%-5d cycles=%d\n" name
    (Network.total_messages machine.Machine.net)
    (Network.total_words machine.Machine.net)
    finished

(* Messaging traversal: records are objects; each visit is an annotated
   instance-method call reading the record [n] times. *)
let messaging access =
  let machine = Machine.create ~n_procs:(m + 1) ~costs:Costs.software () in
  let prelude = Prelude.create machine in
  let records =
    Array.init m (fun i ->
        Prelude.make_obj prelude ~home:(i + 1)
          { value = 10 * i; next = (if i = m - 1 then -1 else i + 1) })
  in
  let total = ref 0 and finished = ref 0 in
  Machine.spawn machine ~on:0
    (let* sum =
       Prelude.proc prelude
         (let rec walk i acc =
            if i < 0 then Thread.return acc
            else
              (* n separate accesses to the record: n annotated calls.
                 Under RPC each is a round trip; under migration only
                 the first moves the activation, the rest are local. *)
              let* () =
                Thread.repeat (n - 1) (fun _ ->
                    Prelude.invoke prelude ~access records.(i) (fun _ -> Thread.compute 20))
              in
              let* v, next =
                Prelude.invoke prelude ~access records.(i) (fun r ->
                    let* () = Thread.compute 20 in
                    Thread.return (r.value, r.next))
              in
              walk next (acc + v)
          in
          walk 0 0)
     in
     total := sum;
     finished := Machine.now machine;
     Thread.return ());
  Machine.run machine;
  assert (!total = 10 * (m * (m - 1) / 2));
  report (Runtime.access_name access) machine !finished

(* Shared-memory traversal: records are words in coherent memory; the
   thread stays on processor 0 and the lines migrate to it. *)
let shared_memory () =
  let machine = Machine.create ~n_procs:(m + 1) ~costs:Costs.software () in
  let mem = Shmem.create machine in
  let addrs =
    Array.init m (fun i ->
        let a = Shmem.alloc mem ~home:(i + 1) ~words:2 in
        Shmem.poke mem a (10 * i);
        Shmem.poke mem (a + 1) (if i = m - 1 then -1 else i + 1);
        a)
  in
  let total = ref 0 and finished = ref 0 in
  Machine.spawn machine ~on:0
    (let rec walk i acc =
       if i < 0 then Thread.return acc
       else
         (* n accesses: the first read misses, the rest hit the cache. *)
         let* () =
           Thread.repeat (n - 1) (fun _ ->
               let* _ = Shmem.read mem addrs.(i) in
               Thread.compute 20)
         in
         let* v = Shmem.read mem addrs.(i) in
         let* next = Shmem.read mem (addrs.(i) + 1) in
         let* () = Thread.compute 20 in
         walk next (acc + v)
     in
     let* sum = walk 0 0 in
     total := sum;
     finished := Machine.now machine;
     Thread.return ());
  Machine.run machine;
  assert (!total = 10 * (m * (m - 1) / 2));
  report "data migration" machine !finished

let () =
  Printf.printf
    "One thread on P0 visits %d records (on P1..P%d), reading each %d times.\n\
     The paper's Figure 1 message model: RPC 2nm = %d, data migration 2m = %d,\n\
     computation migration m+1 = %d.\n\n"
    m m n (2 * n * m) (2 * m) (m + 1);
  messaging Prelude.Rpc;
  shared_memory ();
  messaging Prelude.Migrate;
  print_newline ();
  Printf.printf "Computation migration hops down the chain and sends one result home:\n";
  Printf.printf "fewest messages, fewest words, and every re-access is local.\n"
