examples/traversal.mli:
