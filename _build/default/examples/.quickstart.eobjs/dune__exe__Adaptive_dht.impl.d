examples/adaptive_dht.ml: Array Cm_apps Cm_core Cm_machine Costs Dht List Machine Network Printf Sysenv Thread
