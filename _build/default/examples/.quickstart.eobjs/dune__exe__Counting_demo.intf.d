examples/counting_demo.mli:
