examples/traversal.ml: Array Cm_core Cm_machine Cm_memory Cm_runtime Costs Machine Network Prelude Printf Runtime Shmem Thread
