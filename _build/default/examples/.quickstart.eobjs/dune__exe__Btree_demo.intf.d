examples/btree_demo.mli:
