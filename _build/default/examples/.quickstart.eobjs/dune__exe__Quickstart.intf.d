examples/quickstart.mli:
