examples/counting_demo.ml: Cm_apps Cm_core Cm_machine Costs Counting_network List Machine Network Printf Sysenv Thread
