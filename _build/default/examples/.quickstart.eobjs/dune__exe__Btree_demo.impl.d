examples/btree_demo.ml: Array Btree Cm_apps Cm_core Cm_engine Cm_machine Costs List Machine Printf Sysenv Thread
