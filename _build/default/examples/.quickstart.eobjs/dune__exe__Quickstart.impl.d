examples/quickstart.ml: Cm_core Cm_machine Cm_runtime Costs Machine Network Prelude Printf Runtime Thread
