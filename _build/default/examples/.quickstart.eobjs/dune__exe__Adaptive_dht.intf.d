examples/adaptive_dht.mli:
