(* The distributed B-tree application (paper §4.2), runnable: a tree
   preloaded with 2000 keys over 24 node processors, 8 requester threads
   running a lookup/insert mix under every scheme, including root
   replication for the messaging mechanisms.  Afterwards the tree's
   structural invariants are checked and the mechanisms compared.

   Run with:  dune exec examples/btree_demo.exe
*)

open Cm_machine
open Cm_apps
open Thread.Infix

let node_procs = 24

let requesters = 8

let horizon = 120_000

let preload = List.init 2000 (fun i -> i * 41)

let run ~label ~mode ~replicate_root =
  let machine =
    Machine.create ~n_procs:(node_procs + requesters) ~costs:Costs.software ()
  in
  let env = Sysenv.make machine in
  let tree =
    Btree.create env ~mode ~fanout:20 ~replicate_root
      ~node_procs:(Array.init node_procs (fun i -> i))
      ~keys:preload ()
  in
  let ops = ref 0 in
  for r = 0 to requesters - 1 do
    Machine.spawn machine ~on:(node_procs + r)
      (Thread.while_
         (fun () -> Machine.now machine < horizon)
         (let* rng = Thread.rng in
          let key = Cm_engine.Rng.int rng 100_000 in
          let* () =
            if Cm_engine.Rng.bool rng then Thread.ignore_m (Btree.lookup tree key)
            else Thread.ignore_m (Btree.insert tree key)
          in
          incr ops;
          Thread.return ()))
  done;
  Machine.run ~until:horizon machine;
  (* Let operations that were in flight at the horizon finish, so the
     structural check sees a quiescent tree. *)
  Machine.run machine;
  let invariants = match Btree.check_invariants tree with Ok () -> "ok" | Error e -> e in
  Printf.printf "%-22s  %5d ops  (%.2f ops/1000cyc)  height=%d splits=%-3d invariants: %s\n"
    label !ops
    (1000. *. float_of_int !ops /. float_of_int horizon)
    (Btree.height tree) (Btree.splits tree) invariants

let () =
  Printf.printf
    "A B-link tree with %d preloaded keys on %d processors; %d threads run a\n\
     50/50 lookup/insert mix for %d cycles under each scheme.\n\n"
    (List.length preload) node_procs requesters horizon;
  run ~label:"RPC" ~mode:(Btree.Messaging Cm_core.Prelude.Rpc) ~replicate_root:false;
  run ~label:"RPC + root repl." ~mode:(Btree.Messaging Cm_core.Prelude.Rpc) ~replicate_root:true;
  run ~label:"migration" ~mode:(Btree.Messaging Cm_core.Prelude.Migrate) ~replicate_root:false;
  run ~label:"migration + root repl."
    ~mode:(Btree.Messaging Cm_core.Prelude.Migrate)
    ~replicate_root:true;
  run ~label:"shared memory" ~mode:Btree.Shared_memory ~replicate_root:false;
  print_newline ();
  Printf.printf
    "Migration beats RPC (fewer messages, no reply cascades); replicating the\n\
     root moves its load off the root's processor; shared memory rides its\n\
     hardware caches but pays coherence traffic for every hand-off.\n"
