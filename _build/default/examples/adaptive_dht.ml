(* Automatic mechanism selection (the paper's §6 future work) on a
   workload where no single mechanism wins everywhere: a distributed
   hash table serving point lookups (isolated accesses — RPC territory)
   and range scans (chained accesses — migration territory).

   The adaptive runtime profiles each call site and learns, per site,
   whether calls tend to be followed by more calls in the same
   activation; sites with follow-on work migrate, isolated sites use
   RPC.  We compare its traffic against the two static policies.

   Run with:  dune exec examples/adaptive_dht.exe
*)

open Cm_machine
open Cm_apps
open Thread.Infix

let node_procs = Array.init 8 (fun i -> i)

let workload table =
  let* () = Thread.repeat 60 (fun i -> Dht.put table ~key:(i * 17) ~value:i) in
  let* () = Thread.repeat 120 (fun i -> Thread.ignore_m (Dht.get table (i * 17 mod 1020))) in
  Thread.repeat 20 (fun i ->
      Thread.ignore_m (Dht.range_sum table ~first_bucket:(i mod 8) ~n_buckets:16))

let run mode =
  let machine = Machine.create ~n_procs:10 ~costs:Costs.software () in
  let env = Sysenv.make machine in
  let table = Dht.create env ~buckets:32 ~mode ~node_procs () in
  let finished = ref 0 in
  Machine.spawn machine ~on:9
    (let* () = workload table in
     finished := Machine.now machine;
     Thread.return ());
  Machine.run machine;
  Printf.printf "%-12s messages=%-5d words=%-6d cycles=%d\n" (Dht.mode_name mode)
    (Network.total_messages machine.Machine.net)
    (Network.total_words machine.Machine.net)
    !finished;
  table

let () =
  Printf.printf
    "A mixed workload on a 32-bucket distributed hash table: 60 puts, 120 point\n\
     lookups (isolated accesses) and 20 sixteen-bucket range scans (chained\n\
     accesses), under each static mechanism and under adaptive selection.\n\n";
  ignore (run (Dht.Messaging Cm_core.Prelude.Rpc));
  ignore (run (Dht.Messaging Cm_core.Prelude.Migrate));
  let adaptive = run Dht.Adaptive in
  print_newline ();
  Printf.printf "What the adaptive runtime learned (follow-count estimate per site):\n";
  List.iter
    (fun (name, estimate, samples) ->
      Printf.printf "  %-16s estimate=%5.2f (from %d activations) -> %s\n" name estimate samples
        (if estimate >= 1. then "migrate" else "rpc"))
    (Dht.adaptive_report adaptive);
  print_newline ();
  Printf.printf
    "Point operations stay RPC; range scans migrate.  The adaptive run's traffic\n\
     tracks whichever static policy is better for each part of the workload.\n"
