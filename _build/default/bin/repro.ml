(* Command-line driver: regenerate any table or figure of the paper.

   Usage:
     repro all [--quick]          every experiment in paper order
     repro fig2 [--quick]         one experiment
     repro list                   show available experiments
     repro custom ...             a custom single run (scheme/app/params)
*)

open Cmdliner
open Cm_experiments

let quick_arg =
  let doc = "Run with reduced horizons and fewer sweep points (for smoke tests)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let experiment_cmd entry =
  let doc = entry.Registry.title in
  Cmd.v
    (Cmd.info entry.Registry.id ~doc)
    Term.(const (fun quick -> entry.Registry.run ~quick ()) $ quick_arg)

let all_cmd =
  let doc = "Run every table and figure in paper order." in
  Cmd.v (Cmd.info "all" ~doc) Term.(const (fun quick -> Registry.run_all ~quick ()) $ quick_arg)

let list_cmd =
  let doc = "List available experiments." in
  let list () =
    List.iter (fun e -> Printf.printf "%-10s %s\n" e.Registry.id e.Registry.title) Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list $ const ())

(* A single custom run, for exploration. *)
let custom_cmd =
  let scheme_arg =
    let doc = "Scheme: sm, rpc, cp, optionally +hw and/or +repl (e.g. cp+repl+hw)." in
    Arg.(value & opt string "cp" & info [ "scheme" ] ~doc)
  in
  let app_arg =
    let doc = "Application: counting or btree." in
    Arg.(value & opt string "btree" & info [ "app" ] ~doc)
  in
  let think_arg =
    let doc = "Think time in cycles between requests." in
    Arg.(value & opt int 0 & info [ "think" ] ~doc)
  in
  let requesters_arg =
    let doc = "Number of requester threads." in
    Arg.(value & opt int 16 & info [ "requesters" ] ~doc)
  in
  let horizon_arg =
    let doc = "Simulated cycles to run." in
    Arg.(value & opt int 400_000 & info [ "horizon" ] ~doc)
  in
  let fanout_arg =
    let doc = "B-tree fanout." in
    Arg.(value & opt int 100 & info [ "fanout" ] ~doc)
  in
  let detail_arg =
    let doc = "Print a post-run machine report (utilizations, traffic by kind)." in
    Arg.(value & flag & info [ "detail" ] ~doc)
  in
  let run scheme app think requesters horizon fanout detail =
    match Scheme.of_string scheme with
    | Error e -> `Error (false, e)
    | Ok s ->
      let machine, metrics =
        match app with
        | "counting" ->
          Counting_run.run_with_machine s
            { Counting_run.default with Counting_run.think; requesters; horizon }
        | "btree" ->
          Btree_run.run_with_machine s
            { Btree_run.default with Btree_run.think; requesters; horizon; fanout }
        | other -> failwith (Printf.sprintf "unknown app %S (counting|btree)" other)
      in
      Printf.printf "%s on %s: %s (mean op latency %.0f cycles)\n" (Scheme.name s) app
        (Format.asprintf "%a" Cm_workload.Metrics.pp metrics)
        metrics.Cm_workload.Metrics.mean_latency;
      if detail then Cm_workload.Detail.print machine;
      `Ok ()
  in
  let doc = "One custom run with explicit parameters." in
  Cmd.v (Cmd.info "custom" ~doc)
    Term.(
      ret
        (const run $ scheme_arg $ app_arg $ think_arg $ requesters_arg $ horizon_arg
       $ fanout_arg $ detail_arg))

let () =
  let doc = "Reproduce the evaluation of Hsieh/Wang/Weihl, PPoPP 1993" in
  let info = Cmd.info "repro" ~version:"1.0" ~doc in
  let default = Term.(ret (const (fun _ -> `Help (`Pager, None)) $ const ())) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          ([ all_cmd; list_cmd; custom_cmd ] @ List.map experiment_cmd Registry.all)))
