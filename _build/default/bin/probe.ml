(* Quick calibration probe: print metrics for key scheme/app combos. *)
open Cm_experiments

let () =
  let quick = Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" in
  let horizon = if quick then 150_000 else 400_000 in
  Printf.printf "--- counting network, think=0, requesters=16 ---\n%!";
  List.iter
    (fun s ->
      let m =
        Counting_run.run s { Counting_run.default with Counting_run.horizon; requesters = 16 }
      in
      Printf.printf "%-18s %s\n%!" (Scheme.name s)
        (Format.asprintf "%a" Cm_workload.Metrics.pp m))
    [
      Scheme.Sm;
      Scheme.Cp { hw = true; repl = false };
      Scheme.Cp { hw = false; repl = false };
      Scheme.Rpc { hw = true; repl = false };
      Scheme.Rpc { hw = false; repl = false };
    ];
  Printf.printf "--- counting network, think=0, requesters=64 ---\n%!";
  List.iter
    (fun s ->
      let m =
        Counting_run.run s
          { Counting_run.default with Counting_run.horizon; requesters = 64 }
      in
      Printf.printf "%-18s %s\n%!" (Scheme.name s)
        (Format.asprintf "%a" Cm_workload.Metrics.pp m))
    [ Scheme.Sm; Scheme.Cp { hw = true; repl = false }; Scheme.Rpc { hw = false; repl = false } ];
  Printf.printf "--- btree fanout=100, think=0 ---\n%!";
  List.iter
    (fun s ->
      let m = Btree_run.run s { Btree_run.default with Btree_run.horizon } in
      Printf.printf "%-18s %s hit=%.3f\n%!" (Scheme.name s)
        (Format.asprintf "%a" Cm_workload.Metrics.pp m)
        m.Cm_workload.Metrics.cache_hit_rate)
    [
      Scheme.Sm;
      Scheme.Rpc { hw = false; repl = false };
      Scheme.Rpc { hw = true; repl = false };
      Scheme.Rpc { hw = false; repl = true };
      Scheme.Rpc { hw = true; repl = true };
      Scheme.Cp { hw = false; repl = false };
      Scheme.Cp { hw = true; repl = false };
      Scheme.Cp { hw = false; repl = true };
      Scheme.Cp { hw = true; repl = true };
    ]
