open Cm_engine
open Cm_machine
open Thread.Infix

type 'state t = {
  rt : Runtime.t;
  space : 'state Objspace.t;
  words_of : 'state -> int;
  n_procs : int;
  (* (processor, object) -> believed home, keyed by the flat int
     [object * n_procs + processor] — hint lookups on the forwarding
     fast path allocate no tuple key. *)
  hints : (int, int) Hashtbl.t;
  tp : Transport.t;
  call_k : unit Thread.t Transport.kind;
  forward_k : unit Thread.t Transport.kind;
  transfer_k : unit Thread.t Transport.kind;
  reply_k : unit Transport.kind;
  (* Pooled reply records: a reply carries an int slot holding the
     result and the serving home, instead of a boxed [(r, home)] pair
     inside a per-reply closure.  The caller unpacks and frees the slot
     when its resumption runs. *)
  mutable rs_r : Obj.t array;
  mutable rs_home : int array;
  mutable rs_free : int array;
  mutable rs_free_top : int;
}

let rs_alloc t =
  if t.rs_free_top = 0 then begin
    let cap = Array.length t.rs_home in
    let ncap = 2 * cap in
    let nr = Array.make ncap (Obj.repr 0) in
    Array.blit t.rs_r 0 nr 0 cap;
    let nh = Array.make ncap 0 in
    Array.blit t.rs_home 0 nh 0 cap;
    let nf = Array.make ncap 0 in
    Array.blit t.rs_free 0 nf 0 cap;
    t.rs_r <- nr;
    t.rs_home <- nh;
    t.rs_free <- nf;
    for k = 0 to cap - 1 do
      t.rs_free.(k) <- cap + k
    done;
    t.rs_free_top <- cap
  end;
  t.rs_free_top <- t.rs_free_top - 1;
  t.rs_free.(t.rs_free_top)

let rs_release t slot =
  t.rs_r.(slot) <- Obj.repr 0;
  t.rs_free.(t.rs_free_top) <- slot;
  t.rs_free_top <- t.rs_free_top + 1

let create rt space ~words_of =
  (* The object space and its location table are machine-global mutable
     state read synchronously from every caller's event. *)
  if Machine.shards (Runtime.machine rt) > 1 then
    invalid_arg
      "Objmig.create: the migrating-object space is machine-global mutable state and is not \
       shardable; create the machine with ~shards:1";
  let tp = Runtime.transport rt in
  (* Requests, forwards and state transfers all carry the computation to
     run at the destination as their payload; any processor can host an
     object, so endpoints exist everywhere. *)
  let call_k = Transport.kind tp "objmig_call" in
  let forward_k = Transport.kind tp "objmig_forward" in
  let transfer_k = Transport.kind tp "objmig_transfer" in
  Transport.Endpoint.register_all tp ~kind:call_k (fun m -> m);
  Transport.Endpoint.register_all tp ~kind:forward_k (fun m -> m);
  Transport.Endpoint.register_all tp ~kind:transfer_k (fun m -> m);
  {
    rt;
    space;
    words_of;
    n_procs = Machine.n_procs (Runtime.machine rt);
    hints = Hashtbl.create 64;
    tp;
    call_k;
    forward_k;
    transfer_k;
    reply_k = Transport.kind tp "objmig_reply";
    rs_r = Array.make 8 (Obj.repr 0);
    rs_home = Array.make 8 0;
    rs_free = Array.init 8 (fun k -> k);
    rs_free_top = 8;
  }

let machine t = Runtime.machine t.rt

let costs t = (machine t).Machine.costs

let stats t = (machine t).Machine.stats

(* The caller's current belief about where the object lives.  First use
   consults the (free) name service — afterwards only forwarding keeps
   beliefs up to date, as in Emerald. *)
let hint_key t ~pid i = ((i : Objspace.id :> int) * t.n_procs) + pid

(* Exception-based lookup: the hit path — every forwarding check — boxes
   no [Some]; only first use (a miss) pays the handler. *)
let hint t ~pid i =
  match Hashtbl.find t.hints (hint_key t ~pid i) with
  | h -> h
  | exception Not_found ->
    let h = Objspace.home t.space i in
    Hashtbl.replace t.hints (hint_key t ~pid i) h;
    h

let learn t ~pid i home = Hashtbl.replace t.hints (hint_key t ~pid i) home

let forwards t = Stats.get (stats t) "objmig.forwards"

let object_moves t = Stats.get (stats t) "objmig.moves"

(* Run [m] on the object as a handler occupying the delivery processor's
   CPU, then reply to [caller]; [resume] receives a pooled reply slot
   holding the result and the object's home at execution time (to repair
   the caller's hint).  The transport charges the receive pipeline
   before this body runs. *)
let rec serve t i ~caller ~args_words ~result_words m (resume : int -> unit) : unit Thread.t =
  let* p = Thread.proc in
  let on = Processor.id p in
  let here = Objspace.home t.space i in
  if here = on then
    let* r = m (Objspace.state t.space i) in
    let slot = rs_alloc t in
    t.rs_r.(slot) <- Obj.repr r;
    t.rs_home.(slot) <- on;
    Transport.notify_app t.tp t.reply_k ~dst:caller ~words:result_words resume slot
  else begin
    (* Stale home: forward the request to where the object went. *)
    Stats.incr (stats t) "objmig.forwards";
    Transport.post t.tp t.forward_k ~dst:here ~words:args_words
      (serve t i ~caller ~args_words ~result_words m resume)
  end

let call_cps t i ~args_words ~result_words m =
  let c = costs t in
  let* () = Thread.compute c.Costs.forwarding_check in
  let* p = Thread.proc in
  let pid = Processor.id p in
  let believed = hint t ~pid i in
  if believed = pid && Objspace.home t.space i = pid then m (Objspace.state t.space i)
  else begin
    let target = if believed = pid then Objspace.home t.space i else believed in
    let* () = Thread.compute (Costs.send_pipeline c ~words:args_words) in
    let* slot =
      Thread.await (fun ~resume ->
          Transport.dispatch t.tp t.call_k ~src:pid ~dst:target ~words:args_words
            (serve t i ~caller:pid ~args_words ~result_words m resume))
    in
    let r = Obj.obj t.rs_r.(slot) in
    let home = t.rs_home.(slot) in
    rs_release t slot;
    learn t ~pid i home;
    let* () = Thread.compute (Costs.recv_pipeline c ~words:result_words ~new_thread:false) in
    Thread.return r
  end

(* --- the frame fast path of [call] ----------------------------------- *)

(* The caller-side steps replay [call_cps]'s events over the frame's
   method-site lane — forwarding-check hold, send hold, dispatch,
   release; enqueue, receive hold, resume — with no binds, no [Some]
   box from the hint, and no await/reply closures (the pooled reply
   slot rides in [m3]).  The request payload ([serve ... m resume]) is
   a per-call closure either way: it crosses the wire and runs on a
   server thread at the object's home.  Lane use: ms = space, mv =
   method (then result), m0 = object id, m1 = args words, m2 = result
   words, m3 = reply slot, m4 = believed target. *)

let om_done_step c =
  let r : Obj.t = Thread.Frame.getmv c in
  Thread.Frame.call_k c r

let om_reply_step c =
  let t : Obj.t t = Thread.Frame.getms c in
  let slot = Thread.Frame.getm3 c in
  let r = t.rs_r.(slot) in
  let home = t.rs_home.(slot) in
  rs_release t slot;
  learn t
    ~pid:(Processor.id (Thread.Frame.proc c))
    (Objspace.id_of_int (Thread.Frame.getm0 c))
    home;
  Thread.Frame.setmv c r;
  Thread.Frame.hold_then c
    (Costs.recv_pipeline (costs t) ~words:(Thread.Frame.getm2 c) ~new_thread:false)
    om_done_step

(* The reply landed: park the slot and re-enqueue the caller — the same
   enqueue [Thread.await]'s resumption performs. *)
let om_resume_step c (v : Obj.t) =
  Thread.Frame.setm3 c (Obj.magic v : int);
  Thread.Frame.enqueue_then c om_reply_step

let om_send_step c =
  let t : Obj.t t = Thread.Frame.getms c in
  let i = Objspace.id_of_int (Thread.Frame.getm0 c) in
  let pid = Processor.id (Thread.Frame.proc c) in
  let args_words = Thread.Frame.getm1 c in
  let resume : int -> unit = Thread.Frame.resume c om_resume_step in
  Transport.dispatch t.tp t.call_k ~src:pid ~dst:(Thread.Frame.getm4 c) ~words:args_words
    (serve t i ~caller:pid ~args_words ~result_words:(Thread.Frame.getm2 c)
       (Obj.magic (Thread.Frame.getmv c) : Obj.t -> Obj.t Thread.t)
       resume);
  Thread.Frame.release c

let om_call_step c =
  let t : Obj.t t = Thread.Frame.getms c in
  let i = Objspace.id_of_int (Thread.Frame.getm0 c) in
  let pid = Processor.id (Thread.Frame.proc c) in
  let believed = hint t ~pid i in
  if believed = pid && Objspace.home t.space i = pid then
    (Obj.magic (Thread.Frame.getmv c) : Obj.t -> Obj.t Thread.t)
      (Objspace.state t.space i)
      c (Thread.Frame.take_k c)
  else begin
    let target = if believed = pid then Objspace.home t.space i else believed in
    Thread.Frame.setm4 c target;
    Thread.Frame.hold_then c
      (Costs.send_pipeline (costs t) ~words:(Thread.Frame.getm1 c))
      om_send_step
  end

let call t i ~args_words ~result_words m c k =
  if Thread.Frame.on c then begin
    Thread.Frame.save_k c k;
    Thread.Frame.setms c t;
    Thread.Frame.setmv c m;
    Thread.Frame.setm0 c (i : Objspace.id :> int);
    Thread.Frame.setm1 c args_words;
    Thread.Frame.setm2 c result_words;
    Thread.Frame.hold_then c (costs t).Costs.forwarding_check om_call_step
  end
  else call_cps t i ~args_words ~result_words m c k

let migrate_object t i ~to_ =
  let c = costs t in
  let* p = Thread.proc in
  let pid = Processor.id p in
  let home = Objspace.home t.space i in
  if home = to_ then Thread.return ()
  else begin
    Stats.incr (stats t) "objmig.moves";
    let words = t.words_of (Objspace.state t.space i) in
    (* The home packs and ships the object's state to [to_], which
       unpacks it (the transfer endpoint's receive pipeline); the
       requester resumes once the object has landed. *)
    let transfer resume =
      Machine.spawn (machine t) ~on:home
        (let* () = Thread.compute (Costs.send_pipeline c ~words) in
         Objspace.move t.space i ~to_;
         fun _ctx k ->
           Transport.dispatch t.tp t.transfer_k ~src:home ~dst:to_ ~words
             (fun _ctx2 k2 ->
               resume ();
               k2 ());
           k ())
    in
    (* A control message reaches the home first when the requester is
       elsewhere. *)
    let* () =
      if pid = home then Thread.return ()
      else Thread.compute (Costs.send_pipeline c ~words:2)
    in
    let* () =
      Thread.await (fun ~resume ->
          if pid = home then transfer resume
          else
            Transport.signal t.tp t.call_k ~src:pid ~dst:home ~words:2 (fun () ->
                transfer resume))
    in
    learn t ~pid i to_;
    Thread.return ()
  end

let call_pull t i ~result_words m =
  let c = costs t in
  let* () = Thread.compute c.Costs.forwarding_check in
  let* p = Thread.proc in
  let pid = Processor.id p in
  ignore result_words;
  if Objspace.home t.space i = pid then m (Objspace.state t.space i)
  else
    let* () = migrate_object t i ~to_:pid in
    m (Objspace.state t.space i)
