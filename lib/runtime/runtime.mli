(** The Prelude-like runtime: remote access by RPC or computation
    migration.

    A remote access names a home processor and a body to execute there.
    Every access first pays the forwarding (locality) check; a local access
    then runs inline at no further cost — the paper's annotation affects
    only remote executions.  For a remote access the annotation picks the
    mechanism:

    {ul
    {- [Rpc]: the classic client/server stub pipeline.  The caller's CPU
       marshals and sends a request, the caller blocks; at the server a
       handler task is dispatched (scheduler), pays the receive pipeline
       (packet copy, thread creation, linkage, unmarshal, object-id
       translation, allocation), runs the body, then marshals and sends
       the reply; the caller pays reply reception and resumes.  Two
       messages per access; the thread never moves.}
    {- [Migrate]: computation migration.  The caller's CPU runs the same
       send pipeline, but the message carries the current activation's
       live variables — in this simulator, literally the thread's
       continuation — and the thread {e continues on the server}.  One
       message per access; subsequent accesses to objects on that
       processor are local.}}

    {!scope} delimits a migratable procedure activation: if the body ends
    on a different processor than it started (because accesses inside it
    migrated), one result message flows back to the origin, where the
    activation's caller frame lives.  A scope entered [~at_base:true]
    (the activation sits at the base of its portion of the stack, e.g. an
    RPC handler) skips that: its result is delivered wherever the thread
    ends — the paper's short-circuited return. *)

open Cm_machine

type t

type access = Rpc | Migrate

val create : Machine.t -> t
(** [create machine] is a runtime on [machine]. *)

val machine : t -> Machine.t

val transport : t -> Transport.t
(** The machine transport this runtime sends through (its kinds:
    ["rpc"], ["rpc_reply"], ["migrate"], ["migrate_return"],
    ["thread_migrate"]). *)

val access_name : access -> string
(** ["rpc"] or ["migrate"]. *)

val call :
  t ->
  access:access ->
  home:int ->
  args_words:int ->
  result_words:int ->
  'r Thread.t ->
  'r Thread.t
(** [call t ~access ~home ~args_words ~result_words body] performs a
    remote access to an object on [home], executing [body] there.
    [args_words] is the payload of the request (method arguments, or the
    migrating activation's live variables); [result_words] sizes the RPC
    reply ([Migrate] sends none).  After the call the thread is back on
    its original processor under [Rpc], and on [home] under [Migrate]. *)

type 'r site
(** A {e fused call site}: one annotated access bound for repeated
    invocation, with its home processor, body, mechanism, and every cost
    it can charge (forwarding check, send pipeline, receive pipeline)
    resolved at construction.  Invoking a site performs exactly the same
    events and counter updates as {!call} with the same arguments — run
    digests are identical — but the steady-state path reads the
    pre-resolved record instead of re-deriving costs and staging six
    frame slots per visit.  Build sites once (per object/method) and
    invoke them per access; see {!Cm_core.Prelude.invoke_site}. *)

val site :
  t ->
  access:access ->
  home:int ->
  args_words:int ->
  result_words:int ->
  'r Thread.t ->
  'r site
(** [site t ~access ~home ~args_words ~result_words body] binds the
    access once.  The arguments mean exactly what {!call}'s do. *)

val site_call : 'r site -> 'r Thread.t
(** [site_call s] performs the bound access; equivalent to the {!call}
    it was built from, invocation after invocation. *)

val scope : t -> ?at_base:bool -> result_words:int -> 'r Thread.t -> 'r Thread.t
(** [scope t ~result_words body] runs [body] as one procedure activation;
    see the module description.  [at_base] defaults to [false]. *)

(** {1 Per-object method sites}

    {!site} fuses one static access; a {e method site} fuses a whole
    (object-class, method) pair over the flat object store
    ({!Objspace}): body, mechanism, interned network kind, and every
    cost are resolved once at construction, while the home is one load
    from the store's home table per call — objects keep a mutable home
    ([Objspace.move]) and the next call lands at the new one.  A
    steady-state invocation writes the frame's method-site registers
    and walks static steps; the whole call/migrate/return cycle
    allocates nothing.  Events, counters, and costs replay
    {!scope}({!call}) exactly, so run digests cannot tell a fused call
    from a generic one; under sanitizers or armed faults the invocation
    falls back to the CPS reference path built from [cps_body]. *)

type 'r msite

val msite :
  t ->
  access:access ->
  space:Obj.t Objspace.t ->
  args_words:int ->
  result_words:int ->
  frame_body:(Thread.Frame.ctx -> unit) ->
  cps_body:(obj:int -> a:int -> b:int -> 'r Thread.t) ->
  'r msite
(** [msite t ~access ~space ~args_words ~result_words ~frame_body
    ~cps_body] binds one method of one object class.  [frame_body] runs
    at the object's home with the CPU held: it reads its operands with
    {!msite_obj}/{!msite_arg_a}/{!msite_arg_b} (object state through
    [space]), may suspend only via [Thread.Frame.hold_then]-style
    steps, must end with exactly one {!msite_finish}, and owns the
    frame's method-site lane for the duration (no nested method-site
    calls).  [cps_body] is the same method as a generic monad — run by
    the reference engine and shipped as the RPC server stub — and must
    charge identical costs in identical order. *)

val msite_call : 'r msite -> obj:int -> a:int -> b:int -> 'r Thread.t
(** [msite_call ms ~obj ~a ~b] invokes the method on [obj] (a raw
    {!Objspace.id}) with int operands [a]/[b] — equivalent to {!call}
    of the bound body at the object's current home.  Under [Migrate]
    the thread stays at the home afterwards (wrap in a {!scope}, or use
    {!msite_scoped}). *)

val msite_scoped : 'r msite -> obj:int -> a:int -> b:int -> 'r Thread.t
(** [msite_scoped ms ~obj ~a ~b] is {!scope}({!msite_call} ...) fused:
    one isolated access that returns to the caller's processor —
    byte-identical events to the generic composition, with the scope's
    per-call return closure eliminated. *)

val msite_obj : Thread.Frame.ctx -> int
(** Inside [frame_body]: the invoked object's id. *)

val msite_arg_a : Thread.Frame.ctx -> int
(** Inside [frame_body]: the first int operand. *)

val msite_arg_b : Thread.Frame.ctx -> int
(** Inside [frame_body]: the second int operand. *)

val msite_finish : Thread.Frame.ctx -> 'r -> unit
(** Inside [frame_body]: complete the invocation with a result — runs
    the scope-return logic ({!msite_scoped}) or the caller's
    continuation ({!msite_call}).  Must be called exactly once, with
    the ['r] the site was built at. *)

val fetch_residual : t -> origin:int -> words:int -> unit Thread.t
(** [fetch_residual t ~origin ~words] supports {e partial activation
    migration} (the paper's §6): a call annotated [Migrate] may carry
    only part of its live variables (a small [args_words]); if the
    migrated continuation turns out to need the rest, it fetches the
    [words]-word residual from [origin] with one request/reply round
    trip.  Carrying less is a bet: cheaper hops when the residual is
    never touched, an extra round trip when it is (see the "partial
    migration" ablation).  A no-op when already at [origin]. *)

val migrate_thread : t -> dst:int -> stack_words:int -> unit Thread.t
(** [migrate_thread t ~dst ~stack_words] performs whole-thread migration
    (the paper's §2.3 comparison point): the entire thread — modelled as
    [stack_words] words of stack state — moves to [dst] and stays there;
    nothing returns to the source.  Provided to quantify why the
    activation is the right grain: the state moved per hop is an order
    of magnitude larger, and the thread's subsequent unrelated work
    (request loops, think time) now loads the data's processor. *)

(** {1 Statistics}

    Counter names used by the runtime (in the machine's registry):
    ["rt.local_calls"], ["rt.rpc_calls"], ["rt.migrations"],
    ["rt.scope_returns"]. *)

val migrations : t -> int
(** Number of activation migrations performed. *)

val thread_migrations : t -> int
(** Number of whole-thread migrations performed. *)

val residual_fetches : t -> int
(** Number of residual-state fetches performed. *)

val rpc_calls : t -> int
(** Number of RPC round trips performed. *)

val local_calls : t -> int
(** Number of annotated calls that were satisfied locally. *)
