open Cm_machine
open Thread.Infix

(* Exponential-moving-average weight for new activation samples. *)
let alpha = 0.3

type site_state = {
  name : string;
  id : int;
  mutable estimate : float;  (* EWMA of calls following this site *)
  mutable samples : int;
  mutable explore_toggle : bool;  (* alternate mechanisms while exploring *)
}

type site = site_state

type t = {
  rt : Runtime.t;
  threshold : float;
  explore : int;
  mutable sites : site_state list;
  mutable next_site : int;
  (* Per running activation (keyed by thread id): the sites of the
     annotated calls made so far, most recent first. *)
  logs : (int, site_state list ref) Hashtbl.t;
  mutable migrations : int;
  mutable rpcs : int;
}

let create rt ?(threshold = 1.0) ?(explore = 6) () =
  (* Site estimates update in global call order and steer later
     decisions — cross-shard calls would sample in window order, not
     event order, shifting decisions with the shard count. *)
  if Machine.shards (Runtime.machine rt) > 1 then
    invalid_arg
      "Adaptive.create: online estimators learn from machine-global call order and are not \
       shardable; create the machine with ~shards:1";
  { rt; threshold; explore; sites = []; next_site = 0; logs = Hashtbl.create 16;
    migrations = 0; rpcs = 0 }

let site t ~name =
  let s = { name; id = t.next_site; estimate = nan; samples = 0; explore_toggle = false } in
  t.next_site <- t.next_site + 1;
  t.sites <- s :: t.sites;
  s

let record_sample s follow =
  let f = float_of_int follow in
  s.estimate <- (if s.samples = 0 then f else ((1. -. alpha) *. s.estimate) +. (alpha *. f));
  s.samples <- s.samples + 1

(* Credit each call in a finished activation with the number of calls
   that followed it (the log is most-recent-first). *)
let close_log t tid =
  match Hashtbl.find_opt t.logs tid with
  | None -> ()
  | Some log ->
    List.iteri (fun follow s -> record_sample s follow) !log;
    Hashtbl.remove t.logs tid

let scope t ?at_base ?(result_words = 2) body =
  Runtime.scope t.rt ?at_base ~result_words
    (let* tid = Thread.tid in
     Hashtbl.replace t.logs tid (ref []);
     let* result = body in
     close_log t tid;
     Thread.return result)

let choose t s =
  if s.samples < t.explore then begin
    (* Alternate deterministically while gathering samples. *)
    s.explore_toggle <- not s.explore_toggle;
    if s.explore_toggle then Runtime.Migrate else Runtime.Rpc
  end
  else if s.estimate >= t.threshold then Runtime.Migrate
  else Runtime.Rpc

let call t ~site:s ~home ~args_words ~result_words body =
  let* tid = Thread.tid in
  (match Hashtbl.find_opt t.logs tid with
  | Some log -> log := s :: !log
  | None -> invalid_arg "Adaptive.call: not inside Adaptive.scope");
  let* p = Thread.proc in
  let access =
    if Processor.id p = home then Runtime.Rpc (* local either way; Runtime runs it inline *)
    else begin
      let a = choose t s in
      (match a with
      | Runtime.Migrate -> t.migrations <- t.migrations + 1
      | Runtime.Rpc -> t.rpcs <- t.rpcs + 1);
      a
    end
  in
  Runtime.call t.rt ~access ~home ~args_words ~result_words body

let chosen_migrations t = t.migrations

let chosen_rpcs t = t.rpcs

let site_estimate _t s = s.estimate

let site_samples _t s = s.samples

let site_name s = s.name
