open Cm_engine
open Cm_machine
open Thread.Infix

(* Replica presence is a bitset (one bit per processor, the Sharers
   trick applied to the object layer) plus a flat payload table, instead
   of the former ['a option array]: at 1024 simulated processors the
   holder set costs 128 bytes instead of 8 KB of pointers, installs
   write no [Some] box, and the replica count is a maintained word
   rather than an O(n) scan.  Payload slots are [Obj.t] and only read
   when the processor's presence bit is set, so no [None] sentinel is
   needed and ['a] may be any type (including float) without array
   specialization hazards. *)
type 'a t = {
  rt : Runtime.t;
  home : int;
  words_of : 'a -> int;
  n_procs : int;
  present : Bytes.t;  (* bit [p] set iff processor [p] holds a replica *)
  copies : Obj.t array;  (* payload slot for [p]; valid iff bit [p] set *)
  mutable n_replicas : int;
  mutable master : 'a;
  mutable version : int;
  upd_k : 'a Transport.kind;
}

let holds t pid = Char.code (Bytes.unsafe_get t.present (pid lsr 3)) land (1 lsl (pid land 7)) <> 0

let install t pid v =
  if not (holds t pid) then begin
    let byte = pid lsr 3 in
    Bytes.unsafe_set t.present byte
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.present byte) lor (1 lsl (pid land 7))));
    t.n_replicas <- t.n_replicas + 1
  end;
  t.copies.(pid) <- Obj.repr v

let create rt ~home ~words_of v =
  let machine = Runtime.machine rt in
  if home < 0 || home >= Machine.n_procs machine then invalid_arg "Replicate.create: bad home";
  let n_procs = Machine.n_procs machine in
  let tp = Runtime.transport rt in
  let upd_k = Transport.kind tp "repl_update" in
  let t =
    {
      rt;
      home;
      words_of;
      n_procs;
      present = Bytes.make ((n_procs + 7) / 8) '\000';
      copies = Array.make n_procs (Obj.repr 0);
      n_replicas = 0;
      master = v;
      version = 0;
      upd_k;
    }
  in
  (* The update fan-out delivers the new value to each holder: the
     handler thread (which already paid the receive pipeline) installs
     it in the local replica slot. *)
  Transport.Endpoint.register_all tp ~kind:upd_k (fun v ->
      let* p = Thread.proc in
      install t (Processor.id p) v;
      Thread.return ());
  t

let home t = t.home

let stats t = (Runtime.machine t.rt).Machine.stats

(* A replica read costs a few cycles of pointer chasing. *)
let local_read_cost = 4

let read t =
  let* p = Thread.proc in
  let pid = Processor.id p in
  if pid = t.home then
    let* () = Thread.compute local_read_cost in
    Thread.return t.master
  else if holds t pid then begin
    Stats.incr (stats t) "repl.local_reads";
    let* () = Thread.compute local_read_cost in
    Thread.return (Obj.obj t.copies.(pid))
  end
  else begin
    (* Fetch a replica from the home with an ordinary RPC. *)
    Stats.incr (stats t) "repl.fetches";
    let* v =
      Runtime.call t.rt ~access:Runtime.Rpc ~home:t.home ~args_words:2
        ~result_words:(t.words_of t.master)
        (let* () = Thread.compute local_read_cost in
         Thread.return t.master)
    in
    install t pid v;
    Thread.return v
  end

let update t ~access v =
  let words = t.words_of v in
  Runtime.call t.rt ~access ~home:t.home ~args_words:words ~result_words:1
    ((* Holders are collected by an ascending scan with prepend, so the
        fan-out posts in descending processor order — exactly the order
        the former [Array.iteri] over option slots produced, which the
        digests encode. *)
     let holders = ref [] in
     for p = 0 to t.n_procs - 1 do
       if holds t p then holders := p :: !holders
     done;
     t.master <- v;
     t.version <- t.version + 1;
     Stats.incr (stats t) "repl.updates";
     (* The home CPU pays one send pipeline per holder — replication's
        broadcast cost; each holder pays receive-pipeline work when the
        update arrives. *)
     Thread.iter_list
       (fun holder -> Transport.post (Runtime.transport t.rt) t.upd_k ~dst:holder ~words v)
       !holders)

let version t = t.version

let replicas t = t.n_replicas

let peek t = t.master
