open Cm_engine
open Cm_machine
open Thread.Infix

(* Replica presence is a bitset (one bit per processor, the Sharers
   trick applied to the object layer) plus a flat payload table, instead
   of the former ['a option array]: at 1024 simulated processors the
   holder set costs 128 bytes instead of 8 KB of pointers, installs
   write no [Some] box, and the replica count is a maintained word
   rather than an O(n) scan.  Payload slots are [Obj.t] and only read
   when the processor's presence bit is set, so no [None] sentinel is
   needed and ['a] may be any type (including float) without array
   specialization hazards. *)
type 'a t = {
  rt : Runtime.t;
  home : int;
  words_of : 'a -> int;
  n_procs : int;
  present : Bytes.t;  (* bit [p] set iff processor [p] holds a replica *)
  copies : Obj.t array;  (* payload slot for [p]; valid iff bit [p] set *)
  mutable n_replicas : int;
  mutable master : 'a;
  mutable version : int;
  upd_k : 'a Transport.kind;
  (* The fused update fan-out (built once in [create]): a static body
     the frame engine carries to the home, reading the new value and
     payload size from the frame's method-site lane. *)
  mutable upd_body : unit Thread.t;
  (* Pooled holder-set snapshots: the fan-out walks a copy of [present]
     taken when the update body starts (a fetch landing mid-fan-out must
     not join it, exactly as the former holder-list snapshot behaved).
     Pooled because concurrent updates to the same object each need
     their own snapshot. *)
  mutable scr : Bytes.t array;
  mutable scr_free : int array;
  mutable scr_free_top : int;
}

let holds t pid = Char.code (Bytes.unsafe_get t.present (pid lsr 3)) land (1 lsl (pid land 7)) <> 0

let install t pid v =
  if not (holds t pid) then begin
    let byte = pid lsr 3 in
    Bytes.unsafe_set t.present byte
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.present byte) lor (1 lsl (pid land 7))));
    t.n_replicas <- t.n_replicas + 1
  end;
  t.copies.(pid) <- Obj.repr v

let stats t = (Runtime.machine t.rt).Machine.stats

let costs t = (Runtime.machine t.rt).Machine.costs

(* --- the fused update fan-out --------------------------------------- *)

let scr_alloc t =
  if t.scr_free_top = 0 then begin
    let cap = Array.length t.scr in
    let ncap = 2 * cap in
    let len = Bytes.length t.present in
    let ns = Array.make ncap Bytes.empty in
    Array.blit t.scr 0 ns 0 cap;
    for j = cap to ncap - 1 do
      ns.(j) <- Bytes.create len
    done;
    let nf = Array.make ncap 0 in
    t.scr <- ns;
    t.scr_free <- nf;
    for j = 0 to cap - 1 do
      t.scr_free.(j) <- cap + j
    done;
    t.scr_free_top <- cap
  end;
  t.scr_free_top <- t.scr_free_top - 1;
  t.scr_free.(t.scr_free_top)

let scr_release t slot =
  t.scr_free.(t.scr_free_top) <- slot;
  t.scr_free_top <- t.scr_free_top + 1

(* Highest snapshot holder at or below [pid], or -1: the fan-out posts
   in descending processor order, exactly as the former holder list
   (ascending scan with prepend) produced. *)
let rec scr_scan scr pid =
  if pid < 0 then -1
  else if Char.code (Bytes.unsafe_get scr (pid lsr 3)) land (1 lsl (pid land 7)) <> 0 then pid
  else scr_scan scr (pid - 1)

(* One fan-out step: the preceding hold paid the send pipeline for the
   holder in [m1]; dispatch to it and line up the next holder.  Lane
   use: ms = table, mv = new value, m0 = payload words, m1 = holder
   cursor, m2 = per-holder send cost, m3 = snapshot slot. *)
let rec upd_fan_step c =
  let t : Obj.t t = Thread.Frame.getms c in
  let p = Thread.Frame.getm1 c in
  Transport.dispatch (Runtime.transport t.rt) t.upd_k
    ~src:(Processor.id (Thread.Frame.proc c))
    ~dst:p ~words:(Thread.Frame.getm0 c) (Thread.Frame.getmv c);
  let slot = Thread.Frame.getm3 c in
  let q = scr_scan t.scr.(slot) (p - 1) in
  if q < 0 then begin
    scr_release t slot;
    Thread.Frame.call_k c ()
  end
  else begin
    Thread.Frame.setm1 c q;
    Thread.Frame.hold_then c (Thread.Frame.getm2 c) upd_fan_step
  end

(* The update fan-out body, run at the home (the frame engine carries it
   there): pay one send pipeline per snapshot holder — the same events,
   in the same (descending) order, as the monadic [iter_list]-over-
   [post] body.  The snapshot, master install and counter bump happened
   at the requester when the update was issued, exactly where the
   monadic body expression evaluated them. *)
let upd_body_run (t : Obj.t t) c k =
  let slot = Thread.Frame.getm3 c in
  let first = scr_scan t.scr.(slot) (t.n_procs - 1) in
  if first < 0 then begin
    scr_release t slot;
    k ()
  end
  else begin
    Thread.Frame.save_k c k;
    Thread.Frame.setm1 c first;
    Thread.Frame.hold_then c (Thread.Frame.getm2 c) upd_fan_step
  end

let create rt ~home ~words_of v =
  let machine = Runtime.machine rt in
  if home < 0 || home >= Machine.n_procs machine then invalid_arg "Replicate.create: bad home";
  let n_procs = Machine.n_procs machine in
  let tp = Runtime.transport rt in
  let upd_k = Transport.kind tp "repl_update" in
  let scr_len = (n_procs + 7) / 8 in
  let t =
    {
      rt;
      home;
      words_of;
      n_procs;
      present = Bytes.make scr_len '\000';
      copies = Array.make n_procs (Obj.repr 0);
      n_replicas = 0;
      master = v;
      version = 0;
      upd_k;
      upd_body = Thread.return ();
      scr = Array.init 2 (fun _ -> Bytes.create scr_len);
      scr_free = [| 0; 1 |];
      scr_free_top = 2;
    }
  in
  t.upd_body <- (fun c k -> upd_body_run (Obj.magic t : Obj.t t) c k);
  (* The update fan-out delivers the new value to each holder: the
     handler thread (which already paid the receive pipeline) installs
     it in the local replica slot.  Saturated — a steady-state delivery
     allocates nothing in the handler. *)
  Transport.Endpoint.register_all tp ~kind:upd_k (fun v c k ->
      install t (Processor.id (Thread.Frame.proc c)) v;
      k ());
  t

let home t = t.home

(* A replica read costs a few cycles of pointer chasing. *)
let local_read_cost = 4

(* The CPS reference read, kept verbatim; the frame fast paths below
   replay its events (and its [repl.*] counters) exactly. *)
let read_cps t =
  let* p = Thread.proc in
  let pid = Processor.id p in
  if pid = t.home then
    let* () = Thread.compute local_read_cost in
    Thread.return t.master
  else if holds t pid then begin
    Stats.incr (stats t) "repl.local_reads";
    let* () = Thread.compute local_read_cost in
    Thread.return (Obj.obj t.copies.(pid))
  end
  else begin
    (* Fetch a replica from the home with an ordinary RPC. *)
    Stats.incr (stats t) "repl.fetches";
    let* v =
      Runtime.call t.rt ~access:Runtime.Rpc ~home:t.home ~args_words:2
        ~result_words:(t.words_of t.master)
        (let* () = Thread.compute local_read_cost in
         Thread.return t.master)
    in
    install t pid v;
    Thread.return v
  end

let read_home_step c =
  let t : Obj.t t = Thread.Frame.getms c in
  Thread.Frame.call_k c t.master

let read_copy_step c =
  let t : Obj.t t = Thread.Frame.getms c in
  Thread.Frame.call_k c t.copies.(Processor.id (Thread.Frame.proc c))

(* Replica-hit reads — the hot path of a read-mostly workload — run as
   one held step over the frame, no binds, no boxes; a miss falls back
   to the CPS fetch (which pays an RPC and installs the replica — cold
   by construction). *)
let read t c k =
  if Thread.Frame.on c then begin
    let pid = Processor.id (Thread.Frame.proc c) in
    if pid = t.home then begin
      Thread.Frame.save_k c k;
      Thread.Frame.setms c t;
      Thread.Frame.hold_then c local_read_cost read_home_step
    end
    else if holds t pid then begin
      Stats.incr (stats t) "repl.local_reads";
      Thread.Frame.save_k c k;
      Thread.Frame.setms c t;
      Thread.Frame.hold_then c local_read_cost read_copy_step
    end
    else read_cps t c k
  end
  else read_cps t c k

let update_cps t ~access v =
  let words = t.words_of v in
  Runtime.call t.rt ~access ~home:t.home ~args_words:words ~result_words:1
    ((* Holders are collected by an ascending scan with prepend, so the
        fan-out posts in descending processor order — exactly the order
        the former [Array.iteri] over option slots produced, which the
        digests encode. *)
     let holders = ref [] in
     for p = 0 to t.n_procs - 1 do
       if holds t p then holders := p :: !holders
     done;
     t.master <- v;
     t.version <- t.version + 1;
     Stats.incr (stats t) "repl.updates";
     (* The home CPU pays one send pipeline per holder — replication's
        broadcast cost; each holder pays receive-pipeline work when the
        update arrives. *)
     Thread.iter_list
       (fun holder -> Transport.post (Runtime.transport t.rt) t.upd_k ~dst:holder ~words v)
       !holders)

(* Fused migrating update: stage the value and costs in the method-site
   lane (which survives the migration) and let the annotated call carry
   the static [upd_body] to the home.  An RPC update ships its body as a
   server-thread payload — a per-call closure either way — so only the
   migrate arm is fused. *)
let update t ~access v c k =
  if Thread.Frame.on c && (match access with Runtime.Migrate -> true | Runtime.Rpc -> false)
  then begin
    let words = t.words_of v in
    (* Issue-time effects, exactly where the monadic body expression
       evaluated them (at the requester, before the forwarding check):
       snapshot the holder set, install the new master, bump the
       counter.  Only the fan-out itself runs at the home. *)
    let slot = scr_alloc t in
    Bytes.blit t.present 0 t.scr.(slot) 0 (Bytes.length t.present);
    t.master <- v;
    t.version <- t.version + 1;
    Stats.incr (stats t) "repl.updates";
    Thread.Frame.setms c t;
    Thread.Frame.setmv c v;
    Thread.Frame.setm0 c words;
    Thread.Frame.setm2 c (Costs.send_pipeline (costs t) ~words);
    Thread.Frame.setm3 c slot;
    Runtime.call t.rt ~access ~home:t.home ~args_words:words ~result_words:1 t.upd_body c k
  end
  else update_cps t ~access v c k

let version t = t.version

let replicas t = t.n_replicas

let peek t = t.master
