open Cm_engine
open Cm_machine
open Thread.Infix

type 'a t = {
  rt : Runtime.t;
  home : int;
  words_of : 'a -> int;
  copies : 'a option array;
  mutable master : 'a;
  mutable version : int;
  upd_k : 'a Transport.kind;
}

let create rt ~home ~words_of v =
  let machine = Runtime.machine rt in
  if home < 0 || home >= Machine.n_procs machine then invalid_arg "Replicate.create: bad home";
  let copies = Array.make (Machine.n_procs machine) None in
  let tp = Runtime.transport rt in
  (* The update fan-out delivers the new value to each holder: the
     handler thread (which already paid the receive pipeline) installs
     it in the local replica slot. *)
  let upd_k = Transport.kind tp "repl_update" in
  Transport.Endpoint.register_all tp ~kind:upd_k (fun v ->
      let* p = Thread.proc in
      copies.(Processor.id p) <- Some v;
      Thread.return ());
  { rt; home; words_of; copies; master = v; version = 0; upd_k }

let home t = t.home

let stats t = (Runtime.machine t.rt).Machine.stats

(* A replica read costs a few cycles of pointer chasing. *)
let local_read_cost = 4

let read t =
  let* p = Thread.proc in
  let pid = Processor.id p in
  if pid = t.home then
    let* () = Thread.compute local_read_cost in
    Thread.return t.master
  else
    match t.copies.(pid) with
    | Some v ->
      Stats.incr (stats t) "repl.local_reads";
      let* () = Thread.compute local_read_cost in
      Thread.return v
    | None ->
      (* Fetch a replica from the home with an ordinary RPC. *)
      Stats.incr (stats t) "repl.fetches";
      let* v =
        Runtime.call t.rt ~access:Runtime.Rpc ~home:t.home ~args_words:2
          ~result_words:(t.words_of t.master)
          (let* () = Thread.compute local_read_cost in
           Thread.return t.master)
      in
      t.copies.(pid) <- Some v;
      Thread.return v

let update t ~access v =
  let words = t.words_of v in
  Runtime.call t.rt ~access ~home:t.home ~args_words:words ~result_words:1
    (let holders = ref [] in
     Array.iteri (fun p copy -> if copy <> None then holders := p :: !holders) t.copies;
     t.master <- v;
     t.version <- t.version + 1;
     Stats.incr (stats t) "repl.updates";
     (* The home CPU pays one send pipeline per holder — replication's
        broadcast cost; each holder pays receive-pipeline work when the
        update arrives. *)
     Thread.iter_list
       (fun holder -> Transport.post (Runtime.transport t.rt) t.upd_k ~dst:holder ~words v)
       !holders)

let version t = t.version

let replicas t = Array.fold_left (fun acc c -> if c <> None then acc + 1 else acc) 0 t.copies

let peek t = t.master
