open Cm_machine

type id = int

(* Struct-of-arrays object store.  The boxed per-object
   [{ mutable home; state }] records this replaces cost two words of
   header plus a pointer per object and put every [home] read behind a
   dependent load; at the million-object scale the ROADMAP targets, the
   home table *is* the runtime's hottest data.  Here homes live in one
   flat off-heap int vector (a [Bigarray], so the GC never scans or
   moves it) and payloads in one ordinary array — [home]/[move] are a
   single unboxed load/store, registration allocates nothing beyond
   amortized table growth, and the old representation's latent growth
   hazard ([Array.make cap shared_record] aliasing one mutable record
   across every spare slot) is gone by construction: a home is a word
   in a vector, not a field of a possibly-shared block.

   Payload slots are [Obj.t] behind the typed interface ([register] is
   the only writer, ['state] is pinned by the phantom parameter), which
   keeps one representation for every payload type — including float,
   which a ['state array] would silently specialize. *)
type homes = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type 'state t = {
  machine : Machine.t;
  mutable homes : homes;
  mutable payload : Obj.t array;
  mutable size : int;
}

let create machine =
  {
    machine;
    homes = Bigarray.Array1.create Bigarray.int Bigarray.c_layout 0;
    payload = [||];
    size = 0;
  }

(* The failure path is out of line so the bounds check compiled into the
   hot lookups is a compare and a never-taken branch — no format string,
   no closure, no allocation on the success path (enforced: these
   lookups are in cm-lint's declared hot set). *)
let[@inline never] unknown_id i = invalid_arg (Printf.sprintf "Objspace: unknown object %d" i)

let check t i = if i < 0 || i >= t.size then unknown_id i

let grow t =
  let cap = max 16 (2 * Bigarray.Array1.dim t.homes) in
  let homes = Bigarray.Array1.create Bigarray.int Bigarray.c_layout cap in
  for k = 0 to t.size - 1 do
    Bigarray.Array1.unsafe_set homes k (Bigarray.Array1.unsafe_get t.homes k)
  done;
  let payload = Array.make cap (Obj.repr 0) in
  Array.blit t.payload 0 payload 0 t.size;
  t.homes <- homes;
  t.payload <- payload

let register t ~home state =
  if home < 0 || home >= Machine.n_procs t.machine then
    invalid_arg "Objspace.register: bad home processor";
  if t.size = Bigarray.Array1.dim t.homes then grow t;
  let id = t.size in
  Bigarray.Array1.unsafe_set t.homes id home;
  Array.unsafe_set t.payload id (Obj.repr state);
  t.size <- t.size + 1;
  id

let home t i =
  check t i;
  Bigarray.Array1.unsafe_get t.homes i

let state t i =
  check t i;
  Obj.obj (Array.unsafe_get t.payload i)

let count t = t.size

let iter f t =
  for i = 0 to t.size - 1 do
    f i (Bigarray.Array1.unsafe_get t.homes i) (Obj.obj (Array.unsafe_get t.payload i))
  done

let move t i ~to_ =
  if to_ < 0 || to_ >= Machine.n_procs t.machine then invalid_arg "Objspace.move: bad home";
  check t i;
  Bigarray.Array1.unsafe_set t.homes i to_

let id_of_int n = n
