open Cm_engine
open Cm_machine
open Thread.Infix

(* Counter handles and message kinds are resolved once here — every
   annotated access counts and sends, so per-call string interning would
   sit on the hot path.  The handles bind lazily (see Stats), keeping
   the registered-counter set, and hence the report digests, identical
   to the string API. *)
type t = {
  machine : Machine.t;
  rpc_calls_c : Stats.counter;
  migrations_c : Stats.counter;
  local_calls_c : Stats.counter;
  scope_returns_c : Stats.counter;
  residual_fetches_c : Stats.counter;
  thread_migrations_c : Stats.counter;
  rpc_k : Network.kind;
  rpc_reply_k : Network.kind;
  migrate_k : Network.kind;
  migrate_return_k : Network.kind;
  thread_migrate_k : Network.kind;
}

type access = Rpc | Migrate

let create machine =
  let s = machine.Machine.stats and n = machine.Machine.net in
  {
    machine;
    rpc_calls_c = Stats.counter s "rt.rpc_calls";
    migrations_c = Stats.counter s "rt.migrations";
    local_calls_c = Stats.counter s "rt.local_calls";
    scope_returns_c = Stats.counter s "rt.scope_returns";
    residual_fetches_c = Stats.counter s "rt.residual_fetches";
    thread_migrations_c = Stats.counter s "rt.thread_migrations";
    rpc_k = Network.kind n "rpc";
    rpc_reply_k = Network.kind n "rpc_reply";
    migrate_k = Network.kind n "migrate";
    migrate_return_k = Network.kind n "migrate_return";
    thread_migrate_k = Network.kind n "thread_migrate";
  }

let machine t = t.machine

let access_name = function Rpc -> "rpc" | Migrate -> "migrate"

let costs t = t.machine.Machine.costs

let stats t = t.machine.Machine.stats

let net t = t.machine.Machine.net

(* Raw CPS step: emit the reply message and unblock the caller, then
   continue (the server thread terminates right after). *)
let send_reply t ~src ~dst ~words resume r : unit Thread.t =
 fun _ctx k ->
  let (_ : int) =
    Network.send_k (net t) ~src ~dst ~words ~kind:t.rpc_reply_k (fun () -> resume r)
  in
  k ()

let rpc_call t ~dst ~args_words ~result_words body =
  let c = costs t in
  Stats.Counter.incr t.rpc_calls_c;
  let* caller = Thread.proc in
  let caller_id = Processor.id caller in
  (* Client stub: marshal and send the request, then block. *)
  let* () = Thread.compute (Costs.send_pipeline c ~words:args_words) in
  let* r =
    Thread.await (fun ~resume ->
        let (_ : int) =
          Network.send_k (net t) ~src:caller_id ~dst ~words:args_words ~kind:t.rpc_k (fun () ->
            (* Server stub: a fresh handler thread pays the receive
               pipeline, runs the method, and replies from wherever the
               thread ends up (the body may itself migrate). *)
            Machine.spawn t.machine ~on:dst
              (let* () =
                 Thread.compute (Costs.recv_pipeline c ~words:args_words ~new_thread:true)
               in
               let* r = body in
               let* here = Thread.proc in
               let* () = Thread.compute (Costs.send_pipeline c ~words:result_words) in
               send_reply t ~src:(Processor.id here) ~dst:caller_id ~words:result_words resume r))
        in
        ())
  in
  (* Reply reception on the caller: no thread creation, just unblock. *)
  let* () = Thread.compute (Costs.recv_pipeline c ~words:result_words ~new_thread:false) in
  Thread.return r

let migrate_call t ~dst ~args_words body =
  let c = costs t in
  Stats.Counter.incr t.migrations_c;
  (* Sender pipeline: marshal the live variables into the migration
     message... *)
  let* () = Thread.compute (Costs.send_pipeline c ~words:args_words) in
  (* ...ship the continuation, pay the receive pipeline on arrival... *)
  let* () =
    Thread.travel_k ~net:(net t)
      ~dst:(Machine.proc t.machine dst)
      ~words:args_words ~kind:t.migrate_k
      ~recv_work:(Costs.recv_pipeline c ~words:args_words ~new_thread:true)
  in
  (* ...and keep running there: the access below is local. *)
  body

let call t ~access ~home ~args_words ~result_words body =
  let c = costs t in
  (* The locality check happens on every annotated call, whatever the
     mechanism — it is not an extra cost of migration (paper S3.2). *)
  let* () = Thread.compute c.Costs.forwarding_check in
  let* p = Thread.proc in
  if Processor.id p = home then begin
    Stats.Counter.incr t.local_calls_c;
    body
  end
  else
    match access with
    | Rpc -> rpc_call t ~dst:home ~args_words ~result_words body
    | Migrate -> migrate_call t ~dst:home ~args_words body

let scope t ?(at_base = false) ~result_words body =
  let c = costs t in
  let* origin = Thread.proc in
  let* r = body in
  let* here = Thread.proc in
  if at_base || Processor.id here = Processor.id origin then Thread.return r
  else begin
    (* The activation migrated away: send its result back to the caller
       frame waiting at the origin — a single message however many hops
       the activation made. *)
    Stats.Counter.incr t.scope_returns_c;
    let* () = Thread.compute (Costs.send_pipeline c ~words:result_words) in
    let* () =
      Thread.travel_k ~net:(net t) ~dst:origin ~words:result_words ~kind:t.migrate_return_k
        ~recv_work:(Costs.recv_pipeline c ~words:result_words ~new_thread:false)
    in
    Thread.return r
  end

(* Partial-activation support (paper S6): an activation that migrated
   carrying only part of its live state pulls the rest from its origin
   with one round trip.  Serving the fetch costs the origin's CPU a
   handler dispatch plus the copy. *)
let fetch_residual t ~origin ~words =
  let c = costs t in
  Stats.Counter.incr t.residual_fetches_c;
  let* p = Thread.proc in
  if Processor.id p = origin then Thread.return ()
  else
    Thread.ignore_m
      (rpc_call t ~dst:origin ~args_words:2 ~result_words:words
         (Thread.compute (Costs.copy_packet c ~words)))

let residual_fetches t = Stats.get (stats t) "rt.residual_fetches"

(* Whole-thread migration (paper S2.3): ship the thread's entire stack,
   permanently relocating it.  No scope bookkeeping applies — there is
   no caller frame left behind. *)
let migrate_thread t ~dst ~stack_words =
  let c = costs t in
  Stats.Counter.incr t.thread_migrations_c;
  let* p = Thread.proc in
  if Processor.id p = dst then Thread.return ()
  else
    let* () = Thread.compute (Costs.send_pipeline c ~words:stack_words) in
    Thread.travel_k ~net:(net t)
      ~dst:(Machine.proc t.machine dst)
      ~words:stack_words ~kind:t.thread_migrate_k
      ~recv_work:(Costs.recv_pipeline c ~words:stack_words ~new_thread:true)

let thread_migrations t = Stats.get (stats t) "rt.thread_migrations"

let migrations t = Stats.get (stats t) "rt.migrations"

let rpc_calls t = Stats.get (stats t) "rt.rpc_calls"

let local_calls t = Stats.get (stats t) "rt.local_calls"
