open Cm_engine
open Cm_machine
open Thread.Infix

(* Counter handles and message kinds are resolved once here — every
   annotated access counts and sends, so per-call string interning would
   sit on the hot path.  The handles bind lazily (see Stats), keeping
   the registered-counter set, and hence the report digests, identical
   to the string API.  All traffic flows through the machine's
   [Transport]: the RPC request carries the server computation as its
   payload, and migrations ship the current continuation. *)
type t = {
  machine : Machine.t;
  tp : Transport.t;
  rpc_calls_c : Stats.counter;
  migrations_c : Stats.counter;
  local_calls_c : Stats.counter;
  scope_returns_c : Stats.counter;
  residual_fetches_c : Stats.counter;
  thread_migrations_c : Stats.counter;
  rpc_k : unit Thread.t Transport.kind;
  rpc_reply_k : unit Transport.kind;
  migrate_k : unit Transport.kind;
  migrate_return_k : unit Transport.kind;
  thread_migrate_k : unit Transport.kind;
}

type access = Rpc | Migrate

let create machine =
  let s = machine.Machine.stats in
  let tp = Machine.transport machine in
  let rpc_k = Transport.kind tp "rpc" in
  (* RPC requests carry the server stub as their payload; every
     processor can serve one. *)
  Transport.Endpoint.register_all tp ~kind:rpc_k (fun server -> server);
  {
    machine;
    tp;
    rpc_calls_c = Stats.counter s "rt.rpc_calls";
    migrations_c = Stats.counter s "rt.migrations";
    local_calls_c = Stats.counter s "rt.local_calls";
    scope_returns_c = Stats.counter s "rt.scope_returns";
    residual_fetches_c = Stats.counter s "rt.residual_fetches";
    thread_migrations_c = Stats.counter s "rt.thread_migrations";
    rpc_k;
    rpc_reply_k = Transport.kind tp "rpc_reply";
    migrate_k = Transport.kind tp "migrate";
    migrate_return_k = Transport.kind tp "migrate_return";
    thread_migrate_k = Transport.kind tp "thread_migrate";
  }

let machine t = t.machine

let transport t = t.tp

let access_name = function Rpc -> "rpc" | Migrate -> "migrate"

let costs t = t.machine.Machine.costs

let stats t = t.machine.Machine.stats

let rpc_call t ~dst ~args_words ~result_words body =
  Stats.Counter.incr t.rpc_calls_c;
  Transport.call t.tp ~req:t.rpc_k ~reply:t.rpc_reply_k ~dst ~args_words ~result_words body

let migrate_call t ~dst ~args_words body =
  Stats.Counter.incr t.migrations_c;
  (* Ship the continuation; the access below is local after arrival. *)
  let* () =
    Transport.migrate t.tp t.migrate_k
      ~dst:(Machine.proc t.machine dst)
      ~words:args_words ~fresh:true
  in
  body

let call t ~access ~home ~args_words ~result_words body =
  let c = costs t in
  (* The locality check happens on every annotated call, whatever the
     mechanism — it is not an extra cost of migration (paper S3.2). *)
  let* () = Thread.compute c.Costs.forwarding_check in
  let* p = Thread.proc in
  if Processor.id p = home then begin
    Stats.Counter.incr t.local_calls_c;
    body
  end
  else
    match access with
    | Rpc -> rpc_call t ~dst:home ~args_words ~result_words body
    | Migrate -> migrate_call t ~dst:home ~args_words body

let scope t ?(at_base = false) ~result_words body =
  let* origin = Thread.proc in
  let* r = body in
  let* here = Thread.proc in
  if at_base || Processor.id here = Processor.id origin then Thread.return r
  else begin
    (* The activation migrated away: send its result back to the caller
       frame waiting at the origin — a single message however many hops
       the activation made. *)
    Stats.Counter.incr t.scope_returns_c;
    let* () =
      Transport.migrate t.tp t.migrate_return_k ~dst:origin ~words:result_words ~fresh:false
    in
    Thread.return r
  end

(* Partial-activation support (paper S6): an activation that migrated
   carrying only part of its live state pulls the rest from its origin
   with one round trip.  Serving the fetch costs the origin's CPU a
   handler dispatch plus the copy. *)
let fetch_residual t ~origin ~words =
  let c = costs t in
  Stats.Counter.incr t.residual_fetches_c;
  let* p = Thread.proc in
  if Processor.id p = origin then Thread.return ()
  else
    Thread.ignore_m
      (rpc_call t ~dst:origin ~args_words:2 ~result_words:words
         (Thread.compute (Costs.copy_packet c ~words)))

let residual_fetches t = Stats.get (stats t) "rt.residual_fetches"

(* Whole-thread migration (paper S2.3): ship the thread's entire stack,
   permanently relocating it.  No scope bookkeeping applies — there is
   no caller frame left behind. *)
let migrate_thread t ~dst ~stack_words =
  Stats.Counter.incr t.thread_migrations_c;
  let* p = Thread.proc in
  if Processor.id p = dst then Thread.return ()
  else
    Transport.migrate t.tp t.thread_migrate_k
      ~dst:(Machine.proc t.machine dst)
      ~words:stack_words ~fresh:true

let thread_migrations t = Stats.get (stats t) "rt.thread_migrations"

let migrations t = Stats.get (stats t) "rt.migrations"

let rpc_calls t = Stats.get (stats t) "rt.rpc_calls"

let local_calls t = Stats.get (stats t) "rt.local_calls"
