open Cm_engine
open Cm_machine
open Thread.Infix

(* Counter handles and message kinds are resolved once here — every
   annotated access counts and sends, so per-call string interning would
   sit on the hot path.  The handles bind lazily (see Stats), keeping
   the registered-counter set, and hence the report digests, identical
   to the string API.  All traffic flows through the machine's
   [Transport]: the RPC request carries the server computation as its
   payload, and migrations ship the current continuation. *)
type t = {
  machine : Machine.t;
  tp : Transport.t;
  rpc_calls_c : Stats.counter;
  migrations_c : Stats.counter;
  local_calls_c : Stats.counter;
  scope_returns_c : Stats.counter;
  residual_fetches_c : Stats.counter;
  thread_migrations_c : Stats.counter;
  rpc_k : unit Thread.t Transport.kind;
  rpc_reply_k : unit Transport.kind;
  migrate_k : unit Transport.kind;
  migrate_return_k : unit Transport.kind;
  thread_migrate_k : unit Transport.kind;
}

type access = Rpc | Migrate

let create machine =
  let s = machine.Machine.stats in
  let tp = Machine.transport machine in
  let rpc_k = Transport.kind tp "rpc" in
  (* RPC requests carry the server stub as their payload; every
     processor can serve one. *)
  Transport.Endpoint.register_all tp ~kind:rpc_k (fun server -> server);
  {
    machine;
    tp;
    rpc_calls_c = Stats.counter s "rt.rpc_calls";
    migrations_c = Stats.counter s "rt.migrations";
    local_calls_c = Stats.counter s "rt.local_calls";
    scope_returns_c = Stats.counter s "rt.scope_returns";
    residual_fetches_c = Stats.counter s "rt.residual_fetches";
    thread_migrations_c = Stats.counter s "rt.thread_migrations";
    rpc_k;
    rpc_reply_k = Transport.kind tp "rpc_reply";
    migrate_k = Transport.kind tp "migrate";
    migrate_return_k = Transport.kind tp "migrate_return";
    thread_migrate_k = Transport.kind tp "thread_migrate";
  }

let machine t = t.machine

let transport t = t.tp

let access_name = function Rpc -> "rpc" | Migrate -> "migrate"

let costs t = t.machine.Machine.costs

let stats t = t.machine.Machine.stats

let rpc_call t ~dst ~args_words ~result_words body =
  Stats.Counter.incr t.rpc_calls_c;
  Transport.call t.tp ~req:t.rpc_k ~reply:t.rpc_reply_k ~dst ~args_words ~result_words body

let migrate_call t ~dst ~args_words body =
  Stats.Counter.incr t.migrations_c;
  (* Ship the continuation; the access below is local after arrival. *)
  let* () =
    Transport.migrate t.tp t.migrate_k
      ~dst:(Machine.proc t.machine dst)
      ~words:args_words ~fresh:true
  in
  body

let call_cps t ~access ~home ~args_words ~result_words body =
  let c = costs t in
  (* The locality check happens on every annotated call, whatever the
     mechanism — it is not an extra cost of migration (paper S3.2). *)
  let* () = Thread.compute c.Costs.forwarding_check in
  let* p = Thread.proc in
  if Processor.id p = home then begin
    Stats.Counter.incr t.local_calls_c;
    body
  end
  else
    match access with
    | Rpc -> rpc_call t ~dst:home ~args_words ~result_words body
    | Migrate -> migrate_call t ~dst:home ~args_words body

(* Frame path of an annotated access: the forwarding check, the
   three-way branch, and the migration all run over the thread's frame
   slots.  [body] parks in v3 (the consumer slot — the transport chain
   under the migration only touches v0..v2/i1..i2). *)
let rt_body_step c =
  let body : Obj.t Thread.t = Thread.Frame.getv3 c in
  body c (Thread.Frame.take_k c)

let rt_call_step c =
  let t : t = Thread.Frame.getv0 c in
  let packed = Thread.Frame.geti1 c in
  let home = packed lsr 1 in
  if Processor.id (Thread.Frame.proc c) = home then begin
    Stats.Counter.incr t.local_calls_c;
    rt_body_step c
  end
  else if packed land 1 = 0 then begin
    Stats.Counter.incr t.rpc_calls_c;
    let body : Obj.t Thread.t = Thread.Frame.getv3 c in
    let k = Thread.Frame.take_k c in
    Transport.call t.tp ~req:t.rpc_k ~reply:t.rpc_reply_k ~dst:home
      ~args_words:(Thread.Frame.geti2 c) ~result_words:(Thread.Frame.geti3 c) body c k
  end
  else begin
    Stats.Counter.incr t.migrations_c;
    Transport.migrate_f t.tp t.migrate_k
      ~dst:(Machine.proc t.machine home)
      ~words:(Thread.Frame.geti2 c) ~fresh:true ~after:rt_body_step c
  end

let call t ~access ~home ~args_words ~result_words body =
  let cst = costs t in
  fun c k ->
    if Thread.Frame.on c then begin
      Thread.Frame.save_k c k;
      Thread.Frame.setv0 c t;
      Thread.Frame.setv3 c body;
      Thread.Frame.seti1 c ((home lsl 1) lor (match access with Migrate -> 1 | Rpc -> 0));
      Thread.Frame.seti2 c args_words;
      Thread.Frame.seti3 c result_words;
      Thread.Frame.hold_then c cst.Costs.forwarding_check rt_call_step
    end
    else call_cps t ~access ~home ~args_words ~result_words body c k

(* --- fused call sites ------------------------------------------------ *)

(* A call site binds one annotated access for repeated invocation: the
   home, the body, the mechanism, and {e every} cost the access can
   charge — forwarding check, send pipeline, fresh-thread receive
   pipeline — resolved once at construction.  A steady-state invocation
   then parks exactly two things in the thread frame (the continuation
   and the site record) and each step reads cache-hot site fields, where
   the generic [call] path re-derives costs and shuttles six slots per
   visit.  Events, counters, and their order are identical to [call]'s
   frame path, so digests cannot tell the two apart; the CPS reference
   path is shared outright. *)
type 'r site = {
  s_rt : t;
  s_home : int;
  s_migrate : bool;
  s_body : 'r Thread.t;
  s_args_words : int;
  s_result_words : int;
  s_dst : Processor.t;  (* the home processor, pre-resolved *)
  s_net : Network.t;
  s_netk : Network.kind;  (* the "migrate" network label *)
  s_fc : int;  (* forwarding-check cycles *)
  s_send : int;  (* send-pipeline cycles for [s_args_words] *)
  s_recv : int;  (* fresh-thread receive-pipeline cycles, ditto *)
}

let site t ~access ~home ~args_words ~result_words body =
  let cst = costs t in
  {
    s_rt = t;
    s_home = home;
    s_migrate = (match access with Migrate -> true | Rpc -> false);
    s_body = body;
    s_args_words = args_words;
    s_result_words = result_words;
    s_dst = Machine.proc t.machine home;
    s_net = t.machine.Machine.net;
    s_netk = Transport.net_kind t.migrate_k;
    s_fc = cst.Costs.forwarding_check;
    s_send = Costs.send_pipeline cst ~words:args_words;
    s_recv = Costs.recv_pipeline cst ~words:args_words ~new_thread:true;
  }

(* The migration has landed (same event as [Transport.mig_done_step]):
   account the delivery, then run the body where it now is. *)
let site_arrived_step c =
  let s : Obj.t site = Thread.Frame.getv0 c in
  Transport.account_delivered s.s_rt.migrate_k ~pid:s.s_home;
  s.s_body c (Thread.Frame.take_k c)

let site_send_step c =
  let s : Obj.t site = Thread.Frame.getv0 c in
  Transport.account_posted s.s_rt.migrate_k;
  Thread.Frame.travel ~net:s.s_net ~dst:s.s_dst ~words:s.s_args_words ~kind:s.s_netk
    ~recv_work:s.s_recv ~after:site_arrived_step c

let site_step c =
  let s : Obj.t site = Thread.Frame.getv0 c in
  if Processor.id (Thread.Frame.proc c) = s.s_home then begin
    Stats.Counter.incr s.s_rt.local_calls_c;
    s.s_body c (Thread.Frame.take_k c)
  end
  else if s.s_migrate then begin
    Stats.Counter.incr s.s_rt.migrations_c;
    Thread.Frame.hold_then c s.s_send site_send_step
  end
  else begin
    let t = s.s_rt in
    Stats.Counter.incr t.rpc_calls_c;
    Transport.call t.tp ~req:t.rpc_k ~reply:t.rpc_reply_k ~dst:s.s_home
      ~args_words:s.s_args_words ~result_words:s.s_result_words s.s_body c
      (Thread.Frame.take_k c)
  end

let site_call (s : 'r site) : 'r Thread.t =
 fun c k ->
  if Thread.Frame.on c then begin
    Thread.Frame.save_k c k;
    Thread.Frame.setv0 c s;
    Thread.Frame.hold_then c s.s_fc site_step
  end
  else
    call_cps s.s_rt
      ~access:(if s.s_migrate then Migrate else Rpc)
      ~home:s.s_home ~args_words:s.s_args_words ~result_words:s.s_result_words s.s_body c k

let scope_cps t ~at_base ~result_words body =
  let* origin = Thread.proc in
  let* r = body in
  let* here = Thread.proc in
  if at_base || Processor.id here = Processor.id origin then Thread.return r
  else begin
    (* The activation migrated away: send its result back to the caller
       frame waiting at the origin — a single message however many hops
       the activation made. *)
    Stats.Counter.incr t.scope_returns_c;
    let* () =
      Transport.migrate t.tp t.migrate_return_k ~dst:origin ~words:result_words ~fresh:false
    in
    Thread.return r
  end

let scope_done_step c =
  let r : Obj.t = Thread.Frame.getv3 c in
  Thread.Frame.call_k c r

let scope t ?(at_base = false) ~result_words body =
 fun c k ->
  if Thread.Frame.on c then begin
    let origin = Thread.Frame.proc c in
    body c (fun r ->
        if at_base || Processor.id (Thread.Frame.proc c) = Processor.id origin then k r
        else begin
          Stats.Counter.incr t.scope_returns_c;
          Thread.Frame.save_k c k;
          Thread.Frame.setv3 c r;
          Transport.migrate_f t.tp t.migrate_return_k ~dst:origin ~words:result_words
            ~fresh:false ~after:scope_done_step c
        end)
  end
  else scope_cps t ~at_base ~result_words body c k

(* Partial-activation support (paper S6): an activation that migrated
   carrying only part of its live state pulls the rest from its origin
   with one round trip.  Serving the fetch costs the origin's CPU a
   handler dispatch plus the copy. *)
let fetch_residual t ~origin ~words =
  let c = costs t in
  Stats.Counter.incr t.residual_fetches_c;
  let* p = Thread.proc in
  if Processor.id p = origin then Thread.return ()
  else
    Thread.ignore_m
      (rpc_call t ~dst:origin ~args_words:2 ~result_words:words
         (Thread.compute (Costs.copy_packet c ~words)))

let residual_fetches t = Stats.get (stats t) "rt.residual_fetches"

(* Whole-thread migration (paper S2.3): ship the thread's entire stack,
   permanently relocating it.  No scope bookkeeping applies — there is
   no caller frame left behind. *)
let migrate_thread t ~dst ~stack_words =
  Stats.Counter.incr t.thread_migrations_c;
  let* p = Thread.proc in
  if Processor.id p = dst then Thread.return ()
  else
    Transport.migrate t.tp t.thread_migrate_k
      ~dst:(Machine.proc t.machine dst)
      ~words:stack_words ~fresh:true

let thread_migrations t = Stats.get (stats t) "rt.thread_migrations"

let migrations t = Stats.get (stats t) "rt.migrations"

let rpc_calls t = Stats.get (stats t) "rt.rpc_calls"

let local_calls t = Stats.get (stats t) "rt.local_calls"
