open Cm_engine
open Cm_machine
open Thread.Infix

(* Counter handles and message kinds are resolved once here — every
   annotated access counts and sends, so per-call string interning would
   sit on the hot path.  The handles bind lazily (see Stats), keeping
   the registered-counter set, and hence the report digests, identical
   to the string API.  All traffic flows through the machine's
   [Transport]: the RPC request carries the server computation as its
   payload, and migrations ship the current continuation. *)
type t = {
  machine : Machine.t;
  tp : Transport.t;
  rpc_calls_c : Stats.counter;
  migrations_c : Stats.counter;
  local_calls_c : Stats.counter;
  scope_returns_c : Stats.counter;
  residual_fetches_c : Stats.counter;
  thread_migrations_c : Stats.counter;
  rpc_k : unit Thread.t Transport.kind;
  rpc_reply_k : unit Transport.kind;
  migrate_k : unit Transport.kind;
  migrate_return_k : unit Transport.kind;
  thread_migrate_k : unit Transport.kind;
}

type access = Rpc | Migrate

let create machine =
  let s = machine.Machine.stats in
  let tp = Machine.transport machine in
  let rpc_k = Transport.kind tp "rpc" in
  (* RPC requests carry the server stub as their payload; every
     processor can serve one. *)
  Transport.Endpoint.register_all tp ~kind:rpc_k (fun server -> server);
  {
    machine;
    tp;
    rpc_calls_c = Stats.counter s "rt.rpc_calls";
    migrations_c = Stats.counter s "rt.migrations";
    local_calls_c = Stats.counter s "rt.local_calls";
    scope_returns_c = Stats.counter s "rt.scope_returns";
    residual_fetches_c = Stats.counter s "rt.residual_fetches";
    thread_migrations_c = Stats.counter s "rt.thread_migrations";
    rpc_k;
    rpc_reply_k = Transport.kind tp "rpc_reply";
    migrate_k = Transport.kind tp "migrate";
    migrate_return_k = Transport.kind tp "migrate_return";
    thread_migrate_k = Transport.kind tp "thread_migrate";
  }

let machine t = t.machine

let transport t = t.tp

let access_name = function Rpc -> "rpc" | Migrate -> "migrate"

let costs t = t.machine.Machine.costs

let stats t = t.machine.Machine.stats

let rpc_call t ~dst ~args_words ~result_words body =
  Stats.Counter.incr t.rpc_calls_c;
  Transport.call t.tp ~req:t.rpc_k ~reply:t.rpc_reply_k ~dst ~args_words ~result_words body

let migrate_call t ~dst ~args_words body =
  Stats.Counter.incr t.migrations_c;
  (* Ship the continuation; the access below is local after arrival. *)
  let* () =
    Transport.migrate t.tp t.migrate_k
      ~dst:(Machine.proc t.machine dst)
      ~words:args_words ~fresh:true
  in
  body

let call_cps t ~access ~home ~args_words ~result_words body =
  let c = costs t in
  (* The locality check happens on every annotated call, whatever the
     mechanism — it is not an extra cost of migration (paper S3.2). *)
  let* () = Thread.compute c.Costs.forwarding_check in
  let* p = Thread.proc in
  if Processor.id p = home then begin
    Stats.Counter.incr t.local_calls_c;
    body
  end
  else
    match access with
    | Rpc -> rpc_call t ~dst:home ~args_words ~result_words body
    | Migrate -> migrate_call t ~dst:home ~args_words body

(* Frame path of an annotated access: the forwarding check, the
   three-way branch, and the migration all run over the thread's frame
   slots.  [body] parks in v3 (the consumer slot — the transport chain
   under the migration only touches v0..v2/i1..i2). *)
let rt_body_step c =
  let body : Obj.t Thread.t = Thread.Frame.getv3 c in
  body c (Thread.Frame.take_k c)

let rt_call_step c =
  let t : t = Thread.Frame.getv0 c in
  let packed = Thread.Frame.geti1 c in
  let home = packed lsr 1 in
  if Processor.id (Thread.Frame.proc c) = home then begin
    Stats.Counter.incr t.local_calls_c;
    rt_body_step c
  end
  else if packed land 1 = 0 then begin
    Stats.Counter.incr t.rpc_calls_c;
    let body : Obj.t Thread.t = Thread.Frame.getv3 c in
    let k = Thread.Frame.take_k c in
    Transport.call t.tp ~req:t.rpc_k ~reply:t.rpc_reply_k ~dst:home
      ~args_words:(Thread.Frame.geti2 c) ~result_words:(Thread.Frame.geti3 c) body c k
  end
  else begin
    Stats.Counter.incr t.migrations_c;
    Transport.migrate_f t.tp t.migrate_k
      ~dst:(Machine.proc t.machine home)
      ~words:(Thread.Frame.geti2 c) ~fresh:true ~after:rt_body_step c
  end

(* Saturated ([c k] explicit) so an 8-argument application compiles to a
   direct call with no intermediate closure; partial applications still
   yield an ordinary ['r Thread.t]. *)
let call t ~access ~home ~args_words ~result_words body c k =
  if Thread.Frame.on c then begin
    Thread.Frame.save_k c k;
    Thread.Frame.setv0 c t;
    Thread.Frame.setv3 c body;
    Thread.Frame.seti1 c ((home lsl 1) lor (match access with Migrate -> 1 | Rpc -> 0));
    Thread.Frame.seti2 c args_words;
    Thread.Frame.seti3 c result_words;
    Thread.Frame.hold_then c (costs t).Costs.forwarding_check rt_call_step
  end
  else call_cps t ~access ~home ~args_words ~result_words body c k

(* --- fused call sites ------------------------------------------------ *)

(* A call site binds one annotated access for repeated invocation: the
   home, the body, the mechanism, and {e every} cost the access can
   charge — forwarding check, send pipeline, fresh-thread receive
   pipeline — resolved once at construction.  A steady-state invocation
   then parks exactly two things in the thread frame (the continuation
   and the site record) and each step reads cache-hot site fields, where
   the generic [call] path re-derives costs and shuttles six slots per
   visit.  Events, counters, and their order are identical to [call]'s
   frame path, so digests cannot tell the two apart; the CPS reference
   path is shared outright. *)
type 'r site = {
  s_rt : t;
  s_home : int;
  s_migrate : bool;
  s_body : 'r Thread.t;
  s_args_words : int;
  s_result_words : int;
  s_dst : Processor.t;  (* the home processor, pre-resolved *)
  s_net : Network.t;
  s_netk : Network.kind;  (* the "migrate" network label *)
  s_fc : int;  (* forwarding-check cycles *)
  s_send : int;  (* send-pipeline cycles for [s_args_words] *)
  s_recv : int;  (* fresh-thread receive-pipeline cycles, ditto *)
}

let site t ~access ~home ~args_words ~result_words body =
  let cst = costs t in
  {
    s_rt = t;
    s_home = home;
    s_migrate = (match access with Migrate -> true | Rpc -> false);
    s_body = body;
    s_args_words = args_words;
    s_result_words = result_words;
    s_dst = Machine.proc t.machine home;
    s_net = t.machine.Machine.net;
    s_netk = Transport.net_kind t.migrate_k;
    s_fc = cst.Costs.forwarding_check;
    s_send = Costs.send_pipeline cst ~words:args_words;
    s_recv = Costs.recv_pipeline cst ~words:args_words ~new_thread:true;
  }

(* The migration has landed (same event as [Transport.mig_done_step]):
   account the delivery, then run the body where it now is. *)
let site_arrived_step c =
  let s : Obj.t site = Thread.Frame.getv0 c in
  Transport.account_delivered s.s_rt.migrate_k ~pid:s.s_home;
  s.s_body c (Thread.Frame.take_k c)

let site_send_step c =
  let s : Obj.t site = Thread.Frame.getv0 c in
  Transport.account_posted s.s_rt.migrate_k;
  Thread.Frame.travel ~net:s.s_net ~dst:s.s_dst ~words:s.s_args_words ~kind:s.s_netk
    ~recv_work:s.s_recv ~after:site_arrived_step c

let site_step c =
  let s : Obj.t site = Thread.Frame.getv0 c in
  if Processor.id (Thread.Frame.proc c) = s.s_home then begin
    Stats.Counter.incr s.s_rt.local_calls_c;
    s.s_body c (Thread.Frame.take_k c)
  end
  else if s.s_migrate then begin
    Stats.Counter.incr s.s_rt.migrations_c;
    Thread.Frame.hold_then c s.s_send site_send_step
  end
  else begin
    let t = s.s_rt in
    Stats.Counter.incr t.rpc_calls_c;
    Transport.call t.tp ~req:t.rpc_k ~reply:t.rpc_reply_k ~dst:s.s_home
      ~args_words:s.s_args_words ~result_words:s.s_result_words s.s_body c
      (Thread.Frame.take_k c)
  end

let site_call (s : 'r site) : 'r Thread.t =
 fun c k ->
  if Thread.Frame.on c then begin
    Thread.Frame.save_k c k;
    Thread.Frame.setv0 c s;
    Thread.Frame.hold_then c s.s_fc site_step
  end
  else
    call_cps s.s_rt
      ~access:(if s.s_migrate then Migrate else Rpc)
      ~home:s.s_home ~args_words:s.s_args_words ~result_words:s.s_result_words s.s_body c k

let scope_cps t ~at_base ~result_words body =
  let* origin = Thread.proc in
  let* r = body in
  let* here = Thread.proc in
  if at_base || Processor.id here = Processor.id origin then Thread.return r
  else begin
    (* The activation migrated away: send its result back to the caller
       frame waiting at the origin — a single message however many hops
       the activation made. *)
    Stats.Counter.incr t.scope_returns_c;
    let* () =
      Transport.migrate t.tp t.migrate_return_k ~dst:origin ~words:result_words ~fresh:false
    in
    Thread.return r
  end

let scope_done_step c =
  let r : Obj.t = Thread.Frame.getv3 c in
  Thread.Frame.call_k c r

let scope t ?(at_base = false) ~result_words body =
 fun c k ->
  if Thread.Frame.on c then begin
    let origin = Thread.Frame.proc c in
    body c (fun r ->
        if at_base || Processor.id (Thread.Frame.proc c) = Processor.id origin then k r
        else begin
          Stats.Counter.incr t.scope_returns_c;
          Thread.Frame.save_k c k;
          Thread.Frame.setv3 c r;
          Transport.migrate_f t.tp t.migrate_return_k ~dst:origin ~words:result_words
            ~fresh:false ~after:scope_done_step c
        end)
  end
  else scope_cps t ~at_base ~result_words body c k

(* --- per-object method sites ----------------------------------------

   [site] fuses one static access; a {e method site} fuses a whole
   (object-class, method) pair over the flat object store: the body, the
   mechanism, the interned network kind, and every cost are resolved
   once at construction, while the home is one Bigarray load from the
   store's home table per call — so objects keep a mutable home
   ([Objspace.move]) and the very next call lands at the new one.  A
   steady-state invocation writes the frame's method-site registers
   (m0=object id, m1/m2=int operands, m3=resolved home, m4=scope
   origin), pays the forwarding check, and walks static steps: the whole
   call/migrate/return cycle allocates nothing.

   The body contract: [frame_body] runs at the object's home with the
   CPU held, reads its operands through [msite_obj]/[msite_arg_a]/
   [msite_arg_b] (state via the object store), may suspend only through
   [Thread.Frame.hold_then]-style steps, and must end with exactly one
   [msite_finish].  It owns the m-lane for the duration and must not
   start another method-site call.  [cps_body] is the same method as a
   generic monad — the reference engine runs it (sanitizers, faults,
   the CPS A/B arm), and the RPC arm ships it as the server stub — so
   both bodies must charge identical costs in identical order; the
   qcheck oracle in test/ holds them to that.

   Event, counter, and cost sequences replay [scope]([call]) exactly, so
   run digests cannot tell a fused call from a generic one. *)
type 'r msite = {
  m_rt : t;
  m_migrate : bool;
  m_space : Obj.t Objspace.t;
  m_args_words : int;
  m_result_words : int;
  m_net : Network.t;
  m_netk : Network.kind;  (* the "migrate" network label *)
  m_fc : int;  (* forwarding-check cycles *)
  m_send : int;  (* send-pipeline cycles for [m_args_words] *)
  m_recv : int;  (* fresh-thread receive-pipeline cycles, ditto *)
  m_frame_body : Thread.Frame.ctx -> unit;
  m_cps_body : obj:int -> a:int -> b:int -> 'r Thread.t;
}

let msite rt ~access ~space ~args_words ~result_words ~frame_body ~cps_body =
  let cst = costs rt in
  {
    m_rt = rt;
    m_migrate = (match access with Migrate -> true | Rpc -> false);
    m_space = space;
    m_args_words = args_words;
    m_result_words = result_words;
    m_net = rt.machine.Machine.net;
    m_netk = Transport.net_kind rt.migrate_k;
    m_fc = cst.Costs.forwarding_check;
    m_send = Costs.send_pipeline cst ~words:args_words;
    m_recv = Costs.recv_pipeline cst ~words:args_words ~new_thread:true;
    m_frame_body = frame_body;
    m_cps_body = cps_body;
  }

let msite_obj c = Thread.Frame.getm0 c

let msite_arg_a c = Thread.Frame.getm1 c

let msite_arg_b c = Thread.Frame.getm2 c

(* The migration has landed (same event as [Transport.mig_done_step]):
   account the delivery, then run the fused body where the object is. *)
let msite_arrived_step c =
  let ms : Obj.t msite = Thread.Frame.getms c in
  Transport.account_delivered ms.m_rt.migrate_k ~pid:(Thread.Frame.getm3 c);
  ms.m_frame_body c

let msite_send_step c =
  let ms : Obj.t msite = Thread.Frame.getms c in
  Transport.account_posted ms.m_rt.migrate_k;
  Thread.Frame.travel ~net:ms.m_net
    ~dst:(Machine.proc ms.m_rt.machine (Thread.Frame.getm3 c))
    ~words:ms.m_args_words ~kind:ms.m_netk ~recv_work:ms.m_recv ~after:msite_arrived_step c

let msite_call_step c =
  let ms : Obj.t msite = Thread.Frame.getms c in
  let home = Thread.Frame.getm3 c in
  if Processor.id (Thread.Frame.proc c) = home then begin
    Stats.Counter.incr ms.m_rt.local_calls_c;
    ms.m_frame_body c
  end
  else if ms.m_migrate then begin
    Stats.Counter.incr ms.m_rt.migrations_c;
    Thread.Frame.hold_then c ms.m_send msite_send_step
  end
  else begin
    let rt = ms.m_rt in
    Stats.Counter.incr rt.rpc_calls_c;
    Transport.call rt.tp ~req:rt.rpc_k ~reply:rt.rpc_reply_k ~dst:home
      ~args_words:ms.m_args_words ~result_words:ms.m_result_words
      (* lint: allow hot-alloc an Rpc access ships the body to the home as a CPS monad by design — one closure per *remote* call *)
      (ms.m_cps_body ~obj:(Thread.Frame.getm0 c) ~a:(Thread.Frame.getm1 c)
         ~b:(Thread.Frame.getm2 c))
      c (Thread.Frame.take_k c)
  end

(* The home resolves at entry — before the forwarding-check hold, like
   the generic path resolves it before [call]'s — so a concurrent
   [Objspace.move] firing during the hold is seen by the same calls
   under either path. *)
let msite_enter ms ~scoped ~obj ~a ~b c k =
  Thread.Frame.save_k c k;
  Thread.Frame.setms c ms;
  Thread.Frame.setm0 c obj;
  Thread.Frame.setm1 c a;
  Thread.Frame.setm2 c b;
  Thread.Frame.setm3 c (Objspace.home ms.m_space (Objspace.id_of_int obj));
  Thread.Frame.setm4 c (if scoped then Processor.id (Thread.Frame.proc c) else -1);
  Thread.Frame.hold_then c ms.m_fc msite_call_step

let msite_finish c r =
  let origin = Thread.Frame.getm4 c in
  if origin < 0 || Processor.id (Thread.Frame.proc c) = origin then Thread.Frame.call_k c r
  else begin
    let ms : Obj.t msite = Thread.Frame.getms c in
    let rt = ms.m_rt in
    Stats.Counter.incr rt.scope_returns_c;
    Thread.Frame.setv3 c r;
    Transport.migrate_f rt.tp rt.migrate_return_k
      ~dst:(Machine.proc rt.machine origin)
      ~words:ms.m_result_words ~fresh:false ~after:scope_done_step c
  end

let msite_call ms ~obj ~a ~b c k =
  if Thread.Frame.on c then msite_enter ms ~scoped:false ~obj ~a ~b c k
  else
    call_cps ms.m_rt
      ~access:(if ms.m_migrate then Migrate else Rpc)
      ~home:(Objspace.home ms.m_space (Objspace.id_of_int obj))
      ~args_words:ms.m_args_words ~result_words:ms.m_result_words
      (* lint: allow hot-alloc CPS fall-back arm — runs only under sanitizers/fault injection *)
      (ms.m_cps_body ~obj ~a ~b) c k

let msite_scoped ms ~obj ~a ~b c k =
  if Thread.Frame.on c then msite_enter ms ~scoped:true ~obj ~a ~b c k
  else
    scope_cps ms.m_rt ~at_base:false ~result_words:ms.m_result_words
      (call_cps ms.m_rt
         ~access:(if ms.m_migrate then Migrate else Rpc)
         ~home:(Objspace.home ms.m_space (Objspace.id_of_int obj))
         ~args_words:ms.m_args_words ~result_words:ms.m_result_words
         (* lint: allow hot-alloc CPS fall-back arm — runs only under sanitizers/fault injection *)
         (ms.m_cps_body ~obj ~a ~b))
      c k

(* Partial-activation support (paper S6): an activation that migrated
   carrying only part of its live state pulls the rest from its origin
   with one round trip.  Serving the fetch costs the origin's CPU a
   handler dispatch plus the copy. *)
let fetch_residual t ~origin ~words =
  let c = costs t in
  Stats.Counter.incr t.residual_fetches_c;
  let* p = Thread.proc in
  if Processor.id p = origin then Thread.return ()
  else
    Thread.ignore_m
      (rpc_call t ~dst:origin ~args_words:2 ~result_words:words
         (Thread.compute (Costs.copy_packet c ~words)))

let residual_fetches t = Stats.get (stats t) "rt.residual_fetches"

(* Whole-thread migration (paper S2.3): ship the thread's entire stack,
   permanently relocating it.  No scope bookkeeping applies — there is
   no caller frame left behind. *)
let migrate_thread t ~dst ~stack_words =
  Stats.Counter.incr t.thread_migrations_c;
  let* p = Thread.proc in
  if Processor.id p = dst then Thread.return ()
  else
    Transport.migrate t.tp t.thread_migrate_k
      ~dst:(Machine.proc t.machine dst)
      ~words:stack_words ~fresh:true

let thread_migrations t = Stats.get (stats t) "rt.thread_migrations"

let migrations t = Stats.get (stats t) "rt.migrations"

let rpc_calls t = Stats.get (stats t) "rt.rpc_calls"

let local_calls t = Stats.get (stats t) "rt.local_calls"
