exception Violation of string

(* The enable switch is the one piece of checker state every domain must
   see: it is flipped by the main domain between runs and only read on
   the hot paths, so a plain atomic is both safe and free. *)
let enabled_flag = Atomic.make false (* lint: allow global-state — cross-domain on/off toggle, vetted *)

let enabled () = Atomic.get enabled_flag

let fail msg = raise (Violation msg)

let failf fmt = Format.kasprintf fail fmt

let require cond fmt =
  if cond then Format.ikfprintf ignore Format.str_formatter fmt else failf fmt

module Linear = struct
  type token = { id : int; what : string; mutable used : bool }

  (* The token registry is domain-local: a simulation runs entirely on
     one domain, so a token is always created and consumed on the same
     domain, and two machines running on two domains never share (or
     race on) a table. *)
  type registry = { mutable next_id : int; live : (int, string) Hashtbl.t }

  let fresh_registry () = { next_id = 0; live = Hashtbl.create 256 }

  let registry_key = Domain.DLS.new_key fresh_registry

  let registry () = Domain.DLS.get registry_key

  let make ~what =
    let r = registry () in
    let id = r.next_id in
    r.next_id <- id + 1;
    (* [live] holds tokens created but not yet used; the value is the
       creation label so leaks can be reported by name. *)
    Hashtbl.replace r.live id what;
    { id; what; used = false }

  let use tok =
    if tok.used then failf "continuation resumed twice: %s" tok.what;
    tok.used <- true;
    Hashtbl.remove (registry ()).live tok.id

  let outstanding () = Hashtbl.length (registry ()).live

  let outstanding_whats () =
    (* The fold feeds a sort, so table order never escapes. *)
    Hashtbl.fold (fun _ what acc -> what :: acc) (registry ()).live [] (* lint: allow hashtbl-order *)
    |> List.sort String.compare

  let reset () =
    let r = registry () in
    Hashtbl.reset r.live;
    r.next_id <- 0

  (* Run [f] under a registry of its own and restore the caller's
     afterwards — how the pool keeps one job's dropped continuations
     from surviving into the next job scheduled on the same domain. *)
  let scoped f =
    let saved = registry () in
    Domain.DLS.set registry_key (fresh_registry ());
    match f () with
    | v ->
      Domain.DLS.set registry_key saved;
      v
    | exception e ->
      Domain.DLS.set registry_key saved;
      raise e
end

let linear ~what f =
  if not (Atomic.get enabled_flag) then f
  else begin
    let tok = Linear.make ~what in
    fun v ->
      Linear.use tok;
      f v
  end

module Trail = struct
  (* Like the enable switch, the recording flag is set by the main
     domain and read by whichever domain runs the machine. *)
  let recording = Atomic.make false (* lint: allow global-state — cross-domain on/off toggle, vetted *)

  (* The digests themselves are domain-local (newest first); a pool
     worker records into its own list and Pool.await splices each job's
     fragment into the submitting domain's trail in submission order,
     so the trail a caller observes is identical at any [-j]. *)
  let entries_key : string list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

  let entries () = Domain.DLS.get entries_key

  let set_recording b = Atomic.set recording b

  let is_recording () = Atomic.get recording

  let digest_of_run ~clock ~fired ~stats =
    let b = Buffer.create 512 in
    Buffer.add_string b (Printf.sprintf "clock=%d fired=%d" clock fired);
    List.iter
      (fun (name, v) -> Buffer.add_string b (Printf.sprintf " %s=%d" name v))
      (Stats.counters stats);
    List.iter
      (fun (name, s) ->
        Buffer.add_string b
          (Printf.sprintf " %s:n=%d,sum=%h,min=%h,max=%h" name s.Stats.count s.Stats.sum
             s.Stats.min s.Stats.max))
      (Stats.distributions stats);
    Digest.to_hex (Digest.string (Buffer.contents b))

  let record_run ~clock ~fired ~stats =
    if Atomic.get recording then begin
      let r = entries () in
      r := digest_of_run ~clock ~fired ~stats :: !r
    end

  let trail () = List.rev !(entries ())

  let reset () = entries () := []

  let capture f =
    let r = entries () in
    let saved = !r in
    r := [];
    match f () with
    | v ->
      let fragment = List.rev !r in
      r := saved;
      (v, fragment)
    | exception e ->
      r := saved;
      raise e

  let append fragment =
    let r = entries () in
    List.iter (fun digest -> r := digest :: !r) fragment
end

let capture_job f = Linear.scoped (fun () -> Trail.capture f)

let set_enabled b = Atomic.set enabled_flag b

let reset () =
  Linear.reset ();
  Trail.reset ()
