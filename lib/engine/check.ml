exception Violation of string

let enabled_flag = ref false

let enabled () = !enabled_flag

let fail msg = raise (Violation msg)

let failf fmt = Format.kasprintf fail fmt

let require cond fmt =
  if cond then Format.ikfprintf ignore Format.str_formatter fmt else failf fmt

module Linear = struct
  type token = { id : int; what : string; mutable used : bool }

  let next_id = ref 0

  (* Tokens created but not yet used; the value is the creation label so
     leaks can be reported by name. *)
  let live : (int, string) Hashtbl.t = Hashtbl.create 256

  let make ~what =
    let id = !next_id in
    incr next_id;
    Hashtbl.replace live id what;
    { id; what; used = false }

  let use tok =
    if tok.used then failf "continuation resumed twice: %s" tok.what;
    tok.used <- true;
    Hashtbl.remove live tok.id

  let outstanding () = Hashtbl.length live

  let outstanding_whats () =
    (* The fold feeds a sort, so table order never escapes. *)
    Hashtbl.fold (fun _ what acc -> what :: acc) live [] (* lint: allow hashtbl-order *)
    |> List.sort String.compare

  let reset () =
    Hashtbl.reset live;
    next_id := 0
end

let linear ~what f =
  if not !enabled_flag then f
  else begin
    let tok = Linear.make ~what in
    fun v ->
      Linear.use tok;
      f v
  end

module Trail = struct
  let recording = ref false

  let entries : string list ref = ref []

  let set_recording b = recording := b

  let is_recording () = !recording

  let digest_of_run ~clock ~fired ~stats =
    let b = Buffer.create 512 in
    Buffer.add_string b (Printf.sprintf "clock=%d fired=%d" clock fired);
    List.iter
      (fun (name, v) -> Buffer.add_string b (Printf.sprintf " %s=%d" name v))
      (Stats.counters stats);
    List.iter
      (fun (name, s) ->
        Buffer.add_string b
          (Printf.sprintf " %s:n=%d,sum=%h,min=%h,max=%h" name s.Stats.count s.Stats.sum
             s.Stats.min s.Stats.max))
      (Stats.distributions stats);
    Digest.to_hex (Digest.string (Buffer.contents b))

  let record_run ~clock ~fired ~stats =
    if !recording then entries := digest_of_run ~clock ~fired ~stats :: !entries

  let trail () = List.rev !entries

  let reset () = entries := []
end

let set_enabled b = enabled_flag := b

let reset () =
  Linear.reset ();
  Trail.reset ()
