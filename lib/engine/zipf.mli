(** Seeded Zipf(s) sampling over ranks [0, n) — the standard model for
    skewed key popularity (YCSB's "zipfian" distribution): rank [k] is
    drawn with probability proportional to [1/(k+1)^s].  [s = 0] is
    uniform; [s] near 1 concentrates a few percent of all traffic on the
    single hottest rank; [s > 1] is a hot-key regime where a handful of
    ranks dominate.

    The inverse-CDF table is precomputed once ([O(n)] floats), and each
    draw is one uniform deviate plus a binary search — deterministic for
    a given generator stream, like every other stochastic choice in the
    simulator. *)

type t

val create : s:float -> n:int -> t
(** [create ~s ~n] precomputes the distribution over ranks [0, n). *)

val n : t -> int

val sample : t -> Rng.t -> int
(** [sample t rng] draws a rank. *)

val mass : t -> int -> float
(** [mass t k] is rank [k]'s probability (e.g. the hottest key's traffic
    share, [mass t 0]). *)
