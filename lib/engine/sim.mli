(** Discrete-event simulation core.

    A simulator owns a virtual clock (integer cycles) and a queue of pending
    events.  Events scheduled for the same cycle fire in scheduling order,
    making every run deterministic.  The clock only advances when the next
    event is strictly later than the current time — there is no real-time
    component.

    The queue is a calendar queue: a timing wheel of per-cycle FIFO buckets
    covering the near future, with a binary-heap overflow rung for events
    beyond the wheel's window.  Near-future insert and extract — the
    steady state of every simulated machine — are O(1), and event records
    are pooled and recycled on fire, so scheduling through a registered
    {!handler} allocates nothing per event.  Extraction order is strict
    (time, scheduling-seq) order, exactly what the previous binary-heap
    queue produced, so run digests are unchanged (see DESIGN.md §13). *)

type t
(** A simulator instance. *)

val create : ?wheel_bits:int -> unit -> t
(** [create ()] is a fresh simulator with the clock at cycle 0 and no
    pending events.  [wheel_bits] (default 8) sizes the calendar wheel at
    [2^wheel_bits] one-cycle buckets; events scheduled further than that
    past the last extraction point go to the overflow rung until the wheel
    rotates forward.  Raises [Invalid_argument] outside [1..22]. *)

val now : t -> int
(** [now t] is the current cycle. *)

(** {1 Closure events} *)

val at : t -> int -> (unit -> unit) -> unit
(** [at t time f] schedules [f] to run at absolute cycle [time].  Raises
    [Invalid_argument] if [time] is in the past.  The event record is
    pooled; only [f] itself is caller-allocated. *)

val after : t -> int -> (unit -> unit) -> unit
(** [after t delay f] schedules [f] to run [delay >= 0] cycles from now. *)

(** {1 Pooled handler events}

    Hot senders register a handler once and then schedule occurrences of
    it with an immediate-int argument: no closure, no event-record
    allocation — the entire schedule/fire cycle reuses pooled storage.
    Handler events interleave with closure events in the same strict
    (time, seq) order. *)

type hid
(** A handler registered with one simulator. *)

val handler : t -> (int -> unit) -> hid
(** [handler t f] registers [f] in [t]'s handler table (typically once,
    at subsystem construction) and returns its id. *)

val nil_handler : hid
(** A handler id registered with no simulator, for initializing slots
    before the real registration happens (knot-tying constructors).
    Posting it raises [Invalid_argument]. *)

val post : t -> time:int -> hid -> int -> unit
(** [post t ~time h arg] schedules handler [h] to run with [arg] at
    absolute cycle [time].  Raises [Invalid_argument] if [time] is in the
    past or [h] was not registered with [t]. *)

val post_after : t -> delay:int -> hid -> int -> unit
(** [post_after t ~delay h arg] is {!post} at [now t + delay >= now t]. *)

(** {1 Cancellable timers} *)

type token
(** Names one scheduled timer occurrence.  Tokens are immediate ints
    (slot + generation); a token outlives its event harmlessly — once the
    event has fired or been cancelled, {!cancel} returns [false]. *)

val timer : t -> delay:int -> (unit -> unit) -> token
(** [timer t ~delay f] schedules [f] like {!after} and returns a token
    that can cancel it.  O(1). *)

val cancel : t -> token -> bool
(** [cancel t tok] prevents the timer named by [tok] from firing: [true]
    if it was still pending (it is tombstoned in place, O(1), and its
    pooled slot recycled lazily), [false] if it already fired or was
    already cancelled.  A cancelled event does not fire, does not count
    in {!events_fired}, and does not advance the clock. *)

val pending : t -> int
(** [pending t] is the number of events not yet fired (cancelled events
    excluded). *)

exception Stop
(** Raised by an event handler to end the run immediately (the remaining
    events stay queued but are not fired). *)

val run : ?until:int -> t -> unit
(** [run ?until t] fires events in order until the queue is empty, a
    handler raises {!Stop}, or the next event is later than [until].  When
    stopping because of [until], the clock is left at [until] and later
    schedules before [until] are rejected as in the past. *)

val step : t -> bool
(** [step t] fires exactly one event; [false] if the queue was empty. *)

val events_fired : t -> int
(** [events_fired t] is the total number of events executed so far. *)
