(** Discrete-event simulation core.

    A simulator owns a virtual clock (integer cycles) and a queue of pending
    events.  Events scheduled for the same cycle fire in scheduling order,
    making every run deterministic.  The clock only advances when the next
    event is strictly later than the current time — there is no real-time
    component.

    The queue is a calendar queue: a timing wheel of per-cycle FIFO buckets
    covering the near future, with a binary-heap overflow rung for events
    beyond the wheel's window.  Near-future insert and extract — the
    steady state of every simulated machine — are O(1), and event records
    are pooled and recycled on fire, so scheduling through a registered
    {!handler} allocates nothing per event.  Extraction order is strict
    (time, scheduling-seq) order, exactly what the previous binary-heap
    queue produced, so run digests are unchanged (see DESIGN.md §13). *)

type t
(** A simulator instance. *)

type registry
(** A handler table and scheduling counter, normally private to one
    sim.  The sharded coordinator ({!Shard}) passes one registry to all
    of a machine's sims, so handler ids registered anywhere are
    postable everywhere and all shards draw seqs from one
    machine-global counter — the foundation of the coordinator's exact
    event ordering (see {!Shard}). *)

val registry : unit -> registry
(** A fresh, empty shared handler table. *)

val create : ?wheel_bits:int -> ?registry:registry -> unit -> t
(** [create ()] is a fresh simulator with the clock at cycle 0 and no
    pending events.  [wheel_bits] (default 8) sizes the calendar wheel at
    [2^wheel_bits] one-cycle buckets; events scheduled further than that
    past the last extraction point go to the overflow rung until the wheel
    rotates forward.  Raises [Invalid_argument] outside [1..22].
    [registry] shares a handler table and the scheduling counter with
    sibling sims (sharded machines); by default the sim gets a private
    one, which is the classic dense per-sim counter. *)

val now : t -> int
(** [now t] is the current cycle. *)

(** {1 Closure events} *)

val at : t -> int -> (unit -> unit) -> unit
(** [at t time f] schedules [f] to run at absolute cycle [time].  Raises
    [Invalid_argument] if [time] is in the past.  The event record is
    pooled; only [f] itself is caller-allocated. *)

val after : t -> int -> (unit -> unit) -> unit
(** [after t delay f] schedules [f] to run [delay >= 0] cycles from now. *)

(** {1 Pooled handler events}

    Hot senders register a handler once and then schedule occurrences of
    it with an immediate-int argument: no closure, no event-record
    allocation — the entire schedule/fire cycle reuses pooled storage.
    Handler events interleave with closure events in the same strict
    (time, seq) order. *)

type hid
(** A handler registered with one simulator. *)

val handler : t -> (int -> unit) -> hid
(** [handler t f] registers [f] in [t]'s handler table (typically once,
    at subsystem construction) and returns its id. *)

val nil_handler : hid
(** A handler id registered with no simulator, for initializing slots
    before the real registration happens (knot-tying constructors).
    Posting it raises [Invalid_argument]. *)

val hid_index : hid -> int
(** [hid_index h] is the raw registry index of [h] ([-1] for
    {!nil_handler}) — for packing into the shard mailbox's int lanes;
    {!post_arrival} accepts it back. *)

val post : t -> time:int -> hid -> int -> unit
(** [post t ~time h arg] schedules handler [h] to run with [arg] at
    absolute cycle [time].  Raises [Invalid_argument] if [time] is in the
    past or [h] was not registered with [t]. *)

val post_after : t -> delay:int -> hid -> int -> unit
(** [post_after t ~delay h arg] is {!post} at [now t + delay >= now t]. *)

(** {1 Cancellable timers} *)

type token
(** Names one scheduled timer occurrence.  Tokens are immediate ints
    (slot + generation); a token outlives its event harmlessly — once the
    event has fired or been cancelled, {!cancel} returns [false]. *)

val timer : t -> delay:int -> (unit -> unit) -> token
(** [timer t ~delay f] schedules [f] like {!after} and returns a token
    that can cancel it.  O(1). *)

val cancel : t -> token -> bool
(** [cancel t tok] prevents the timer named by [tok] from firing: [true]
    if it was still pending (it is tombstoned in place, O(1), and its
    pooled slot recycled lazily), [false] if it already fired or was
    already cancelled.  A cancelled event does not fire, does not count
    in {!events_fired}, and does not advance the clock. *)

val pending : t -> int
(** [pending t] is the number of events not yet fired (cancelled events
    excluded). *)

exception Stop
(** Raised by an event handler to end the run immediately (the remaining
    events stay queued but are not fired). *)

val run : ?until:int -> t -> unit
(** [run ?until t] fires events in order until the queue is empty, a
    handler raises {!Stop}, or the next event is later than [until].  When
    stopping because of [until], the clock is left at [until] and later
    schedules before [until] are rejected as in the past. *)

val step : t -> bool
(** [step t] fires exactly one event; [false] if the queue was empty. *)

val events_fired : t -> int
(** [events_fired t] is the total number of events executed so far. *)

(** {1 Windowed execution}

    The sharded coordinator's interface (see {!Shard}): peek the next
    event time to compute a conservative window, drain a shard up to the
    window's end, and splice barrier-merged cross-shard arrivals in at
    the seq position their sequential schedule would have had. *)

val peek_time : t -> int
(** [peek_time t] is the earliest pending event's time, or [max_int]
    when nothing is pending.  Does not advance the clock (cancelled
    events surfacing at the queue head are swept, as in extraction). *)

val peek_key : t -> int * int
(** [peek_key t] is the earliest pending event's [(time, seq)], or
    [(max_int, max_int)] when nothing is pending — the coordinator's
    in-window tournament compares these lexicographically across a
    machine's shards (seqs from a shared registry are globally unique,
    so the order is total). *)

val drain_until : t -> stop:int -> unit
(** [drain_until t ~stop] fires every event with time [<= stop] in
    order.  Unlike {!run} [~until], the clock is left at the last fired
    event — the coordinator owns the machine-global clock.  {!Stop}
    propagates to the caller. *)

val take_send_seq : t -> int
(** [take_send_seq t] draws one seq from the scheduling counter — the
    draw the local schedule a network send replaces would have made, so
    every later action's seq is invariant under the partition.  The
    send's arrival carries it back in through {!post_arrival} on the
    destination shard. *)

val post_arrival : t -> time:int -> seq:int -> hid:int -> arg:int -> (unit -> unit) -> unit
(** [post_arrival t ~time ~seq ~hid ~arg fn] schedules a barrier-merged
    cross-shard arrival: it fires at [time], ordered among same-time
    events by [seq] — the value its send drew with {!take_send_seq} on
    the source shard, which (with the shared counter and the
    coordinator's exact in-window order) is precisely the seq the
    sequential run's schedule carried.  [hid >= 0] posts the registered
    handler with [arg] (allocation-free); [hid = -1] runs [fn].  Raises
    [Invalid_argument] for a past [time], a seq the shared counter
    never produced, or an unregistered handler. *)
