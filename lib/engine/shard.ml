(* Conservative sharded discrete-event execution (PDES).

   One machine's processors are partitioned into K shards, each owning a
   {!Sim} of its own, all K sharing one registry — handler table plus
   the machine-global scheduling counter.  Execution proceeds in
   windows: with [T] the earliest pending event time across shards and
   [L] the topology's minimum positive link latency (the lookahead),
   every event in [T, W = T + L) can fire without hearing from any
   other shard — a message sent at time [s >= T] arrives at
   [s + latency >= T + L = W].  Every network send (same-shard ones
   included, so the protocol is shard-count-invariant) is pushed into
   the destination shard's mailbox, and mailboxes are merged at the
   window barrier.

   Within a window, events fire in exact machine-global (time, seq)
   order: a K-way tournament repeatedly fires the least head key among
   the shards (and the agenda).  Because every scheduling action draws
   its seq from the shared counter, the draws happen at the same point
   of the computation as in a sequential run and carry the same values
   — inductively, the whole event order is the sequential order, event
   for event.  A send captures its seq on the source shard
   ({!Sim.take_send_seq}); the barrier merge sorts arrivals by
   (time, seq) and splices each into the destination sim
   ({!Sim.post_arrival}) at exactly the position the sequential
   schedule gave it.  Digests at any shard count are therefore
   bit-identical to the sequential run — not approximately, by
   construction.

   The tournament serializes sub-cycle interleaving on the calling
   domain; what the sharding buys is the conservative-PDES structure
   itself — per-shard queues, batched cross-shard traffic, the
   causality sanitizer — proven digest-exact before any
   domains-parallel runner relaxes the in-window order (see DESIGN.md
   §17). *)

(* Mailbox entry layout: packed ints, one closure lane for the rare
   closure-delivery sends (CPS / sanitizer paths); handler deliveries
   ([e_hid >= 0]) never touch it.  [e_send] and [e_src] ride along for
   the causality sanitizer's diagnostic only. *)
let e_time = 0

let e_seq = 1

let e_send = 2

let e_src = 3

let e_hid = 4

let e_arg = 5

let stride = 6

let no_fn : unit -> unit = ignore

type mbox = {
  mutable buf : int array;
  mutable fns : (unit -> unit) array;
  mutable len : int;  (* entries *)
  mutable idx : int array;  (* merge-time permutation scratch *)
}

let mbox () = { buf = [||]; fns = [||]; len = 0; idx = [||] }

type t = {
  sims : Sim.t array;
  lookahead : int;
  shard_of : int array;  (* processor -> shard *)
  mailboxes : mbox array;  (* per destination shard *)
  mutable agenda : (int * int * (unit -> unit)) list;  (* (time, seq, fn), sorted *)
  mutable agenda_fired : int;
  mutable last_agenda_time : int;
  mutable window_end : int;  (* causality floor for the current merge *)
  mutable global_clock : int;
}

let create ~sims ~lookahead ~shard_of =
  let k = Array.length sims in
  if k < 2 then invalid_arg "Shard.create: need at least 2 shards";
  if lookahead <= 0 then invalid_arg "Shard.create: lookahead must be positive";
  Array.iter
    (fun s ->
      if s < 0 || s >= k then invalid_arg "Shard.create: shard_of entry out of range")
    shard_of;
  {
    sims;
    lookahead;
    shard_of;
    mailboxes = Array.init k (fun _ -> mbox ());
    agenda = [];
    agenda_fired = 0;
    last_agenda_time = 0;
    window_end = 0;
    global_clock = 0;
  }

let shards t = Array.length t.sims

let lookahead t = t.lookahead

let sim_of_proc t p = t.sims.(t.shard_of.(p))

let shard_of_proc t p = t.shard_of.(p)

(* --- mailbox hot path ----------------------------------------------- *)

let[@inline never] mbox_grow mb =
  let cap = max 64 (2 * Array.length mb.fns) in
  let buf = Array.make (cap * stride) 0 in
  Array.blit mb.buf 0 buf 0 (mb.len * stride);
  mb.buf <- buf;
  let fns = Array.make cap no_fn in
  Array.blit mb.fns 0 fns 0 mb.len;
  mb.fns <- fns

(* Queue one send for the barrier merge.  [seq] is the draw
   {!Sim.take_send_seq} made for the send on its source sim,
   [time = send + latency] the arrival cycle.  Pure int stores unless
   the send carries a closure. *)
let push t ~time ~send ~seq ~src ~dst ~hid ~arg fn =
  let mb = t.mailboxes.(t.shard_of.(dst)) in
  if mb.len = Array.length mb.fns then mbox_grow mb;
  let e = mb.len in
  mb.len <- e + 1;
  let base = e * stride in
  let buf = mb.buf in
  Array.unsafe_set buf (base + e_time) time;
  Array.unsafe_set buf (base + e_seq) seq;
  Array.unsafe_set buf (base + e_send) send;
  Array.unsafe_set buf (base + e_src) src;
  Array.unsafe_set buf (base + e_hid) hid;
  Array.unsafe_set buf (base + e_arg) arg;
  if fn != no_fn then Array.unsafe_set mb.fns e fn

(* --- barrier merge --------------------------------------------------- *)

(* (arrival time, seq) on packed entries — a total order, since seqs
   from the shared counter are globally unique; no stability
   requirement on the sort. *)
let[@inline always] entry_less buf i j =
  let bi = i * stride and bj = j * stride in
  let ti = Array.unsafe_get buf (bi + e_time) and tj = Array.unsafe_get buf (bj + e_time) in
  if ti <> tj then ti < tj
  else Array.unsafe_get buf (bi + e_seq) < Array.unsafe_get buf (bj + e_seq)

(* In-place heapsort of the first [n] permutation slots — deterministic,
   closure-free, O(n log n) worst case (entries arrive as K sorted-ish
   runs, which defeats naive insertion sort). *)
let sift_down buf idx root limit =
  let r = ref root in
  let continue_ = ref true in
  while !continue_ do
    let child = (2 * !r) + 1 in
    if child >= limit then continue_ := false
    else begin
      let child =
        if child + 1 < limit && entry_less buf idx.(child) idx.(child + 1) then child + 1
        else child
      in
      if entry_less buf idx.(!r) idx.(child) then begin
        let tmp = idx.(!r) in
        idx.(!r) <- idx.(child);
        idx.(child) <- tmp;
        r := child
      end
      else continue_ := false
    end
  done

let sort_idx buf idx n =
  for root = (n / 2) - 1 downto 0 do
    sift_down buf idx root n
  done;
  for last = n - 1 downto 1 do
    let tmp = idx.(0) in
    idx.(0) <- idx.(last);
    idx.(last) <- tmp;
    sift_down buf idx 0 last
  done

let[@inline never] causality_violation t ~time ~send ~src =
  Check.failf
    "Shard: cross-shard event from proc %d (sent at %d) arrives at %d, inside the completed \
     window (< %d)"
    src send time t.window_end

(* Merge one destination shard's mailbox into its sim, in (time, seq)
   order.  Every arrival must land at or after the window barrier —
   the conservative invariant the lookahead guarantees; under {!Check}
   each entry is verified (a violation here means a latency below the
   declared lookahead, or a [For_testing] injection). *)
let merge_one t d =
  let mb = t.mailboxes.(d) in
  let n = mb.len in
  if n > 0 then begin
    if Array.length mb.idx < n then mb.idx <- Array.make (Array.length mb.fns) 0;
    for i = 0 to n - 1 do
      mb.idx.(i) <- i
    done;
    if n > 1 then sort_idx mb.buf mb.idx n;
    let sim = t.sims.(d) in
    let checking = Check.enabled () in
    for r = 0 to n - 1 do
      let e = mb.idx.(r) in
      let base = e * stride in
      let time = mb.buf.(base + e_time) and seq = mb.buf.(base + e_seq) in
      if checking && time < t.window_end then
        causality_violation t ~time ~send:mb.buf.(base + e_send) ~src:mb.buf.(base + e_src);
      let hid = mb.buf.(base + e_hid) and arg = mb.buf.(base + e_arg) in
      (* lint: allow hot-alloc — Array.get on the closure lane types as an arrow, which the arity heuristic mistakes for a partial application; nothing is built (Sim.fire pattern) *)
      let fn = mb.fns.(e) in
      Sim.post_arrival sim ~time ~seq ~hid ~arg fn;
      if fn != no_fn then mb.fns.(e) <- no_fn
    done;
    mb.len <- 0
  end

(* --- the agenda ------------------------------------------------------ *)

(* Machine-global callbacks at absolute cycles (the workload driver's
   warmup snapshot): registered at setup, each draws a seq from the
   shared counter exactly as the setup-time [Sim.at] it replaces would,
   and the tournament fires it at that precise global position — after
   every event below its (time, seq), before every event above.  The
   callback therefore observes all shards coherently at its cycle, even
   mid-window.  Insertion keeps the list (time, seq)-sorted (seqs
   ascend at registration, so this is registration order per time). *)
let at_global t time fn =
  let seq = Sim.take_send_seq t.sims.(0) in
  let rec insert = function
    | [] -> [ (time, seq, fn) ]
    | (t0, _, _) :: _ as rest when time < t0 -> (time, seq, fn) :: rest
    | e :: rest -> e :: insert rest
  in
  t.agenda <- insert t.agenda

(* --- the window loop ------------------------------------------------- *)

let run ?until t =
  let k = Array.length t.sims in
  let horizon = match until with Some h -> h | None -> max_int in
  (* Cached tournament keys per shard — a shard's head only changes
     when that shard fires (local schedules stay local; cross-shard
     effects wait in mailboxes until the barrier), so one refresh per
     fired event suffices. *)
  let kt = Array.make k max_int and ks = Array.make k max_int in
  let refresh i =
    let pt, ps = Sim.peek_key t.sims.(i) in
    kt.(i) <- pt;
    ks.(i) <- ps
  in
  let refresh_all () =
    for i = 0 to k - 1 do
      refresh i
    done
  in
  (* Fire every event (and agenda callback) with time < [w] in exact
     machine-global (time, seq) order. *)
  let drain w =
    let continue_ = ref true in
    while !continue_ do
      let best = ref (-1) in
      let bt = ref w and bs = ref min_int in
      for i = 0 to k - 1 do
        if kt.(i) < !bt || (kt.(i) = !bt && ks.(i) < !bs) then begin
          best := i;
          bt := kt.(i);
          bs := ks.(i)
        end
      done;
      (match t.agenda with
      | (g, s, _) :: _ when g < !bt || (g = !bt && s < !bs) -> best := k
      | _ -> ());
      if !best < 0 then continue_ := false
      else begin
        (* The machine-global clock tracks the firing event — exactly
           the sequential run's clock at this point, so mid-run
           [Machine.now] reads (measurement probes) see the same value
           at any shard count. *)
        t.global_clock <- !bt;
        if !best = k then begin
          match t.agenda with
          | (time, _, fn) :: rest ->
            t.agenda <- rest;
            t.agenda_fired <- t.agenda_fired + 1;
            t.last_agenda_time <- time;
            fn ();
            (* The callback may have scheduled on any shard. *)
            refresh_all ()
          | [] -> assert false
        end
        else begin
          ignore (Sim.step t.sims.(!best) : bool);
          refresh !best
        end
      end
    done
  in
  let rec window () =
    refresh_all ();
    let tmin = ref max_int in
    for i = 0 to k - 1 do
      if kt.(i) < !tmin then tmin := kt.(i)
    done;
    (match t.agenda with (g, _, _) :: _ when g < !tmin -> tmin := g | _ -> ());
    if !tmin = max_int then
      (* Drained: the final clock is the last fired event's time. *)
      ()
    else if !tmin > horizon then
      (* Horizon stop with work remaining, as [Sim.run ~until]. *)
      t.global_clock <- horizon
    else begin
      (* The window [tmin, w), clamped at the horizon. *)
      let w = !tmin + t.lookahead in
      let w = if horizon <> max_int && horizon + 1 < w then horizon + 1 else w in
      drain w;
      t.window_end <- w;
      for d = 0 to k - 1 do
        merge_one t d
      done;
      window ()
    end
  in
  let finish () =
    let c = ref t.last_agenda_time in
    for i = 0 to k - 1 do
      if Sim.now t.sims.(i) > !c then c := Sim.now t.sims.(i)
    done;
    if !c > t.global_clock then t.global_clock <- !c
  in
  (try
     window ();
     finish ()
   with Sim.Stop -> finish ())

let clock t = t.global_clock

let fired t =
  let total = ref t.agenda_fired in
  Array.iter (fun s -> total := !total + Sim.events_fired s) t.sims;
  !total

let shard_fired t = Array.map Sim.events_fired t.sims

(* Test hook: inject an entry behind the causality floor so the
   sanitizer's firing is provable without faking a broken topology. *)
module For_testing = struct
  let push_raw = push
end
