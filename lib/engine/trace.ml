type level = Quiet | Events | Debug

(* Atomic so a machine running on a pool domain reads the level the main
   domain set without a data race; it is written only between runs. *)
let current = Atomic.make Quiet (* lint: allow global-state — cross-domain tracing level, vetted *)

let set_level l = Atomic.set current l

let level () = Atomic.get current

let rank = function Quiet -> 0 | Events -> 1 | Debug -> 2

let enabled l =
  let c = Atomic.get current in
  c <> Quiet && rank l <= rank c

let emit l msg = if enabled l then prerr_endline (msg ())

let eventf ?time fmt =
  if enabled Events then
    let k message =
      match time with
      | Some t -> Printf.eprintf "[%8d] %s\n%!" t message
      | None -> Printf.eprintf "%s\n%!" message
    in
    Format.kasprintf k fmt
  else Format.ikfprintf ignore Format.str_formatter fmt
