type level = Quiet | Events | Debug

let current = ref Quiet

let set_level l = current := l

let level () = !current

let rank = function Quiet -> 0 | Events -> 1 | Debug -> 2

let enabled l = rank l <= rank !current && !current <> Quiet

let emit l msg = if enabled l then prerr_endline (msg ())

let eventf ?time fmt =
  if enabled Events then
    let k message =
      match time with
      | Some t -> Printf.eprintf "[%8d] %s\n%!" t message
      | None -> Printf.eprintf "%s\n%!" message
    in
    Format.kasprintf k fmt
  else Format.ikfprintf ignore Format.str_formatter fmt
