type t = { cdf : float array }

let create ~s ~n =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0. then invalid_arg "Zipf.create: negative exponent";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    acc := !acc +. (1. /. (float_of_int (k + 1) ** s));
    cdf.(k) <- !acc
  done;
  let total = !acc in
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. total
  done;
  { cdf }

let n t = Array.length t.cdf

(* The deviate is drawn as an integer ({!Rng.bits53}) and converted
   here, so [u] lives and dies unboxed inside this frame; the binary
   search runs in place (non-escaping refs compile to mutable locals).
   A sample on the per-op path therefore allocates nothing.  The value
   of [u] is bit-identical to the [Rng.float rng 1.0] this replaces. *)
let sample t rng =
  let u = float_of_int (Rng.bits53 rng) /. 9007199254740992.0 (* 2^53 *) in
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let mass t k = if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)
