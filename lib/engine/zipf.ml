type t = { cdf : float array }

let create ~s ~n =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0. then invalid_arg "Zipf.create: negative exponent";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    acc := !acc +. (1. /. (float_of_int (k + 1) ** s));
    cdf.(k) <- !acc
  done;
  let total = !acc in
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. total
  done;
  { cdf }

let n t = Array.length t.cdf

(* Smallest rank whose cumulative mass covers [u]. *)
let rank_of t u =
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let sample t rng = rank_of t (Rng.float rng 1.0)

let mass t k = if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)
