(* SplitMix64 (Steele, Lea, Flood 2014), carried in two 32-bit limbs of
   native [int] instead of boxed [Int64].  The limb arithmetic below
   reproduces the 64-bit stream bit for bit — the regression suite holds
   it against a boxed-[Int64] reference — while a draw allocates
   nothing: boxed-[Int64] state cost ~7 minor words per [int] draw and
   ~17 per [Zipf] sample, which dominated the fused call path's per-op
   allocation budget (see [bench sites]).

   Limb conventions: a 64-bit quantity [z] is [(hi, lo)] with both limbs
   in [0, 2^32).  Native ints are 63-bit, so limb sums and 16x32 partial
   products fit exactly; full 32x32 products may wrap mod 2^63, which
   still preserves their low 32 bits (2^32 divides 2^63) — every such
   product flows into a [land 0xFFFFFFFF]. *)

type t = {
  mutable hi : int;  (* state, high 32 bits *)
  mutable lo : int;  (* state, low 32 bits *)
  mutable z_hi : int;  (* last output, high 32 bits *)
  mutable z_lo : int;  (* last output, low 32 bits *)
}

let mask32 = 0xFFFFFFFF

(* golden gamma 0x9E3779B97F4A7C15 *)
let gamma_hi = 0x9E3779B9

let gamma_lo = 0x7F4A7C15

let create ~seed = { hi = (seed asr 32) land mask32; lo = seed land mask32; z_hi = 0; z_lo = 0 }

(* Advance the state by gamma and leave [mix state] in [z_hi]/[z_lo].
   Straight-line tagged-int arithmetic: no allocation, no calls. *)
let step t =
  let s = t.lo + gamma_lo in
  let lo = s land mask32 in
  let hi = (t.hi + gamma_hi + (s lsr 32)) land mask32 in
  t.lo <- lo;
  t.hi <- hi;
  (* z ^= z >>> 30 *)
  let zlo = lo lxor (((lo lsr 30) lor (hi lsl 2)) land mask32) in
  let zhi = hi lxor (hi lsr 30) in
  (* z *= 0xBF58476D1CE4E5B9 *)
  let a0 = zlo land 0xFFFF and a1 = zlo lsr 16 in
  let m0 = a0 * 0xE5B9 in
  let m1 = (a1 * 0xE5B9) + (a0 * 0x1CE4) in
  let m2 = a1 * 0x1CE4 in
  let low = m0 + ((m1 land 0xFFFF) lsl 16) in
  let plo = low land mask32 in
  let phi =
    ((low lsr 32) + (m1 lsr 16) + m2 + (zlo * 0xBF58476D) + (zhi * 0x1CE4E5B9)) land mask32
  in
  (* z ^= z >>> 27 *)
  let zlo = plo lxor (((plo lsr 27) lor (phi lsl 5)) land mask32) in
  let zhi = phi lxor (phi lsr 27) in
  (* z *= 0x94D049BB133111EB *)
  let a0 = zlo land 0xFFFF and a1 = zlo lsr 16 in
  let m0 = a0 * 0x11EB in
  let m1 = (a1 * 0x11EB) + (a0 * 0x1331) in
  let m2 = a1 * 0x1331 in
  let low = m0 + ((m1 land 0xFFFF) lsl 16) in
  let plo = low land mask32 in
  let phi =
    ((low lsr 32) + (m1 lsr 16) + m2 + (zlo * 0x94D049BB) + (zhi * 0x133111EB)) land mask32
  in
  (* z ^= z >>> 31 *)
  t.z_lo <- plo lxor (((plo lsr 31) lor (phi lsl 1)) land mask32);
  t.z_hi <- phi lxor (phi lsr 31)

let int64 t =
  step t;
  Int64.logor (Int64.shift_left (Int64.of_int t.z_hi) 32) (Int64.of_int t.z_lo)

let split t =
  step t;
  { hi = t.z_hi; lo = t.z_lo; z_hi = 0; z_lo = 0 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Take the high 62 bits (they fit a non-negative OCaml int) modulo the
     bound; the modulo bias is negligible for the bounds used in the
     simulator. *)
  step t;
  ((t.z_hi lsl 30) lor (t.z_lo lsr 2)) mod bound

let bits53 t =
  step t;
  (t.z_hi lsl 21) lor (t.z_lo lsr 11)

let float t bound = bound *. (float_of_int (bits53 t) /. 9007199254740992.0 (* 2^53 *))

let bool t =
  step t;
  t.z_lo land 1 = 1

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
