(** Conservative sharded discrete-event execution.

    Partitions one machine's processors into K shards, each owning its
    own {!Sim} (all sharing one {!Sim.registry} — handler table plus
    the machine-global scheduling counter), and runs them in
    conservative windows of the topology's minimum positive link
    latency (the {e lookahead}).  Cross-shard — in fact {e all} —
    network sends are queued into per-destination-shard mailboxes and
    merged at each window barrier in (arrival time, seq) order, spliced
    into the destination sim at the position the sequential schedule
    gave them ({!Sim.post_arrival}).  Within a window, events fire in
    exact machine-global (time, seq) order via a K-way tournament, so
    every counter draw — and with it every event order — is
    bit-identical to the sequential run at any shard count.  See
    DESIGN.md §17. *)

type t

val no_fn : unit -> unit
(** The "no closure" payload for handler deliveries through {!push}
    (compared by physical identity — always pass this exact value, not
    your own [ignore]). *)

val create : sims:Sim.t array -> lookahead:int -> shard_of:int array -> t
(** [create ~sims ~lookahead ~shard_of] couples [K >= 2] sims (each
    created with a shared registry) into one windowed machine.
    [shard_of.(p)] is the shard owning processor [p]; [lookahead] must
    be positive ({!Topology.min_positive_latency}).  Raises
    [Invalid_argument] otherwise. *)

val shards : t -> int
(** Number of shards. *)

val lookahead : t -> int
(** The conservative window width, in cycles. *)

val sim_of_proc : t -> int -> Sim.t
(** [sim_of_proc t p] is the sim owning processor [p]. *)

val shard_of_proc : t -> int -> int
(** [shard_of_proc t p] is the shard index owning processor [p]. *)

val push :
  t ->
  time:int ->
  send:int ->
  seq:int ->
  src:int ->
  dst:int ->
  hid:int ->
  arg:int ->
  (unit -> unit) ->
  unit
(** [push t ~time ~send ~seq ~src ~dst ~hid ~arg fn] queues a network
    send from processor [src] to processor [dst], arriving at [time],
    for the next barrier merge.  [seq] is the draw {!Sim.take_send_seq}
    made for the send on the source sim; [send] (the send cycle) and
    [src] feed the causality sanitizer's diagnostic.  [hid >= 0]
    delivers through the shared handler registry with [arg]
    (allocation-free); [hid = -1] runs [fn] on arrival.  Sends must go
    through here for {e every} destination, same-shard included — the
    protocol must not depend on the partition. *)

val at_global : t -> int -> (unit -> unit) -> unit
(** [at_global t time fn] schedules a machine-global callback at
    absolute cycle [time].  It draws a seq from the shared counter at
    registration — exactly as the setup-time [Sim.at] it replaces
    would — and fires at that precise global position: after every
    event below its (time, seq), before every event above, all shards
    coherent at [time]. *)

val run : ?until:int -> t -> unit
(** [run ?until t] executes windows until every shard's queue and the
    agenda are empty, a handler raises {!Sim.Stop}, or the next event
    lies past [until] (the global clock is then left at [until], as
    [Sim.run ~until]). *)

val clock : t -> int
(** [clock t] is the machine-global clock: mid-run, the time of the
    event currently firing (the tournament fires in exact global order,
    so this is the sequential run's clock at the same point);
    afterwards, the last fired event's time (or [until] when the run
    stopped at the horizon). *)

val fired : t -> int
(** [fired t] is the total events executed across all shards plus
    agenda callbacks. *)

val shard_fired : t -> int array
(** [shard_fired t] is the per-shard fired-event counts (agenda
    callbacks excluded) — bench provenance. *)

(** Test-only access. *)
module For_testing : sig
  val push_raw :
    t ->
    time:int ->
    send:int ->
    seq:int ->
    src:int ->
    dst:int ->
    hid:int ->
    arg:int ->
    (unit -> unit) ->
    unit
  (** {!push} without any routing discipline — used by the sanitizer
      test to inject an arrival behind the causality floor. *)
end
