(** Deterministic pseudo-random number generation.

    A small, fast, splittable generator (SplitMix64).  Every stochastic
    choice in the simulator draws from an explicitly seeded [Rng.t], so a
    whole experiment is a pure function of its configuration — reruns are
    bit-for-bit identical, which the regression tests rely on. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] is a fresh generator.  Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each simulated thread its own stream so that adding a
    consumer does not perturb the draws seen by others. *)

val int64 : t -> int64
(** [int64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bits53 : t -> int
(** [bits53 t] is the next output's top 53 bits as a non-negative [int]
    — the integer [float t] scales, exposed so per-op samplers (e.g.
    {!Zipf.sample}) can defer the float conversion to a context where it
    stays unboxed.  [float t b = b *. (float_of_int (bits53 t) /. 2^53)]
    draw for draw. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place, uniformly (Fisher-Yates). *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly chosen element of [a].  [a] must be
    non-empty. *)
