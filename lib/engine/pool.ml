(* A fixed pool of domains behind a mutex/condition work queue.  Results
   travel through per-task slots (never through shared accumulators), so
   completion order cannot affect what callers observe; awaiting in
   submission order reproduces the sequential order exactly. *)

type job = unit -> unit

type t = {
  lock : Mutex.t;
  work_ready : Condition.t;
  queue : job Queue.t;
  mutable accepting : bool;
  mutable workers : unit Domain.t array;
  n_domains : int;
}

type 'a outcome =
  | Pending
  | Done of 'a
  | Raised of exn * Printexc.raw_backtrace

type 'a task = {
  t_lock : Mutex.t;
  t_done : Condition.t;
  mutable outcome : 'a outcome;
  (* Check.Trail digests the job recorded on its worker, chronological;
     spliced into the awaiting domain's trail by [await]. *)
  mutable trail : string list;
}

let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.queue && pool.accepting do
    Condition.wait pool.work_ready pool.lock
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.lock (* shut down and drained *)
  else begin
    let job = Queue.pop pool.queue in
    Mutex.unlock pool.lock;
    job ();
    worker_loop pool
  end

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let pool =
    {
      lock = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      accepting = true;
      workers = [||];
      n_domains = domains;
    }
  in
  pool.workers <- Array.init domains (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size t = t.n_domains

let submit pool f =
  let task =
    { t_lock = Mutex.create (); t_done = Condition.create (); outcome = Pending; trail = [] }
  in
  let job () =
    (* Check.capture_job scopes the sanitizer state to this job: a fresh
       Linear token registry (tokens cannot leak across jobs sharing a
       worker domain) and a private trail fragment. *)
    let outcome, trail =
      match Check.capture_job f with
      | v, frag -> (Done v, frag)
      | exception e -> (Raised (e, Printexc.get_raw_backtrace ()), [])
    in
    Mutex.lock task.t_lock;
    task.outcome <- outcome;
    task.trail <- trail;
    Condition.signal task.t_done;
    Mutex.unlock task.t_lock
  in
  Mutex.lock pool.lock;
  if not pool.accepting then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end
  else begin
    Queue.push job pool.queue;
    Condition.signal pool.work_ready;
    Mutex.unlock pool.lock;
    task
  end

let await task =
  Mutex.lock task.t_lock;
  let rec settled () =
    match task.outcome with
    | Pending ->
      Condition.wait task.t_done task.t_lock;
      settled ()
    | (Done _ | Raised _) as o -> o
  in
  let outcome = settled () in
  let trail = task.trail in
  task.trail <- [];
  Mutex.unlock task.t_lock;
  Check.Trail.append trail;
  match outcome with
  | Done v -> v
  | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let run_all pool jobs = List.map (submit pool) jobs |> List.map await

let shutdown pool =
  Mutex.lock pool.lock;
  pool.accepting <- false;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.lock;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]
