(** A fixed pool of OCaml 5 domains for running independent simulations
    in parallel.

    The pool exists to parallelize the experiment sweeps: every sweep
    point is an independent, deterministic, single-threaded simulation,
    so the only coordination needed is a work queue in and a result slot
    out.  Design rules that keep the parallel harness byte-identical to
    a sequential run:

    - Jobs must be {e pure} with respect to process-global state: they
      build their own machine, run it, and return a value.  They must
      not print (all report formatting happens on the submitting
      domain, in submission order).
    - Results are delivered through per-task slots, so completion order
      never affects observable output order: {!await} in submission
      order reads the results in submission order.
    - {!Check.Trail} digests recorded by a job are captured on the
      worker and re-appended to the submitting domain's trail when the
      task is awaited — again in submission order, exactly as an inline
      run would have recorded them.  Each job also gets a fresh
      {!Check.Linear} token scope, so sanitizer state never crosses
      jobs or domains.

    Workers block on a mutex/condition queue; an idle pool burns no
    CPU.  {!shutdown} drains the queue (already-submitted tasks still
    complete) and joins the domains. *)

type t

val create : domains:int -> t
(** [create ~domains] starts a pool of exactly [domains] worker domains
    ([invalid_arg] unless [domains >= 1]).  Remember that the main
    domain also exists: [domains] should normally be the [-j] value,
    the workers do all job execution and the main domain only submits,
    awaits and prints. *)

val size : t -> int
(** Number of worker domains the pool was created with. *)

type 'a task
(** A submitted job: a slot that will hold the job's result (or the
    exception it raised). *)

val submit : t -> (unit -> 'a) -> 'a task
(** [submit pool job] enqueues [job] and returns its result slot.
    Raises [Invalid_argument] if the pool has been shut down. *)

val await : 'a task -> 'a
(** [await task] blocks until the job has run, splices any
    {!Check.Trail} digests it recorded into the calling domain's trail,
    and returns its result — or re-raises, with the worker's backtrace,
    if the job raised.  Call it once per task, in submission order, to
    reproduce the sequential trail. *)

val run_all : t -> (unit -> 'a) list -> 'a list
(** [run_all pool jobs] submits every job, then awaits them in order:
    the parallel equivalent of [List.map (fun f -> f ()) jobs], with
    results (and trail digests) in list order regardless of completion
    order. *)

val shutdown : t -> unit
(** [shutdown pool] stops accepting new jobs, lets the workers drain
    the queue, and joins them.  Idempotent. *)
