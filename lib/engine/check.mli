(** Runtime sanitizers for the simulation stack.

    [Check] is the dynamic half of the correctness tooling (the static
    half is [bin/lint.ml]).  It is a toggleable checking layer in the
    spirit of {!Trace}: when disabled (the default) every hook is a
    single flag test and the instrumented code paths are unchanged, so
    production runs pay nothing.  When enabled, subsystems verify their
    own invariants on every transition and raise {!Violation} at the
    first breach:

    - {!Cm_machine.Thread} checks continuation linearity (every CPS
      continuation resumed exactly once; see {!Linear}),
    - {!Cm_memory.Shmem} validates the MSI directory after each
      coherence transaction,
    - {!Sim} checks event-time monotonicity as events fire,
    - {!Cm_memory.Lock} / [Rwlock] check lock discipline (release by
      holder only, reader-count sanity).

    The {!Trail} submodule records a digest of each completed run
    (final clock, events fired, statistics) so [repro selfcheck] can
    prove same-seed determinism end to end.

    All checker state is domain-safe: the on/off toggles are atomics,
    and the mutable working state ({!Linear} token registry, {!Trail}
    digest list) is domain-local, so machines running on different
    {!Pool} domains never share a cell.  The [reset]/[trail] accessors
    operate on the calling domain's state; {!Pool.await} splices worker
    trail fragments back into the submitting domain. *)

exception Violation of string
(** Raised at the first invariant breach when checking is enabled. *)

val set_enabled : bool -> unit
(** [set_enabled b] turns all sanitizers on or off (off by default). *)

val enabled : unit -> bool
(** [enabled ()] is true when sanitizers are active.  Instrumented code
    guards any non-trivial checking work behind this test. *)

val fail : string -> 'a
(** [fail msg] raises {!Violation} unconditionally. *)

val failf : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [failf fmt ...] is {!fail} with a formatted message. *)

val require : bool -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [require cond fmt ...] raises {!Violation} with the formatted
    message when [cond] is false; does nothing (and does not build the
    message) when it holds. *)

val reset : unit -> unit
(** [reset ()] clears all accumulated checker state ({!Linear} tokens
    and the {!Trail}); call between independent runs. *)

(** {1 Continuation linearity} *)

(** One-shot tokens backing the continuation-linearity sanitizer.  A
    token is created when a continuation is captured and consumed when
    it resumes; consuming twice is a double-resume violation, and
    tokens still live after a run has drained are dropped
    continuations. *)
module Linear : sig
  type token

  val make : what:string -> token
  (** [make ~what] registers a live token labelled [what]. *)

  val use : token -> unit
  (** [use tok] consumes [tok]; raises {!Violation} on a second use. *)

  val outstanding : unit -> int
  (** Number of tokens created but never used (potential dropped
      continuations; legitimate when a run is horizon-stopped).
      Domain-local, like the registry itself. *)

  val outstanding_whats : unit -> string list
  (** Labels of the outstanding tokens, sorted. *)

  val reset : unit -> unit
end

val linear : what:string -> ('a -> 'b) -> 'a -> 'b
(** [linear ~what f] is [f] wrapped in a fresh {!Linear} token so that
    calling it twice raises {!Violation}.  When checking is disabled
    this is [f] itself — no allocation, no indirection. *)

(** {1 Determinism trail} *)

(** Digests of completed simulation runs, fed by
    {!Cm_machine.Machine.run} while recording is on. *)
module Trail : sig
  val set_recording : bool -> unit
  (** [set_recording b] starts or stops appending run digests (off by
      default). *)

  val is_recording : unit -> bool

  val record_run : clock:int -> fired:int -> stats:Stats.t -> unit
  (** [record_run ~clock ~fired ~stats] appends a digest of the run's
      observable outcome; a no-op unless recording. *)

  val digest_of_run : clock:int -> fired:int -> stats:Stats.t -> string
  (** The digest itself (an MD5 hex string over the final clock, event
      count, and every counter and distribution, name-sorted). *)

  val trail : unit -> string list
  (** All digests recorded so far on this domain, in run order. *)

  val reset : unit -> unit

  val capture : (unit -> 'a) -> 'a * string list
  (** [capture f] runs [f] against an empty trail and returns what it
      recorded (in run order), restoring the caller's trail untouched.
      How a pool worker bounds one job's digests. *)

  val append : string list -> unit
  (** [append fragment] appends captured digests (in order) to the
      calling domain's trail. *)
end

val capture_job : (unit -> 'a) -> 'a * string list
(** [capture_job f] runs [f] as one pool job: a fresh {!Linear} scope
    (tokens cannot leak between jobs sharing a worker domain) and a
    {!Trail.capture}d trail fragment for {!Pool.await} to splice back
    in submission order. *)
