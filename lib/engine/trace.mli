(** Lightweight, zero-cost-when-off simulation tracing.

    Subsystems call [Trace.emit] with a lazily-built message; when tracing
    is disabled (the default) the closure is never run.  Intended for
    debugging small scenarios — experiment runs leave tracing off. *)

type level = Quiet | Events | Debug

val set_level : level -> unit
(** [set_level l] selects how much is printed ([Quiet] prints nothing). *)

val level : unit -> level
(** [level ()] is the current level. *)

val enabled : level -> bool
(** [enabled l] is true when messages at level [l] would be printed. *)

val emit : level -> (unit -> string) -> unit
(** [emit l msg] prints [msg ()] on stderr when [l] is enabled. *)

val eventf : ?time:int -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [eventf ?time fmt ...] formats and prints at level [Events], prefixed
    with [time] when given.  When tracing is off the format arguments are
    not formatted — the call costs one level test. *)
