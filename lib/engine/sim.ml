type event = { time : int; seq : int; action : unit -> unit }

(* The event queue is a binary min-heap specialized to events, ordered
   by (time, seq) with direct int comparisons — no closure call or
   polymorphic compare per sift step.  The algorithm is the same as
   {!Heap} (same sift paths), and (time, seq) is a total order because
   [seq] is unique, so extraction order — and therefore every run — is
   identical to what the generic heap produced. *)

type t = {
  mutable clock : int;
  mutable next_seq : int;
  mutable fired : int;
  mutable data : event array;
  mutable size : int;
}

exception Stop

(* Strict (time, seq) order; never called on equal keys. *)
let[@inline] before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let dummy_event = { time = min_int; seq = min_int; action = ignore }

let create () = { clock = 0; next_seq = 0; fired = 0; data = [||]; size = 0 }

let now t = t.clock

let grow t =
  let cap = max 16 (2 * Array.length t.data) in
  let data = Array.make cap dummy_event in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = if left < t.size && before t.data.(left) t.data.(i) then left else i in
  let smallest =
    if right < t.size && before t.data.(right) t.data.(smallest) then right else smallest
  in
  if smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(smallest);
    t.data.(smallest) <- tmp;
    sift_down t smallest
  end

let push t e =
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_min t =
  (* Precondition: t.size > 0. *)
  let min = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    sift_down t 0
  end;
  (* Clear the vacated slot so fired actions don't linger reachable. *)
  t.data.(t.size) <- dummy_event;
  min

let at t time action =
  if time < t.clock then
    invalid_arg (Printf.sprintf "Sim.at: time %d is before now (%d)" time t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push t { time; seq; action }

let after t delay =
  if delay < 0 then invalid_arg "Sim.after: negative delay";
  at t (t.clock + delay)

let pending t = t.size

let fire t e =
  if Check.enabled () && e.time < t.clock then
    Check.failf "Sim: event seq %d fires at %d, before the clock (%d)" e.seq e.time t.clock;
  t.clock <- e.time;
  t.fired <- t.fired + 1;
  e.action ()

let step t =
  if t.size = 0 then false
  else begin
    fire t (pop_min t);
    true
  end

let run ?until t =
  let horizon = match until with Some h -> h | None -> max_int in
  let rec loop () =
    if t.size > 0 then begin
      if t.data.(0).time > horizon then t.clock <- horizon
      else begin
        fire t (pop_min t);
        loop ()
      end
    end
  in
  try loop () with Stop -> ()

let events_fired t = t.fired
