type event = { time : int; seq : int; action : unit -> unit }

type t = {
  mutable clock : int;
  mutable next_seq : int;
  mutable fired : int;
  queue : event Heap.t;
}

exception Stop

let compare_event a b = if a.time <> b.time then compare a.time b.time else compare a.seq b.seq

let create () = { clock = 0; next_seq = 0; fired = 0; queue = Heap.create ~cmp:compare_event }

let now t = t.clock

let at t time action =
  if time < t.clock then
    invalid_arg (Printf.sprintf "Sim.at: time %d is before now (%d)" time t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.queue { time; seq; action }

let after t delay =
  if delay < 0 then invalid_arg "Sim.after: negative delay";
  at t (t.clock + delay)

let pending t = Heap.length t.queue

let fire t e =
  if Check.enabled () && e.time < t.clock then
    Check.failf "Sim: event seq %d fires at %d, before the clock (%d)" e.seq e.time t.clock;
  t.clock <- e.time;
  t.fired <- t.fired + 1;
  e.action ()

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some e ->
    fire t e;
    true

let run ?until t =
  let horizon = match until with Some h -> h | None -> max_int in
  let rec loop () =
    match Heap.peek t.queue with
    | None -> ()
    | Some e when e.time > horizon -> t.clock <- horizon
    | Some _ ->
      let e = Heap.pop_exn t.queue in
      fire t e;
      loop ()
  in
  try loop () with Stop -> ()

let events_fired t = t.fired
