(* The event queue is a calendar queue: a timing wheel of [nbuckets]
   one-cycle FIFO buckets covering [wheel_start, wheel_start + nbuckets),
   plus a binary min-heap "overflow rung" for events beyond that window.
   The wheel only ever holds events inside the window, so every event in
   bucket [time land bmask] has exactly that [time]; appending at the
   tail therefore keeps each bucket in [seq] order (seqs are assigned in
   scheduling order), and scanning buckets forward from [wheel_start]
   yields strict (time, seq) order — the same total order the previous
   specialized binary heap extracted, so every run is bit-identical.

   [wheel_start] advances only when an event is extracted, to that
   event's time; in between, user code observes [wheel_start <= clock],
   so a new event's bucket is always inside the window or beyond it (the
   overflow rung).  When the window moves, overflow events that fell
   inside it migrate to their buckets in (time, seq) heap order — before
   any later (higher-seq) schedule can target those buckets, which
   preserves the per-bucket FIFO invariant.

   An occupancy bitmap (one bit per bucket, 32 buckets per word) lets
   extraction skip runs of empty buckets a word at a time, so sparse
   schedules (many empty cycles between events) don't pay a per-cycle
   scan: the cost per extraction is O(occupied-bucket distance / 32).

   Events are pooled in one flat int array, [stride] words per slot
   (time, seq, handler id, argument, generation, liveness, FIFO link —
   the stride is 8 so a slot spans exactly one cache line), plus one
   closure array; freed slots go on a free list threaded through the
   link field and are recycled as events fire, so steady-state
   scheduling allocates nothing.  Keeping the queue's links and bucket
   heads as ints rather than pointers also means no [caml_modify] write
   barrier on any queue operation — the only barriered store left is
   the closure itself, and handler events ([post]) skip even that: they
   carry a pre-registered handler id plus an immediate-int argument.
   Cancellation ([timer]/[cancel]) tombstones the slot in place (O(1));
   tombstones are swept out lazily during extraction.

   The slot accessors below use unchecked array reads/writes.  The
   indices are safe by construction: every slot travelling through the
   wheel, the overflow rung, or the free list came from [alloc], which
   only hands out slots below [pool_size], and [pool_size * stride]
   never exceeds the pool array's length; bucket indices are masked by
   [bmask] and the bitmap is sized to match. *)

type hid = int

type token = int

(* A token packs (slot, generation) into one immediate int. *)
let slot_bits = 24

let slot_mask = (1 lsl slot_bits) - 1

(* Packed per-slot field offsets in [evs]. *)
let stride_bits = 3

let stride = 1 lsl stride_bits

let f_time = 0

let f_seq = 1

let f_hid = 2 (* >= 0: handler-table index; -1: closure event *)

let f_arg = 3

let f_gen = 4 (* bumped on recycle; stale tokens miss *)

let f_live = 5 (* 1 live, 0 tombstoned/free *)

let f_next = 6 (* bucket FIFO / free-list link, -1 end *)

(* Slot 7 is spare: the stride stays 8 so a slot spans one cache line. *)

(* Shared "no closure" payload; physical identity marks a slot whose
   closure field needs no clearing (and no write barrier) on recycle. *)
let no_fn : unit -> unit = ignore

(* A handler table shared between simulators.  Normally each sim owns a
   private registry; the sharded coordinator (see {!Shard}) gives all of
   one machine's sims a single registry, so a handler id registered at
   construction time on any shard is valid for posting on every shard —
   cross-shard deliveries stay pure ints, no per-shard rebinding.

   The [next_seq] counter lives here too: it numbers scheduling actions
   in execution order, and with one registry spanning all of a
   machine's shards it is a single machine-global stream.  The sharded
   coordinator fires same-window events across shards in exact
   (time, seq) order (the in-window tournament, see {!Shard}), so every
   draw happens at the same point of the computation as in a sequential
   run and carries the same value — which is what lets a network send's
   seq, captured on the source shard ({!take_send_seq}), splice its
   arrival into the destination shard's queue ({!post_arrival}) at
   exactly the position the sequential schedule would have given it.
   For a sim with a private registry this is the plain dense counter it
   always had. *)
type registry = {
  mutable handlers : (int -> unit) array;
  mutable n_handlers : int;
  mutable next_seq : int;
}

let registry () = { handlers = [||]; n_handlers = 0; next_seq = 0 }

type t = {
  mutable clock : int;
  mutable fired : int;
  mutable pending : int;  (* live (un-fired, un-cancelled) events *)
  (* calendar wheel: bucket -> slot of first event, -1 when empty *)
  nbuckets : int;
  bmask : int;
  heads : int array;
  tails : int array;
  occ : int array;  (* occupancy bitmap, 32 buckets per word *)
  mutable wheel_start : int;
  mutable wheel_count : int;  (* entries in buckets, tombstones included *)
  (* overflow rung: slots ordered as a binary min-heap by (time, seq) *)
  mutable ovf : int array;
  mutable ovf_size : int;
  (* event pool *)
  mutable evs : int array;  (* packed slots, [stride] ints each *)
  mutable ev_fn : (unit -> unit) array;  (* payload when hid = -1, else [no_fn] *)
  mutable pool_size : int;
  mutable free : int;  (* free-list head slot, -1 when empty *)
  (* handler table, possibly shared with sibling shards *)
  reg : registry;
}

let[@inline always] ev t s f = Array.unsafe_get t.evs ((s lsl stride_bits) + f)

let[@inline always] set_ev t s f v = Array.unsafe_set t.evs ((s lsl stride_bits) + f) v

exception Stop

(* 256 buckets: the wheel's three per-bucket arrays plus the bitmap stay
   ~6 KB — resident in L1 — while covering the short network/CPU delays
   that dominate every workload's schedule.  Rarer long delays (think
   times, warmup) ride the overflow rung, whose heap ops cost what the
   old all-heap queue paid for every event. *)
let default_wheel_bits = 8

let create ?(wheel_bits = default_wheel_bits) ?registry:reg () =
  if wheel_bits < 1 || wheel_bits > 22 then
    invalid_arg "Sim.create: wheel_bits out of range [1,22]";
  let nbuckets = 1 lsl wheel_bits in
  {
    clock = 0;
    fired = 0;
    pending = 0;
    nbuckets;
    bmask = nbuckets - 1;
    heads = Array.make nbuckets (-1);
    tails = Array.make nbuckets (-1);
    occ = Array.make (max 1 (nbuckets lsr 5)) 0;
    wheel_start = 0;
    wheel_count = 0;
    ovf = [||];
    ovf_size = 0;
    evs = [||];
    ev_fn = [||];
    pool_size = 0;
    free = -1;
    reg = (match reg with Some r -> r | None -> registry ());
  }

let now t = t.clock

let pending t = t.pending

let events_fired t = t.fired

(* --- handler table -------------------------------------------------- *)

let nil_handler = -1

let hid_index (h : hid) : int = h

let handler t f =
  let r = t.reg in
  if r.n_handlers = Array.length r.handlers then begin
    let cap = max 8 (2 * Array.length r.handlers) in
    let hs = Array.make cap (fun (_ : int) -> ()) in
    Array.blit r.handlers 0 hs 0 r.n_handlers;
    r.handlers <- hs
  end;
  r.handlers.(r.n_handlers) <- f;
  r.n_handlers <- r.n_handlers + 1;
  r.n_handlers - 1

(* --- event pool ----------------------------------------------------- *)

let grow_pool t =
  let cap = max 64 (2 * Array.length t.ev_fn) in
  let evs = Array.make (cap * stride) 0 in
  Array.blit t.evs 0 evs 0 (t.pool_size * stride);
  t.evs <- evs;
  let fns = Array.make cap no_fn in
  Array.blit t.ev_fn 0 fns 0 t.pool_size;
  t.ev_fn <- fns

let alloc t =
  let s = t.free in
  if s >= 0 then begin
    t.free <- ev t s f_next;
    s
  end
  else begin
    if t.pool_size = Array.length t.ev_fn then grow_pool t;
    if t.pool_size > slot_mask then failwith "Sim: event pool exceeds token capacity";
    let s = t.pool_size in
    t.pool_size <- s + 1;
    s
  end

let[@inline always] recycle t s =
  set_ev t s f_live 0;
  (* Drop the closure so fired actions don't linger reachable; handler
     events never stored one, so they skip the (barriered) store. *)
  if Array.unsafe_get t.ev_fn s != no_fn then Array.unsafe_set t.ev_fn s no_fn;
  (* Invalidate any outstanding cancellation token for this slot. *)
  set_ev t s f_gen (ev t s f_gen + 1);
  set_ev t s f_next t.free;
  t.free <- s

(* --- overflow rung: binary min-heap of slots by (time, seq) ---------- *)

let[@inline always] before t a b =
  let ta = ev t a f_time and tb = ev t b f_time in
  if ta <> tb then ta < tb else ev t a f_seq < ev t b f_seq

let ovf_grow t =
  let cap = max 16 (2 * Array.length t.ovf) in
  let ovf = Array.make cap (-1) in
  Array.blit t.ovf 0 ovf 0 t.ovf_size;
  t.ovf <- ovf

let rec ovf_sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t t.ovf.(i) t.ovf.(parent) then begin
      let tmp = t.ovf.(i) in
      t.ovf.(i) <- t.ovf.(parent);
      t.ovf.(parent) <- tmp;
      ovf_sift_up t parent
    end
  end

let rec ovf_sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = if left < t.ovf_size && before t t.ovf.(left) t.ovf.(i) then left else i in
  let smallest =
    if right < t.ovf_size && before t t.ovf.(right) t.ovf.(smallest) then right else smallest
  in
  if smallest <> i then begin
    let tmp = t.ovf.(i) in
    t.ovf.(i) <- t.ovf.(smallest);
    t.ovf.(smallest) <- tmp;
    ovf_sift_down t smallest
  end

let ovf_push t s =
  if t.ovf_size = Array.length t.ovf then ovf_grow t;
  t.ovf.(t.ovf_size) <- s;
  t.ovf_size <- t.ovf_size + 1;
  ovf_sift_up t (t.ovf_size - 1)

(* Precondition: t.ovf_size > 0. *)
let ovf_pop t =
  let min = t.ovf.(0) in
  t.ovf_size <- t.ovf_size - 1;
  if t.ovf_size > 0 then begin
    t.ovf.(0) <- t.ovf.(t.ovf_size);
    ovf_sift_down t 0
  end;
  t.ovf.(t.ovf_size) <- -1;
  min

(* --- calendar wheel ------------------------------------------------- *)

let[@inline always] push_bucket t s =
  let b = ev t s f_time land t.bmask in
  let tl = Array.unsafe_get t.tails b in
  if tl < 0 then begin
    Array.unsafe_set t.heads b s;
    let w = b lsr 5 in
    Array.unsafe_set t.occ w (Array.unsafe_get t.occ w lor (1 lsl (b land 31)))
  end
  else set_ev t tl f_next s;
  Array.unsafe_set t.tails b s;
  t.wheel_count <- t.wheel_count + 1

(* Insert slot [s] into its bucket by seq position rather than at the
   tail — the barrier-merge path ({!post_arrival}): a merged
   cross-shard arrival's seq was drawn at its send, so it can precede
   seqs already in the destination bucket (scheduled later, globally).
   Every event in a bucket shares one fire time (window invariant), so
   the seq alone orders the walk; seqs are globally unique, so there
   are no ties.  Local schedules never need this: the machine-global
   counter only ascends, so a fresh schedule's seq is its bucket's
   maximum and the plain tail append is already sorted. *)
let push_bucket_sorted t s =
  let b = ev t s f_time land t.bmask in
  let hd = Array.unsafe_get t.heads b in
  if hd < 0 then begin
    Array.unsafe_set t.heads b s;
    Array.unsafe_set t.tails b s;
    let w = b lsr 5 in
    Array.unsafe_set t.occ w (Array.unsafe_get t.occ w lor (1 lsl (b land 31)))
  end
  else begin
    let seq = ev t s f_seq in
    let tl = Array.unsafe_get t.tails b in
    if seq > ev t tl f_seq then begin
      set_ev t tl f_next s;
      Array.unsafe_set t.tails b s
    end
    else if seq < ev t hd f_seq then begin
      set_ev t s f_next hd;
      Array.unsafe_set t.heads b s
    end
    else begin
      let prev = ref hd in
      let cur = ref (ev t hd f_next) in
      while !cur >= 0 && seq > ev t !cur f_seq do
        prev := !cur;
        cur := ev t !cur f_next
      done;
      set_ev t s f_next !cur;
      set_ev t !prev f_next s;
      if !cur < 0 then Array.unsafe_set t.tails b s
    end
  end;
  t.wheel_count <- t.wheel_count + 1

(* Precondition: t.heads.(b) >= 0. *)
let[@inline always] pop_head t b =
  let s = Array.unsafe_get t.heads b in
  let n = ev t s f_next in
  Array.unsafe_set t.heads b n;
  if n < 0 then begin
    Array.unsafe_set t.tails b (-1);
    let w = b lsr 5 in
    Array.unsafe_set t.occ w (Array.unsafe_get t.occ w land lnot (1 lsl (b land 31)))
  end
  else set_ev t s f_next (-1);
  t.wheel_count <- t.wheel_count - 1;
  s

(* Index of the least-significant set bit of [x <> 0]: five masked tests
   on the isolated bit, no table, no loop. *)
let[@inline always] lowest_bit x =
  let x = x land -x in
  let i = if x land 0xFFFF = 0 then 16 else 0 in
  let i = if x land 0x00FF00FF = 0 then i + 8 else i in
  let i = if x land 0x0F0F0F0F = 0 then i + 4 else i in
  let i = if x land 0x33333333 = 0 then i + 2 else i in
  if x land 0x55555555 = 0 then i + 1 else i

(* Bucket index of the first occupied bucket at or circularly after
   position [s].  Precondition: t.wheel_count > 0 (some bit is set). *)
let[@inline always] next_occupied t s =
  let occ = t.occ in
  let nwords = Array.length occ in
  let w0 = s lsr 5 in
  let m = Array.unsafe_get occ w0 land (-1 lsl (s land 31)) in
  if m <> 0 then (w0 lsl 5) + lowest_bit m
  else begin
    let w = ref (if w0 + 1 = nwords then 0 else w0 + 1) in
    while Array.unsafe_get occ !w = 0 do
      w := if !w + 1 = nwords then 0 else !w + 1
    done;
    (!w lsl 5) + lowest_bit (Array.unsafe_get occ !w)
  end

(* Move the window forward to [time] and migrate overflow events that
   fell inside it into their buckets (in heap (time, seq) order, into
   buckets the forward scan just proved empty). *)
let[@inline always] advance_to t time =
  t.wheel_start <- time;
  if t.ovf_size > 0 then begin
    let limit = time + t.nbuckets in
    while t.ovf_size > 0 && ev t t.ovf.(0) f_time < limit do
      push_bucket t (ovf_pop t)
    done
  end

let prune_ovf t =
  while t.ovf_size > 0 && ev t t.ovf.(0) f_live = 0 do
    recycle t (ovf_pop t)
  done

(* Extract the earliest live event's slot if its time is <= [horizon],
   else return -1 without moving the window (so a horizon stop leaves
   the queue able to accept events from [clock] on).  Precondition:
   t.pending > 0, which guarantees a live event exists somewhere. *)
let rec extract t ~horizon =
  if t.wheel_count = 0 then begin
    prune_ovf t;
    let m = t.ovf.(0) in
    if ev t m f_time > horizon then -1
    else begin
      advance_to t (ev t m f_time);
      extract t ~horizon
    end
  end
  else begin
    (* Find the first bucket with a live head: hop occupied buckets via
       the bitmap (circular order from the window base = increasing
       time), sweeping tombstones as they surface.  The scan starts at
       the last extraction time and the window only moves forward, so
       the whole run re-reads each bitmap word O(1) times plus one word
       per 32 empty cycles of clock advance.  The sweep is fused into
       the scan so the common (no-tombstone) case is one bitmap probe,
       one head load and one liveness test — no out-of-line call. *)
    let b = ref (next_occupied t (t.wheel_start land t.bmask)) in
    let s = ref (Array.unsafe_get t.heads !b) in
    while !s >= 0 && ev t !s f_live = 0 do
      recycle t (pop_head t !b);
      if t.wheel_count = 0 then s := -1
      else begin
        (* [next_occupied] re-returns [b] itself while it still has
           entries, so a bucket mixing tombstones and live events is
           drained before the scan moves on. *)
        b := next_occupied t !b;
        s := Array.unsafe_get t.heads !b
      end
    done;
    if !s < 0 then (* pruning emptied the wheel: the min is in overflow *)
      extract t ~horizon
    else begin
      let s = !s in
      if ev t s f_time > horizon then -1
      else begin
        advance_to t (ev t s f_time);
        ignore (pop_head t !b : int);
        s
      end
    end
  end

(* --- scheduling ----------------------------------------------------- *)

let[@inline always] fill_slot t s ~time ~seq ~hid ~arg fn =
  set_ev t s f_time time;
  set_ev t s f_seq seq;
  set_ev t s f_hid hid;
  set_ev t s f_arg arg;
  if fn != no_fn then Array.unsafe_set t.ev_fn s fn;
  set_ev t s f_live 1;
  set_ev t s f_next (-1);
  t.pending <- t.pending + 1

let schedule t ~time ~hid ~arg fn =
  let s = alloc t in
  let r = t.reg in
  let seq = r.next_seq in
  r.next_seq <- seq + 1;
  fill_slot t s ~time ~seq ~hid ~arg fn;
  if time - t.wheel_start < t.nbuckets then push_bucket t s else ovf_push t s;
  s

(* The seq of a network send leaving this sim: one draw from the
   machine-global counter, exactly the draw the local [Sim.after] it
   replaces would have made — so every later action's seq, and with it
   the whole event order, is invariant under the partition. *)
let take_send_seq t =
  let r = t.reg in
  let seq = r.next_seq in
  r.next_seq <- seq + 1;
  seq

(* Barrier-merged cross-shard arrival (see {!Shard}): scheduled with
   the seq its send drew via {!take_send_seq} on the source shard — the
   position its schedule held in the sequential run — and spliced into
   its (same-fire-time) bucket at that position. *)
let post_arrival t ~time ~seq ~hid ~arg fn =
  if time < t.clock then
    invalid_arg (Printf.sprintf "Sim.post_arrival: time %d is before now (%d)" time t.clock);
  if seq < 0 || seq >= t.reg.next_seq then invalid_arg "Sim.post_arrival: seq never drawn";
  if hid >= t.reg.n_handlers then invalid_arg "Sim.post_arrival: handler not registered here";
  let s = alloc t in
  fill_slot t s ~time ~seq ~hid ~arg fn;
  if time - t.wheel_start < t.nbuckets then push_bucket_sorted t s else ovf_push t s

let at t time fn =
  if time < t.clock then
    invalid_arg (Printf.sprintf "Sim.at: time %d is before now (%d)" time t.clock);
  ignore (schedule t ~time ~hid:(-1) ~arg:0 fn : int)

let after t delay fn =
  if delay < 0 then invalid_arg "Sim.after: negative delay";
  at t (t.clock + delay) fn

let post t ~time h arg =
  if time < t.clock then
    invalid_arg (Printf.sprintf "Sim.post: time %d is before now (%d)" time t.clock);
  if h < 0 || h >= t.reg.n_handlers then invalid_arg "Sim.post: handler not registered here";
  ignore (schedule t ~time ~hid:h ~arg no_fn : int)

let post_after t ~delay h arg =
  if delay < 0 then invalid_arg "Sim.post_after: negative delay";
  post t ~time:(t.clock + delay) h arg

let timer t ~delay fn =
  if delay < 0 then invalid_arg "Sim.timer: negative delay";
  let s = schedule t ~time:(t.clock + delay) ~hid:(-1) ~arg:0 fn in
  s lor (ev t s f_gen lsl slot_bits)

let cancel t token =
  let slot = token land slot_mask in
  let gen = token lsr slot_bits in
  if slot < 0 || slot >= t.pool_size then false
  else if ev t slot f_gen <> gen || ev t slot f_live = 0 then false
  else begin
    (* Tombstone in place; extraction sweeps the slot out later (and
       recycling then bumps the generation). *)
    set_ev t slot f_live 0;
    if t.ev_fn.(slot) != no_fn then t.ev_fn.(slot) <- no_fn;
    t.pending <- t.pending - 1;
    true
  end

(* --- the loop ------------------------------------------------------- *)

let fire t s =
  let time = ev t s f_time in
  if Check.enabled () && time < t.clock then
    Check.failf "Sim: event seq %d fires at %d, before the clock (%d)" (ev t s f_seq) time
      t.clock;
  t.clock <- time;
  t.fired <- t.fired + 1;
  t.pending <- t.pending - 1;
  let hid = ev t s f_hid and arg = ev t s f_arg and fn = Array.unsafe_get t.ev_fn s in
  (* Recycle before invoking: the handler may schedule, and reusing the
     just-vacated slot keeps the pool's working set at the live-event
     count. *)
  recycle t s;
  if hid >= 0 then t.reg.handlers.(hid) arg else fn ()

let step t =
  if t.pending = 0 then false
  else begin
    fire t (extract t ~horizon:max_int);
    true
  end

let run ?until t =
  let horizon = match until with Some h -> h | None -> max_int in
  let rec loop () =
    if t.pending > 0 then begin
      let s = extract t ~horizon in
      if s < 0 then t.clock <- horizon
      else begin
        fire t s;
        loop ()
      end
    end
  in
  try loop () with Stop -> ()

(* --- windowed execution (the sharded coordinator's view) ------------ *)

(* Earliest live event's slot without extracting it (tombstones are
   swept as they surface, as in [extract]); [-1] when none is pending.
   The wheel min is <= the overflow min by the window invariant, so a
   live wheel head answers directly. *)
let rec peek_slot t =
  if t.pending = 0 then -1
  else if t.wheel_count = 0 then begin
    prune_ovf t;
    t.ovf.(0)
  end
  else begin
    let b = ref (next_occupied t (t.wheel_start land t.bmask)) in
    let s = ref (Array.unsafe_get t.heads !b) in
    while !s >= 0 && ev t !s f_live = 0 do
      recycle t (pop_head t !b);
      if t.wheel_count = 0 then s := -1
      else begin
        b := next_occupied t !b;
        s := Array.unsafe_get t.heads !b
      end
    done;
    if !s < 0 then peek_slot t else !s
  end

let peek_time t =
  let s = peek_slot t in
  if s < 0 then max_int else ev t s f_time

(* The head's (time, seq), for the coordinator's in-window tournament;
   (max_int, max_int) when nothing is pending.  The caller compares
   lexicographically — seqs are globally unique, so the order is
   total across a machine's shards. *)
let peek_key t =
  let s = peek_slot t in
  if s < 0 then (max_int, max_int) else (ev t s f_time, ev t s f_seq)

(* Fire every event with time <= [stop], leaving the clock at the last
   fired event (NOT bumped to [stop]): the coordinator computes the
   machine-global clock itself, matching [run ~until]'s "horizon only
   when work remains" rule across all shards.  {!Stop} propagates to the
   caller. *)
let drain_until t ~stop =
  let rec loop () =
    if t.pending > 0 then begin
      let s = extract t ~horizon:stop in
      if s >= 0 then begin
        fire t s;
        loop ()
      end
    end
  in
  loop ()
