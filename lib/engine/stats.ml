type summary = { count : int; sum : float; min : float; max : float }

type dist = { mutable d_count : int; mutable d_sum : float; mutable d_min : float; mutable d_max : float }

type t = { counters : (string, int ref) Hashtbl.t; dists : (string, dist) Hashtbl.t }

let create () = { counters = Hashtbl.create 64; dists = Hashtbl.create 16 }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let incr t name = Stdlib.incr (counter_ref t name)

let add t name n =
  let r = counter_ref t name in
  r := !r + n

let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let dist_ref t name =
  match Hashtbl.find_opt t.dists name with
  | Some d -> d
  | None ->
    let d = { d_count = 0; d_sum = 0.; d_min = infinity; d_max = neg_infinity } in
    Hashtbl.add t.dists name d;
    d

let observe t name v =
  let d = dist_ref t name in
  d.d_count <- d.d_count + 1;
  d.d_sum <- d.d_sum +. v;
  if v < d.d_min then d.d_min <- v;
  if v > d.d_max then d.d_max <- v

let summary_of_dist d = { count = d.d_count; sum = d.d_sum; min = d.d_min; max = d.d_max }

let summary t name =
  match Hashtbl.find_opt t.dists name with
  | Some d -> summary_of_dist d
  | None -> { count = 0; sum = 0.; min = infinity; max = neg_infinity }

let mean t name =
  let s = summary t name in
  if s.count = 0 then nan else s.sum /. float_of_int s.count

(* The folds below feed a name sort, so the unspecified hashtable order
   never reaches callers — reports stay byte-stable across runs. *)
let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters [] (* lint: allow hashtbl-order *)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let distributions t =
  Hashtbl.fold (fun name d acc -> (name, summary_of_dist d) :: acc) t.dists [] (* lint: allow hashtbl-order *)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_into ~dst src =
  (* Merging is commutative (sum/min/max), so iteration order is inert. *)
  Hashtbl.iter (fun name r -> add dst name !r) src.counters (* lint: allow hashtbl-order *);
  Hashtbl.iter (* lint: allow hashtbl-order *)
    (fun name d ->
      let target = dist_ref dst name in
      target.d_count <- target.d_count + d.d_count;
      target.d_sum <- target.d_sum +. d.d_sum;
      if d.d_min < target.d_min then target.d_min <- d.d_min;
      if d.d_max > target.d_max then target.d_max <- d.d_max)
    src.dists

let pp ppf t =
  let pp_counter ppf (name, v) = Format.fprintf ppf "%s = %d" name v in
  let pp_dist ppf (name, s) =
    Format.fprintf ppf "%s: n=%d sum=%g min=%g max=%g" name s.count s.sum s.min s.max
  in
  Format.fprintf ppf "@[<v>%a@,%a@]"
    (Format.pp_print_list pp_counter)
    (counters t)
    (Format.pp_print_list pp_dist)
    (distributions t)
