type summary = { count : int; sum : float; min : float; max : float }

(* Accumulator cells stored in the registry tables.  Handles (below) bind
   to these cells so hot paths touch a bare ref/record, not the table. *)
type dist_cell = {
  mutable d_count : int;
  mutable d_sum : float;
  mutable d_min : float;
  mutable d_max : float;
}

type t = { counters : (string, int ref) Hashtbl.t; dists : (string, dist_cell) Hashtbl.t }

let create () = { counters = Hashtbl.create 64; dists = Hashtbl.create 16 }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let incr t name = Stdlib.incr (counter_ref t name)

let add t name n =
  let r = counter_ref t name in
  r := !r + n

let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let dist_cell t name =
  match Hashtbl.find_opt t.dists name with
  | Some d -> d
  | None ->
    let d = { d_count = 0; d_sum = 0.; d_min = infinity; d_max = neg_infinity } in
    Hashtbl.add t.dists name d;
    d

let observe_cell d v =
  d.d_count <- d.d_count + 1;
  d.d_sum <- d.d_sum +. v;
  if v < d.d_min then d.d_min <- v;
  if v > d.d_max then d.d_max <- v

let observe t name v = observe_cell (dist_cell t name) v

(* --- Interned handles ---------------------------------------------- *)

(* A handle memoizes the registry cell for one name so that steady-state
   updates are a single branch plus a ref update — no hashing, no string
   traversal.  Binding to the registry is lazy: creating a handle does
   NOT create the counter.  A name only appears in listings/merges/
   digests once it is first written, through either API, exactly as the
   string API behaves — so pre-resolving handles at subsystem
   construction time cannot perturb reports or determinism digests. *)

type counter = { c_stats : t; c_name : string; mutable c_cell : int ref option }

let counter t name = { c_stats = t; c_name = name; c_cell = Hashtbl.find_opt t.counters name }

module Counter = struct
  let name c = c.c_name

  let cell c =
    match c.c_cell with
    | Some r -> r
    | None ->
      (* Bind to the registry's cell (adopting one the string API may
         have created since the handle was made). *)
      let r = counter_ref c.c_stats c.c_name in
      c.c_cell <- Some r;
      r

  let add c n =
    let r = cell c in
    r := !r + n

  let incr c =
    let r = cell c in
    r := !r + 1

  let get c = match c.c_cell with Some r -> !r | None -> get c.c_stats c.c_name
end

type dist = { o_stats : t; o_name : string; mutable o_cell : dist_cell option }

let dist t name = { o_stats = t; o_name = name; o_cell = Hashtbl.find_opt t.dists name }

module Dist = struct
  let name d = d.o_name

  let cell d =
    match d.o_cell with
    | Some c -> c
    | None ->
      let c = dist_cell d.o_stats d.o_name in
      d.o_cell <- Some c;
      c

  let observe d v = observe_cell (cell d) v
end

(* --- Read-out ------------------------------------------------------ *)

let summary_of_cell d = { count = d.d_count; sum = d.d_sum; min = d.d_min; max = d.d_max }

let summary t name =
  match Hashtbl.find_opt t.dists name with
  | Some d -> summary_of_cell d
  | None -> { count = 0; sum = 0.; min = infinity; max = neg_infinity }

let mean t name =
  let s = summary t name in
  if s.count = 0 then nan else s.sum /. float_of_int s.count

(* The folds below feed a name sort, so the unspecified hashtable order
   never reaches callers — reports stay byte-stable across runs. *)
let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters [] (* lint: allow hashtbl-order *)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let distributions t =
  Hashtbl.fold (fun name d acc -> (name, summary_of_cell d) :: acc) t.dists [] (* lint: allow hashtbl-order *)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_into ~dst src =
  (* Merging is commutative (sum/min/max), so iteration order is inert. *)
  Hashtbl.iter (fun name r -> add dst name !r) src.counters (* lint: allow hashtbl-order *);
  Hashtbl.iter (* lint: allow hashtbl-order *)
    (fun name d ->
      let target = dist_cell dst name in
      target.d_count <- target.d_count + d.d_count;
      target.d_sum <- target.d_sum +. d.d_sum;
      if d.d_min < target.d_min then target.d_min <- d.d_min;
      if d.d_max > target.d_max then target.d_max <- d.d_max)
    src.dists

let pp ppf t =
  let pp_counter ppf (name, v) = Format.fprintf ppf "%s = %d" name v in
  let pp_dist ppf (name, s) =
    Format.fprintf ppf "%s: n=%d sum=%g min=%g max=%g" name s.count s.sum s.min s.max
  in
  Format.fprintf ppf "@[<v>%a@,%a@]"
    (Format.pp_print_list pp_counter)
    (counters t)
    (Format.pp_print_list pp_dist)
    (distributions t)
