(** Measurement counters for a simulation run.

    A [Stats.t] is a registry of named counters and value distributions.
    Experiments create one registry per run; subsystems record into it and
    the harness reads it out at the end.  Counters are plain integers
    (message counts, words sent, cache hits); distributions additionally
    track min/max/mean for quantities like queue residence times. *)

type t
(** A registry of counters and distributions. *)

val create : unit -> t
(** [create ()] is an empty registry. *)

(** {1 Counters} *)

val incr : t -> string -> unit
(** [incr t name] adds 1 to counter [name], creating it at 0 if absent. *)

val add : t -> string -> int -> unit
(** [add t name n] adds [n] to counter [name], creating it if absent. *)

val get : t -> string -> int
(** [get t name] is the current value of counter [name], or 0 if it was
    never written. *)

(** {1 Interned handles}

    The string-keyed operations above hash the name on every call.  Hot
    paths (one update per simulated message or memory access) instead
    resolve a handle once and update through it: steady-state
    {!Counter.incr}/{!Counter.add}/{!Dist.observe} are a branch and a
    ref/record update — no hashing, no allocation.

    Handles bind to the registry lazily: {!counter}/{!dist} do not
    create the underlying counter, so a name first appears in
    {!counters}/{!distributions}/{!merge_into} only once it is written —
    exactly the observable behavior of the string API.  Both APIs may be
    mixed freely on the same name; they converge on the same cell. *)

type counter
(** An interned handle to one named counter of one registry. *)

val counter : t -> string -> counter
(** [counter t name] is a handle to counter [name] of [t].  O(1) updates
    thereafter; does not create the counter until first written. *)

module Counter : sig
  val incr : counter -> unit
  (** [incr c] adds 1 — equivalent to {!val-incr} on the same name. *)

  val add : counter -> int -> unit
  (** [add c n] adds [n] — equivalent to {!val-add} on the same name. *)

  val get : counter -> int
  (** [get c] is the current value (0 if never written). *)

  val name : counter -> string
  (** The name the handle was interned under. *)
end

type dist
(** An interned handle to one named distribution of one registry. *)

val dist : t -> string -> dist
(** [dist t name] is a handle to distribution [name] of [t]; lazy like
    {!counter}. *)

module Dist : sig
  val observe : dist -> float -> unit
  (** [observe d v] records one sample — equivalent to {!val-observe}. *)

  val name : dist -> string
  (** The name the handle was interned under. *)
end

(** {1 Distributions} *)

val observe : t -> string -> float -> unit
(** [observe t name v] records one sample [v] into distribution [name]. *)

type summary = {
  count : int;
  sum : float;
  min : float;  (** [infinity] when [count = 0] *)
  max : float;  (** [neg_infinity] when [count = 0] *)
}
(** Summary of a distribution's samples. *)

val summary : t -> string -> summary
(** [summary t name] is the current summary of distribution [name]; an
    all-zero summary if it was never written. *)

val mean : t -> string -> float
(** [mean t name] is [sum /. count] for distribution [name], or [nan] when
    no sample was recorded. *)

(** {1 Inspection} *)

val counters : t -> (string * int) list
(** [counters t] is every counter with its value, sorted by name. *)

val distributions : t -> (string * summary) list
(** [distributions t] is every distribution with its summary, sorted by
    name. *)

val merge_into : dst:t -> t -> unit
(** [merge_into ~dst src] adds every counter and distribution of [src] into
    [dst]. *)

val pp : Format.formatter -> t -> unit
(** [pp ppf t] prints a human-readable dump of the registry. *)
