open Cm_engine
open Cm_machine

type spec = {
  requesters : int;
  first_proc : int;
  think : int;
  warmup : int;
  horizon : int;
}

let run machine spec request =
  if spec.requesters <= 0 then invalid_arg "Driver.run: no requesters";
  if spec.warmup >= spec.horizon then invalid_arg "Driver.run: warmup past horizon";
  let ops = ref 0 in
  let latency_sum = ref 0 in
  let latency_max = ref 0 in
  let words_at_warmup = ref 0 in
  let messages_at_warmup = ref 0 in
  let hits_at_warmup = ref 0 in
  let misses_at_warmup = ref 0 in
  let net = machine.Machine.net in
  let stats = machine.Machine.stats in
  Machine.at_global machine spec.warmup (fun () ->
      words_at_warmup := Network.total_words net;
      messages_at_warmup := Network.total_messages net;
      hits_at_warmup := Stats.get stats "cache.hits";
      misses_at_warmup := Stats.get stats "cache.misses");
  (* "Now" for a running thread is its current processor's clock: the
     same value [Machine.now] reads sequentially, and the only correct
     one on a sharded machine (the thread may have migrated into a
     shard whose window is ahead of the global clock). *)
  let tnow c = Sim.now (Processor.sim (Thread.Frame.proc c)) in
  for i = 0 to spec.requesters - 1 do
    let req = request i in
    let started = ref 0 in
    (* The iteration body in direct style: a [let*] chain here would
       re-build its partial applications and continuation closures every
       iteration (measurably — tens of words per request).  [while_]
       applies the body to the same (ctx, k) pair each time around, so
       the post-request continuation is built on the first iteration and
       reused for the rest of the thread's life.  No suspension is added
       or removed relative to the bind chain: event order, and hence
       every digest, is unchanged. *)
    let after_req : (unit -> unit) option ref = ref None in
    Machine.spawn machine ~on:(spec.first_proc + i)
      (Thread.while_ctx
         (fun c -> tnow c < spec.horizon)
         (fun c k ->
           let after =
             match !after_req with
             | Some f -> f
             | None ->
               let f () =
                 if tnow c >= spec.warmup then begin
                   incr ops;
                   let latency = tnow c - !started in
                   latency_sum := !latency_sum + latency;
                   if latency > !latency_max then latency_max := latency
                 end;
                 if spec.think > 0 then Thread.sleep spec.think c k else k ()
               in
               after_req := Some f;
               f
           in
           started := tnow c;
           req c after))
  done;
  Machine.run ~until:spec.horizon machine;
  let hits = Stats.get stats "cache.hits" - !hits_at_warmup in
  let misses = Stats.get stats "cache.misses" - !misses_at_warmup in
  let accesses = hits + misses in
  Metrics.compute ~ops:!ops
    ~measured_cycles:(spec.horizon - spec.warmup)
    ~words:(Network.total_words net - !words_at_warmup)
    ~messages:(Network.total_messages net - !messages_at_warmup)
    ~cache_hit_rate:
      (if accesses = 0 then nan else float_of_int hits /. float_of_int accesses)
    ~mean_latency:(if !ops = 0 then nan else float_of_int !latency_sum /. float_of_int !ops)
    ~max_latency:!latency_max ()
(* A machine without a cache-coherent memory system reports [nan]: the
   cache counters live in the machine's shared statistics registry. *)
