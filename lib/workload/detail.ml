(* lint: allow-file printf — report/presentation layer: printing tables to stdout
   is this module's purpose. *)
open Cm_engine
open Cm_machine

type t = {
  now : int;
  utilizations : (int * float) list;
  traffic : (string * int * int) list;
  total_messages : int;
  total_words : int;
  cache_hits : int;
  cache_misses : int;
  counters : (string * int) list;
  transport : (string * int) list;
}

let traffic_prefix = "net.words."

let collect machine =
  let now = Machine.now machine in
  let utilizations =
    List.init (Machine.n_procs machine) (fun p ->
        (p, Processor.utilization (Machine.proc machine p) ~now))
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  in
  let stats = machine.Machine.stats in
  let counters = Stats.counters stats in
  let traffic =
    List.filter_map
      (fun (name, words) ->
        if String.length name > String.length traffic_prefix
           && String.sub name 0 (String.length traffic_prefix) = traffic_prefix
        then begin
          let kind =
            String.sub name (String.length traffic_prefix)
              (String.length name - String.length traffic_prefix)
          in
          Some (kind, Stats.get stats ("net.messages." ^ kind), words)
        end
        else None)
      counters
    |> List.sort (fun (_, _, a) (_, _, b) -> Int.compare b a)
  in
  let interesting (name, _) =
    let has_prefix p =
      String.length name >= String.length p && String.sub name 0 (String.length p) = p
    in
    (has_prefix "rt." || has_prefix "coh." || has_prefix "btree." || has_prefix "repl.")
  in
  {
    now;
    utilizations;
    traffic;
    total_messages = Network.total_messages machine.Machine.net;
    total_words = Network.total_words machine.Machine.net;
    cache_hits = Stats.get stats "cache.hits";
    cache_misses = Stats.get stats "cache.misses";
    counters = List.filter interesting counters;
    (* Delivery accounting lives in the transport's own registry (it is
       deliberately kept out of the machine stats and the run digests). *)
    transport = Stats.counters (Transport.stats (Machine.transport machine));
  }

let pp ppf t =
  Format.fprintf ppf "machine report at cycle %d@\n" t.now;
  Format.fprintf ppf "  hottest processors:@\n";
  List.iteri
    (fun i (p, u) ->
      if i < 6 then Format.fprintf ppf "    proc %-3d %5.1f%% busy@\n" p (100. *. u))
    t.utilizations;
  Format.fprintf ppf "  network: %d messages, %d words@\n" t.total_messages t.total_words;
  List.iter
    (fun (kind, msgs, words) ->
      Format.fprintf ppf "    %-16s %8d msgs %10d words@\n" kind msgs words)
    t.traffic;
  if t.cache_hits + t.cache_misses > 0 then
    Format.fprintf ppf "  caches: %d hits, %d misses (%.1f%% hit rate)@\n" t.cache_hits
      t.cache_misses
      (100. *. float_of_int t.cache_hits /. float_of_int (t.cache_hits + t.cache_misses));
  if t.counters <> [] then begin
    Format.fprintf ppf "  subsystem counters:@\n";
    List.iter (fun (name, v) -> Format.fprintf ppf "    %-28s %d@\n" name v) t.counters
  end;
  if t.transport <> [] then begin
    Format.fprintf ppf "  transport delivery:@\n";
    List.iter (fun (name, v) -> Format.fprintf ppf "    %-28s %d@\n" name v) t.transport
  end

let print machine = Format.printf "%a@." pp (collect machine)
