(** Post-run machine diagnostics.

    Renders what a run did to the machine: processor utilizations (with
    the hottest processors called out — bottleneck hunting), network
    traffic broken down by message kind (how much was coherence vs RPC
    vs migration vs replication), cache behaviour, and the runtime's
    mechanism counters.  Used by `repro custom --detail` and handy in
    examples and debugging. *)

open Cm_machine

type t = {
  now : int;
  utilizations : (int * float) list;  (** processor id, busy fraction; hottest first *)
  traffic : (string * int * int) list;  (** kind, messages, words; heaviest first *)
  total_messages : int;
  total_words : int;
  cache_hits : int;
  cache_misses : int;
  counters : (string * int) list;  (** remaining interesting counters *)
  transport : (string * int) list;
      (** transport delivery accounting ([xport.<kind>.*], from the
          transport's own registry — see {!Transport.stats}) *)
}

val collect : Machine.t -> t
(** Snapshot the machine's counters (typically after {!Machine.run}). *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable report. *)

val print : Machine.t -> unit
(** [print machine] = collect + print to stdout. *)
