(* Typed re-implementations of the identifier rules.

   The syntactic pass matches identifiers as written; these run over the
   Typedtree with resolved, alias-expanded canonical paths, so
   [module N = Network let f = N.send] or [module R = Random] cannot
   hide a call.  Rule names match the syntactic pass exactly — one
   suppression comment covers both — and the driver merges duplicate
   findings by (file, line, rule).

   The typed closure-compare check is also *stronger*, not just
   alias-proof: instead of guessing from variable names it asks the type
   checker whether a compared operand's type contains an arrow. *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  m = 0 || go 0

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let forbidden canon =
  if starts_with ~prefix:"Random." canon then
    Some "use of Random.* (route randomness through Cm_engine.Rng)"
  else if canon = "Sys.time" then Some "Sys.time is wall-clock dependent (use the Sim clock)"
  else if starts_with ~prefix:"Unix." canon then
    Some "use of Unix.* (real-world I/O and time break determinism)"
  else if canon = "Hashtbl.randomize" then
    Some "Hashtbl.randomize makes iteration order per-process"
  else None

let order_sensitive = function "Hashtbl.iter" | "Hashtbl.fold" -> true | _ -> false

let printing = function
  | "Printf.printf" | "Format.printf" | "print_string" | "print_endline" | "print_newline"
  | "print_int" | "print_char" | "print_float" ->
    true
  | _ -> false

let raw_send = function
  | "Cm_machine.Network.send" | "Cm_machine.Network.send_k" -> true
  | _ -> false

let raw_send_applies file = not (contains file "lib/machine")

let poly_compare_scope = [ "lib/engine"; "lib/machine"; "lib/memory"; "fixtures" ]

let poly_compare_applies file = List.exists (contains file) poly_compare_scope

let compare_op = function "=" | "<>" | "compare" -> true | _ -> false

(* Does a type structurally contain an arrow?  Expands abbreviations
   through the index; [Unknown]/type variables do not count (no
   guessing). *)
let contains_arrow idx ty =
  let seen = Hashtbl.create 8 in
  let rec go depth ty =
    depth < 10
    &&
    let id = Types.get_id ty in
    (not (Hashtbl.mem seen id))
    && begin
         Hashtbl.add seen id ();
         match Types.get_desc ty with
         | Tarrow _ -> true
         | Ttuple tys -> List.exists (go (depth + 1)) tys
         | Tpoly (t, _) -> go (depth + 1) t
         | Tconstr (p, args, _) -> (
           List.exists (go (depth + 1)) args
           ||
           match
             Hashtbl.find_opt idx.Cmt_index.type_decls
               (Cmt_index.strip_stdlib (Path.name p))
           with
           | Some { Types.type_manifest = Some t; _ } -> go (depth + 1) t
           | _ -> false)
         | _ -> false
       end
  in
  go 0 ty

(* In the Typedtree an *omitted* optional argument is materialized as a
   [None] construct, so "~random was passed" means: the argument is
   present and is neither that implicit [None] nor an explicit
   [false]/[Some false]. *)
let hashtbl_create_random (args : (Asttypes.arg_label * Typedtree.expression option) list) =
  let benign (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_construct ({ txt = Lident ("None" | "false"); _ }, _, _) -> true
    | Texp_construct
        ( { txt = Lident "Some"; _ },
          _,
          [ { exp_desc = Texp_construct ({ txt = Lident "false"; _ }, _, _); _ } ] ) ->
      true
    | _ -> false
  in
  List.exists
    (fun (label, arg) ->
      match (label, arg) with
      | (Asttypes.Labelled "random" | Asttypes.Optional "random"), Some e -> not (benign e)
      | _ -> false)
    args

let run (idx : Cmt_index.t) =
  let findings = ref [] in
  List.iter
    (fun (ui : Cmt_index.unit_info) ->
      let file = ui.ui_source in
      let add ~line ~rule msg = findings := Finding.v ~file ~line ~rule msg :: !findings in
      (* Heads of applications, so a directly-applied [compare a b]
         (specialized by the compiler) is not flagged as a
         comparison-function value. *)
      let applied_heads : (int, unit) Hashtbl.t = Hashtbl.create 256 in
      let expr sub (e : Typedtree.expression) =
        let line = Cmt_index.line_of e.exp_loc in
        (match e.exp_desc with
        | Texp_ident (p, _, _) -> (
          let canon = Cmt_index.canon_path ui p in
          (match forbidden canon with
          | Some msg -> add ~line ~rule:"determinism" msg
          | None -> ());
          if order_sensitive canon then
            add ~line ~rule:"hashtbl-order"
              (Printf.sprintf
                 "%s iterates in unspecified order; sort the result or justify with an \
                  allow comment"
                 canon);
          if raw_send canon && raw_send_applies file then
            add ~line ~rule:"raw-send"
              (Printf.sprintf
                 "%s outside lib/machine; send through Cm_machine.Transport (typed \
                  endpoints) instead"
                 canon);
          if printing canon then
            add ~line ~rule:"printf"
              (Printf.sprintf
                 "%s prints from library code; route through Cm_engine.Trace or the \
                  report layer"
                 canon);
          if
            canon = "compare"
            && poly_compare_applies file
            && not (Hashtbl.mem applied_heads e.exp_loc.loc_start.Lexing.pos_cnum)
          then
            add ~line ~rule:"poly-compare"
              "polymorphic compare used as a comparison-function value; use Int.compare \
               / String.compare or a monomorphic comparator")
        | Texp_apply (head, args) -> (
          Hashtbl.replace applied_heads head.exp_loc.loc_start.Lexing.pos_cnum ();
          match head.exp_desc with
          | Texp_ident (p, _, _) -> (
            let canon = Cmt_index.canon_path ui p in
            if canon = "Hashtbl.create" && hashtbl_create_random args then
              add ~line ~rule:"determinism"
                "Hashtbl.create ~random makes iteration order per-process";
            if compare_op canon then
              let closure_arg =
                List.exists
                  (fun ((_ : Asttypes.arg_label), (a : Typedtree.expression option)) ->
                    match a with
                    | Some a -> contains_arrow idx a.exp_type
                    | None -> false)
                  args
              in
              if closure_arg then
                add ~line ~rule:"closure-compare"
                  (Printf.sprintf
                     "structural %s on a value whose type contains a function \
                      (continuations raise under polymorphic comparison)"
                     canon))
          | _ -> ())
        | _ -> ());
        Tast_iterator.default_iterator.expr sub e
      in
      let iter = { Tast_iterator.default_iterator with expr } in
      iter.structure iter ui.ui_structure)
    idx.units;
  !findings
