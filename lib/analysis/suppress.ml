(* Source-comment suppressions, shared by every pass.

   A finding is allowed when its line (or the line above) carries
   "(* lint: allow <rule> [justification] *)", or the file carries
   "(* lint: allow-file <rule> [justification] *)" anywhere.

   Two hardenings over the old purely-syntactic lint:

   - a suppression naming a rule the analyzer does not know is itself a
     finding ([bad-suppress]) instead of silently doing nothing — a typo
     in a rule name used to turn the escape hatch into a no-op that
     looked intentional;
   - rules in [justified] (the shard-safety and hot-path-allocation
     passes) demand a written justification after the rule name; an
     allow comment for them with no justification text does not suppress
     and is reported as [bad-suppress]. *)

let rules =
  [
    "determinism";
    "hashtbl-order";
    "closure-compare";
    "printf";
    "poly-compare";
    "raw-send";
    "global-state";
    "domain-safety";
    "hot-alloc";
    "bad-suppress";
  ]

let justified = [ "domain-safety"; "hot-alloc" ]

type entry = {
  s_line : int;
  s_rule : string;
  s_file_wide : bool;
  s_just : string;  (* justification text after the rule name, trimmed *)
}

type t = { path : string; lines : string array; entries : entry list }

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> Array.of_list (List.rev acc)
      in
      go [])

let find_sub hay needle ~from =
  let n = String.length hay and m = String.length needle in
  let rec go i = if i + m > n then None else if String.sub hay i m = needle then Some i else go (i + 1) in
  go from

let is_rule_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

(* Parse "<rule> [justification]" starting at [i]; the justification runs
   to the comment close (or end of line). *)
let parse_at line i ~file_wide ~lnum =
  let n = String.length line in
  let i = ref i in
  while !i < n && line.[!i] = ' ' do incr i done;
  let start = !i in
  while !i < n && is_rule_char line.[!i] do incr i done;
  if !i = start then None
  else begin
    let rule = String.sub line start (!i - start) in
    let rest = String.sub line !i (n - !i) in
    let rest = match find_sub rest "*)" ~from:0 with
      | Some j -> String.sub rest 0 j
      | None -> rest
    in
    let just = String.trim rest in
    Some { s_line = lnum; s_rule = rule; s_file_wide = file_wide; s_just = just }
  end

let scan_line lnum line acc =
  let rec go from acc =
    match find_sub line "lint: allow" ~from with
    | None -> acc
    | Some i ->
      let after = i + String.length "lint: allow" in
      let file_wide, after =
        let tag = "-file " in
        if after + String.length tag <= String.length line
           && String.sub line after (String.length tag) = tag
        then (true, after + String.length tag)
        else (false, after)
      in
      let acc =
        match parse_at line after ~file_wide ~lnum with
        | Some e -> e :: acc
        | None -> acc
      in
      go (after + 1) acc
  in
  go 0 acc

(* [load ~source_root path] parses the suppressions of the source file
   reported as [path] by a pass.  Typed passes report compiler paths
   (relative to the build root); when they do not resolve from the
   current directory, [source_root] is tried as a prefix. *)
let load ~source_root path =
  let resolved =
    if Sys.file_exists path then path
    else
      let alt = Filename.concat source_root path in
      if Sys.file_exists alt then alt else path
  in
  let lines = try read_lines resolved with Sys_error _ -> [||] in
  let entries = ref [] in
  Array.iteri (fun i line -> entries := scan_line (i + 1) line !entries) lines;
  { path; lines; entries = List.rev !entries }

let has_justification e = String.exists (fun c -> is_rule_char c || (c >= 'A' && c <= 'Z')) e.s_just

let entry_valid e =
  List.mem e.s_rule rules && (has_justification e || not (List.mem e.s_rule justified))

let suppressed t ~line ~rule =
  List.exists
    (fun e ->
      e.s_rule = rule && entry_valid e
      && (e.s_file_wide || e.s_line = line || e.s_line = line - 1))
    t.entries

(* Misuses of the suppression syntax, as findings. *)
let audit t =
  List.filter_map
    (fun e ->
      if not (List.mem e.s_rule rules) then
        Some
          (Finding.v ~file:t.path ~line:e.s_line ~rule:"bad-suppress"
             ~context:e.s_rule ~detail:"unknown-rule"
             (Printf.sprintf
                "suppression names unknown rule %S (known: %s); it has no effect"
                e.s_rule (String.concat ", " rules)))
      else if List.mem e.s_rule justified && not (has_justification e) then
        Some
          (Finding.v ~file:t.path ~line:e.s_line ~rule:"bad-suppress"
             ~context:e.s_rule ~detail:"missing-justification"
             (Printf.sprintf
                "suppressing %S requires a written justification after the rule name"
                e.s_rule))
      else None)
    t.entries
