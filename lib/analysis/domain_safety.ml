(* Domain-safety (shard-escape) pass.

   ROADMAP item 1 shards one machine's processors across domains; that
   is only sound if every mutable location in the libraries is owned by
   exactly one shard, domain-local (DLS), atomic, or explicitly
   synchronized.  This pass classifies every mutable location it can see
   in the .cmt files and flags the ones that escape:

   1. *Module-init-time mutable state.*  A toplevel binding whose
      right-hand side allocates mutable state when the module is
      initialised ([ref _], [Hashtbl.create], [Array.make], array
      literals, records with mutable fields, [lazy] blocks, ...) is one
      location shared by every domain that touches the unit.  The walk
      does not descend into function bodies — [let f () = ref 0] is
      per-call state — but does see through [let]:
      [let t = Hashtbl.create 8 in fun () -> ...] allocates the table
      once and captures it.  Ownership classes:
        - [Atomic.make]          -> atomic        (safe; vetting is the
                                                   global-state rule's job)
        - [Domain.DLS.new_key]   -> dls           (safe)
        - [Mutex.create] etc.    -> sync          (safe: a lock is *for*
                                                   sharing)
        - record carrying its own Mutex.t/Atomic.t
                                 -> mutex-guarded (safe by convention)
        - everything else        -> escaping      (finding)

   2. *Cross-module escape.*  A binding in unit A that (transitively)
      reaches an unvetted escaping root in unit B re-exposes that state
      to every caller — the classic "hashtable behind a getter".  The
      reachability walk runs over the whole-library reference graph and
      the finding carries the call-chain witness.

   3. *Mutable payloads through the transport.*  A value whose type
      contains unsynchronized mutable components ([Transport.post]/
      [dispatch] payload) crosses a shard boundary by construction: the
      sender keeps a reference and the receiving shard gets another.

   Escapes: a binding carrying [@cm.shard_safe "why"] is vetted (an
   empty justification is itself a finding), as is one suppressed with
   "(* lint: allow domain-safety — why *)" (the driver's [vetted]
   predicate folds comment suppressions in). *)

let rule = "domain-safety"

type cls = Shared of string | Atomic | Dls | Sync | Guarded of string

let creation_ctor canon =
  match canon with
  | "ref" -> Some (Shared "ref")
  | "Hashtbl.create" | "Queue.create" | "Stack.create" | "Buffer.create" | "Bytes.create"
  | "Bytes.make" | "Array.make" | "Array.init" | "Array.create_float" | "Array.copy"
  | "Array.of_list" | "Array.append" | "Weak.create" | "Dynarray.create" ->
    Some (Shared canon)
  | "Atomic.make" -> Some Atomic
  | "Domain.DLS.new_key" -> Some Dls
  | "Mutex.create" | "Semaphore.Counting.make" | "Semaphore.Binary.make" | "Condition.create"
    ->
    Some Sync
  | _ -> None

let head_canon idx ui (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, vd) -> Cmt_index.resolve idx ui p vd |> Option.value ~default:(Cmt_index.canon_path ui p) |> Option.some
  | _ -> None

(* Does this type name a synchronization primitive? (for the
   mutex-guarded record heuristic) *)
let is_sync_type ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> (
    match Cmt_index.strip_stdlib (Path.name p) with
    | "Mutex.t" | "Atomic.t" | "Semaphore.Counting.t" | "Semaphore.Binary.t" | "Condition.t"
      ->
      true
    | _ -> false)
  | _ -> false

(* Classify one expression node as a mutable-state creation, or not. *)
let creation idx ui (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (head, _) -> (
    match head_canon idx ui head with
    | Some c -> creation_ctor c
    | None -> None)
  | Texp_array (_ :: _) -> Some (Shared "array literal")
  | Texp_lazy _ -> Some (Shared "lazy (forcing races across domains)")
  | Texp_record { fields; _ } ->
    let mutable_field = ref None and guarded = ref false in
    Array.iter
      (fun ((ld : Types.label_description), _) ->
        (match ld.lbl_mut with
        | Mutable -> if !mutable_field = None then mutable_field := Some ld.lbl_name
        | Immutable -> ());
        if is_sync_type ld.lbl_arg then guarded := true)
      fields;
    (match !mutable_field with
    | Some f when !guarded -> Some (Guarded f)
    | Some f -> Some (Shared (Printf.sprintf "record with mutable field '%s'" f))
    | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* [@cm.shard_safe "..."] vetting attribute                           *)
(* ------------------------------------------------------------------ *)

let shard_safe_attr (vb : Typedtree.value_binding) =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> "cm.shard_safe" then None
      else
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _;
              };
            ] ->
          Some (String.trim s)
        | _ -> Some "")
    vb.vb_attributes

(* ------------------------------------------------------------------ *)
(* The pass                                                           *)
(* ------------------------------------------------------------------ *)

type result = {
  findings : Finding.t list;
  (* every classified module-init-time mutable location, for lint.json
     consumers and the tests: (canonical binding, class string) *)
  classified : (string * string) list;
}

let class_name = function
  | Shared _ -> "escaping"
  | Atomic -> "atomic"
  | Dls -> "dls"
  | Sync -> "sync"
  | Guarded _ -> "mutex-guarded"

(* Collect the module-init-time creations of one toplevel binding: walk
   the RHS without entering function bodies. *)
let init_creations idx ui (vb : Typedtree.value_binding) =
  let acc = ref [] in
  let expr sub (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_function _ -> ()  (* deferred to call time: per-call state *)
    | _ ->
      (match creation idx ui e with
      | Some cls -> acc := (e.exp_loc, cls) :: !acc
      | None -> ());
      Tast_iterator.default_iterator.expr sub e
  in
  let iter = { Tast_iterator.default_iterator with expr } in
  iter.expr iter vb.vb_expr;
  List.rev !acc

(* [run idx ~vetted] analyzes every indexed unit.  [vetted ~file ~line]
   tells the pass a location is justified by a source comment (the
   driver wires this to [Suppress]), so vetted roots neither produce
   findings nor taint the escape graph. *)
let run (idx : Cmt_index.t) ~vetted =
  let findings = ref [] and classified = ref [] in
  let add f = findings := f :: !findings in
  (* escaping, unvetted roots: canonical -> (unit, loc, ctor) *)
  let roots : (string, Cmt_index.unit_info * Location.t * string) Hashtbl.t =
    Hashtbl.create 32
  in
  (* Pass 1: module-init-time state, attribute handling, root set. *)
  List.iter
    (fun (ui : Cmt_index.unit_info) ->
      List.iter
        (fun (b : Cmt_index.binding) ->
          let attr = shard_safe_attr b.b_vb in
          (match attr with
          | Some "" ->
            add
              (Finding.v ~file:ui.ui_source ~line:(Cmt_index.line_of b.b_loc)
                 ~rule:"bad-suppress" ~context:b.b_canon ~detail:"missing-justification"
                 (Printf.sprintf
                    "[@cm.shard_safe] on %s needs a justification string, e.g. \
                     [@cm.shard_safe \"owned by the sweep driver\"]"
                    b.b_canon))
          | _ -> ());
          let vet = match attr with Some j when j <> "" -> true | _ -> false in
          List.iter
            (fun ((loc : Location.t), cls) ->
              let line = Cmt_index.line_of loc in
              classified := (b.b_canon, class_name cls) :: !classified;
              match cls with
              | Atomic | Dls | Sync | Guarded _ -> ()
              | Shared ctor ->
                if vet || vetted ~file:ui.ui_source ~line then ()
                else begin
                  Hashtbl.replace roots b.b_canon (ui, loc, ctor);
                  add
                    (Finding.v ~file:ui.ui_source ~line ~rule ~context:b.b_canon
                       ~detail:"escaping" ~witness:[ b.b_canon ]
                       (Printf.sprintf
                          "module-init-time %s in %s is one location shared by every \
                           domain; own it per machine/runtime instance, use Domain.DLS, \
                           or vet it with [@cm.shard_safe \"why\"] / (* lint: allow \
                           domain-safety — why *)"
                          ctor b.b_canon))
                end)
            (init_creations idx ui b.b_vb))
        (List.rev ui.ui_bindings))
    idx.units;
  (* Pass 2: cross-module escape — BFS over the reference graph from
     each binding; a path into an escaping root of another unit is a
     finding, witness = the chain. *)
  let edges : (string, string list) Hashtbl.t = Hashtbl.create 256 in
  let unit_of : (string, Cmt_index.unit_info) Hashtbl.t = Hashtbl.create 256 in
  let loc_of : (string, Location.t) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (ui : Cmt_index.unit_info) ->
      List.iter
        (fun (b : Cmt_index.binding) ->
          Hashtbl.replace edges b.b_canon (Cmt_index.refs_of_expr idx ui b.b_vb.vb_expr);
          Hashtbl.replace unit_of b.b_canon ui;
          Hashtbl.replace loc_of b.b_canon b.b_loc)
        ui.ui_bindings)
    idx.units;
  let bfs_from src (src_ui : Cmt_index.unit_info) =
      (* BFS with parent links for the witness chain *)
      let parent : (string, string) Hashtbl.t = Hashtbl.create 16 in
      let q = Queue.create () in
      Queue.add src q;
      Hashtbl.replace parent src "";
      let rec chain node = if node = src then [ src ] else chain (Hashtbl.find parent node) @ [ node ] in
      while not (Queue.is_empty q) do
        let n = Queue.pop q in
        List.iter
          (fun next ->
            if not (Hashtbl.mem parent next) then begin
              Hashtbl.replace parent next n;
              (match Hashtbl.find_opt roots next with
              | Some (root_ui, _, ctor)
                when root_ui.ui_canon <> src_ui.ui_canon ->
                (* Only an *escape* counts: the chain must enter the
                   root's unit at the root itself.  Reaching the state
                   through the owning module's own functions (its API
                   encapsulating its state) is normal. *)
                let wit = chain next in
                let intermediates = List.filter (fun n -> n <> src && n <> next) wit in
                let through_owner =
                  List.exists
                    (fun n ->
                      match Hashtbl.find_opt unit_of n with
                      | Some (ui : Cmt_index.unit_info) -> ui.ui_canon = root_ui.ui_canon
                      | None -> false)
                    intermediates
                in
                let line = Cmt_index.line_of (Hashtbl.find loc_of src) in
                if (not through_owner) && not (vetted ~file:src_ui.ui_source ~line) then
                  add
                    (Finding.v ~file:src_ui.ui_source ~line ~rule ~context:src
                       ~detail:"escaping-getter" ~witness:wit
                       (Printf.sprintf
                          "%s reaches shared mutable state %s (%s) in another module \
                           (chain: %s); the state escapes its owning unit"
                          src next ctor (String.concat " -> " wit)))
              | _ -> ());
              Queue.add next q
            end)
          (Option.value ~default:[] (Hashtbl.find_opt edges n))
      done
  in
  List.iter
    (fun (ui : Cmt_index.unit_info) ->
      List.iter (fun (b : Cmt_index.binding) -> bfs_from b.b_canon ui) ui.ui_bindings)
    idx.units;
  (* Pass 3: mutable payloads through the transport. *)
  let send_heads = [ "Cm_machine.Transport.post"; "Cm_machine.Transport.dispatch" ] in
  List.iter
    (fun (ui : Cmt_index.unit_info) ->
      List.iter
        (fun (b : Cmt_index.binding) ->
          let expr sub (e : Typedtree.expression) =
            (match e.exp_desc with
            | Texp_apply (head, args) -> (
              match head_canon idx ui head with
              | Some h when List.mem h send_heads -> (
                let payload =
                  List.filter_map
                    (fun (lbl, (a : Typedtree.expression option)) ->
                      match (lbl, a) with Asttypes.Nolabel, Some a -> Some a | _ -> None)
                    args
                  |> List.rev
                  |> function [] -> None | last :: _ -> Some last
                in
                match payload with
                | Some p -> (
                  match Cmt_index.mutability ~self:ui idx p.exp_type with
                  | Cmt_index.Mutable what ->
                    let line = Cmt_index.line_of e.exp_loc in
                    if not (vetted ~file:ui.ui_source ~line) then
                      add
                        (Finding.v ~file:ui.ui_source ~line ~rule ~context:b.b_canon
                           ~detail:"escaping-payload" ~witness:[ b.b_canon; h ]
                           (Printf.sprintf
                              "payload of %s contains unsynchronized mutable state (%s): \
                               sender and receiving shard both hold a reference"
                              h what))
                  | _ -> ())
                | None -> ())
              | _ -> ())
            | _ -> ());
            Tast_iterator.default_iterator.expr sub e
          in
          let iter = { Tast_iterator.default_iterator with expr } in
          iter.expr iter b.b_vb.vb_expr)
        ui.ui_bindings)
    idx.units;
  { findings = !findings; classified = List.rev !classified }
