(* Checked-in finding baseline: CI enforces "no new findings" while
   pre-existing debt is burned down explicitly.

   Format: one entry per line, "<rule>|<file>|<context>|<class> xN"
   (the " xN" multiplicity suffix defaults to 1; '#' starts a comment).
   Keys deliberately exclude line numbers — a baseline survives edits
   that merely renumber lines, but not moving debt to a new function or
   adding an allocation site to an already-listed one (the count
   grows). *)

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.rindex_opt line 'x' with
    | Some i
      when i >= 2
           && line.[i - 1] = ' '
           && (let tail = String.sub line (i + 1) (String.length line - i - 1) in
               tail <> "" && String.for_all (fun c -> c >= '0' && c <= '9') tail) ->
      let n = int_of_string (String.sub line (i + 1) (String.length line - i - 1)) in
      Some (String.trim (String.sub line 0 (i - 1)), n)
    | _ -> Some (line, 1)

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (match parse_line line with Some e -> e :: acc | None -> acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  end

let counts_of_findings findings =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let k = Finding.baseline_key f in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    findings;
  tbl

type verdict = {
  fresh : Finding.t list;  (* findings beyond the baselined count — CI fails on these *)
  stale : (string * int * int) list;  (* baselined keys with fewer/no current findings *)
}

(* [check ~baseline findings]: for each key, the first [allowed]
   findings (in stable sorted order) are absorbed by the baseline; the
   rest are fresh.  Keys whose current count dropped below the baseline
   are reported stale so the debt file can be trimmed. *)
let check ~baseline findings =
  let allowed = Hashtbl.create 64 in
  List.iter
    (fun (k, n) ->
      Hashtbl.replace allowed k (n + Option.value ~default:0 (Hashtbl.find_opt allowed k)))
    baseline;
  let remaining = Hashtbl.copy allowed in
  let fresh =
    List.filter
      (fun f ->
        let k = Finding.baseline_key f in
        match Hashtbl.find_opt remaining k with
        | Some n when n > 0 ->
          Hashtbl.replace remaining k (n - 1);
          false
        | _ -> true)
      (Finding.sort findings)
  in
  let current = counts_of_findings findings in
  let stale =
    Hashtbl.fold (* lint: allow hashtbl-order *)
      (fun k n acc ->
        let have = Option.value ~default:0 (Hashtbl.find_opt current k) in
        if have < n then (k, n, have) :: acc else acc)
      allowed []
    |> List.sort compare (* lint: allow poly-compare *)
  in
  { fresh; stale }

(* Render the current findings as baseline lines (sorted, with
   multiplicities) — what `cm-lint --write-baseline` emits. *)
let render findings =
  let tbl = counts_of_findings findings in
  let keys =
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [] (* lint: allow hashtbl-order *)
    |> List.sort compare (* lint: allow poly-compare *)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "# cm-lint baseline: pre-existing findings tolerated by CI (rule|file|context|class \
     xN).\n# Regenerate with: dune exec bin/lint.exe -- --write-baseline lint.baseline \
     <roots>\n";
  List.iter
    (fun (k, n) ->
      Buffer.add_string buf (if n = 1 then k else Printf.sprintf "%s x%d" k n);
      Buffer.add_char buf '\n')
    keys;
  Buffer.contents buf
