(* Orchestrates the passes: syntactic tripwire over sources, typed
   passes over .cmt files, suppression filtering, dedup, stable sort.
   Used by bin/lint.ml and exercised directly by test/test_analysis.ml. *)

type config = {
  roots : string list;  (* directories: sources and .cmt files are found beneath *)
  source_root : string;  (* prefix tried when a compiler path does not resolve *)
  syntactic : bool;
  typed : bool;
  hot : Hot_alloc.spec list;
}

let default_config roots =
  { roots; source_root = "."; syntactic = true; typed = true; hot = Hot_alloc.default }

type outcome = {
  findings : Finding.t list;  (* unsuppressed, deduped, sorted *)
  files_scanned : int;  (* .ml files seen by the syntactic pass *)
  units_analyzed : int;  (* compilation units seen by the typed passes *)
  classified : (string * string) list;  (* domain-safety ownership classes *)
  errors : string list;  (* parse failures, unreadable cmts *)
}

(* .ml sources for the syntactic pass: skip build/hidden directories
   (the .cmt walk below is the one that descends into .objs). *)
let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if String.length entry > 0 && (entry.[0] = '_' || entry.[0] = '.') then acc
           else collect_ml acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let dedup_by_site findings =
  let seen = Hashtbl.create 256 in
  List.filter
    (fun (f : Finding.t) ->
      let k = (f.file, f.line, f.rule) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    (Finding.sort findings)

let run config =
  let errors = ref [] in
  (* --- syntactic pass --- *)
  let ml_files =
    if not config.syntactic then []
    else
      try List.fold_left collect_ml [] config.roots |> List.sort String.compare
      with Sys_error msg ->
        errors := ("lint: " ^ msg) :: !errors;
        []
  in
  let syntactic_findings =
    List.concat_map
      (fun file ->
        try Syntactic.lint_file file
        with Syntactic.Parse_error (f, msg) ->
          errors := Printf.sprintf "%s: parse-error: %s" f msg :: !errors;
          [])
      ml_files
  in
  (* --- typed passes --- *)
  let suppress_cache : (string, Suppress.t) Hashtbl.t = Hashtbl.create 64 in
  let suppressions_of file =
    match Hashtbl.find_opt suppress_cache file with
    | Some s -> s
    | None ->
      let s = Suppress.load ~source_root:config.source_root file in
      Hashtbl.add suppress_cache file s;
      s
  in
  let typed_findings, units, classified =
    if not config.typed then ([], 0, [])
    else begin
      let idx = Cmt_index.load ~roots:config.roots in
      errors := !errors @ idx.errors;
      let vetted ~file ~line =
        Suppress.suppressed (suppressions_of file) ~line ~rule:Domain_safety.rule
      in
      let ds = Domain_safety.run idx ~vetted in
      let ha = Hot_alloc.run idx ~hot:config.hot () in
      let tr = Typed_rules.run idx in
      (ds.findings @ ha @ tr, List.length idx.units, ds.classified)
    end
  in
  (* --- suppression filtering + suppression audit --- *)
  let raw = syntactic_findings @ typed_findings in
  let audited_files =
    List.sort_uniq String.compare
      (ml_files @ List.map (fun (f : Finding.t) -> f.file) raw)
  in
  let audit_findings = List.concat_map (fun f -> Suppress.audit (suppressions_of f)) audited_files in
  let surviving =
    List.filter
      (fun (f : Finding.t) ->
        not (Suppress.suppressed (suppressions_of f.file) ~line:f.line ~rule:f.rule))
      (raw @ audit_findings)
  in
  {
    findings = dedup_by_site surviving;
    files_scanned = List.length ml_files;
    units_analyzed = units;
    classified;
    errors = !errors;
  }
