(* A lint finding, shared by the syntactic (parsetree) and typed
   (.cmt/Typedtree) passes.

   [context] is the enclosing toplevel binding ("Cm_machine.Transport.post")
   or "" when the finding is not inside one; [detail] is a pass-specific
   classification (the domain-safety ownership class, the hot-alloc
   allocation kind); [witness] is a call/reachability chain of canonical
   value paths justifying the finding interprocedurally.  [context] and
   [detail] — but never [line] — feed the baseline key, so baselines
   survive unrelated edits that renumber lines. *)

type t = {
  file : string;
  line : int;
  rule : string;
  msg : string;
  context : string;
  detail : string;
  witness : string list;
}

let v ?(context = "") ?(detail = "") ?(witness = []) ~file ~line ~rule msg =
  { file; line; rule; msg; context; detail; witness }

(* Satellite: stable output order — (file, line, rule), then the full
   message so equal-keyed findings are still deterministic. *)
let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match String.compare a.rule b.rule with
      | 0 -> String.compare a.msg b.msg
      | c -> c)
    | c -> c)
  | c -> c

let sort findings = List.sort_uniq compare findings

let to_string f = Printf.sprintf "%s:%d: %s: %s" f.file f.line f.rule f.msg

(* Line-independent identity used by the baseline: a finding survives
   reformatting but not a move to another function or a change of class. *)
let baseline_key f =
  String.concat "|" [ f.rule; f.file; f.context; f.detail ]

(* ------------------------------------------------------------------ *)
(* JSON (hand-rolled: the lint links only compiler-libs)              *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  let str s = "\"" ^ json_escape s ^ "\"" in
  Printf.sprintf
    "{\"rule\":%s,\"file\":%s,\"line\":%d,\"context\":%s,\"class\":%s,\"witness\":[%s],\"msg\":%s}"
    (str f.rule) (str f.file) f.line (str f.context) (str f.detail)
    (String.concat "," (List.map str f.witness))
    (str f.msg)

let list_to_json findings =
  "[\n  " ^ String.concat ",\n  " (List.map to_json findings) ^ "\n]\n"
