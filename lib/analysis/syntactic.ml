(* The fast, syntactic (parsetree) pass: parses .ml sources with
   compiler-libs and pattern-matches identifiers as written.

   These rules run before the typed passes as a cheap tripwire — they
   need no build artifacts and catch the common spelling of each hazard.
   They are *not* alias-proof: `module N = Network let f = N.send` hides
   the ident from them.  The typed pass ([Typed_rules], over .cmt files)
   re-runs the identifier rules on resolved paths and closes that hole;
   duplicate findings are merged by (file, line, rule) in the driver.

   Rules: determinism, hashtbl-order, closure-compare, printf,
   poly-compare, raw-send, global-state — see bin/lint.ml's header for
   the rationale of each. *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  m = 0 || go 0

let strip_stdlib = function ("Stdlib" | "Pervasives") :: rest -> rest | path -> path

let ident_path e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } ->
    (try Some (strip_stdlib (Longident.flatten txt)) with Misc.Fatal_error -> None)
  | _ -> None

let forbidden_ident = function
  | "Random" :: _ -> Some "use of Random.* (route randomness through Cm_engine.Rng)"
  | [ "Sys"; "time" ] -> Some "Sys.time is wall-clock dependent (use the Sim clock)"
  | "Unix" :: _ -> Some "use of Unix.* (real-world I/O and time break determinism)"
  | [ "Hashtbl"; "randomize" ] -> Some "Hashtbl.randomize makes iteration order per-process"
  | _ -> None

let order_sensitive_ident = function
  | [ "Hashtbl"; ("iter" | "fold") ] -> true
  | _ -> false

let printing_ident = function
  | [ "Printf"; "printf" ]
  | [ "Format"; "printf" ]
  | [ ("print_string" | "print_endline" | "print_newline" | "print_int" | "print_char"
      | "print_float") ] ->
    true
  | _ -> false

(* Identifiers that conventionally hold continuations/closures in this
   codebase; structural comparison on them raises at runtime.  "k" is
   deliberately absent — it names both continuations (CPS internals) and
   integer keys (B-tree, DHT), and the latter dominate comparisons. *)
let closure_names = [ "cont"; "continuation"; "resume"; "action"; "thunk"; "callback" ]

let rec last = function [] -> "" | [ x ] -> x | _ :: tl -> last tl

let closure_suspect (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_ident { txt = Lident n; _ } -> List.mem n closure_names
  | Pexp_field (_, { txt; _ }) ->
    (try List.mem (last (Longident.flatten txt)) closure_names
     with Misc.Fatal_error -> false)
  | _ -> false

let polymorphic_compare = function [ ("=" | "<>" | "compare") ] -> true | _ -> false

let raw_send_ident = function
  | [ "Network"; ("send" | "send_k") ] | [ "Cm_machine"; "Network"; ("send" | "send_k") ] -> true
  | _ -> false

(* The transport itself (and the machine layer it lives in) is the one
   legitimate client of the raw network send. *)
let raw_send_applies file = not (contains file "lib/machine")

(* poly-compare is scoped to the simulation hot-path libraries (plus the
   negative fixture, which must exercise every rule). *)
let poly_compare_scope = [ "lib/engine"; "lib/machine"; "lib/memory"; "fixtures" ]

let poly_compare_applies file = List.exists (contains file) poly_compare_scope

let hashtbl_create_random args =
  List.exists
    (fun (label, (arg : Parsetree.expression)) ->
      match (label, arg.pexp_desc) with
      | ( (Asttypes.Labelled "random" | Asttypes.Optional "random"),
          Pexp_construct ({ txt = Lident "false"; _ }, None ) ) ->
        false
      | (Asttypes.Labelled "random" | Asttypes.Optional "random"), _ -> true
      | _ -> false)
    args

(* --- global-state: toplevel mutable state in library modules.  A
   separate walk from the expression iterator: only bindings at module
   toplevel (including nested/included module structures) are flagged —
   a `ref` inside a function body or a functor (fresh per application)
   is per-call state and fine.  The typed domain-safety pass goes
   further (captures, cross-module escape, ownership classes); this
   stays as the zero-build-dependency tripwire. *)

let rec peel_constraint (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e', _) | Pexp_coerce (e', _, _) -> peel_constraint e'
  | _ -> e

let global_state_ctor e =
  match (peel_constraint e).Parsetree.pexp_desc with
  | Pexp_apply (fn, _) -> (
    match ident_path fn with
    | Some [ "ref" ] -> Some "ref"
    | Some [ "Hashtbl"; "create" ] -> Some "Hashtbl.create"
    | Some [ "Atomic"; "make" ] -> Some "Atomic.make"
    | _ -> None)
  | _ -> None

type state = { file : string; mutable acc : Finding.t list; applied_heads : (int, unit) Hashtbl.t }

let report st ~line ~rule msg =
  st.acc <- Finding.v ~file:st.file ~line ~rule msg :: st.acc

let rec check_structure st (items : Parsetree.structure) =
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            match global_state_ctor vb.pvb_expr with
            | Some ctor ->
              let line = vb.pvb_expr.pexp_loc.Location.loc_start.Lexing.pos_lnum in
              report st ~line ~rule:"global-state"
                (Printf.sprintf
                   "toplevel %s is mutable state shared across domains and runs; move it \
                    into the machine/runtime instance or Domain.DLS, or vet it as an \
                    Atomic with an allow comment"
                   ctor)
            | None -> ())
          bindings
      | Pstr_module { pmb_expr; _ } -> check_module_expr st pmb_expr
      | Pstr_recmodule mbs ->
        List.iter
          (fun (mb : Parsetree.module_binding) -> check_module_expr st mb.pmb_expr)
          mbs
      | Pstr_include { pincl_mod; _ } -> check_module_expr st pincl_mod
      | _ -> ())
    items

and check_module_expr st (m : Parsetree.module_expr) =
  match m.pmod_desc with
  | Pmod_structure items -> check_structure st items
  | Pmod_constraint (m', _) -> check_module_expr st m'
  | _ -> ()

let check_expr st (e : Parsetree.expression) =
  let line = e.pexp_loc.Location.loc_start.Lexing.pos_lnum in
  let file = st.file in
  (match ident_path e with
  | Some path -> (
    (match forbidden_ident path with
    | Some msg -> report st ~line ~rule:"determinism" msg
    | None -> ());
    if order_sensitive_ident path then
      report st ~line ~rule:"hashtbl-order"
        (Printf.sprintf
           "%s iterates in unspecified order; sort the result or justify with an allow \
            comment"
           (String.concat "." path));
    if raw_send_ident path && raw_send_applies file then
      report st ~line ~rule:"raw-send"
        (Printf.sprintf
           "%s outside lib/machine; send through Cm_machine.Transport (typed endpoints) \
            instead"
           (String.concat "." path));
    if printing_ident path then
      report st ~line ~rule:"printf"
        (Printf.sprintf "%s prints from library code; route through Cm_engine.Trace or the \
                         report layer"
           (String.concat "." path));
    if
      path = [ "compare" ]
      && poly_compare_applies file
      && not (Hashtbl.mem st.applied_heads e.pexp_loc.Location.loc_start.Lexing.pos_cnum)
    then
      report st ~line ~rule:"poly-compare"
        "polymorphic compare used as a comparison-function value; use Int.compare / \
         String.compare or a monomorphic comparator")
  | None -> ());
  match e.pexp_desc with
  | Pexp_apply (fn, args) -> (
    Hashtbl.replace st.applied_heads fn.Parsetree.pexp_loc.Location.loc_start.Lexing.pos_cnum ();
    (match ident_path fn with
    | Some [ "Hashtbl"; "create" ] when hashtbl_create_random args ->
      report st ~line ~rule:"determinism"
        "Hashtbl.create ~random makes iteration order per-process"
    | Some op when polymorphic_compare op ->
      if List.exists (fun (_, a) -> closure_suspect a) args then
        report st ~line ~rule:"closure-compare"
          (Printf.sprintf
             "structural %s on a value that looks like a closure (continuations raise \
              under polymorphic comparison)"
             (String.concat "." op))
    | _ -> ()))
  | _ -> ()

exception Parse_error of string * string

(* [lint_file file] is the raw (unsuppressed) findings of one source
   file; raises [Parse_error] when the file does not parse. *)
let lint_file file =
  let st = { file; acc = []; applied_heads = Hashtbl.create 256 } in
  let ast =
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let lexbuf = Lexing.from_channel ic in
        Location.init lexbuf file;
        try Parse.implementation lexbuf
        with exn -> raise (Parse_error (file, Printexc.to_string exn)))
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          check_expr st e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.structure iter ast;
  check_structure st ast;
  st.acc
