(* Hot-path allocation pass.

   ROADMAP item 5 (zero-allocation continuations) needs an *enforced
   floor*, not a one-off audit: once a hot function is allocation-free,
   CI must fail when an allocation site reappears.  This pass walks the
   declared hot-path set and reports every allocation the Typedtree
   shows:

     closure        a [fun]/[function] nested inside a hot body (the
                    outermost curried chain of the definition itself is
                    the function being defined, not a per-call
                    allocation, and is skipped)
     partial-apply  an application supplying fewer arguments than the
                    callee's arrow arity — the runtime builds a closure
     tuple          tuple construction
     record         record construction
     variant        constructor application with arguments (includes
                    list cons and [Some])
     array          array literals
     boxed-float    a float component stored into a tuple or a
                    mixed-representation record (each such store boxes)

   The pass is deliberately conservative-by-list: it only looks inside
   bindings named by the hot set, and the checked-in baseline
   (lint.baseline) captures the *current* debt so "no new findings" is
   enforceable while the debt is burned down explicitly. *)

let rule = "hot-alloc"

type spec = { s_unit : string;  (* canonical unit, e.g. "Cm_engine.Sim" *)
              s_names : string list  (* toplevel binding names within it *) }

(* The declared hot-path set: the event core's schedule/extract/fire
   cycle, the transport's send/receive pipelines, the CPS thread
   combinators (continuation resume), and the processor dispatch loop.
   Growing this list is how a function joins the zero-allocation
   floor. *)
let default =
  [
    {
      s_unit = "Cm_engine.Sim";
      s_names =
        [ "alloc"; "schedule"; "extract"; "fire"; "post"; "post_after"; "cancel";
          "ovf_push"; "ovf_pop"; "ovf_sift_up"; "ovf_sift_down"; "prune_ovf";
          (* The sharded coordinator's splice points: seq draws and
             barrier-merged arrivals run once per network message. *)
          "take_send_seq"; "post_arrival"; "push_bucket_sorted"; "peek_slot"; "peek_time" ];
    };
    (* The shard mailbox/barrier path: every network send crosses [push]
       once and [merge_one]'s sort once per window. *)
    {
      s_unit = "Cm_engine.Shard";
      s_names = [ "push"; "mbox_grow"; "entry_less"; "sift_down"; "sort_idx"; "merge_one" ];
    };
    {
      s_unit = "Cm_machine.Transport";
      s_names =
        [ "transmit"; "dispatch"; "post"; "notify"; "call"; "migrate"; "signal"; "inject";
          "fault_spec"; "fault_hits" ];
    };
    {
      s_unit = "Cm_machine.Thread";
      s_names =
        [ "return"; "bind"; "map"; "guard"; "await"; "stall"; "travel_k"; "travel";
          "yield"; "sleep"; "compute" ];
    };
    { s_unit = "Cm_machine.Processor";
      s_names = [ "run_head"; "dispatch"; "enqueue"; "release"; "hold"; "charge" ] };
    (* The flat object space: home/state lookups and moves sit on every
       remote access's fast path, and at 10^6 objects any per-lookup box
       (a tuple key, a sprintf on the success path) is a regression the
       pass must catch. *)
    { s_unit = "Cm_runtime.Objspace"; s_names = [ "check"; "home"; "state"; "move" ] };
    (* The flat DHT buckets' scan/write primitives, likewise: every
       get/put/preload crosses them, and the big-mode A/B probe's >=10x
       allocation floor depends on their staying allocation-free. *)
    { s_unit = "Cm_apps.Dht";
      s_names = [ "bkt_count"; "bkt_find"; "bkt_find_from"; "bkt_set"; "bkt_append" ] };
  ]

let in_hot_set specs (b : Cmt_index.binding) (ui : Cmt_index.unit_info) =
  List.exists (fun s -> s.s_unit = ui.ui_canon && List.mem b.b_name s.s_names) specs

let is_float ty =
  match Types.get_desc ty with
  | Tconstr (p, [], _) -> Cmt_index.strip_stdlib (Path.name p) = "float"
  | _ -> false

(* Subtrees that never run on the hot path proper: raising an error ends
   the run, so its argument's allocations do not count toward the
   zero-allocation floor. *)
let raising_head = function
  | "raise" | "raise_notrace" | "failwith" | "invalid_arg" -> true
  | _ -> false

(* Constant constructor trees the compiler statically allocates — format
   strings desugar to CamlinternalFormatBasics constructors. *)
let static_constructor (cd : Types.constructor_description) =
  match Types.get_desc cd.cstr_res with
  | Tconstr (p, _, _) ->
    let n = Path.name p in
    String.length n >= 14 && String.sub n 0 14 = "CamlinternalFo"
  | _ -> false

(* Arrow arity of a type, expanding abbreviations through the index's
   type-declaration table ([unit Thread.t] is an arrow twice over). *)
let arity idx ty =
  let rec go depth ty =
    if depth > 24 then 0
    else
      match Types.get_desc ty with
      | Tarrow (_, _, rest, _) -> 1 + go (depth + 1) rest
      | Tconstr (p, _, _) -> (
        match Hashtbl.find_opt idx.Cmt_index.type_decls (Cmt_index.strip_stdlib (Path.name p)) with
        | Some { Types.type_manifest = Some t; _ } -> go (depth + 1) t
        | _ -> 0)
      | Tpoly (t, _) -> go (depth + 1) t
      | _ -> 0
  in
  go 0 ty

let run (idx : Cmt_index.t) ?(hot = default) () =
  let findings = ref [] in
  let add ~ui ~(b : Cmt_index.binding) ~loc ~kind msg =
    findings :=
      Finding.v ~file:ui.Cmt_index.ui_source ~line:(Cmt_index.line_of loc) ~rule
        ~context:b.b_canon ~detail:kind ~witness:[ b.b_canon ]
        (Printf.sprintf "%s in hot path %s: %s" kind b.b_canon msg)
      :: !findings
  in
  List.iter
    (fun (ui : Cmt_index.unit_info) ->
      List.iter
        (fun (b : Cmt_index.binding) ->
          if in_hot_set hot b ui then begin
            (* Positions of function nodes that belong to a curried
               chain already accounted for (or to the definition's own
               outer chain): visited parent-first, so membership is
               decided before the child is reached. *)
            let chain : (int, unit) Hashtbl.t = Hashtbl.create 16 in
            let mark (e : Typedtree.expression) =
              Hashtbl.replace chain e.exp_loc.loc_start.Lexing.pos_cnum ()
            in
            let in_chain (e : Typedtree.expression) =
              Hashtbl.mem chain e.exp_loc.loc_start.Lexing.pos_cnum
            in
            mark b.b_vb.vb_expr;
            let skip (e : Typedtree.expression) =
              match e.exp_desc with
              | Texp_assert _ -> true
              | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
                raising_head (Cmt_index.canon_path ui p)
              | _ -> false
            in
            let expr sub (e : Typedtree.expression) =
              if skip e then ()
              else begin
              (match e.exp_desc with
              | Texp_function { cases; _ } ->
                List.iter
                  (fun (c : Typedtree.value Typedtree.case) ->
                    match c.c_rhs.exp_desc with
                    | Texp_function _ -> mark c.c_rhs
                    | _ -> ())
                  cases;
                if not (in_chain e) then
                  add ~ui ~b ~loc:e.exp_loc ~kind:"closure"
                    "closure allocated per call; hoist it or defunctionalize (pooled \
                     frames, Sim handler ids)"
              | Texp_tuple parts ->
                add ~ui ~b ~loc:e.exp_loc ~kind:"tuple" "tuple allocated per call";
                List.iter
                  (fun (p : Typedtree.expression) ->
                    if is_float p.exp_type then
                      add ~ui ~b ~loc:e.exp_loc ~kind:"boxed-float"
                        "float stored in a tuple is boxed")
                  parts
              | Texp_record { representation; fields; _ } ->
                add ~ui ~b ~loc:e.exp_loc ~kind:"record" "record allocated per call";
                let flat =
                  match representation with Types.Record_float -> true | _ -> false
                in
                if not flat then
                  Array.iter
                    (fun ((ld : Types.label_description), _) ->
                      if is_float ld.lbl_arg then
                        add ~ui ~b ~loc:e.exp_loc ~kind:"boxed-float"
                          (Printf.sprintf "float field '%s' is boxed in a mixed record"
                             ld.lbl_name))
                    fields
              | Texp_construct (_, cd, (_ :: _ as _args)) ->
                if not (static_constructor cd) then
                  add ~ui ~b ~loc:e.exp_loc ~kind:"variant"
                    (Printf.sprintf "constructor %s allocated per call" cd.cstr_name)
              | Texp_array (_ :: _) ->
                add ~ui ~b ~loc:e.exp_loc ~kind:"array" "array literal allocated per call"
              | Texp_apply (head, args) ->
                let supplied =
                  List.length (List.filter (fun (_, a) -> a <> None) args)
                in
                let ar = arity idx head.exp_type in
                if ar > supplied then
                  add ~ui ~b ~loc:e.exp_loc ~kind:"partial-apply"
                    (Printf.sprintf
                       "partial application (%d of %d arguments) builds a closure per call"
                       supplied ar)
              | _ -> ());
              Tast_iterator.default_iterator.expr sub e
              end
            in
            let iter = { Tast_iterator.default_iterator with expr } in
            iter.expr iter b.b_vb.vb_expr
          end)
        ui.ui_bindings)
    idx.units;
  !findings
