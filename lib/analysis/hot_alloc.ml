(* Hot-path allocation pass.

   ROADMAP item 5 (zero-allocation continuations) needs an *enforced
   floor*, not a one-off audit: once a hot function is allocation-free,
   CI must fail when an allocation site reappears.  This pass walks the
   declared hot-path set and reports every allocation the Typedtree
   shows:

     closure        a [fun]/[function] nested inside a hot body (the
                    outermost curried chain of the definition itself is
                    the function being defined, not a per-call
                    allocation, and is skipped)
     partial-apply  an application supplying fewer arguments than the
                    callee's arrow arity — the runtime builds a closure
     tuple          tuple construction
     record         record construction
     variant        constructor application with arguments (includes
                    list cons and [Some])
     array          array literals
     boxed-float    a float component stored into a tuple or a
                    mixed-representation record (each such store boxes)

   The pass is deliberately conservative-by-list: it only looks inside
   bindings named by the hot set, and the checked-in baseline
   (lint.baseline) captures the *current* debt so "no new findings" is
   enforceable while the debt is burned down explicitly. *)

let rule = "hot-alloc"

type spec = { s_unit : string;  (* canonical unit, e.g. "Cm_engine.Sim" *)
              s_names : string list  (* toplevel binding names within it *) }

(* The declared hot-path set: the event core's schedule/extract/fire
   cycle, the transport's send/receive pipelines, the CPS thread
   combinators (continuation resume), and the processor dispatch loop.
   Growing this list is how a function joins the zero-allocation
   floor. *)
let default =
  [
    {
      s_unit = "Cm_engine.Sim";
      s_names =
        [ "alloc"; "schedule"; "extract"; "fire"; "post"; "post_after"; "cancel";
          "ovf_push"; "ovf_pop"; "ovf_sift_up"; "ovf_sift_down"; "prune_ovf";
          (* The sharded coordinator's splice points: seq draws and
             barrier-merged arrivals run once per network message. *)
          "take_send_seq"; "post_arrival"; "push_bucket_sorted"; "peek_slot"; "peek_time" ];
    };
    (* The shard mailbox/barrier path: every network send crosses [push]
       once and [merge_one]'s sort once per window. *)
    {
      s_unit = "Cm_engine.Shard";
      s_names = [ "push"; "mbox_grow"; "entry_less"; "sift_down"; "sort_idx"; "merge_one" ];
    };
    {
      s_unit = "Cm_machine.Transport";
      s_names =
        [ "transmit"; "dispatch"; "post"; "notify"; "call"; "migrate"; "signal"; "inject";
          "fault_spec"; "fault_hits" ];
    };
    (* The steady-state call path runs on the frames engine: the CPS
       combinators ([bind]/[map]/[guard]/[await]/[stall]) are the checked
       *reference* engine — they run only under sanitizers/fault
       injection, where their per-step closures are accepted — so they
       left the declared hot set when the per-object consumers migrated
       to frames (PR 10).  What is hot now is the frame machinery
       itself: the travel steps and the m-lane register accessors the
       fused method sites write through. *)
    {
      s_unit = "Cm_machine.Thread";
      s_names =
        [ "return"; "travel_k"; "travel"; "frame_travel"; "yield"; "sleep"; "compute";
          "setm0"; "setm1"; "setm2"; "setm3"; "setm4";
          "getm0"; "getm1"; "getm2"; "getm3"; "getm4";
          "setms"; "getms"; "setmv"; "getmv" ];
    };
    { s_unit = "Cm_machine.Processor";
      s_names = [ "run_head"; "dispatch"; "enqueue"; "release"; "hold"; "charge" ] };
    (* The flat object space: home/state lookups and moves sit on every
       remote access's fast path, and at 10^6 objects any per-lookup box
       (a tuple key, a sprintf on the success path) is a regression the
       pass must catch. *)
    { s_unit = "Cm_runtime.Objspace"; s_names = [ "check"; "home"; "state"; "move" ] };
    (* The flat DHT buckets' scan/write primitives, likewise: every
       get/put/preload crosses them, and the big-mode A/B probe's >=10x
       allocation floor depends on their staying allocation-free. *)
    (* [method_get]/[method_put]/[method_sum] are deliberately absent:
       they are the CPS *reference* bodies (generic path and sanitizer
       fall-back); the fused frame bodies run through [ms_bucket] and
       the bkt_* scans below. *)
    { s_unit = "Cm_apps.Dht";
      s_names = [ "bkt_count"; "bkt_find"; "bkt_find_from"; "bkt_set"; "bkt_append";
                  "ms_bucket" ] };
    (* The fused per-object call path (PR 10): static-site and
       method-site steps walk frame registers only — every binding here
       must stay allocation-free or the >=10x sites A/B floor erodes. *)
    {
      s_unit = "Cm_runtime.Runtime";
      s_names =
        [ "rt_body_step"; "rt_call_step"; "site_arrived_step"; "site_send_step";
          "site_step"; "site_call"; "scope_done_step"; "msite_obj"; "msite_arg_a";
          "msite_arg_b"; "msite_arrived_step"; "msite_send_step"; "msite_call_step";
          "msite_enter"; "msite_finish"; "msite_call"; "msite_scoped" ];
    };
    {
      s_unit = "Cm_runtime.Objmig";
      s_names =
        [ "om_done_step"; "om_reply_step"; "om_resume_step"; "om_send_step";
          "om_call_step"; "call"; "rs_alloc"; "rs_release"; "hint_key"; "learn" ];
    };
    {
      s_unit = "Cm_runtime.Replicate";
      s_names =
        [ "upd_fan_step"; "read_home_step"; "read_copy_step"; "read"; "update";
          "scr_alloc"; "scr_release"; "scr_scan"; "holds"; "install" ];
    };
    (* The per-op samplers both bench arms share: a boxed draw here taxes
       fused and generic alike and masks the A/B ratio (the PR 10 limb
       rewrite of Rng exists precisely to keep these clean). *)
    { s_unit = "Cm_engine.Rng"; s_names = [ "step"; "int"; "bits53"; "float"; "bool" ] };
    { s_unit = "Cm_engine.Zipf"; s_names = [ "sample" ] };
  ]

let in_hot_set specs (b : Cmt_index.binding) (ui : Cmt_index.unit_info) =
  List.exists (fun s -> s.s_unit = ui.ui_canon && List.mem b.b_name s.s_names) specs

let is_float ty =
  match Types.get_desc ty with
  | Tconstr (p, [], _) -> Cmt_index.strip_stdlib (Path.name p) = "float"
  | _ -> false

(* Subtrees that never run on the hot path proper: raising an error ends
   the run, so its argument's allocations do not count toward the
   zero-allocation floor. *)
let raising_head = function
  | "raise" | "raise_notrace" | "failwith" | "invalid_arg" -> true
  | _ -> false

(* Constant constructor trees the compiler statically allocates — format
   strings desugar to CamlinternalFormatBasics constructors. *)
let static_constructor (cd : Types.constructor_description) =
  match Types.get_desc cd.cstr_res with
  | Tconstr (p, _, _) ->
    let n = Path.name p in
    String.length n >= 14 && String.sub n 0 14 = "CamlinternalFo"
  | _ -> false

(* Runtime (syntactic) arity of an expression: the length of its outer
   curried [fun] chain — what the compiler turns into one n-ary closure,
   and therefore what decides whether an application is partial *at run
   time*.  The type-level arity over-counts whenever a function returns
   a function on purpose: [Frame.take_k c] or [Array.get handlers hid]
   fully apply a 1-or-2-ary callee and merely *read out* an existing
   closure, yet their result types end in arrows. *)
let rec syn_arity (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } -> 1 + syn_arity c.c_rhs
  | Texp_function _ -> 1
  | _ -> 0

(* Runtime arities for stdlib heads whose instantiated types commonly
   end in arrows (no .cmt of theirs is in the index to read the
   definition from): indexing a function array and the [Obj] casts are
   full applications, not closure builders. *)
let stdlib_arity = function
  | "Array.get" | "Array.unsafe_get" -> Some 2
  | "Obj.magic" | "Obj.repr" | "Obj.obj" -> Some 1
  | _ -> None

(* Arrow arity of a type, expanding abbreviations through the index's
   type-declaration table ([unit Thread.t] is an arrow twice over). *)
let arity idx ty =
  let rec go depth ty =
    if depth > 24 then 0
    else
      match Types.get_desc ty with
      | Tarrow (_, _, rest, _) -> 1 + go (depth + 1) rest
      | Tconstr (p, _, _) -> (
        match Hashtbl.find_opt idx.Cmt_index.type_decls (Cmt_index.strip_stdlib (Path.name p)) with
        | Some { Types.type_manifest = Some t; _ } -> go (depth + 1) t
        | _ -> 0)
      | Tpoly (t, _) -> go (depth + 1) t
      | _ -> 0
  in
  go 0 ty

let run (idx : Cmt_index.t) ?(hot = default) () =
  let findings = ref [] in
  let add ~ui ~(b : Cmt_index.binding) ~loc ~kind msg =
    findings :=
      Finding.v ~file:ui.Cmt_index.ui_source ~line:(Cmt_index.line_of loc) ~rule
        ~context:b.b_canon ~detail:kind ~witness:[ b.b_canon ]
        (Printf.sprintf "%s in hot path %s: %s" kind b.b_canon msg)
      :: !findings
  in
  List.iter
    (fun (ui : Cmt_index.unit_info) ->
      List.iter
        (fun (b : Cmt_index.binding) ->
          if in_hot_set hot b ui then begin
            (* Positions of function nodes that belong to a curried
               chain already accounted for (or to the definition's own
               outer chain): visited parent-first, so membership is
               decided before the child is reached. *)
            let chain : (int, unit) Hashtbl.t = Hashtbl.create 16 in
            let mark (e : Typedtree.expression) =
              Hashtbl.replace chain e.exp_loc.loc_start.Lexing.pos_cnum ()
            in
            let in_chain (e : Typedtree.expression) =
              Hashtbl.mem chain e.exp_loc.loc_start.Lexing.pos_cnum
            in
            mark b.b_vb.vb_expr;
            let skip (e : Typedtree.expression) =
              match e.exp_desc with
              | Texp_assert _ -> true
              | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
                raising_head (Cmt_index.canon_path ui p)
              | _ -> false
            in
            let expr sub (e : Typedtree.expression) =
              if skip e then ()
              else begin
              (match e.exp_desc with
              | Texp_function { cases; _ } ->
                List.iter
                  (fun (c : Typedtree.value Typedtree.case) ->
                    match c.c_rhs.exp_desc with
                    | Texp_function _ -> mark c.c_rhs
                    | _ -> ())
                  cases;
                if not (in_chain e) then
                  add ~ui ~b ~loc:e.exp_loc ~kind:"closure"
                    "closure allocated per call; hoist it or defunctionalize (pooled \
                     frames, Sim handler ids)"
              | Texp_tuple parts ->
                add ~ui ~b ~loc:e.exp_loc ~kind:"tuple" "tuple allocated per call";
                List.iter
                  (fun (p : Typedtree.expression) ->
                    if is_float p.exp_type then
                      add ~ui ~b ~loc:e.exp_loc ~kind:"boxed-float"
                        "float stored in a tuple is boxed")
                  parts
              | Texp_record { representation; fields; _ } ->
                add ~ui ~b ~loc:e.exp_loc ~kind:"record" "record allocated per call";
                let flat =
                  match representation with Types.Record_float -> true | _ -> false
                in
                if not flat then
                  Array.iter
                    (fun ((ld : Types.label_description), _) ->
                      if is_float ld.lbl_arg then
                        add ~ui ~b ~loc:e.exp_loc ~kind:"boxed-float"
                          (Printf.sprintf "float field '%s' is boxed in a mixed record"
                             ld.lbl_name))
                    fields
              | Texp_construct (_, cd, (_ :: _ as _args)) ->
                if not (static_constructor cd) then
                  add ~ui ~b ~loc:e.exp_loc ~kind:"variant"
                    (Printf.sprintf "constructor %s allocated per call" cd.cstr_name)
              | Texp_array (_ :: _) ->
                add ~ui ~b ~loc:e.exp_loc ~kind:"array" "array literal allocated per call"
              | Texp_apply (head, args) ->
                let supplied =
                  List.length (List.filter (fun (_, a) -> a <> None) args)
                in
                let ar =
                  match head.exp_desc with
                  | Texp_ident (p, _, _) -> (
                    let canon = Cmt_index.canon_path ui p in
                    match stdlib_arity (Cmt_index.strip_stdlib canon) with
                    | Some n -> n
                    | None -> (
                      (* A same-unit reference resolves to its bare
                         name; the index keys on the dotted path. *)
                      let lookup c = Hashtbl.find_opt idx.Cmt_index.by_canon c in
                      let hit =
                        match lookup canon with
                        | Some _ as h -> h
                        | None -> lookup (ui.Cmt_index.ui_canon ^ "." ^ canon)
                      in
                      match hit with
                      | Some (callee, _) ->
                        let n = syn_arity callee.Cmt_index.b_vb.vb_expr in
                        if n > 0 then n else arity idx head.exp_type
                      | None -> arity idx head.exp_type))
                  | _ -> arity idx head.exp_type
                in
                if ar > supplied then
                  add ~ui ~b ~loc:e.exp_loc ~kind:"partial-apply"
                    (Printf.sprintf
                       "partial application (%d of %d arguments) builds a closure per call"
                       supplied ar)
              | _ -> ());
              Tast_iterator.default_iterator.expr sub e
              end
            in
            let iter = { Tast_iterator.default_iterator with expr } in
            iter.expr iter b.b_vb.vb_expr
          end)
        ui.ui_bindings)
    idx.units;
  !findings
