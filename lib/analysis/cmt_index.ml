(* Whole-library index over the .cmt files dune already produces.

   The typed passes work on *canonical value paths*: every way of naming
   a value — directly ([Network.send]), through the library wrapper
   ([Cm_machine.Network.send]), through dune's mangled unit name
   ([Cm_machine__Network.send]), or through a local module alias
   ([module N = Network ... N.send]) — maps to one spelling,
   "Cm_machine.Network.send".  That is what closes the module-alias
   blind spot of the syntactic pass: the Typedtree records resolved
   [Path.t]s, and local aliases are expanded with an alias table
   collected from the same tree.

   The index also records, for every compilation unit:
   - its toplevel value bindings (including nested [struct]s), keyed
     both by canonical path and by definition location, so a
     [Texp_ident] whose [Path.t] is a bare ident (same-unit reference)
     can be resolved through [val_loc];
   - every type declaration's [Types.type_declaration], powering the
     structural mutability query used by the domain-safety pass. *)

type binding = {
  b_name : string;
  b_canon : string;  (* canonical dotted path, e.g. "Cm_engine.Sim.post" *)
  b_vb : Typedtree.value_binding;
  b_loc : Location.t;  (* the bound variable's location *)
}

type unit_info = {
  ui_canon : string;  (* canonical module prefix, e.g. "Cm_engine.Sim" *)
  ui_source : string;  (* source path as recorded by the compiler *)
  ui_structure : Typedtree.structure;
  ui_aliases : (string, string) Hashtbl.t;  (* local module name -> canonical prefix *)
  mutable ui_bindings : binding list;
}

type t = {
  units : unit_info list;
  by_canon : (string, binding * unit_info) Hashtbl.t;
  by_decl_loc : (string * int, string) Hashtbl.t;  (* (fname, cnum) -> canonical *)
  type_decls : (string, Types.type_declaration) Hashtbl.t;  (* canonical type path *)
  errors : string list;
}

(* ------------------------------------------------------------------ *)
(* Canonical names                                                    *)
(* ------------------------------------------------------------------ *)

(* "Cm_machine__Network" -> "Cm_machine.Network"; plain names pass through. *)
let canon_unit name =
  let n = String.length name in
  let rec find i =
    if i + 2 > n then None
    else if name.[i] = '_' && name.[i + 1] = '_' then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i when i > 0 && i + 2 < n ->
    let tail = String.sub name (i + 2) (n - i - 2) in
    String.sub name 0 i ^ "." ^ String.capitalize_ascii tail
  | _ -> name

let strip_stdlib s =
  let pfx = "Stdlib." in
  if String.length s > String.length pfx && String.sub s 0 (String.length pfx) = pfx then
    String.sub s (String.length pfx) (String.length s - String.length pfx)
  else s

(* Canonical name of a resolved path, expanding local module aliases
   collected from the same unit. *)
let canon_path ui (p : Path.t) =
  let rec go = function
    | Path.Pident id ->
      let n = Ident.name id in
      (match Hashtbl.find_opt ui.ui_aliases n with
      | Some target -> target
      | None -> canon_unit n)
    | Path.Pdot (p', s) -> go p' ^ "." ^ s
    | Path.Papply (p', _) -> go p'
    | Path.Pextra_ty (p', _) -> go p'
  in
  strip_stdlib (go p)

(* ------------------------------------------------------------------ *)
(* Loading                                                            *)
(* ------------------------------------------------------------------ *)

let rec find_cmts acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left (fun acc e -> find_cmts acc (Filename.concat path e)) acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let rec peel_module (m : Typedtree.module_expr) =
  match m.mod_desc with
  | Tmod_constraint (m', _, _, _) -> peel_module m'
  | d -> d

let pat_var (p : Typedtree.pattern) =
  match p.pat_desc with
  | Tpat_var (id, name) -> Some (Ident.name id, name.loc)
  | Tpat_alias (_, id, name) -> Some (Ident.name id, name.loc)
  | _ -> None

(* Walk a unit's structure: record aliases, toplevel bindings and type
   declarations, descending into named sub-structures (but not functors —
   a functor body is fresh per application). *)
let index_unit idx ui =
  let rec str prefix (s : Typedtree.structure) =
    List.iter (item prefix) s.str_items
  and item prefix (it : Typedtree.structure_item) =
    match it.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          match pat_var vb.vb_pat with
          | None -> ()
          | Some (name, loc) ->
            let canon = prefix ^ "." ^ name in
            let b = { b_name = name; b_canon = canon; b_vb = vb; b_loc = loc } in
            ui.ui_bindings <- b :: ui.ui_bindings;
            Hashtbl.replace idx.by_canon canon (b, ui);
            let key pos = (pos.Lexing.pos_fname, pos.Lexing.pos_cnum) in
            Hashtbl.replace idx.by_decl_loc (key loc.Location.loc_start) canon;
            Hashtbl.replace idx.by_decl_loc (key vb.vb_loc.Location.loc_start) canon)
        vbs
    | Tstr_type (_, decls) ->
      List.iter
        (fun (d : Typedtree.type_declaration) ->
          Hashtbl.replace idx.type_decls (prefix ^ "." ^ d.typ_name.txt) d.typ_type)
        decls
    | Tstr_module mb -> module_binding prefix mb
    | Tstr_recmodule mbs -> List.iter (module_binding prefix) mbs
    | Tstr_include { incl_mod; _ } -> (
      match peel_module incl_mod with
      | Tmod_structure s -> str prefix s
      | _ -> ())
    | _ -> ()
  and module_binding prefix (mb : Typedtree.module_binding) =
    match mb.mb_name.txt with
    | None -> ()
    | Some name -> (
      match peel_module mb.mb_expr with
      | Tmod_ident (p, _) ->
        (* A module alias: record the expansion so [canon_path] sees
           through it — this is the hole the syntactic lint documents. *)
        Hashtbl.replace ui.ui_aliases name (canon_path ui p)
      | Tmod_structure s -> str (prefix ^ "." ^ name) s
      | _ -> ())
  in
  str ui.ui_canon ui.ui_structure

let load ~roots =
  let idx =
    {
      units = [];
      by_canon = Hashtbl.create 512;
      by_decl_loc = Hashtbl.create 512;
      type_decls = Hashtbl.create 128;
      errors = [];
    }
  in
  let cmts =
    List.fold_left (fun acc r -> if Sys.file_exists r then find_cmts acc r else acc) [] roots
    |> List.sort String.compare
  in
  let units = ref [] and errors = ref [] in
  List.iter
    (fun path ->
      match Cmt_format.read_cmt path with
      | exception exn ->
        errors := Printf.sprintf "%s: unreadable cmt: %s" path (Printexc.to_string exn) :: !errors
      | infos -> (
        match (infos.cmt_annots, infos.cmt_sourcefile) with
        | Implementation structure, Some src when Filename.check_suffix src ".ml" ->
          let ui =
            {
              ui_canon = canon_unit infos.cmt_modname;
              ui_source = src;
              ui_structure = structure;
              ui_aliases = Hashtbl.create 8;
              ui_bindings = [];
            }
          in
          units := ui :: !units
        | _ -> ()))
    cmts;
  let idx = { idx with units = List.rev !units; errors = List.rev !errors } in
  List.iter (fun ui -> index_unit idx ui) idx.units;
  idx

(* ------------------------------------------------------------------ *)
(* Reference resolution                                               *)
(* ------------------------------------------------------------------ *)

(* Canonical name of an identifier use, alias-expanded.  Bare idents are
   resolved through the declaration-location table: a same-unit toplevel
   reference resolves to its canonical path; a genuinely local variable
   resolves to [None]. *)
let resolve idx ui (p : Path.t) (vd : Types.value_description) =
  match p with
  | Path.Pident _ ->
    let pos = vd.val_loc.Location.loc_start in
    Hashtbl.find_opt idx.by_decl_loc (pos.Lexing.pos_fname, pos.Lexing.pos_cnum)
  | _ -> Some (canon_path ui p)

(* All canonical toplevel values referenced from [e] (descending into
   function bodies — this is the call/reference graph edge set). *)
let refs_of_expr idx ui (e : Typedtree.expression) =
  let acc = ref [] in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, vd) -> (
      match resolve idx ui p vd with
      | Some canon when Hashtbl.mem idx.by_canon canon -> acc := canon :: !acc
      | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let iter = { Tast_iterator.default_iterator with expr } in
  iter.expr iter e;
  List.sort_uniq String.compare !acc

(* ------------------------------------------------------------------ *)
(* Structural type mutability                                         *)
(* ------------------------------------------------------------------ *)

type mut =
  | Mutable of string  (* witness: which component is mutable *)
  | Synchronized  (* Atomic.t / Mutex.t / DLS key — shared by design *)
  | Immutable
  | Unknown  (* abstract with no visible definition; not flagged *)

let builtin_mutable =
  [ "ref"; "array"; "bytes"; "Bytes.t"; "Hashtbl.t"; "Buffer.t"; "Queue.t"; "Stack.t";
    "Ephemeron.K1.t"; "Weak.t"; "Bigarray.Array1.t" ]

let builtin_synchronized =
  [ "Atomic.t"; "Mutex.t"; "Condition.t"; "Semaphore.Counting.t"; "Semaphore.Binary.t";
    "Domain.DLS.key" ]

(* Immutable containers whose type arguments must still be inspected:
   a [Hashtbl.t list] payload is as shared-mutable as the table itself. *)
let transparent_containers = [ "list"; "option"; "Option.t"; "result"; "Result.t"; "Either.t"; "Lazy.t"; "lazy_t"; "Seq.t" ]

let join a b =
  match (a, b) with
  | (Mutable _ as m), _ | _, (Mutable _ as m) -> m
  | Unknown, _ | _, Unknown -> Unknown
  | Synchronized, x | x, Synchronized -> x
  | Immutable, Immutable -> Immutable

(* Canonical name of a *type* path: like [canon_path] but without the
   per-unit alias table (type expressions in [Types.t] carry resolved
   paths, where a cross-unit reference shows up under the mangled unit
   name, e.g. "Cm_machine__Transport.t"). *)
let canon_type_path (p : Path.t) =
  let rec go = function
    | Path.Pident id -> canon_unit (Ident.name id)
    | Path.Pdot (p', s) -> go p' ^ "." ^ s
    | Path.Papply (p', _) -> go p'
    | Path.Pextra_ty (p', _) -> go p'
  in
  strip_stdlib (go p)

(* [mutability idx ty] walks [ty] structurally: through tuples,
   transparent containers, record fields, variant constructor arguments
   and manifests, consulting the whole-library type index for user
   types.  Arrows are treated as immutable (a closure may capture
   mutable state, but flagging every function payload would drown the
   signal — the capture is caught where the state is created).
   [?self] is the unit the inspected expression lives in: a same-unit
   type reference is a bare ident ("req", not "Unit.req"), so the
   declaration table is also tried under [self]'s canonical prefix. *)
let mutability ?self idx ty =
  let seen = Hashtbl.create 16 in
  let rec go depth ty =
    if depth > 12 then Unknown
    else
      let id = Types.get_id ty in
      if Hashtbl.mem seen id then Immutable  (* recursive occurrence: decided above *)
      else begin
        Hashtbl.add seen id ();
        match Types.get_desc ty with
        | Tarrow _ -> Immutable
        | Ttuple tys -> List.fold_left (fun acc t -> join acc (go (depth + 1) t)) Immutable tys
        | Tconstr (p, args, _) -> constr depth p args
        | Tvar _ | Tunivar _ -> Unknown
        | Tpoly (t, _) -> go depth t
        | Tlink t | Tsubst (t, _) -> go depth t
        | _ -> Unknown
      end
  and constr depth p args =
    let name = strip_stdlib (Path.name p) in
    if List.mem name builtin_mutable then Mutable name
    else if List.mem name builtin_synchronized then Synchronized
    else if List.mem name transparent_containers then
      List.fold_left (fun acc t -> join acc (go (depth + 1) t)) Immutable args
    else
      let decl =
        match Hashtbl.find_opt idx.type_decls (canon_type_path p) with
        | Some d -> Some d
        | None -> (
          match (p, self) with
          | Path.Pident _, Some (ui : unit_info) ->
            Hashtbl.find_opt idx.type_decls (ui.ui_canon ^ "." ^ name)
          | _ -> None)
      in
      match decl with
      | None ->
        (* int, float, string, unit, user abstract types from outside
           the indexed roots... primitive scalars are immutable; the
           rest are unknown. *)
        if List.mem name
             [ "int"; "float"; "char"; "bool"; "unit"; "string"; "int32"; "int64";
               "nativeint"; "exn"; "floatarray" ]
        then if name = "floatarray" then Mutable name else Immutable
        else Unknown
      | Some decl -> decl_mut depth name decl args
  and decl_mut depth name (decl : Types.type_declaration) args =
    let from_args = List.fold_left (fun acc t -> join acc (go (depth + 1) t)) Immutable args in
    let own =
      match decl.type_kind with
      | Type_record (lds, _) ->
        List.fold_left
          (fun acc (ld : Types.label_declaration) ->
            match ld.ld_mutable with
            | Mutable ->
              join acc (Mutable (Printf.sprintf "mutable field %s.%s" name (Ident.name ld.ld_id)))
            | Immutable -> join acc (go (depth + 1) ld.ld_type))
          Immutable lds
      | Type_variant (cds, _) ->
        List.fold_left
          (fun acc (cd : Types.constructor_declaration) ->
            match cd.cd_args with
            | Cstr_tuple tys ->
              List.fold_left (fun acc t -> join acc (go (depth + 1) t)) acc tys
            | Cstr_record lds ->
              List.fold_left
                (fun acc (ld : Types.label_declaration) ->
                  match ld.ld_mutable with
                  | Mutable ->
                    join acc
                      (Mutable (Printf.sprintf "mutable field %s.%s" name (Ident.name ld.ld_id)))
                  | Immutable -> join acc (go (depth + 1) ld.ld_type))
                acc lds)
          Immutable cds
      | Type_abstract -> (
        match decl.type_manifest with Some t -> go (depth + 1) t | None -> Unknown)
      | Type_open -> Unknown
    in
    join own from_args
  in
  go 0 ty

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let file_of (loc : Location.t) = loc.loc_start.Lexing.pos_fname
