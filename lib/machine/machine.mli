(** A simulated distributed-memory multiprocessor.

    Bundles the simulator clock, the cost model, the topology, the network,
    and an array of processors; provides seeded, reproducible thread
    spawning.  Every higher layer (coherent shared memory, the Prelude-like
    runtime, the applications) builds on a [Machine.t]. *)

open Cm_engine

(** Which thread-suspension engine a machine runs (see {!Thread.engine}):
    [Frames] is the defunctionalized zero-allocation default, [Cps] the
    original closure-per-suspension reference.  Digests are bit-identical
    between the two (the qcheck oracle in test/ proves it); [Cps] exists
    for that oracle and for paired A/B benchmarks. *)
type engine = Frames | Cps

val set_default_engine : engine -> unit
(** Set the process-wide default for machines created without an
    explicit [engine] (atomic — safe under the sweep harness's domain
    pool; the A/B bench mode flips it between interleaved reps). *)

val default_engine : unit -> engine

val engine_name : engine -> string

val set_default_shards : int -> unit
(** Set the process-wide shard-count default for machines created
    without an explicit [shards] (atomic, same contract as
    {!set_default_engine}; [repro --shards] / [CM_SHARDS] set it at
    startup).  Raises [Invalid_argument] unless positive. *)

val default_shards : unit -> int

type t = {
  sim : Sim.t;
      (** shard 0's simulator when sharded — registration-valid
          everywhere (shared handler registry), but schedule on a
          processor's own sim ({!Processor.sim}) or use {!at_global} *)
  sims : Sim.t array;  (** internal: one per shard *)
  shard_ : Shard.t option;  (** internal: the windowed coordinator *)
  costs : Costs.t;
  topo : Topology.t;
  net : Network.t;
  procs : Processor.t array;
  stats : Stats.t;
  rng : Rng.t;
  engine : engine;  (** the variant this machine was created with *)
  eng : Thread.engine;  (** internal: the live engine state threads share *)
  mutable next_tid : int;  (** internal: spawn counter *)
  mutable transport_ : Transport.t option;  (** internal: see {!transport} *)
}

val create :
  ?seed:int ->
  ?topology:[ `Mesh | `Torus | `Crossbar ] ->
  ?net_contention:bool ->
  ?wheel_bits:int ->
  ?engine:engine ->
  ?shards:int ->
  n_procs:int ->
  costs:Costs.t ->
  unit ->
  t
(** [create ~n_procs ~costs ()] is a machine of [n_procs] processors on a
    mesh (by default), with a fresh clock and statistics registry.
    [seed] (default 42) fixes every random choice made under this
    machine.  [net_contention] (default off) enables the link-occupancy
    network model (see {!Network.create}).  [wheel_bits] (default 12)
    sizes the scheduler's calendar wheel (see {!Sim.create}); it affects
    performance only — extraction order, and therefore every statistic
    and digest, is identical at any size.  [engine] picks the thread
    engine (defaults to {!default_engine}, normally [Frames]); digests
    are engine-invariant.

    [shards] (defaults to {!default_shards}, normally 1; clamped to
    [n_procs]) partitions the processors across that many conservative
    PDES shards (see {!Cm_engine.Shard} and DESIGN.md §17).  Digests
    are shard-count-invariant.  Sharding composes with message-passing
    workloads; subsystems serializing on machine-global state refuse it
    at construction ([net_contention] here, coherent shared memory,
    transport fault injection, object migration — each raises
    [Invalid_argument] telling you to use [~shards:1]). *)

val shards : t -> int
(** [shards t] is the machine's shard count (1 when sequential). *)

val n_procs : t -> int
(** Number of processors. *)

val proc : t -> int -> Processor.t
(** [proc t i] is processor [i].  Raises [Invalid_argument] when out of
    range. *)

val spawn : t -> on:int -> ?on_exit:(unit -> unit) -> unit Thread.t -> unit
(** [spawn t ~on body] starts a thread on processor [on] with a tid and
    random stream drawn deterministically from the machine. *)

val transport : t -> Transport.t
(** [transport t] is the machine's message transport (created on first
    use; one shared instance per machine).  All remote traffic outside
    [lib/machine] flows through it — see {!Transport} and the [raw-send]
    lint rule. *)

val run : ?until:int -> t -> unit
(** [run ?until t] drives the simulation (see {!Cm_engine.Sim.run}).
    When {!Cm_engine.Check.Trail} recording is on, a digest of the
    finished run is appended to the trail. *)

val digest : t -> string
(** [digest t] is a hash of the machine's observable outcome — final
    clock, events fired, and every statistic (see
    {!Cm_engine.Check.Trail.digest_of_run}).  Two same-seed runs of a
    deterministic workload must produce equal digests. *)

val now : t -> int
(** Current cycle (the machine-global clock when sharded). *)

val events_fired : t -> int
(** [events_fired t] is the total events executed so far, summed across
    shards. *)

val shard_fired : t -> int array
(** [shard_fired t] is the per-shard fired-event counts (a singleton for
    a sequential machine) — bench provenance. *)

val at_global : t -> int -> (unit -> unit) -> unit
(** [at_global t time fn] schedules a machine-global callback at
    absolute cycle [time]: plain [Sim.at] on a sequential machine, the
    coordinator's barrier agenda on a sharded one — in both cases it
    runs after every event before [time] and before any event at or
    after it, provided it is registered at setup (before {!run}).  The
    workload driver's warmup snapshot goes through here. *)
