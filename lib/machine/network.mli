(** The interconnection network.

    Messages are point-to-point, reliable, and delivered after a latency
    computed from the topology and the cost model ([base + per_hop * hops +
    per_word * (payload + header)]).  Delivery order between the same pair
    of endpoints is FIFO (latency is monotone in scheduling order for equal
    sizes; the simulator breaks ties by scheduling order).

    Every message's size (payload plus header words) is accumulated into
    counters, from which experiments derive the "words sent / 10 cycles"
    bandwidth figures of the paper's Figure 3 and Tables 2/4.  Counters are
    also kept per message kind so the harness can attribute traffic to
    coherence, RPC, migration, or replication. *)

open Cm_engine

type t

val create :
  ?contention:bool ->
  ?link_bandwidth:int ->
  sim:Sim.t ->
  topo:Topology.t ->
  costs:Costs.t ->
  stats:Stats.t ->
  unit ->
  t
(** [create ~sim ~topo ~costs ~stats ()] is a network over [topo]
    recording into [stats].  With [contention] (default off — the cost
    model is calibrated without it), messages occupy every link of their
    dimension-ordered route for [wire words / link_bandwidth] cycles,
    store-and-forward, and queue behind other messages sharing a link;
    [link_bandwidth] defaults to 1 word/cycle.  Queueing delay is
    accumulated under ["net.contended_cycles"]. *)

val send :
  t -> src:int -> dst:int -> words:int -> kind:string -> (unit -> unit) -> int
(** [send t ~src ~dst ~words ~kind deliver] injects a message of [words]
    payload words; [deliver] runs when it arrives at [dst], and the
    assigned wire latency (including any link queueing) is returned so
    protocol models can account for it.  [kind] is a short label used
    for traffic attribution (["rpc"], ["migrate"], ["coherence"], ...).
    Self-sends ([src = dst]) are allowed and modelled as a 0-hop message
    (loopback still pays the base latency). *)

(** {1 Interned kinds}

    [send] interns its [kind] label on every call (one small hashtable
    lookup).  Subsystems on the per-message hot path — the coherence
    protocol sends several messages per miss — resolve the kind once at
    construction time and use {!send_k} instead, making traffic
    attribution two bare counter updates. *)

type kind
(** An interned message kind: the label plus its pre-resolved
    ["net.words.<kind>"] / ["net.messages.<kind>"] counters. *)

val kind : t -> string -> kind
(** [kind t name] interns [name] (idempotent).  The per-kind counters
    are created lazily on first send, so interning a kind that is never
    sent leaves the statistics untouched. *)

val kind_name : kind -> string
(** The label [kind] was interned under. *)

val send_k :
  t -> src:int -> dst:int -> words:int -> kind:kind -> (unit -> unit) -> int
(** [send_k] is {!send} with a pre-interned kind. *)

val accounted_latency : t -> now:int -> src:int -> dst:int -> words:int -> kind:kind -> int
(** [accounted_latency t ~now ~src ~dst ~words ~kind] is the latency a
    message sent now would be assigned, {e with} its traffic accounted
    (both send entry points call this; tests use it to cross-check
    {!Topology.min_positive_latency}).  [now] only timestamps the trace
    line. *)

val post_k :
  t -> src:int -> dst:int -> words:int -> kind:kind -> hid:Sim.hid -> arg:int -> int
(** [post_k] is {!send_k} with the delivery routed through a handler
    pre-registered with the simulator ({!Sim.handler}) instead of a
    closure: accounting and latency are identical, but the send allocates
    nothing — the event record is pooled and the handler receives [arg]
    (conventionally the destination processor).  The zero-allocation path
    for per-message hot senders such as the coherence controllers. *)

val set_shard : t -> Shard.t -> unit
(** [set_shard t sh] routes every subsequent send — same-shard ones
    included, so ordering keys are partition-invariant — into [sh]'s
    mailboxes for the barrier merge instead of scheduling on the
    construction sim.  Called once by {!Machine.create} when sharding;
    raises [Invalid_argument] if [t] models contention (store-and-forward
    link state is inherently cross-shard). *)

val total_words : t -> int
(** [total_words t] is the number of words (payload + headers) injected so
    far. *)

val total_messages : t -> int
(** [total_messages t] is the number of messages injected so far. *)

val words_of_kind : t -> string -> int
(** [words_of_kind t kind] is the traffic attributed to [kind]. *)

val messages_of_kind : t -> string -> int
(** [messages_of_kind t kind] is the message count attributed to [kind]. *)

val bandwidth_per_10_cycles : t -> now:int -> float
(** [bandwidth_per_10_cycles t ~now] is [total_words * 10 / now] — the
    paper's bandwidth metric. *)
