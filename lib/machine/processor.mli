(** Simulated processors.

    A processor is a FCFS resource: ready tasks queue up, and the dispatched
    task holds the CPU across its compute segments until it explicitly
    releases it (because it finished, blocked, or migrated away).  Each
    dispatch charges the cost model's scheduler overhead, matching the
    "Scheduler" row of the paper's Table 5.

    Resource contention — e.g. activations piling up at the B-tree root's
    processor — emerges from this queueing, which is the effect the paper's
    Section 4.2 analyses.

    The ready queue is a ring buffer of (continuation, argument) pairs
    and dispatch events are pooled by the simulator, so the
    enqueue/dispatch/release cycle allocates nothing — including waking a
    thread with a value ({!enqueue_app}) and delayed wakeups, which park
    the continuation in a pooled slot ({!enqueue_app_after}) instead of
    capturing it in a closure. *)

open Cm_engine

type t

val create : sim:Sim.t -> stats:Stats.t -> scheduler_cost:int -> id:int -> t
(** [create ~sim ~stats ~scheduler_cost ~id] is an idle processor.
    [scheduler_cost] cycles are charged at every task dispatch. *)

val id : t -> int
(** [id p] is the processor's index in its machine. *)

val sim : t -> Sim.t
(** [sim p] is the simulator driving this processor. *)

val enqueue : t -> (unit -> unit) -> unit
(** [enqueue p task] appends [task] to [p]'s ready queue and dispatches it
    when the CPU becomes free.  Once started, [task] owns the CPU; it (or
    the continuation chain it schedules via {!hold}) must eventually call
    {!release}. *)

val enqueue_app : t -> ('a -> unit) -> 'a -> unit
(** [enqueue_app p k v] is [enqueue p (fun () -> k v)] without building
    the wrapper: the continuation and its argument are stored side by
    side in the ring and applied at dispatch.  The zero-allocation wakeup
    path of the thread layer's frame engine. *)

val enqueue_after : t -> delay:int -> (unit -> unit) -> unit
(** [enqueue_after p ~delay task] enqueues [task] after [delay] cycles
    have elapsed.  The wait is a pooled park slot plus a pooled simulator
    event — no closure; event timing and ordering are identical to
    [Sim.after _ delay (fun () -> enqueue p task)]. *)

val enqueue_app_after : t -> delay:int -> ('a -> unit) -> 'a -> unit
(** {!enqueue_after} carrying a value, as {!enqueue_app}. *)

val hold : t -> int -> (unit -> unit) -> unit
(** [hold p n k] keeps the CPU busy for [n >= 0] cycles, then runs [k]
    (still holding the CPU).  Must only be called by the task currently
    owning the CPU. *)

val hold_post : t -> int -> Sim.hid -> int -> unit
(** [hold_post p n hid arg] is {!hold} delivering to a pooled handler
    occurrence [(hid, arg)] instead of a closure: the scheduled event
    carries ints only, so the hot hold path stores no pointer into the
    event pool.  Identical event time and ordering to {!hold}. *)

val charge : t -> int -> unit
(** [charge p n] accounts [n] already-elapsed cycles as busy time without
    scheduling anything.  Used for memory stalls, where the CPU is held
    while waiting for the coherence protocol and the duration is only
    known when the reply arrives. *)

val release : t -> unit
(** [release p] gives up the CPU; the next ready task (if any) is
    dispatched.  Must be called exactly once per dispatched task life
    segment. *)

val is_busy : t -> bool
(** [is_busy p] is true while a task owns the CPU. *)

val queue_length : t -> int
(** [queue_length p] is the number of tasks waiting (excluding a running
    one). *)

val busy_cycles : t -> int
(** [busy_cycles p] is the cumulative number of cycles the CPU has spent
    executing tasks (including scheduler dispatch overhead). *)

val utilization : t -> now:int -> float
(** [utilization p ~now] is [busy_cycles / now] (0 when [now = 0]). *)

(** {1 Pool introspection} — for tests asserting pool growth and slot
    reuse; not part of the simulation semantics. *)

val parked : t -> int
(** Number of continuations currently waiting in the park pool. *)

val park_capacity : t -> int
(** Current capacity of the park pool (grows by doubling, never shrinks). *)

val ring_capacity : t -> int
(** Current capacity of the ready ring. *)
