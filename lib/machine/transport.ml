open Cm_engine
open Thread.Infix

type recv = Recv_pipeline | Recv_bare

type fault = { drop : float; duplicate : float; delay : float; delay_cycles : int }

let no_fault = { drop = 0.0; duplicate = 0.0; delay = 0.0; delay_cycles = 0 }

(* Delivery counters of one kind label, shared by every declaration of
   that label.  They live in the transport's own registry: the machine's
   registry feeds the run digests [repro selfcheck] compares, so adding
   names there would break bit-identity with the hand-rolled senders
   this module replaced. *)
type ctrs = {
  c_name : string;
  posted_c : Stats.counter;
  delivered_c : Stats.counter;
  dropped_c : Stats.counter;
  duplicated_c : Stats.counter;
  delayed_c : Stats.counter;
}

type 'a kind = {
  ctrs : ctrs;
  net_k : Network.kind;
  recv : recv;
  handlers : ('a -> unit Thread.t) option array;  (* one endpoint slot per processor *)
  ep_delivered : int array;
  (* Pooled delivery handler (arg = destination processor): bumps the
     delivery counters without a per-message closure, the arrival path
     of payload-free injections. *)
  arrive_hid : Sim.hid;
  (* Cached fault spec, invalidated by generation when the fault
     configuration changes. *)
  mutable f_gen : int;
  mutable f_spec : fault option;
}

let obj_unit : Obj.t = Obj.repr 0

type t = {
  sim : Sim.t;
  costs : Costs.t;
  net : Network.t;
  n_procs : int;
  sharded : bool;  (* fault injection draws/timers are single-sim only *)
  spawn : on:int -> unit Thread.t -> unit;
  eng : Thread.engine;  (* the owning machine's engine: faults force CPS *)
  xstats : Stats.t;
  mutable kind_names : string list;  (* distinct labels, declaration order (reversed) *)
  mutable faults_on : bool;
  mutable fault_specs : (string * fault) list;
  mutable fault_gen : int;
  mutable frng : Rng.t;
  (* Timers of fault-delayed deliveries still pending, newest first,
     with the owning kind's dropped counter (a cancelled delivery counts
     as dropped so the in-flight accounting stays closed). *)
  mutable delay_timers : (Sim.token * Stats.counter) list;
  (* Pooled arrival frames: with faults off, every dispatch/signal
     arrival is an int slot posted through [arrive_hid] — the per-message
     arrive closure of the original path, defunctionalized.  [af_code]
     selects the action: 0 runs [af_fn] as a thunk, 1 applies [af_fn] to
     [af_arg] (reply resumptions carry the value, not a wrapper), 2
     dispatches [af_arg] as an endpoint payload. *)
  mutable af_kind : Obj.t array;
  mutable af_fn : Obj.t array;
  mutable af_arg : Obj.t array;
  mutable af_code : int array;
  mutable af_dst : int array;
  mutable af_words : int array;
  mutable af_free : int array;
  mutable af_free_top : int;
  mutable arrive_hid : Sim.hid;
}

let intern_ctrs t name =
  if not (List.mem name t.kind_names) then t.kind_names <- name :: t.kind_names;
  let c suffix = Stats.counter t.xstats ("xport." ^ name ^ "." ^ suffix) in
  {
    c_name = name;
    posted_c = c "posted";
    delivered_c = c "delivered";
    dropped_c = c "dropped";
    duplicated_c = c "duplicated";
    delayed_c = c "delayed";
  }

let kind t ?(recv = Recv_pipeline) name =
  let ctrs = intern_ctrs t name in
  let ep_delivered = Array.make t.n_procs 0 in
  (* Registered once per declaration: every payload-free arrival of this
     kind reuses it, so the steady-state inject path never allocates. *)
  let arrive_hid =
    Sim.handler t.sim (fun dst ->
        Stats.Counter.incr ctrs.delivered_c;
        ep_delivered.(dst) <- ep_delivered.(dst) + 1)
  in
  {
    ctrs;
    net_k = Network.kind t.net name;
    recv;
    handlers = Array.make t.n_procs None;
    ep_delivered;
    arrive_hid;
    f_gen = -1;
    f_spec = None;
  }

let kind_name k = k.ctrs.c_name

(* Accounting accessors for external frame-path fast paths (the
   runtime's fused call sites): exactly the counter traffic [migrate_f]'s
   steps perform, exposed so a caller that already holds the per-site
   constants need not round-trip them through the frame slots. *)
let net_kind k = k.net_k

let account_posted k = Stats.Counter.incr k.ctrs.posted_c

let account_delivered k ~pid =
  Stats.Counter.incr k.ctrs.delivered_c;
  k.ep_delivered.(pid) <- k.ep_delivered.(pid) + 1

module Endpoint = struct
  let register t ~proc ~kind handler =
    if proc < 0 || proc >= t.n_procs then
      invalid_arg
        (Printf.sprintf "Transport.Endpoint.register (%s): processor %d out of range [0,%d)"
           kind.ctrs.c_name proc t.n_procs);
    kind.handlers.(proc) <- Some handler

  let register_all t ~kind handler =
    for proc = 0 to t.n_procs - 1 do
      kind.handlers.(proc) <- Some handler
    done

  let delivered ~kind ~proc = kind.ep_delivered.(proc)
end

(* ------------------------------------------------------------------ *)
(* Fault injection                                                    *)
(* ------------------------------------------------------------------ *)

(* Arming faults forces every thread of the machine onto the CPS
   reference paths: a duplicated delivery may invoke a resumption twice,
   and the original per-suspension closures reproduce that behavior
   exactly, where a shared frame slot would misdirect the second call. *)
let configure_faults t ~seed specs =
  (* The fault path draws from one rng in global send order and parks
     delayed deliveries on one sim's timers — both meaningless when
     sends fan out over shards. *)
  if t.sharded && specs <> [] then
    invalid_arg "Transport.configure_faults: fault injection is not shardable; use ~shards:1";
  t.fault_specs <- specs;
  t.faults_on <- specs <> [];
  t.fault_gen <- t.fault_gen + 1;
  t.frng <- Rng.create ~seed;
  if t.faults_on then Thread.disable_frames t.eng else Thread.restore_frames t.eng

let clear_faults t =
  t.fault_specs <- [];
  t.faults_on <- false;
  t.fault_gen <- t.fault_gen + 1;
  Thread.restore_frames t.eng

let faults_active t = t.faults_on

let fault_spec t (k : _ kind) =
  if k.f_gen <> t.fault_gen then begin
    k.f_spec <- List.assoc_opt k.ctrs.c_name t.fault_specs;
    k.f_gen <- t.fault_gen
  end;
  k.f_spec

(* Draw only for non-zero probabilities: configuring one aspect of one
   kind does not perturb the decision stream of the others. *)
let fault_hits t p = p > 0.0 && Rng.float t.frng 1.0 < p

(* ------------------------------------------------------------------ *)
(* Transmission                                                       *)
(* ------------------------------------------------------------------ *)

(* Send one [k] message; [deliver] runs at arrival, after the delivery
   counters are bumped.  Returns the wire latency ([0] for a dropped
   message).  This is the fault/general path — the fault-free senders
   below post a pooled arrival frame instead and never build [arrive]. *)
let transmit t (k : _ kind) ~src ~dst ~words deliver =
  Stats.Counter.incr k.ctrs.posted_c;
  let arrive () =
    Stats.Counter.incr k.ctrs.delivered_c;
    k.ep_delivered.(dst) <- k.ep_delivered.(dst) + 1;
    deliver ()
  in
  if not t.faults_on then Network.send_k t.net ~src ~dst ~words ~kind:k.net_k arrive
  else
    match fault_spec t k with
    | None -> Network.send_k t.net ~src ~dst ~words ~kind:k.net_k arrive
    | Some f ->
      if fault_hits t f.drop then begin
        Stats.Counter.incr k.ctrs.dropped_c;
        0
      end
      else begin
        let arrive =
          if fault_hits t f.delay then begin
            Stats.Counter.incr k.ctrs.delayed_c;
            let extra = f.delay_cycles in
            let dropped_c = k.ctrs.dropped_c in
            (* The extra delay leg is a cancellable timer, so timeout and
               retry logic (and tests) can revoke a delivery that is
               still stuck in the delay stage. *)
            fun () ->
              let tok = Sim.timer t.sim ~delay:extra arrive in
              t.delay_timers <- (tok, dropped_c) :: t.delay_timers
          end
          else arrive
        in
        let latency = Network.send_k t.net ~src ~dst ~words ~kind:k.net_k arrive in
        if fault_hits t f.duplicate then begin
          Stats.Counter.incr k.ctrs.duplicated_c;
          let (_ : int) = Network.send_k t.net ~src ~dst ~words ~kind:k.net_k arrive in
          ()
        end;
        latency
      end

(* --- pooled arrival frames ----------------------------------------- *)

let af_grow t =
  let cap = Array.length t.af_code in
  let ncap = 2 * cap in
  let copy_obj (a : Obj.t array) =
    let n = Array.make ncap obj_unit in
    Array.blit a 0 n 0 cap;
    n
  in
  let copy_int (a : int array) =
    let n = Array.make ncap 0 in
    Array.blit a 0 n 0 cap;
    n
  in
  t.af_kind <- copy_obj t.af_kind;
  t.af_fn <- copy_obj t.af_fn;
  t.af_arg <- copy_obj t.af_arg;
  t.af_code <- copy_int t.af_code;
  t.af_dst <- copy_int t.af_dst;
  t.af_words <- copy_int t.af_words;
  t.af_free <- copy_int t.af_free;
  for i = 0 to cap - 1 do
    t.af_free.(t.af_free_top + i) <- cap + i
  done;
  t.af_free_top <- t.af_free_top + cap

(* Post one fault-free message whose arrival action is described by a
   pooled frame slot: counter bumps and the action dispatch happen in
   the transport-wide [arrive_hid] handler, so the send path allocates
   nothing.  Latency accounting and event ordering are identical to
   [transmit]'s closure path ([Network.post_k] = [send_k]). *)
let send_pooled t (k : _ kind) ~src ~dst ~words ~code ~fn ~arg =
  Stats.Counter.incr k.ctrs.posted_c;
  if t.af_free_top = 0 then af_grow t;
  t.af_free_top <- t.af_free_top - 1;
  let slot = t.af_free.(t.af_free_top) in
  t.af_kind.(slot) <- Obj.repr k;
  t.af_fn.(slot) <- fn;
  t.af_arg.(slot) <- arg;
  t.af_code.(slot) <- code;
  t.af_dst.(slot) <- dst;
  t.af_words.(slot) <- words;
  let (_ : int) =
    Network.post_k t.net ~src ~dst ~words ~kind:k.net_k ~hid:t.arrive_hid ~arg:slot
  in
  ()

(* Receive-pipeline charge in front of an endpoint handler.  The frame
   path parks the handler and payload in the fresh thread's slots; the
   CPS path is the bind chain of the original dispatch. *)
let recv_step c =
  let handler : Obj.t -> unit Thread.t = Thread.Frame.getv0 c in
  let payload : Obj.t = Thread.Frame.getv1 c in
  let k : unit -> unit = Obj.magic (Thread.Frame.take_k c) in
  handler payload c k

let recv_piped cost (handler : Obj.t -> unit Thread.t) (payload : Obj.t) : unit Thread.t =
 fun c kont ->
  if Thread.Frame.on c then begin
    Thread.Frame.save_k c kont;
    Thread.Frame.setv0 c handler;
    Thread.Frame.setv1 c payload;
    Thread.Frame.hold_then c cost recv_step
  end
  else Thread.compute cost c (fun () -> handler payload c kont)

(* Arrival action of a code-2 frame: look up the endpoint and start the
   handler thread, charging reception per the kind's [recv] mode. *)
let deliver_payload t (k : Obj.t kind) ~dst ~words (payload : Obj.t) =
  match k.handlers.(dst) with
  | None ->
    invalid_arg
      (Printf.sprintf "Transport: no %S endpoint registered at processor %d" k.ctrs.c_name dst)
  | Some handler -> (
    match k.recv with
    | Recv_bare -> t.spawn ~on:dst (handler payload)
    | Recv_pipeline ->
      t.spawn ~on:dst
        (recv_piped (Costs.recv_pipeline t.costs ~words ~new_thread:true) handler payload))

let af_arrive t slot =
  let k : Obj.t kind = Obj.obj t.af_kind.(slot) in
  let fn = t.af_fn.(slot) in
  let arg = t.af_arg.(slot) in
  let code = t.af_code.(slot) in
  let dst = t.af_dst.(slot) in
  let words = t.af_words.(slot) in
  t.af_kind.(slot) <- obj_unit;
  t.af_fn.(slot) <- obj_unit;
  t.af_arg.(slot) <- obj_unit;
  t.af_free.(t.af_free_top) <- slot;
  t.af_free_top <- t.af_free_top + 1;
  Stats.Counter.incr k.ctrs.delivered_c;
  k.ep_delivered.(dst) <- k.ep_delivered.(dst) + 1;
  if code = 0 then (Obj.obj fn : unit -> unit) ()
  else if code = 1 then (Obj.obj fn : Obj.t -> unit) arg
  else deliver_payload t k ~dst ~words arg

let create ~sharded ~sim ~costs ~net ~procs ~spawn ~eng =
  let self = ref None in
  let t =
    {
      sim;
      costs;
      net;
      n_procs = Array.length procs;
      sharded;
      spawn;
      eng;
      xstats = Stats.create ();
      kind_names = [];
      faults_on = false;
      fault_specs = [];
      fault_gen = 0;
      frng = Rng.create ~seed:0;
      delay_timers = [];
      af_kind = Array.make 16 obj_unit;
      af_fn = Array.make 16 obj_unit;
      af_arg = Array.make 16 obj_unit;
      af_code = Array.make 16 0;
      af_dst = Array.make 16 0;
      af_words = Array.make 16 0;
      af_free = Array.init 16 (fun i -> i);
      af_free_top = 16;
      arrive_hid = Sim.handler sim (fun _ -> assert false);
    }
  in
  let hid =
    Sim.handler sim (fun slot ->
        match !self with Some t -> af_arrive t slot | None -> assert false)
  in
  t.arrive_hid <- hid;
  self := Some t;
  t

(* --- raw sends ------------------------------------------------------ *)

let dispatch_slow t (k : 'a kind) ~src ~dst ~words payload =
  let deliver () =
    match k.handlers.(dst) with
    | None ->
      invalid_arg
        (Printf.sprintf "Transport: no %S endpoint registered at processor %d" k.ctrs.c_name
           dst)
    | Some handler ->
      t.spawn ~on:dst
        (match k.recv with
        | Recv_pipeline ->
          let* () =
            Thread.compute (Costs.recv_pipeline t.costs ~words ~new_thread:true)
          in
          handler payload
        | Recv_bare -> handler payload)
  in
  let (_ : int) = transmit t k ~src ~dst ~words deliver in
  ()

let dispatch t (k : 'a kind) ~src ~dst ~words payload =
  if t.faults_on then dispatch_slow t k ~src ~dst ~words payload
  else send_pooled t k ~src ~dst ~words ~code:2 ~fn:obj_unit ~arg:(Obj.repr payload)

let signal_slow t k ~src ~dst ~words deliver =
  let (_ : int) = transmit t k ~src ~dst ~words deliver in
  ()

let signal t k ~src ~dst ~words deliver =
  if t.faults_on then signal_slow t k ~src ~dst ~words deliver
  else send_pooled t k ~src ~dst ~words ~code:0 ~fn:(Obj.repr deliver) ~arg:obj_unit

let signal_app t k ~src ~dst ~words (fn : 'a -> unit) (v : 'a) =
  if t.faults_on then signal_slow t k ~src ~dst ~words (fun () -> fn v)
  else send_pooled t k ~src ~dst ~words ~code:1 ~fn:(Obj.repr fn) ~arg:(Obj.repr v)

(* Payload-free injection is the per-message hot path of the coherence
   controllers (several messages per miss): with faults off it posts the
   kind's pooled arrival handler straight through the network — no
   arrival closure, no event allocation. *)
let inject t k ~src ~dst ~words =
  if not t.faults_on then begin
    Stats.Counter.incr k.ctrs.posted_c;
    Network.post_k t.net ~src ~dst ~words ~kind:k.net_k ~hid:k.arrive_hid ~arg:dst
  end
  else transmit t k ~src ~dst ~words ignore

let cancel_pending_delays t =
  let cancelled =
    List.fold_left
      (fun acc (tok, dropped_c) ->
        if Sim.cancel t.sim tok then begin
          (* The delivery will never happen: account it as dropped so
             [inflight]/[check_all_delivered] stay closed. *)
          Stats.Counter.incr dropped_c;
          acc + 1
        end
        else acc)
      0 t.delay_timers
  in
  t.delay_timers <- [];
  cancelled

(* ------------------------------------------------------------------ *)
(* Monadic senders                                                    *)
(* ------------------------------------------------------------------ *)

(* Each sender has a frame fast path (statically-allocated steps over
   the thread's frame slots — see Thread.Frame) and the original CPS
   monad, kept verbatim in the [_cps] sibling as the reference engine.
   Both schedule identical events; the oracle in test/ compares their
   digests. *)

let post_cps t k ~dst ~words payload =
  let* p = Thread.proc in
  let* () = Thread.compute (Costs.send_pipeline t.costs ~words) in
  fun _ctx kont ->
    dispatch t k ~src:(Processor.id p) ~dst ~words payload;
    kont ()

let post_step c =
  let t : t = Thread.Frame.getv0 c in
  let k : Obj.t kind = Thread.Frame.getv1 c in
  let payload : Obj.t = Thread.Frame.getv2 c in
  let dst = Thread.Frame.geti1 c in
  let words = Thread.Frame.geti2 c in
  dispatch t k ~src:(Processor.id (Thread.Frame.proc c)) ~dst ~words payload;
  Thread.Frame.call_k c ()

let post t k ~dst ~words payload c kont =
  if Thread.Frame.on c then begin
    Thread.Frame.save_k c kont;
    Thread.Frame.setv0 c t;
    Thread.Frame.setv1 c k;
    Thread.Frame.setv2 c payload;
    Thread.Frame.seti1 c dst;
    Thread.Frame.seti2 c words;
    Thread.Frame.hold_then c (Costs.send_pipeline t.costs ~words) post_step
  end
  else post_cps t k ~dst ~words payload c kont

let notify_cps t k ~dst ~words deliver =
  let* p = Thread.proc in
  let* () = Thread.compute (Costs.send_pipeline t.costs ~words) in
  fun _ctx kont ->
    signal t k ~src:(Processor.id p) ~dst ~words deliver;
    kont ()

let notify_step c =
  let t : t = Thread.Frame.getv0 c in
  let k : Obj.t kind = Thread.Frame.getv1 c in
  let deliver : unit -> unit = Thread.Frame.getv2 c in
  let dst = Thread.Frame.geti1 c in
  let words = Thread.Frame.geti2 c in
  signal t k ~src:(Processor.id (Thread.Frame.proc c)) ~dst ~words deliver;
  Thread.Frame.call_k c ()

let notify t k ~dst ~words deliver c kont =
  if Thread.Frame.on c then begin
    Thread.Frame.save_k c kont;
    Thread.Frame.setv0 c t;
    Thread.Frame.setv1 c k;
    Thread.Frame.setv2 c deliver;
    Thread.Frame.seti1 c dst;
    Thread.Frame.seti2 c words;
    Thread.Frame.hold_then c (Costs.send_pipeline t.costs ~words) notify_step
  end
  else notify_cps t k ~dst ~words deliver c kont

let notify_app_step c =
  let t : t = Thread.Frame.getv0 c in
  let k : Obj.t kind = Thread.Frame.getv1 c in
  let fn : Obj.t -> unit = Thread.Frame.getv2 c in
  let v : Obj.t = Thread.Frame.getv3 c in
  let dst = Thread.Frame.geti1 c in
  let words = Thread.Frame.geti2 c in
  signal_app t k ~src:(Processor.id (Thread.Frame.proc c)) ~dst ~words fn v;
  Thread.Frame.call_k c ()

let notify_app t k ~dst ~words (fn : 'a -> unit) (v : 'a) c kont =
  if Thread.Frame.on c then begin
    Thread.Frame.save_k c kont;
    Thread.Frame.setv0 c t;
    Thread.Frame.setv1 c k;
    Thread.Frame.setv2 c fn;
    Thread.Frame.setv3 c v;
    Thread.Frame.seti1 c dst;
    Thread.Frame.seti2 c words;
    Thread.Frame.hold_then c (Costs.send_pipeline t.costs ~words) notify_app_step
  end
  else notify_cps t k ~dst ~words (fun () -> fn v) c kont

(* --- call: full RPC ------------------------------------------------- *)

let call_cps t ~req ~reply ~dst ~args_words ~result_words body =
  let* caller = Thread.proc in
  let caller_id = Processor.id caller in
  (* Client stub: marshal and send the request, then block.  The server
     side runs the payload thread at [dst] (endpoints for [req] run
     their payload), computes, and replies from wherever the body ends
     up — it may itself migrate. *)
  let* () = Thread.compute (Costs.send_pipeline t.costs ~words:args_words) in
  let* r =
    Thread.await (fun ~resume ->
        dispatch t req ~src:caller_id ~dst ~words:args_words
          (let* r = body in
           notify t reply ~dst:caller_id ~words:result_words (fun () -> resume r)))
  in
  (* Reply reception on the caller: no thread creation, just unblock. *)
  let* () = Thread.compute (Costs.recv_pipeline t.costs ~words:result_words ~new_thread:false) in
  Thread.return r

(* Server side of a frame-path reply: after the body finished, charge
   the sender pipeline at wherever it ended up, then signal the caller's
   resumption applied to the result — no reply wrapper closure. *)
let server_reply_step c =
  let resume : Obj.t -> unit = Thread.Frame.getv0 c in
  let r : Obj.t = Thread.Frame.getv1 c in
  let t : t = Thread.Frame.getv2 c in
  let reply : Obj.t kind = Thread.Frame.getv3 c in
  let caller = Thread.Frame.geti1 c in
  let words = Thread.Frame.geti2 c in
  signal_app t reply ~src:(Processor.id (Thread.Frame.proc c)) ~dst:caller ~words resume r;
  Thread.Frame.call_k c ()

(* The request payload: one closure per call (it crosses the wire and
   must survive the server body clobbering the server thread's frame
   slots), plus the reply continuation it builds when the body
   finishes. *)
let server_stub t (reply : Obj.t kind) caller_id result_words (resume : Obj.t -> unit)
    (body : Obj.t Thread.t) : unit Thread.t =
 fun sc sk ->
  body sc (fun r ->
      if Thread.Frame.on sc then begin
        Thread.Frame.save_k sc sk;
        Thread.Frame.setv0 sc resume;
        Thread.Frame.setv1 sc r;
        Thread.Frame.setv2 sc t;
        Thread.Frame.setv3 sc reply;
        Thread.Frame.seti1 sc caller_id;
        Thread.Frame.seti2 sc result_words;
        Thread.Frame.hold_then sc (Costs.send_pipeline t.costs ~words:result_words)
          server_reply_step
      end
      else notify_cps t reply ~dst:caller_id ~words:result_words (fun () -> resume r) sc sk)

let call_done_step c =
  let r : Obj.t = Thread.Frame.getv0 c in
  Thread.Frame.call_k c r

let call_recv_step c =
  let t : t = Thread.Frame.getv1 c in
  let words = Thread.Frame.geti3 c in
  Thread.Frame.hold_then c
    (Costs.recv_pipeline t.costs ~words ~new_thread:false)
    call_done_step

(* Runs from the network event delivering the reply: park the result and
   requeue the caller, exactly as an [await] resumption would; reception
   is charged after dispatch. *)
let call_reply_step c (r : Obj.t) =
  Thread.Frame.setv0 c r;
  Thread.Frame.enqueue_then c call_recv_step

let call_send_step c =
  let body : Obj.t Thread.t = Thread.Frame.getv0 c in
  let t : t = Thread.Frame.getv1 c in
  let req : unit Thread.t kind = Thread.Frame.getv2 c in
  let reply : Obj.t kind = Thread.Frame.getv3 c in
  let dst = Thread.Frame.geti1 c in
  let args_words = Thread.Frame.geti2 c in
  let result_words = Thread.Frame.geti3 c in
  let caller_id = Processor.id (Thread.Frame.proc c) in
  (* [t] stays in v1 and [result_words] in i3 for the reply step; the
     other slots are dead once the stub is built. *)
  let resume = Thread.Frame.resume c call_reply_step in
  dispatch t req ~src:caller_id ~dst ~words:args_words
    (server_stub t reply caller_id result_words resume body);
  Thread.Frame.release c

let call t ~req ~reply ~dst ~args_words ~result_words body c kont =
  if Thread.Frame.on c then begin
    Thread.Frame.save_k c kont;
    Thread.Frame.setv0 c body;
    Thread.Frame.setv1 c t;
    Thread.Frame.setv2 c req;
    Thread.Frame.setv3 c reply;
    Thread.Frame.seti1 c dst;
    Thread.Frame.seti2 c args_words;
    Thread.Frame.seti3 c result_words;
    Thread.Frame.hold_then c (Costs.send_pipeline t.costs ~words:args_words) call_send_step
  end
  else call_cps t ~req ~reply ~dst ~args_words ~result_words body c kont

(* --- migrate: ship the current continuation ------------------------- *)

let migrate_cps t k ~dst ~words ~fresh =
  let* p = Thread.proc in
  let* () = Thread.compute (Costs.send_pipeline t.costs ~words) in
  let* sent =
    fun _ctx kont ->
     Stats.Counter.incr k.ctrs.posted_c;
     let drop =
       t.faults_on
       &&
       match fault_spec t k with
       | Some f -> fault_hits t f.drop
       | None -> false
     in
     if drop then Stats.Counter.incr k.ctrs.dropped_c;
     kont (not drop)
  in
  if not sent then (
    fun _ctx _kont ->
      (* The continuation was lost with the message: the thread ends here
         (the sanitizer's [dropped] counter owns the account). *)
      Processor.release p)
  else
    let* () =
      Thread.travel_k ~net:t.net ~dst ~words ~kind:k.net_k
        ~recv_work:(Costs.recv_pipeline t.costs ~words ~new_thread:fresh)
    in
    fun _ctx kont ->
      Stats.Counter.incr k.ctrs.delivered_c;
      let d = Processor.id dst in
      k.ep_delivered.(d) <- k.ep_delivered.(d) + 1;
      kont ()

let mig_done_step c =
  let k : Obj.t kind = Thread.Frame.getv0 c in
  Stats.Counter.incr k.ctrs.delivered_c;
  let d = Processor.id (Thread.Frame.proc c) in
  k.ep_delivered.(d) <- k.ep_delivered.(d) + 1;
  Thread.Frame.run_after2 c

let mig_send_step c =
  let k : Obj.t kind = Thread.Frame.getv0 c in
  let t : t = Thread.Frame.getv1 c in
  let dst : Processor.t = Thread.Frame.getv2 c in
  let words = Thread.Frame.geti1 c in
  let fresh = Thread.Frame.geti2 c = 1 in
  Stats.Counter.incr k.ctrs.posted_c;
  Thread.Frame.travel ~net:t.net ~dst ~words ~kind:k.net_k
    ~recv_work:(Costs.recv_pipeline t.costs ~words ~new_thread:fresh)
    ~after:mig_done_step c

let migrate_f t k ~dst ~words ~fresh ~after c =
  Thread.Frame.setv0 c k;
  Thread.Frame.setv1 c t;
  Thread.Frame.setv2 c dst;
  Thread.Frame.seti1 c words;
  Thread.Frame.seti2 c (if fresh then 1 else 0);
  Thread.Frame.set_after2 c after;
  Thread.Frame.hold_then c (Costs.send_pipeline t.costs ~words) mig_send_step

let mig_kont_step c = Thread.Frame.call_k c ()

let migrate t k ~dst ~words ~fresh c kont =
  if Thread.Frame.on c && not t.faults_on then begin
    Thread.Frame.save_k c kont;
    migrate_f t k ~dst ~words ~fresh ~after:mig_kont_step c
  end
  else migrate_cps t k ~dst ~words ~fresh c kont

(* ------------------------------------------------------------------ *)
(* Accounting                                                         *)
(* ------------------------------------------------------------------ *)

let stats t = t.xstats

let counter_of t name suffix = Stats.get t.xstats ("xport." ^ name ^ "." ^ suffix)

let posted t name = counter_of t name "posted"

let delivered t name = counter_of t name "delivered"

let dropped t name = counter_of t name "dropped"

let inflight t name =
  counter_of t name "posted"
  + counter_of t name "duplicated"
  - counter_of t name "delivered"
  - counter_of t name "dropped"

let inflight_total t = List.fold_left (fun acc name -> acc + inflight t name) 0 t.kind_names

let check_all_delivered t =
  List.iter
    (fun name ->
      let n = inflight t name in
      Check.require (n = 0) "Transport: %d %S message(s) posted but never delivered" n name)
    (List.rev t.kind_names)
