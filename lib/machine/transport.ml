open Cm_engine
open Thread.Infix

type recv = Recv_pipeline | Recv_bare

type fault = { drop : float; duplicate : float; delay : float; delay_cycles : int }

let no_fault = { drop = 0.0; duplicate = 0.0; delay = 0.0; delay_cycles = 0 }

(* Delivery counters of one kind label, shared by every declaration of
   that label.  They live in the transport's own registry: the machine's
   registry feeds the run digests [repro selfcheck] compares, so adding
   names there would break bit-identity with the hand-rolled senders
   this module replaced. *)
type ctrs = {
  c_name : string;
  posted_c : Stats.counter;
  delivered_c : Stats.counter;
  dropped_c : Stats.counter;
  duplicated_c : Stats.counter;
  delayed_c : Stats.counter;
}

type 'a kind = {
  ctrs : ctrs;
  net_k : Network.kind;
  recv : recv;
  handlers : ('a -> unit Thread.t) option array;  (* one endpoint slot per processor *)
  ep_delivered : int array;
  (* Pooled delivery handler (arg = destination processor): bumps the
     delivery counters without a per-message closure, the arrival path
     of payload-free injections. *)
  arrive_hid : Sim.hid;
  (* Cached fault spec, invalidated by generation when the fault
     configuration changes. *)
  mutable f_gen : int;
  mutable f_spec : fault option;
}

type t = {
  sim : Sim.t;
  costs : Costs.t;
  net : Network.t;
  n_procs : int;
  spawn : on:int -> unit Thread.t -> unit;
  xstats : Stats.t;
  mutable kind_names : string list;  (* distinct labels, declaration order (reversed) *)
  mutable faults_on : bool;
  mutable fault_specs : (string * fault) list;
  mutable fault_gen : int;
  mutable frng : Rng.t;
  (* Timers of fault-delayed deliveries still pending, newest first,
     with the owning kind's dropped counter (a cancelled delivery counts
     as dropped so the in-flight accounting stays closed). *)
  mutable delay_timers : (Sim.token * Stats.counter) list;
}

let create ~sim ~costs ~net ~procs ~spawn =
  {
    sim;
    costs;
    net;
    n_procs = Array.length procs;
    spawn;
    xstats = Stats.create ();
    kind_names = [];
    faults_on = false;
    fault_specs = [];
    fault_gen = 0;
    frng = Rng.create ~seed:0;
    delay_timers = [];
  }

let intern_ctrs t name =
  if not (List.mem name t.kind_names) then t.kind_names <- name :: t.kind_names;
  let c suffix = Stats.counter t.xstats ("xport." ^ name ^ "." ^ suffix) in
  {
    c_name = name;
    posted_c = c "posted";
    delivered_c = c "delivered";
    dropped_c = c "dropped";
    duplicated_c = c "duplicated";
    delayed_c = c "delayed";
  }

let kind t ?(recv = Recv_pipeline) name =
  let ctrs = intern_ctrs t name in
  let ep_delivered = Array.make t.n_procs 0 in
  (* Registered once per declaration: every payload-free arrival of this
     kind reuses it, so the steady-state inject path never allocates. *)
  let arrive_hid =
    Sim.handler t.sim (fun dst ->
        Stats.Counter.incr ctrs.delivered_c;
        ep_delivered.(dst) <- ep_delivered.(dst) + 1)
  in
  {
    ctrs;
    net_k = Network.kind t.net name;
    recv;
    handlers = Array.make t.n_procs None;
    ep_delivered;
    arrive_hid;
    f_gen = -1;
    f_spec = None;
  }

let kind_name k = k.ctrs.c_name

module Endpoint = struct
  let register t ~proc ~kind handler =
    if proc < 0 || proc >= t.n_procs then
      invalid_arg
        (Printf.sprintf "Transport.Endpoint.register (%s): processor %d out of range [0,%d)"
           kind.ctrs.c_name proc t.n_procs);
    kind.handlers.(proc) <- Some handler

  let register_all t ~kind handler =
    for proc = 0 to t.n_procs - 1 do
      kind.handlers.(proc) <- Some handler
    done

  let delivered ~kind ~proc = kind.ep_delivered.(proc)
end

(* ------------------------------------------------------------------ *)
(* Fault injection                                                    *)
(* ------------------------------------------------------------------ *)

let configure_faults t ~seed specs =
  t.fault_specs <- specs;
  t.faults_on <- specs <> [];
  t.fault_gen <- t.fault_gen + 1;
  t.frng <- Rng.create ~seed

let clear_faults t =
  t.fault_specs <- [];
  t.faults_on <- false;
  t.fault_gen <- t.fault_gen + 1

let faults_active t = t.faults_on

let fault_spec t (k : _ kind) =
  if k.f_gen <> t.fault_gen then begin
    k.f_spec <- List.assoc_opt k.ctrs.c_name t.fault_specs;
    k.f_gen <- t.fault_gen
  end;
  k.f_spec

(* Draw only for non-zero probabilities: configuring one aspect of one
   kind does not perturb the decision stream of the others. *)
let fault_hits t p = p > 0.0 && Rng.float t.frng 1.0 < p

(* ------------------------------------------------------------------ *)
(* Transmission                                                       *)
(* ------------------------------------------------------------------ *)

(* Send one [k] message; [deliver] runs at arrival, after the delivery
   counters are bumped.  Returns the wire latency ([0] for a dropped
   message).  The fault-free path is two counter bumps around
   [Network.send_k] — no draws, no extra events. *)
let transmit t (k : _ kind) ~src ~dst ~words deliver =
  Stats.Counter.incr k.ctrs.posted_c;
  let arrive () =
    Stats.Counter.incr k.ctrs.delivered_c;
    k.ep_delivered.(dst) <- k.ep_delivered.(dst) + 1;
    deliver ()
  in
  if not t.faults_on then Network.send_k t.net ~src ~dst ~words ~kind:k.net_k arrive
  else
    match fault_spec t k with
    | None -> Network.send_k t.net ~src ~dst ~words ~kind:k.net_k arrive
    | Some f ->
      if fault_hits t f.drop then begin
        Stats.Counter.incr k.ctrs.dropped_c;
        0
      end
      else begin
        let arrive =
          if fault_hits t f.delay then begin
            Stats.Counter.incr k.ctrs.delayed_c;
            let extra = f.delay_cycles in
            let dropped_c = k.ctrs.dropped_c in
            (* The extra delay leg is a cancellable timer, so timeout and
               retry logic (and tests) can revoke a delivery that is
               still stuck in the delay stage. *)
            fun () ->
              let tok = Sim.timer t.sim ~delay:extra arrive in
              t.delay_timers <- (tok, dropped_c) :: t.delay_timers
          end
          else arrive
        in
        let latency = Network.send_k t.net ~src ~dst ~words ~kind:k.net_k arrive in
        if fault_hits t f.duplicate then begin
          Stats.Counter.incr k.ctrs.duplicated_c;
          let (_ : int) = Network.send_k t.net ~src ~dst ~words ~kind:k.net_k arrive in
          ()
        end;
        latency
      end

let dispatch t (k : 'a kind) ~src ~dst ~words payload =
  let deliver () =
    match k.handlers.(dst) with
    | None ->
      invalid_arg
        (Printf.sprintf "Transport: no %S endpoint registered at processor %d" k.ctrs.c_name
           dst)
    | Some handler ->
      t.spawn ~on:dst
        (match k.recv with
        | Recv_pipeline ->
          let* () =
            Thread.compute (Costs.recv_pipeline t.costs ~words ~new_thread:true)
          in
          handler payload
        | Recv_bare -> handler payload)
  in
  let (_ : int) = transmit t k ~src ~dst ~words deliver in
  ()

let signal t k ~src ~dst ~words deliver =
  let (_ : int) = transmit t k ~src ~dst ~words deliver in
  ()

(* Payload-free injection is the per-message hot path of the coherence
   controllers (several messages per miss): with faults off it posts the
   kind's pooled arrival handler straight through the network — no
   arrival closure, no event allocation. *)
let inject t k ~src ~dst ~words =
  if not t.faults_on then begin
    Stats.Counter.incr k.ctrs.posted_c;
    Network.post_k t.net ~src ~dst ~words ~kind:k.net_k ~hid:k.arrive_hid ~arg:dst
  end
  else transmit t k ~src ~dst ~words ignore

let cancel_pending_delays t =
  let cancelled =
    List.fold_left
      (fun acc (tok, dropped_c) ->
        if Sim.cancel t.sim tok then begin
          (* The delivery will never happen: account it as dropped so
             [inflight]/[check_all_delivered] stay closed. *)
          Stats.Counter.incr dropped_c;
          acc + 1
        end
        else acc)
      0 t.delay_timers
  in
  t.delay_timers <- [];
  cancelled

(* ------------------------------------------------------------------ *)
(* Monadic senders                                                    *)
(* ------------------------------------------------------------------ *)

let post t k ~dst ~words payload =
  let* p = Thread.proc in
  let* () = Thread.compute (Costs.send_pipeline t.costs ~words) in
  fun _ctx kont ->
    dispatch t k ~src:(Processor.id p) ~dst ~words payload;
    kont ()

let notify t k ~dst ~words deliver =
  let* p = Thread.proc in
  let* () = Thread.compute (Costs.send_pipeline t.costs ~words) in
  fun _ctx kont ->
    signal t k ~src:(Processor.id p) ~dst ~words deliver;
    kont ()

let call t ~req ~reply ~dst ~args_words ~result_words body =
  let* caller = Thread.proc in
  let caller_id = Processor.id caller in
  (* Client stub: marshal and send the request, then block.  The server
     side runs the payload thread at [dst] (endpoints for [req] run
     their payload), computes, and replies from wherever the body ends
     up — it may itself migrate. *)
  let* () = Thread.compute (Costs.send_pipeline t.costs ~words:args_words) in
  let* r =
    Thread.await (fun ~resume ->
        dispatch t req ~src:caller_id ~dst ~words:args_words
          (let* r = body in
           notify t reply ~dst:caller_id ~words:result_words (fun () -> resume r)))
  in
  (* Reply reception on the caller: no thread creation, just unblock. *)
  let* () = Thread.compute (Costs.recv_pipeline t.costs ~words:result_words ~new_thread:false) in
  Thread.return r

let migrate t k ~dst ~words ~fresh =
  let* p = Thread.proc in
  let* () = Thread.compute (Costs.send_pipeline t.costs ~words) in
  let* sent =
    fun _ctx kont ->
     Stats.Counter.incr k.ctrs.posted_c;
     let drop =
       t.faults_on
       &&
       match fault_spec t k with
       | Some f -> fault_hits t f.drop
       | None -> false
     in
     if drop then Stats.Counter.incr k.ctrs.dropped_c;
     kont (not drop)
  in
  if not sent then (
    fun _ctx _kont ->
      (* The continuation was lost with the message: the thread ends here
         (the sanitizer's [dropped] counter owns the account). *)
      Processor.release p)
  else
    let* () =
      Thread.travel_k ~net:t.net ~dst ~words ~kind:k.net_k
        ~recv_work:(Costs.recv_pipeline t.costs ~words ~new_thread:fresh)
    in
    fun _ctx kont ->
      Stats.Counter.incr k.ctrs.delivered_c;
      let d = Processor.id dst in
      k.ep_delivered.(d) <- k.ep_delivered.(d) + 1;
      kont ()

(* ------------------------------------------------------------------ *)
(* Accounting                                                         *)
(* ------------------------------------------------------------------ *)

let stats t = t.xstats

let counter_of t name suffix = Stats.get t.xstats ("xport." ^ name ^ "." ^ suffix)

let posted t name = counter_of t name "posted"

let delivered t name = counter_of t name "delivered"

let dropped t name = counter_of t name "dropped"

let inflight t name =
  counter_of t name "posted"
  + counter_of t name "duplicated"
  - counter_of t name "delivered"
  - counter_of t name "dropped"

let inflight_total t = List.fold_left (fun acc name -> acc + inflight t name) 0 t.kind_names

let check_all_delivered t =
  List.iter
    (fun name ->
      let n = inflight t name in
      Check.require (n = 0) "Transport: %d %S message(s) posted but never delivered" n name)
    (List.rev t.kind_names)
