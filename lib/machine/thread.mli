(** Simulated lightweight threads.

    A thread is a value of type ['a t] — a computation in
    continuation-passing style over a mutable thread context.  The
    continuation is a first-class OCaml value, which is exactly the piece
    of state that computation migration ships between processors: the
    {!travel} primitive sends the current continuation to another
    processor, where it resumes with the context's processor rebound.

    Threads cooperate with the processor model: a running thread owns its
    CPU between dispatch and the next blocking point ({!await}, {!sleep},
    {!travel}, or termination); {!compute} advances simulated time while
    keeping the CPU. *)

open Cm_engine

type ctx
(** A thread's identity and current location. *)

type 'a t = ctx -> ('a -> unit) -> unit
(** A computation producing an ['a], parameterized by the thread context
    and its continuation. *)

(** {1 Monad} *)

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t

module Infix : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
  val ( >>= ) : 'a t -> ('a -> 'b t) -> 'b t
end

(** {1 Context access} *)

val tid : int t
(** The thread's identifier (unique per spawn within a machine). *)

val proc : Processor.t t
(** The processor the thread is currently running on. *)

val rng : Rng.t t
(** The thread's private random stream. *)

(** {1 Time and scheduling} *)

val compute : int -> unit t
(** [compute n] spends [n] cycles of CPU work on the current processor. *)

val yield : unit t
(** [yield] releases the CPU and requeues the thread at the back of the
    current processor's ready queue. *)

val sleep : int -> unit t
(** [sleep n] releases the CPU for at least [n] cycles, then requeues the
    thread (used for think times and lock backoff). *)

val await : (resume:('a -> unit) -> unit) -> 'a t
(** [await register] blocks the thread: [register ~resume] is called with a
    resumption function and must arrange for [resume v] to be invoked by a
    later simulation event (never synchronously); the CPU is released in
    the meantime and the thread continues with [v] on its original
    processor once re-dispatched. *)

val stall : (resume:('a -> unit) -> unit) -> 'a t
(** [stall register] is like {!await} except that the CPU is {e not}
    released: the processor stalls (as on a cache miss in a
    non-multithreaded machine) until [resume v] is invoked by a later
    simulation event, and the stalled cycles are charged as busy time.
    The continuation runs directly from the resuming event. *)

val travel :
  net:Network.t ->
  dst:Processor.t ->
  words:int ->
  kind:string ->
  recv_work:int ->
  unit t
(** [travel ~net ~dst ~words ~kind ~recv_work] migrates the thread's
    continuation to [dst]: one [kind] message of [words] payload words is
    sent, the source CPU is released, and on delivery the continuation
    queues at [dst], paying [recv_work] cycles of receive-pipeline work
    once dispatched.  After [travel], {!proc} is [dst].  A no-op message is
    still sent when [dst] is the current processor (callers should test
    locality first — the runtime's forwarding check does). *)

val travel_k :
  net:Network.t ->
  dst:Processor.t ->
  words:int ->
  kind:Network.kind ->
  recv_work:int ->
  unit t
(** {!travel} with a pre-interned message kind — callers that migrate on
    every access resolve the kind once at setup instead of per message. *)

(** {1 Spawning} *)

val spawn :
  tid:int ->
  ?rng:Rng.t ->
  ?on_exit:('a -> unit) ->
  Processor.t ->
  'a t ->
  unit
(** [spawn ~tid proc body] creates thread [tid] and queues it on
    [proc].  When [body] finishes with value [v], [on_exit v] runs and
    the CPU is released.  [tid] is required: thread numbering is owned
    by the machine instance ({!Machine.spawn} numbers from a
    per-machine counter), never by process-global state, so tids — and
    the default per-thread RNG seeds derived from them — restart at
    every [Machine.create] and cannot bleed across runs or domains.
    When [rng] is omitted the stream is seeded with [tid + 1]. *)

(** {1 Combinators} *)

val iter_list : ('a -> unit t) -> 'a list -> unit t
(** [iter_list f xs] runs [f] on each element in order. *)

val repeat : int -> (int -> unit t) -> unit t
(** [repeat n f] runs [f 0], ..., [f (n-1)] in order. *)

val while_ : (unit -> bool) -> unit t -> unit t
(** [while_ cond body] runs [body] as long as [cond ()] holds.  [body]
    must contain at least one time-advancing operation, or the simulation
    would loop at the current instant. *)

val ignore_m : 'a t -> unit t
(** [ignore_m m] runs [m] and discards its result. *)
