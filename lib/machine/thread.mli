(** Simulated lightweight threads.

    A thread is a value of type ['a t] — a computation in
    continuation-passing style over a mutable thread context.  The
    continuation is a first-class OCaml value, which is exactly the piece
    of state that computation migration ships between processors: the
    {!travel} primitive sends the current continuation to another
    processor, where it resumes with the context's processor rebound.

    Threads cooperate with the processor model: a running thread owns its
    CPU between dispatch and the next blocking point ({!await}, {!sleep},
    {!travel}, or termination); {!compute} advances simulated time while
    keeping the CPU. *)

open Cm_engine

type ctx
(** A thread's identity and current location, plus its reusable
    continuation frame (see {!Frame}). *)

(** {1 Execution engines}

    Two interchangeable engines drive a thread's blocking points: the
    default {e frame} engine defunctionalizes suspensions into pooled
    per-thread frame slots (zero steady-state allocation), while the
    {e CPS} engine is the original closure-per-suspension reference,
    retained for the digest-equivalence oracle and paired A/B
    benchmarks.  Both schedule identical events — run digests are
    bit-identical.  The frame paths fall back to the CPS reference
    dynamically while sanitizers ([Check]) or transport fault injection
    are active. *)

type engine

val frames_engine : unit -> engine
(** A fresh engine with the frame fast paths enabled (the default). *)

val cps_engine : unit -> engine
(** A fresh engine forcing the CPS reference paths. *)

val disable_frames : engine -> unit
(** Dynamically force the CPS paths (used while faults are armed). *)

val restore_frames : engine -> unit
(** Undo {!disable_frames}, restoring the engine's configured variant. *)

val frames_enabled : engine -> bool

type 'a t = ctx -> ('a -> unit) -> unit
(** A computation producing an ['a], parameterized by the thread context
    and its continuation. *)

(** {1 Monad} *)

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t

module Infix : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
  val ( >>= ) : 'a t -> ('a -> 'b t) -> 'b t
end

(** {1 Context access} *)

val tid : int t
(** The thread's identifier (unique per spawn within a machine). *)

val proc : Processor.t t
(** The processor the thread is currently running on. *)

val rng : Rng.t t
(** The thread's private random stream. *)

(** {1 Time and scheduling} *)

val compute : int -> unit t
(** [compute n] spends [n] cycles of CPU work on the current processor. *)

val yield : unit t
(** [yield] releases the CPU and requeues the thread at the back of the
    current processor's ready queue. *)

val sleep : int -> unit t
(** [sleep n] releases the CPU for at least [n] cycles, then requeues the
    thread (used for think times and lock backoff). *)

val await : (resume:('a -> unit) -> unit) -> 'a t
(** [await register] blocks the thread: [register ~resume] is called with a
    resumption function and must arrange for [resume v] to be invoked by a
    later simulation event (never synchronously); the CPU is released in
    the meantime and the thread continues with [v] on its original
    processor once re-dispatched. *)

val stall : (resume:('a -> unit) -> unit) -> 'a t
(** [stall register] is like {!await} except that the CPU is {e not}
    released: the processor stalls (as on a cache miss in a
    non-multithreaded machine) until [resume v] is invoked by a later
    simulation event, and the stalled cycles are charged as busy time.
    The continuation runs directly from the resuming event. *)

val travel :
  net:Network.t ->
  dst:Processor.t ->
  words:int ->
  kind:string ->
  recv_work:int ->
  unit t
(** [travel ~net ~dst ~words ~kind ~recv_work] migrates the thread's
    continuation to [dst]: one [kind] message of [words] payload words is
    sent, the source CPU is released, and on delivery the continuation
    queues at [dst], paying [recv_work] cycles of receive-pipeline work
    once dispatched.  After [travel], {!proc} is [dst].  A no-op message is
    still sent when [dst] is the current processor (callers should test
    locality first — the runtime's forwarding check does). *)

val travel_k :
  net:Network.t ->
  dst:Processor.t ->
  words:int ->
  kind:Network.kind ->
  recv_work:int ->
  unit t
(** {!travel} with a pre-interned message kind — callers that migrate on
    every access resolve the kind once at setup instead of per message. *)

(** {1 Spawning} *)

val spawn :
  tid:int ->
  ?rng:Rng.t ->
  ?on_exit:('a -> unit) ->
  ?engine:engine ->
  Processor.t ->
  'a t ->
  unit
(** [spawn ~tid proc body] creates thread [tid] and queues it on
    [proc].  When [body] finishes with value [v], [on_exit v] runs and
    the CPU is released.  [tid] is required: thread numbering is owned
    by the machine instance ({!Machine.spawn} numbers from a
    per-machine counter), never by process-global state, so tids — and
    the default per-thread RNG seeds derived from them — restart at
    every [Machine.create] and cannot bleed across runs or domains.
    When [rng] is omitted the stream is seeded with [tid + 1].  [engine]
    selects the execution engine (a fresh frame engine when omitted);
    [Machine.spawn] passes its machine's engine so fault gating applies
    to every thread of the machine. *)

(** {1 Combinators} *)

val iter_list : ('a -> unit t) -> 'a list -> unit t
(** [iter_list f xs] runs [f] on each element in order. *)

val repeat : int -> (int -> unit t) -> unit t
(** [repeat n f] runs [f 0], ..., [f (n-1)] in order. *)

val while_ : (unit -> bool) -> unit t -> unit t
(** [while_ cond body] runs [body] as long as [cond ()] holds.  [body]
    must contain at least one time-advancing operation, or the simulation
    would loop at the current instant. *)

val while_ctx : (ctx -> bool) -> unit t -> unit t
(** [while_ctx cond body] is {!while_} with the condition given the
    thread's context, so it can consult the thread's current processor
    ({!Frame.proc}) — on a sharded machine that processor's simulator
    holds the thread's current cycle, where the machine-global clock is
    only advanced at run end.  As with a [while_] whose condition held
    at construction, the first iteration runs unconditionally. *)

val ignore_m : 'a t -> unit t
(** [ignore_m m] runs [m] and discards its result. *)

(** {1 The frame calling convention}

    Direct-style access to a thread's continuation frame, for the
    transport layer and its consumers (runtime, object migration, the
    shared-memory controllers) to build zero-allocation suspension
    chains.  A {e step} is a statically-allocated [ctx -> unit] (or
    [ctx -> Obj.t -> unit]) function reading its operands from the frame
    slots; suspending stores the step and operands and hands the
    scheduler one of the two closures preallocated at spawn.

    Discipline (DESIGN.md §15): slots are only valid across {e one}
    suspension — every step must read what it needs into locals before
    starting the next blocking operation.  [v0..v2]/[i1..i2]/[after2]
    belong to the transport chain in flight, [v3]/[i3] to the consumer
    that initiated it.  Value slots are [Obj]-packed: a [setvN]/[getvN]
    pair must agree on the type, exactly as {!Processor.enqueue_app}
    pairs a continuation with its argument. *)

module Frame : sig
  type nonrec ctx = ctx

  val on : ctx -> bool
  (** Whether the frame fast paths may be used for this thread right
      now (frame engine, sanitizers off).  When false, callers must take
      their CPS reference path. *)

  val proc : ctx -> Processor.t
  (** The thread's current processor (valid for either engine). *)

  val save_k : ctx -> ('a -> unit) -> unit
  (** Park the operation's final continuation in the frame. *)

  val take_k : ctx -> (Obj.t -> unit)
  (** Read back the parked continuation (to apply it to a value of the
      type it was saved with). *)

  val call_k : ctx -> 'a -> unit
  (** Apply the parked continuation. *)

  val setv0 : ctx -> 'v -> unit
  val setv1 : ctx -> 'v -> unit
  val setv2 : ctx -> 'v -> unit
  val setv3 : ctx -> 'v -> unit
  val getv0 : ctx -> 'v
  val getv1 : ctx -> 'v
  val getv2 : ctx -> 'v
  val getv3 : ctx -> 'v
  val seti1 : ctx -> int -> unit
  val seti2 : ctx -> int -> unit
  val seti3 : ctx -> int -> unit
  val geti1 : ctx -> int
  val geti2 : ctx -> int
  val geti3 : ctx -> int

  (** {2 The method-site lane}

      Registers for fused per-object calls ({!Cm_runtime.Runtime.Msite}
      and the direct frame paths in [Objmig]/[Replicate]): five int
      operands [m0..m4], the site record slot [ms], and one boxed
      operand slot [mv].  The lane is disjoint from every slot above and
      survives {!travel} and the transport chains, so a fused call's
      operands ride through its own migration.  A method-site body owns
      the lane from entry to finish and must not start another
      method-site call meanwhile (nest through the generic {!t} monad
      instead). *)

  val setm0 : ctx -> int -> unit
  val setm1 : ctx -> int -> unit
  val setm2 : ctx -> int -> unit
  val setm3 : ctx -> int -> unit
  val setm4 : ctx -> int -> unit
  val getm0 : ctx -> int
  val getm1 : ctx -> int
  val getm2 : ctx -> int
  val getm3 : ctx -> int
  val getm4 : ctx -> int
  val setms : ctx -> 'v -> unit
  val getms : ctx -> 'v
  val setmv : ctx -> 'v -> unit
  val getmv : ctx -> 'v

  val rng : ctx -> Rng.t
  (** The thread's private random stream, read directly (either engine) —
      the direct-style equivalent of the {!Cm_machine.Thread.rng}
      monad. *)

  val set_after2 : ctx -> (ctx -> unit) -> unit
  (** Park a completion step surviving a whole transport operation
      (e.g. what to run once a migration has landed). *)

  val run_after2 : ctx -> unit

  val hold_then : ctx -> int -> (ctx -> unit) -> unit
  (** [hold_then c n step] charges [n] CPU cycles at the current
      processor, then runs [step c], still holding the CPU — the frame
      equivalent of [compute n >>= step]. *)

  val enqueue_then : ctx -> (ctx -> unit) -> unit
  (** [enqueue_then c step] requeues the thread at its current processor
      and runs [step c] once dispatched (CPU held) — what an {!await}
      resumption does.  For use from event context, where the CPU is not
      held. *)

  val resume : ctx -> (ctx -> Obj.t -> unit) -> ('a -> unit)
  (** [resume c step] installs [step] as the pending resumption and
      returns the thread's preallocated resume closure: invoking it with
      [v] runs [step c v].  The frame equivalent of an {!await}
      registration's [~resume] argument (the caller is responsible for
      releasing the CPU, as {!await} does). *)

  val stall_k : ctx -> ('a -> unit)
  (** [stall_k c] is {!resume} specialized to {!stall} semantics: the
      stalled cycles are charged as busy time when the resumption fires,
      then the continuation parked with {!save_k} runs with the value. *)

  val travel :
    net:Network.t ->
    dst:Processor.t ->
    words:int ->
    kind:Network.kind ->
    recv_work:int ->
    after:(ctx -> unit) ->
    ctx ->
    unit
  (** Frame migration: exactly {!travel_k}'s events (send, re-enqueue at
      [dst], receive-pipeline hold), with [after] running at the
      destination holding the CPU.  Releases the source CPU. *)

  val release : ctx -> unit
  (** Release the thread's current CPU (ends a dispatch segment). *)
end
