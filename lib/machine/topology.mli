(** Interconnect topologies.

    A topology maps processor-id pairs to hop counts, used by the network
    to compute wire latency.  Processors are numbered [0 .. size-1]; mesh
    and torus shapes place them in row-major order on the smallest
    near-square grid that fits. *)

type t

val mesh : int -> t
(** [mesh n] is a 2-D mesh of [n] processors with dimension-ordered
    (Manhattan-distance) routing. *)

val torus : int -> t
(** [torus n] is a 2-D torus of [n] processors (wrap-around links). *)

val crossbar : int -> t
(** [crossbar n] connects every pair of distinct processors in one hop. *)

val size : t -> int
(** [size t] is the number of processors. *)

val hops : t -> src:int -> dst:int -> int
(** [hops t ~src ~dst] is the number of network hops between [src] and
    [dst]; 0 when they are equal.  Raises [Invalid_argument] on an id out
    of range. *)

val route : t -> src:int -> dst:int -> (int * int) list
(** [route t ~src ~dst] is the ordered list of directed links a message
    crosses under dimension-ordered (X-then-Y) routing; empty when
    [src = dst].  A crossbar has a single direct link per pair. *)

val mean_hops : t -> float
(** [mean_hops t] is the average hop count over all ordered pairs of
    distinct processors — useful for calibrating latency constants. *)

val kind_name : t -> string
(** [kind_name t] is ["mesh"], ["torus"] or ["crossbar"]. *)

val min_positive_latency : t -> Costs.t -> int
(** [min_positive_latency t costs] is the conservative lookahead bound
    for parallel simulation: no message between any two processors
    (loopback included) arrives in fewer cycles than this.  Equal to the
    minimum of {!Network.accounted_latency} over all ordered (src, dst)
    pairs at zero payload words.  Raises [Invalid_argument] when the
    bound is not positive (a lookahead-free cost table cannot be sharded
    — see {!Cm_engine.Shard}). *)
