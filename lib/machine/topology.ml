type shape = Mesh | Torus | Crossbar

type t = { shape : shape; size : int; cols : int; rows : int }

let grid_dims n =
  let cols = int_of_float (ceil (sqrt (float_of_int n))) in
  let rows = (n + cols - 1) / cols in
  (cols, rows)

let make shape n =
  if n <= 0 then invalid_arg "Topology: size must be positive";
  let cols, rows = grid_dims n in
  { shape; size = n; cols; rows }

let mesh n = make Mesh n

let torus n = make Torus n

let crossbar n = make Crossbar n

let size t = t.size

let check t id =
  if id < 0 || id >= t.size then
    invalid_arg (Printf.sprintf "Topology.hops: processor %d out of range [0,%d)" id t.size)

let coords t id = (id mod t.cols, id / t.cols)

let hops t ~src ~dst =
  check t src;
  check t dst;
  if src = dst then 0
  else
    match t.shape with
    | Crossbar -> 1
    | Mesh ->
      let x1, y1 = coords t src and x2, y2 = coords t dst in
      abs (x1 - x2) + abs (y1 - y2)
    | Torus ->
      let x1, y1 = coords t src and x2, y2 = coords t dst in
      let wrap d len = min d (len - d) in
      wrap (abs (x1 - x2)) t.cols + wrap (abs (y1 - y2)) t.rows

let id_of t (x, y) = (y * t.cols) + x

(* One step toward [target] along one axis, honouring torus wrap. *)
let step_toward cur target len wrap =
  if cur = target then cur
  else begin
    let forward = (target - cur + len) mod len in
    let backward = (cur - target + len) mod len in
    if wrap && backward < forward then (cur - 1 + len) mod len
    else if wrap then (cur + 1) mod len
    else if target > cur then cur + 1
    else cur - 1
  end

let route t ~src ~dst =
  check t src;
  check t dst;
  if src = dst then []
  else
    match t.shape with
    | Crossbar -> [ (src, dst) ]
    | Mesh | Torus ->
      let wrap = t.shape = Torus in
      let rec go (x, y) acc =
        if (x, y) = coords t dst then List.rev acc
        else begin
          let tx, ty = coords t dst in
          let next =
            if x <> tx then (step_toward x tx t.cols wrap, y)
            else (x, step_toward y ty t.rows wrap)
          in
          go next ((id_of t (x, y), id_of t next) :: acc)
        end
      in
      go (coords t src) []

let mean_hops t =
  if t.size <= 1 then 0.
  else begin
    let total = ref 0 in
    for src = 0 to t.size - 1 do
      for dst = 0 to t.size - 1 do
        if src <> dst then total := !total + hops t ~src ~dst
      done
    done;
    float_of_int !total /. float_of_int (t.size * (t.size - 1))
  end

let kind_name t =
  match t.shape with Mesh -> "mesh" | Torus -> "torus" | Crossbar -> "crossbar"

(* Out of line: a non-positive bound means conservative parallel windows
   cannot make progress, and the caller must refuse sharding rather than
   deadlock or corrupt digests. *)
let[@inline never] raise_non_positive t l =
  invalid_arg
    (Printf.sprintf
       "Topology.min_positive_latency: %s of %d has minimum link latency %d <= 0 — no \
        conservative lookahead exists; run with --shards 1"
       (kind_name t) t.size l)

let min_positive_latency t costs =
  (* The smallest delay any message between two processors can have.
     Latency is monotone in hops and payload words, and loopback sends
     (src = dst, 0 hops) do occur — always-migrate policies travel to
     the local processor — so the minimum over all ordered pairs is the
     zero-hop, zero-payload transit: header words only.  [hops] is 0 for
     every shape at src = dst, making the bound shape-independent today;
     it is still computed through [Costs.transit] so a cost table with
     zero header and zero base is caught here rather than corrupting a
     sharded run. *)
  let l = Costs.transit costs ~hops:0 ~words:0 in
  if l <= 0 then raise_non_positive t l;
  l
