(** Unified message transport: typed endpoints over the network.

    Every remote interaction in the simulator — RPC stubs, migration
    hops, coherence traffic, replica updates, object moves, B-tree
    messages — is an instance of the same sequence: charge the sender
    pipeline from {!Costs}, inject a message into {!Network}, dispatch a
    handler at the destination (a fresh thread or a resumed
    continuation), and charge the receiver pipeline.  [Transport] is the
    single home for that sequence; higher layers declare {e typed
    message kinds}, register per-processor handlers ({e endpoints}), and
    send through {!post}/{!call}/{!migrate} instead of hand-rolling the
    pipeline around raw [Network.send] (which the [raw-send] lint now
    forbids outside [lib/machine]).

    The transport is {e digest-preserving} by construction: with fault
    injection off it charges exactly the cycles, schedules exactly the
    events, and touches exactly the machine statistics of the hand-rolled
    code it replaced.  Its own delivery accounting therefore lives in a
    {e transport-owned} registry ({!stats}) rather than the machine's:
    machine counters feed the run digest that [repro selfcheck] compares,
    so the new counters must not appear there.

    On top of the unified path sits deterministic, seed-driven {e fault
    injection} (drop / duplicate / extra delay, per-kind probabilities,
    default off) and a {!check_all_delivered} sanitizer asserting that
    every non-dropped post was delivered. *)

open Cm_engine

type t
(** One transport instance, shared by all subsystems of a machine
    (see [Machine.transport]). *)

val create :
  sharded:bool ->
  sim:Sim.t ->
  costs:Costs.t ->
  net:Network.t ->
  procs:Processor.t array ->
  spawn:(on:int -> unit Thread.t -> unit) ->
  eng:Thread.engine ->
  t
(** [create ~sim ~costs ~net ~procs ~spawn ~eng] is a transport sending
    over [net] and starting handler threads through [spawn] (the
    machine's deterministic spawner, so handler threads draw tids and rng
    streams exactly as directly-spawned ones do).  [eng] is the owning
    machine's thread engine: arming fault injection forces its threads
    onto the CPS reference paths (a duplicated delivery may fire a
    resumption twice, which shared frame slots cannot represent), and
    disarming restores them.  [sharded] marks the owning machine as
    shard-partitioned: fault injection then refuses to arm
    (its rng draws in global send order and its delay timers live on one
    sim). *)

(** {1 Message kinds and endpoints} *)

(** How reception is charged when a handler is dispatched. *)
type recv =
  | Recv_pipeline
      (** The handler thread first pays
          [Costs.recv_pipeline ~words ~new_thread:true] sized by the
          message — the normal case, and the default. *)
  | Recv_bare
      (** The handler pays its own reception cost (e.g. the B-tree's
          node-initialization work, or protocol controllers that account
          latency themselves). *)

type 'a kind
(** A typed message kind: a pre-interned {!Network.kind} (so the
    per-message path never touches a string-keyed table), its delivery
    counters, and one handler slot per processor for payloads of type
    ['a]. *)

val kind : t -> ?recv:recv -> string -> 'a kind
(** [kind t name] declares a kind labelled [name] ([recv] defaults to
    {!Recv_pipeline}).  The network-level kind and the delivery counters
    are shared among all declarations of the same [name] (traffic
    attribution is per label); the handler table is per declaration, so
    independent subsystem instances can carry differently-typed payloads
    under one label. *)

val kind_name : _ kind -> string
(** The label [kind] was declared under. *)

val net_kind : _ kind -> Network.kind
(** The pre-interned network-level kind messages of [kind] travel as. *)

val account_posted : _ kind -> unit
(** Bump [kind]'s posted counter — the send-side accounting {!migrate_f}
    performs, for frame-path callers that drive {!Thread.Frame.travel}
    themselves (see {!Cm_runtime.Runtime.site_call}). *)

val account_delivered : _ kind -> pid:int -> unit
(** Bump [kind]'s delivered counter and processor [pid]'s endpoint
    tally — the arrival-side accounting of {!migrate_f}'s chain. *)

module Endpoint : sig
  val register : t -> proc:int -> kind:'a kind -> ('a -> unit Thread.t) -> unit
  (** [register t ~proc ~kind h] installs [h] as processor [proc]'s
      handler for [kind]: a message dispatched there starts a fresh
      thread running [h payload] (after the {!Recv_pipeline} charge, if
      any).  Re-registration replaces the previous handler. *)

  val register_all : t -> kind:'a kind -> ('a -> unit Thread.t) -> unit
  (** [register_all t ~kind h] installs [h] on every processor. *)

  val delivered : kind:_ kind -> proc:int -> int
  (** Messages of [kind] delivered at endpoint [proc] (through this
      declaration of the kind). *)
end

(** {1 Sending}

    The monadic operations run inside a thread and charge the sender
    pipeline on its CPU; the raw operations inject immediately (from
    event context — protocol controllers and already-paid CPS steps). *)

val post : t -> 'a kind -> dst:int -> words:int -> 'a -> unit Thread.t
(** [post t k ~dst ~words v] charges [Costs.send_pipeline ~words], sends
    one [k] message and continues; on delivery, [dst]'s endpoint runs in
    a fresh handler thread.  One-way — fire and forget. *)

val notify : t -> _ kind -> dst:int -> words:int -> (unit -> unit) -> unit Thread.t
(** [notify t k ~dst ~words f] charges the sender pipeline and sends a
    message whose delivery runs [f] directly from the network event — no
    handler thread.  Used for replies that resume a blocked caller (the
    caller charges its own reception, cf. [recv_pipeline
    ~new_thread:false]). *)

val notify_app : t -> _ kind -> dst:int -> words:int -> ('a -> unit) -> 'a -> unit Thread.t
(** [notify_app t k ~dst ~words f v] is [notify t k ~dst ~words (fun () ->
    f v)] without the wrapper closure: the pooled arrival frame carries
    [f] and [v] separately and applies them at delivery.  The reply path
    for resumptions that take a value (e.g. object-migration replies). *)

val call :
  t ->
  req:unit Thread.t kind ->
  reply:_ kind ->
  dst:int ->
  args_words:int ->
  result_words:int ->
  'r Thread.t ->
  'r Thread.t
(** [call t ~req ~reply ~dst ~args_words ~result_words body] is a full
    remote procedure call: charge the sender pipeline for the request,
    block, and dispatch a [req] message whose payload is the server
    computation (run [body] at [dst], then {!notify} the [reply] back,
    resuming the caller — [body] may itself migrate; the reply is sent
    from wherever it finishes).  The caller then charges reply reception
    ([recv_pipeline ~new_thread:false]) and continues with the result.
    [req]'s endpoints must run their payload (register [fun m -> m]). *)

val migrate : t -> _ kind -> dst:Processor.t -> words:int -> fresh:bool -> unit Thread.t
(** [migrate t k ~dst ~words ~fresh] ships the {e current continuation}:
    charge the sender pipeline, send one [k] message and travel with it;
    on arrival the thread requeues at [dst] and pays [recv_pipeline
    ~new_thread:fresh] once dispatched ([fresh] is false for
    short-circuit returns to a waiting frame).  No endpoint is involved —
    the payload is the thread itself.  Under fault injection only [drop]
    applies to migrations (the continuation is lost with the message);
    duplicate/delay are ignored. *)

val migrate_f :
  t ->
  _ kind ->
  dst:Processor.t ->
  words:int ->
  fresh:bool ->
  after:(Thread.Frame.ctx -> unit) ->
  Thread.Frame.ctx ->
  unit
(** Direct-style {!migrate} for frame-path consumers: charges the sender
    pipeline, travels, and runs [after] at the destination holding the
    CPU.  Only valid when [Thread.Frame.on] holds for the context (which
    implies faults are off — arming faults disables the frames). *)

(** {1 Raw operations (event context)} *)

val dispatch : t -> 'a kind -> src:int -> dst:int -> words:int -> 'a -> unit
(** [dispatch t k ~src ~dst ~words v] injects a [k] message without
    charging any sender-side cost (the caller already did, or models a
    hardware source); delivery starts [dst]'s endpoint handler as in
    {!post}.  Raises if no handler is registered at [dst] when the
    message arrives. *)

val signal : t -> _ kind -> src:int -> dst:int -> words:int -> (unit -> unit) -> unit
(** [signal t k ~src ~dst ~words f] injects a message whose delivery
    runs [f] directly from the network event, as {!notify} but without
    the sender-pipeline charge. *)

val signal_app : t -> _ kind -> src:int -> dst:int -> words:int -> ('a -> unit) -> 'a -> unit
(** [signal_app t k ~src ~dst ~words f v] is [signal] of [fun () -> f v]
    without allocating the wrapper: the pooled arrival frame carries [f]
    and [v] separately. *)

val inject : t -> _ kind -> src:int -> dst:int -> words:int -> int
(** [inject t k ~src ~dst ~words] injects a payload-only message (the
    delivery itself is a no-op) and returns its wire latency — for
    protocol controllers that apply state changes at issue time and
    account latency themselves (the coherence protocol). *)

(** {1 Fault injection}

    Deterministic and seed-driven: equal seeds and equal traffic yield
    equal fault decisions.  Default off — with no configuration the send
    path draws no random numbers and schedules no extra events, so run
    digests are untouched. *)

type fault = {
  drop : float;  (** probability the message vanishes in transit *)
  duplicate : float;  (** probability it is delivered a second time *)
  delay : float;  (** probability delivery is delayed by [delay_cycles] *)
  delay_cycles : int;  (** extra delivery delay when the [delay] fault fires *)
}

val no_fault : fault
(** All probabilities zero. *)

val configure_faults : t -> seed:int -> (string * fault) list -> unit
(** [configure_faults t ~seed specs] arms fault injection for the kinds
    named in [specs] (by label; kinds not listed are unaffected).
    Decisions are drawn from a fresh generator seeded with [seed], in
    send order — same seed, same workload ⇒ same faults.  Replaces any
    previous configuration.  Raises [Invalid_argument] on a sharded
    machine (non-empty [specs] only). *)

val clear_faults : t -> unit
(** Disarm fault injection (restores the zero-overhead path). *)

val faults_active : t -> bool

val cancel_pending_delays : t -> int
(** [cancel_pending_delays t] revokes every fault-delayed delivery that
    is still waiting out its extra delay (the delay leg is a cancellable
    {!Sim.timer}) and returns how many were cancelled.  Each cancelled
    delivery is accounted as dropped, keeping {!inflight} and
    {!check_all_delivered} consistent — the hook timeout/retry logic
    builds on. *)

(** {1 Delivery accounting}

    Counters live in a transport-owned {!Stats.t} registry under
    [xport.<kind>.{posted,delivered,dropped,duplicated,delayed}] —
    deliberately {e not} the machine's registry, which feeds the run
    digests compared by [repro selfcheck]. *)

val stats : t -> Stats.t
(** The transport's own counter registry. *)

val posted : t -> string -> int
(** Messages of kind [name] accepted for sending (including ones later
    dropped). *)

val delivered : t -> string -> int
(** Deliveries of kind [name] (a duplicated message delivers twice). *)

val dropped : t -> string -> int

val inflight : t -> string -> int
(** [posted + duplicated - delivered - dropped] for kind [name] — the
    messages still in the network (or lost by a bug). *)

val inflight_total : t -> int
(** Sum of {!inflight} over every declared kind. *)

val check_all_delivered : t -> unit
(** Sanitizer: raises {!Check.Violation} naming the first kind whose
    {!inflight} is non-zero — every non-dropped post must eventually be
    delivered.  Call it after a run has drained (a horizon-stopped run
    legitimately has messages in flight). *)
