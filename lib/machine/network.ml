open Cm_engine

(* An interned message kind: the per-kind traffic counters resolved
   once, so a send does not rebuild "net.words.<kind>" strings or hash
   them per message. *)
type kind = {
  k_name : string;
  k_words : Stats.counter;
  k_messages : Stats.counter;
}

type t = {
  sim : Sim.t;
  topo : Topology.t;
  size : int;
  costs : Costs.t;
  stats : Stats.t;
  contention : bool;
  link_bandwidth : int;  (* words per cycle per link *)
  links : int array;  (* directed link src*size+dst -> free-at time; empty unless contention *)
  (* [net_base + net_per_hop * hops src dst], src*size+dst indexed: the
     size-independent part of every uncontended latency, precomputed so
     the per-message path is one load and one multiply — no coordinate
     math or route allocation.  Empty when contention is on (the
     store-and-forward model walks the route anyway) or the machine is
     too large for a dense table. *)
  fixed_latency : int array;
  kinds : (string, kind) Hashtbl.t;
  words_c : Stats.counter;
  messages_c : Stats.counter;
  contended_c : Stats.counter;
  (* When set, every send is queued into the coordinator's mailboxes for
     the barrier merge instead of being scheduled on [sim] — same-shard
     sends included, so event ordering keys do not depend on the
     partition (see {!Cm_engine.Shard}).  [sim] is then shard 0's and is
     only used for handler registration. *)
  mutable shard_ : Shard.t option;
}

let create ?(contention = false) ?(link_bandwidth = 1) ~sim ~topo ~costs ~stats () =
  if link_bandwidth <= 0 then invalid_arg "Network.create: link bandwidth must be positive";
  let size = Topology.size topo in
  {
    sim;
    topo;
    size;
    costs;
    stats;
    contention;
    link_bandwidth;
    (* Links are dense by construction (both endpoints < size), so the
       free-at times live in a flat array — no tuple key allocation or
       polymorphic hashing per routed hop.  Only the contention model
       reads them, so the array is elided otherwise. *)
    links = (if contention then Array.make (size * size) 0 else [||]);
    fixed_latency =
      (if contention || size * size > 1 lsl 20 then [||]
       else
         Array.init (size * size) (fun i ->
             let src = i / size and dst = i mod size in
             costs.Costs.net_base + (costs.Costs.net_per_hop * Topology.hops topo ~src ~dst)));
    kinds = Hashtbl.create 16;
    words_c = Stats.counter stats "net.words";
    messages_c = Stats.counter stats "net.messages";
    contended_c = Stats.counter stats "net.contended_cycles";
    shard_ = None;
  }

let set_shard t sh =
  if t.contention then invalid_arg "Network.set_shard: contention model is not shardable";
  t.shard_ <- Some sh

let kind t name =
  match Hashtbl.find_opt t.kinds name with
  | Some k -> k
  | None ->
    let k =
      {
        k_name = name;
        k_words = Stats.counter t.stats ("net.words." ^ name);
        k_messages = Stats.counter t.stats ("net.messages." ^ name);
      }
    in
    Hashtbl.add t.kinds name k;
    k

let kind_name k = k.k_name

(* Store-and-forward over the message's route: each link is occupied for
   the message's transmission time and messages sharing a link queue
   behind one another. *)
let contended_latency t ~src ~dst ~wire_words =
  let occupancy = (wire_words + t.link_bandwidth - 1) / t.link_bandwidth in
  let now = Sim.now t.sim in
  let cursor = ref (now + t.costs.Costs.net_base) in
  List.iter
    (fun (a, b) ->
      let link = (a * t.size) + b in
      let start = max !cursor t.links.(link) in
      t.links.(link) <- start + occupancy;
      cursor := start + occupancy + t.costs.Costs.net_per_hop)
    (Topology.route t.topo ~src ~dst);
  if !cursor - now > 0 then begin
    Stats.Counter.add t.contended_c (!cursor - now);
    !cursor - now
  end
  else 1

(* Latency assignment plus all traffic accounting for one message —
   everything a send does except scheduling the delivery, shared by the
   closure ({!send_k}) and pooled-handler ({!post_k}) entry points. *)
let accounted_latency t ~now ~src ~dst ~words ~kind =
  if words < 0 then invalid_arg "Network.send: negative size";
  let wire_words = words + t.costs.Costs.header_words in
  let latency =
    if t.contention then contended_latency t ~src ~dst ~wire_words
    else if t.fixed_latency != [||] then begin
      if src < 0 || src >= t.size || dst < 0 || dst >= t.size then
        (* Raises the same out-of-range diagnostic as the direct path. *)
        ignore (Topology.hops t.topo ~src ~dst : int);
      t.fixed_latency.((src * t.size) + dst) + (t.costs.Costs.net_per_word * wire_words)
    end
    else Costs.transit t.costs ~hops:(Topology.hops t.topo ~src ~dst) ~words
  in
  Stats.Counter.add t.words_c wire_words;
  Stats.Counter.incr t.messages_c;
  Stats.Counter.add kind.k_words wire_words;
  Stats.Counter.incr kind.k_messages;
  if Trace.enabled Trace.Events then
    Trace.eventf ~time:now "net: %s %d->%d %dw (%d hops, %d cyc)" kind.k_name src dst
      wire_words
      (Topology.hops t.topo ~src ~dst)
      latency;
  latency

let send_k t ~src ~dst ~words ~kind deliver =
  match t.shard_ with
  | None ->
    let latency = accounted_latency t ~now:(Sim.now t.sim) ~src ~dst ~words ~kind in
    Sim.after t.sim latency deliver;
    latency
  | Some sh ->
    let sim = Shard.sim_of_proc sh src in
    let send = Sim.now sim in
    let latency = accounted_latency t ~now:send ~src ~dst ~words ~kind in
    let seq = Sim.take_send_seq sim in
    Shard.push sh ~time:(send + latency) ~send ~seq ~src ~dst ~hid:(-1) ~arg:0 deliver;
    latency

let post_k t ~src ~dst ~words ~kind ~hid ~arg =
  match t.shard_ with
  | None ->
    let latency = accounted_latency t ~now:(Sim.now t.sim) ~src ~dst ~words ~kind in
    Sim.post_after t.sim ~delay:latency hid arg;
    latency
  | Some sh ->
    let sim = Shard.sim_of_proc sh src in
    let send = Sim.now sim in
    let latency = accounted_latency t ~now:send ~src ~dst ~words ~kind in
    let seq = Sim.take_send_seq sim in
    Shard.push sh ~time:(send + latency) ~send ~seq ~src ~dst ~hid:(Sim.hid_index hid) ~arg
      Shard.no_fn;
    latency

let send t ~src ~dst ~words ~kind:name deliver = send_k t ~src ~dst ~words ~kind:(kind t name) deliver

(* The totals are the interned counters — the per-message path updates
   exactly one tally per figure. *)
let total_words t = Stats.Counter.get t.words_c

let total_messages t = Stats.Counter.get t.messages_c

(* Per-kind queries go through the interned kind record: no string
   rebuild or registry hash per call, and a never-sent kind still reads
   0 (handles bind lazily). *)
let words_of_kind t name = Stats.Counter.get (kind t name).k_words

let messages_of_kind t name = Stats.Counter.get (kind t name).k_messages

let bandwidth_per_10_cycles t ~now =
  if now = 0 then 0. else 10. *. float_of_int (total_words t) /. float_of_int now
