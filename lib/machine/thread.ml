open Cm_engine

type ctx = { thread_id : int; mutable location : Processor.t; stream : Rng.t }

type 'a t = ctx -> ('a -> unit) -> unit

let return x _ k = k x

let bind m f c k = m c (fun x -> f x c k)

let map f m c k = m c (fun x -> k (f x))

module Infix = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
  let ( >>= ) = bind
end

open Infix

let tid c k = k c.thread_id

let proc c k = k c.location

let rng c k = k c.stream

let compute n c k = Processor.hold c.location n k

let yield c k =
  let p = c.location in
  Processor.enqueue p k;
  Processor.release p

let sleep n c k =
  let p = c.location in
  Sim.after (Processor.sim p) n (fun () -> Processor.enqueue p k);
  Processor.release p

(* Sanitizer shim: when [Check] is on, wrap a resumption in a one-shot
   token so a double resume (or a dropped continuation, via the token
   registry) is caught at the faulting call.  Identity when off. *)
let guard what c f =
  if Check.enabled () then
    Check.linear ~what:(Printf.sprintf "tid %d: %s" c.thread_id what) f
  else f

let await register c k =
  let p = c.location in
  register
    ~resume:(guard "Thread.await resume" c (fun v -> Processor.enqueue p (fun () -> k v)));
  Processor.release p

let stall register c k =
  let p = c.location in
  let start = Sim.now (Processor.sim p) in
  register
    ~resume:
      (guard "Thread.stall resume" c (fun v ->
           Processor.charge p (Sim.now (Processor.sim p) - start);
           k v))

let travel_k ~net ~dst ~words ~kind ~recv_work c k =
  let src = c.location in
  let deliver =
    guard "Thread.travel delivery" c (fun () ->
        Processor.enqueue dst (fun () ->
            c.location <- dst;
            Processor.hold dst recv_work k))
  in
  let (_ : int) =
    Network.send_k net ~src:(Processor.id src) ~dst:(Processor.id dst) ~words ~kind deliver
  in
  Processor.release src

let travel ~net ~dst ~words ~kind ~recv_work c k =
  travel_k ~net ~dst ~words ~kind:(Network.kind net kind) ~recv_work c k

(* Tid assignment belongs to the machine instance (Machine.spawn numbers
   threads from a per-machine counter): a process-global fallback here
   used to bleed tids — and with them the default RNG seeds — from one
   run into the next within a process, and would race across pool
   domains.  Callers now always say which tid they mean. *)
let spawn ~tid ?rng ?(on_exit = fun _ -> ()) p body =
  let thread_id = tid in
  let stream = match rng with Some r -> r | None -> Rng.create ~seed:(thread_id + 1) in
  let c = { thread_id; location = p; stream } in
  let finish =
    guard "Thread.spawn exit" c (fun v ->
        on_exit v;
        Processor.release c.location)
  in
  Processor.enqueue p (fun () -> body c finish)

let rec iter_list f = function
  | [] -> return ()
  | x :: rest ->
    let* () = f x in
    iter_list f rest

let repeat n f =
  let rec go i = if i >= n then return () else let* () = f i in go (i + 1) in
  go 0

let rec while_ cond body =
  if cond () then
    let* () = body in
    while_ cond body
  else return ()

let ignore_m m c k = m c (fun _ -> k ())
