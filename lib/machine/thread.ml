open Cm_engine

(* --- engines --------------------------------------------------------

   Two interchangeable execution engines drive a thread's blocking
   points:

   - the {e frame} engine (default): suspensions are defunctionalized
     into the per-thread frame slots below — a suspension stores a step
     function and its operands into the context and hands the scheduler
     one of two closures preallocated at spawn, so the steady state
     allocates nothing;

   - the {e CPS} engine: the original closure-per-suspension paths,
     retained verbatim as the reference semantics for the qcheck
     digest-equivalence oracle and the paired A/B benchmark mode.

   Both engines schedule the same events at the same times in the same
   order, so run digests are bit-identical by construction (the oracle
   in test/ proves it).  The frame paths are disabled dynamically —
   falling back to the CPS reference — in two situations:

   - sanitizers on ([Check.enabled]): the CPS paths carry the
     [Check.linear] one-shot tokens with their original labels, so
     double-resume detection and sanitizer digests are exactly the
     pre-frame behavior;

   - transport fault injection armed: duplicate delivery may invoke a
     resumption twice, and a shared frame-slot resumption would
     misdirect the second call at whatever the thread blocked on next —
     the CPS closures reproduce the original (per-suspension) behavior
     exactly.  [Transport.configure_faults] flips the machine's engine
     off and [clear_faults] restores it. *)

type engine = { mutable frames_ok : bool; frames_wanted : bool }

let cps_engine () = { frames_ok = false; frames_wanted = false }

let frames_engine () = { frames_ok = true; frames_wanted = true }

let disable_frames e = e.frames_ok <- false

let restore_frames e = e.frames_ok <- e.frames_wanted

let frames_enabled e = e.frames_ok

let obj_unit : Obj.t = Obj.repr 0

(* Field order is load-bearing for performance only: OCaml lays record
   fields out in declaration order, and a steady-state suspension touches
   [location], the engine gate, the op/continuation slots, and the two
   scheduler closures — putting those first packs the whole hot set into
   the record's leading cache lines.  Cold identity/bookkeeping fields
   trail. *)
type ctx = {
  mutable location : Processor.t;
  eng : engine;
  (* Defunctionalized continuation frame.  A thread is sequential, so at
     any instant it has at most one pending suspension: one set of slots
     per context suffices, reused across every suspension of the
     thread's life.  Ownership convention (see DESIGN.md §15):
     [f_op]/[f_kop]/[f_k] plus [f_dst]/[f_i0]/[f_after] belong to the
     thread layer; [f_v0..f_v2]/[f_i1..f_i2]/[f_after2] to the transport
     chain in flight; [f_v3]/[f_i3] to the consumer driving it
     (runtime/objmig/shmem). *)
  mutable f_op : ctx -> unit;
  mutable f_kop : ctx -> Obj.t -> unit;
  mutable f_k : Obj.t;
  mutable f_v0 : Obj.t;
  (* The two scheduler-facing closures, preallocated at spawn: every
     frame suspension re-points [f_op]/[f_kop] and hands one of these
     out, so resuming allocates nothing. *)
  mutable run_op : unit -> unit;
  mutable run_kop : Obj.t -> unit;
  (* The thread's pooled [Sim] handler, registered once at spawn: frame
     holds and network deliveries post (op_hid, 0) instead of storing
     [run_op] into the event, so the steady-state event pool carries only
     ints — no closure store (and no write barrier) per event. *)
  mutable op_hid : Sim.hid;
  mutable f_dst : Processor.t;
  mutable f_i0 : int;
  mutable f_after : ctx -> unit;
  mutable f_after2 : ctx -> unit;
  mutable f_i1 : int;
  mutable f_i2 : int;
  mutable f_i3 : int;
  mutable f_v1 : Obj.t;
  mutable f_v2 : Obj.t;
  mutable f_v3 : Obj.t;
  (* Method-site registers (the m-lane): per-call operands of a fused
     per-object call (Runtime.Msite, Objmig, Replicate).  Disjoint from
     every slot above, and untouched by [Frame.travel] and the transport
     chains, so a fused call's operands survive its own migration
     without re-marshalling.  A method-site body owns them from entry to
     finish and must not start another method-site call meanwhile. *)
  mutable f_mi0 : int;
  mutable f_mi1 : int;
  mutable f_mi2 : int;
  mutable f_mi3 : int;
  mutable f_mi4 : int;
  mutable f_ms : Obj.t;
  mutable f_mv : Obj.t;
  thread_id : int;
  stream : Rng.t;
  exit_fn : Obj.t -> unit;  (* on_exit, shared by every exit of this thread *)
  mutable run_exit : Obj.t -> unit;
}

let nop_op (_ : ctx) = ()

let nop_kop (_ : ctx) (_ : Obj.t) = ()

(* The frame fast paths fire only when the engine allows them and the
   sanitizers are off: under [Check] the CPS reference paths run, with
   their original one-shot guard tokens and labels. *)
let frame_on c = c.eng.frames_ok && not (Check.enabled ())

type 'a t = ctx -> ('a -> unit) -> unit

let return x _ k = k x

let bind m f c k = m c (fun x -> f x c k)

let map f m c k = m c (fun x -> k (f x))

module Infix = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
  let ( >>= ) = bind
end

let tid c k = k c.thread_id

let proc c k = k c.location

let rng c k = k c.stream

let compute n c k = Processor.hold c.location n k

let yield c k =
  let p = c.location in
  Processor.enqueue p k;
  Processor.release p

let sleep n c k =
  (* Identical event timing and ordering for both engines: the wait is a
     pooled park slot, not a closure (see Processor.enqueue_after). *)
  let p = c.location in
  Processor.enqueue_after p ~delay:n k;
  Processor.release p

(* Sanitizer shim: when [Check] is on, wrap a resumption in a one-shot
   token so a double resume (or a dropped continuation, via the token
   registry) is caught at the faulting call.  Identity when off. *)
let guard what c f =
  if Check.enabled () then
    Check.linear ~what:(Printf.sprintf "tid %d: %s" c.thread_id what) f
  else f

(* --- await ---------------------------------------------------------- *)

let await_step c (v : Obj.t) =
  Processor.enqueue_app c.location (Obj.obj c.f_k : Obj.t -> unit) v

let await_cps register c k =
  let p = c.location in
  register
    ~resume:(guard "Thread.await resume" c (fun v -> Processor.enqueue p (fun () -> k v)));
  Processor.release p

let await register c k =
  if frame_on c then begin
    let p = c.location in
    c.f_k <- Obj.repr k;
    c.f_kop <- await_step;
    register ~resume:(Obj.magic c.run_kop : _ -> unit);
    Processor.release p
  end
  else await_cps register c k

(* --- stall ---------------------------------------------------------- *)

let stall_step c (v : Obj.t) =
  let p = c.location in
  Processor.charge p (Sim.now (Processor.sim p) - c.f_i0);
  (Obj.obj c.f_k : Obj.t -> unit) v

let stall_cps register c k =
  let p = c.location in
  let start = Sim.now (Processor.sim p) in
  register
    ~resume:
      (guard "Thread.stall resume" c (fun v ->
           Processor.charge p (Sim.now (Processor.sim p) - start);
           k v))

let stall register c k =
  if frame_on c then begin
    c.f_i0 <- Sim.now (Processor.sim c.location);
    c.f_k <- Obj.repr k;
    c.f_kop <- stall_step;
    register ~resume:(Obj.magic c.run_kop : _ -> unit)
  end
  else stall_cps register c k

(* --- travel --------------------------------------------------------- *)

(* Frame migration runs in three steps through [run_op], scheduling the
   exact events of the CPS reference: network delivery re-enqueues the
   thread at the destination; dispatch rebinds the location and holds
   the CPU for the receive-pipeline work; then the completion op
   ([f_after]) runs, still holding the CPU. *)
let travel_arrive c =
  let dst = c.f_dst in
  c.location <- dst;
  c.f_op <- c.f_after;
  Processor.hold_post dst c.f_i0 c.op_hid 0

let travel_deliver c =
  c.f_op <- travel_arrive;
  Processor.enqueue c.f_dst c.run_op

let frame_travel ~net ~dst ~words ~kind ~recv_work ~after c =
  let src = c.location in
  c.f_dst <- dst;
  c.f_i0 <- recv_work;
  c.f_after <- after;
  c.f_op <- travel_deliver;
  let (_ : int) =
    Network.post_k net ~src:(Processor.id src) ~dst:(Processor.id dst) ~words ~kind
      ~hid:c.op_hid ~arg:0
  in
  Processor.release src

let travel_finish c = (Obj.obj c.f_k : unit -> unit) ()

let travel_k_cps ~net ~dst ~words ~kind ~recv_work c k =
  let src = c.location in
  let deliver =
    guard "Thread.travel delivery" c (fun () ->
        Processor.enqueue dst (fun () ->
            c.location <- dst;
            Processor.hold dst recv_work k))
  in
  let (_ : int) =
    Network.send_k net ~src:(Processor.id src) ~dst:(Processor.id dst) ~words ~kind deliver
  in
  Processor.release src

let travel_k ~net ~dst ~words ~kind ~recv_work c k =
  if frame_on c then begin
    c.f_k <- Obj.repr k;
    frame_travel ~net ~dst ~words ~kind ~recv_work ~after:travel_finish c
  end
  else travel_k_cps ~net ~dst ~words ~kind ~recv_work c k

let travel ~net ~dst ~words ~kind ~recv_work c k =
  travel_k ~net ~dst ~words ~kind:(Network.kind net kind) ~recv_work c k

(* --- spawning ------------------------------------------------------- *)

let default_exit (_ : Obj.t) = ()

(* First dispatch of a fresh thread: the body and its finish
   continuation were parked in the (otherwise untouched) frame slots at
   spawn, so starting a thread enqueues no closure. *)
let start_step c =
  let body = (Obj.obj c.f_v0 : ctx -> (Obj.t -> unit) -> unit) in
  let fin = (Obj.obj c.f_k : Obj.t -> unit) in
  c.f_v0 <- obj_unit;
  c.f_k <- obj_unit;
  body c fin

(* Tid assignment belongs to the machine instance (Machine.spawn numbers
   threads from a per-machine counter): a process-global fallback here
   used to bleed tids — and with them the default RNG seeds — from one
   run into the next within a process, and would race across pool
   domains.  Callers now always say which tid they mean. *)
let spawn ~tid ?rng ?on_exit ?engine p body =
  let thread_id = tid in
  let stream = match rng with Some r -> r | None -> Rng.create ~seed:(thread_id + 1) in
  let eng = match engine with Some e -> e | None -> frames_engine () in
  let exit_fn =
    match on_exit with Some f -> (Obj.magic f : Obj.t -> unit) | None -> default_exit
  in
  let c =
    {
      thread_id;
      location = p;
      stream;
      eng;
      exit_fn;
      f_op = nop_op;
      f_kop = nop_kop;
      f_k = obj_unit;
      f_dst = p;
      f_i0 = 0;
      f_after = nop_op;
      f_after2 = nop_op;
      f_i1 = 0;
      f_i2 = 0;
      f_i3 = 0;
      f_v0 = obj_unit;
      f_v1 = obj_unit;
      f_v2 = obj_unit;
      f_v3 = obj_unit;
      f_mi0 = 0;
      f_mi1 = 0;
      f_mi2 = 0;
      f_mi3 = 0;
      f_mi4 = 0;
      f_ms = obj_unit;
      f_mv = obj_unit;
      run_op = ignore;
      run_kop = ignore;
      op_hid = Sim.nil_handler;
      run_exit = ignore;
    }
  in
  c.run_op <- (fun () -> c.f_op c);
  c.run_kop <- (fun v -> c.f_kop c v);
  c.op_hid <- Sim.handler (Processor.sim p) (fun _ -> c.f_op c);
  c.run_exit <-
    (fun v ->
      c.exit_fn v;
      Processor.release c.location);
  let finish : Obj.t -> unit =
    if Check.enabled () then
      guard "Thread.spawn exit" c (fun v ->
          c.exit_fn v;
          Processor.release c.location)
    else c.run_exit
  in
  c.f_v0 <- Obj.repr body;
  c.f_k <- Obj.repr finish;
  c.f_op <- start_step;
  Processor.enqueue p c.run_op

(* --- loop combinators ----------------------------------------------

   The recursion is threaded through one mutable cursor and one closure
   per loop instead of a fresh bind closure per iteration.  Evaluation
   timing matches the bind-chain originals: the first [f i] (or [cond])
   runs when the loop value is built, subsequent ones right before the
   iteration they produce. *)

let iter_list f = function
  | [] -> return ()
  | x :: rest ->
    let m0 = f x in
    fun c k ->
      let cur = ref rest in
      let rec step () =
        match !cur with
        | [] -> k ()
        | y :: tl ->
          cur := tl;
          f y c step
      in
      m0 c step

let repeat n f =
  if n <= 0 then return ()
  else
    let m0 = f 0 in
    fun c k ->
      let i = ref 1 in
      let rec step () =
        let j = !i in
        if j >= n then k ()
        else begin
          i := j + 1;
          f j c step
        end
      in
      m0 c step

let while_ cond body =
  if not (cond ()) then return ()
  else
    fun c k ->
    let rec again () = if cond () then body c again else k () in
    body c again

(* Same loop, but the condition sees the thread's context: on a sharded
   machine "the current cycle" is the executing processor's shard clock
   ([Processor.sim (Frame.proc c)]), which a [unit -> bool] condition
   cannot reach.  The continuation structure is identical to [while_] —
   no suspension added or removed, digests unchanged. *)
let while_ctx cond body c k =
  let rec again () = if cond c then body c again else k () in
  body c again

let ignore_m m c k = m c (fun _ -> k ())

(* --- the frame calling convention, for transport and consumers ------ *)

module Frame = struct
  type nonrec ctx = ctx

  let on = frame_on

  let proc c = c.location

  let save_k c (k : 'a -> unit) = c.f_k <- Obj.repr k

  let take_k c = (Obj.obj c.f_k : Obj.t -> unit)

  let call_k c (v : 'a) = (Obj.obj c.f_k : Obj.t -> unit) (Obj.repr v)

  let setv0 c v = c.f_v0 <- Obj.repr v
  let setv1 c v = c.f_v1 <- Obj.repr v
  let setv2 c v = c.f_v2 <- Obj.repr v
  let setv3 c v = c.f_v3 <- Obj.repr v

  let getv0 c = Obj.obj c.f_v0
  let getv1 c = Obj.obj c.f_v1
  let getv2 c = Obj.obj c.f_v2
  let getv3 c = Obj.obj c.f_v3

  let seti1 c i = c.f_i1 <- i
  let seti2 c i = c.f_i2 <- i
  let seti3 c i = c.f_i3 <- i

  let geti1 c = c.f_i1
  let geti2 c = c.f_i2
  let geti3 c = c.f_i3

  (* The method-site lane (see the ctx declaration): five int operands,
     the site record, and one boxed operand. *)
  let setm0 c i = c.f_mi0 <- i
  let setm1 c i = c.f_mi1 <- i
  let setm2 c i = c.f_mi2 <- i
  let setm3 c i = c.f_mi3 <- i
  let setm4 c i = c.f_mi4 <- i

  let getm0 c = c.f_mi0
  let getm1 c = c.f_mi1
  let getm2 c = c.f_mi2
  let getm3 c = c.f_mi3
  let getm4 c = c.f_mi4

  let setms c v = c.f_ms <- Obj.repr v
  let getms c = Obj.obj c.f_ms
  let setmv c v = c.f_mv <- Obj.repr v
  let getmv c = Obj.obj c.f_mv

  let rng c = c.stream

  let set_after2 c op = c.f_after2 <- op

  let run_after2 c = c.f_after2 c

  let hold_then c n op =
    c.f_op <- op;
    Processor.hold_post c.location n c.op_hid 0

  let enqueue_then c op =
    c.f_op <- op;
    Processor.enqueue c.location c.run_op

  let resume c step =
    c.f_kop <- step;
    (Obj.magic c.run_kop : _ -> unit)

  let stall_k c =
    c.f_i0 <- Sim.now (Processor.sim c.location);
    c.f_kop <- stall_step;
    (Obj.magic c.run_kop : _ -> unit)

  let travel = frame_travel

  let release c = Processor.release c.location
end
