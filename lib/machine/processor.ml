open Cm_engine

(* The ready queue is a power-of-two ring buffer rather than a [Queue.t]:
   enqueue/dequeue are array stores with no per-task cell (or [take_opt]
   option) allocation — every thread yield, sleep, wakeup, and message
   dispatch goes through here. *)

type t = {
  id : int;
  sim : Sim.t;
  dispatches : Stats.counter;  (* lazily bound — registered on first dispatch *)
  scheduler_cost : int;
  hid : Sim.hid;  (* pooled dispatch handler: pops and runs the ring head *)
  mutable ring : (unit -> unit) array;
  mutable head : int;  (* index of the next task to dispatch *)
  mutable len : int;
  mutable busy : bool;
  mutable busy_cycles : int;
}

let nop () = ()

(* Run the task at the head of the ready ring.  The pop happens here, at
   the dispatch event's fire time, not when the dispatch is scheduled:
   the busy flag guarantees at most one dispatch event is in flight per
   processor, enqueues only ever append, and nothing else dequeues — so
   the head task is the same either way, and leaving it in the ring
   means the dispatch event itself carries no closure (see [dispatch]). *)
let run_head p =
  let task = p.ring.(p.head) in
  p.ring.(p.head) <- nop;
  p.head <- (p.head + 1) land (Array.length p.ring - 1);
  p.len <- p.len - 1;
  task ()

let create ~sim ~stats ~scheduler_cost ~id =
  (* The dispatch handler closes over the processor record, which itself
     holds the handler id; tie the knot through a cell. *)
  let self = ref None in
  let hid =
    Sim.handler sim (fun _ ->
        match !self with Some p -> run_head p | None -> assert false)
  in
  let p =
    {
      id;
      sim;
      dispatches = Stats.counter stats "proc.dispatches";
      scheduler_cost;
      hid;
      ring = Array.make 8 nop;
      head = 0;
      len = 0;
      busy = false;
      busy_cycles = 0;
    }
  in
  self := Some p;
  p

let id p = p.id

let sim p = p.sim

let is_busy p = p.busy

let queue_length p = p.len

let busy_cycles p = p.busy_cycles

let utilization p ~now = if now = 0 then 0. else float_of_int p.busy_cycles /. float_of_int now

let hold p n k =
  assert (p.busy);
  if n < 0 then invalid_arg "Processor.hold: negative duration";
  p.busy_cycles <- p.busy_cycles + n;
  Sim.after p.sim n k

let charge p n =
  assert (p.busy);
  if n < 0 then invalid_arg "Processor.charge: negative duration";
  p.busy_cycles <- p.busy_cycles + n

let grow p =
  let cap = Array.length p.ring in
  let ring = Array.make (2 * cap) nop in
  for i = 0 to p.len - 1 do
    ring.(i) <- p.ring.((p.head + i) land (cap - 1))
  done;
  p.ring <- ring;
  p.head <- 0

(* Dispatch the next ready task, charging the scheduler cost.  The task
   runs synchronously at the end of the dispatch delay; it is expected to
   schedule its own continuation chain and ultimately call [release].
   The dispatch event is a pooled handler occurrence — the task stays in
   the ring until it fires ([run_head]), so dispatching stores no
   closure into the event queue. *)
let dispatch p =
  if p.len > 0 then begin
    p.busy <- true;
    Stats.Counter.incr p.dispatches;
    p.busy_cycles <- p.busy_cycles + p.scheduler_cost;
    Sim.post_after p.sim ~delay:p.scheduler_cost p.hid 0
  end

let release p =
  assert (p.busy);
  p.busy <- false;
  dispatch p

let enqueue p task =
  if p.len = Array.length p.ring then grow p;
  p.ring.((p.head + p.len) land (Array.length p.ring - 1)) <- task;
  p.len <- p.len + 1;
  if not p.busy then dispatch p
