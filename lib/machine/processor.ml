open Cm_engine

type t = {
  id : int;
  sim : Sim.t;
  dispatches : Stats.counter;  (* lazily bound — registered on first dispatch *)
  scheduler_cost : int;
  runq : (unit -> unit) Queue.t;
  mutable busy : bool;
  mutable busy_cycles : int;
}

let create ~sim ~stats ~scheduler_cost ~id =
  {
    id;
    sim;
    dispatches = Stats.counter stats "proc.dispatches";
    scheduler_cost;
    runq = Queue.create ();
    busy = false;
    busy_cycles = 0;
  }

let id p = p.id

let sim p = p.sim

let is_busy p = p.busy

let queue_length p = Queue.length p.runq

let busy_cycles p = p.busy_cycles

let utilization p ~now = if now = 0 then 0. else float_of_int p.busy_cycles /. float_of_int now

let hold p n k =
  assert (p.busy);
  if n < 0 then invalid_arg "Processor.hold: negative duration";
  p.busy_cycles <- p.busy_cycles + n;
  Sim.after p.sim n k

let charge p n =
  assert (p.busy);
  if n < 0 then invalid_arg "Processor.charge: negative duration";
  p.busy_cycles <- p.busy_cycles + n

(* Dispatch the next ready task, charging the scheduler cost.  The task
   runs synchronously at the end of the dispatch delay; it is expected to
   schedule its own continuation chain and ultimately call [release]. *)
let rec dispatch p =
  match Queue.take_opt p.runq with
  | None -> ()
  | Some task ->
    p.busy <- true;
    Stats.Counter.incr p.dispatches;
    p.busy_cycles <- p.busy_cycles + p.scheduler_cost;
    Sim.after p.sim p.scheduler_cost task

and release p =
  assert (p.busy);
  p.busy <- false;
  dispatch p

let enqueue p task =
  Queue.add task p.runq;
  if not p.busy then dispatch p
