open Cm_engine

(* The ready queue is a power-of-two ring of (function, argument) pairs
   rather than a ring of thunks: enqueueing a resumption stores the
   continuation and its value in two array slots, so waking a thread
   needs no [fun () -> k v] wrapper — every thread yield, sleep, wakeup,
   and message dispatch goes through here.  The pairs are packed with
   [Obj] exactly as [Sharers] packs its small/big representations: the
   two parallel arrays are created with an [int] placeholder (so neither
   is a flat float array) and a slot is only ever applied to the
   argument stored with it. *)

type task = Obj.t -> unit

let nop_task (_ : Obj.t) = ()

let unit_arg : Obj.t = Obj.repr 0

type t = {
  id : int;
  sim : Sim.t;
  dispatches : Stats.counter;  (* lazily bound — registered on first dispatch *)
  scheduler_cost : int;
  hid : Sim.hid;  (* pooled dispatch handler: pops and runs the ring head *)
  wake_hid : Sim.hid;  (* pooled delayed-enqueue handler: arg = park slot *)
  mutable ring_fn : task array;
  mutable ring_arg : Obj.t array;
  mutable head : int;  (* index of the next task to dispatch *)
  mutable len : int;
  mutable busy : bool;
  mutable busy_cycles : int;
  (* Park pool: continuations waiting out a [Sim] delay before being
     enqueued (Thread.sleep, delayed wakeups).  A parked continuation is
     an int slot naming a (fn, arg) pair; the pooled [wake_hid] handler
     moves it to the ready ring when the delay elapses, so a sleep
     allocates nothing. *)
  mutable park_fn : task array;
  mutable park_arg : Obj.t array;
  mutable park_free : int array;  (* free slot stack: [0, park_free_top) *)
  mutable park_free_top : int;
}

let id p = p.id

let sim p = p.sim

let is_busy p = p.busy

let queue_length p = p.len

let busy_cycles p = p.busy_cycles

let utilization p ~now = if now = 0 then 0. else float_of_int p.busy_cycles /. float_of_int now

let hold p n k =
  assert (p.busy);
  if n < 0 then invalid_arg "Processor.hold: negative duration";
  p.busy_cycles <- p.busy_cycles + n;
  Sim.after p.sim n k

(* [hold] with a pooled handler occurrence instead of a closure event:
   the event carries (hid, arg) ints only, so scheduling and recycling it
   never store a pointer (see Thread's per-context [op_hid]). *)
let hold_post p n hid arg =
  assert p.busy;
  if n < 0 then invalid_arg "Processor.hold: negative duration";
  p.busy_cycles <- p.busy_cycles + n;
  Sim.post_after p.sim ~delay:n hid arg

let charge p n =
  assert (p.busy);
  if n < 0 then invalid_arg "Processor.charge: negative duration";
  p.busy_cycles <- p.busy_cycles + n

(* Run the task at the head of the ready ring.  The pop happens here, at
   the dispatch event's fire time, not when the dispatch is scheduled:
   the busy flag guarantees at most one dispatch event is in flight per
   processor, enqueues only ever append, and nothing else dequeues — so
   the head task is the same either way, and leaving it in the ring
   means the dispatch event itself carries no closure (see [dispatch]). *)
let run_head p =
  (* Ring indices are masked by the (power-of-two) capacity, so the
     unchecked accesses cannot escape the arrays. *)
  let i = p.head in
  let task = Array.unsafe_get p.ring_fn i in
  let arg = Array.unsafe_get p.ring_arg i in
  Array.unsafe_set p.ring_fn i nop_task;
  Array.unsafe_set p.ring_arg i unit_arg;
  p.head <- (i + 1) land (Array.length p.ring_fn - 1);
  p.len <- p.len - 1;
  task arg

let grow p =
  let cap = Array.length p.ring_fn in
  let ring_fn = Array.make (2 * cap) nop_task in
  let ring_arg = Array.make (2 * cap) unit_arg in
  for i = 0 to p.len - 1 do
    let j = (p.head + i) land (cap - 1) in
    ring_fn.(i) <- p.ring_fn.(j);
    ring_arg.(i) <- p.ring_arg.(j)
  done;
  p.ring_fn <- ring_fn;
  p.ring_arg <- ring_arg;
  p.head <- 0

(* Dispatch the next ready task, charging the scheduler cost.  The task
   runs synchronously at the end of the dispatch delay; it is expected to
   schedule its own continuation chain and ultimately call [release].
   The dispatch event is a pooled handler occurrence — the task stays in
   the ring until it fires ([run_head]), so dispatching stores no
   closure into the event queue. *)
let dispatch p =
  if p.len > 0 then begin
    p.busy <- true;
    Stats.Counter.incr p.dispatches;
    p.busy_cycles <- p.busy_cycles + p.scheduler_cost;
    Sim.post_after p.sim ~delay:p.scheduler_cost p.hid 0
  end

let release p =
  assert (p.busy);
  p.busy <- false;
  dispatch p

let enqueue_obj p (fn : task) (arg : Obj.t) =
  if p.len = Array.length p.ring_fn then grow p;
  let i = (p.head + p.len) land (Array.length p.ring_fn - 1) in
  Array.unsafe_set p.ring_fn i fn;
  Array.unsafe_set p.ring_arg i arg;
  p.len <- p.len + 1;
  if not p.busy then dispatch p

let enqueue p (task : unit -> unit) =
  (* A [unit -> unit] task applied to the stored unit argument is the
     thunk call it always was; no wrapper is built. *)
  enqueue_obj p (Obj.magic task : task) unit_arg

let enqueue_app p (k : 'a -> unit) (v : 'a) =
  enqueue_obj p (Obj.magic k : task) (Obj.repr v)

(* --- delayed enqueues (the park pool) ------------------------------- *)

(* Move a parked continuation to the ready ring once its delay elapsed. *)
let wake p slot =
  let fn = p.park_fn.(slot) in
  let arg = p.park_arg.(slot) in
  p.park_fn.(slot) <- nop_task;
  p.park_arg.(slot) <- unit_arg;
  p.park_free.(p.park_free_top) <- slot;
  p.park_free_top <- p.park_free_top + 1;
  enqueue_obj p fn arg

let park_grow p =
  let cap = Array.length p.park_fn in
  let park_fn = Array.make (2 * cap) nop_task in
  let park_arg = Array.make (2 * cap) unit_arg in
  Array.blit p.park_fn 0 park_fn 0 cap;
  Array.blit p.park_arg 0 park_arg 0 cap;
  let park_free = Array.make (2 * cap) 0 in
  Array.blit p.park_free 0 park_free 0 p.park_free_top;
  for i = 0 to cap - 1 do
    park_free.(p.park_free_top + i) <- cap + i
  done;
  p.park_fn <- park_fn;
  p.park_arg <- park_arg;
  p.park_free <- park_free;
  p.park_free_top <- p.park_free_top + cap

let park_obj p ~delay (fn : task) (arg : Obj.t) =
  if p.park_free_top = 0 then park_grow p;
  p.park_free_top <- p.park_free_top - 1;
  let slot = p.park_free.(p.park_free_top) in
  p.park_fn.(slot) <- fn;
  p.park_arg.(slot) <- arg;
  Sim.post_after p.sim ~delay p.wake_hid slot

let enqueue_after p ~delay (task : unit -> unit) =
  park_obj p ~delay (Obj.magic task : task) unit_arg

let enqueue_app_after p ~delay (k : 'a -> unit) (v : 'a) =
  park_obj p ~delay (Obj.magic k : task) (Obj.repr v)

let parked p = Array.length p.park_fn - p.park_free_top

let park_capacity p = Array.length p.park_fn

let ring_capacity p = Array.length p.ring_fn

let create ~sim ~stats ~scheduler_cost ~id =
  (* The dispatch and wake handlers close over the processor record,
     which itself holds the handler ids; tie the knot through a cell. *)
  let self = ref None in
  let hid =
    Sim.handler sim (fun _ ->
        match !self with Some p -> run_head p | None -> assert false)
  in
  let wake_hid =
    Sim.handler sim (fun slot ->
        match !self with Some p -> wake p slot | None -> assert false)
  in
  let p =
    {
      id;
      sim;
      dispatches = Stats.counter stats "proc.dispatches";
      scheduler_cost;
      hid;
      wake_hid;
      ring_fn = Array.make 8 nop_task;
      ring_arg = Array.make 8 unit_arg;
      head = 0;
      len = 0;
      busy = false;
      busy_cycles = 0;
      park_fn = Array.make 8 nop_task;
      park_arg = Array.make 8 unit_arg;
      park_free = Array.init 8 (fun i -> i);
      park_free_top = 8;
    }
  in
  self := Some p;
  p
