open Cm_engine

type engine = Frames | Cps

(* The process-wide default, read by [create] when no explicit engine is
   given: atomic because the sweep harness runs machines across a domain
   pool, and the paired A/B bench mode flips it between interleaved
   repetitions. *)
let default_engine_cell : engine Atomic.t = Atomic.make Frames (* lint: allow global-state — cross-domain engine default, vetted *)

let set_default_engine e = Atomic.set default_engine_cell e

let default_engine () = Atomic.get default_engine_cell

let engine_name = function Frames -> "frames" | Cps -> "cps"

type t = {
  sim : Sim.t;
  costs : Costs.t;
  topo : Topology.t;
  net : Network.t;
  procs : Processor.t array;
  stats : Stats.t;
  rng : Rng.t;
  engine : engine;
  eng : Thread.engine;
  mutable next_tid : int;
  mutable transport_ : Transport.t option;
}

let create ?(seed = 42) ?(topology = `Mesh) ?(net_contention = false) ?(wheel_bits = 12) ?engine
    ~n_procs ~costs () =
  if n_procs <= 0 then invalid_arg "Machine.create: n_procs must be positive";
  (* Contended multi-hop sends routinely exceed the 256-cycle default wheel,
     spilling onto the overflow heap; 4096 one-cycle buckets keep nearly every
     machine event on the O(1) direct path.  Extraction order (and hence every
     digest) is wheel-size-invariant. *)
  let sim = Sim.create ~wheel_bits () in
  let stats = Stats.create () in
  let topo =
    match topology with
    | `Mesh -> Topology.mesh n_procs
    | `Torus -> Topology.torus n_procs
    | `Crossbar -> Topology.crossbar n_procs
  in
  let net = Network.create ~contention:net_contention ~sim ~topo ~costs ~stats () in
  let procs =
    Array.init n_procs (fun id ->
        Processor.create ~sim ~stats ~scheduler_cost:costs.Costs.scheduler ~id)
  in
  let engine = match engine with Some e -> e | None -> default_engine () in
  let eng = match engine with Frames -> Thread.frames_engine () | Cps -> Thread.cps_engine () in
  {
    sim;
    costs;
    topo;
    net;
    procs;
    stats;
    rng = Rng.create ~seed;
    engine;
    eng;
    next_tid = 0;
    transport_ = None;
  }

let n_procs t = Array.length t.procs

let proc t i =
  if i < 0 || i >= Array.length t.procs then
    invalid_arg (Printf.sprintf "Machine.proc: %d out of range [0,%d)" i (Array.length t.procs));
  t.procs.(i)

let spawn t ~on ?on_exit body =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  Thread.spawn ~tid ~rng:(Rng.split t.rng) ?on_exit ~engine:t.eng (proc t on) body

let transport t =
  match t.transport_ with
  | Some tr -> tr
  | None ->
    let tr =
      Transport.create ~sim:t.sim ~costs:t.costs ~net:t.net ~procs:t.procs ~eng:t.eng
        ~spawn:(fun ~on body -> spawn t ~on body)
    in
    t.transport_ <- Some tr;
    tr

let run ?until t =
  Sim.run ?until t.sim;
  Check.Trail.record_run ~clock:(Sim.now t.sim) ~fired:(Sim.events_fired t.sim) ~stats:t.stats

let digest t =
  Check.Trail.digest_of_run ~clock:(Sim.now t.sim) ~fired:(Sim.events_fired t.sim)
    ~stats:t.stats

let now t = Sim.now t.sim
