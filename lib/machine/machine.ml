open Cm_engine

type engine = Frames | Cps

(* The process-wide default, read by [create] when no explicit engine is
   given: atomic because the sweep harness runs machines across a domain
   pool, and the paired A/B bench mode flips it between interleaved
   repetitions. *)
let default_engine_cell : engine Atomic.t = Atomic.make Frames (* lint: allow global-state — cross-domain engine default, vetted *)

let set_default_engine e = Atomic.set default_engine_cell e

let default_engine () = Atomic.get default_engine_cell

let engine_name = function Frames -> "frames" | Cps -> "cps"

(* The process-wide shard-count default, same contract as the engine
   cell above: [repro --shards N] / [CM_SHARDS] set it once at startup,
   and the paired A/B bench mode flips it between interleaved reps. *)
let default_shards_cell : int Atomic.t = Atomic.make 1 (* lint: allow global-state — cross-domain shards default, vetted *)

let set_default_shards k =
  if k <= 0 then invalid_arg "Machine.set_default_shards: shards must be positive";
  Atomic.set default_shards_cell k

let default_shards () = Atomic.get default_shards_cell

type t = {
  sim : Sim.t;
  sims : Sim.t array;
  shard_ : Shard.t option;
  costs : Costs.t;
  topo : Topology.t;
  net : Network.t;
  procs : Processor.t array;
  stats : Stats.t;
  rng : Rng.t;
  engine : engine;
  eng : Thread.engine;
  mutable next_tid : int;
  mutable transport_ : Transport.t option;
}

let create ?(seed = 42) ?(topology = `Mesh) ?(net_contention = false) ?(wheel_bits = 12) ?engine
    ?shards ~n_procs ~costs () =
  if n_procs <= 0 then invalid_arg "Machine.create: n_procs must be positive";
  let k = match shards with Some k -> k | None -> default_shards () in
  if k <= 0 then invalid_arg "Machine.create: shards must be positive";
  (* More shards than processors would leave empty shards paying barrier
     costs for nothing; digests are shard-count-invariant, so clamping
     is observationally free. *)
  let k = min k n_procs in
  if k > 1 && net_contention then
    invalid_arg
      "Machine.create: net_contention serializes on global link state and is not shardable; \
       use ~shards:1";
  let stats = Stats.create () in
  let topo =
    match topology with
    | `Mesh -> Topology.mesh n_procs
    | `Torus -> Topology.torus n_procs
    | `Crossbar -> Topology.crossbar n_procs
  in
  (* Contended multi-hop sends routinely exceed the 256-cycle default wheel,
     spilling onto the overflow heap; 4096 one-cycle buckets keep nearly every
     machine event on the O(1) direct path.  Extraction order (and hence every
     digest) is wheel-size-invariant. *)
  let sims, shard_of, shard_ =
    if k = 1 then ([| Sim.create ~wheel_bits () |], [||], None)
    else begin
      (* Computed first so an un-shardable cost table (no positive
         lookahead) is refused before any state exists. *)
      let lookahead = Topology.min_positive_latency topo costs in
      let reg = Sim.registry () in
      let sims = Array.init k (fun _ -> Sim.create ~wheel_bits ~registry:reg ()) in
      let shard_of = Array.init n_procs (fun p -> p * k / n_procs) in
      (sims, shard_of, Some (Shard.create ~sims ~lookahead ~shard_of))
    end
  in
  let sim = sims.(0) in
  let net = Network.create ~contention:net_contention ~sim ~topo ~costs ~stats () in
  (match shard_ with None -> () | Some sh -> Network.set_shard net sh);
  let procs =
    Array.init n_procs (fun id ->
        let psim = match shard_ with None -> sim | Some _ -> sims.(shard_of.(id)) in
        Processor.create ~sim:psim ~stats ~scheduler_cost:costs.Costs.scheduler ~id)
  in
  let engine = match engine with Some e -> e | None -> default_engine () in
  let eng = match engine with Frames -> Thread.frames_engine () | Cps -> Thread.cps_engine () in
  {
    sim;
    sims;
    shard_;
    costs;
    topo;
    net;
    procs;
    stats;
    rng = Rng.create ~seed;
    engine;
    eng;
    next_tid = 0;
    transport_ = None;
  }

let shards t = match t.shard_ with None -> 1 | Some sh -> Shard.shards sh

let n_procs t = Array.length t.procs

let proc t i =
  if i < 0 || i >= Array.length t.procs then
    invalid_arg (Printf.sprintf "Machine.proc: %d out of range [0,%d)" i (Array.length t.procs));
  t.procs.(i)

let spawn t ~on ?on_exit body =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  Thread.spawn ~tid ~rng:(Rng.split t.rng) ?on_exit ~engine:t.eng (proc t on) body

let transport t =
  match t.transport_ with
  | Some tr -> tr
  | None ->
    let tr =
      Transport.create ~sharded:(t.shard_ <> None) ~sim:t.sim ~costs:t.costs ~net:t.net
        ~procs:t.procs ~eng:t.eng
        ~spawn:(fun ~on body -> spawn t ~on body)
    in
    t.transport_ <- Some tr;
    tr

let now t = match t.shard_ with None -> Sim.now t.sim | Some sh -> Shard.clock sh

let events_fired t =
  match t.shard_ with None -> Sim.events_fired t.sim | Some sh -> Shard.fired sh

let shard_fired t =
  match t.shard_ with None -> [| Sim.events_fired t.sim |] | Some sh -> Shard.shard_fired sh

let at_global t time fn =
  match t.shard_ with None -> Sim.at t.sim time fn | Some sh -> Shard.at_global sh time fn

let run ?until t =
  (match t.shard_ with None -> Sim.run ?until t.sim | Some sh -> Shard.run ?until sh);
  Check.Trail.record_run ~clock:(now t) ~fired:(events_fired t) ~stats:t.stats

let digest t = Check.Trail.digest_of_run ~clock:(now t) ~fired:(events_fired t) ~stats:t.stats
