(** A social-graph traversal workload over the flat object space.

    [n] users, each one index in the prelude's object store, with
    CSR adjacency (two flat int arrays) — a million-user graph is four
    int vectors, no per-user records.  Edge targets are Zipf-skewed so
    low-numbered users are celebrity hubs, as in real follower graphs.

    Two traversals exercise the mechanisms differently: {!walk} chains
    remote accesses hop to hop (computation migration's best case — the
    activation follows the edges and returns once), while
    {!friends_of_friends} fans out from one user (isolated accesses,
    where RPC's round trips are no worse).  Walk paths are drawn from
    the walking thread's seeded stream before each visit, so RPC and
    migration traverse identical paths. *)

open Cm_runtime
open Cm_machine

type t

val create :
  Sysenv.t ->
  n:int ->
  ?avg_degree:int ->
  ?skew:float ->
  ?fused:bool ->
  node_procs:int array ->
  seed:int ->
  unit ->
  t
(** [create env ~n ~node_procs ~seed ()] builds the graph and registers
    its [n] users in the object space, homes scattered over
    [node_procs].  Degrees are uniform in [[1, 2*avg_degree)] (default
    average 8); edge targets follow Zipf([skew]) (default 0.8).
    [fused] (default [true]) runs every visit through the graph's
    {!Cm_runtime.Runtime.msite} method-sites — allocation-free steady
    state, digests identical to the generic path; [fused:false] keeps
    the generic [scope]/[call] composition (the A/B reference arm of
    [bench sites]). *)

val n_users : t -> int

val degree : t -> int -> int

val friend : t -> int -> int -> int
(** [friend t u j] is user [u]'s [j]-th friend. *)

val home : t -> int -> int
(** [home t u] is the processor user [u]'s object lives on. *)

val walk : t -> access:Runtime.access -> start:int -> steps:int -> int Thread.t
(** [walk t ~access ~start ~steps] visits [steps] users following
    random friend edges; returns the sum of visited degrees. *)

val friends_of_friends : t -> access:Runtime.access -> ?fanout:int -> int -> int Thread.t
(** [friends_of_friends t ~access u] visits [u] then its first [fanout]
    (default 8) friends; returns the sum of the friends' degrees. *)

val visit_work : int -> int
(** CPU cycles charged for visiting a user of the given degree. *)
