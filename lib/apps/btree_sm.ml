open Cm_engine
open Cm_machine
open Cm_memory
open Thread.Infix

(* Word offsets within a node block. *)
let off_version = 0

let off_is_leaf = 1

let off_nkeys = 2

let off_high = 3

let off_right = 4

(* Entries are stored interleaved — (key, child) pairs — as a real node
   layout would be; a key scan therefore touches a cache line per two
   entries, which is where the paper's shared-memory bandwidth goes.
   For leaves the child slot holds the record pointer (unused here). *)
let off_entries = 5

let key_off i = off_entries + (2 * i)

let child_off i = off_entries + (2 * i) + 1

(* Per-node bookkeeping kept outside simulated memory: the block base
   address and the node's reader-writer lock. *)
type sm_node = { base : Shmem.addr; lock : Rwlock.t }

type read_mode = Locked | Seqlock

type t = {
  env : Sysenv.t;
  read_mode : read_mode;
  fanout : int;
  cap : int;  (* array capacity per node: fanout + 1 *)
  mutable nodes : sm_node array;
  mutable n_nodes : int;
  anchor_lock : Lock.t;
  mutable root : int;
  mutable height : int;
  place_rng : Rng.t;
  node_procs : int array;
  mutable n_splits : int;
}

let mem t = Sysenv.mem t.env

let node_block_words t = off_entries + (2 * t.cap)

let node t i = t.nodes.(i)

let place t = t.node_procs.(Rng.int t.place_rng (Array.length t.node_procs))

(* Cycles a reader spends backing off when it catches a node
   mid-write. *)
let seqlock_backoff = 64

let alloc_node t ~home =
  if t.n_nodes = Array.length t.nodes then begin
    let padding = { base = 0; lock = Rwlock.create (mem t) ~home:t.node_procs.(0) } in
    let bigger = Array.make (max 16 (2 * Array.length t.nodes)) padding in
    Array.blit t.nodes 0 bigger 0 t.n_nodes;
    t.nodes <- bigger
  end;
  let base = Shmem.alloc (mem t) ~home ~words:(node_block_words t) in
  let lock = Rwlock.create (mem t) ~home in
  let idx = t.n_nodes in
  t.nodes.(idx) <- { base; lock };
  t.n_nodes <- idx + 1;
  idx

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

module Plan_tbl = Hashtbl.Make (struct
  type t = Btree_node.plan

  let equal = ( == )

  let hash = Hashtbl.hash
end)

(* Bulk loading happens before the clock starts: contents are poked
   straight into home memory. *)
let pour t idx ~is_leaf ~keys ~children ~high ~right =
  let m = mem t and base = (node t idx).base in
  Shmem.poke m (base + off_version) 0;
  Shmem.poke m (base + off_is_leaf) (if is_leaf then 1 else 0);
  Shmem.poke m (base + off_nkeys) (Array.length keys);
  Shmem.poke m (base + off_high) high;
  Shmem.poke m (base + off_right) right;
  Array.iteri (fun i k -> Shmem.poke m (base + key_off i) k) keys;
  Array.iteri (fun i c -> Shmem.poke m (base + child_off i) c) children

let materialize t plan =
  let height = Btree_node.plan_height plan in
  let ids = Plan_tbl.create 256 in
  for level = 0 to height - 1 do
    let nodes = Btree_node.plan_nodes_at_level plan level in
    let level_ids =
      List.map
        (fun p ->
          let idx = alloc_node t ~home:(place t) in
          (match p with
          | Btree_node.Leaf { keys; high } ->
            pour t idx ~is_leaf:true ~keys ~children:[||] ~high ~right:(-1)
          | Btree_node.Node { keys; high; children } ->
            let child_ids = Array.map (fun c -> Plan_tbl.find ids c) children in
            pour t idx ~is_leaf:false ~keys ~children:child_ids ~high ~right:(-1));
          Plan_tbl.add ids p idx;
          idx)
        nodes
    in
    let rec chain = function
      | a :: (b :: _ as rest) ->
        Shmem.poke (mem t) ((node t a).base + off_right) b;
        chain rest
      | [ _ ] | [] -> ()
    in
    chain level_ids
  done;
  (Plan_tbl.find ids plan, height)

let create env ?(read_mode = Locked) ~fanout ~plan ~node_procs ~placement_seed () =
  if fanout < 4 then invalid_arg "Btree_sm.create: fanout must be >= 4";
  if Array.length node_procs = 0 then invalid_arg "Btree_sm.create: no node processors";
  let anchor_lock = Lock.create (Sysenv.mem env) ~home:node_procs.(0) in
  let t =
    {
      env;
      read_mode;
      fanout;
      cap = fanout + 1;
      nodes = [||];
      n_nodes = 0;
      anchor_lock;
      root = -1;
      height = 0;
      place_rng = Rng.create ~seed:placement_seed;
      node_procs;
      n_splits = 0;
    }
  in
  let root, height = materialize t plan in
  t.root <- root;
  t.height <- height;
  t

(* ------------------------------------------------------------------ *)
(* Reads                                                              *)
(* ------------------------------------------------------------------ *)

type header = { h_leaf : bool; h_nkeys : int; h_high : int; h_right : int }

let read_header t idx =
  let base = (node t idx).base in
  let* words = Shmem.read_block (mem t) (base + off_is_leaf) 4 in
  Thread.return
    { h_leaf = words.(0) = 1; h_nkeys = words.(1); h_high = words.(2); h_right = words.(3) }

(* Linear scan of the sorted key area: the index of the first key >=
   [key] (or nkeys).  Reads every key it passes — the word traffic the
   paper's shared-memory bandwidth numbers reflect. *)
let scan_keys t idx ~nkeys ~key =
  let base = (node t idx).base in
  let rec go i =
    if i >= nkeys then Thread.return (i, false)
    else
      let* k = Shmem.read (mem t) (base + key_off i) in
      if k >= key then Thread.return (i, k = key) else go (i + 1)
  in
  go 0

(* One seqlock-protected visit.  [body] must only read; its result is
   discarded and retried when the version moved. *)
let rec seqlock_visit t idx (body : header -> 'r Thread.t) : 'r Thread.t =
  let base = (node t idx).base in
  let* v1 = Shmem.read (mem t) (base + off_version) in
  if v1 land 1 = 1 then
    let* () = Thread.sleep seqlock_backoff in
    seqlock_visit t idx body
  else
    let* hdr = read_header t idx in
    let* result = body hdr in
    let* v2 = Shmem.read (mem t) (base + off_version) in
    if v2 = v1 then Thread.return result
    else
      let* () = Thread.sleep seqlock_backoff in
      seqlock_visit t idx body

let step_body t idx key h =
  if key > h.h_high && h.h_right >= 0 then Thread.return (`Go (h.h_right, `Same))
  else if h.h_leaf then
    let* _, found = scan_keys t idx ~nkeys:h.h_nkeys ~key in
    Thread.return (`Found found)
  else
    let* i, _ = scan_keys t idx ~nkeys:h.h_nkeys ~key in
    let* child = Shmem.read (mem t) ((node t idx).base + child_off i) in
    Thread.return (`Go (child, `Deeper))

(* Route one step at node [idx] (read-only).  In [Locked] mode — the
   default, matching Wang's algorithm as the paper describes it (an
   update to a node blocks incoming operations, so readers synchronize
   too) — the visit takes the node's lock; the root's lock line then
   ping-pongs between every requester's cache, which is exactly the
   paper's shared-memory "data contention" at the root.  [Seqlock] is
   the lock-free-readers ablation. *)
let visit_step t idx key =
  match t.read_mode with
  | Seqlock -> seqlock_visit t idx (step_body t idx key)
  | Locked ->
    (* Readers share the node, but entering and leaving each cost an
       atomic update of the lock word — one exclusive transfer of that
       line per operation, serialized at the root. *)
    let lock = (node t idx).lock in
    let* () = Rwlock.acquire_read lock in
    let* h = read_header t idx in
    let* result = step_body t idx key h in
    let* () = Rwlock.release_read lock in
    Thread.return result

let lookup t key =
  let rec go idx =
    let* r = visit_step t idx key in
    match r with `Go (next, _) -> go next | `Found present -> Thread.return present
  in
  go t.root

(* ------------------------------------------------------------------ *)
(* Writes                                                             *)
(* ------------------------------------------------------------------ *)

(* All writers follow the same discipline: take the node lock, re-read
   the header (writers are excluded, readers tolerated), mutate between
   version bumps, release. *)

let write t a v = Shmem.write (mem t) a v

let read t a = Shmem.read (mem t) a

(* Shift the entry pairs right by one from [pos], reading and rewriting
   each word (the data movement an in-place node insert really does). *)
let shift_right t idx ~nkeys ~pos ~with_children =
  let base = (node t idx).base in
  let rec go j =
    if j < pos then Thread.return ()
    else
      let* k = read t (base + key_off j) in
      let* () = write t (base + key_off (j + 1)) k in
      let* () =
        if with_children then
          let* c = read t (base + child_off j) in
          write t (base + child_off (j + 1)) c
        else Thread.return ()
      in
      go (j - 1)
  in
  go (nkeys - 1)

(* Copy the upper halves of [idx]'s areas into fresh node [new_idx]
   (writes go through the protocol from the current processor). *)
let spill t idx new_idx ~keep ~nkeys ~with_children ~high ~right =
  let src = (node t idx).base and dst = (node t new_idx).base in
  let moved = nkeys - keep in
  let copy_entries =
    let rec go i =
      if i >= moved then Thread.return ()
      else
        let* k = read t (src + key_off (keep + i)) in
        let* () = write t (dst + key_off i) k in
        let* () =
          if with_children then
            let* c = read t (src + child_off (keep + i)) in
            write t (dst + child_off i) c
          else Thread.return ()
        in
        go (i + 1)
    in
    go 0
  in
  let* () = write t (dst + off_version) 0 in
  let* () = write t (dst + off_is_leaf) (if with_children then 0 else 1) in
  let* () = write t (dst + off_nkeys) moved in
  let* () = write t (dst + off_high) high in
  let* () = write t (dst + off_right) right in
  copy_entries

(* Split locked node [idx]; returns (separator, new node index).  The
   caller already bumped the version to odd and updates it back after. *)
let split_locked t idx ~nkeys ~is_leaf ~high ~right =
  let base = (node t idx).base in
  let keep = Btree_node.split_point ~nkeys in
  let new_idx = alloc_node t ~home:(place t) in
  t.n_splits <- t.n_splits + 1;
  Stats.incr t.env.Sysenv.machine.Machine.stats "btree.splits";
  let* () = spill t idx new_idx ~keep ~nkeys ~with_children:(not is_leaf) ~high ~right in
  let* sep = read t (base + key_off (keep - 1)) in
  let* () = write t (base + off_nkeys) keep in
  let* () = write t (base + off_high) sep in
  let* () = write t (base + off_right) new_idx in
  Thread.return (sep, new_idx)

(* Insert [key] into locked leaf [idx] (key is coverable).  Returns the
   leaf outcome. *)
let leaf_insert_locked t idx hdr key =
  let base = (node t idx).base in
  let* pos, present = scan_keys t idx ~nkeys:hdr.h_nkeys ~key in
  if present then Thread.return (`Done false)
  else begin
    (* Odd version: writer in progress; concurrent seqlock readers
       retry anything they read meanwhile. *)
    let* v = read t (base + off_version) in
    let* () = write t (base + off_version) (v + 1) in
    let* () = shift_right t idx ~nkeys:hdr.h_nkeys ~pos ~with_children:false in
    let* () = write t (base + key_off pos) key in
    let nkeys = hdr.h_nkeys + 1 in
    let* () = write t (base + off_nkeys) nkeys in
    let* result =
      if nkeys > t.fanout then
        let* sep, new_idx =
          split_locked t idx ~nkeys ~is_leaf:true ~high:hdr.h_high ~right:hdr.h_right
        in
        Thread.return (`Split (sep, new_idx, true))
      else Thread.return (`Done true)
    in
    let* () = write t (base + off_version) (v + 2) in
    Thread.return result
  end

(* Insert separator [sep] / child [new_child] into locked internal node
   [idx]. *)
let add_separator_locked t idx hdr ~sep ~new_child =
  let base = (node t idx).base in
  let* i, present = scan_keys t idx ~nkeys:hdr.h_nkeys ~key:sep in
  if present then Thread.return `Done
  else begin
    let* v = read t (base + off_version) in
    let* () = write t (base + off_version) (v + 1) in
    let* () = shift_right t idx ~nkeys:hdr.h_nkeys ~pos:i ~with_children:true in
    let* () = write t (base + key_off i) sep in
    let* () = write t (base + child_off (i + 1)) new_child in
    let nkeys = hdr.h_nkeys + 1 in
    let* () = write t (base + off_nkeys) nkeys in
    let* result =
      if nkeys > t.fanout then
        let* sep2, new2 =
          split_locked t idx ~nkeys ~is_leaf:false ~high:hdr.h_high ~right:hdr.h_right
        in
        Thread.return (`Split (sep2, new2))
      else Thread.return `Done
    in
    let* () = write t (base + off_version) (v + 2) in
    Thread.return result
  end

(* Lock [idx]; if [key] moved beyond it, follow right links (unlocking
   first).  Runs [body] on the locked, coverable node. *)
let rec with_covering_lock t idx ~key (body : int -> header -> 'r Thread.t) : 'r Thread.t =
  let lock = (node t idx).lock in
  let* () = Rwlock.acquire_write lock in
  let* hdr = read_header t idx in
  if key > hdr.h_high && hdr.h_right >= 0 then
    let* () = Rwlock.release_write lock in
    with_covering_lock t hdr.h_right ~key body
  else
    let* result = body idx hdr in
    let* () = Rwlock.release_write lock in
    Thread.return result

let rec descend_steps t idx ~sep ~steps =
  if steps <= 0 then Thread.return idx
  else
    let* r = visit_step t idx sep in
    match r with
    | `Go (next, `Same) -> descend_steps t next ~sep ~steps
    | `Go (next, `Deeper) -> descend_steps t next ~sep ~steps:(steps - 1)
    | `Found _ -> Thread.return idx

let try_root_split t ~left ~sep ~new_child =
  let* () = Lock.acquire t.anchor_lock in
  if t.root = left then begin
    let idx = alloc_node t ~home:(place t) in
    let base = (node t idx).base in
    let* () = write t (base + off_version) 0 in
    let* () = write t (base + off_is_leaf) 0 in
    let* () = write t (base + off_nkeys) 2 in
    let* () = write t (base + off_high) max_int in
    let* () = write t (base + off_right) (-1) in
    let* () = write t (base + key_off 0) sep in
    let* () = write t (base + key_off 1) max_int in
    let* () = write t (base + child_off 0) left in
    let* () = write t (base + child_off 1) new_child in
    t.root <- idx;
    t.height <- t.height + 1;
    Stats.incr t.env.Sysenv.machine.Machine.stats "btree.root_splits";
    let* () = Lock.release t.anchor_lock in
    Thread.return `Ok
  end
  else begin
    let stale = (t.root, t.height) in
    let* () = Lock.release t.anchor_lock in
    Thread.return (`Stale stale)
  end

let rec propagate t ~path ~sep ~new_child ~left ~level =
  match path with
  | parent :: rest ->
    let* landed_outcome =
      with_covering_lock t parent ~key:sep (fun idx hdr ->
          let* outcome = add_separator_locked t idx hdr ~sep ~new_child in
          Thread.return (idx, outcome))
    in
    (match landed_outcome with
    | _, `Done -> Thread.return ()
    | landed, `Split (sep2, new2) ->
      propagate t ~path:rest ~sep:sep2 ~new_child:new2 ~left:landed ~level:(level + 1))
  | [] -> insert_above t ~sep ~new_child ~left ~level

(* As in {!Btree_msg}: when the descent path is exhausted either split
   the root or locate an ancestor at [level + 1]; if a sibling's root
   split is still in flight the parent level does not exist yet — wait
   for it and retry. *)
and insert_above t ~sep ~new_child ~left ~level =
  let* r = try_root_split t ~left ~sep ~new_child in
  match r with
  | `Ok -> Thread.return ()
  | `Stale (root, height) when height - 1 >= level + 1 ->
    let steps = height - 1 - (level + 1) in
    let* ancestor = descend_steps t root ~sep ~steps in
    let* is_leaf = seqlock_visit t ancestor (fun h -> Thread.return h.h_leaf) in
    if is_leaf then begin
      Stats.incr t.env.Sysenv.machine.Machine.stats "btree.propagate_retries";
      let* () = Thread.sleep 500 in
      insert_above t ~sep ~new_child ~left ~level
    end
    else
      let* landed_outcome =
        with_covering_lock t ancestor ~key:sep (fun idx hdr ->
            let* outcome = add_separator_locked t idx hdr ~sep ~new_child in
            Thread.return (idx, outcome))
      in
      (match landed_outcome with
      | _, `Done -> Thread.return ()
      | landed, `Split (sep2, new2) ->
        propagate t ~path:[] ~sep:sep2 ~new_child:new2 ~left:landed ~level:(level + 1))
  | `Stale _ ->
    Stats.incr t.env.Sysenv.machine.Machine.stats "btree.propagate_retries";
    let* () = Thread.sleep 500 in
    insert_above t ~sep ~new_child ~left ~level

let insert t key =
  let rec go idx path =
    let* r = visit_step t idx key in
    match r with
    | `Go (next, `Same) -> go next path
    | `Go (next, `Deeper) -> go next (idx :: path)
    | `Found _ ->
      (* Reached a coverable leaf: do the write under its lock (the leaf
         may split or move right between our read and the lock). *)
      let* outcome =
        with_covering_lock t idx ~key (fun locked hdr ->
            let* o = leaf_insert_locked t locked hdr key in
            Thread.return (locked, o))
      in
      (match outcome with
      | _, `Done added -> Thread.return added
      | landed, `Split (sep, new_idx, added) ->
        let* () = propagate t ~path ~sep ~new_child:new_idx ~left:landed ~level:0 in
        Thread.return added)
  in
  go t.root []

(* ------------------------------------------------------------------ *)
(* Inspection (not simulated)                                         *)
(* ------------------------------------------------------------------ *)

let height t = t.height

let splits t = t.n_splits

let peek t a = Shmem.peek (mem t) a

let peek_node t idx =
  let base = (node t idx).base in
  let nkeys = peek t (base + off_nkeys) in
  ( peek t (base + off_is_leaf) = 1,
    nkeys,
    peek t (base + off_high),
    peek t (base + off_right),
    Array.init nkeys (fun i -> peek t (base + key_off i)),
    Array.init nkeys (fun i -> peek t (base + child_off i)) )

let root_home t = Shmem.home_of (mem t) (node t t.root).base

let root_children t =
  let is_leaf, nkeys, _, _, _, _ = peek_node t t.root in
  if is_leaf then 0 else nkeys

let all_keys t =
  let rec leftmost idx =
    let is_leaf, _, _, _, _, children = peek_node t idx in
    if is_leaf then idx else leftmost children.(0)
  in
  let rec walk idx acc =
    let _, _, _, right, keys, _ = peek_node t idx in
    let acc = List.rev_append (Array.to_list keys) acc in
    if right >= 0 then walk right acc else List.rev acc
  in
  walk (leftmost t.root) []

let check_invariants t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec check idx ~low ~high_bound =
    let is_leaf, nkeys, high, _, keys, children = peek_node t idx in
    let rec sorted i = if i >= nkeys - 1 then true else keys.(i) < keys.(i + 1) && sorted (i + 1) in
    if nkeys = 0 then fail "node %d empty" idx
    else if not (sorted 0) then fail "node %d keys not sorted" idx
    else if high <> high_bound then fail "node %d high %d <> bound %d" idx high high_bound
    else if nkeys > t.fanout then fail "node %d overfull" idx
    else if keys.(0) <= low then fail "node %d key below low bound" idx
    else if is_leaf then Ok ()
    else if keys.(nkeys - 1) <> high then fail "internal %d last key <> high" idx
    else begin
      let rec check_children i low =
        if i >= nkeys then Ok ()
        else
          match check children.(i) ~low ~high_bound:keys.(i) with
          | Error _ as e -> e
          | Ok () ->
            let _, _, _, right, _, _ = peek_node t children.(i) in
            if i + 1 < nkeys && right <> children.(i + 1) then
              fail "node %d: child %d not linked to sibling" idx children.(i)
            else check_children (i + 1) keys.(i)
      in
      check_children 0 low
    end
  in
  match check t.root ~low:min_int ~high_bound:max_int with
  | Error _ as e -> e
  | Ok () ->
    let keys = all_keys t in
    let rec ascending = function
      | a :: (b :: _ as rest) -> if a < b then ascending rest else fail "leaf chain unsorted"
      | [ _ ] | [] -> Ok ()
    in
    ascending keys
