(* [key]/[keys] are annotated so the comparisons below compile to direct
   int compares, not the polymorphic [compare_val] runtime — this search
   runs once per probe of every simulated descent. *)
let find_child_index ~keys ~nkeys ~key:(key : int) =
  if nkeys = 0 || key > keys.(nkeys - 1) then
    invalid_arg "Btree_node.find_child_index: key above high key";
  (* Smallest i with key <= keys.(i). *)
  let lo = ref 0 and hi = ref (nkeys - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if key <= keys.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let probes ~nkeys =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 1 (max 1 nkeys)

let insertion_point ~keys ~nkeys ~key:(key : int) =
  let lo = ref 0 and hi = ref nkeys in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) >= key then hi := mid else lo := mid + 1
  done;
  !lo

let member ~keys ~nkeys ~key =
  let i = insertion_point ~keys ~nkeys ~key in
  i < nkeys && keys.(i) = key

let insert_at ~keys ~nkeys ~pos v =
  if pos < 0 || pos > nkeys || nkeys >= Array.length keys then
    invalid_arg "Btree_node.insert_at: bad position";
  Array.blit keys pos keys (pos + 1) (nkeys - pos);
  keys.(pos) <- v

let split_point ~nkeys = (nkeys + 1) / 2

(* ------------------------------------------------------------------ *)
(* Bulk loading                                                       *)
(* ------------------------------------------------------------------ *)

type plan =
  | Leaf of { keys : int array; high : int }
  | Node of { keys : int array; high : int; children : plan array }

let plan_high = function Leaf { high; _ } -> high | Node { high; _ } -> high

let chunk ~size items =
  let rec go acc current n = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
      if n = size then go (List.rev current :: acc) [ x ] 1 rest
      else go acc (x :: current) (n + 1) rest
  in
  go [] [] 0 items

let build_plan ~keys ~fanout ~fill =
  if fanout < 4 then invalid_arg "Btree_node.build_plan: fanout must be >= 4";
  let keys = List.sort_uniq Int.compare keys in
  if keys = [] then invalid_arg "Btree_node.build_plan: no keys";
  let target = max 2 (min fanout (int_of_float (fill *. float_of_int fanout +. 0.5))) in
  let leaves =
    List.map
      (fun ks ->
        let arr = Array.of_list ks in
        Leaf { keys = arr; high = arr.(Array.length arr - 1) })
      (chunk ~size:target keys)
  in
  (* The rightmost node of every level routes everything above it. *)
  let rec raise_level nodes =
    match nodes with
    | [] -> assert false
    | [ only ] -> only
    | _ ->
      let groups = chunk ~size:target nodes in
      let parents =
        List.map
          (fun children ->
            let children = Array.of_list children in
            let keys = Array.map plan_high children in
            Node { keys; high = keys.(Array.length keys - 1); children })
          groups
      in
      raise_level parents
  in
  let mark_rightmost plan =
    (* Walk the right spine, setting high keys (and the internal
       separator for the last child) to max_int. *)
    let rec go = function
      | Leaf { keys; _ } -> Leaf { keys; high = max_int }
      | Node { keys; children; _ } ->
        let keys = Array.copy keys and children = Array.copy children in
        let last = Array.length children - 1 in
        children.(last) <- go children.(last);
        keys.(last) <- max_int;
        Node { keys; high = max_int; children }
    in
    go plan
  in
  mark_rightmost (raise_level leaves)

let rec plan_height = function
  | Leaf _ -> 1
  | Node { children; _ } -> 1 + plan_height children.(0)

let plan_nodes_at_level plan level =
  let rec collect node l acc =
    if l = 0 then node :: acc
    else
      match node with
      | Leaf _ -> acc
      | Node { children; _ } -> Array.fold_right (fun c acc -> collect c (l - 1) acc) children acc
  in
  collect plan (plan_height plan - 1 - level) []

let rec plan_keys = function
  | Leaf { keys; _ } -> Array.to_list keys
  | Node { children; _ } -> List.concat_map plan_keys (Array.to_list children)

let plan_root_children = function Leaf _ -> 0 | Node { children; _ } -> Array.length children
