open Cm_machine
open Cm_memory
open Cm_runtime
open Cm_core
open Thread.Infix

type mode = Messaging of Prelude.access | Adaptive | Shared_memory

let mode_name = function
  | Messaging Prelude.Rpc -> "rpc"
  | Messaging Prelude.Migrate -> "migrate"
  | Adaptive -> "adaptive"
  | Shared_memory -> "shared_memory"

(* CPU cost of searching/updating a bucket of [n] entries. *)
let bucket_work n = 40 + (6 * n)

(* Messaging-mode bucket state. *)
type bucket = { mutable entries : (int * int) list }

type repr =
  | Msg of {
      rt : Runtime.t;
      access : Prelude.access;
      objs : bucket Prelude.obj array;
    }
  | Adapt of {
      ad : Adaptive.t;
      objs : bucket Prelude.obj array;
      get_site : Adaptive.site;
      put_site : Adaptive.site;
      scan_site : Adaptive.site;
    }
  | Sm of { mem : Shmem.t; bases : Shmem.addr array; locks : Lock.t array; capacity : int }

type t = { env : Sysenv.t; buckets : int; capacity : int; repr : repr }

(* SM bucket layout: word 0 = entry count, then (key, value) pairs. *)
let off_count = 0

let off_pairs = 1

let create env ?(buckets = 64) ?(bucket_capacity = 64) ~mode ~node_procs () =
  if buckets <= 0 then invalid_arg "Dht.create: buckets must be positive";
  if Array.length node_procs = 0 then invalid_arg "Dht.create: no node processors";
  let home i = node_procs.(i mod Array.length node_procs) in
  let repr =
    match mode with
    | Messaging access ->
      Msg
        {
          rt = Sysenv.runtime env;
          access;
          objs =
            Array.init buckets (fun i ->
                Prelude.make_obj env.Sysenv.prelude ~home:(home i) { entries = [] });
        }
    | Adaptive ->
      let ad = Adaptive.create (Sysenv.runtime env) ~explore:6 () in
      Adapt
        {
          ad;
          objs =
            Array.init buckets (fun i ->
                Prelude.make_obj env.Sysenv.prelude ~home:(home i) { entries = [] });
          get_site = Adaptive.site ad ~name:"dht.get";
          put_site = Adaptive.site ad ~name:"dht.put";
          scan_site = Adaptive.site ad ~name:"dht.range_sum";
        }
    | Shared_memory ->
      let mem = Sysenv.mem env in
      Sm
        {
          mem;
          bases =
            Array.init buckets (fun i ->
                Shmem.alloc mem ~home:(home i) ~words:(off_pairs + (2 * bucket_capacity)));
          locks = Array.init buckets (fun i -> Lock.create mem ~home:(home i));
          capacity = bucket_capacity;
        }
  in
  { env; buckets; capacity = bucket_capacity; repr }

let n_buckets t = t.buckets

let bucket_of_key t key = abs (key * 2654435761) mod t.buckets

(* ------------------------------------------------------------------ *)
(* Messaging bodies (run at the bucket's home)                        *)
(* ------------------------------------------------------------------ *)

let method_get key (b : bucket) =
  let* () = Thread.compute (bucket_work (List.length b.entries)) in
  Thread.return (List.assoc_opt key b.entries)

let method_put t key value (b : bucket) =
  let* () = Thread.compute (bucket_work (List.length b.entries)) in
  if List.mem_assoc key b.entries then begin
    b.entries <- (key, value) :: List.remove_assoc key b.entries;
    Thread.return ()
  end
  else if List.length b.entries >= t.capacity then failwith "Dht.put: bucket full"
  else begin
    b.entries <- (key, value) :: b.entries;
    Thread.return ()
  end

let method_sum (b : bucket) =
  let* () = Thread.compute (bucket_work (List.length b.entries)) in
  Thread.return (List.fold_left (fun acc (_, v) -> acc + v) 0 b.entries)

(* ------------------------------------------------------------------ *)
(* Operations                                                         *)
(* ------------------------------------------------------------------ *)

let obj_home objs i = Prelude.obj_home objs.(i)

let msg_call rt ~access objs i body =
  Runtime.scope rt ~result_words:2
    (Runtime.call rt ~access ~home:(obj_home objs i) ~args_words:8 ~result_words:2
       (body (Prelude.obj_state objs.(i))))

let adapt_call ad ~site objs i body =
  Adaptive.scope ad
    (Adaptive.call ad ~site ~home:(obj_home objs i) ~args_words:8 ~result_words:2
       (body (Prelude.obj_state objs.(i))))

(* Shared-memory bucket search: scan the pair area under the bucket
   lock, reading every key it passes. *)
let sm_find mem base ~count ~key =
  let rec go i =
    if i >= count then Thread.return None
    else
      let* k = Shmem.read mem (base + off_pairs + (2 * i)) in
      if k = key then Thread.return (Some i) else go (i + 1)
  in
  go 0

let sm_get mem locks bases t key =
  let i = bucket_of_key t key in
  let base = bases.(i) in
  Lock.with_lock locks.(i) (fun () ->
      let* count = Shmem.read mem (base + off_count) in
      let* slot = sm_find mem base ~count ~key in
      let* () = Thread.compute (bucket_work count) in
      match slot with
      | None -> Thread.return None
      | Some s ->
        let* v = Shmem.read mem (base + off_pairs + (2 * s) + 1) in
        Thread.return (Some v))

let sm_put mem locks bases capacity t ~key ~value =
  let i = bucket_of_key t key in
  let base = bases.(i) in
  Lock.with_lock locks.(i) (fun () ->
      let* count = Shmem.read mem (base + off_count) in
      let* slot = sm_find mem base ~count ~key in
      let* () = Thread.compute (bucket_work count) in
      match slot with
      | Some s -> Shmem.write mem (base + off_pairs + (2 * s) + 1) value
      | None ->
        if count >= capacity then failwith "Dht.put: bucket full"
        else
          let* () = Shmem.write mem (base + off_pairs + (2 * count)) key in
          let* () = Shmem.write mem (base + off_pairs + (2 * count) + 1) value in
          Shmem.write mem (base + off_count) (count + 1))

let sm_sum_bucket mem locks bases i =
  let base = bases.(i) in
  Lock.with_lock locks.(i) (fun () ->
      let* count = Shmem.read mem (base + off_count) in
      let* () = Thread.compute (bucket_work count) in
      let rec go s acc =
        if s >= count then Thread.return acc
        else
          let* v = Shmem.read mem (base + off_pairs + (2 * s) + 1) in
          go (s + 1) (acc + v)
      in
      go 0 0)

let get t key =
  match t.repr with
  | Msg { rt; access; objs } -> msg_call rt ~access objs (bucket_of_key t key) (method_get key)
  | Adapt { ad; objs; get_site; _ } ->
    adapt_call ad ~site:get_site objs (bucket_of_key t key) (method_get key)
  | Sm { mem; bases; locks; _ } -> sm_get mem locks bases t key

let put t ~key ~value =
  match t.repr with
  | Msg { rt; access; objs } ->
    msg_call rt ~access objs (bucket_of_key t key) (method_put t key value)
  | Adapt { ad; objs; put_site; _ } ->
    adapt_call ad ~site:put_site objs (bucket_of_key t key) (method_put t key value)
  | Sm { mem; bases; locks; capacity } -> sm_put mem locks bases capacity t ~key ~value

let range_sum t ~first_bucket ~n_buckets =
  if n_buckets <= 0 then invalid_arg "Dht.range_sum: empty range";
  let bucket_at j = (first_bucket + j) mod t.buckets in
  match t.repr with
  | Msg { rt; access; objs } ->
    Runtime.scope rt ~result_words:2
      (let rec go j acc =
         if j >= n_buckets then Thread.return acc
         else
           let i = bucket_at j in
           let* s =
             Runtime.call rt ~access ~home:(obj_home objs i) ~args_words:8 ~result_words:2
               (method_sum (Prelude.obj_state objs.(i)))
           in
           go (j + 1) (acc + s)
       in
       go 0 0)
  | Adapt { ad; objs; scan_site; _ } ->
    Adaptive.scope ad
      (let rec go j acc =
         if j >= n_buckets then Thread.return acc
         else
           let i = bucket_at j in
           let* s =
             Adaptive.call ad ~site:scan_site ~home:(obj_home objs i) ~args_words:8
               ~result_words:2
               (method_sum (Prelude.obj_state objs.(i)))
           in
           go (j + 1) (acc + s)
       in
       go 0 0)
  | Sm { mem; bases; locks; _ } ->
    let rec go j acc =
      if j >= n_buckets then Thread.return acc
      else
        let* s = sm_sum_bucket mem locks bases (bucket_at j) in
        go (j + 1) (acc + s)
    in
    go 0 0

(* ------------------------------------------------------------------ *)
(* Inspection (not simulated)                                         *)
(* ------------------------------------------------------------------ *)

let contents t =
  let pairs =
    match t.repr with
    | Msg { objs; _ } | Adapt { objs; _ } ->
      Array.to_list objs |> List.concat_map (fun o -> (Prelude.obj_state o).entries)
    | Sm { mem; bases; _ } ->
      Array.to_list bases
      |> List.concat_map (fun base ->
             let count = Shmem.peek mem (base + off_count) in
             List.init count (fun s ->
                 ( Shmem.peek mem (base + off_pairs + (2 * s)),
                   Shmem.peek mem (base + off_pairs + (2 * s) + 1) )))
  in
  List.sort
    (fun (k1, v1) (k2, v2) ->
      match Int.compare k1 k2 with 0 -> Int.compare v1 v2 | c -> c)
    pairs

let size t = List.length (contents t)

let adaptive_report t =
  match t.repr with
  | Adapt { ad; get_site; put_site; scan_site; _ } ->
    List.map
      (fun s -> (Adaptive.site_name s, Adaptive.site_estimate ad s, Adaptive.site_samples ad s))
      [ get_site; put_site; scan_site ]
  | Msg _ | Sm _ -> []
