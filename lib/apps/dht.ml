open Cm_machine
open Cm_memory
open Cm_runtime
open Cm_core
open Thread.Infix

type mode = Messaging of Prelude.access | Adaptive | Shared_memory

let mode_name = function
  | Messaging Prelude.Rpc -> "rpc"
  | Messaging Prelude.Migrate -> "migrate"
  | Adaptive -> "adaptive"
  | Shared_memory -> "shared_memory"

(* CPU cost of searching/updating a bucket of [n] entries. *)
let bucket_work n = 40 + (6 * n)

(* Bucket layout, shared by every representation: word 0 = entry count,
   then (key, value) pairs.  The messaging/adaptive reprs hold it as one
   flat int array per bucket (a single unboxed block, preallocated at
   capacity — steady-state puts allocate nothing); the shared-memory
   repr holds the same layout in simulated coherent memory. *)
let off_count = 0

let off_pairs = 1

type bucket = int array

type repr =
  | Msg of {
      rt : Runtime.t;
      access : Prelude.access;
      objs : bucket Prelude.obj array;
      (* The fused method-site table (one [Runtime.msite] per method):
         the steady-state get/put path over these is allocation-free.
         [fused = false] keeps the generic [scope]/[call] composition —
         the A/B reference arm of [bench sites]. *)
      fused : bool;
      get_ms : int option Runtime.msite;
      put_ms : unit Runtime.msite;
      sum_ms : int Runtime.msite;
    }
  | Adapt of {
      ad : Adaptive.t;
      objs : bucket Prelude.obj array;
      get_site : Adaptive.site;
      put_site : Adaptive.site;
      scan_site : Adaptive.site;
    }
  | Sm of { mem : Shmem.t; bases : Shmem.addr array; locks : Lock.t array; capacity : int }

type t = { env : Sysenv.t; buckets : int; capacity : int; repr : repr }

let n_buckets t = t.buckets

let bucket_of_key t key = abs (key * 2654435761) mod t.buckets

(* ------------------------------------------------------------------ *)
(* Flat-bucket primitives                                             *)
(* ------------------------------------------------------------------ *)

let bkt_count (b : bucket) = b.(off_count)

(* Slot index of [key], or -1.  The scan recursion lives at top level:
   an inner [let rec] would close over [b]/[key]/[n] and allocate ~6
   minor words per lookup — on the path every get/put/preload takes. *)
let rec bkt_find_from (b : bucket) key n s =
  if s >= n then -1
  else if b.(off_pairs + (2 * s)) = key then s
  else bkt_find_from b key n (s + 1)

let bkt_find (b : bucket) key = bkt_find_from b key b.(off_count) 0

let bkt_set (b : bucket) s value = b.(off_pairs + (2 * s) + 1) <- value

let bkt_append (b : bucket) key value =
  let n = b.(off_count) in
  b.(off_pairs + (2 * n)) <- key;
  b.(off_pairs + (2 * n) + 1) <- value;
  b.(off_count) <- n + 1

(* ------------------------------------------------------------------ *)
(* Messaging bodies (run at the bucket's home)                        *)
(* ------------------------------------------------------------------ *)

let method_get key (b : bucket) =
  let* () = Thread.compute (bucket_work (bkt_count b)) in
  match bkt_find b key with
  | -1 -> Thread.return None
  | s -> Thread.return (Some b.(off_pairs + (2 * s) + 1))

let method_put capacity key value (b : bucket) =
  let* () = Thread.compute (bucket_work (bkt_count b)) in
  match bkt_find b key with
  | -1 ->
    if bkt_count b >= capacity then failwith "Dht.put: bucket full"
    else begin
      bkt_append b key value;
      Thread.return ()
    end
  | s ->
    bkt_set b s value;
    Thread.return ()

let method_sum (b : bucket) =
  let* () = Thread.compute (bucket_work (bkt_count b)) in
  let n = bkt_count b in
  let acc = ref 0 in
  for s = 0 to n - 1 do
    acc := !acc + b.(off_pairs + (2 * s) + 1)
  done;
  Thread.return !acc

(* ------------------------------------------------------------------ *)
(* Fused method-site bodies                                           *)
(* ------------------------------------------------------------------ *)

(* The frame twins of the messaging bodies above: same bucket reads,
   same [bucket_work] charge at the same point, expressed as static
   steps over the method-site registers so a steady-state get/put
   allocates nothing (the [Some value] of a successful get aside).
   The per-site step closures below are built once per table. *)

let ms_bucket space c : bucket =
  Obj.obj (Objspace.state space (Objspace.id_of_int (Runtime.msite_obj c)))

let get_frame_body space =
  let done_ c =
    let b = ms_bucket space c in
    match bkt_find b (Runtime.msite_arg_a c) with
    | -1 -> Runtime.msite_finish c None
    | s -> Runtime.msite_finish c (Some b.(off_pairs + (2 * s) + 1))
  in
  fun c ->
    let b = ms_bucket space c in
    Thread.Frame.hold_then c (bucket_work (bkt_count b)) done_

let put_frame_body space capacity =
  let done_ c =
    let b = ms_bucket space c in
    let key = Runtime.msite_arg_a c in
    (match bkt_find b key with
    | -1 ->
      if bkt_count b >= capacity then failwith "Dht.put: bucket full"
      else bkt_append b key (Runtime.msite_arg_b c)
    | s -> bkt_set b s (Runtime.msite_arg_b c));
    Runtime.msite_finish c ()
  in
  fun c ->
    let b = ms_bucket space c in
    Thread.Frame.hold_then c (bucket_work (bkt_count b)) done_

let sum_frame_body space =
  let done_ c =
    let b = ms_bucket space c in
    let n = bkt_count b in
    let acc = ref 0 in
    for s = 0 to n - 1 do
      acc := !acc + b.(off_pairs + (2 * s) + 1)
    done;
    Runtime.msite_finish c !acc
  in
  fun c ->
    let b = ms_bucket space c in
    Thread.Frame.hold_then c (bucket_work (bkt_count b)) done_

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let create env ?(buckets = 64) ?(bucket_capacity = 64) ?(fused = true) ~mode ~node_procs () =
  if buckets <= 0 then invalid_arg "Dht.create: buckets must be positive";
  if Array.length node_procs = 0 then invalid_arg "Dht.create: no node processors";
  let home i = node_procs.(i mod Array.length node_procs) in
  let fresh_bucket () = Array.make (off_pairs + (2 * bucket_capacity)) 0 in
  let repr =
    match mode with
    | Messaging access ->
      let p = env.Sysenv.prelude in
      let rt = Sysenv.runtime env in
      let objs =
        Array.init buckets (fun i -> Prelude.make_obj p ~home:(home i) (fresh_bucket ()))
      in
      let space = Prelude.space p in
      let state obj : bucket = Obj.obj (Objspace.state space (Objspace.id_of_int obj)) in
      Msg
        {
          rt;
          access;
          objs;
          fused;
          get_ms =
            Runtime.msite rt ~access ~space ~args_words:8 ~result_words:2
              ~frame_body:(get_frame_body space)
              ~cps_body:(fun ~obj ~a ~b:_ -> method_get a (state obj));
          put_ms =
            Runtime.msite rt ~access ~space ~args_words:8 ~result_words:2
              ~frame_body:(put_frame_body space bucket_capacity)
              ~cps_body:(fun ~obj ~a ~b -> method_put bucket_capacity a b (state obj));
          sum_ms =
            Runtime.msite rt ~access ~space ~args_words:8 ~result_words:2
              ~frame_body:(sum_frame_body space)
              ~cps_body:(fun ~obj ~a:_ ~b:_ -> method_sum (state obj));
        }
    | Adaptive ->
      let ad = Adaptive.create (Sysenv.runtime env) ~explore:6 () in
      Adapt
        {
          ad;
          objs =
            Array.init buckets (fun i ->
                Prelude.make_obj env.Sysenv.prelude ~home:(home i) (fresh_bucket ()));
          get_site = Adaptive.site ad ~name:"dht.get";
          put_site = Adaptive.site ad ~name:"dht.put";
          scan_site = Adaptive.site ad ~name:"dht.range_sum";
        }
    | Shared_memory ->
      let mem = Sysenv.mem env in
      Sm
        {
          mem;
          bases =
            Array.init buckets (fun i ->
                Shmem.alloc mem ~home:(home i) ~words:(off_pairs + (2 * bucket_capacity)));
          locks = Array.init buckets (fun i -> Lock.create mem ~home:(home i));
          capacity = bucket_capacity;
        }
  in
  { env; buckets; capacity = bucket_capacity; repr }

(* ------------------------------------------------------------------ *)
(* Operations                                                         *)
(* ------------------------------------------------------------------ *)

let obj_home p objs i = Prelude.obj_home p objs.(i)

let msg_call p rt ~access objs i body =
  Runtime.scope rt ~result_words:2
    (Runtime.call rt ~access ~home:(obj_home p objs i) ~args_words:8 ~result_words:2
       (body (Prelude.obj_state p objs.(i))))

let adapt_call p ad ~site objs i body =
  Adaptive.scope ad
    (Adaptive.call ad ~site ~home:(obj_home p objs i) ~args_words:8 ~result_words:2
       (body (Prelude.obj_state p objs.(i))))

(* Shared-memory bucket search: scan the pair area under the bucket
   lock, reading every key it passes. *)
let sm_find mem base ~count ~key =
  let rec go i =
    if i >= count then Thread.return None
    else
      let* k = Shmem.read mem (base + off_pairs + (2 * i)) in
      if k = key then Thread.return (Some i) else go (i + 1)
  in
  go 0

let sm_get mem locks bases t key =
  let i = bucket_of_key t key in
  let base = bases.(i) in
  Lock.with_lock locks.(i) (fun () ->
      let* count = Shmem.read mem (base + off_count) in
      let* slot = sm_find mem base ~count ~key in
      let* () = Thread.compute (bucket_work count) in
      match slot with
      | None -> Thread.return None
      | Some s ->
        let* v = Shmem.read mem (base + off_pairs + (2 * s) + 1) in
        Thread.return (Some v))

let sm_put mem locks bases capacity t ~key ~value =
  let i = bucket_of_key t key in
  let base = bases.(i) in
  Lock.with_lock locks.(i) (fun () ->
      let* count = Shmem.read mem (base + off_count) in
      let* slot = sm_find mem base ~count ~key in
      let* () = Thread.compute (bucket_work count) in
      match slot with
      | Some s -> Shmem.write mem (base + off_pairs + (2 * s) + 1) value
      | None ->
        if count >= capacity then failwith "Dht.put: bucket full"
        else
          let* () = Shmem.write mem (base + off_pairs + (2 * count)) key in
          let* () = Shmem.write mem (base + off_pairs + (2 * count) + 1) value in
          Shmem.write mem (base + off_count) (count + 1))

let sm_sum_bucket mem locks bases i =
  let base = bases.(i) in
  Lock.with_lock locks.(i) (fun () ->
      let* count = Shmem.read mem (base + off_count) in
      let* () = Thread.compute (bucket_work count) in
      let rec go s acc =
        if s >= count then Thread.return acc
        else
          let* v = Shmem.read mem (base + off_pairs + (2 * s) + 1) in
          go (s + 1) (acc + v)
      in
      go 0 0)

(* [get]/[put] take their context and continuation as explicit
   parameters: call sites that supply everything (the rewritten
   requester loops) compile to one saturated call, so the fused path
   builds no intermediate monad closure per operation. *)
let get t key c k =
  match t.repr with
  | Msg { rt; access; objs; fused; get_ms; _ } ->
    let i = bucket_of_key t key in
    if fused then Runtime.msite_scoped get_ms ~obj:(objs.(i) :> int) ~a:key ~b:0 c k
    else msg_call t.env.Sysenv.prelude rt ~access objs i (method_get key) c k
  | Adapt { ad; objs; get_site; _ } ->
    adapt_call t.env.Sysenv.prelude ad ~site:get_site objs (bucket_of_key t key)
      (method_get key) c k
  | Sm { mem; bases; locks; _ } -> sm_get mem locks bases t key c k

let put t ~key ~value c k =
  match t.repr with
  | Msg { rt; access; objs; fused; put_ms; _ } ->
    let i = bucket_of_key t key in
    if fused then Runtime.msite_scoped put_ms ~obj:(objs.(i) :> int) ~a:key ~b:value c k
    else msg_call t.env.Sysenv.prelude rt ~access objs i (method_put t.capacity key value) c k
  | Adapt { ad; objs; put_site; _ } ->
    adapt_call t.env.Sysenv.prelude ad ~site:put_site objs (bucket_of_key t key)
      (method_put t.capacity key value) c k
  | Sm { mem; bases; locks; capacity } -> sm_put mem locks bases capacity t ~key ~value c k

let range_sum t ~first_bucket ~n_buckets =
  if n_buckets <= 0 then invalid_arg "Dht.range_sum: empty range";
  let bucket_at j = (first_bucket + j) mod t.buckets in
  let p = t.env.Sysenv.prelude in
  match t.repr with
  | Msg { rt; access; objs; fused; sum_ms; _ } ->
    Runtime.scope rt ~result_words:2
      (let rec go j acc =
         if j >= n_buckets then Thread.return acc
         else
           let i = bucket_at j in
           let* s =
             if fused then Runtime.msite_call sum_ms ~obj:(objs.(i) :> int) ~a:0 ~b:0
             else
               Runtime.call rt ~access ~home:(obj_home p objs i) ~args_words:8 ~result_words:2
                 (method_sum (Prelude.obj_state p objs.(i)))
           in
           go (j + 1) (acc + s)
       in
       go 0 0)
  | Adapt { ad; objs; scan_site; _ } ->
    Adaptive.scope ad
      (let rec go j acc =
         if j >= n_buckets then Thread.return acc
         else
           let i = bucket_at j in
           let* s =
             Adaptive.call ad ~site:scan_site ~home:(obj_home p objs i) ~args_words:8
               ~result_words:2
               (method_sum (Prelude.obj_state p objs.(i)))
           in
           go (j + 1) (acc + s)
       in
       go 0 0)
  | Sm { mem; bases; locks; _ } ->
    let rec go j acc =
      if j >= n_buckets then Thread.return acc
      else
        let* s = sm_sum_bucket mem locks bases (bucket_at j) in
        go (j + 1) (acc + s)
    in
    go 0 0

(* ------------------------------------------------------------------ *)
(* Direct access (not simulated)                                      *)
(* ------------------------------------------------------------------ *)

(* [preload]/[peek] bypass the simulation: million-entry tables are
   built (and spot-checked) in real time before the clock starts, not
   one simulated put at a time. *)

let preload t ~key ~value =
  let i = bucket_of_key t key in
  match t.repr with
  | Msg { objs; _ } | Adapt { objs; _ } ->
    let b = Prelude.obj_state t.env.Sysenv.prelude objs.(i) in
    (match bkt_find b key with
    | -1 ->
      if bkt_count b >= t.capacity then failwith "Dht.preload: bucket full"
      else bkt_append b key value
    | s -> bkt_set b s value)
  | Sm { mem; bases; _ } ->
    let base = bases.(i) in
    let count = Shmem.peek mem (base + off_count) in
    let rec find s = if s >= count then -1 else if Shmem.peek mem (base + off_pairs + (2 * s)) = key then s else find (s + 1) in
    (match find 0 with
    | -1 ->
      if count >= t.capacity then failwith "Dht.preload: bucket full"
      else begin
        Shmem.poke mem (base + off_pairs + (2 * count)) key;
        Shmem.poke mem (base + off_pairs + (2 * count) + 1) value;
        Shmem.poke mem (base + off_count) (count + 1)
      end
    | s -> Shmem.poke mem (base + off_pairs + (2 * s) + 1) value)

let peek t key =
  let i = bucket_of_key t key in
  match t.repr with
  | Msg { objs; _ } | Adapt { objs; _ } ->
    let b = Prelude.obj_state t.env.Sysenv.prelude objs.(i) in
    (match bkt_find b key with -1 -> None | s -> Some b.(off_pairs + (2 * s) + 1))
  | Sm { mem; bases; _ } ->
    let base = bases.(i) in
    let count = Shmem.peek mem (base + off_count) in
    let rec find s = if s >= count then -1 else if Shmem.peek mem (base + off_pairs + (2 * s)) = key then s else find (s + 1) in
    (match find 0 with
    | -1 -> None
    | s -> Some (Shmem.peek mem (base + off_pairs + (2 * s) + 1)))

(* ------------------------------------------------------------------ *)
(* Inspection (not simulated)                                         *)
(* ------------------------------------------------------------------ *)

let contents t =
  let pairs =
    match t.repr with
    | Msg { objs; _ } | Adapt { objs; _ } ->
      Array.to_list objs
      |> List.concat_map (fun o ->
             let b = Prelude.obj_state t.env.Sysenv.prelude o in
             List.init (bkt_count b)
               (fun s -> (b.(off_pairs + (2 * s)), b.(off_pairs + (2 * s) + 1))))
    | Sm { mem; bases; _ } ->
      Array.to_list bases
      |> List.concat_map (fun base ->
             let count = Shmem.peek mem (base + off_count) in
             List.init count (fun s ->
                 ( Shmem.peek mem (base + off_pairs + (2 * s)),
                   Shmem.peek mem (base + off_pairs + (2 * s) + 1) )))
  in
  List.sort
    (fun (k1, v1) (k2, v2) ->
      match Int.compare k1 k2 with 0 -> Int.compare v1 v2 | c -> c)
    pairs

let size t = List.length (contents t)

let adaptive_report t =
  match t.repr with
  | Adapt { ad; get_site; put_site; scan_site; _ } ->
    List.map
      (fun s -> (Adaptive.site_name s, Adaptive.site_estimate ad s, Adaptive.site_samples ad s))
      [ get_site; put_site; scan_site ]
  | Msg _ | Sm _ -> []
