open Cm_engine
open Cm_machine
open Cm_memory
open Cm_runtime
open Cm_core
open Thread.Infix

(* Silence an unused-open warning: Shmem is not used in this mode. *)
module _ = Shmem

type node = {
  is_leaf : bool;
  mutable nkeys : int;
  keys : int array;  (* capacity fanout + 1 *)
  children : int array;  (* object ids; capacity fanout + 1; internal only *)
  mutable right : int;  (* object id, -1 = none *)
  mutable high : int;
}

type anchor = { mutable root : int; mutable height : int }

(* Replicated root content (an immutable snapshot). *)
type snapshot = {
  s_node : int;
  s_level : int;  (** the snapshot node's level (leaves are level 0) *)
  s_leaf : bool;
  s_nkeys : int;
  s_keys : int array;
  s_children : int array;
}

type t = {
  env : Sysenv.t;
  access : Prelude.access;
  fanout : int;
  space : node Objspace.t;
  anchor : anchor;
  anchor_home : int;
  mutable repl : snapshot Replicate.t option;
  replicate_root : bool;
  place_rng : Rng.t;
  node_procs : int array;
  mutable n_splits : int;
  node_init_k : unit Transport.kind;
}

let rt t = Sysenv.runtime t.env

let machine t = t.env.Sysenv.machine

let node t nid = Objspace.state t.space (Objspace.id_of_int nid)

let node_home t nid = Objspace.home t.space (Objspace.id_of_int nid)

(* Cycles of user code per node visit: header checks plus a binary
   search. *)
let visit_work n = 60 + (12 * Btree_node.probes ~nkeys:(max 1 n.nkeys))

(* CPU cycles to allocate and initialize a node at its new home. *)
let node_init_work = 80

let node_words n = (2 * n.nkeys) + 5

let snapshot_words s = (2 * s.s_nkeys) + 5

let snapshot_of nid ~level n =
  {
    s_node = nid;
    s_level = level;
    s_leaf = n.is_leaf;
    s_nkeys = n.nkeys;
    s_keys = Array.sub n.keys 0 n.nkeys;
    s_children = (if n.is_leaf then [||] else Array.sub n.children 0 n.nkeys);
  }

let fresh_node t ~is_leaf =
  {
    is_leaf;
    nkeys = 0;
    keys = Array.make (t.fanout + 1) max_int;
    children = (if is_leaf then [||] else Array.make (t.fanout + 1) (-1));
    right = -1;
    high = max_int;
  }

let place t = t.node_procs.(Rng.int t.place_rng (Array.length t.node_procs))

(* Register a split-off node at a random home and charge the
   initialization message from the splitting node's processor (splits
   run at the node being split, so the sender is the current
   processor). *)
let register_remote t n : int Thread.t =
  let home = place t in
  let nid = (Objspace.register t.space ~home n :> int) in
  t.n_splits <- t.n_splits + 1;
  Stats.incr (machine t).Machine.stats "btree.splits";
  let words = node_words n in
  let* () = Transport.post (Machine.transport (machine t)) t.node_init_k ~dst:home ~words () in
  Thread.return nid

(* ------------------------------------------------------------------ *)
(* Construction from a bulk-load plan                                 *)
(* ------------------------------------------------------------------ *)

(* Plans are compared by physical identity: [build_plan] shares subtree
   values, and structural hashing of large subtrees would be quadratic. *)
module Plan_tbl = Hashtbl.Make (struct
  type t = Btree_node.plan

  let equal = ( == )

  let hash = Hashtbl.hash
end)

let materialize t plan =
  let height = Btree_node.plan_height plan in
  (* Create nodes level by level, leaves first, so children ids exist;
     then chain right links left-to-right within each level. *)
  let ids = Plan_tbl.create 256 in
  for level = 0 to height - 1 do
    let nodes = Btree_node.plan_nodes_at_level plan level in
    let level_ids =
      List.map
        (fun p ->
          let n =
            match p with
            | Btree_node.Leaf { keys; high } ->
              let node = fresh_node t ~is_leaf:true in
              Array.blit keys 0 node.keys 0 (Array.length keys);
              node.nkeys <- Array.length keys;
              node.high <- high;
              node
            | Btree_node.Node { keys; high; children } ->
              let node = fresh_node t ~is_leaf:false in
              Array.blit keys 0 node.keys 0 (Array.length keys);
              node.nkeys <- Array.length keys;
              node.high <- high;
              Array.iteri (fun i c -> node.children.(i) <- Plan_tbl.find ids c) children;
              node
          in
          let nid = (Objspace.register t.space ~home:(place t) n :> int) in
          Plan_tbl.add ids p nid;
          nid)
        nodes
    in
    (* Right links. *)
    let rec chain = function
      | a :: (b :: _ as rest) ->
        (node t a).right <- b;
        chain rest
      | [ _ ] | [] -> ()
    in
    chain level_ids
  done;
  let root_id = Plan_tbl.find ids plan in
  (root_id, height)

let create env ~access ~fanout ~replicate_root ~plan ~node_procs ~placement_seed =
  if fanout < 4 then invalid_arg "Btree_msg.create: fanout must be >= 4";
  if Array.length node_procs = 0 then invalid_arg "Btree_msg.create: no node processors";
  let tp = Machine.transport env.Sysenv.machine in
  (* A split-off node's initialization message: the receiving home runs
     the allocation/initialization work itself (no generic receive
     pipeline — this models the memory-side cost only). *)
  let node_init_k = Transport.kind tp ~recv:Transport.Recv_bare "node_init" in
  Transport.Endpoint.register_all tp ~kind:node_init_k (fun () ->
      Thread.compute node_init_work);
  let t =
    {
      env;
      access;
      fanout;
      space = Objspace.create env.Sysenv.machine;
      anchor = { root = -1; height = 0 };
      anchor_home = node_procs.(0);
      repl = None;
      replicate_root;
      place_rng = Rng.create ~seed:placement_seed;
      node_procs;
      n_splits = 0;
      node_init_k;
    }
  in
  let root_id, height = materialize t plan in
  t.anchor.root <- root_id;
  t.anchor.height <- height;
  if replicate_root then
    t.repl <-
      Some
        (Replicate.create (rt t) ~home:(node_home t root_id) ~words_of:snapshot_words
           (snapshot_of root_id ~level:(height - 1) (node t root_id)));
  t

(* ------------------------------------------------------------------ *)
(* Remote node access                                                 *)
(* ------------------------------------------------------------------ *)

(* A descent's migrating activation carries the key, linkage and its
   path stack; size the message accordingly. *)
let descent_words path_len = 8 + (2 * path_len)

let invoke_node t ?(path_len = 0) nid (m : node -> 'r Thread.t) : 'r Thread.t =
  Runtime.call (rt t) ~access:t.access ~home:(node_home t nid)
    ~args_words:(descent_words path_len) ~result_words:2 (m (node t nid))

(* One search step at a node. *)
type step = Move_right of int | Down of int | Leaf_here

let step_of n key =
  if key > n.high && n.right >= 0 then Move_right n.right
  else if n.is_leaf then Leaf_here
  else Down n.children.(Btree_node.find_child_index ~keys:n.keys ~nkeys:n.nkeys ~key)

(* ------------------------------------------------------------------ *)
(* Lookup                                                             *)
(* ------------------------------------------------------------------ *)

(* Entry point of a descent: the root, or — with a replicated root — a
   child chosen from the local snapshot.  Also reports the entry node's
   level (for root-split handling in [insert]). *)
let start_point t key : (int * int) Thread.t =
  match t.repl with
  | None -> Thread.return (t.anchor.root, t.anchor.height - 1)
  | Some r ->
    let* s = Replicate.read r in
    (* The snapshot may be stale (e.g. taken just after the root node
       split but before the new root was installed): when it cannot
       route [key], descend from the snapshot's node and let the normal
       right-link chasing recover. *)
    if s.s_leaf || s.s_nkeys = 0 || key > s.s_keys.(s.s_nkeys - 1) then
      Thread.return (s.s_node, s.s_level)
    else begin
      let* () = Thread.compute (60 + (12 * Btree_node.probes ~nkeys:s.s_nkeys)) in
      let child =
        s.s_children.(Btree_node.find_child_index ~keys:s.s_keys ~nkeys:s.s_nkeys ~key)
      in
      Thread.return (child, s.s_level - 1)
    end

(* The descent is the natural recursive shared-memory-style program:
   each node visit is an instance method executing at the node's home,
   and the recursive call is itself a remote access.  Under RPC this
   nests calls — replies cascade back through every level, costing the
   root's processor a reply-handling pass per operation.  Under
   computation migration every recursive call is a tail call, so the
   activation simply hops down the tree and the single result message is
   short-circuited to the requester by the enclosing scope. *)
let rec visit_lookup t nid key : bool Thread.t =
  invoke_node t nid (fun n ->
      let* () = Thread.compute (visit_work n) in
      match step_of n key with
      | Leaf_here -> Thread.return (Btree_node.member ~keys:n.keys ~nkeys:n.nkeys ~key)
      | Move_right next | Down next -> visit_lookup t next key)

let lookup t key =
  Runtime.scope (rt t) ~result_words:2
    (let* start, _level = start_point t key in
     visit_lookup t start key)

(* ------------------------------------------------------------------ *)
(* Insert                                                             *)
(* ------------------------------------------------------------------ *)

(* Split [n] (which just overflowed), returning the separator and the
   new right sibling's id.  Runs at [n]'s home, which therefore sends
   the initialization message. *)
let split_node t n : (int * int) Thread.t =
  let keep = Btree_node.split_point ~nkeys:n.nkeys in
  let moved = n.nkeys - keep in
  let sibling = fresh_node t ~is_leaf:n.is_leaf in
  Array.blit n.keys keep sibling.keys 0 moved;
  if not n.is_leaf then Array.blit n.children keep sibling.children 0 moved;
  sibling.nkeys <- moved;
  sibling.high <- n.high;
  sibling.right <- n.right;
  let* new_id = register_remote t sibling in
  n.nkeys <- keep;
  n.high <- n.keys.(keep - 1);
  n.right <- new_id;
  Thread.return (n.high, new_id)

(* Leaf-level insert at node [n]; assumes key <= n.high. *)
let leaf_insert t n key =
  if Btree_node.member ~keys:n.keys ~nkeys:n.nkeys ~key then Thread.return (`Done false)
  else begin
    let pos = Btree_node.insertion_point ~keys:n.keys ~nkeys:n.nkeys ~key in
    Btree_node.insert_at ~keys:n.keys ~nkeys:n.nkeys ~pos key;
    n.nkeys <- n.nkeys + 1;
    let* () = Thread.compute (4 * (n.nkeys - pos)) in
    if n.nkeys > t.fanout then
      let* sep, new_id = split_node t n in
      Thread.return (`Split (sep, new_id, true))
    else Thread.return (`Done true)
  end

(* Insert separator [sep] (new right child [new_child]) into internal
   node [n]; assumes sep <= n.high. *)
let add_separator t n ~sep ~new_child =
  let i = Btree_node.find_child_index ~keys:n.keys ~nkeys:n.nkeys ~key:sep in
  if n.keys.(i) = sep then begin
    (* An equal separator can only be a re-delivered propagation (splits
       of distinct nodes have distinct high keys at one level). *)
    Stats.incr (machine t).Machine.stats "btree.dup_sep";
    Thread.return `Done
  end
  else begin
    (* Old entry (H -> L) at i becomes (sep -> L), (H -> new_child). *)
    Btree_node.insert_at ~keys:n.keys ~nkeys:n.nkeys ~pos:i sep;
    Array.blit n.children i n.children (i + 1) (n.nkeys - i);
    n.children.(i + 1) <- new_child;
    n.nkeys <- n.nkeys + 1;
    let* () = Thread.compute (8 * (n.nkeys - i)) in
    if n.nkeys > t.fanout then
      let* sep2, new2 = split_node t n in
      Thread.return (`Split (sep2, new2))
    else Thread.return `Done
  end

(* After modifying the node that is currently the root, refresh the
   replicated snapshot (runs at the root's home). *)
let refresh_root_snapshot t nid : unit Thread.t =
  match t.repl with
  | Some r when nid = t.anchor.root ->
    Replicate.update r ~access:t.access
      (snapshot_of nid ~level:(t.anchor.height - 1) (node t nid))
  | Some _ | None -> Thread.return ()

(* Move right at one level until [sep] is coverable, then insert the
   separator there.  Returns the landing node and the outcome. *)
let rec add_sep_at t pid ~path_len ~sep ~new_child =
  let* r =
    invoke_node t ~path_len pid (fun n ->
        let* () = Thread.compute (visit_work n) in
        if sep > n.high && n.right >= 0 then Thread.return (`Right n.right)
        else
          let* outcome = add_separator t n ~sep ~new_child in
          Thread.return (`Landed outcome))
  in
  match r with
  | `Right next -> add_sep_at t next ~path_len ~sep ~new_child
  | `Landed outcome ->
    let* () = refresh_root_snapshot t pid in
    Thread.return (pid, outcome)

(* Serialize root splits at the anchor's home processor. *)
let try_root_split t ~left ~sep ~new_child =
  Runtime.call (rt t) ~access:t.access ~home:t.anchor_home ~args_words:8 ~result_words:4
    (let* () = Thread.compute 40 in
     if t.anchor.root = left then begin
       let root = fresh_node t ~is_leaf:false in
       root.keys.(0) <- sep;
       root.keys.(1) <- max_int;
       root.children.(0) <- left;
       root.children.(1) <- new_child;
       root.nkeys <- 2;
       let* rid = register_remote t root in
       t.anchor.root <- rid;
       t.anchor.height <- t.anchor.height + 1;
       Stats.incr (machine t).Machine.stats "btree.root_splits";
       if t.replicate_root then
         t.repl <-
           Some
             (Replicate.create (rt t) ~home:(node_home t rid) ~words_of:snapshot_words
                (snapshot_of rid ~level:(t.anchor.height - 1) root));
       Thread.return `Ok
     end
     else Thread.return (`Stale (t.anchor.root, t.anchor.height)))

(* Descend [steps] levels from [nid] following [sep] (with right moves),
   to locate an ancestor during a stale root split. *)
let rec descend_steps t nid ~sep ~steps =
  if steps = 0 then Thread.return nid
  else
    let* r =
      invoke_node t nid (fun n ->
          let* () = Thread.compute (visit_work n) in
          match step_of n sep with
          | Move_right next -> Thread.return (`Right next)
          | Down next -> Thread.return (`Down next)
          | Leaf_here -> Thread.return `Leaf)
    in
    match r with
    | `Right next -> descend_steps t next ~sep ~steps
    | `Down next -> descend_steps t next ~sep ~steps:(steps - 1)
    | `Leaf -> Thread.return nid

(* Insert a separator for a split that bubbled out of the top of the
   descent: either [left] is the root (split it), or the tree has grown
   and an ancestor at [level + 1] must be located from the current
   root.  When a sibling's root split is still in flight the parent
   level does not exist yet; wait for it and retry. *)
let rec insert_above t ~sep ~new_child ~left ~level =
  let* r = try_root_split t ~left ~sep ~new_child in
  match r with
  | `Ok -> Thread.return ()
  | `Stale (root, height) when height - 1 >= level + 1 ->
    let steps = height - 1 - (level + 1) in
    let* ancestor = descend_steps t root ~sep ~steps in
    if (node t ancestor).is_leaf then begin
      (* Pending propagations routed us below the target level; let
         them land and retry. *)
      Stats.incr (machine t).Machine.stats "btree.propagate_retries";
      let* () = Thread.sleep 500 in
      insert_above t ~sep ~new_child ~left ~level
    end
    else
      let* landed, outcome = add_sep_at t ancestor ~path_len:0 ~sep ~new_child in
      (match outcome with
      | `Done -> Thread.return ()
      | `Split (sep2, new2) ->
        insert_above t ~sep:sep2 ~new_child:new2 ~left:landed ~level:(level + 1))
  | `Stale _ ->
    (* The parent level does not exist yet: the root split that will
       create it (from our left sibling's chain) is still in flight. *)
    Stats.incr (machine t).Machine.stats "btree.propagate_retries";
    let* () = Thread.sleep 500 in
    insert_above t ~sep ~new_child ~left ~level

(* Result of the recursive insert below a node: whether a fresh key was
   added, plus a split that the caller (the parent frame) must absorb —
   [landed] is the node that actually split after right moves. *)
type ins = { added : bool; pending : (int * int * int) option (* sep, new child, landed *) }

let rec visit_insert t nid key : ins Thread.t =
  invoke_node t nid (fun n ->
      let* () = Thread.compute (visit_work n) in
      match step_of n key with
      | Move_right next -> visit_insert t next key
      | Leaf_here ->
        let* outcome = leaf_insert t n key in
        let* () = refresh_root_snapshot t nid in
        (match outcome with
        | `Done added -> Thread.return { added; pending = None }
        | `Split (sep, new_id, added) ->
          Thread.return { added; pending = Some (sep, new_id, nid) })
      | Down child ->
        let* sub = visit_insert t child key in
        (match sub.pending with
        | None -> Thread.return sub
        | Some (sep, new_child, _) ->
          (* This frame is the parent: absorb the child's split at our
             own node (re-reaching its home if the activation has
             migrated away). *)
          let* landed, outcome = add_sep_at t nid ~path_len:0 ~sep ~new_child in
          (match outcome with
          | `Done -> Thread.return { sub with pending = None }
          | `Split (sep2, new2) ->
            Thread.return { added = sub.added; pending = Some (sep2, new2, landed) })))

let insert t key =
  Runtime.scope (rt t) ~result_words:2
    (let* start, start_level = start_point t key in
     let* r = visit_insert t start key in
     match r.pending with
     | None -> Thread.return r.added
     | Some (sep, new_child, landed) ->
       let* () = insert_above t ~sep ~new_child ~left:landed ~level:start_level in
       Thread.return r.added)

(* ------------------------------------------------------------------ *)
(* Inspection (not simulated)                                         *)
(* ------------------------------------------------------------------ *)

let height t = t.anchor.height

let root_home t = node_home t t.anchor.root

let root_children t =
  let r = node t t.anchor.root in
  if r.is_leaf then 0 else r.nkeys

let splits t = t.n_splits

let leftmost_leaf t =
  let rec go nid =
    let n = node t nid in
    if n.is_leaf then nid else go n.children.(0)
  in
  go t.anchor.root

let all_keys t =
  let rec walk nid acc =
    let n = node t nid in
    let acc = List.rev_append (List.init n.nkeys (fun i -> n.keys.(i))) acc in
    if n.right >= 0 then walk n.right acc else List.rev acc
  in
  walk (leftmost_leaf t) []

let dump t =
  let buf = Buffer.create 256 in
  let rec go nid indent =
    let n = node t nid in
    Buffer.add_string buf
      (Printf.sprintf "%s#%d %s nkeys=%d high=%s right=%d keys=[%s]\n" indent nid
         (if n.is_leaf then "leaf" else "node")
         n.nkeys
         (if n.high = max_int then "inf" else string_of_int n.high)
         n.right
         (String.concat ";"
            (List.init n.nkeys (fun i ->
                 if n.keys.(i) = max_int then "inf" else string_of_int n.keys.(i)))));
    if not n.is_leaf then
      for i = 0 to n.nkeys - 1 do
        go n.children.(i) (indent ^ "  ")
      done
  in
  go t.anchor.root "";
  Buffer.contents buf

let check_invariants t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec check_node nid ~low ~high_bound =
    let n = node t nid in
    let rec sorted i =
      if i >= n.nkeys - 1 then true else n.keys.(i) < n.keys.(i + 1) && sorted (i + 1)
    in
    if n.nkeys = 0 then fail "node %d empty" nid
    else if not (sorted 0) then fail "node %d keys not sorted" nid
    else if n.high <> high_bound then fail "node %d high %d <> bound %d" nid n.high high_bound
    else if n.nkeys > t.fanout then fail "node %d overfull" nid
    else if n.keys.(0) <= low then fail "node %d key %d below low bound %d" nid n.keys.(0) low
    else if n.is_leaf then Ok ()
    else if n.keys.(n.nkeys - 1) <> n.high then
      fail "internal %d last key %d <> high %d" nid n.keys.(n.nkeys - 1) n.high
    else begin
      let rec children i low =
        if i >= n.nkeys then Ok ()
        else
          match check_node n.children.(i) ~low ~high_bound:n.keys.(i) with
          | Error _ as e -> e
          | Ok () ->
            (* Consecutive children must be linked. *)
            if i + 1 < n.nkeys && (node t n.children.(i)).right <> n.children.(i + 1) then
              fail "node %d: child %d not linked to next sibling" nid n.children.(i)
            else children (i + 1) n.keys.(i)
      in
      children 0 low
    end
  in
  match check_node t.anchor.root ~low:min_int ~high_bound:max_int with
  | Error _ as e -> e
  | Ok () ->
    (* The leaf chain must enumerate keys in ascending order. *)
    let keys = all_keys t in
    let rec ascending = function
      | a :: (b :: _ as rest) -> if a < b then ascending rest else fail "leaf chain unsorted"
      | [ _ ] | [] -> Ok ()
    in
    ascending keys
