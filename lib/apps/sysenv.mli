(** The full simulated system an application runs on.

    Bundles the machine with both remote-access substrates: the
    message-passing runtime (for RPC and computation migration) and
    coherent shared memory (for the data-migration baseline).  Every
    application mode draws from the same machine, so throughput and
    bandwidth of the three mechanisms are measured on identical
    hardware. *)

open Cm_machine

type t = {
  machine : Machine.t;
  prelude : Cm_core.Prelude.t;
  shmem : Cm_memory.Shmem.t Lazy.t;
}

val make : ?shmem_config:Cm_memory.Shmem.config -> Machine.t -> t
(** [make machine] attaches both substrates to [machine].  The
    shared-memory substrate (a cache per processor) is allocated on
    first use — message-passing modes never pay for it. *)

val mem : t -> Cm_memory.Shmem.t
(** The coherent shared memory, built on first call. *)

val runtime : t -> Cm_runtime.Runtime.t
(** The message-passing runtime underlying [prelude]. *)
