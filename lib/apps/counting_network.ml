open Cm_machine
open Cm_memory
open Cm_core
open Thread.Infix

type sm_sync = Atomic_toggle | Lock_per_balancer

type mode = Messaging of Prelude.access | Shared_memory

let mode_name = function
  | Messaging Prelude.Rpc -> "rpc"
  | Messaging Prelude.Migrate -> "migrate"
  | Shared_memory -> "shared_memory"

(* Cycles of user code per balancer/counter visit under the messaging
   runtime — the "User code" row of the paper's Table 5. *)
let user_work = 150

(* CPU work per visit in shared-memory mode: toggle-and-route only; the
   messaging overheads do not exist, memory stalls dominate instead. *)
let sm_work = 30

(* Messaging-mode object states.  Destinations use the static network
   description; objects are looked up through the arrays in [repr]. *)
type bal = { mutable toggle : bool; top : Balancer_net.dest; bot : Balancer_net.dest }

type cnt = { mutable count : int; wire : int }

type repr =
  | Msg of { bals : bal Prelude.obj array; cnts : cnt Prelude.obj array; access : Prelude.access }
  | Sm of {
      bal_addr : int array;
      locks : Lock.t array;
      cnt_addr : int array;
      sync : sm_sync;
    }

type t = {
  env : Sysenv.t;
  net : Balancer_net.t;
  mode : mode;
  repr : repr;
  mutable issued_rev : int list;  (* instrumentation: every value handed out *)
}

(* Shared-memory destination encoding: balancer ids are >= 0; exit wire
   [w] is encoded as [-(w + 1)]. *)
let encode = function Balancer_net.Balancer b -> b | Balancer_net.Exit w -> -(w + 1)

let decode n = if n >= 0 then Balancer_net.Balancer n else Balancer_net.Exit (-n - 1)

let create env ?(width = 8) ?(sm_sync = Lock_per_balancer) ?(lock_backoff = (512, 4096))
    ?balancer_procs mode =
  let net = Balancer_net.bitonic width in
  let n = Balancer_net.n_balancers net in
  let n_procs = Machine.n_procs env.Sysenv.machine in
  let procs =
    match balancer_procs with
    | Some a ->
      if Array.length a <> n then invalid_arg "Counting_network.create: placement size mismatch";
      a
    | None -> Array.init n (fun i -> i mod n_procs)
  in
  let counter_proc w = procs.(Balancer_net.feeder_of_exit net w) in
  let repr =
    match mode with
    | Messaging access ->
      let bals =
        Array.init n (fun b ->
            let top, bot = Balancer_net.outputs net b in
            Prelude.make_obj env.Sysenv.prelude ~home:procs.(b) { toggle = false; top; bot })
      in
      let cnts =
        Array.init width (fun w ->
            Prelude.make_obj env.Sysenv.prelude ~home:(counter_proc w) { count = 0; wire = w })
      in
      Msg { bals; cnts; access }
    | Shared_memory ->
      let mem = Sysenv.mem env in
      let bal_addr =
        Array.init n (fun b ->
            let top, bot = Balancer_net.outputs net b in
            let a = Shmem.alloc mem ~home:procs.(b) ~words:3 in
            Shmem.poke mem a 0;
            Shmem.poke mem (a + 1) (encode top);
            Shmem.poke mem (a + 2) (encode bot);
            a)
      in
      (* Balancer locks are extremely contended; probe rarely by
         default ([lock_backoff] is an ablation knob). *)
      let base_backoff, max_backoff = lock_backoff in
      let locks =
        Array.init n (fun b -> Lock.create ~base_backoff ~max_backoff mem ~home:procs.(b))
      in
      let cnt_addr = Array.init width (fun w -> Shmem.alloc mem ~home:(counter_proc w) ~words:1) in
      Sm { bal_addr; locks; cnt_addr; sync = sm_sync }
  in
  { env; net; mode; repr; issued_rev = [] }

let width t = Balancer_net.width t.net

let n_balancers t = Balancer_net.n_balancers t.net

let mode t = t.mode

let record t v = t.issued_rev <- v :: t.issued_rev

let traverse_msg t ~bals ~cnts ~access ~input_wire =
  let prelude = t.env.Sysenv.prelude in
  let w = width t in
  Prelude.proc prelude
    (let rec go dest =
       match dest with
       | Balancer_net.Balancer b ->
         let* next =
           Prelude.invoke prelude ~access bals.(b) (fun st ->
               let* () = Thread.compute user_work in
               let out = if st.toggle then st.bot else st.top in
               st.toggle <- not st.toggle;
               Thread.return out)
         in
         go next
       | Balancer_net.Exit wire ->
         Prelude.invoke prelude ~access cnts.(wire) (fun st ->
             let* () = Thread.compute user_work in
             let count = st.count in
             st.count <- st.count + 1;
             let value = (count * w) + st.wire in
             record t value;
             Thread.return value)
     in
     go (Balancer_net.input t.net input_wire))

let traverse_sm t ~bal_addr ~locks ~cnt_addr ~sync ~input_wire =
  let mem = Sysenv.mem t.env in
  let w = width t in
  let rec go dest =
    match dest with
    | Balancer_net.Balancer b ->
      let base = bal_addr.(b) in
      let* toggle =
        match sync with
        | Atomic_toggle ->
          (* The balancer is a 2-state switch: one atomic
             fetch-and-toggle transfers line ownership and flips it. *)
          Shmem.rmw mem base (fun v -> 1 - v)
        | Lock_per_balancer ->
          (* Ablation: a spin-lock-protected critical section, showing
             the coherence storms test-and-test&set causes on
             write-shared data. *)
          let* () = Lock.acquire locks.(b) in
          let* toggle = Shmem.read mem base in
          let* () = Shmem.write mem base (1 - toggle) in
          let* () = Lock.release locks.(b) in
          Thread.return toggle
      in
      (* The destination words share the balancer's (now owned) line. *)
      let* next = Shmem.read mem (base + if toggle = 0 then 1 else 2) in
      let* () = Thread.compute sm_work in
      go (decode next)
    | Balancer_net.Exit wire ->
      let* count = Shmem.rmw mem cnt_addr.(wire) (fun v -> v + 1) in
      let* () = Thread.compute sm_work in
      let value = (count * w) + wire in
      record t value;
      Thread.return value
  in
  go (Balancer_net.input t.net input_wire)

let traverse t ~input_wire =
  if input_wire < 0 || input_wire >= width t then
    invalid_arg "Counting_network.traverse: bad input wire";
  match t.repr with
  | Msg { bals; cnts; access } -> traverse_msg t ~bals ~cnts ~access ~input_wire
  | Sm { bal_addr; locks; cnt_addr; sync } ->
    traverse_sm t ~bal_addr ~locks ~cnt_addr ~sync ~input_wire

let output_counts t =
  match t.repr with
  | Msg { cnts; _ } -> Array.map (fun o -> (Prelude.obj_state o).count) cnts
  | Sm { cnt_addr; _ } -> Array.map (fun a -> Shmem.peek (Sysenv.mem t.env) a) cnt_addr

let tokens_delivered t = Array.fold_left ( + ) 0 (output_counts t)

let satisfies_step_property t = Balancer_net.step_property ~counts:(output_counts t)

let values_issued t = List.rev t.issued_rev
